// Package sim provides the discrete-event backbone of the machine model: a
// deterministic event engine driven by a binary heap, and FCFS resource
// cursors used to model serialized hardware units (memory-controller
// channels, L2 banks, per-core pipelines) without per-cycle stepping.
//
// The engine is single-goroutine by design. Determinism is a hard
// requirement for the reproduction: identical inputs must produce identical
// cycle counts, so ties between events scheduled for the same cycle are
// broken by insertion sequence number.
//
// # Engine contract
//
// The engine supports two event forms that share one priority queue and one
// sequence-number space:
//
//   - Typed events (Schedule): a plain {kind, arg} record dispatched through
//     the handler installed with SetHandler. This is the hot path — pushing
//     a typed event is a slice append plus a sift-up, with no closure, no
//     interface boxing, and no per-event heap allocation. The chip's run
//     loop schedules every strand wakeup this way, so steady-state
//     simulation allocates nothing per event.
//   - Closure events (At/After): an arbitrary func(). Convenient for tests
//     and cold setup paths; each call allocates its closure as usual.
//
// Both forms execute strictly in (time, sequence) order. Because the
// sequence number is a strict tie-break, replacing a closure event with a
// typed event scheduled at the same point in the program preserves the
// execution order bit-for-bit — which is how the typed rewrite of the chip
// run loop keeps every figure byte-identical.
package sim

import "fmt"

// Time is a simulation timestamp in core clock cycles.
type Time = int64

// Kind identifies a class of typed event; its meaning belongs entirely to
// the engine user, which interprets it in the installed Handler.
type Kind uint8

// Handler dispatches one typed event. It is installed once with SetHandler
// and invoked by Step for every event scheduled through Schedule.
type Handler func(kind Kind, arg int32)

// event is one scheduled entry. A nil fn marks a typed event carried by
// (kind, arg); a non-nil fn is a legacy closure event.
type event struct {
	when Time
	seq  uint64
	fn   func()
	arg  int32
	kind Kind
}

// Engine is a discrete-event simulation engine.
// The zero value is ready to use.
type Engine struct {
	now     Time
	seq     uint64
	events  []event // 4-ary min-heap ordered by (when, seq)
	steps   uint64
	handler Handler
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of scheduled, not yet executed events.
func (e *Engine) Pending() int { return len(e.events) }

// SetHandler installs the dispatcher for typed events. It must be set
// before the first Schedule'd event executes.
func (e *Engine) SetHandler(h Handler) { e.handler = h }

// Schedule enqueues a typed event at absolute time when. It is the
// allocation-free counterpart of At: once the heap's backing array has
// grown to its steady-state capacity, scheduling costs only the sift-up.
// Scheduling into the past panics, as with At.
func (e *Engine) Schedule(when Time, kind Kind, arg int32) {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", when, e.now))
	}
	e.seq++
	e.push(event{when: when, seq: e.seq, kind: kind, arg: arg})
}

// At schedules fn to run at absolute time when. Scheduling into the past
// panics: it always indicates a broken timing computation upstream and
// would silently corrupt causality if allowed.
func (e *Engine) At(when Time, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", when, e.now))
	}
	e.seq++
	e.push(event{when: when, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now. Negative delays panic.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// The event queue is a 4-ary min-heap ordered by (when, seq). Sequence
// numbers are unique, so the order is a strict total order and the pop
// sequence does not depend on heap shape or arity — which is why the arity
// is a pure performance choice: a 4-ary heap halves the sift depth of a
// binary heap and keeps each node's children on one cache line.
const heapArity = 4

func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	e.siftUp(len(e.events) - 1)
}

func (e *Engine) siftUp(i int) {
	ev := e.events[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		p := &e.events[parent]
		if p.when < ev.when || (p.when == ev.when && p.seq < ev.seq) {
			break
		}
		e.events[i] = *p
		i = parent
	}
	e.events[i] = ev
}

func (e *Engine) siftDown(i int) {
	n := len(e.events)
	ev := e.events[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		last := first + heapArity
		if last > n {
			last = n
		}
		min := first
		mc := &e.events[first]
		for j := first + 1; j < last; j++ {
			c := &e.events[j]
			if c.when < mc.when || (c.when == mc.when && c.seq < mc.seq) {
				min, mc = j, c
			}
		}
		if ev.when < mc.when || (ev.when == mc.when && ev.seq < mc.seq) {
			break
		}
		e.events[i] = *mc
		i = min
	}
	e.events[i] = ev
}

// Step executes the earliest pending event and returns true, or returns
// false if no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events[0]
	n := len(e.events) - 1
	e.events[0] = e.events[n]
	if e.events[n].fn != nil {
		e.events[n].fn = nil // release the closure reference
	}
	e.events = e.events[:n]
	if n > 1 {
		e.siftDown(0)
	}
	e.now = ev.when
	e.steps++
	if ev.fn != nil {
		ev.fn()
	} else {
		e.handler(ev.kind, ev.arg)
	}
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t
// if it has not advanced that far. It returns the number of events run.
func (e *Engine) RunUntil(t Time) int {
	n := 0
	for len(e.events) > 0 && e.events[0].when <= t {
		e.Step()
		n++
	}
	if e.now < t {
		e.now = t
	}
	return n
}

// Cursor models a serialized FCFS resource such as a memory channel or a
// shared pipeline. Instead of simulating occupancy cycle by cycle, the
// cursor tracks the time at which the resource next becomes free; a request
// arriving at time now and needing dur cycles of service starts at
// max(now, free) and completes dur cycles later. Because the event engine
// delivers requests in nondecreasing time order, the cursor is an exact
// FCFS queue.
//
// The zero value is an idle resource that has never been used.
type Cursor struct {
	free Time
	busy Time
	ops  int64
}

// Acquire reserves the resource for dur cycles for a request arriving at
// now, returning the service start and completion times.
func (c *Cursor) Acquire(now Time, dur Time) (start, done Time) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative service duration %d", dur))
	}
	start = now
	if c.free > start {
		start = c.free
	}
	done = start + dur
	c.free = done
	c.busy += dur
	c.ops++
	return start, done
}

// FreeAt returns the earliest time at which the resource is idle.
func (c *Cursor) FreeAt() Time { return c.free }

// Busy returns the total cycles of service the resource has performed.
func (c *Cursor) Busy() Time { return c.busy }

// Ops returns the number of Acquire calls.
func (c *Cursor) Ops() int64 { return c.ops }

// Utilization returns busy time as a fraction of the elapsed horizon.
// It returns 0 for a non-positive horizon.
func (c *Cursor) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(c.busy) / float64(horizon)
}

// Reset returns the cursor to its initial idle state.
func (c *Cursor) Reset() { *c = Cursor{} }
