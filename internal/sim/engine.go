// Package sim provides the discrete-event backbone of the machine model: a
// deterministic event engine driven by a binary heap, and FCFS resource
// cursors used to model serialized hardware units (memory-controller
// channels, L2 banks, per-core pipelines) without per-cycle stepping.
//
// The engine is single-goroutine by design. Determinism is a hard
// requirement for the reproduction: identical inputs must produce identical
// cycle counts, so ties between events scheduled for the same cycle are
// broken by insertion sequence number.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp in core clock cycles.
type Time = int64

type event struct {
	when Time
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine.
// The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	steps  uint64
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of scheduled, not yet executed events.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time when. Scheduling into the past
// panics: it always indicates a broken timing computation upstream and
// would silently corrupt causality if allowed.
func (e *Engine) At(when Time, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", when, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{when: when, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now. Negative delays panic.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step executes the earliest pending event and returns true, or returns
// false if no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.when
	e.steps++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t
// if it has not advanced that far. It returns the number of events run.
func (e *Engine) RunUntil(t Time) int {
	n := 0
	for len(e.events) > 0 && e.events[0].when <= t {
		e.Step()
		n++
	}
	if e.now < t {
		e.now = t
	}
	return n
}

// Cursor models a serialized FCFS resource such as a memory channel or a
// shared pipeline. Instead of simulating occupancy cycle by cycle, the
// cursor tracks the time at which the resource next becomes free; a request
// arriving at time now and needing dur cycles of service starts at
// max(now, free) and completes dur cycles later. Because the event engine
// delivers requests in nondecreasing time order, the cursor is an exact
// FCFS queue.
//
// The zero value is an idle resource that has never been used.
type Cursor struct {
	free Time
	busy Time
	ops  int64
}

// Acquire reserves the resource for dur cycles for a request arriving at
// now, returning the service start and completion times.
func (c *Cursor) Acquire(now Time, dur Time) (start, done Time) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative service duration %d", dur))
	}
	start = now
	if c.free > start {
		start = c.free
	}
	done = start + dur
	c.free = done
	c.busy += dur
	c.ops++
	return start, done
}

// FreeAt returns the earliest time at which the resource is idle.
func (c *Cursor) FreeAt() Time { return c.free }

// Busy returns the total cycles of service the resource has performed.
func (c *Cursor) Busy() Time { return c.busy }

// Ops returns the number of Acquire calls.
func (c *Cursor) Ops() int64 { return c.ops }

// Utilization returns busy time as a fraction of the elapsed horizon.
// It returns 0 for a non-positive horizon.
func (c *Cursor) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(c.busy) / float64(horizon)
}

// Reset returns the cursor to its initial idle state.
func (c *Cursor) Reset() { *c = Cursor{} }
