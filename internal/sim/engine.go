// Package sim provides the discrete-event backbone of the machine model: a
// deterministic event engine driven by a bounded-horizon hierarchical
// timing wheel, and FCFS resource cursors used to model serialized hardware
// units (memory-controller channels, L2 banks, per-core pipelines) without
// per-cycle stepping.
//
// The engine is single-goroutine by design. Determinism is a hard
// requirement for the reproduction: identical inputs must produce identical
// cycle counts, so ties between events scheduled for the same cycle are
// broken by insertion sequence number.
//
// # Engine contract
//
// The engine supports two event forms that share one priority queue and one
// sequence-number space:
//
//   - Typed events (Schedule): a plain {kind, arg} record dispatched through
//     the handler installed with SetHandler. This is the hot path — pushing
//     a typed event is a bucket append plus a bitmap update, with no
//     closure, no interface boxing, and no per-event heap allocation. The
//     chip's run loop schedules every strand wakeup this way, so
//     steady-state simulation allocates nothing per event.
//   - Closure events (At/After): an arbitrary func(). Convenient for tests
//     and cold setup paths; each call allocates its closure as usual.
//
// Both forms execute strictly in (time, sequence) order.
//
// # Timing wheel
//
// Event delays in the machine model are bounded: a wakeup is at most one
// memory round trip (latency + queueing + turnaround) or one pipeline
// backlog away from now. The queue exploits that as a timing wheel — a
// power-of-two ring of buckets indexed by `when mod slots`, with a
// hierarchical occupancy bitmap (64-way fan-in per level) locating the next
// non-empty bucket in O(levels) word operations. While every pending event
// lies within the wheel's span, each bucket holds events of exactly one
// timestamp, appended — and therefore popped — in sequence order, so no
// comparisons are needed anywhere: Schedule and pop are O(1) ring
// operations. An event scheduled beyond the span grows the wheel (a rare,
// amortized rehash), so the horizon bound is a performance assumption, not
// a correctness requirement.
//
// The previous engine — the same (when, seq) total order on a 4-ary slice
// heap — is retained as a reference implementation behind
// UseReferenceHeap. A differential fuzz test drives random bounded-delay
// schedules through both and asserts identical pop order and identical
// Steps/Pending accounting, which is the proof obligation for swapping the
// structure under a determinism-critical simulator.
package sim

import (
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"
)

// Time is a simulation timestamp in core clock cycles.
type Time = int64

// Kind identifies a class of typed event; its meaning belongs entirely to
// the engine user, which interprets it in the installed Handler.
type Kind uint8

// Handler dispatches one typed event. It is installed once with SetHandler
// and invoked by Step for every event scheduled through Schedule.
type Handler func(kind Kind, arg int32)

// event is one scheduled entry: 24 bytes, nothing pointer-shaped, so the
// wheel's bucket traffic stays cheap and GC-transparent. Closure events
// are carried out-of-band: their func lives in the engine's closure table
// under the event's sequence number, marked by the reserved ClosureKind.
type event struct {
	when Time
	seq  uint64
	arg  int32
	kind Kind
}

// ClosureKind is the reserved event kind marking closure (At/After)
// events; typed events must use other kinds.
const ClosureKind Kind = 0xFF

// bucket is one wheel slot: the events of a single pending timestamp in
// insertion (= sequence) order. head is the pop position, so a partially
// drained bucket keeps its remaining events without copying.
type bucket struct {
	evs  []event
	head int
}

// minWheelSlots is the initial wheel span in cycles. It comfortably covers
// an L2 hit round trip; the first memory access grows the wheel to its
// steady-state span in one or two rehashes.
const minWheelSlots = 256

// Engine is a discrete-event simulation engine.
// The zero value is ready to use.
type Engine struct {
	now     Time
	seq     uint64
	steps   uint64
	handler Handler

	// Timing wheel (the default queue).
	slots   []bucket
	occ     [][]uint64 // occ[0]: one bit per slot; occ[l]: one bit per word of occ[l-1]
	count   int
	gen     uint64    // incremented by grow: invalidates in-flight slot handles
	scratch []event   // FastForward reinsertion buffer
	free    [][]event // recycled bucket buffers: live buckets stay O(pending)

	// Closure (At/After) events, keyed by sequence number.
	closures map[uint64]func()

	// Reference 4-ary heap, selected by UseReferenceHeap.
	heapMode bool
	events   []event // 4-ary min-heap ordered by (when, seq)

	// Cooperative cancellation (see SetStop/StopAt). The flag is polled
	// amortized — once per stopPollInterval bucket drains — so an unarmed
	// engine pays two nil/zero compares per tie group and an armed one a
	// fraction of an atomic load per event.
	stop    *atomic.Bool
	stopAt  uint64 // step budget; 0 means none
	checkIn int32  // drains until the next poll
	halted  bool
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of scheduled, not yet executed events.
func (e *Engine) Pending() int {
	if e.heapMode {
		return len(e.events)
	}
	return e.count
}

// SetHandler installs the dispatcher for typed events. It must be set
// before the first Schedule'd event executes.
func (e *Engine) SetHandler(h Handler) { e.handler = h }

// stopPollInterval is the number of bucket drains between cooperative
// cancellation polls. It amortizes the atomic load far below measurement
// noise on the event hot path while bounding cancel latency to well under
// a millisecond of wall clock (a tie-group drain is microseconds at most).
const stopPollInterval = 1024

// SetStop installs (or, with nil, removes) a cancellation flag. Run and
// RunUntil poll it cooperatively and return early once it is set, leaving
// pending events in place; Interrupted reports whether that happened.
// The flag may be set from another goroutine — it is the engine's only
// cross-goroutine input.
func (e *Engine) SetStop(stop *atomic.Bool) {
	e.stop = stop
	e.halted = false
}

// StopAt arms a step budget: Run halts cooperatively once at least steps
// events have executed (checked on the same amortized schedule as the stop
// flag, so the exact halt step is a deterministic function of the event
// stream). 0 disarms. It exists for deterministic cancellation testing —
// fault injection cancels "at step N" reproducibly, where wall-clock
// deadlines cannot.
func (e *Engine) StopAt(steps uint64) {
	e.stopAt = steps
	e.halted = false
}

// Interrupted reports whether the last Run/RunUntil returned early because
// the stop flag or the step budget fired.
func (e *Engine) Interrupted() bool { return e.halted }

// stopPoll is the amortized cancellation check. Unarmed engines take the
// first branch: two compares against zero registers per tie group.
func (e *Engine) stopPoll() bool {
	if e.stop == nil && e.stopAt == 0 {
		return false
	}
	if e.checkIn--; e.checkIn > 0 {
		return false
	}
	e.checkIn = stopPollInterval
	if e.stopAt != 0 && e.steps >= e.stopAt {
		e.halted = true
		return true
	}
	if e.stop != nil && e.stop.Load() {
		e.halted = true
		return true
	}
	return false
}

// UseReferenceHeap switches the engine to the reference 4-ary heap queue.
// It exists for differential testing against the timing wheel and must be
// called while no events are pending.
func (e *Engine) UseReferenceHeap() {
	if e.Pending() != 0 {
		panic("sim: UseReferenceHeap with events pending")
	}
	e.heapMode = true
}

// Reset returns the engine to its initial state while retaining the
// wheel's slot and bucket capacity, so a reused engine schedules without
// reallocating. The queue-structure choice (wheel or reference heap) is
// retained too.
func (e *Engine) Reset() {
	e.gen++
	e.now, e.seq, e.steps, e.handler = 0, 0, 0, nil
	e.events = e.events[:0]
	clear(e.closures)
	for i := range e.slots {
		b := &e.slots[i]
		if b.evs != nil {
			e.release(b)
		}
	}
	for _, lv := range e.occ {
		clear(lv)
	}
	e.count = 0
	e.stop, e.stopAt, e.checkIn, e.halted = nil, 0, 0, false
}

// Schedule enqueues a typed event at absolute time when. It is the
// allocation-free counterpart of At: once the wheel has grown to its
// steady-state span, scheduling costs a bucket append and a bitmap update.
// Scheduling into the past panics, as with At.
func (e *Engine) Schedule(when Time, kind Kind, arg int32) {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", when, e.now))
	}
	if kind == ClosureKind {
		panic("sim: event kind 0xFF is reserved for closure events")
	}
	e.seq++
	e.enqueue(event{when: when, seq: e.seq, kind: kind, arg: arg})
}

// At schedules fn to run at absolute time when. Scheduling into the past
// panics: it always indicates a broken timing computation upstream and
// would silently corrupt causality if allowed.
func (e *Engine) At(when Time, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", when, e.now))
	}
	e.seq++
	if e.closures == nil {
		e.closures = map[uint64]func(){}
	}
	e.closures[e.seq] = fn
	e.enqueue(event{when: when, seq: e.seq, kind: ClosureKind})
}

// After schedules fn to run d cycles from now. Negative delays panic.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

func (e *Engine) enqueue(ev event) {
	if e.heapMode {
		e.push(ev)
		return
	}
	e.pushWheel(ev)
}

// ---- timing wheel ----------------------------------------------------------

// pushWheel files ev into the slot of its timestamp, growing the wheel if
// the delay exceeds the current span. Because every pending timestamp lies
// within the span, distinct pending timestamps occupy distinct slots, and a
// bucket's append order is its (single-time) sequence order.
func (e *Engine) pushWheel(ev event) {
	d := ev.when - e.now
	if len(e.slots) == 0 || d >= Time(len(e.slots)) {
		e.grow(d)
	}
	s := int(uint64(ev.when) & uint64(len(e.slots)-1))
	b := &e.slots[s]
	if b.head == len(b.evs) {
		if b.evs == nil {
			if n := len(e.free); n > 0 {
				b.evs = e.free[n-1]
				e.free = e.free[:n-1]
			}
		} else {
			b.evs = b.evs[:0]
		}
		b.head = 0
		e.setBit(s)
	}
	b.evs = append(b.evs, ev)
	e.count++
}

// popWheel removes and returns the earliest pending event.
func (e *Engine) popWheel() event {
	s := e.earliestSlot()
	b := &e.slots[s]
	ev := b.evs[b.head]
	b.head++
	if b.head == len(b.evs) {
		e.release(b)
		e.clearBit(s)
	}
	e.count--
	return ev
}

// release returns a drained bucket's buffer to the free list, so the
// number of live buffers tracks the number of concurrently pending
// timestamps instead of the number of wheel slots ever touched.
func (e *Engine) release(b *bucket) {
	if cap(b.evs) > 0 {
		e.free = append(e.free, b.evs[:0])
	}
	b.evs = nil
	b.head = 0
}

// earliestSlot locates the slot holding the earliest pending timestamp.
// Pending timestamps lie in [now, now+slots), so the circular bitmap scan
// starting at now's slot visits them in increasing time order.
func (e *Engine) earliestSlot() int {
	start := int(uint64(e.now) & uint64(len(e.slots)-1))
	if s, ok := e.nextSet(start); ok {
		return s
	}
	s, ok := e.nextSet(0)
	if !ok {
		panic("sim: wheel bitmap empty with events pending")
	}
	return s
}

// setBit marks slot i occupied at every bitmap level.
func (e *Engine) setBit(i int) {
	for l := 0; l < len(e.occ); l++ {
		w, m := i>>6, uint64(1)<<uint(i&63)
		if e.occ[l][w]&m != 0 {
			return
		}
		e.occ[l][w] |= m
		i = w
	}
}

// clearBit marks slot i empty, propagating emptiness up the levels.
func (e *Engine) clearBit(i int) {
	for l := 0; l < len(e.occ); l++ {
		w := i >> 6
		e.occ[l][w] &^= uint64(1) << uint(i&63)
		if e.occ[l][w] != 0 {
			return
		}
		i = w
	}
}

// nextSet returns the lowest occupied slot index >= start, scanning the
// hierarchical bitmap: one masked word probe per level up, then one
// trailing-zeros descent per level down.
func (e *Engine) nextSet(start int) (int, bool) {
	if len(e.occ) == 0 {
		return 0, false
	}
	w := start >> 6
	if m := e.occ[0][w] &^ (uint64(1)<<uint(start&63) - 1); m != 0 {
		return w<<6 + bits.TrailingZeros64(m), true
	}
	idx := w
	for l := 1; l < len(e.occ); l++ {
		ww := idx >> 6
		if m := e.occ[l][ww] &^ (uint64(2)<<uint(idx&63) - 1); m != 0 {
			idx = ww<<6 + bits.TrailingZeros64(m)
			for k := l - 1; k >= 0; k-- {
				idx = idx<<6 + bits.TrailingZeros64(e.occ[k][idx])
			}
			return idx, true
		}
		idx = ww
	}
	return 0, false
}

// grow rebuilds the wheel with a span covering delay d (at least doubling).
// Each occupied bucket holds one timestamp and moves wholesale to its slot
// in the larger wheel; pending timestamps span less than the old slot
// count, so no two buckets collide after the move.
func (e *Engine) grow(d Time) {
	n := len(e.slots)
	if n == 0 {
		n = minWheelSlots
	}
	for Time(n) <= d {
		n <<= 1
	}
	e.gen++
	old := e.slots
	e.slots = make([]bucket, n)
	e.occ = e.occ[:0]
	for w := (n + 63) / 64; ; w = (w + 63) / 64 {
		e.occ = append(e.occ, make([]uint64, w))
		if w == 1 {
			break
		}
	}
	for i := range old {
		b := &old[i]
		if b.head == len(b.evs) {
			continue
		}
		s := int(uint64(b.evs[b.head].when) & uint64(n-1))
		e.slots[s] = *b
		e.setBit(s)
	}
}

// forEachOccupied calls f with every occupied slot index in circular time
// order starting at now's slot. f must not mutate the queue.
func (e *Engine) forEachOccupied(f func(slot int)) {
	if e.count == 0 {
		return
	}
	start := int(uint64(e.now) & uint64(len(e.slots)-1))
	for s, ok := e.nextSet(start); ok; {
		f(s)
		if s+1 >= len(e.slots) {
			break
		}
		s, ok = e.nextSet(s + 1)
	}
	for s, ok := e.nextSet(0); ok && s < start; {
		f(s)
		s, ok = e.nextSet(s + 1)
	}
}

// ---- reference 4-ary heap --------------------------------------------------

// The reference queue is a 4-ary min-heap ordered by (when, seq). Sequence
// numbers are unique, so the order is a strict total order and the pop
// sequence does not depend on heap shape or arity.
const heapArity = 4

func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	e.siftUp(len(e.events) - 1)
}

func (e *Engine) siftUp(i int) {
	ev := e.events[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		p := &e.events[parent]
		if p.when < ev.when || (p.when == ev.when && p.seq < ev.seq) {
			break
		}
		e.events[i] = *p
		i = parent
	}
	e.events[i] = ev
}

func (e *Engine) siftDown(i int) {
	n := len(e.events)
	ev := e.events[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		last := first + heapArity
		if last > n {
			last = n
		}
		min := first
		mc := &e.events[first]
		for j := first + 1; j < last; j++ {
			c := &e.events[j]
			if c.when < mc.when || (c.when == mc.when && c.seq < mc.seq) {
				min, mc = j, c
			}
		}
		if ev.when < mc.when || (ev.when == mc.when && ev.seq < mc.seq) {
			break
		}
		e.events[i] = *mc
		i = min
	}
	e.events[i] = ev
}

func (e *Engine) popHeap() event {
	ev := e.events[0]
	n := len(e.events) - 1
	e.events[0] = e.events[n]
	e.events = e.events[:n]
	if n > 1 {
		e.siftDown(0)
	}
	return ev
}

// dispatch executes one popped event.
func (e *Engine) dispatch(ev event) {
	e.now = ev.when
	e.steps++
	if ev.kind == ClosureKind {
		fn := e.closures[ev.seq]
		delete(e.closures, ev.seq)
		fn()
	} else {
		e.handler(ev.kind, ev.arg)
	}
}

// ---- execution -------------------------------------------------------------

// Step executes the earliest pending event and returns true, or returns
// false if no events remain.
func (e *Engine) Step() bool {
	var ev event
	if e.heapMode {
		if len(e.events) == 0 {
			return false
		}
		ev = e.popHeap()
	} else {
		if e.count == 0 {
			return false
		}
		ev = e.popWheel()
	}
	e.dispatch(ev)
	return true
}

// Run executes events until none remain. It is Step in a loop, with one
// structural shortcut: all events of the earliest bucket — a tie group
// sharing one timestamp — are drained without re-searching the occupancy
// bitmap between them. NACK convoys synchronize dozens of strands onto the
// same retry cycle, so tie groups are the common case exactly where event
// volume is highest. A wheel growth (or queue-structure change) during a
// handler invalidates the slot handle; the generation counter detects that
// and falls back to a fresh search.
func (e *Engine) Run() {
	if e.heapMode {
		for !e.stopPoll() && e.Step() {
		}
		return
	}
	for e.count > 0 {
		if e.stopPoll() {
			return
		}
		s := e.earliestSlot()
		g := e.gen
		for {
			b := &e.slots[s]
			ev := b.evs[b.head]
			b.head++
			if b.head == len(b.evs) {
				e.release(b)
				e.clearBit(s)
			}
			e.count--
			e.dispatch(ev)
			if e.gen != g {
				break // the wheel was rebuilt under us
			}
			b = &e.slots[s]
			if b.head >= len(b.evs) {
				break // bucket drained (possibly refilled and re-drained)
			}
			// More events share this timestamp (or arrived at it): keep
			// draining — nothing earlier can exist, since scheduling into
			// the past is impossible.
		}
	}
}

// peek returns the earliest pending timestamp.
func (e *Engine) peek() (Time, bool) {
	if e.heapMode {
		if len(e.events) == 0 {
			return 0, false
		}
		return e.events[0].when, true
	}
	if e.count == 0 {
		return 0, false
	}
	b := &e.slots[e.earliestSlot()]
	return b.evs[b.head].when, true
}

// PeekTime returns the earliest pending timestamp without executing or
// removing anything, and ok=false when no events are pending. The sharded
// engine's epoch scheduler uses it to skip empty epochs deterministically.
func (e *Engine) PeekTime() (Time, bool) { return e.peek() }

// RunUntil executes events with timestamps <= t, then sets the clock to t
// if it has not advanced that far. It returns the number of events run.
// Like Run, it drains each earliest bucket's whole tie group without
// re-searching the occupancy bitmap between events — the sharded engine
// calls RunUntil once per shard per epoch, so this is its hottest loop.
// The same invariants protect the drain: a bucket can only be refilled
// with its own timestamp mid-drain (a timestamp one wheel revolution
// later forces a growth, which bumps the generation and breaks out).
func (e *Engine) RunUntil(t Time) int {
	n := 0
	if e.heapMode {
		for {
			when, ok := e.peek()
			if !ok || when > t || e.stopPoll() {
				break
			}
			e.Step()
			n++
		}
		if e.halted {
			return n
		}
		if e.now < t {
			e.now = t
		}
		return n
	}
	for e.count > 0 {
		if e.stopPoll() {
			return n
		}
		s := e.earliestSlot()
		b := &e.slots[s]
		if b.evs[b.head].when > t {
			break
		}
		g := e.gen
		for {
			ev := b.evs[b.head]
			b.head++
			if b.head == len(b.evs) {
				e.release(b)
				e.clearBit(s)
			}
			e.count--
			e.dispatch(ev)
			n++
			if e.gen != g {
				break // the wheel was rebuilt under us
			}
			b = &e.slots[s]
			if b.head >= len(b.evs) {
				break // bucket drained (possibly refilled and re-drained)
			}
		}
	}
	if e.now < t {
		e.now = t
	}
	return n
}

// ---- fast-forward support --------------------------------------------------

// ForEachPending visits every pending event in execution — (when, seq) —
// order, passing its delay relative to now, its typed payload, and whether
// it is a closure event (whose payload fields are meaningless). It is the
// inspection hook of the chip's steady-state fingerprint. f must not
// schedule or execute events.
func (e *Engine) ForEachPending(f func(dt Time, kind Kind, arg int32, closure bool)) {
	if e.heapMode {
		evs := make([]event, len(e.events))
		copy(evs, e.events)
		sort.Slice(evs, func(a, b int) bool {
			if evs[a].when != evs[b].when {
				return evs[a].when < evs[b].when
			}
			return evs[a].seq < evs[b].seq
		})
		for _, ev := range evs {
			f(ev.when-e.now, ev.kind, ev.arg, ev.kind == ClosureKind)
		}
		return
	}
	e.forEachOccupied(func(s int) {
		b := &e.slots[s]
		for i := b.head; i < len(b.evs); i++ {
			ev := &b.evs[i]
			f(ev.when-e.now, ev.kind, ev.arg, ev.kind == ClosureKind)
		}
	})
}

// FastForward advances the clock by dt cycles, shifting every pending
// event dt cycles into the future so all relative delays — and therefore
// the entire future execution order — are preserved, and credits steps
// events as executed. It is the engine half of the chip's steady-state
// fast-forward: the caller is asserting that the skipped interval would
// have replayed the same event pattern steps times over.
func (e *Engine) FastForward(dt Time, steps uint64) {
	if dt < 0 {
		panic(fmt.Sprintf("sim: fast-forward by negative delta %d", dt))
	}
	e.steps += steps
	if e.heapMode {
		for i := range e.events {
			e.events[i].when += dt
		}
		e.now += dt
		return
	}
	e.gen++ // shifted slots invalidate any in-flight drain handle in Run
	e.scratch = e.scratch[:0]
	e.forEachOccupied(func(s int) {
		b := &e.slots[s]
		e.scratch = append(e.scratch, b.evs[b.head:]...)
		e.release(b)
	})
	for _, lv := range e.occ {
		clear(lv)
	}
	e.count = 0
	e.now += dt
	for i := range e.scratch {
		ev := e.scratch[i]
		ev.when += dt
		e.pushWheel(ev)
	}
}

// ---- FCFS cursors ----------------------------------------------------------

// Cursor models a serialized FCFS resource such as a memory channel or a
// shared pipeline. Instead of simulating occupancy cycle by cycle, the
// cursor tracks the time at which the resource next becomes free; a request
// arriving at time now and needing dur cycles of service starts at
// max(now, free) and completes dur cycles later. Because the event engine
// delivers requests in nondecreasing time order, the cursor is an exact
// FCFS queue.
//
// The zero value is an idle resource that has never been used.
type Cursor struct {
	free Time
	busy Time
	ops  int64
}

// Acquire reserves the resource for dur cycles for a request arriving at
// now, returning the service start and completion times.
func (c *Cursor) Acquire(now Time, dur Time) (start, done Time) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative service duration %d", dur))
	}
	start = now
	if c.free > start {
		start = c.free
	}
	done = start + dur
	c.free = done
	c.busy += dur
	c.ops++
	return start, done
}

// FreeAt returns the earliest time at which the resource is idle.
func (c *Cursor) FreeAt() Time { return c.free }

// Busy returns the total cycles of service the resource has performed.
func (c *Cursor) Busy() Time { return c.busy }

// Ops returns the number of Acquire calls.
func (c *Cursor) Ops() int64 { return c.ops }

// Shift moves the cursor's free horizon dt cycles into the future. Under
// exact periodicity every acquisition in the skipped interval lands dt
// cycles after its counterpart in the observed period, so the horizon the
// full simulation would have reached is exactly free+dt — which makes
// Shift the cursor half of the chip's fast-forward.
func (c *Cursor) Shift(dt Time) { c.free += dt }

// Account credits busy cycles and operations without moving the free
// horizon — the accounting half of a fast-forwarded period.
func (c *Cursor) Account(busy Time, ops int64) {
	c.busy += busy
	c.ops += ops
}

// SetState overwrites the cursor's complete accounting state. It is the
// permutation hook of the chip's iteration-periodic fast-forward: when a
// skipped interval's address translation rotates the interleave, one
// cursor's future becomes another's, so the jump transplants state across
// cursors instead of shifting each in place.
func (c *Cursor) SetState(free, busy Time, ops int64) {
	c.free, c.busy, c.ops = free, busy, ops
}

// Utilization returns busy time as a fraction of the elapsed horizon.
// It returns 0 for a non-positive horizon.
func (c *Cursor) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(c.busy) / float64(horizon)
}

// Reset returns the cursor to its initial idle state.
func (c *Cursor) Reset() { *c = Cursor{} }
