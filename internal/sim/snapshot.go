package sim

import "sort"

// State returns the cursor's complete accounting state — the inverse of
// SetState. It exists so a checkpoint can capture a cursor by value and
// restore it later without the snapshot layer reaching into unexported
// fields.
func (c *Cursor) State() (free, busy Time, ops int64) {
	return c.free, c.busy, c.ops
}

// EngineImage is a checkpoint of an engine's execution state: the clock,
// the sequence and step counters, and every pending typed event in
// execution — (when, seq) — order. Images are plain slices so a caller can
// pool them and snapshot repeatedly without reallocating (SnapshotInto
// reuses capacity).
//
// Closure (At/After) events cannot be imaged: a func cannot be restored by
// value, and the simulation hot path schedules none. SnapshotInto panics if
// one is pending, which turns an accidental closure on the speculated path
// into an immediate, attributable failure instead of silent divergence.
type EngineImage struct {
	Now   Time
	Seq   uint64
	Steps uint64
	Evs   []EventImage
}

// EventImage is one pending typed event, including its original sequence
// number: ties between events at one timestamp are broken by seq, so a
// restore that dropped it would reorder same-cycle handlers and break
// determinism.
type EventImage struct {
	When Time
	Seq  uint64
	Arg  int32
	Kind Kind
}

// SnapshotInto captures the engine's execution state into img, reusing
// img's event capacity. The event list is recorded in (when, seq) order —
// the order RestoreImage reinserts, which is what keeps per-bucket append
// order equal to sequence order after a restore.
func (e *Engine) SnapshotInto(img *EngineImage) {
	img.Now, img.Seq, img.Steps = e.now, e.seq, e.steps
	img.Evs = img.Evs[:0]
	if e.heapMode {
		for _, ev := range e.events {
			if ev.kind == ClosureKind {
				panic("sim: SnapshotInto with a pending closure event")
			}
			img.Evs = append(img.Evs, EventImage{When: ev.when, Seq: ev.seq, Arg: ev.arg, Kind: ev.kind})
		}
		sort.Slice(img.Evs, func(a, b int) bool {
			if img.Evs[a].When != img.Evs[b].When {
				return img.Evs[a].When < img.Evs[b].When
			}
			return img.Evs[a].Seq < img.Evs[b].Seq
		})
		return
	}
	// Wheel slots visited in circular time order hold one timestamp each,
	// appended in seq order, so the traversal is already (when, seq) order.
	e.forEachOccupied(func(s int) {
		b := &e.slots[s]
		for i := b.head; i < len(b.evs); i++ {
			ev := &b.evs[i]
			if ev.kind == ClosureKind {
				panic("sim: SnapshotInto with a pending closure event")
			}
			img.Evs = append(img.Evs, EventImage{When: ev.when, Seq: ev.seq, Arg: ev.arg, Kind: ev.kind})
		}
	})
}

// RestoreImage rewinds the engine to a state captured by SnapshotInto:
// clock, sequence and step counters, and the exact pending-event set with
// original sequence numbers. Capacity (wheel span, bucket buffers) is
// retained, so checkpoint/restore cycles do not reallocate. The handler,
// queue-structure choice, and cancellation arming are untouched — they are
// configuration, not execution state.
func (e *Engine) RestoreImage(img *EngineImage) {
	// Drop whatever is pending now.
	if e.heapMode {
		e.events = e.events[:0]
	} else {
		e.gen++
		for i := range e.slots {
			b := &e.slots[i]
			if b.evs != nil {
				e.release(b)
			}
		}
		for _, lv := range e.occ {
			clear(lv)
		}
		e.count = 0
	}
	// The clock must be restored before reinsertion: wheel slot indices are
	// when mod span relative to now, and pushWheel asserts when >= now.
	e.now, e.seq, e.steps = img.Now, img.Seq, img.Steps
	if e.heapMode {
		// img.Evs is sorted by (when, seq); an ascending-sorted array is
		// already a valid min-heap, so a straight copy restores the queue.
		for _, iv := range img.Evs {
			e.events = append(e.events, event{when: iv.When, seq: iv.Seq, arg: iv.Arg, kind: iv.Kind})
		}
		return
	}
	for _, iv := range img.Evs {
		e.pushWheel(event{when: iv.When, seq: iv.Seq, arg: iv.Arg, kind: iv.Kind})
		// pushWheel appends in call order, so the (when, seq) image order
		// lands each bucket's events in seq order — the pop-order invariant.
	}
}
