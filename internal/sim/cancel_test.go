package sim

import (
	"sync/atomic"
	"testing"
)

// chainEngine builds an engine whose handler perpetually reschedules event
// 0 one cycle ahead — an unbounded run that only cancellation can end.
func chainEngine() *Engine {
	e := &Engine{}
	e.SetHandler(func(_ Kind, _ int32) {
		e.Schedule(e.Now()+1, 1, 0)
	})
	e.Schedule(0, 1, 0)
	return e
}

// TestStopFlagHaltsRun proves a pre-set stop flag halts Run promptly with
// the pending queue intact and Interrupted reporting the early return.
func TestStopFlagHaltsRun(t *testing.T) {
	e := chainEngine()
	var stop atomic.Bool
	stop.Store(true)
	e.SetStop(&stop)
	e.Run()
	if !e.Interrupted() {
		t.Fatal("Interrupted() = false after a stopped Run")
	}
	if e.Pending() == 0 {
		t.Fatal("stop consumed the pending queue; expected the chain event to survive")
	}
	if e.Steps() > stopPollInterval {
		t.Fatalf("stopped Run executed %d steps; want <= one poll interval (%d)", e.Steps(), stopPollInterval)
	}
}

// TestStopAtBudgetIsDeterministic proves the step budget halts the run at
// a reproducible step count: the poll schedule is a function of the event
// stream, so two identical runs halt at the identical step.
func TestStopAtBudgetIsDeterministic(t *testing.T) {
	const budget = 5000
	run := func() uint64 {
		e := chainEngine()
		e.StopAt(budget)
		e.Run()
		if !e.Interrupted() {
			t.Fatal("Interrupted() = false after a budgeted Run")
		}
		return e.Steps()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("step budget halted at %d then %d; cancellation is not deterministic", a, b)
	}
	if a < budget || a > budget+stopPollInterval {
		t.Fatalf("halted at step %d; want within one poll interval past the budget %d", a, budget)
	}
}

// TestStopFlagHaltsRunUntil covers the bounded-run loop used by the
// sharded engine's epochs.
func TestStopFlagHaltsRunUntil(t *testing.T) {
	e := chainEngine()
	var stop atomic.Bool
	stop.Store(true)
	e.SetStop(&stop)
	e.RunUntil(1 << 20)
	if !e.Interrupted() {
		t.Fatal("Interrupted() = false after a stopped RunUntil")
	}
	if e.Now() == 1<<20 {
		t.Fatal("stopped RunUntil still fast-forwarded the clock to the bound")
	}
}

// TestResetDisarmsStop proves Reset returns the engine to the unarmed
// zero-cost path.
func TestResetDisarmsStop(t *testing.T) {
	e := chainEngine()
	e.StopAt(100)
	e.Run()
	e.Reset()
	if e.Interrupted() {
		t.Fatal("Interrupted() survived Reset")
	}
	e.SetHandler(func(_ Kind, _ int32) {})
	e.Schedule(0, 1, 0)
	e.Run()
	if e.Interrupted() || e.Pending() != 0 {
		t.Fatal("reset engine did not run to completion unarmed")
	}
}
