package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order %v", got)
	}
	if e.Now() != 30 {
		t.Errorf("final time %d", e.Now())
	}
}

func TestEngineTieBreakBySequence(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events ran out of insertion order: %v", got)
		}
	}
}

func TestEngineEventsScheduledDuringRun(t *testing.T) {
	var e Engine
	count := 0
	var step func()
	step = func() {
		count++
		if count < 5 {
			e.After(7, step)
		}
	}
	e.At(0, step)
	e.Run()
	if count != 5 {
		t.Errorf("ran %d steps", count)
	}
	if e.Now() != 28 {
		t.Errorf("final time %d, want 28", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	var e Engine
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling into the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	n := e.RunUntil(15)
	if n != 1 || ran != 1 {
		t.Errorf("RunUntil(15) ran %d events", ran)
	}
	if e.Now() != 15 {
		t.Errorf("time %d, want 15", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending %d", e.Pending())
	}
}

func TestTypedEventsDispatchInOrder(t *testing.T) {
	var e Engine
	var got []int32
	e.SetHandler(func(k Kind, arg int32) {
		if k != 7 {
			t.Fatalf("kind %d, want 7", k)
		}
		got = append(got, arg)
	})
	e.Schedule(30, 7, 3)
	e.Schedule(10, 7, 1)
	e.Schedule(20, 7, 2)
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order %v", got)
	}
	if e.Now() != 30 {
		t.Errorf("final time %d", e.Now())
	}
}

func TestTypedAndClosureEventsShareSequenceSpace(t *testing.T) {
	// Ties at the same timestamp must break by scheduling order across
	// both event forms — the property that makes the typed rewrite of a
	// closure-based run loop bit-identical.
	var e Engine
	var got []int
	e.SetHandler(func(_ Kind, arg int32) { got = append(got, int(arg)) })
	e.Schedule(5, 0, 0)
	e.At(5, func() { got = append(got, 1) })
	e.Schedule(5, 0, 2)
	e.At(5, func() { got = append(got, 3) })
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events ran out of scheduling order: %v", got)
		}
	}
}

func TestTypedEventsScheduledDuringRun(t *testing.T) {
	var e Engine
	count := int32(0)
	e.SetHandler(func(_ Kind, arg int32) {
		count++
		if count < 5 {
			e.Schedule(e.Now()+7, 0, arg)
		}
	})
	e.Schedule(0, 0, 0)
	e.Run()
	if count != 5 {
		t.Errorf("ran %d steps", count)
	}
	if e.Now() != 28 {
		t.Errorf("final time %d, want 28", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.SetHandler(func(Kind, int32) {})
	e.Schedule(10, 0, 0)
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling into the past did not panic")
		}
	}()
	e.Schedule(5, 0, 0)
}

// TestHeapOrderProperty drives the engine with adversarial (when, order)
// mixes and checks the pop order is exactly the (when, seq) sort — the
// invariant that keeps results independent of heap shape and arity.
func TestHeapOrderProperty(t *testing.T) {
	f := func(whens []uint8) bool {
		var e Engine
		type rec struct {
			when Time
			seq  int
		}
		var got []rec
		e.SetHandler(func(_ Kind, arg int32) {
			got = append(got, rec{e.Now(), int(arg)})
		})
		for i, w := range whens {
			e.Schedule(Time(w%16), 0, int32(i))
		}
		e.Run()
		if len(got) != len(whens) {
			return false
		}
		for i := 1; i < len(got); i++ {
			a, b := got[i-1], got[i]
			if a.when > b.when || (a.when == b.when && a.seq > b.seq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTypedEventLoopDoesNotAllocate is the allocation regression for the
// steady-state run loop: once the heap's backing array has reached its
// working capacity, a schedule/step cycle must be allocation-free.
func TestTypedEventLoopDoesNotAllocate(t *testing.T) {
	var e Engine
	live := 0
	e.SetHandler(func(_ Kind, arg int32) {
		live--
		if live < 64 {
			e.Schedule(e.Now()+Time(arg%13)+1, 0, arg)
			live++
		}
	})
	// Grow the heap to its steady-state working set before measuring.
	for i := int32(0); i < 64; i++ {
		e.Schedule(Time(i%7), 0, i)
		live++
	}
	avg := testing.AllocsPerRun(1000, func() {
		e.Step()
	})
	if avg != 0 {
		t.Errorf("steady-state event loop allocates %.2f allocs/step, want 0", avg)
	}
}

func TestCursorFCFS(t *testing.T) {
	var c Cursor
	s, d := c.Acquire(0, 10)
	if s != 0 || d != 10 {
		t.Errorf("first acquire (%d, %d)", s, d)
	}
	s, d = c.Acquire(5, 10) // arrives while busy: queued
	if s != 10 || d != 20 {
		t.Errorf("queued acquire (%d, %d)", s, d)
	}
	s, d = c.Acquire(100, 10) // arrives idle
	if s != 100 || d != 110 {
		t.Errorf("idle acquire (%d, %d)", s, d)
	}
	if c.Busy() != 30 {
		t.Errorf("busy %d", c.Busy())
	}
	if c.Ops() != 3 {
		t.Errorf("ops %d", c.Ops())
	}
}

func TestCursorConservationProperty(t *testing.T) {
	// For nondecreasing arrivals, service is work-conserving: completion
	// of request i is max(arrival_i, completion_{i-1}) + dur_i.
	f := func(gaps []uint8, durs []uint8) bool {
		var c Cursor
		now, prevDone := Time(0), Time(0)
		n := len(gaps)
		if len(durs) < n {
			n = len(durs)
		}
		for i := 0; i < n; i++ {
			now += Time(gaps[i])
			dur := Time(durs[i]%16 + 1)
			start, done := c.Acquire(now, dur)
			wantStart := now
			if prevDone > wantStart {
				wantStart = prevDone
			}
			if start != wantStart || done != wantStart+dur {
				return false
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCursorUtilization(t *testing.T) {
	var c Cursor
	c.Acquire(0, 25)
	if u := c.Utilization(100); u != 0.25 {
		t.Errorf("utilization %f", u)
	}
	if u := c.Utilization(0); u != 0 {
		t.Errorf("zero-horizon utilization %f", u)
	}
}

// ---- timing wheel vs reference heap ----------------------------------------

// driveBoth runs the same schedule script through a wheel engine and a
// reference-heap engine and asserts identical execution traces and
// identical Steps/Pending accounting after every event. The script is a
// byte stream: each executed event schedules a follow-up with a delay
// drawn from the stream (including zero — a same-cycle event), so ties,
// bucket reuse and scheduling-during-drain are all exercised.
func driveBoth(t *testing.T, seeds []byte, delays []byte) {
	t.Helper()
	type rec struct {
		now  Time
		arg  int32
		kind Kind
	}
	run := func(heap bool) ([]rec, []uint64, []int) {
		var e Engine
		if heap {
			e.UseReferenceHeap()
		}
		var trace []rec
		var steps []uint64
		var pend []int
		di := 0
		e.SetHandler(func(k Kind, arg int32) {
			trace = append(trace, rec{e.Now(), arg, k})
			if di < len(delays) {
				d := Time(delays[di]) * Time(delays[di]) // up to ~65k: forces growth
				k2 := Kind(delays[di] % 3)
				di++
				e.Schedule(e.Now()+d, k2, arg+1)
				if d%5 == 0 {
					e.Schedule(e.Now(), k2, -arg) // same-cycle tie
				}
			}
		})
		for i, s := range seeds {
			e.Schedule(Time(s%64), Kind(s%3), int32(i))
		}
		for e.Step() {
			steps = append(steps, e.Steps())
			pend = append(pend, e.Pending())
		}
		return trace, steps, pend
	}
	wt, ws, wp := run(false)
	ht, hs, hp := run(true)
	if len(wt) != len(ht) {
		t.Fatalf("wheel executed %d events, heap %d", len(wt), len(ht))
	}
	for i := range wt {
		if wt[i] != ht[i] {
			t.Fatalf("event %d diverged: wheel %+v, heap %+v", i, wt[i], ht[i])
		}
		if ws[i] != hs[i] || wp[i] != hp[i] {
			t.Fatalf("accounting diverged at event %d: wheel steps/pending %d/%d, heap %d/%d",
				i, ws[i], wp[i], hs[i], hp[i])
		}
	}
}

// TestWheelHeapDifferential is the equivalence proof for replacing the
// 4-ary heap with the timing wheel: random bounded-delay schedules —
// including zero delays, same-cycle ties and delays that force the wheel
// to grow — must pop in the identical (when, seq) order from both queues,
// with identical Steps and Pending counters throughout.
func TestWheelHeapDifferential(t *testing.T) {
	f := func(seeds []byte, delays []byte) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 64 {
			seeds = seeds[:64]
		}
		if len(delays) > 512 {
			delays = delays[:512]
		}
		driveBoth(t, seeds, delays)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestWheelGrowthPreservesOrder pins the rehash path: events scheduled far
// beyond the initial span force repeated growth while earlier events are
// pending, and the pop order must remain the (when, seq) sort.
func TestWheelGrowthPreservesOrder(t *testing.T) {
	var e Engine
	var got []Time
	e.SetHandler(func(_ Kind, arg int32) { got = append(got, e.Now()) })
	whens := []Time{100, 3, 70000, 511, 70000, 5, 1 << 20, 0}
	for _, w := range whens {
		e.Schedule(w, 0, 0)
	}
	e.Run()
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("pop order regressed across growth: %v", got)
		}
	}
	if len(got) != len(whens) {
		t.Fatalf("executed %d of %d events", len(got), len(whens))
	}
}

// TestForEachPendingOrder checks the fingerprint iteration hook: both
// queue structures must visit pending events in execution order with
// now-relative delays.
func TestForEachPendingOrder(t *testing.T) {
	for _, heap := range []bool{false, true} {
		var e Engine
		if heap {
			e.UseReferenceHeap()
		}
		e.SetHandler(func(Kind, int32) {})
		e.Schedule(40, 1, 4)
		e.Schedule(10, 2, 1)
		e.Schedule(10, 3, 2) // tie: later seq
		e.Schedule(700, 4, 7)
		e.Schedule(5, 5, 0)
		e.Step() // run the t=5 event; now=5
		var dts []Time
		var args []int32
		e.ForEachPending(func(dt Time, _ Kind, arg int32, closure bool) {
			if closure {
				t.Fatal("typed event reported as closure")
			}
			dts = append(dts, dt)
			args = append(args, arg)
		})
		wantDt := []Time{5, 5, 35, 695}
		wantArg := []int32{1, 2, 4, 7}
		for i := range wantDt {
			if i >= len(dts) || dts[i] != wantDt[i] || args[i] != wantArg[i] {
				t.Fatalf("heap=%v: pending iteration (%v, %v), want (%v, %v)", heap, dts, args, wantDt, wantArg)
			}
		}
	}
}

// TestFastForwardShiftsPending checks the fast-forward hook on both queue
// structures: the clock advances, every pending delay is preserved, the
// credited steps land in Steps, and subsequent execution continues in
// order at the shifted times.
func TestFastForwardShiftsPending(t *testing.T) {
	for _, heap := range []bool{false, true} {
		var e Engine
		if heap {
			e.UseReferenceHeap()
		}
		var got []Time
		e.SetHandler(func(_ Kind, arg int32) { got = append(got, e.Now()) })
		e.Schedule(10, 0, 1)
		e.Schedule(500, 0, 2)
		e.Schedule(10, 0, 3)
		e.Step() // now=10, two events left
		e.FastForward(1_000_000, 42)
		if e.Now() != 1_000_010 {
			t.Fatalf("heap=%v: now %d after fast-forward", heap, e.Now())
		}
		if e.Steps() != 1+42 {
			t.Fatalf("heap=%v: steps %d, want 43", heap, e.Steps())
		}
		if e.Pending() != 2 {
			t.Fatalf("heap=%v: pending %d, want 2", heap, e.Pending())
		}
		e.Run()
		want := []Time{10, 1_000_010, 1_000_500}
		if len(got) != 3 || got[1] != want[1] || got[2] != want[2] {
			t.Fatalf("heap=%v: execution times %v, want %v", heap, got, want)
		}
	}
}

// TestEngineResetReuse pins the machine-reuse contract: a reset engine
// must replay an identical schedule with identical times, sequence
// numbering and accounting, without keeping stale events.
func TestEngineResetReuse(t *testing.T) {
	var e Engine
	run := func() []Time {
		var got []Time
		e.SetHandler(func(Kind, int32) { got = append(got, e.Now()) })
		e.Schedule(3, 0, 0)
		e.Schedule(900, 0, 0)
		e.Schedule(3, 0, 0)
		e.Run()
		return got
	}
	a := run()
	stepsA := e.Steps()
	e.Reset()
	if e.Now() != 0 || e.Steps() != 0 || e.Pending() != 0 {
		t.Fatalf("reset left now=%d steps=%d pending=%d", e.Now(), e.Steps(), e.Pending())
	}
	b := run()
	if len(a) != len(b) {
		t.Fatalf("replay executed %d events, want %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay time %d differs: %d vs %d", i, b[i], a[i])
		}
	}
	if e.Steps() != stepsA {
		t.Fatalf("replay steps %d, want %d", e.Steps(), stepsA)
	}
}

// TestRunUntilWheelHeapDifferential pins RunUntil's tie-group drain (the
// sharded engine's per-epoch hot loop) against the reference heap: the
// same schedule advanced in fixed-width horizons must execute the same
// events in the same order with the same per-chunk counts and the same
// final clock, including horizons that split tie groups, trigger growth
// mid-drain, and cover empty spans.
func TestRunUntilWheelHeapDifferential(t *testing.T) {
	f := func(seeds []byte, delays []byte, width byte) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 48 {
			seeds = seeds[:48]
		}
		if len(delays) > 256 {
			delays = delays[:256]
		}
		w := Time(width%7) + 1
		type rec struct {
			now  Time
			arg  int32
			kind Kind
		}
		run := func(heap bool) ([]rec, []int, Time) {
			var e Engine
			if heap {
				e.UseReferenceHeap()
			}
			var trace []rec
			var counts []int
			di := 0
			e.SetHandler(func(k Kind, arg int32) {
				trace = append(trace, rec{e.Now(), arg, k})
				if di < len(delays) {
					d := Time(delays[di]) * Time(delays[di])
					k2 := Kind(delays[di] % 3)
					di++
					e.Schedule(e.Now()+d, k2, arg+1)
					if d%5 == 0 {
						e.Schedule(e.Now(), k2, -arg)
					}
				}
			})
			for i, s := range seeds {
				e.Schedule(Time(s%64), Kind(s%3), int32(i))
			}
			for horizon := w; e.Pending() > 0 && horizon < 1<<21; horizon += w {
				counts = append(counts, e.RunUntil(horizon-1))
			}
			return trace, counts, e.Now()
		}
		wt, wc, wn := run(false)
		ht, hc, hn := run(true)
		if len(wt) != len(ht) || wn != hn {
			t.Errorf("wheel ran %d events to %d, heap %d to %d", len(wt), wn, len(ht), hn)
			return false
		}
		for i := range wt {
			if wt[i] != ht[i] {
				t.Errorf("event %d diverged: wheel %+v, heap %+v", i, wt[i], ht[i])
				return false
			}
		}
		for i := range wc {
			if wc[i] != hc[i] {
				t.Errorf("chunk %d diverged: wheel ran %d, heap %d", i, wc[i], hc[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
