package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order %v", got)
	}
	if e.Now() != 30 {
		t.Errorf("final time %d", e.Now())
	}
}

func TestEngineTieBreakBySequence(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events ran out of insertion order: %v", got)
		}
	}
}

func TestEngineEventsScheduledDuringRun(t *testing.T) {
	var e Engine
	count := 0
	var step func()
	step = func() {
		count++
		if count < 5 {
			e.After(7, step)
		}
	}
	e.At(0, step)
	e.Run()
	if count != 5 {
		t.Errorf("ran %d steps", count)
	}
	if e.Now() != 28 {
		t.Errorf("final time %d, want 28", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	var e Engine
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling into the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	n := e.RunUntil(15)
	if n != 1 || ran != 1 {
		t.Errorf("RunUntil(15) ran %d events", ran)
	}
	if e.Now() != 15 {
		t.Errorf("time %d, want 15", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending %d", e.Pending())
	}
}

func TestTypedEventsDispatchInOrder(t *testing.T) {
	var e Engine
	var got []int32
	e.SetHandler(func(k Kind, arg int32) {
		if k != 7 {
			t.Fatalf("kind %d, want 7", k)
		}
		got = append(got, arg)
	})
	e.Schedule(30, 7, 3)
	e.Schedule(10, 7, 1)
	e.Schedule(20, 7, 2)
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order %v", got)
	}
	if e.Now() != 30 {
		t.Errorf("final time %d", e.Now())
	}
}

func TestTypedAndClosureEventsShareSequenceSpace(t *testing.T) {
	// Ties at the same timestamp must break by scheduling order across
	// both event forms — the property that makes the typed rewrite of a
	// closure-based run loop bit-identical.
	var e Engine
	var got []int
	e.SetHandler(func(_ Kind, arg int32) { got = append(got, int(arg)) })
	e.Schedule(5, 0, 0)
	e.At(5, func() { got = append(got, 1) })
	e.Schedule(5, 0, 2)
	e.At(5, func() { got = append(got, 3) })
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events ran out of scheduling order: %v", got)
		}
	}
}

func TestTypedEventsScheduledDuringRun(t *testing.T) {
	var e Engine
	count := int32(0)
	e.SetHandler(func(_ Kind, arg int32) {
		count++
		if count < 5 {
			e.Schedule(e.Now()+7, 0, arg)
		}
	})
	e.Schedule(0, 0, 0)
	e.Run()
	if count != 5 {
		t.Errorf("ran %d steps", count)
	}
	if e.Now() != 28 {
		t.Errorf("final time %d, want 28", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.SetHandler(func(Kind, int32) {})
	e.Schedule(10, 0, 0)
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling into the past did not panic")
		}
	}()
	e.Schedule(5, 0, 0)
}

// TestHeapOrderProperty drives the engine with adversarial (when, order)
// mixes and checks the pop order is exactly the (when, seq) sort — the
// invariant that keeps results independent of heap shape and arity.
func TestHeapOrderProperty(t *testing.T) {
	f := func(whens []uint8) bool {
		var e Engine
		type rec struct {
			when Time
			seq  int
		}
		var got []rec
		e.SetHandler(func(_ Kind, arg int32) {
			got = append(got, rec{e.Now(), int(arg)})
		})
		for i, w := range whens {
			e.Schedule(Time(w%16), 0, int32(i))
		}
		e.Run()
		if len(got) != len(whens) {
			return false
		}
		for i := 1; i < len(got); i++ {
			a, b := got[i-1], got[i]
			if a.when > b.when || (a.when == b.when && a.seq > b.seq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTypedEventLoopDoesNotAllocate is the allocation regression for the
// steady-state run loop: once the heap's backing array has reached its
// working capacity, a schedule/step cycle must be allocation-free.
func TestTypedEventLoopDoesNotAllocate(t *testing.T) {
	var e Engine
	live := 0
	e.SetHandler(func(_ Kind, arg int32) {
		live--
		if live < 64 {
			e.Schedule(e.Now()+Time(arg%13)+1, 0, arg)
			live++
		}
	})
	// Grow the heap to its steady-state working set before measuring.
	for i := int32(0); i < 64; i++ {
		e.Schedule(Time(i%7), 0, i)
		live++
	}
	avg := testing.AllocsPerRun(1000, func() {
		e.Step()
	})
	if avg != 0 {
		t.Errorf("steady-state event loop allocates %.2f allocs/step, want 0", avg)
	}
}

func TestCursorFCFS(t *testing.T) {
	var c Cursor
	s, d := c.Acquire(0, 10)
	if s != 0 || d != 10 {
		t.Errorf("first acquire (%d, %d)", s, d)
	}
	s, d = c.Acquire(5, 10) // arrives while busy: queued
	if s != 10 || d != 20 {
		t.Errorf("queued acquire (%d, %d)", s, d)
	}
	s, d = c.Acquire(100, 10) // arrives idle
	if s != 100 || d != 110 {
		t.Errorf("idle acquire (%d, %d)", s, d)
	}
	if c.Busy() != 30 {
		t.Errorf("busy %d", c.Busy())
	}
	if c.Ops() != 3 {
		t.Errorf("ops %d", c.Ops())
	}
}

func TestCursorConservationProperty(t *testing.T) {
	// For nondecreasing arrivals, service is work-conserving: completion
	// of request i is max(arrival_i, completion_{i-1}) + dur_i.
	f := func(gaps []uint8, durs []uint8) bool {
		var c Cursor
		now, prevDone := Time(0), Time(0)
		n := len(gaps)
		if len(durs) < n {
			n = len(durs)
		}
		for i := 0; i < n; i++ {
			now += Time(gaps[i])
			dur := Time(durs[i]%16 + 1)
			start, done := c.Acquire(now, dur)
			wantStart := now
			if prevDone > wantStart {
				wantStart = prevDone
			}
			if start != wantStart || done != wantStart+dur {
				return false
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCursorUtilization(t *testing.T) {
	var c Cursor
	c.Acquire(0, 25)
	if u := c.Utilization(100); u != 0.25 {
		t.Errorf("utilization %f", u)
	}
	if u := c.Utilization(0); u != 0 {
		t.Errorf("zero-horizon utilization %f", u)
	}
}
