package sim

import (
	"reflect"
	"testing"
)

// popLog drains the engine and records every dispatched (now, kind, arg)
// triple, the observable execution order.
type popped struct {
	When Time
	Kind Kind
	Arg  int32
}

func drainLog(e *Engine) []popped {
	var log []popped
	e.SetHandler(func(k Kind, a int32) {
		log = append(log, popped{e.Now(), k, a})
	})
	e.Run()
	return log
}

// seedSchedule loads a deterministic mix of timestamps with same-cycle tie
// groups (the case where sequence order matters).
func seedSchedule(e *Engine) {
	for i := 0; i < 64; i++ {
		when := Time((i * 37) % 200)
		e.Schedule(when, Kind(i%5), int32(i))
		if i%3 == 0 {
			e.Schedule(when, Kind(7), int32(1000+i)) // tie at the same cycle
		}
	}
}

func testSnapshotRestore(t *testing.T, heap bool) {
	mk := func() *Engine {
		e := &Engine{}
		if heap {
			e.UseReferenceHeap()
		}
		return e
	}

	// Control: snapshot mid-run, keep draining untouched.
	ctl := mk()
	seedSchedule(ctl)
	ctl.SetHandler(func(Kind, int32) {})
	for i := 0; i < 20; i++ {
		ctl.Step()
	}
	var img EngineImage
	ctl.SnapshotInto(&img)
	want := drainLog(ctl)

	// Subject: identical prefix, snapshot, then diverge hard — extra
	// events, extra execution — and restore.
	sub := mk()
	seedSchedule(sub)
	sub.SetHandler(func(Kind, int32) {})
	for i := 0; i < 20; i++ {
		sub.Step()
	}
	var img2 EngineImage
	sub.SnapshotInto(&img2)
	if !reflect.DeepEqual(img, img2) {
		t.Fatalf("identical engines snapshot differently:\n%+v\n%+v", img, img2)
	}
	for i := 0; i < 30; i++ {
		sub.Step()
	}
	sub.Schedule(sub.Now()+500, 9, 9999) // speculative-era event, must vanish
	sub.Step()
	sub.RestoreImage(&img2)

	if sub.Now() != img.Now || sub.Steps() != img.Steps || sub.Pending() != len(img.Evs) {
		t.Fatalf("restore: now=%d steps=%d pending=%d, want now=%d steps=%d pending=%d",
			sub.Now(), sub.Steps(), sub.Pending(), img.Now, img.Steps, len(img.Evs))
	}
	got := drainLog(sub)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored drain order diverged:\ngot  %v\nwant %v", got, want)
	}

	// A second snapshot/restore cycle must reuse image capacity.
	evCap := cap(img2.Evs)
	for i := 0; i < 8; i++ {
		sub.Schedule(sub.Now()+Time(i), Kind(i%5), int32(i))
	}
	sub.SnapshotInto(&img2)
	if len(img2.Evs) > 0 && len(img2.Evs) <= evCap && cap(img2.Evs) != evCap {
		t.Fatalf("SnapshotInto reallocated: cap %d -> %d", evCap, cap(img2.Evs))
	}
}

func TestEngineSnapshotRestoreWheel(t *testing.T) { testSnapshotRestore(t, false) }
func TestEngineSnapshotRestoreHeap(t *testing.T)  { testSnapshotRestore(t, true) }

func TestSnapshotPanicsOnClosure(t *testing.T) {
	e := &Engine{}
	e.At(5, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("SnapshotInto with a pending closure did not panic")
		}
	}()
	var img EngineImage
	e.SnapshotInto(&img)
}

func TestCursorStateRoundTrip(t *testing.T) {
	var c Cursor
	c.Acquire(10, 7)
	c.Acquire(12, 3)
	free, busy, ops := c.State()
	var d Cursor
	d.SetState(free, busy, ops)
	if d != c {
		t.Fatalf("State/SetState round trip: got %+v want %+v", d, c)
	}
}
