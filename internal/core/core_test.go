package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/phys"
)

func TestUtilizationConvoy(t *testing.T) {
	ms := t2spec()
	// Three congruent streams: every access at one controller per step.
	ss := StreamSet{Bases: []phys.Addr{0, 2 << 20, 4 << 20}, Stride: 64}
	u := Utilization(ms, ss, 0)
	var sum float64
	for _, x := range u {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("utilization sums to %f", sum)
	}
	if c := MeanConcurrency(ms, ss, 0); c != 1 {
		t.Errorf("congruent streams concurrency %f, want 1", c)
	}
	if Regime(ms, ss) != "convoy" {
		t.Errorf("regime %q", Regime(ms, ss))
	}
}

func TestUtilizationUniform(t *testing.T) {
	ms := t2spec()
	ss := StreamSet{Bases: []phys.Addr{0, 128, 256, 384}, Stride: 64}
	if c := MeanConcurrency(ms, ss, 0); c != 4 {
		t.Errorf("planned streams concurrency %f, want 4", c)
	}
	if Regime(ms, ss) != "uniform" {
		t.Errorf("regime %q", Regime(ms, ss))
	}
	if rb := PredictRelativeBandwidth(ms, ss); rb != 1 {
		t.Errorf("relative bandwidth %f", rb)
	}
}

func TestPlanArrayOffsetsRecipe(t *testing.T) {
	p := PlanArrayOffsets(t2spec(), 4)
	want := []int64{0, 128, 256, 384}
	for i, o := range p.Offsets {
		if o != want[i] {
			t.Fatalf("offsets %v, want %v", p.Offsets, want)
		}
	}
	if p.Concurrency != 4 {
		t.Errorf("planned concurrency %f", p.Concurrency)
	}
}

func TestPlanArrayOffsetsAlwaysUniformProperty(t *testing.T) {
	ms := t2spec()
	f := func(s uint8) bool {
		streams := int(s%4) + 1
		p := PlanArrayOffsets(ms, streams)
		return p.Concurrency == float64(streams)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlanRows(t *testing.T) {
	rp := PlanRows(t2spec())
	if rp.SegAlign != 512 || rp.Shift != 128 || rp.Schedule != "static,1" {
		t.Errorf("row plan %+v, want 512/128/static,1", rp)
	}
}

func TestPhaseSpreadLBMLayouts(t *testing.T) {
	ms := t2spec()
	// IvJK at N=64: stride = (N+2)*8 = 528 bytes: spreads.
	// IJKv at N=62: stride = 64^3*8: all streams congruent.
	// One padded row = 528 bytes = 16 mod 512: the 19 stream phases fan
	// out over 3 of 4 controllers at any instant (and rotate over all).
	if s := PhaseSpread(ms, 528, 19); s < 3 {
		t.Errorf("IvJK spread %d, want >= 3", s)
	}
	if s := PhaseSpread(ms, 64*64*64*8, 19); s != 1 {
		t.Errorf("aligned IJKv spread %d, want 1", s)
	}
	got := AdviseLayout(ms, "IJKv", 64*64*64*8, "IvJK", 528, 19)
	if got != "IvJK" {
		t.Errorf("advised %q", got)
	}
}

func TestExplainStreamOffset(t *testing.T) {
	ms := t2spec()
	phases, regime := ExplainStreamOffset(ms, 1<<25, 0)
	if regime != "convoy" {
		t.Errorf("offset 0 regime %q", regime)
	}
	for _, p := range phases {
		if p != phases[0] {
			t.Errorf("offset 0 phases %v not identical", phases)
		}
	}
	_, regime = ExplainStreamOffset(ms, 1<<25, 16)
	if regime != "uniform" {
		t.Errorf("offset 16 regime %q", regime)
	}
	phases, _ = ExplainStreamOffset(ms, 1<<25, 32)
	// Sect. 2.1: "at odd multiples of 32 ... bit 8 is different for array
	// B's base and thus two controllers are addressed".
	if phases[0] == phases[1] {
		t.Errorf("offset 32: B not on a different controller: %v", phases)
	}
}

func TestPeriodFallbackForHashedMapping(t *testing.T) {
	ms := MachineSpec{Mapping: phys.XORMapping{}, LineSize: 64}
	if ms.Period() != 64 {
		t.Errorf("hashed-mapping period %d, want line size", ms.Period())
	}
	// The planner must still produce line-aligned offsets.
	p := PlanArrayOffsets(ms, 4)
	for _, o := range p.Offsets {
		if o%64 != 0 {
			t.Errorf("offset %d not line aligned", o)
		}
	}
}

func TestXORMappingDefeatsConvoys(t *testing.T) {
	// The ablation claim: under a hashed interleave, even congruent bases
	// spread over controllers.
	ms := MachineSpec{Mapping: phys.XORMapping{}, LineSize: 64}
	ss := StreamSet{Bases: []phys.Addr{0, 2 << 20, 4 << 20}, Stride: 64}
	if c := MeanConcurrency(ms, ss, 64); c < 1.5 {
		t.Errorf("hashed mapping concurrency %f, want > 1.5", c)
	}
}

// t2spec is the T2 machine description the historical tests were written
// against.
func t2spec() MachineSpec { return SpecFor(phys.T2()) }
