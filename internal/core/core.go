// Package core implements the paper's contribution as a reusable library:
// given the address-to-controller mapping of the machine and the stream
// signature of a loop kernel, it analyzes controller aliasing and computes
// the placement parameters — per-array offsets, segment alignment and
// shift, and a loop schedule — that give uniform utilization of all memory
// controllers. This is the analytical recipe of Sects. 2.1-2.3: "these
// parameters ... can be obtained by analyzing the data access properties
// of the loop kernel, together with some knowledge about the mapping
// between addresses and memory controllers. No trial and error is
// required."
package core

import (
	"fmt"

	"repro/internal/phys"
)

// MachineSpec is what the optimizer needs to know about the memory system.
type MachineSpec struct {
	Mapping  phys.Mapping
	LineSize int64
}

// SpecFor returns the analyzer's view of a machine from its address
// mapping alone; the machine-profile registry (internal/machine) exposes
// the same thing per profile via Profile.Spec.
func SpecFor(m phys.Mapping) MachineSpec {
	return MachineSpec{Mapping: m, LineSize: phys.LineSize}
}

// Period returns the controller-interleave period in bytes, falling back
// to one line for hashed mappings with no period.
func (ms MachineSpec) Period() int64 {
	if p := ms.Mapping.Period(); p > 0 {
		return p
	}
	return ms.LineSize
}

// StreamSet describes the concurrent access streams of one loop iteration
// window: all streams advance by Stride bytes per step, in lockstep. This
// captures STREAM kernels (2-3 streams), the vector triad (4) and the
// per-thread stream bundles of stencil and LBM codes.
type StreamSet struct {
	Bases  []phys.Addr
	Stride int64 // bytes advanced per step; typically the line size
}

// Utilization returns the fraction of line accesses each controller
// receives when the stream set advances steps times. With a periodic
// mapping the distribution converges within Period/Stride steps.
func Utilization(ms MachineSpec, ss StreamSet, steps int) []float64 {
	if steps <= 0 {
		steps = int(ms.Period() / ms.LineSize * 2)
		if steps <= 0 {
			steps = 16
		}
	}
	counts := make([]int64, ms.Mapping.Controllers())
	var total int64
	for k := 0; k < steps; k++ {
		for _, b := range ss.Bases {
			a := b + phys.Addr(int64(k)*ss.Stride)
			counts[ms.Mapping.Controller(a)]++
			total++
		}
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// MeanConcurrency returns the average number of distinct controllers the
// stream set addresses per step — the quantity that decides between the
// "one controller at a time" convoy and uniform utilization. It ranges
// from 1 to min(len(bases), controllers).
func MeanConcurrency(ms MachineSpec, ss StreamSet, steps int) float64 {
	if steps <= 0 {
		steps = int(ms.Period() / ms.LineSize * 2)
		if steps <= 0 {
			steps = 16
		}
	}
	seen := make([]bool, ms.Mapping.Controllers())
	var sum float64
	for k := 0; k < steps; k++ {
		for i := range seen {
			seen[i] = false
		}
		n := 0
		for _, b := range ss.Bases {
			c := ms.Mapping.Controller(b + phys.Addr(int64(k)*ss.Stride))
			if !seen[c] {
				seen[c] = true
				n++
			}
		}
		sum += float64(n)
	}
	return sum / float64(steps)
}

// PredictRelativeBandwidth estimates the bandwidth of the stream set
// relative to the best achievable on this machine: the mean controller
// concurrency as a fraction of the controller count. 0.25 on the T2 is
// the full convoy, 1.0 the uniform optimum.
func PredictRelativeBandwidth(ms MachineSpec, ss StreamSet) float64 {
	return MeanConcurrency(ms, ss, 0) / float64(ms.Mapping.Controllers())
}

// Regime classifies a stream set the way Sect. 2.1 discusses the STREAM
// offsets: "convoy" (about one controller), "partial", or "uniform".
func Regime(ms MachineSpec, ss StreamSet) string {
	c := MeanConcurrency(ms, ss, 0)
	n := float64(ms.Mapping.Controllers())
	switch {
	case c <= 1.25:
		return "convoy"
	case c >= 0.75*n:
		return "uniform"
	default:
		return "partial"
	}
}

// ArrayPlan is a set of per-array byte offsets for a multi-stream kernel.
type ArrayPlan struct {
	Offsets     []int64 // byte offset to add to array i's aligned base
	Concurrency float64 // predicted mean controller concurrency
}

// PlanArrayOffsets computes base-address offsets for a kernel with the
// given number of concurrent streams, assuming all arrays are first
// aligned to a common boundary (a page, say). Stream i is displaced by
// i * Period/Controllers bytes, so at every loop step the streams address
// distinct controllers — the 128/256/384-byte recipe that makes the vector
// triad flat in Fig. 4.
func PlanArrayOffsets(ms MachineSpec, streams int) ArrayPlan {
	if streams <= 0 {
		panic(fmt.Sprintf("core: %d streams", streams))
	}
	step := ms.Period() / int64(ms.Mapping.Controllers())
	// Keep offsets line-aligned so element blocks do not straddle lines.
	if step%ms.LineSize != 0 {
		step = (step / ms.LineSize) * ms.LineSize
		if step == 0 {
			step = ms.LineSize
		}
	}
	p := ArrayPlan{Offsets: make([]int64, streams)}
	for i := range p.Offsets {
		p.Offsets[i] = int64(i) * step
	}
	bases := make([]phys.Addr, streams)
	for i := range bases {
		bases[i] = phys.Addr(p.Offsets[i])
	}
	p.Concurrency = MeanConcurrency(ms, StreamSet{Bases: bases, Stride: ms.LineSize}, 0)
	return p
}

// RowPlan is the segmented-array placement for row-organized kernels
// (stencil codes): align every row to the interleave period and shift
// successive rows by one controller step, so the concurrent row bundle
// {i-1, i, i+1} of a stencil — and the row sets of neighbouring threads —
// address different controllers.
type RowPlan struct {
	SegAlign int64  // per-segment alignment: the interleave period (512 B)
	Shift    int64  // per-segment shift: Period / Controllers (128 B)
	Schedule string // recommended OpenMP schedule
}

// PlanRows returns the stencil-row placement of Sect. 2.3, including the
// "static,1" schedule recommendation: round-robin rows keep the team's
// working band contiguous so shared source rows stay in the L2.
func PlanRows(ms MachineSpec) RowPlan {
	return RowPlan{
		SegAlign: ms.Period(),
		Shift:    ms.Period() / int64(ms.Mapping.Controllers()),
		Schedule: "static,1",
	}
}

// PhaseSpread returns the number of distinct controllers addressed by n
// streams whose base addresses are i*stride apart — the quantity that
// explains why the IvJK lattice-Boltzmann layout (stride = one padded row)
// beats IJKv (stride = a whole padded cube): an odd row stride spreads the
// 19 distribution-function streams over all controllers automatically.
func PhaseSpread(ms MachineSpec, stride int64, n int) int {
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		seen[ms.Mapping.Controller(phys.Addr(int64(i)*stride))] = true
	}
	return len(seen)
}

// AdviseLayout picks between two candidate multi-dimensional layouts by
// the controller spread of their stream bundles. strideA and strideB are
// the byte distances between consecutive streams (e.g. distribution
// functions) in each layout; the layout with the wider spread wins.
func AdviseLayout(ms MachineSpec, nameA string, strideA int64, nameB string, strideB int64, streams int) string {
	a := PhaseSpread(ms, strideA, streams)
	b := PhaseSpread(ms, strideB, streams)
	if b > a {
		return nameB
	}
	return nameA
}

// ExplainStreamOffset reproduces the Sect. 2.1 analysis of the STREAM
// COMMON-block experiment: for a given word offset it returns the
// controller phases of the three arrays and the predicted regime.
func ExplainStreamOffset(ms MachineSpec, n, offsetWords int64) (phases []int, regime string) {
	ndim := n + offsetWords
	bases := []phys.Addr{
		0,
		phys.Addr(ndim * phys.WordSize),
		phys.Addr(2 * ndim * phys.WordSize),
	}
	phases = make([]int, len(bases))
	for i, b := range bases {
		phases[i] = ms.Mapping.Controller(b)
	}
	return phases, Regime(ms, StreamSet{Bases: bases, Stride: ms.LineSize})
}
