// Package alloc simulates the address-space behaviour of the allocation
// interfaces the paper exercises: plain malloc (contiguous blocks with
// allocator headers, so base addresses depend on previous allocation
// sizes), posix_memalign (explicit power-of-two alignment), and a
// Fortran-style COMMON block in which consecutive arrays are padded by a
// configurable word offset (the STREAM "offset" experiment of Sect. 2.1).
//
// Because page sizes (>= 4 kB) exceed the 512-byte controller interleave
// period, the paper notes that the distinction between physical and virtual
// addresses does not matter; the simulated space is therefore identity
// mapped and a single bump region suffices.
package alloc

import (
	"fmt"

	"repro/internal/phys"
)

// MallocHeader is the bookkeeping overhead a typical malloc places before
// each block; it makes consecutive plain allocations land size+header
// apart, which is what produces the erratic, N-dependent base offsets of
// the "plain" curves in Fig. 4.
const MallocHeader = 16

// MallocAlign is the guaranteed alignment of plain Malloc results.
const MallocAlign = 16

// Space is a simulated process heap. The zero value is not usable; create
// one with NewSpace.
type Space struct {
	base phys.Addr
	brk  phys.Addr
}

// NewSpace returns a heap whose first usable byte is at a page-aligned,
// interleave-aligned base, mirroring a freshly mapped arena.
func NewSpace() *Space {
	const heapBase = 0x10000000 // page- and period-aligned
	return &Space{base: heapBase, brk: heapBase}
}

// Base returns the start of the arena.
func (s *Space) Base() phys.Addr { return s.base }

// Brk returns the current top of the arena (first unallocated byte).
func (s *Space) Brk() phys.Addr { return s.brk }

// Used returns the number of bytes consumed so far.
func (s *Space) Used() int64 { return int64(s.brk - s.base) }

// Malloc allocates size bytes the way a typical libc does: a 16-byte
// header precedes the block and the returned address is 16-byte aligned.
func (s *Space) Malloc(size int64) phys.Addr {
	if size < 0 {
		panic(fmt.Sprintf("alloc: negative size %d", size))
	}
	p := phys.AlignUp(s.brk+MallocHeader, MallocAlign)
	s.brk = p + phys.Addr(size)
	return p
}

// Memalign allocates size bytes aligned to align (a power of two), the
// posix_memalign equivalent used for the "align 8k" experiments.
func (s *Space) Memalign(align, size int64) phys.Addr {
	if size < 0 {
		panic(fmt.Sprintf("alloc: negative size %d", size))
	}
	p := phys.AlignUp(s.brk+MallocHeader, align)
	s.brk = p + phys.Addr(size)
	return p
}

// Common lays out n arrays of ndim elements of elemSize bytes back to back
// starting at a period-aligned base, exactly like the Fortran COMMON block
// in the STREAM source: the arrays are declared with ndim = N + offset
// elements, so their base addresses differ by ndim*elemSize even though
// only N elements are used. It returns the base address of each array.
func (s *Space) Common(n int, ndim, elemSize int64) []phys.Addr {
	if n <= 0 || ndim < 0 || elemSize <= 0 {
		panic(fmt.Sprintf("alloc: bad COMMON block n=%d ndim=%d elemSize=%d", n, ndim, elemSize))
	}
	base := phys.AlignUp(s.brk, phys.PageSize)
	bases := make([]phys.Addr, n)
	for i := range bases {
		bases[i] = base + phys.Addr(int64(i)*ndim*elemSize)
	}
	s.brk = base + phys.Addr(int64(n)*ndim*elemSize)
	return bases
}

// OffsetBases allocates n arrays of size bytes, each aligned to align and
// then displaced by i*offset bytes for array i — the explicit-offset
// placement of Sect. 2.2 ("arrays B, C and D are shifted by one, two, and
// three times the indicated offset").
func (s *Space) OffsetBases(n int, size, align, offset int64) []phys.Addr {
	bases := make([]phys.Addr, n)
	for i := range bases {
		p := phys.AlignUp(s.brk+MallocHeader, align)
		p += phys.Addr(int64(i) * offset)
		bases[i] = p
		s.brk = p + phys.Addr(size)
	}
	return bases
}
