package alloc

import (
	"testing"
	"testing/quick"

	"repro/internal/phys"
)

func TestMallocHeaderGap(t *testing.T) {
	sp := NewSpace()
	a := sp.Malloc(1000)
	b := sp.Malloc(1000)
	if b <= a+1000 {
		t.Errorf("second block %#x overlaps or abuts first %#x (no header gap)", b, a)
	}
	if !phys.IsAligned(a, MallocAlign) || !phys.IsAligned(b, MallocAlign) {
		t.Error("malloc results not 16-byte aligned")
	}
}

func TestMallocBaseDependsOnSize(t *testing.T) {
	// The "plain" placement of Fig. 4: relative offsets between arrays
	// vary with N, producing the erratic bandwidth curve.
	gaps := map[phys.Addr]bool{}
	for n := int64(65536); n < 65536+64; n++ {
		sp := NewSpace()
		a := sp.Malloc(n * 8)
		b := sp.Malloc(n * 8)
		gaps[(b-a)%512] = true
	}
	if len(gaps) < 16 {
		t.Errorf("only %d distinct controller phases over 64 sizes; plain placement should be erratic", len(gaps))
	}
}

func TestMemalign(t *testing.T) {
	sp := NewSpace()
	sp.Malloc(12345) // disturb the break
	p := sp.Memalign(8192, 100)
	if !phys.IsAligned(p, 8192) {
		t.Errorf("memalign returned %#x, not page aligned", p)
	}
}

func TestMemalignProperty(t *testing.T) {
	f := func(sizes []uint16, e uint8) bool {
		align := int64(64) << (e % 8)
		sp := NewSpace()
		var last phys.Addr
		for _, s := range sizes {
			p := sp.Memalign(align, int64(s))
			if !phys.IsAligned(p, align) || p < last {
				return false
			}
			last = p + phys.Addr(s)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommonLayout(t *testing.T) {
	// The Fortran COMMON block: arrays ndim elements apart, page-aligned
	// base. With offset=0 and power-of-two N all bases are congruent mod
	// 512; with offset=13 they are skewed.
	sp := NewSpace()
	n := int64(1 << 18)
	bases := sp.Common(3, n, 8)
	if !phys.IsAligned(bases[0], phys.PageSize) {
		t.Error("COMMON base not page aligned")
	}
	for i := 1; i < 3; i++ {
		if bases[i]-bases[i-1] != phys.Addr(n*8) {
			t.Errorf("array gap %d, want %d", bases[i]-bases[i-1], n*8)
		}
	}
	if bases[1]%512 != bases[0]%512 {
		t.Error("zero-offset COMMON arrays not congruent mod 512")
	}

	sp2 := NewSpace()
	skew := sp2.Common(3, n+13, 8)
	if skew[1]%512 == skew[0]%512 {
		t.Error("offset-13 COMMON arrays still congruent mod 512")
	}
}

func TestOffsetBases(t *testing.T) {
	sp := NewSpace()
	bases := sp.OffsetBases(4, 4096, phys.PageSize, 128)
	for i, b := range bases {
		if (b-bases[0])%512 != phys.Addr(i*128)%512 {
			t.Errorf("array %d phase %d, want %d", i, (b-bases[0])%512, i*128%512)
		}
	}
}

func TestNoOverlapProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		sp := NewSpace()
		type blk struct{ lo, hi phys.Addr }
		var blocks []blk
		for i, o := range ops {
			size := int64(o%4096) + 1
			var p phys.Addr
			if i%2 == 0 {
				p = sp.Malloc(size)
			} else {
				p = sp.Memalign(512, size)
			}
			blocks = append(blocks, blk{p, p + phys.Addr(size)})
		}
		for i := 1; i < len(blocks); i++ {
			if blocks[i].lo < blocks[i-1].hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
