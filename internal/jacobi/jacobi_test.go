package jacobi

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/segarray"
	"repro/internal/trace"
)

// ---- host solver -------------------------------------------------------------

func TestSolverConvergesToLinearProfile(t *testing.T) {
	n := 33
	a, b := NewGrid(n), NewGrid(n)
	a.SetBoundary(1, 0)
	b.SetBoundary(1, 0)
	res := Solve(a, b, 4000, 1)
	if err := res.MaxLinearError(1, 0); err > 1e-6 {
		t.Errorf("steady-state error %g after 4000 sweeps", err)
	}
}

func TestParallelSolverMatchesSerial(t *testing.T) {
	n := 41
	mk := func() (*Grid, *Grid) {
		a, b := NewGrid(n), NewGrid(n)
		a.SetBoundary(2, -1)
		b.SetBoundary(2, -1)
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				a.Rows[i][j] = float64((i*j)%17) / 17
			}
		}
		return a, b
	}
	a1, b1 := mk()
	a2, b2 := mk()
	r1 := Solve(a1, b1, 50, 1)
	r2 := Solve(a2, b2, 50, 8)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r1.Rows[i][j] != r2.Rows[i][j] {
				t.Fatalf("parallel result differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestSolverOnSegmentedRows(t *testing.T) {
	// The grid must work identically on segarray-backed rows (the
	// optimized layout of Sect. 2.3).
	n := 17
	sp := alloc.NewSpace()
	rows := make([]int64, n)
	for i := range rows {
		rows[i] = int64(n)
	}
	params := segarray.Params{ElemSize: 8, Align: phys.PageSize, SegAlign: 512, Shift: 128}
	mk := func() *Grid {
		arr := segarray.NewArray[float64](segarray.Plan(sp, params, rows))
		host := make([][]float64, n)
		for i := range host {
			host[i] = arr.Segment(i)
		}
		g := FromRows(n, host)
		g.SetBoundary(1, 0)
		return g
	}
	res := Solve(mk(), mk(), 2000, 2)
	if err := res.MaxLinearError(1, 0); err > 1e-6 {
		t.Errorf("segmented solve error %g", err)
	}
}

// ---- trace generator -----------------------------------------------------------

func drain(p *trace.Program) (units int64, acc [][]trace.Access) {
	acc = make([][]trace.Access, len(p.Gens))
	var it trace.Item
	for t, g := range p.Gens {
		for {
			it.Reset()
			if !g.Next(&it) {
				break
			}
			units += it.Units
			acc[t] = append(acc[t], append([]trace.Access(nil), it.Acc...)...)
		}
	}
	return units, acc
}

func TestTraceUnits(t *testing.T) {
	n := int64(66)
	spec := Spec{
		N:      n,
		Src:    PlainRows(0x100000, n),
		Dst:    PlainRows(0x900000, n),
		Sched:  omp.StaticChunk{Size: 1},
		Sweeps: 3,
	}
	units, _ := drain(spec.Program(8))
	want := 3 * (n - 2) * (n - 2)
	if units != want {
		t.Errorf("site updates %d, want %d", units, want)
	}
}

func TestTraceTouchesThreeSourceRows(t *testing.T) {
	n := int64(34)
	src := PlainRows(0x100000, n)
	dst := PlainRows(0x900000, n)
	spec := Spec{N: n, Src: src, Dst: dst, Sched: omp.StaticBlock{}, Sweeps: 1}
	_, acc := drain(spec.Program(1))

	srcLines := map[phys.Addr]bool{}
	dstLines := map[phys.Addr]bool{}
	for _, a := range acc[0] {
		if a.Write {
			dstLines[a.Addr] = true
		} else {
			srcLines[a.Addr] = true
		}
	}
	// Sources: rows 0..n-1 all read (row 0 and n-1 as halo); dst: rows
	// 1..n-2 written.
	for row := int64(0); row < n; row++ {
		if !srcLines[phys.LineOf(src(row)+phys.LineSize)] {
			t.Fatalf("source row %d never read", row)
		}
	}
	if dstLines[phys.LineOf(dst(0))] {
		t.Error("boundary dst row 0 written")
	}
	if !dstLines[phys.LineOf(dst(1)+phys.LineSize)] {
		t.Error("interior dst row 1 not written")
	}
}

func TestTraceTogglesGrids(t *testing.T) {
	n := int64(18)
	src := PlainRows(0x100000, n)
	dst := PlainRows(0x900000, n)
	spec := Spec{N: n, Src: src, Dst: dst, Sched: omp.StaticBlock{}, Sweeps: 2}
	_, acc := drain(spec.Program(1))
	// In sweep 2 the writes must land in the src array (toggle).
	wroteToSrc := false
	for _, a := range acc[0] {
		if a.Write && a.Addr < 0x900000 {
			wroteToSrc = true
		}
	}
	if !wroteToSrc {
		t.Error("second sweep did not toggle the grids")
	}
}

func TestTraceDemandPerSite(t *testing.T) {
	n := int64(10)
	spec := Spec{N: n, Src: PlainRows(0, n), Dst: PlainRows(1<<20, n), Sched: omp.StaticBlock{}}
	p := spec.Program(1)
	var it trace.Item
	if !p.Gens[0].Next(&it) {
		t.Fatal("no items")
	}
	if it.Demand.Flops != 4*it.Units || it.Demand.MemOps != 5*it.Units {
		t.Errorf("demand %+v for %d sites", it.Demand, it.Units)
	}
}
