// Package jacobi implements the 2D Jacobi heat-equation relaxation solver
// of Sect. 2.3: a five-point stencil on an N x N grid, parallelized over
// rows, with each row an independently placeable segment. The package
// provides a real host solver (validated against the analytic steady
// state) and a trace compiler for the simulated T2 that reproduces the
// experiment of Fig. 6.
package jacobi

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/cpu"
	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/trace"
)

// ---- host solver ----------------------------------------------------------

// Grid is a host-side N x N grid stored as per-row slices, so rows may come
// from a plain allocation or from segarray segments interchangeably.
type Grid struct {
	N    int
	Rows [][]float64
}

// NewGrid allocates a contiguous grid with row slices into one backing
// array (the "plain" layout).
func NewGrid(n int) *Grid {
	backing := make([]float64, n*n)
	g := &Grid{N: n, Rows: make([][]float64, n)}
	for i := range g.Rows {
		g.Rows[i], backing = backing[:n:n], backing[n:]
	}
	return g
}

// FromRows wraps existing row storage (e.g. segarray segments) as a grid.
// All rows must have length n.
func FromRows(n int, rows [][]float64) *Grid {
	if len(rows) != n {
		panic(fmt.Sprintf("jacobi: %d rows for n=%d", len(rows), n))
	}
	for i, r := range rows {
		if len(r) != n {
			panic(fmt.Sprintf("jacobi: row %d has length %d, want %d", i, len(r), n))
		}
	}
	return &Grid{N: n, Rows: rows}
}

// SetBoundary fixes the four edges: top row to top, bottom row to bottom,
// and the side columns to a linear blend, which makes the steady state an
// exact linear profile — a sharp validation target.
func (g *Grid) SetBoundary(top, bottom float64) {
	n := g.N
	for j := 0; j < n; j++ {
		g.Rows[0][j] = top
		g.Rows[n-1][j] = bottom
	}
	for i := 0; i < n; i++ {
		v := top + (bottom-top)*float64(i)/float64(n-1)
		g.Rows[i][0] = v
		g.Rows[i][n-1] = v
	}
}

// RelaxLine computes one destination row from the three source rows — the
// paper's relax_line(), deliberately free of any segment logic so it runs
// at native speed on host slices.
func RelaxLine(dst, above, below, cur []float64) {
	for j := 1; j < len(dst)-1; j++ {
		dst[j] = (above[j] + below[j] + cur[j-1] + cur[j+1]) * 0.25
	}
}

// Sweep performs one Jacobi sweep from src into dst using the given number
// of host goroutines over rows (static block split).
func Sweep(dst, src *Grid, threads int) {
	n := src.N
	rows := n - 2
	if rows <= 0 {
		return
	}
	if threads <= 1 {
		for i := 1; i < n-1; i++ {
			RelaxLine(dst.Rows[i], src.Rows[i-1], src.Rows[i+1], src.Rows[i])
		}
		return
	}
	var wg sync.WaitGroup
	q, r := rows/threads, rows%threads
	lo := 1
	for t := 0; t < threads; t++ {
		hi := lo + q
		if t < r {
			hi++
		}
		if hi > lo {
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					RelaxLine(dst.Rows[i], src.Rows[i-1], src.Rows[i+1], src.Rows[i])
				}
			}(lo, hi)
		}
		lo = hi
	}
	wg.Wait()
}

// Solve iterates sweeps between the two grids (toggling) and returns the
// grid holding the final iterate.
func Solve(a, b *Grid, sweeps, threads int) *Grid {
	src, dst := a, b
	for s := 0; s < sweeps; s++ {
		Sweep(dst, src, threads)
		src, dst = dst, src
	}
	return src
}

// MaxLinearError returns the maximum deviation of the grid's interior from
// the linear steady-state profile implied by SetBoundary(top, bottom).
func (g *Grid) MaxLinearError(top, bottom float64) float64 {
	n := g.N
	var max float64
	for i := 1; i < n-1; i++ {
		want := top + (bottom-top)*float64(i)/float64(n-1)
		for j := 1; j < n-1; j++ {
			if d := math.Abs(g.Rows[i][j] - want); d > max {
				max = d
			}
		}
	}
	return max
}

// ---- simulated kernel ------------------------------------------------------

// perSite is the instruction demand of one lattice-site update: four loads,
// one store, three adds and one multiply, plus loop overhead.
var perSite = cpu.Demand{MemOps: 5, Flops: 4, IntOps: 1}

// RowAddr maps a row index to the simulated address of its first element.
type RowAddr func(row int64) phys.Addr

// PlainRows returns the row addressing of a contiguous N x N allocation.
func PlainRows(base phys.Addr, n int64) RowAddr {
	return func(row int64) phys.Addr { return base + phys.Addr(row*n*phys.WordSize) }
}

// Spec describes one simulated Jacobi experiment instance.
type Spec struct {
	N      int64 // grid dimension
	Src    RowAddr
	Dst    RowAddr
	Sched  omp.Schedule
	Sweeps int // toggling iterations; < 1 means 1
}

// Program compiles the experiment into a per-thread work-item program.
// Units are lattice-site updates, so Result.MUPs is directly the MLUPs/s
// of Fig. 6.
func (s *Spec) Program(threads int) *trace.Program {
	if s.N < 3 {
		panic(fmt.Sprintf("jacobi: grid dimension %d", s.N))
	}
	sweeps := s.Sweeps
	if sweeps < 1 {
		sweeps = 1
	}
	asns := make([]omp.Assigner, sweeps)
	for i := range asns {
		asns[i] = s.Sched.Assigner(s.N-2, threads)
	}
	p := &trace.Program{
		Label:       fmt.Sprintf("jacobi/N=%d/%s/t=%d", s.N, s.Sched.String(), threads),
		SharedSched: !s.Sched.PerThread(),
	}
	for t := 0; t < threads; t++ {
		p.Gens = append(p.Gens, &gen{spec: s, asns: asns, thread: t, threads: threads})
	}
	return p
}

type gen struct {
	spec    *Spec
	asns    []omp.Assigner
	thread  int
	threads int
	sweep   int

	cur     omp.Chunk
	hasRow  bool
	row     int64 // current row (1-based interior index)
	col     int64 // next column within row
	trAbove trace.LineTracker
	trBelow trace.LineTracker
	trCur   trace.LineTracker
	trDst   trace.LineTracker

	// Probed uniform-region cache (see probe): the rows [ffLo, ffEnd] of
	// sweep ffSweep advance by ffStep rows and ffStride bytes per iteration.
	ffSweep   int
	ffLo      int64
	ffEnd     int64
	ffStep    int64
	ffStride  int64
	ffChunked bool // iterations consume single-row chunks from the assigner
}

func (g *gen) nextRow() bool {
	for {
		if g.hasRow && g.row+1 < g.cur.Hi+1 {
			g.row++
		} else {
			for {
				if g.sweep >= len(g.asns) {
					return false
				}
				c, ok := g.asns[g.sweep].Next(g.thread)
				if ok {
					g.cur = c
					g.row = c.Lo + 1 // interior rows start at 1
					g.hasRow = true
					break
				}
				g.sweep++
				g.hasRow = false
			}
		}
		g.col = 1
		g.trAbove.Reset()
		g.trBelow.Reset()
		g.trCur.Reset()
		g.trDst.Reset()
		return true
	}
}

func (g *gen) Next(it *trace.Item) bool {
	n := g.spec.N
	if !g.hasRow || g.col >= n-1 {
		if !g.nextRow() {
			return false
		}
	}
	// The grids toggle every sweep.
	src, dst := g.spec.Src, g.spec.Dst
	if g.sweep%2 == 1 {
		src, dst = dst, src
	}

	lo := g.col
	hi := lo + phys.LineSize/phys.WordSize
	if hi > n-1 {
		hi = n - 1
	}
	elems := hi - lo

	emit := func(base phys.Addr, tr *trace.LineTracker, write bool, first, last int64) {
		a := phys.LineOf(base + phys.Addr(first*phys.WordSize))
		b := phys.LineOf(base + phys.Addr(last*phys.WordSize))
		for l := a; l <= b; l += phys.LineSize {
			if tr.Touch(l) {
				it.Acc = append(it.Acc, trace.Access{Addr: l, Write: write})
			}
		}
	}
	// cur row is read with the [lo-1, hi] halo; above/below with [lo, hi).
	emit(src(g.row-1), &g.trAbove, false, lo, hi-1)
	emit(src(g.row+1), &g.trBelow, false, lo, hi-1)
	emit(src(g.row), &g.trCur, false, lo-1, hi)
	emit(dst(g.row), &g.trDst, true, lo, hi-1)

	it.Demand = perSite.Scale(elems)
	it.Units = elems
	it.RepBytes = 16 * elems // one load + one store per site reach memory
	g.col = hi
	return true
}

// The Jacobi generator does NOT implement trace.Forwardable — the stencil
// re-reads every row three times across consecutive row-steps, so its
// steady-state L2 hits depend on lines installed by earlier items, and
// per-item extrapolation would leave those lines out of the tag store. It
// does implement trace.IterForwardable: one whole row-step is the previous
// one's byte-translate whenever the row addressing is affine over the
// thread's upcoming rows, and the machine replays skipped rows against the
// real tag store, reproducing the reuse instead of extrapolating it
// (DESIGN.md Sect. 11). Because Src and Dst are opaque closures (plain
// rows, segarray segments, per-variant placements), the generator PROBES
// affinity at runtime: it scans the thread's upcoming rows once per region
// and caches the largest verified-affine extent, so a placement whose
// per-segment shifts wrap mid-sweep simply yields a shorter region — a
// coverage cost, never a correctness one.

// elemsPerItem is the column extent of one work item: one destination line.
const elemsPerItem = phys.LineSize / phys.WordSize

// srcDst returns the current sweep's source and destination row addressing.
func (g *gen) srcDst() (src, dst RowAddr) {
	src, dst = g.spec.Src, g.spec.Dst
	if g.sweep%2 == 1 {
		src, dst = dst, src
	}
	return src, dst
}

// ensure refreshes the probed uniform-region cache if the generator has
// moved outside it.
func (g *gen) ensure() {
	if g.ffSweep == g.sweep && g.hasRow && g.row >= g.ffLo && g.row <= g.ffEnd {
		return
	}
	g.probe()
}

// probe determines the thread's current uniform region: the maximal run of
// upcoming rows over which every iteration is the previous one's exact
// byte-translate. The row step per iteration follows from the schedule —
// round-robin single-row chunks (static,1 with a real team) step by the
// team size and run to the sweep's end, block schedules step by one row
// inside the current chunk, and shared-order schedules have no statically
// known next row at all. The byte stride is then verified, not assumed:
// all four streams (the three source rows and the destination row) must
// advance by the same constant over the whole region, checked against the
// opaque RowAddr closures row by row. The scan is cached per region, so
// the amortized cost per ItersRemaining query is O(1).
func (g *gen) probe() {
	g.ffSweep = g.sweep
	g.ffLo, g.ffEnd = g.row, g.row
	g.ffStep, g.ffStride = 1, 0
	g.ffChunked = false
	if !g.hasRow {
		return
	}
	n := g.spec.N
	last := g.row
	switch sc := g.spec.Sched.(type) {
	case omp.StaticChunk:
		if sc.Size <= 1 {
			g.ffStep = int64(g.threads)
			g.ffChunked = true
			last = g.row + ((n-2-g.row)/g.ffStep)*g.ffStep
		} else {
			last = g.cur.Hi
		}
	case omp.StaticBlock:
		last = g.cur.Hi
	default:
		return
	}
	if last <= g.row {
		return
	}
	src, dst := g.srcDst()
	step := g.ffStep
	stride := int64(src(g.row+step)) - int64(src(g.row))
	end := g.row
	for r := g.row; r+step <= last; r += step {
		if int64(src(r-1+step))-int64(src(r-1)) != stride ||
			int64(src(r+step))-int64(src(r)) != stride ||
			int64(src(r+1+step))-int64(src(r+1)) != stride ||
			int64(dst(r+step))-int64(dst(r)) != stride {
			break
		}
		end = r + step
	}
	g.ffEnd = end
	if end > g.row {
		g.ffStride = stride
	}
}

// AtIterBoundary reports whether the generator sits between two row-steps.
func (g *gen) AtIterBoundary() bool {
	return !g.hasRow || g.col >= g.spec.N-1
}

// IterStride returns the verified per-row-step byte advance, or 0 when the
// current region has no translated next iteration.
func (g *gen) IterStride() int64 {
	if !g.hasRow {
		return 0
	}
	g.ensure()
	return g.ffStride
}

// IterItems returns the number of work items in one row-step.
func (g *gen) IterItems() int64 {
	return (g.spec.N - 2 + elemsPerItem - 1) / elemsPerItem
}

// ItersRemaining returns how many further whole row-steps stay inside the
// verified-affine region.
func (g *gen) ItersRemaining() int64 {
	if !g.hasRow {
		return 0
	}
	g.ensure()
	if g.ffStride == 0 {
		return 0
	}
	return (g.ffEnd - g.row) / g.ffStep
}

// SkipIters advances the generator n whole row-steps in place. In the
// chunked regime each skipped row-step consumes one single-row chunk from
// the assigner — exactly the grabs n simulated iterations would have made —
// so the per-thread round counter stays true; block regimes move inside
// the current chunk. All four line trackers translate by the skipped byte
// distance.
func (g *gen) SkipIters(n int64) {
	if n == 0 {
		return
	}
	g.ensure()
	delta := phys.Addr(n * g.ffStride)
	if g.ffChunked {
		for i := int64(0); i < n; i++ {
			c, ok := g.asns[g.sweep].Next(g.thread)
			if !ok {
				panic("jacobi: SkipIters past the assigner's rows")
			}
			g.cur = c
		}
		g.row = g.cur.Lo + 1
	} else {
		g.row += n
	}
	g.trAbove.Shift(delta)
	g.trBelow.Shift(delta)
	g.trCur.Shift(delta)
	g.trDst.Shift(delta)
}

// IterRef returns the source anchor of the current row — an address that
// advances by exactly IterStride per row-step inside the region.
func (g *gen) IterRef() phys.Addr {
	src, _ := g.srcDst()
	return src(g.row)
}

// IterPhase folds the generator's pattern-relevant state into f relative
// to ref: the discrete mode (row-held flag, sweep parity, intra-row
// column) plus the four stream anchors and four line trackers as offsets
// from ref modulo window.
func (g *gen) IterPhase(f *trace.Fingerprint, window int64, ref phys.Addr) {
	if !g.hasRow {
		f.Fold(0)
		return
	}
	f.Fold(1)
	f.Fold(uint64(g.sweep & 1))
	f.Fold(uint64(g.col))
	src, dst := g.srcDst()
	f.FoldAddr(src(g.row-1)-ref, window)
	f.FoldAddr(src(g.row)-ref, window)
	f.FoldAddr(src(g.row+1)-ref, window)
	f.FoldAddr(dst(g.row)-ref, window)
	g.trAbove.PhaseRel(f, window, ref)
	g.trBelow.PhaseRel(f, window, ref)
	g.trCur.PhaseRel(f, window, ref)
	g.trDst.PhaseRel(f, window, ref)
}

var _ trace.IterForwardable = (*gen)(nil)
