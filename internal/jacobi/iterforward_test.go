package jacobi

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/trace"
)

// drainGen collects a generator's remaining items (deep copies).
func drainGen(g trace.Generator) []trace.Item {
	var out []trace.Item
	var it trace.Item
	for {
		it.Reset()
		if !g.Next(&it) {
			return out
		}
		out = append(out, trace.Item{
			Acc:      append([]trace.Access(nil), it.Acc...),
			Demand:   it.Demand,
			Units:    it.Units,
			RepBytes: it.RepBytes,
		})
	}
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// iterSkipEquivalence runs the IterForwardable contract check on one
// generator pair: drive the reference by Next alone; drive the subject j
// items in, then to the next iteration boundary, then SkipIters(m) for a
// line-aligned m up to ItersRemaining, then Next to the end. The subject's
// tail must be byte-for-byte the reference's stream at the skipped
// position — SkipIters(m) must leave exactly the state m iterations of
// Next calls would. The reference stream also pins the uniform-region
// promise itself: within ItersRemaining, each iteration is the previous
// one's image shifted by IterStride bytes.
func iterSkipEquivalence(t *testing.T, ref, sub trace.Generator, j, frac int) bool {
	t.Helper()
	want := drainGen(ref)
	fw, ok := sub.(trace.IterForwardable)
	if !ok {
		t.Fatal("generator does not implement trace.IterForwardable")
	}
	var it trace.Item
	taken := int64(0)
	for i := 0; i < j; i++ {
		it.Reset()
		if !sub.Next(&it) {
			return true // script shorter than j: nothing to check
		}
		taken++
	}
	for !fw.AtIterBoundary() {
		it.Reset()
		if !sub.Next(&it) {
			return true
		}
		taken++
	}
	u := fw.ItersRemaining()
	st := fw.IterStride()
	ii := fw.IterItems()
	if u < 0 || ii <= 0 {
		t.Fatalf("ItersRemaining=%d IterItems=%d", u, ii)
	}
	if u == 0 || st == 0 {
		return true // no uniform region here: nothing to skip
	}
	// Accesses are emitted line-granular, so iteration images translate
	// exactly only across LINE-ALIGNED shifts — align iterations apart —
	// which is also the only spacing SkipIters promises exactness for (the
	// machine's controller-span alignment guarantee subsumes it).
	abs := st
	if abs < 0 {
		abs = -abs
	}
	align := phys.LineSize / gcd64(abs, phys.LineSize)
	// The uniform-region promise, checked on the reference stream: within
	// the promised window, each iteration is the line-aligned image of the
	// one align iterations before it, shifted by align*IterStride bytes.
	if u >= align+1 {
		for q := taken; q < taken+ii && q+align*ii < int64(len(want)); q++ {
			a, b := want[q], want[q+align*ii]
			if len(a.Acc) != len(b.Acc) || a.Demand != b.Demand || a.Units != b.Units {
				t.Errorf("iteration image mismatch at item %d (+%d iters): structure differs", q, align)
				return false
			}
			for x := range a.Acc {
				if b.Acc[x].Addr != a.Acc[x].Addr+phys.Addr(align*st) || b.Acc[x].Write != a.Acc[x].Write {
					t.Errorf("iteration image mismatch at item %d acc %d: %+v -> %+v, stride %d", q, x, a.Acc[x], b.Acc[x], align*st)
					return false
				}
			}
		}
	}
	m := u * int64(frac%100+1) / 100
	m -= m % align
	if m <= 0 {
		return true
	}
	fw.SkipIters(m)
	got := drainGen(sub)
	tail := want[taken+m*ii:]
	if len(got) != len(tail) {
		t.Errorf("j=%d m=%d: %d items after SkipIters, want %d", j, m, len(got), len(tail))
		return false
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], tail[i]) {
			t.Errorf("j=%d m=%d: item %d after SkipIters differs:\n got  %+v\n want %+v", j, m, i, got[i], tail[i])
			return false
		}
	}
	return true
}

// TestIterSkipEquivalence2D fuzzes SkipIters/ItersRemaining on the 2D
// Jacobi generator across grid sizes, schedules, team sizes, positions and
// skip widths.
func TestIterSkipEquivalence2D(t *testing.T) {
	f := func(nB, thB, jB, fracB uint8) bool {
		n := int64(16 + nB%33)
		threads := int(thB%5) + 1
		var sched omp.Schedule = omp.StaticBlock{}
		if thB%2 == 0 {
			sched = omp.StaticChunk{Size: 1}
		}
		mk := func() trace.Generator {
			spec := Spec{
				N:      n,
				Src:    PlainRows(0x1000000, n),
				Dst:    PlainRows(0x9000000, n),
				Sched:  sched,
				Sweeps: 1 + int(thB%2),
			}
			return spec.Program(threads).Gens[int(jB)%threads]
		}
		return iterSkipEquivalence(t, mk(), mk(), int(jB%60), int(fracB))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestIterSkipEquivalence3D fuzzes the 3D generator in both parallelization
// modes (z-loop and coalesced z*y).
func TestIterSkipEquivalence3D(t *testing.T) {
	f := func(nB, thB, jB, fracB uint8) bool {
		n := int64(8 + nB%13)
		threads := int(thB%5) + 1
		mk := func() trace.Generator {
			spec := Spec3D{
				N:        n,
				Src:      PlainRows3D(0x1000000, n),
				Dst:      PlainRows3D(0x9000000, n),
				Sched:    omp.StaticBlock{},
				Sweeps:   1 + int(thB%2),
				Coalesce: thB%2 == 0,
			}
			return spec.Program(threads).Gens[int(jB)%threads]
		}
		return iterSkipEquivalence(t, mk(), mk(), int(jB%60), int(fracB))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
