package jacobi

import (
	"testing"

	"repro/internal/omp"
	"repro/internal/trace"
)

func TestSolver3DConvergesToLinearProfile(t *testing.T) {
	n := 17
	a, b := NewGrid3D(n), NewGrid3D(n)
	a.SetBoundary3D(1, 0)
	b.SetBoundary3D(1, 0)
	res := Solve3D(a, b, 1500, 1)
	if err := res.MaxLinearError3D(1, 0); err > 1e-6 {
		t.Errorf("3D steady-state error %g", err)
	}
}

func TestParallel3DMatchesSerial(t *testing.T) {
	n := 19
	mk := func() (*Grid3D, *Grid3D) {
		a, b := NewGrid3D(n), NewGrid3D(n)
		a.SetBoundary3D(3, -2)
		b.SetBoundary3D(3, -2)
		for z := 1; z < n-1; z++ {
			for y := 1; y < n-1; y++ {
				for x := 1; x < n-1; x++ {
					a.Rows[z][y][x] = float64((z*y*x)%23) / 23
				}
			}
		}
		return a, b
	}
	a1, b1 := mk()
	a2, b2 := mk()
	r1 := Solve3D(a1, b1, 30, 1)
	r2 := Solve3D(a2, b2, 30, 8)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if r1.Rows[z][y][x] != r2.Rows[z][y][x] {
					t.Fatalf("parallel 3D differs at (%d,%d,%d)", z, y, x)
				}
			}
		}
	}
}

func TestTrace3DUnits(t *testing.T) {
	n := int64(20)
	for _, coalesce := range []bool{false, true} {
		spec := Spec3D{
			N:        n,
			Src:      PlainRows3D(0x1000000, n),
			Dst:      PlainRows3D(0x9000000, n),
			Sched:    omp.StaticBlock{},
			Sweeps:   2,
			Coalesce: coalesce,
		}
		p := spec.Program(8)
		var units int64
		var it trace.Item
		for _, g := range p.Gens {
			for {
				it.Reset()
				if !g.Next(&it) {
					break
				}
				units += it.Units
			}
		}
		want := 2 * (n - 2) * (n - 2) * (n - 2)
		if units != want {
			t.Errorf("coalesce=%v: %d site updates, want %d", coalesce, units, want)
		}
	}
}

func TestTrace3DReadsSixNeighbourRows(t *testing.T) {
	n := int64(12)
	src := PlainRows3D(0x1000000, n)
	spec := Spec3D{N: n, Src: src, Dst: PlainRows3D(0x9000000, n), Sched: omp.StaticBlock{}}
	p := spec.Program(1)
	var it trace.Item
	if !p.Gens[0].Next(&it) {
		t.Fatal("no items")
	}
	// First item is row (z=1, y=1): the six source rows zlo/zhi/ylo/yhi/
	// cur (cur spans two lines at most) plus the dst RFO.
	var reads, writes int
	for _, a := range it.Acc {
		if a.Write {
			writes++
		} else {
			reads++
		}
	}
	if reads < 5 || writes < 1 {
		t.Errorf("first 3D item: %d reads, %d writes", reads, writes)
	}
	if it.Demand.MemOps != 7*it.Units || it.Demand.Flops != 6*it.Units {
		t.Errorf("3D demand %+v for %d sites", it.Demand, it.Units)
	}
}
