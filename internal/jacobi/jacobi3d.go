package jacobi

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/trace"
)

// The paper notes (Sect. 2.3): "In a 3D formulation, two additional
// arguments (rows) to relax_line() would be required" and that the modulo
// effect "can be expected to become more pronounced in the 3D case". This
// file provides that formulation: a 7-point stencil on an N^3 domain with
// every x-row an independently placeable segment.

// Grid3D is a host N^3 grid stored as per-row slices indexed [z][y].
type Grid3D struct {
	N    int
	Rows [][][]float64 // [z][y] -> row of N values along x
}

// NewGrid3D allocates a contiguous cube.
func NewGrid3D(n int) *Grid3D {
	backing := make([]float64, n*n*n)
	g := &Grid3D{N: n, Rows: make([][][]float64, n)}
	for z := 0; z < n; z++ {
		g.Rows[z] = make([][]float64, n)
		for y := 0; y < n; y++ {
			g.Rows[z][y], backing = backing[:n:n], backing[n:]
		}
	}
	return g
}

// SetBoundary3D fixes all six faces to the linear-in-z profile that makes
// the steady state exactly linear, mirroring SetBoundary in 2D.
func (g *Grid3D) SetBoundary3D(top, bottom float64) {
	n := g.N
	val := func(z int) float64 { return top + (bottom-top)*float64(z)/float64(n-1) }
	for z := 0; z < n; z++ {
		v := val(z)
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if z == 0 || z == n-1 || y == 0 || y == n-1 || x == 0 || x == n-1 {
					g.Rows[z][y][x] = v
				}
			}
		}
	}
}

// RelaxLine3D computes one destination row from its six neighbour rows —
// relax_line with the two additional arguments the paper describes.
func RelaxLine3D(dst, zlo, zhi, ylo, yhi, cur []float64) {
	const w = 1.0 / 6.0
	for x := 1; x < len(dst)-1; x++ {
		dst[x] = (zlo[x] + zhi[x] + ylo[x] + yhi[x] + cur[x-1] + cur[x+1]) * w
	}
}

// Sweep3D performs one Jacobi sweep parallelized over (z, y) rows.
func Sweep3D(dst, src *Grid3D, threads int) {
	n := src.N
	rows := (n - 2) * (n - 2)
	if rows <= 0 {
		return
	}
	body := func(lo, hi int) {
		for r := lo; r < hi; r++ {
			z := r/(n-2) + 1
			y := r%(n-2) + 1
			RelaxLine3D(dst.Rows[z][y],
				src.Rows[z-1][y], src.Rows[z+1][y],
				src.Rows[z][y-1], src.Rows[z][y+1],
				src.Rows[z][y])
		}
	}
	if threads <= 1 {
		body(0, rows)
		return
	}
	var wg sync.WaitGroup
	q, rem := rows/threads, rows%threads
	lo := 0
	for t := 0; t < threads; t++ {
		hi := lo + q
		if t < rem {
			hi++
		}
		if hi > lo {
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				body(lo, hi)
			}(lo, hi)
		}
		lo = hi
	}
	wg.Wait()
}

// Solve3D iterates sweeps between the two grids and returns the final one.
func Solve3D(a, b *Grid3D, sweeps, threads int) *Grid3D {
	src, dst := a, b
	for s := 0; s < sweeps; s++ {
		Sweep3D(dst, src, threads)
		src, dst = dst, src
	}
	return src
}

// MaxLinearError3D returns the interior's maximum deviation from the
// linear-in-z steady state.
func (g *Grid3D) MaxLinearError3D(top, bottom float64) float64 {
	n := g.N
	var max float64
	for z := 1; z < n-1; z++ {
		want := top + (bottom-top)*float64(z)/float64(n-1)
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				if d := math.Abs(g.Rows[z][y][x] - want); d > max {
					max = d
				}
			}
		}
	}
	return max
}

// ---- simulated 3D kernel ---------------------------------------------------

// perSite3D: six loads, one store, five adds and one multiply, plus loop
// overhead.
var perSite3D = cpu3dDemand()

func cpu3dDemand() (d struct {
	MemOps, Flops, IntOps int64
}) {
	d.MemOps, d.Flops, d.IntOps = 7, 6, 1
	return
}

// RowAddr3D maps (z, y) to the simulated address of that row's first
// element.
type RowAddr3D func(z, y int64) phys.Addr

// PlainRows3D returns the row addressing of a contiguous N^3 allocation.
func PlainRows3D(base phys.Addr, n int64) RowAddr3D {
	return func(z, y int64) phys.Addr {
		return base + phys.Addr((z*n+y)*n*phys.WordSize)
	}
}

// Spec3D describes one simulated 3D Jacobi experiment. The parallel loop
// runs over the coalesced (z, y) row index, which is also where the
// paper's 3D modulo discussion applies.
type Spec3D struct {
	N      int64
	Src    RowAddr3D
	Dst    RowAddr3D
	Sched  omp.Schedule
	Sweeps int
	// Coalesce parallelizes over the fused (z, y) space; otherwise the
	// parallel loop runs over z only, leaving y inside each chunk — the
	// configuration in which the 3D modulo effect is most pronounced.
	Coalesce bool
}

// Program compiles the experiment; units are site updates.
func (s *Spec3D) Program(threads int) *trace.Program {
	if s.N < 3 {
		panic(fmt.Sprintf("jacobi: 3D grid dimension %d", s.N))
	}
	sweeps := s.Sweeps
	if sweeps < 1 {
		sweeps = 1
	}
	inner := s.N - 2
	outer := inner
	if s.Coalesce {
		outer = inner * inner
	}
	asns := make([]omp.Assigner, sweeps)
	for i := range asns {
		asns[i] = s.Sched.Assigner(outer, threads)
	}
	label := "jacobi3d"
	if s.Coalesce {
		label = "jacobi3d/fused"
	}
	p := &trace.Program{
		Label:       fmt.Sprintf("%s/N=%d/%s/t=%d", label, s.N, s.Sched.String(), threads),
		SharedSched: !s.Sched.PerThread(),
	}
	for t := 0; t < threads; t++ {
		p.Gens = append(p.Gens, &gen3d{spec: s, asns: asns, thread: t})
	}
	return p
}

type gen3d struct {
	spec   *Spec3D
	asns   []omp.Assigner
	thread int
	sweep  int

	cur    omp.Chunk
	outer  int64
	hasRow bool
	z, y   int64
	x      int64

	tr [7]trace.LineTracker // zlo, zhi, ylo, yhi, cur, (spare), dst
}

func (g *gen3d) advanceRow() bool {
	inner := g.spec.N - 2
	for {
		if g.hasRow {
			if !g.spec.Coalesce && g.y < inner {
				g.y++
				break
			}
			g.outer++
			if g.outer < g.cur.Hi {
				if g.spec.Coalesce {
					zi, yi := omp.Split2(g.outer, inner)
					g.z, g.y = zi+1, yi+1
				} else {
					g.z, g.y = g.outer+1, 1
				}
				break
			}
			g.hasRow = false
		}
		c, ok := g.asns[g.sweep].Next(g.thread)
		if !ok {
			g.sweep++
			if g.sweep >= len(g.asns) {
				return false
			}
			continue
		}
		g.cur = c
		g.outer = c.Lo
		if g.spec.Coalesce {
			zi, yi := omp.Split2(g.outer, inner)
			g.z, g.y = zi+1, yi+1
		} else {
			g.z, g.y = g.outer+1, 1
		}
		g.hasRow = true
		break
	}
	g.x = 1
	for i := range g.tr {
		g.tr[i].Reset()
	}
	return true
}

func (g *gen3d) Next(it *trace.Item) bool {
	n := g.spec.N
	if !g.hasRow || g.x >= n-1 {
		if !g.advanceRow() {
			return false
		}
	}
	src, dst := g.spec.Src, g.spec.Dst
	if g.sweep%2 == 1 {
		src, dst = dst, src
	}

	lo := g.x
	hi := lo + phys.LineSize/phys.WordSize
	if hi > n-1 {
		hi = n - 1
	}
	elems := hi - lo

	emit := func(base phys.Addr, tr *trace.LineTracker, write bool, first, last int64) {
		a := phys.LineOf(base + phys.Addr(first*phys.WordSize))
		b := phys.LineOf(base + phys.Addr(last*phys.WordSize))
		for l := a; l <= b; l += phys.LineSize {
			if tr.Touch(l) {
				it.Acc = append(it.Acc, trace.Access{Addr: l, Write: write})
			}
		}
	}
	emit(src(g.z-1, g.y), &g.tr[0], false, lo, hi-1)
	emit(src(g.z+1, g.y), &g.tr[1], false, lo, hi-1)
	emit(src(g.z, g.y-1), &g.tr[2], false, lo, hi-1)
	emit(src(g.z, g.y+1), &g.tr[3], false, lo, hi-1)
	emit(src(g.z, g.y), &g.tr[4], false, lo-1, hi)
	emit(dst(g.z, g.y), &g.tr[6], true, lo, hi-1)

	it.Demand.MemOps = perSite3D.MemOps * elems
	it.Demand.Flops = perSite3D.Flops * elems
	it.Demand.IntOps = perSite3D.IntOps * elems
	it.Units = elems
	it.RepBytes = 16 * elems
	g.x = hi
	return true
}
