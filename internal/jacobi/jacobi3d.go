package jacobi

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/trace"
)

// The paper notes (Sect. 2.3): "In a 3D formulation, two additional
// arguments (rows) to relax_line() would be required" and that the modulo
// effect "can be expected to become more pronounced in the 3D case". This
// file provides that formulation: a 7-point stencil on an N^3 domain with
// every x-row an independently placeable segment.

// Grid3D is a host N^3 grid stored as per-row slices indexed [z][y].
type Grid3D struct {
	N    int
	Rows [][][]float64 // [z][y] -> row of N values along x
}

// NewGrid3D allocates a contiguous cube.
func NewGrid3D(n int) *Grid3D {
	backing := make([]float64, n*n*n)
	g := &Grid3D{N: n, Rows: make([][][]float64, n)}
	for z := 0; z < n; z++ {
		g.Rows[z] = make([][]float64, n)
		for y := 0; y < n; y++ {
			g.Rows[z][y], backing = backing[:n:n], backing[n:]
		}
	}
	return g
}

// SetBoundary3D fixes all six faces to the linear-in-z profile that makes
// the steady state exactly linear, mirroring SetBoundary in 2D.
func (g *Grid3D) SetBoundary3D(top, bottom float64) {
	n := g.N
	val := func(z int) float64 { return top + (bottom-top)*float64(z)/float64(n-1) }
	for z := 0; z < n; z++ {
		v := val(z)
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if z == 0 || z == n-1 || y == 0 || y == n-1 || x == 0 || x == n-1 {
					g.Rows[z][y][x] = v
				}
			}
		}
	}
}

// RelaxLine3D computes one destination row from its six neighbour rows —
// relax_line with the two additional arguments the paper describes.
func RelaxLine3D(dst, zlo, zhi, ylo, yhi, cur []float64) {
	const w = 1.0 / 6.0
	for x := 1; x < len(dst)-1; x++ {
		dst[x] = (zlo[x] + zhi[x] + ylo[x] + yhi[x] + cur[x-1] + cur[x+1]) * w
	}
}

// Sweep3D performs one Jacobi sweep parallelized over (z, y) rows.
func Sweep3D(dst, src *Grid3D, threads int) {
	n := src.N
	rows := (n - 2) * (n - 2)
	if rows <= 0 {
		return
	}
	body := func(lo, hi int) {
		for r := lo; r < hi; r++ {
			z := r/(n-2) + 1
			y := r%(n-2) + 1
			RelaxLine3D(dst.Rows[z][y],
				src.Rows[z-1][y], src.Rows[z+1][y],
				src.Rows[z][y-1], src.Rows[z][y+1],
				src.Rows[z][y])
		}
	}
	if threads <= 1 {
		body(0, rows)
		return
	}
	var wg sync.WaitGroup
	q, rem := rows/threads, rows%threads
	lo := 0
	for t := 0; t < threads; t++ {
		hi := lo + q
		if t < rem {
			hi++
		}
		if hi > lo {
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				body(lo, hi)
			}(lo, hi)
		}
		lo = hi
	}
	wg.Wait()
}

// Solve3D iterates sweeps between the two grids and returns the final one.
func Solve3D(a, b *Grid3D, sweeps, threads int) *Grid3D {
	src, dst := a, b
	for s := 0; s < sweeps; s++ {
		Sweep3D(dst, src, threads)
		src, dst = dst, src
	}
	return src
}

// MaxLinearError3D returns the interior's maximum deviation from the
// linear-in-z steady state.
func (g *Grid3D) MaxLinearError3D(top, bottom float64) float64 {
	n := g.N
	var max float64
	for z := 1; z < n-1; z++ {
		want := top + (bottom-top)*float64(z)/float64(n-1)
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				if d := math.Abs(g.Rows[z][y][x] - want); d > max {
					max = d
				}
			}
		}
	}
	return max
}

// ---- simulated 3D kernel ---------------------------------------------------

// perSite3D: six loads, one store, five adds and one multiply, plus loop
// overhead.
var perSite3D = cpu3dDemand()

func cpu3dDemand() (d struct {
	MemOps, Flops, IntOps int64
}) {
	d.MemOps, d.Flops, d.IntOps = 7, 6, 1
	return
}

// RowAddr3D maps (z, y) to the simulated address of that row's first
// element.
type RowAddr3D func(z, y int64) phys.Addr

// PlainRows3D returns the row addressing of a contiguous N^3 allocation.
func PlainRows3D(base phys.Addr, n int64) RowAddr3D {
	return func(z, y int64) phys.Addr {
		return base + phys.Addr((z*n+y)*n*phys.WordSize)
	}
}

// Spec3D describes one simulated 3D Jacobi experiment. The parallel loop
// runs over the coalesced (z, y) row index, which is also where the
// paper's 3D modulo discussion applies.
type Spec3D struct {
	N      int64
	Src    RowAddr3D
	Dst    RowAddr3D
	Sched  omp.Schedule
	Sweeps int
	// Coalesce parallelizes over the fused (z, y) space; otherwise the
	// parallel loop runs over z only, leaving y inside each chunk — the
	// configuration in which the 3D modulo effect is most pronounced.
	Coalesce bool
}

// Program compiles the experiment; units are site updates.
func (s *Spec3D) Program(threads int) *trace.Program {
	if s.N < 3 {
		panic(fmt.Sprintf("jacobi: 3D grid dimension %d", s.N))
	}
	sweeps := s.Sweeps
	if sweeps < 1 {
		sweeps = 1
	}
	inner := s.N - 2
	outer := inner
	if s.Coalesce {
		outer = inner * inner
	}
	asns := make([]omp.Assigner, sweeps)
	for i := range asns {
		asns[i] = s.Sched.Assigner(outer, threads)
	}
	label := "jacobi3d"
	if s.Coalesce {
		label = "jacobi3d/fused"
	}
	p := &trace.Program{
		Label:       fmt.Sprintf("%s/N=%d/%s/t=%d", label, s.N, s.Sched.String(), threads),
		SharedSched: !s.Sched.PerThread(),
	}
	for t := 0; t < threads; t++ {
		p.Gens = append(p.Gens, &gen3d{spec: s, asns: asns, thread: t})
	}
	return p
}

type gen3d struct {
	spec   *Spec3D
	asns   []omp.Assigner
	thread int
	sweep  int

	cur    omp.Chunk
	outer  int64
	hasRow bool
	z, y   int64
	x      int64

	tr [7]trace.LineTracker // zlo, zhi, ylo, yhi, cur, (spare), dst

	// Probed uniform-region cache (see probe): rows (ffZ, [ffLo, ffEnd]) of
	// sweep ffSweep advance by ffStride bytes per row.
	ffSweep  int
	ffZ      int64
	ffLo     int64
	ffEnd    int64
	ffStride int64
}

func (g *gen3d) advanceRow() bool {
	inner := g.spec.N - 2
	for {
		if g.hasRow {
			if !g.spec.Coalesce && g.y < inner {
				g.y++
				break
			}
			g.outer++
			if g.outer < g.cur.Hi {
				if g.spec.Coalesce {
					zi, yi := omp.Split2(g.outer, inner)
					g.z, g.y = zi+1, yi+1
				} else {
					g.z, g.y = g.outer+1, 1
				}
				break
			}
			g.hasRow = false
		}
		c, ok := g.asns[g.sweep].Next(g.thread)
		if !ok {
			g.sweep++
			if g.sweep >= len(g.asns) {
				return false
			}
			continue
		}
		g.cur = c
		g.outer = c.Lo
		if g.spec.Coalesce {
			zi, yi := omp.Split2(g.outer, inner)
			g.z, g.y = zi+1, yi+1
		} else {
			g.z, g.y = g.outer+1, 1
		}
		g.hasRow = true
		break
	}
	g.x = 1
	for i := range g.tr {
		g.tr[i].Reset()
	}
	return true
}

func (g *gen3d) Next(it *trace.Item) bool {
	n := g.spec.N
	if !g.hasRow || g.x >= n-1 {
		if !g.advanceRow() {
			return false
		}
	}
	src, dst := g.spec.Src, g.spec.Dst
	if g.sweep%2 == 1 {
		src, dst = dst, src
	}

	lo := g.x
	hi := lo + phys.LineSize/phys.WordSize
	if hi > n-1 {
		hi = n - 1
	}
	elems := hi - lo

	emit := func(base phys.Addr, tr *trace.LineTracker, write bool, first, last int64) {
		a := phys.LineOf(base + phys.Addr(first*phys.WordSize))
		b := phys.LineOf(base + phys.Addr(last*phys.WordSize))
		for l := a; l <= b; l += phys.LineSize {
			if tr.Touch(l) {
				it.Acc = append(it.Acc, trace.Access{Addr: l, Write: write})
			}
		}
	}
	emit(src(g.z-1, g.y), &g.tr[0], false, lo, hi-1)
	emit(src(g.z+1, g.y), &g.tr[1], false, lo, hi-1)
	emit(src(g.z, g.y-1), &g.tr[2], false, lo, hi-1)
	emit(src(g.z, g.y+1), &g.tr[3], false, lo, hi-1)
	emit(src(g.z, g.y), &g.tr[4], false, lo-1, hi)
	emit(dst(g.z, g.y), &g.tr[6], true, lo, hi-1)

	it.Demand.MemOps = perSite3D.MemOps * elems
	it.Demand.Flops = perSite3D.Flops * elems
	it.Demand.IntOps = perSite3D.IntOps * elems
	it.Units = elems
	it.RepBytes = 16 * elems
	g.x = hi
	return true
}

// The 3D generator mirrors the 2D one's trace.IterForwardable rationale:
// the 7-point stencil re-reads each plane's rows across neighbouring
// row-steps, so only whole-iteration translation (with replay against the
// real tag store) is exact. One iteration is one x-row at (z, y); the
// uniform region is the rest of the current z-plane — the y-to-z wrap
// changes the address delta — further capped by the chunk edge in the
// coalesced variant, where the parallel loop is row-granular. Affinity of
// the opaque RowAddr3D closures is probed over the whole region, once per
// region.

// srcDst3 returns the current sweep's source and destination addressing.
func (g *gen3d) srcDst3() (src, dst RowAddr3D) {
	src, dst = g.spec.Src, g.spec.Dst
	if g.sweep%2 == 1 {
		src, dst = dst, src
	}
	return src, dst
}

// ensure refreshes the probed region cache if the generator left it.
func (g *gen3d) ensure() {
	if g.ffSweep == g.sweep && g.hasRow && g.z == g.ffZ && g.y >= g.ffLo && g.y <= g.ffEnd {
		return
	}
	g.probe()
}

// probe scans the rest of the current z-plane (coalesced: up to the chunk
// edge) and records the maximal run of rows over which all six streams —
// the five source rows and the destination row — advance by one constant
// byte stride. The region anchor includes ffZ, so a plane change always
// re-probes.
func (g *gen3d) probe() {
	g.ffSweep = g.sweep
	g.ffZ = g.z
	g.ffLo, g.ffEnd = g.y, g.y
	g.ffStride = 0
	if !g.hasRow {
		return
	}
	inner := g.spec.N - 2
	last := inner
	if g.spec.Coalesce {
		if c := g.y + (g.cur.Hi - 1 - g.outer); c < last {
			last = c
		}
	}
	if last <= g.y {
		return
	}
	src, dst := g.srcDst3()
	stride := int64(src(g.z, g.y+1)) - int64(src(g.z, g.y))
	if int64(src(g.z, g.y))-int64(src(g.z, g.y-1)) != stride {
		return
	}
	end := g.y
	for r := g.y; r+1 <= last; r++ {
		if int64(src(g.z, r+2))-int64(src(g.z, r+1)) != stride ||
			int64(src(g.z-1, r+1))-int64(src(g.z-1, r)) != stride ||
			int64(src(g.z+1, r+1))-int64(src(g.z+1, r)) != stride ||
			int64(dst(g.z, r+1))-int64(dst(g.z, r)) != stride {
			break
		}
		end = r + 1
	}
	g.ffEnd = end
	if end > g.y {
		g.ffStride = stride
	}
}

// AtIterBoundary reports whether the generator sits between two row-steps.
func (g *gen3d) AtIterBoundary() bool {
	return !g.hasRow || g.x >= g.spec.N-1
}

// IterStride returns the verified per-row byte advance, or 0 when the
// region has no translated next row.
func (g *gen3d) IterStride() int64 {
	if !g.hasRow {
		return 0
	}
	g.ensure()
	return g.ffStride
}

// IterItems returns the number of work items in one x-row.
func (g *gen3d) IterItems() int64 {
	return (g.spec.N - 2 + elemsPerItem - 1) / elemsPerItem
}

// ItersRemaining returns how many further whole rows stay inside the
// verified-affine region.
func (g *gen3d) ItersRemaining() int64 {
	if !g.hasRow {
		return 0
	}
	g.ensure()
	if g.ffStride == 0 {
		return 0
	}
	return g.ffEnd - g.y
}

// SkipIters advances the generator n whole rows in place: the y coordinate
// (and, in the coalesced variant, the row-granular outer index) moves
// forward and the line trackers translate by the skipped byte distance.
func (g *gen3d) SkipIters(n int64) {
	if n == 0 {
		return
	}
	g.ensure()
	delta := phys.Addr(n * g.ffStride)
	g.y += n
	if g.spec.Coalesce {
		g.outer += n
	}
	for i := range g.tr {
		g.tr[i].Shift(delta)
	}
}

// IterRef returns the source anchor of the current row.
func (g *gen3d) IterRef() phys.Addr {
	src, _ := g.srcDst3()
	return src(g.z, g.y)
}

// IterPhase folds the generator's pattern-relevant state into f relative
// to ref: discrete mode (row-held flag, sweep parity, intra-row x), the
// six stream anchors and the line trackers as offsets from ref modulo
// window.
func (g *gen3d) IterPhase(f *trace.Fingerprint, window int64, ref phys.Addr) {
	if !g.hasRow {
		f.Fold(0)
		return
	}
	f.Fold(1)
	f.Fold(uint64(g.sweep & 1))
	f.Fold(uint64(g.x))
	src, dst := g.srcDst3()
	f.FoldAddr(src(g.z-1, g.y)-ref, window)
	f.FoldAddr(src(g.z+1, g.y)-ref, window)
	f.FoldAddr(src(g.z, g.y-1)-ref, window)
	f.FoldAddr(src(g.z, g.y+1)-ref, window)
	f.FoldAddr(src(g.z, g.y)-ref, window)
	f.FoldAddr(dst(g.z, g.y)-ref, window)
	for i := range g.tr {
		g.tr[i].PhaseRel(f, window, ref)
	}
}

var _ trace.IterForwardable = (*gen3d)(nil)
