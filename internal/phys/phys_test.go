package phys

import (
	"testing"
	"testing/quick"
)

func TestT2MappingBits(t *testing.T) {
	m := T2Mapping{}
	cases := []struct {
		addr Addr
		ctl  int
		bank int
	}{
		{0x000, 0, 0},
		{0x040, 0, 1}, // bit 6 flips the bank within the controller pair
		{0x080, 1, 2}, // bit 7 advances the controller
		{0x0c0, 1, 3},
		{0x100, 2, 4}, // bit 8
		{0x180, 3, 6},
		{0x1c0, 3, 7},
		{0x200, 0, 0}, // 512-byte period
		{0x1234_0000, 0, 0},
		{0x1234_0080, 1, 2},
	}
	for _, c := range cases {
		if got := m.Controller(c.addr); got != c.ctl {
			t.Errorf("Controller(%#x) = %d, want %d", c.addr, got, c.ctl)
		}
		if got := m.Bank(c.addr); got != c.bank {
			t.Errorf("Bank(%#x) = %d, want %d", c.addr, got, c.bank)
		}
	}
}

func TestT2MappingPeriodProperty(t *testing.T) {
	m := T2Mapping{}
	f := func(a uint32) bool {
		addr := Addr(a)
		return m.Controller(addr) == m.Controller(addr+Addr(m.Period())) &&
			m.Bank(addr) == m.Bank(addr+Addr(m.Period()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConsecutiveLinesRotateBanks(t *testing.T) {
	// "Consecutive 64-byte cache lines are served in turn by consecutive
	// cache banks and memory controllers."
	m := T2Mapping{}
	for k := 0; k < 16; k++ {
		a := Addr(k * LineSize)
		if got, want := m.Bank(a), k%8; got != want {
			t.Fatalf("line %d: bank %d, want %d", k, got, want)
		}
		if got, want := m.Controller(a), (k/2)%4; got != want {
			t.Fatalf("line %d: controller %d, want %d", k, got, want)
		}
	}
}

func TestMappingRangesProperty(t *testing.T) {
	for _, m := range []Mapping{T2Mapping{}, XORMapping{}, SingleMapping{}} {
		m := m
		f := func(a uint64) bool {
			addr := Addr(a)
			c := m.Controller(addr)
			b := m.Bank(addr)
			return c >= 0 && c < m.Controllers() && b >= 0 && b < m.Banks()
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestXORMappingSpreadsPowerOfTwoStrides(t *testing.T) {
	// The ablation mapping must break the congruence that causes aliasing:
	// addresses 512 bytes apart must not all land on one controller.
	m := XORMapping{}
	seen := map[int]bool{}
	for k := 0; k < 64; k++ {
		seen[m.Controller(Addr(k*512))] = true
	}
	if len(seen) != m.Controllers() {
		t.Errorf("XOR mapping covers %d controllers for 512-byte stride, want %d", len(seen), m.Controllers())
	}
}

func TestAlignUp(t *testing.T) {
	cases := []struct {
		a     Addr
		align int64
		want  Addr
	}{
		{0, 64, 0},
		{1, 64, 64},
		{64, 64, 64},
		{65, 64, 128},
		{8191, 8192, 8192},
		{8192, 8192, 8192},
	}
	for _, c := range cases {
		if got := AlignUp(c.a, c.align); got != c.want {
			t.Errorf("AlignUp(%d, %d) = %d, want %d", c.a, c.align, got, c.want)
		}
	}
}

func TestAlignUpProperty(t *testing.T) {
	f := func(a uint32, e uint8) bool {
		align := int64(1) << (e % 16)
		r := AlignUp(Addr(a), align)
		return r >= Addr(a) && IsAligned(r, align) && r < Addr(a)+Addr(align)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlignUpPanicsOnBadAlignment(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AlignUp(_, 3) did not panic")
		}
	}()
	AlignUp(0, 3)
}

func TestLineOf(t *testing.T) {
	if LineOf(0x7f) != 0x40 {
		t.Errorf("LineOf(0x7f) = %#x", LineOf(0x7f))
	}
	if LineIndex(0x80) != 2 {
		t.Errorf("LineIndex(0x80) = %d", LineIndex(0x80))
	}
}

// lyingMapping declares bank bit fields that contradict its Bank method;
// Resolve must refuse it rather than let the fast path silently diverge.
type lyingMapping struct{ T2Mapping }

func (lyingMapping) Fields() (uint64, uint64, uint64, uint64, bool) {
	return LineShift + 1, 7, LineShift + 1, 3, true // bank field off by one bit
}

func TestResolveFastPathMatchesInterface(t *testing.T) {
	for _, m := range []Mapping{T2Mapping{}, SingleMapping{}, XORMapping{}} {
		r := Resolve(m)
		for _, base := range []Addr{0, 1 << 21, 1 << 40} {
			for off := Addr(0); off < 4096; off += LineSize {
				a := base + off
				if r.Bank(a) != m.Bank(a) {
					t.Fatalf("%s: Resolved.Bank(%#x) = %d, interface says %d", m.Name(), uint64(a), r.Bank(a), m.Bank(a))
				}
				if r.Controller(a) != m.Controller(a) {
					t.Fatalf("%s: Resolved.Controller(%#x) = %d, interface says %d", m.Name(), uint64(a), r.Controller(a), m.Controller(a))
				}
			}
		}
	}
}

func TestResolveFastPathSelection(t *testing.T) {
	if !Resolve(T2Mapping{}).Fast() {
		t.Error("T2Mapping should resolve to the bit-field fast path")
	}
	if !Resolve(SingleMapping{}).Fast() {
		t.Error("SingleMapping should resolve to the bit-field fast path")
	}
	if Resolve(XORMapping{}).Fast() {
		t.Error("XORMapping must fall back to the interface path")
	}
}

func TestResolveRejectsLyingFieldMapper(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Resolve accepted a FieldMapper whose fields contradict its methods")
		}
	}()
	Resolve(lyingMapping{})
}
