package phys

import (
	"testing"
	"testing/quick"
)

// legacyT2 is the historical hand-written T2 mapping, kept here as the
// bit-for-bit reference the parameterized Interleave must reproduce.
type legacyT2 struct{}

func (legacyT2) Controller(a Addr) int { return int(a>>7) & 3 }
func (legacyT2) Bank(a Addr) int       { return int(a>>6) & 7 }
func (legacyT2) Controllers() int      { return 4 }
func (legacyT2) Banks() int            { return 8 }
func (legacyT2) Period() int64         { return 512 }
func (legacyT2) Name() string          { return "t2" }

// legacySingle is the historical hand-written degenerate mapping.
type legacySingle struct{}

func (legacySingle) Controller(Addr) int { return 0 }
func (legacySingle) Bank(Addr) int       { return 0 }
func (legacySingle) Controllers() int    { return 1 }
func (legacySingle) Banks() int          { return 1 }
func (legacySingle) Period() int64       { return LineSize }
func (legacySingle) Name() string        { return "single" }

// TestInterleaveReproducesLegacyMappings is the exhaustive equivalence
// pin for the machine-profile refactor: the parameterized Interleave
// instances T2() and Single() must agree with the historical hand-written
// mappings on every method, line by line, over a low window near zero and
// a high window past bit 40 — several interleave periods each, so every
// bank/controller phase is covered on both sides of the address space.
func TestInterleaveReproducesLegacyMappings(t *testing.T) {
	cases := []struct {
		now Mapping
		old Mapping
	}{
		{T2(), legacyT2{}},
		{Single(), legacySingle{}},
	}
	for _, c := range cases {
		if c.now.Controllers() != c.old.Controllers() || c.now.Banks() != c.old.Banks() {
			t.Fatalf("%s: geometry %d/%d, legacy %d/%d", c.now.Name(),
				c.now.Controllers(), c.now.Banks(), c.old.Controllers(), c.old.Banks())
		}
		if c.now.Period() != c.old.Period() {
			t.Fatalf("%s: period %d, legacy %d", c.now.Name(), c.now.Period(), c.old.Period())
		}
		if c.now.Name() != c.old.Name() {
			t.Fatalf("name %q, legacy %q", c.now.Name(), c.old.Name())
		}
		for _, base := range []Addr{0, 1 << 40} {
			for off := Addr(0); off < Addr(8*c.now.Period()); off += LineSize {
				a := base + off
				if got, want := c.now.Controller(a), c.old.Controller(a); got != want {
					t.Fatalf("%s: Controller(%#x) = %d, legacy %d", c.now.Name(), uint64(a), got, want)
				}
				if got, want := c.now.Bank(a), c.old.Bank(a); got != want {
					t.Fatalf("%s: Bank(%#x) = %d, legacy %d", c.now.Name(), uint64(a), got, want)
				}
			}
		}
	}
}

// TestInterleaveFieldsSurviveResolve pins the FieldMapper contract: the
// declared fields of every profile-relevant interleave must pass Resolve's
// exhaustive cross-validation and land on the devirtualized fast path.
func TestInterleaveFieldsSurviveResolve(t *testing.T) {
	for _, iv := range []Interleave{
		T2(),
		Single(),
		NewInterleave("t2-1mc", LineSize, 1, 2),
		NewInterleave("t2-2mc", LineSize, 2, 2),
		NewInterleave("mc8", LineSize, 8, 2),
		NewInterleave("t2-wide1k", 1024, 4, 2),
		NewInterleave("t2-wide4k", 4096, 4, 2),
	} {
		r := Resolve(iv)
		if !r.Fast() {
			t.Errorf("%s: interleave did not resolve to the bit-field fast path", iv.Name())
		}
	}
}

func TestT2MappingBits(t *testing.T) {
	m := T2()
	cases := []struct {
		addr Addr
		ctl  int
		bank int
	}{
		{0x000, 0, 0},
		{0x040, 0, 1}, // bit 6 flips the bank within the controller pair
		{0x080, 1, 2}, // bit 7 advances the controller
		{0x0c0, 1, 3},
		{0x100, 2, 4}, // bit 8
		{0x180, 3, 6},
		{0x1c0, 3, 7},
		{0x200, 0, 0}, // 512-byte period
		{0x1234_0000, 0, 0},
		{0x1234_0080, 1, 2},
	}
	for _, c := range cases {
		if got := m.Controller(c.addr); got != c.ctl {
			t.Errorf("Controller(%#x) = %d, want %d", c.addr, got, c.ctl)
		}
		if got := m.Bank(c.addr); got != c.bank {
			t.Errorf("Bank(%#x) = %d, want %d", c.addr, got, c.bank)
		}
	}
}

// TestInterleaveGeometry spot-checks the non-T2 instances the profile
// registry builds on.
func TestInterleaveGeometry(t *testing.T) {
	cases := []struct {
		iv          Interleave
		ctls, banks int
		period      int64
	}{
		{NewInterleave("t2-1mc", LineSize, 1, 2), 1, 2, 128},
		{NewInterleave("t2-2mc", LineSize, 2, 2), 2, 4, 256},
		{NewInterleave("mc8", LineSize, 8, 2), 8, 16, 1024},
		{NewInterleave("t2-wide1k", 1024, 4, 2), 4, 8, 8192},
		{NewInterleave("t2-wide4k", 4096, 4, 2), 4, 8, 32768},
	}
	for _, c := range cases {
		if c.iv.Controllers() != c.ctls || c.iv.Banks() != c.banks || c.iv.Period() != c.period {
			t.Errorf("%s: %d controllers / %d banks / period %d, want %d/%d/%d", c.iv.Name(),
				c.iv.Controllers(), c.iv.Banks(), c.iv.Period(), c.ctls, c.banks, c.period)
		}
		// Period property: the controller repeats exactly at the period and
		// changes somewhere inside it (unless there is only one controller).
		for k := int64(0); k < c.period; k += LineSize {
			a := Addr(k)
			if c.iv.Controller(a) != c.iv.Controller(a+Addr(c.period)) {
				t.Fatalf("%s: controller not periodic at %#x", c.iv.Name(), k)
			}
		}
	}
	// A coarse interleave keeps whole granules on one controller.
	wide := NewInterleave("t2-wide1k", 1024, 4, 2)
	for k := int64(0); k < 1024; k += LineSize {
		if wide.Controller(Addr(k)) != wide.Controller(0) || wide.Bank(Addr(k)) != wide.Bank(0) {
			t.Fatalf("wide interleave splits a granule at offset %d", k)
		}
	}
	if wide.Bank(1024) == wide.Bank(0) {
		t.Error("wide interleave does not advance the bank at the granule boundary")
	}
}

// TestNewInterleaveRejectsBadGeometry pins the constructor validation.
func TestNewInterleaveRejectsBadGeometry(t *testing.T) {
	cases := []struct {
		name               string
		granule            int64
		ctls, banksPerCtrl int
	}{
		{"granule below line", 32, 4, 2},
		{"granule not power of two", 96, 4, 2},
		{"controllers not power of two", 64, 3, 2},
		{"zero controllers", 64, 0, 2},
		{"banks not power of two", 64, 4, 3},
		{"zero banks", 64, 4, 0},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewInterleave did not panic", c.name)
				}
			}()
			NewInterleave("bad", c.granule, c.ctls, c.banksPerCtrl)
		}()
	}
}

func TestT2MappingPeriodProperty(t *testing.T) {
	m := T2()
	f := func(a uint32) bool {
		addr := Addr(a)
		return m.Controller(addr) == m.Controller(addr+Addr(m.Period())) &&
			m.Bank(addr) == m.Bank(addr+Addr(m.Period()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConsecutiveLinesRotateBanks(t *testing.T) {
	// "Consecutive 64-byte cache lines are served in turn by consecutive
	// cache banks and memory controllers."
	m := T2()
	for k := 0; k < 16; k++ {
		a := Addr(k * LineSize)
		if got, want := m.Bank(a), k%8; got != want {
			t.Fatalf("line %d: bank %d, want %d", k, got, want)
		}
		if got, want := m.Controller(a), (k/2)%4; got != want {
			t.Fatalf("line %d: controller %d, want %d", k, got, want)
		}
	}
}

func TestMappingRangesProperty(t *testing.T) {
	for _, m := range []Mapping{T2(), XORMapping{}, Single(), NewInterleave("t2-wide4k", 4096, 4, 2)} {
		m := m
		f := func(a uint64) bool {
			addr := Addr(a)
			c := m.Controller(addr)
			b := m.Bank(addr)
			return c >= 0 && c < m.Controllers() && b >= 0 && b < m.Banks()
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestXORMappingSpreadsPowerOfTwoStrides(t *testing.T) {
	// The ablation mapping must break the congruence that causes aliasing:
	// addresses 512 bytes apart must not all land on one controller.
	m := XORMapping{}
	seen := map[int]bool{}
	for k := 0; k < 64; k++ {
		seen[m.Controller(Addr(k*512))] = true
	}
	if len(seen) != m.Controllers() {
		t.Errorf("XOR mapping covers %d controllers for 512-byte stride, want %d", len(seen), m.Controllers())
	}
}

func TestAlignUp(t *testing.T) {
	cases := []struct {
		a     Addr
		align int64
		want  Addr
	}{
		{0, 64, 0},
		{1, 64, 64},
		{64, 64, 64},
		{65, 64, 128},
		{8191, 8192, 8192},
		{8192, 8192, 8192},
	}
	for _, c := range cases {
		if got := AlignUp(c.a, c.align); got != c.want {
			t.Errorf("AlignUp(%d, %d) = %d, want %d", c.a, c.align, got, c.want)
		}
	}
}

func TestAlignUpProperty(t *testing.T) {
	f := func(a uint32, e uint8) bool {
		align := int64(1) << (e % 16)
		r := AlignUp(Addr(a), align)
		return r >= Addr(a) && IsAligned(r, align) && r < Addr(a)+Addr(align)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlignUpPanicsOnBadAlignment(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AlignUp(_, 3) did not panic")
		}
	}()
	AlignUp(0, 3)
}

func TestLineOf(t *testing.T) {
	if LineOf(0x7f) != 0x40 {
		t.Errorf("LineOf(0x7f) = %#x", LineOf(0x7f))
	}
	if LineIndex(0x80) != 2 {
		t.Errorf("LineIndex(0x80) = %d", LineIndex(0x80))
	}
}

// lyingMapping declares bank bit fields that contradict its Bank method;
// Resolve must refuse it rather than let the fast path silently diverge.
type lyingMapping struct{ Interleave }

func (lyingMapping) Fields() (uint64, uint64, uint64, uint64, bool) {
	return LineShift + 1, 7, LineShift + 1, 3, true // bank field off by one bit
}

func TestResolveFastPathMatchesInterface(t *testing.T) {
	for _, m := range []Mapping{T2(), Single(), XORMapping{}, NewInterleave("t2-wide1k", 1024, 4, 2)} {
		r := Resolve(m)
		for _, base := range []Addr{0, 1 << 21, 1 << 40} {
			for off := Addr(0); off < 65536; off += LineSize {
				a := base + off
				if r.Bank(a) != m.Bank(a) {
					t.Fatalf("%s: Resolved.Bank(%#x) = %d, interface says %d", m.Name(), uint64(a), r.Bank(a), m.Bank(a))
				}
				if r.Controller(a) != m.Controller(a) {
					t.Fatalf("%s: Resolved.Controller(%#x) = %d, interface says %d", m.Name(), uint64(a), r.Controller(a), m.Controller(a))
				}
			}
		}
	}
}

func TestResolveFastPathSelection(t *testing.T) {
	if !Resolve(T2()).Fast() {
		t.Error("the T2 interleave should resolve to the bit-field fast path")
	}
	if !Resolve(Single()).Fast() {
		t.Error("the single interleave should resolve to the bit-field fast path")
	}
	if Resolve(XORMapping{}).Fast() {
		t.Error("XORMapping must fall back to the interface path")
	}
}

func TestResolveRejectsLyingFieldMapper(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Resolve accepted a FieldMapper whose fields contradict its methods")
		}
	}()
	Resolve(lyingMapping{Interleave: T2()})
}
