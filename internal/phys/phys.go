// Package phys models the physical address space of the simulated machine:
// address arithmetic, cache-line and page geometry, and the policies that
// map a physical address to a memory controller and an L2 cache bank.
//
// Nothing about the paper's central mechanism is specific to one chip: any
// machine whose controller is selected by a fixed bit field of the physical
// address exhibits the same congruence effects, with the period set by the
// field position and width. Interleave captures that whole family as one
// parameterized, constructor-validated mapping; the UltraSPARC T2 policy of
// the paper's Sect. 1 — bits 8:7 select one of four memory controllers,
// bit 6 one of the two L2 banks attached to it, for a 512-byte period — is
// the T2() instance.
package phys

import (
	"fmt"
	"math/bits"
)

// Addr is a physical byte address in the simulated machine.
type Addr uint64

// Geometry constants of the simulated T2. The line size is fixed at 64
// bytes throughout the model; pages are 8 kB (the smallest Solaris page
// size used in the paper, relevant for posix_memalign-to-page experiments).
const (
	LineShift = 6
	LineSize  = 1 << LineShift // 64 B, the L2 cache line
	PageSize  = 8192           // 8 kB
	WordSize  = 8              // a double-precision word
)

// LineOf returns the address of the cache line containing a.
func LineOf(a Addr) Addr { return a &^ (LineSize - 1) }

// LineIndex returns the global index of the cache line containing a.
func LineIndex(a Addr) uint64 { return uint64(a) >> LineShift }

// AlignUp rounds a up to the next multiple of align. align must be a
// power of two; AlignUp panics otherwise because a mis-specified alignment
// silently destroys every placement experiment built on top of it.
func AlignUp(a Addr, align int64) Addr {
	if align <= 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("phys: alignment %d is not a positive power of two", align))
	}
	m := Addr(align - 1)
	return (a + m) &^ m
}

// IsAligned reports whether a is a multiple of align (align a power of two).
func IsAligned(a Addr, align int64) bool {
	if align <= 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("phys: alignment %d is not a positive power of two", align))
	}
	return a&Addr(align-1) == 0
}

// Mapping decides which memory controller and which L2 bank serve a given
// physical address. Implementations must be pure functions of the address.
type Mapping interface {
	// Controller returns the memory-controller index in [0, Controllers())
	// for the line containing a.
	Controller(a Addr) int
	// Bank returns the global L2 bank index in [0, Banks()) for the line
	// containing a.
	Bank(a Addr) int
	// Controllers returns the number of memory controllers.
	Controllers() int
	// Banks returns the number of L2 banks.
	Banks() int
	// Period returns the smallest positive byte distance p such that
	// Controller(a) == Controller(a+p) for all a, i.e. the spatial period
	// of the controller interleave. 512 bytes on the T2.
	Period() int64
	// Name identifies the mapping in reports.
	Name() string
}

// Interleave is the parameterized bit-field address interleave: BankBits
// address bits starting at BankShift pick the bank within a controller,
// and CtrlBits bits directly above them (at CtrlShift) pick the
// controller. The global bank index is the whole CtrlBits+BankBits field
// at BankShift, so consecutive granules of 1<<BankShift bytes are served
// by consecutive banks and controllers with a period of
// granule x banks-per-controller x controllers bytes.
//
// Every machine in this family is FieldMapper-compatible: the hot paths in
// cache and mem devirtualize it to two shift/mask extractions. Build
// instances with NewInterleave, which validates the geometry; the zero
// value is invalid.
type Interleave struct {
	Label     string // mapping name, reported by Name
	BankShift uint   // log2 of the interleave granule in bytes
	BankBits  uint   // log2 of banks per controller
	CtrlShift uint   // bit position of the controller field: BankShift+BankBits
	CtrlBits  uint   // log2 of controllers
}

// NewInterleave builds a validated interleave: granule bytes (a power of
// two, at least one cache line) go to each bank in turn, banksPerCtrl
// banks per controller, controllers controllers (both powers of two). It
// panics on impossible geometry, since a silently wrong interleave would
// invalidate every placement result computed on top of it.
func NewInterleave(label string, granule int64, controllers, banksPerCtrl int) Interleave {
	if granule < LineSize || granule&(granule-1) != 0 {
		panic(fmt.Sprintf("phys: interleave granule %d is not a power of two >= the %d-byte line", granule, LineSize))
	}
	if controllers <= 0 || controllers&(controllers-1) != 0 {
		panic(fmt.Sprintf("phys: controller count %d is not a positive power of two", controllers))
	}
	if banksPerCtrl <= 0 || banksPerCtrl&(banksPerCtrl-1) != 0 {
		panic(fmt.Sprintf("phys: banks-per-controller %d is not a positive power of two", banksPerCtrl))
	}
	if label == "" {
		panic("phys: interleave needs a label")
	}
	bankShift := uint(bits.TrailingZeros64(uint64(granule)))
	bankBits := uint(bits.TrailingZeros64(uint64(banksPerCtrl)))
	return Interleave{
		Label:     label,
		BankShift: bankShift,
		BankBits:  bankBits,
		CtrlShift: bankShift + bankBits,
		CtrlBits:  uint(bits.TrailingZeros64(uint64(controllers))),
	}
}

// T2 returns the documented UltraSPARC T2 address interleave: 4
// controllers x 2 banks x 64-byte granules, i.e. controller = bits 8:7,
// global bank = bits 8:6, period 512 bytes.
func T2() Interleave { return NewInterleave("t2", LineSize, 4, 2) }

// Single returns the degenerate one-controller, one-bank interleave used
// as the no-interleaving baseline.
func Single() Interleave { return NewInterleave("single", LineSize, 1, 1) }

// Controller returns the CtrlBits-wide field at CtrlShift.
func (iv Interleave) Controller(a Addr) int {
	return int(uint64(a)>>iv.CtrlShift) & (1<<iv.CtrlBits - 1)
}

// Bank returns the global bank index: the CtrlBits+BankBits-wide field at
// BankShift, so two granules under one controller are followed by the next
// controller's granules.
func (iv Interleave) Bank(a Addr) int {
	return int(uint64(a)>>iv.BankShift) & (1<<(iv.BankBits+iv.CtrlBits) - 1)
}

// Controllers returns the number of memory controllers.
func (iv Interleave) Controllers() int { return 1 << iv.CtrlBits }

// Banks returns the global bank count: controllers x banks-per-controller.
func (iv Interleave) Banks() int { return 1 << (iv.BankBits + iv.CtrlBits) }

// Granule returns the bytes served by one bank before the interleave moves
// on — one cache line on the T2, more for coarse interleaves.
func (iv Interleave) Granule() int64 { return 1 << iv.BankShift }

// Period returns the spatial period of the controller interleave:
// granule x banks.
func (iv Interleave) Period() int64 { return int64(1) << (iv.BankShift + iv.BankBits + iv.CtrlBits) }

// Name returns the label.
func (iv Interleave) Name() string { return iv.Label }

// XORMapping is an ablation policy: the controller and bank are selected by
// XOR-folding many address bits, so regular strides no longer alias onto a
// single controller. It answers the design question "would a hashed
// interleave have hidden the effects the paper reports?".
type XORMapping struct{}

func xorFold(a Addr) uint64 {
	x := uint64(a) >> LineShift
	// Fold 30 bits of line index into 3. Any fixed full-rank fold works;
	// this one mixes bits far enough apart that all strides the paper uses
	// (powers of two up to megabytes) hit all controllers uniformly.
	x ^= x >> 3
	x ^= x >> 6
	x ^= x >> 12
	x ^= x >> 24
	return x & 7
}

// Controller returns the upper two bits of the folded line index.
func (XORMapping) Controller(a Addr) int { return int(xorFold(a) >> 1) }

// Bank returns the folded line index.
func (XORMapping) Bank(a Addr) int { return int(xorFold(a)) }

// Controllers returns 4.
func (XORMapping) Controllers() int { return 4 }

// Banks returns 8.
func (XORMapping) Banks() int { return 8 }

// Period returns 0: a hashed interleave has no meaningful spatial period.
func (XORMapping) Period() int64 { return 0 }

// Name returns "xor".
func (XORMapping) Name() string { return "xor" }

// FieldMapper is the optional fast-path contract for mappings whose
// controller and bank are pure bit fields of the address. A mapping that
// implements it lets Resolve extract a shift/mask pair, so the per-access
// Bank/Controller computations in the cache and memory models compile to
// two inlined integer operations instead of an interface call. Hashed
// mappings (XOR folds, randomized interleaves) simply do not implement it
// and keep the interface path.
type FieldMapper interface {
	// Fields returns the bit fields such that
	//	Bank(a)       == int(uint64(a) >> bankShift & bankMask)
	//	Controller(a) == int(uint64(a) >> ctlShift & ctlMask)
	// for every address. ok reports whether the fields are valid; a false
	// ok forces the interface fallback.
	Fields() (bankShift, bankMask, ctlShift, ctlMask uint64, ok bool)
}

// Fields returns the interleave's bank and controller bit fields; every
// Interleave takes the devirtualized fast path.
func (iv Interleave) Fields() (uint64, uint64, uint64, uint64, bool) {
	return uint64(iv.BankShift), uint64(1)<<(iv.BankBits+iv.CtrlBits) - 1,
		uint64(iv.CtrlShift), uint64(1)<<iv.CtrlBits - 1, true
}

// Resolved is a devirtualized mapping handle, bound once at model
// construction time. For FieldMapper mappings, Bank and Controller are
// branch-predictable shift/mask extractions that the compiler inlines into
// the cache and controller hot loops; for all other mappings they fall
// back to the Mapping interface. Resolve validates the declared fields
// against the interface methods, so a lying FieldMapper cannot silently
// diverge from the model it claims to accelerate.
type Resolved struct {
	m         Mapping
	fast      bool
	bankShift uint64
	bankMask  uint64
	ctlShift  uint64
	ctlMask   uint64
}

// Resolve binds m into a devirtualized handle. It panics if m declares bit
// fields that disagree with its Bank/Controller methods anywhere in the
// validation windows (one low window and one high window, covering several
// interleave periods each).
func Resolve(m Mapping) Resolved {
	r := Resolved{m: m}
	fm, ok := m.(FieldMapper)
	if !ok {
		return r
	}
	bs, bm, cs, cm, ok := fm.Fields()
	if !ok {
		return r
	}
	r.fast, r.bankShift, r.bankMask, r.ctlShift, r.ctlMask = true, bs, bm, cs, cm
	span := m.Period() * 4
	if span < 4*PageSize {
		span = 4 * PageSize
	}
	for _, base := range []Addr{0, 1 << 40} {
		for off := Addr(0); off < Addr(span); off += LineSize {
			a := base + off
			if r.Bank(a) != m.Bank(a) || r.Controller(a) != m.Controller(a) {
				panic(fmt.Sprintf("phys: mapping %q declares bit fields inconsistent with its methods at address %#x", m.Name(), uint64(a)))
			}
		}
	}
	return r
}

// Bank returns the L2 bank index for the line containing a.
func (r Resolved) Bank(a Addr) int {
	if r.fast {
		return int(uint64(a) >> r.bankShift & r.bankMask)
	}
	return r.m.Bank(a)
}

// Controller returns the memory-controller index for the line containing a.
func (r Resolved) Controller(a Addr) int {
	if r.fast {
		return int(uint64(a) >> r.ctlShift & r.ctlMask)
	}
	return r.m.Controller(a)
}

// Mapping returns the underlying mapping.
func (r Resolved) Mapping() Mapping { return r.m }

// BankField returns the bank bit field when the fast path is active.
func (r Resolved) BankField() (shift, mask uint64, ok bool) {
	return r.bankShift, r.bankMask, r.fast
}

// Fast reports whether the handle uses the bit-field fast path.
func (r Resolved) Fast() bool { return r.fast }

var (
	_ Mapping     = Interleave{}
	_ Mapping     = XORMapping{}
	_ FieldMapper = Interleave{}
)
