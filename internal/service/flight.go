package service

import (
	"context"
	"fmt"
	"sync"
)

// flightGroup coalesces concurrent executions of the same fingerprint:
// the first caller for a key becomes the leader and runs the function;
// every concurrent duplicate waits for the leader's result instead of
// paying for its own simulation. The leader's function runs in its own
// goroutine, detached from any single caller's context — if the leader's
// client disconnects, the computation keeps going for the followers (and
// for the cache), and only the disconnected caller gets a cancellation.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	b    []byte
	err  error
}

// Do returns fn's result for key, coalescing concurrent callers. shared
// reports whether this caller rode on another caller's execution. A
// caller whose ctx dies stops waiting (its error is the context's), but
// the execution itself is unaffected.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() ([]byte, error)) (b []byte, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*flightCall{}
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.b, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	go func() {
		defer func() {
			// A panic in fn must not strand the followers on a never-closed
			// channel; convert it to an error for everyone.
			if r := recover(); r != nil {
				c.err = fmt.Errorf("service: panic during coalesced execution: %v", r)
			}
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
		}()
		c.b, c.err = fn()
	}()

	select {
	case <-c.done:
		return c.b, false, c.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}
