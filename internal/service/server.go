package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/exp"
	"repro/internal/faults"
)

// Config sizes the server. The zero value of every field selects a
// sensible default (see withDefaults), so Config{} is a working server.
type Config struct {
	// MaxConcurrent bounds how many sweeps execute simultaneously; further
	// admitted requests queue. Default 2.
	MaxConcurrent int
	// QueueDepth bounds how many requests may wait for an executor beyond
	// the ones executing; past it the server sheds with 429. Default 16.
	QueueDepth int
	// QueueWait bounds how long a request may age in the queue before the
	// server sheds it with 503 — a request that has waited this long is
	// better retried against a less loaded moment than served stale.
	// Default 10s.
	QueueWait time.Duration
	// CacheBytes is the result cache's payload budget. Default 64 MiB.
	CacheBytes int64
	// Jobs is the sweep-pool worker count per executing sweep. Default
	// GOMAXPROCS/MaxConcurrent, at least 1 — sweep-level and request-level
	// parallelism share one core budget instead of oversubscribing.
	Jobs int
	// Retries and Backoff configure the per-point recovery budget every
	// sweep runs with (exp.Runner's bounded doubling backoff). Defaults:
	// 2 retries, 10ms first backoff. Retries < 0 disables retry.
	Retries int
	Backoff time.Duration
	// MaxTimeout is the ceiling (and default) for per-request execution
	// deadlines. Default 5m.
	MaxTimeout time.Duration
	// RetryAfter is the hint stamped into shed responses. Default 1s.
	RetryAfter time.Duration
	// DrainGrace bounds the wait for cancelled in-flight sweeps to
	// actually halt after the drain deadline fires; engine cancellation is
	// cooperative and fast, so this is a backstop. Default 10s.
	DrainGrace time.Duration
	// Registry resolves figure experiments; nil means bench.Figures. Tests
	// substitute synthetic experiments here.
	Registry Registry
}

// withDefaults fills every unset knob.
func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 10 * time.Second
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.Jobs <= 0 {
		c.Jobs = runtime.GOMAXPROCS(0) / c.MaxConcurrent
		if c.Jobs < 1 {
			c.Jobs = 1
		}
	}
	if c.Retries == 0 {
		c.Retries = 2
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.Backoff <= 0 {
		c.Backoff = 10 * time.Millisecond
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 10 * time.Second
	}
	if c.Registry == nil {
		c.Registry = bench.Figures
	}
	return c
}

// Shedding and lifecycle error classes; statusOf maps them (and the
// cancellation causes) onto the HTTP contract.
var (
	// ErrQueueFull sheds a request because the admission queue is at
	// depth: the client is one of too many and should back off (429).
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrQueueWait sheds a request that aged past the queue-wait budget
	// without reaching an executor: the server is saturated (503).
	ErrQueueWait = errors.New("service: request aged out of the admission queue")
	// ErrDraining sheds work because the server is shutting down (503); it
	// is also the cancellation cause threaded into in-flight sweeps when
	// the drain deadline fires.
	ErrDraining = errors.New("service: server is draining")
)

// Server is the simulation service: one instance owns the result cache,
// the singleflight group, the admission queue and the scratch pool, and
// serves the HTTP surface via Handler. Create with New.
type Server struct {
	cfg    Config
	cache  *Cache
	flight flightGroup
	pool   *exp.ScratchPool
	sem    chan struct{}

	waiting  atomic.Int64 // requests inside admit (queued or about to run)
	inflight atomic.Int64 // sweeps holding an executor slot
	reqSeq   atomic.Int64

	draining   atomic.Bool
	drainCh    chan struct{}
	base       context.Context
	baseCancel context.CancelCauseFunc

	m metrics
}

// New builds a server from the config (zero-value fields defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	base, cancel := context.WithCancelCause(context.Background())
	return &Server{
		cfg:        cfg,
		cache:      NewCache(cfg.CacheBytes),
		pool:       exp.NewScratchPool(cfg.MaxConcurrent * cfg.Jobs),
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		drainCh:    make(chan struct{}),
		base:       base,
		baseCancel: cancel,
	}
}

// Handler returns the HTTP surface:
//
//	POST /v1/sweep  — submit a sweep; the response body is the canonical
//	                  JSON trajectory, byte-identical to cmd/figures -json
//	                  output for the same sweep. X-T2simd-Cache reports
//	                  hit, miss or coalesced; X-T2simd-Fingerprint the key.
//	GET  /healthz   — liveness: 200 while the process runs.
//	GET  /readyz    — readiness: 200 while admitting, 503 while draining.
//	GET  /metrics   — operational counters and gauges, `name value` text.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
			return
		}
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.renderMetrics(w)
	})
	return mux
}

// statusClientClosedRequest is nginx's 499: the client went away before
// the response; no standard status fits a client-side cancellation.
const statusClientClosedRequest = 499

// handleSweep is the request pipeline: parse → resolve+fingerprint →
// cache → singleflight(admission → execute → cache fill) → respond.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	ord := int(s.reqSeq.Add(1))
	s.m.requests.Add(1)
	defer func() {
		// A panic anywhere in the request path is one failed request, not
		// a dead server: convert to 500 and keep serving (the faultinject
		// tier injects exactly this and asserts the next request works).
		if rec := recover(); rec != nil {
			s.m.requestPanics.Add(1)
			s.writeError(w, http.StatusInternalServerError, "internal",
				fmt.Sprintf("panic serving request: %v", rec))
		}
	}()
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "validation", "POST a SweepRequest JSON body")
		return
	}
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req SweepRequest
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "validation", fmt.Sprintf("bad request body: %v", err))
		return
	}
	faults.RequestFault(ord)
	res, err := Resolve(req, s.cfg.Registry, s.cfg.Jobs, s.cfg.MaxTimeout)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "validation", err.Error())
		return
	}

	if b, ok := s.cache.Get(res.Key); ok {
		s.serve(w, res.Key, "hit", b)
		return
	}

	b, shared, err := s.flight.Do(r.Context(), res.Key, func() ([]byte, error) {
		return s.admitAndRun(res)
	})
	if err != nil {
		if r.Context().Err() != nil {
			// The client went away; the execution (if any) continues for
			// the cache and any coalesced duplicates.
			s.writeError(w, statusClientClosedRequest, "cancel", "client closed request")
			return
		}
		code, class := statusOf(err)
		s.writeError(w, code, class, err.Error())
		return
	}
	state := "miss"
	if shared {
		state = "coalesced"
		s.m.coalesced.Add(1)
	}
	s.serve(w, res.Key, state, b)
}

// admitAndRun is the leader's path: pass admission control, then execute
// the sweep under the request deadline (parented on the server's
// lifecycle context, so a drain deadline cancels it cooperatively) and
// fill the cache. Runs detached from any single client connection.
func (s *Server) admitAndRun(res *Resolved) ([]byte, error) {
	// Re-check the cache: between this request's miss and it becoming the
	// flight leader, a previous leader may have finished and filled the
	// entry — serving it here closes the window where a duplicate would
	// re-execute.
	if b, ok := s.cache.getNoMiss(res.Key); ok {
		return b, nil
	}
	release, err := s.admit()
	if err != nil {
		return nil, err
	}
	defer release()

	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	ctx, cancel := context.WithTimeout(s.base, res.Timeout)
	defer cancel()
	faults.ServiceStall(ctx)

	runner := exp.Runner{
		Jobs:    res.Jobs,
		Retries: s.cfg.Retries,
		Backoff: s.cfg.Backoff,
		Pool:    s.pool,
	}
	s.m.executions.Add(1)
	out, err := runner.RunContext(ctx, res.Figure.Exp)
	s.m.retries.Add(out.Retries)
	s.m.pointErrors.Add(out.PointErrors)
	s.m.watchdogTrips.Add(out.WatchdogTrips)
	if err != nil {
		s.m.execErrors.Add(1)
		if out.Cancelled {
			s.m.cancelled.Add(1)
		}
		// Never serve or cache a partial outcome: classify and fail the
		// request. exp wraps the context cause, so errors.Is sees through.
		return nil, err
	}
	b, err := out.JSON()
	if err != nil {
		s.m.execErrors.Add(1)
		return nil, err
	}
	s.cache.Put(res.Key, b)
	return b, nil
}

// admit is the admission gate: refuse instantly when draining or when
// the queue is at depth, otherwise wait for an executor slot up to the
// queue-wait budget. On success the caller holds a slot and must call
// release.
func (s *Server) admit() (release func(), err error) {
	if s.draining.Load() {
		s.m.shedDraining.Add(1)
		return nil, ErrDraining
	}
	w := s.waiting.Add(1)
	defer s.waiting.Add(-1)
	// Depth counts everyone between arrival and completion: the executing
	// sweeps plus the queue behind them. Past MaxConcurrent+QueueDepth the
	// newcomer is one of too many — shed it instantly instead of letting
	// the queue grow without bound.
	if w+s.inflight.Load() > int64(s.cfg.MaxConcurrent+s.cfg.QueueDepth) {
		s.m.shedQueueFull.Add(1)
		return nil, ErrQueueFull
	}
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		if s.draining.Load() {
			// Drain won the race for the slot; give it back.
			<-s.sem
			s.m.shedDraining.Add(1)
			return nil, ErrDraining
		}
		return func() { <-s.sem }, nil
	case <-t.C:
		s.m.shedQueueWait.Add(1)
		return nil, ErrQueueWait
	case <-s.drainCh:
		s.m.shedDraining.Add(1)
		return nil, ErrDraining
	}
}

// statusOf maps an execution or admission error onto the HTTP contract:
// queue-full → 429 (the client should back off), saturation and drain →
// 503 (the server cannot serve right now; both carry Retry-After),
// deadline → 504, anything else → 500. Client-side cancellation (499) is
// handled in the handler, where the client's context is visible.
func statusOf(err error) (code int, class string) {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, "shed"
	case errors.Is(err, ErrQueueWait):
		return http.StatusServiceUnavailable, "shed"
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// serve writes a successful trajectory response.
func (s *Server) serve(w http.ResponseWriter, key, cacheState string, b []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(b)))
	h.Set("X-T2simd-Cache", cacheState)
	h.Set("X-T2simd-Fingerprint", key)
	w.Write(b)
}

// writeError writes the error contract: a JSON body naming the class
// ("validation", "shed", "draining", "deadline", "cancel", "internal")
// and, on shed/draining responses, a Retry-After hint.
func (s *Server) writeError(w http.ResponseWriter, code int, class, msg string) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		secs := int64((s.cfg.RetryAfter + time.Second - 1) / time.Second)
		h.Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg, "class": class})
}

// Drain is the graceful-shutdown contract: stop admitting (readyz flips
// to 503, queued requests shed, new ones refuse), then wait up to
// deadline for in-flight sweeps to finish on their own; past the
// deadline, cancel them cooperatively through the engines' cancellation
// path and wait out the (bounded) halt latency. It returns true when
// every in-flight sweep finished without being cancelled. Drain is
// idempotent; concurrent calls all wait.
func (s *Server) Drain(deadline time.Duration) (clean bool) {
	if s.draining.CompareAndSwap(false, true) {
		close(s.drainCh)
	}
	if s.awaitIdle(deadline) {
		return true
	}
	s.m.drainCancels.Add(s.inflight.Load())
	s.baseCancel(fmt.Errorf("%w: drain deadline (%s) reached, cancelling in-flight sweeps", ErrDraining, deadline))
	s.awaitIdle(s.cfg.DrainGrace)
	return false
}

// awaitIdle polls until no sweep holds an executor slot, or d elapses.
func (s *Server) awaitIdle(d time.Duration) bool {
	stop := time.Now().Add(d)
	for {
		if s.inflight.Load() == 0 {
			return true
		}
		if time.Now().After(stop) {
			return s.inflight.Load() == 0
		}
		time.Sleep(2 * time.Millisecond)
	}
}
