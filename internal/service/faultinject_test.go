//go:build faultinject

package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/chip"
	"repro/internal/exp"
	"repro/internal/faults"
)

// quickRegistry is a one-figure registry whose sweep completes instantly —
// the service-tier injections (request panic, cache corruption, stall)
// happen around the simulation, not inside it.
func quickRegistry() Registry {
	return unitRegistry(1, func(_ chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
		return exp.Result{Series: "s", X: float64(p.Int("k")), Y: 1}, nil
	})
}

// TestInjectedRequestPanicIsOneFailedRequest: an injected handler panic
// must become a 500 for that one request, and the very next request must
// be served normally — a panic is one failed request, never a dead server.
func TestInjectedRequestPanicIsOneFailedRequest(t *testing.T) {
	faults.Arm(&faults.Plan{Seed: 0xDEAD, PanicRequests: []int{1}})
	defer faults.Disarm()

	s := New(Config{Registry: quickRegistry()})
	h := s.Handler()

	first := postSweep(h, nil, `{"figure":"unit0"}`)
	if first.Code != http.StatusInternalServerError {
		t.Fatalf("panicking request: %d %s, want 500", first.Code, first.Body.String())
	}
	var e map[string]string
	if err := json.Unmarshal(first.Body.Bytes(), &e); err != nil || e["class"] != "internal" {
		t.Errorf("panic response body %s, want class internal", first.Body.String())
	}

	second := postSweep(h, nil, `{"figure":"unit0"}`)
	if second.Code != http.StatusOK {
		t.Fatalf("request after panic: %d %s, want 200 (server must keep serving)", second.Code, second.Body.String())
	}
	if got := faults.Stats().RequestPanics; got != 1 {
		t.Errorf("injected request panics = %d, want 1", got)
	}
	if got := s.m.requestPanics.Load(); got != 1 {
		t.Errorf("recovered request panics = %d, want 1", got)
	}
}

// TestInjectedCacheCorruptionIsNeverServed: a cache entry corrupted after
// insertion must be rejected by the checksum on the next lookup and the
// sweep recomputed — the client sees correct bytes both times, never the
// corrupt ones, and the recomputed (clean) entry then serves hits again.
func TestInjectedCacheCorruptionIsNeverServed(t *testing.T) {
	faults.Arm(&faults.Plan{Seed: 0xBADCAFE, CorruptCachePuts: 1})
	defer faults.Disarm()

	s := New(Config{Registry: quickRegistry()})
	h := s.Handler()
	body := `{"figure":"unit0"}`

	first := postSweep(h, nil, body)
	if first.Code != http.StatusOK {
		t.Fatalf("first request: %d %s", first.Code, first.Body.String())
	}

	// The cached copy is now corrupt; the served bytes above were not
	// (Put stores a copy). The repeat must reject the entry and recompute.
	second := postSweep(h, nil, body)
	if second.Code != http.StatusOK {
		t.Fatalf("second request: %d %s", second.Code, second.Body.String())
	}
	if got := second.Header().Get("X-T2simd-Cache"); got != "miss" {
		t.Errorf("request against corrupt entry reported cache %q, want miss (rejected, recomputed)", got)
	}
	if !bytes.Equal(second.Body.Bytes(), first.Body.Bytes()) {
		t.Error("recomputed response differs from the original — corruption leaked")
	}
	if got := s.cache.Stats().CorruptionsRejected; got != 1 {
		t.Errorf("corruptions rejected = %d, want 1", got)
	}
	if got := s.m.executions.Load(); got != 2 {
		t.Errorf("executions = %d, want 2 (the corrupt entry forced a recompute)", got)
	}
	if got := faults.Stats().CacheCorruptions; got != 1 {
		t.Errorf("injected corruptions = %d, want 1", got)
	}

	// The recompute stored a clean entry (the plan corrupts only one Put).
	third := postSweep(h, nil, body)
	if got := third.Header().Get("X-T2simd-Cache"); third.Code != http.StatusOK || got != "hit" {
		t.Errorf("third request: %d cache=%q, want 200 hit", third.Code, got)
	}
	if !bytes.Equal(third.Body.Bytes(), first.Body.Bytes()) {
		t.Error("post-recompute hit served different bytes")
	}
}

// TestDrainDeadlineCutsStalledWorker: a worker wedged before its sweep
// even starts (the injected stall) must still be cut by the drain
// deadline — the stall aborts with the server's lifecycle context, the
// client gets the draining class, and Drain returns promptly.
func TestDrainDeadlineCutsStalledWorker(t *testing.T) {
	faults.Arm(&faults.Plan{Seed: 0x57A11, ServiceStallFor: time.Minute})
	defer faults.Disarm()

	s := New(Config{Registry: quickRegistry()})
	h := s.Handler()

	done := make(chan int, 1)
	go func() { done <- postSweep(h, nil, `{"figure":"unit0"}`).Code }()
	waitFor(t, "worker to stall in-flight", func() bool { return s.inflight.Load() == 1 })

	start := time.Now()
	if s.Drain(50 * time.Millisecond) {
		t.Error("Drain reported clean despite cancelling a stalled worker")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Drain took %s against a 1-minute stall; the deadline did not cut it", elapsed)
	}
	if code := <-done; code != http.StatusServiceUnavailable {
		t.Errorf("stalled sweep's client got %d, want 503", code)
	}
	if got := faults.Stats().ServiceStalls; got != 1 {
		t.Errorf("injected service stalls = %d, want 1", got)
	}
	if got := s.inflight.Load(); got != 0 {
		t.Errorf("inflight = %d after drain, want 0", got)
	}
}
