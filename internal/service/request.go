// Package service is the engine room of the t2simd daemon: it turns the
// repo's one-shot figure sweeps into a robust long-running
// simulation-as-a-service layer. A sweep request names a figure
// experiment, a machine profile and an execution budget; the service
// resolves it against the same internal/bench registry the CLIs use,
// fingerprints the resolved sweep canonically (the simulator is
// deterministic, so equal fingerprints mean byte-identical results),
// serves repeats from a checksummed LRU result cache, coalesces
// concurrent duplicates through a singleflight group, and executes the
// rest on a bounded pool of reusable exp.Scratch arenas behind admission
// control — a bounded queue that sheds with 429/503 + Retry-After instead
// of melting down, per-request deadlines threaded into the engines'
// cooperative cancellation, and a SIGTERM drain that finishes or cancels
// in-flight work within a deadline. See DESIGN.md Sect. 14.
package service

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/chip"
	"repro/internal/exp"
	"repro/internal/machine"
)

// SweepRequest is the wire shape of one sweep submission: which figure
// experiment to run, on which machine profile, and with what execution
// budget. Only the result-relevant fields (figure, scale, machine, the
// engine kind implied by shards, a relaxed epoch width) enter the cache
// fingerprint; jobs, the shard worker count, the timeout and the
// speculate flag are execution budget and never change a result byte, so
// they are deliberately excluded (pinned by the fingerprint property
// tests).
type SweepRequest struct {
	// Figure names an experiment in the figure registry: fig2, fig4, fig5,
	// fig6, fig7 or scaling. Required.
	Figure string `json:"figure"`
	// Scale selects the grid scale: "full" (default) or "small".
	Scale string `json:"scale,omitempty"`
	// Machine names a machine profile; empty means the default (t2).
	Machine string `json:"machine,omitempty"`
	// Jobs caps the sweep-pool worker goroutines for this request; 0 or
	// negative accepts the server's budget. Execution-only.
	Jobs int `json:"jobs,omitempty"`
	// Shards selects the engine: 0 (default) runs the sequential engine,
	// a positive value runs the controller-domain sharded engine with up
	// to that many workers, -1 is sharded with the full per-run budget.
	// The engine kind is result-relevant (the sharded engine's epoch
	// semantics differ slightly from the sequential default); the worker
	// count is not (sharded results are invariant under it).
	Shards int `json:"shards,omitempty"`
	// EpochWidth overrides the sharded engine's epoch width in cycles.
	// 0 derives the conservative bound. A wider value runs relaxed epochs
	// whose results differ and, because every response is a JSON
	// trajectory, requires RelaxedOK — the same gate the CLIs put behind
	// -relaxed-ok.
	EpochWidth int64 `json:"epoch_width,omitempty"`
	RelaxedOK  bool  `json:"relaxed_ok,omitempty"`
	// Speculate runs the sharded engine's optimistic speculative bursts.
	// Requires Shards. Execution-only: results are byte-identical with
	// speculation on or off (the engine's speculation contract), so like
	// Jobs and the worker count it never enters the cache fingerprint — a
	// speculative request may be served a conservative run's cached result
	// and vice versa.
	Speculate bool `json:"speculate,omitempty"`
	// TimeoutMS bounds the request's execution in wall-clock milliseconds;
	// 0 accepts the server's ceiling. Execution-only.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Registry resolves figure experiments from scaled options; it exists so
// tests can substitute synthetic experiments for the real (slow) figure
// sweeps. The default is bench.Figures.
type Registry func(bench.Options) []bench.Figure

// Resolved is a validated, normalized sweep ready to execute: the profile
// and scaled options it runs on, the figure experiment, the canonical
// fingerprint addressing its result, and the execution budget.
type Resolved struct {
	Req     SweepRequest // normalized: defaults filled, width canonicalized
	Profile machine.Profile
	Options bench.Options
	Figure  bench.Figure
	// Key is the canonical content address of this sweep's result: a
	// stable hash over the figure, profile, engine kind, relaxed epoch
	// width and every normalized grid point. See fingerprint.go.
	Key string
	// Jobs is the resolved sweep-pool worker count; Timeout the resolved
	// execution deadline. Both are execution budget, absent from Key.
	Jobs    int
	Timeout time.Duration
}

// Resolve validates and normalizes a request against the figure and
// machine registries and computes its fingerprint. jobs is the server's
// sweep-pool budget (the request can lower it, never raise it);
// maxTimeout is the server's deadline ceiling (likewise). Every error is
// a validation failure — the HTTP layer maps them all to 400.
func Resolve(req SweepRequest, reg Registry, jobs int, maxTimeout time.Duration) (*Resolved, error) {
	if reg == nil {
		reg = bench.Figures
	}
	if req.Figure == "" {
		return nil, fmt.Errorf("service: request names no figure")
	}
	switch req.Scale {
	case "":
		req.Scale = "full"
	case "full", "small":
	default:
		return nil, fmt.Errorf("service: unknown scale %q (want full or small)", req.Scale)
	}
	if req.Machine == "" {
		req.Machine = machine.DefaultName
	}
	prof, err := machine.Get(req.Machine)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}

	var o bench.Options
	if req.Scale == "small" {
		o = bench.Small()
	} else {
		o = bench.Default()
	}
	o = o.WithProfile(prof)

	// Engine selection mirrors the cmd/figures flag validation: shards
	// beyond the profile's controller domains is a misconfiguration, and a
	// relaxed epoch width must be opted into because the response is a
	// JSON trajectory.
	if d := prof.Config.Mapping.Controllers(); req.Shards > d {
		return nil, fmt.Errorf("service: %w: shards %d, machine %s has %d controller domains",
			chip.ErrShardOversubscribed, req.Shards, prof.Name, d)
	}
	if req.Jobs < 0 {
		req.Jobs = 0
	}
	if req.Jobs > 0 && req.Jobs < jobs {
		jobs = req.Jobs
	}
	if jobs < 1 {
		jobs = 1
	}
	o.Shards = exp.ShardBudget(req.Shards, jobs)
	if req.EpochWidth != 0 {
		if req.Shards == 0 {
			return nil, fmt.Errorf("service: epoch_width only applies to the sharded engine; set shards too")
		}
		derived := int64(chip.New(prof.Config).EpochWidth())
		if req.EpochWidth < derived {
			return nil, fmt.Errorf("service: %w: epoch_width %d, machine %s derives %d",
				chip.ErrEpochWidthTooNarrow, req.EpochWidth, prof.Name, derived)
		}
		if req.EpochWidth == derived {
			// Spelling out the conservative bound is the default-filled
			// form of leaving it 0: same results, same fingerprint.
			req.EpochWidth = 0
		} else if !req.RelaxedOK {
			return nil, fmt.Errorf("service: epoch_width %d is relaxed (conservative bound %d): refusing a JSON trajectory without relaxed_ok",
				req.EpochWidth, derived)
		}
	}
	o.EpochWidth = req.EpochWidth
	if req.Speculate && req.Shards == 0 {
		return nil, fmt.Errorf("service: speculate only applies to the sharded engine; set shards too")
	}
	o.Speculate = req.Speculate

	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("service: negative timeout_ms %d", req.TimeoutMS)
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout <= 0 || timeout > maxTimeout {
		timeout = maxTimeout
	}

	var fig *bench.Figure
	figs := reg(o)
	for i := range figs {
		if figs[i].Name == req.Figure {
			fig = &figs[i]
			break
		}
	}
	if fig == nil {
		known := make([]string, len(figs))
		for i, f := range figs {
			known[i] = f.Name
		}
		return nil, fmt.Errorf("service: unknown figure %q (have %v)", req.Figure, known)
	}

	r := &Resolved{
		Req:     req,
		Profile: prof,
		Options: o,
		Figure:  *fig,
		Jobs:    jobs,
		Timeout: timeout,
	}
	r.Key = fingerprint(r)
	return r, nil
}
