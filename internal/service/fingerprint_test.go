package service

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/chip"
	"repro/internal/exp"
	"repro/internal/machine"
)

// resolveBody parses a raw JSON request body (so field order and explicit
// zero values survive to the decoder, exactly as over HTTP) and resolves
// it with the server-side defaults the tests assume.
func resolveBody(t *testing.T, body string) *Resolved {
	t.Helper()
	var req SweepRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	res, err := Resolve(req, nil, 4, time.Minute)
	if err != nil {
		t.Fatalf("resolve %s: %v", body, err)
	}
	return res
}

// TestFingerprintFieldOrderAndDefaultsInvariant: the canonical key must not
// depend on JSON field order, nor on whether optional fields are omitted
// or spelled out with their default values.
func TestFingerprintFieldOrderAndDefaultsInvariant(t *testing.T) {
	bodies := []string{
		`{"figure":"fig2"}`,
		`{"scale":"full","figure":"fig2"}`,
		`{"machine":"t2","figure":"fig2"}`,
		`{"figure":"fig2","scale":"full","machine":"t2","jobs":0,"shards":0,"epoch_width":0,"relaxed_ok":false,"timeout_ms":0}`,
		`{"timeout_ms":0,"relaxed_ok":false,"epoch_width":0,"shards":0,"jobs":0,"machine":"t2","scale":"full","figure":"fig2"}`,
		`{"jobs":0,"figure":"fig2","timeout_ms":0,"machine":"t2","shards":0,"scale":"full"}`,
	}
	want := resolveBody(t, bodies[0]).Key
	for _, b := range bodies[1:] {
		if got := resolveBody(t, b).Key; got != want {
			t.Errorf("fingerprint differs for equivalent request %s:\n got %s\nwant %s", b, got, want)
		}
	}
}

// TestFingerprintExecutionBudgetExcluded: jobs, the shard worker count and
// the timeout never change a result byte, so they must not split the
// cache. The engine *kind* (seq vs sharded) is result-relevant and must.
func TestFingerprintExecutionBudgetExcluded(t *testing.T) {
	seq := resolveBody(t, `{"figure":"fig4"}`).Key
	for _, b := range []string{
		`{"figure":"fig4","jobs":1}`,
		`{"figure":"fig4","jobs":7}`,
		`{"figure":"fig4","timeout_ms":60000}`,
		`{"figure":"fig4","jobs":3,"timeout_ms":1500}`,
	} {
		if got := resolveBody(t, b).Key; got != seq {
			t.Errorf("execution budget leaked into fingerprint: %s -> %s, base %s", b, got, seq)
		}
	}

	sharded := resolveBody(t, `{"figure":"fig4","shards":1}`).Key
	for _, b := range []string{
		`{"figure":"fig4","shards":2}`,
		`{"figure":"fig4","shards":4}`,
		`{"figure":"fig4","shards":-1}`,
		`{"figure":"fig4","shards":1,"jobs":2,"timeout_ms":9000}`,
	} {
		if got := resolveBody(t, b).Key; got != sharded {
			t.Errorf("shard worker count leaked into fingerprint: %s -> %s, base %s", b, got, sharded)
		}
	}

	if seq == sharded {
		t.Errorf("engine kind missing from fingerprint: seq and sharded share key %s", seq)
	}
}

// TestFingerprintSpeculateExcluded: speculation is execution budget — the
// engine commits only bursts that validate as byte-identical to
// conservative execution — so two requests differing only in the
// speculate flag (at any worker count) must share a fingerprint: a
// speculative request may be served a conservative run's cached result
// and vice versa. A speculative request without shards is a validation
// error, mirroring the CLI gate.
func TestFingerprintSpeculateExcluded(t *testing.T) {
	conservative := resolveBody(t, `{"figure":"fig4","shards":2}`).Key
	for _, b := range []string{
		`{"figure":"fig4","shards":2,"speculate":true}`,
		`{"figure":"fig4","shards":4,"speculate":true}`,
		`{"figure":"fig4","shards":-1,"speculate":true,"jobs":2}`,
	} {
		if got := resolveBody(t, b).Key; got != conservative {
			t.Errorf("speculate flag leaked into fingerprint: %s -> %s, base %s", b, got, conservative)
		}
	}

	if _, err := Resolve(SweepRequest{Figure: "fig4", Speculate: true}, nil, 4, time.Minute); err == nil {
		t.Error("speculate without shards resolved; want a validation error")
	}
}

// TestFingerprintDistinguishesResultAxes: anything that changes what is
// simulated — figure, grid scale, machine profile, a placement axis value,
// a relaxed epoch width — must change the key.
func TestFingerprintDistinguishesResultAxes(t *testing.T) {
	base := resolveBody(t, `{"figure":"fig2"}`).Key
	for name, body := range map[string]string{
		"figure":  `{"figure":"fig4"}`,
		"scale":   `{"figure":"fig2","scale":"small"}`,
		"machine": `{"figure":"fig2","machine":"mc8"}`,
	} {
		if got := resolveBody(t, body).Key; got == base {
			t.Errorf("fingerprint ignores %s: %s collides with base", name, body)
		}
	}
}

// TestFingerprintPlacementDistinct: two figures identical except for one
// placement-axis value must not share a key (the placement axis enters
// through the expanded grid points).
func TestFingerprintPlacementDistinct(t *testing.T) {
	regFor := func(placement string) Registry {
		return func(o bench.Options) []bench.Figure {
			return []bench.Figure{{
				Name: "unit",
				Exp: exp.Experiment{
					Name: "unit",
					Grid: exp.Grid{exp.Strs("placement", placement), exp.Ints("n", 64, 128)},
				},
			}}
		}
	}
	req := SweepRequest{Figure: "unit"}
	plain, err := Resolve(req, regFor("plain"), 4, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := Resolve(req, regFor("segmented"), 4, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Key == seg.Key {
		t.Errorf("placement axis value missing from fingerprint: both keys %s", plain.Key)
	}
}

// TestFingerprintEpochWidthNormalization: explicitly requesting the
// machine-derived conservative epoch width is the default-filled spelling
// of leaving it 0 — same results, same key — while a genuinely relaxed
// width is result-relevant and gets its own key.
func TestFingerprintEpochWidthNormalization(t *testing.T) {
	prof, err := machine.Get(machine.DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	derived := int64(chip.New(prof.Config).EpochWidth())

	conservative := resolveBody(t, `{"figure":"fig4","shards":2}`)
	explicit := resolveBody(t, fmt.Sprintf(`{"figure":"fig4","shards":2,"epoch_width":%d}`, derived))
	if explicit.Key != conservative.Key {
		t.Errorf("explicit conservative width %d not folded: key %s vs %s", derived, explicit.Key, conservative.Key)
	}
	if explicit.Req.EpochWidth != 0 {
		t.Errorf("normalized request kept epoch_width %d, want 0", explicit.Req.EpochWidth)
	}

	relaxed := resolveBody(t, fmt.Sprintf(`{"figure":"fig4","shards":2,"epoch_width":%d,"relaxed_ok":true}`, 2*derived))
	if relaxed.Key == conservative.Key {
		t.Errorf("relaxed width shares key with conservative run: %s", relaxed.Key)
	}
	wider := resolveBody(t, fmt.Sprintf(`{"figure":"fig4","shards":2,"epoch_width":%d,"relaxed_ok":true}`, 4*derived))
	if wider.Key == relaxed.Key {
		t.Errorf("distinct relaxed widths share key %s", wider.Key)
	}
}

// TestCanonScalarTypeTags: scalar renderings must be injective across
// kinds (1 vs "1" vs true) but unify the integer kinds, matching the
// typed accessors on exp.Point.
func TestCanonScalarTypeTags(t *testing.T) {
	if canonScalar(1) == canonScalar("1") {
		t.Error("int 1 and string \"1\" alias")
	}
	if canonScalar(1) == canonScalar(1.0) {
		t.Error("int 1 and float 1.0 alias")
	}
	if canonScalar(1) == canonScalar(true) {
		t.Error("int 1 and bool true alias")
	}
	if canonScalar(int(5)) != canonScalar(int64(5)) {
		t.Error("int 5 and int64 5 must share a rendering")
	}
}
