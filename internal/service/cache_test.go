package service

import (
	"bytes"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(100)
	pay := func(b byte) []byte { return bytes.Repeat([]byte{b}, 40) }
	c.Put("a", pay('a'))
	c.Put("b", pay('b'))
	if _, ok := c.Get("a"); !ok { // refresh a: b becomes the LRU victim
		t.Fatal("a missing before eviction")
	}
	c.Put("c", pay('c'))

	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; want LRU victim")
	}
	if got, ok := c.Get("a"); !ok || !bytes.Equal(got, pay('a')) {
		t.Error("a lost or damaged by eviction")
	}
	if got, ok := c.Get("c"); !ok || !bytes.Equal(got, pay('c')) {
		t.Error("c lost or damaged by eviction")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 || s.Bytes != 80 {
		t.Errorf("stats after eviction: %+v, want 1 eviction, 2 entries, 80 bytes", s)
	}
}

func TestCacheOversizePayloadNotCached(t *testing.T) {
	c := NewCache(10)
	c.Put("big", bytes.Repeat([]byte{'x'}, 11))
	if _, ok := c.Get("big"); ok {
		t.Error("payload larger than the whole budget was cached")
	}
}

func TestCachePutCopiesPayload(t *testing.T) {
	c := NewCache(100)
	p := []byte("trajectory")
	c.Put("k", p)
	p[0] = 'X' // caller mutates its slice after Put
	if got, ok := c.Get("k"); !ok || string(got) != "trajectory" {
		t.Errorf("cache shares the caller's backing array: got %q", got)
	}
}

// TestCacheCorruptionRejected: a stored payload whose bytes no longer
// match the recorded checksum must be treated as a miss and dropped — a
// corrupt entry is recomputed, never served. (The faultinject tier drives
// the same contract through the injection hook over HTTP.)
func TestCacheCorruptionRejected(t *testing.T) {
	c := NewCache(100)
	c.Put("k", []byte("pristine"))
	c.items["k"].Value.(*centry).payload[0] ^= 0xFF

	if got, ok := c.Get("k"); ok {
		t.Fatalf("corrupt entry served: %q", got)
	}
	s := c.Stats()
	if s.CorruptionsRejected != 1 {
		t.Errorf("corruptions rejected = %d, want 1", s.CorruptionsRejected)
	}
	if s.Entries != 0 || s.Bytes != 0 {
		t.Errorf("corrupt entry not dropped: %+v", s)
	}
	if _, ok := c.Get("k"); ok {
		t.Error("corrupt entry resurrected on second Get")
	}
}
