package service

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"repro/internal/faults"
)

// Cache is the content-addressed result cache: canonical JSON trajectory
// bytes keyed by sweep fingerprint, bounded by total payload bytes with
// LRU eviction. Every entry carries the SHA-256 of its payload, recorded
// at insertion; Get re-verifies it and treats a mismatch as a miss,
// evicting the entry and counting the rejection — a corrupt entry is
// recomputed, never served (the faultinject tier injects exactly this
// corruption and asserts the contract).
type Cache struct {
	mu    sync.Mutex
	max   int64
	used  int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions, corruptions int64
}

type centry struct {
	key     string
	payload []byte
	sum     [sha256.Size]byte
}

// NewCache returns a cache bounded at maxBytes of payload.
func NewCache(maxBytes int64) *Cache {
	return &Cache{max: maxBytes, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the payload cached under key. The returned slice is owned
// by the cache and must not be mutated. A checksum mismatch counts as a
// corruption rejection and a miss, and drops the entry.
func (c *Cache) Get(key string) ([]byte, bool) { return c.get(key, true) }

// getNoMiss is the executor's post-singleflight re-check: a hit there is
// a real cache serve, but a miss is just the expected state before an
// execution and must not skew the hit rate.
func (c *Cache) getNoMiss(key string) ([]byte, bool) { return c.get(key, false) }

func (c *Cache) get(key string, countMiss bool) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		if countMiss {
			c.misses++
		}
		return nil, false
	}
	e := el.Value.(*centry)
	if sha256.Sum256(e.payload) != e.sum {
		c.corruptions++
		if countMiss {
			c.misses++
		}
		c.removeLocked(el)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return e.payload, true
}

// Put inserts (or refreshes) the payload under key, evicting
// least-recently-used entries until the byte budget holds. The payload is
// copied, so the caller's slice stays pristine — which also means an
// injected cache corruption (faults.CacheCorrupt) damages only the
// cached copy, never the response the leader is about to serve.
// Payloads larger than the whole budget are not cached at all.
func (c *Cache) Put(key string, payload []byte) {
	if int64(len(payload)) > c.max {
		return
	}
	stored := make([]byte, len(payload))
	copy(stored, payload)
	e := &centry{key: key, payload: stored, sum: sha256.Sum256(stored)}
	if faults.CacheCorrupt() {
		e.payload[0] ^= 0xFF // after the sum: Get must now reject it
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.removeLocked(el)
	}
	el := c.ll.PushFront(e)
	c.items[key] = el
	c.used += int64(len(e.payload))
	for c.used > c.max {
		back := c.ll.Back()
		if back == nil || back == el {
			break
		}
		c.evictions++
		c.removeLocked(back)
	}
}

// removeLocked drops an entry; the caller holds the mutex.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*centry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.used -= int64(len(e.payload))
}

// CacheStats is a consistent snapshot of the cache's counters and size.
type CacheStats struct {
	Hits, Misses, Evictions, CorruptionsRejected int64
	Entries                                      int
	Bytes                                        int64
}

// Stats snapshots the cache.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		CorruptionsRejected: c.corruptions,
		Entries:             c.ll.Len(),
		Bytes:               c.used,
	}
}

// HitRate is hits/(hits+misses), 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}
