package service

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics is the server's operational telemetry, exposed at /metrics in
// the plain `name value` text form. Counters are monotonic; gauges are
// sampled at render time. The names are the public contract the
// daemon-smoke and the fault-injection tests assert against.
type metrics struct {
	requests      atomic.Int64 // sweep submissions received
	coalesced     atomic.Int64 // requests served by another request's execution
	executions    atomic.Int64 // sweeps actually executed
	execErrors    atomic.Int64 // executions that returned an error
	shedQueueFull atomic.Int64 // requests shed because the queue was at depth
	shedQueueWait atomic.Int64 // requests shed after aging out of the queue
	shedDraining  atomic.Int64 // requests shed because the server was draining
	requestPanics atomic.Int64 // handler panics converted to 500s
	retries       atomic.Int64 // point retries spent across all sweeps
	pointErrors   atomic.Int64 // points that exhausted their attempt budget
	watchdogTrips atomic.Int64 // sweeps that tripped the epoch-barrier watchdog
	cancelled     atomic.Int64 // sweeps aborted by deadline, client or drain
	drainCancels  atomic.Int64 // in-flight sweeps cancelled by the drain deadline
}

// render writes the full metrics surface: the server's counters, the
// cache's counters and size, and the live queue/in-flight/drain gauges.
func (s *Server) renderMetrics(w io.Writer) {
	cs := s.cache.Stats()
	var lines = []struct {
		name string
		val  any
	}{
		{"t2simd_requests_total", s.m.requests.Load()},
		{"t2simd_cache_hits_total", cs.Hits},
		{"t2simd_cache_misses_total", cs.Misses},
		{"t2simd_cache_hit_rate", fmt.Sprintf("%.4f", cs.HitRate())},
		{"t2simd_cache_entries", cs.Entries},
		{"t2simd_cache_bytes", cs.Bytes},
		{"t2simd_cache_evictions_total", cs.Evictions},
		{"t2simd_cache_corruptions_rejected_total", cs.CorruptionsRejected},
		{"t2simd_coalesced_total", s.m.coalesced.Load()},
		{"t2simd_executions_total", s.m.executions.Load()},
		{"t2simd_exec_errors_total", s.m.execErrors.Load()},
		{"t2simd_shed_queue_full_total", s.m.shedQueueFull.Load()},
		{"t2simd_shed_queue_wait_total", s.m.shedQueueWait.Load()},
		{"t2simd_shed_draining_total", s.m.shedDraining.Load()},
		{"t2simd_request_panics_total", s.m.requestPanics.Load()},
		{"t2simd_retries_total", s.m.retries.Load()},
		{"t2simd_point_errors_total", s.m.pointErrors.Load()},
		{"t2simd_watchdog_trips_total", s.m.watchdogTrips.Load()},
		{"t2simd_cancelled_total", s.m.cancelled.Load()},
		{"t2simd_drain_cancels_total", s.m.drainCancels.Load()},
		{"t2simd_queue_depth", s.waiting.Load()},
		{"t2simd_inflight", s.inflight.Load()},
		{"t2simd_draining", boolGauge(s.draining.Load())},
	}
	for _, l := range lines {
		fmt.Fprintf(w, "%s %v\n", l.name, l.val)
	}
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}
