package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/exp"
)

// fingerprint computes the canonical content address of a resolved sweep.
// The simulator is deterministic — a grid point's result is a pure
// function of (machine profile, program, placement, engine kind, epoch
// width) — so two requests with equal fingerprints are guaranteed
// byte-identical responses, which is what makes the result cache and the
// singleflight group safe rather than merely probabilistic.
//
// What enters the hash, and why:
//
//   - the figure name and every expanded grid point, each rendered
//     canonically (sorted parameter names, type-tagged scalar values) —
//     the program and placement axis;
//   - the resolved machine profile name — the machine axis;
//   - the engine kind ("seq" or "sharded") — the sharded engine's epoch
//     semantics differ slightly from the sequential engine's, so the two
//     may not share cache entries;
//   - the relaxed epoch width when one is armed (the normalized request
//     has already folded "explicitly conservative" into 0) — relaxed
//     results differ by design.
//
// What stays out, and why: the sweep-pool job count, the shard worker
// count, the request deadline and the speculate flag are execution
// budget — the engines' results are invariant under all four (pinned by
// the repo's determinism, shard-invariance and speculative-equivalence
// tests; speculation commits only bursts that validate as byte-identical
// to conservative execution), so hashing them would only split the cache
// and defeat dedup. JSON field order and default-filled
// optional fields never reach the hash at all: requests are parsed into
// a struct and normalized before fingerprinting. All of this is pinned
// by the property tests in fingerprint_test.go.
func fingerprint(r *Resolved) string {
	h := sha256.New()
	fmt.Fprintf(h, "figure=%s\n", r.Figure.Name)
	fmt.Fprintf(h, "machine=%s\n", r.Profile.Name)
	engine := "seq"
	if r.Req.Shards != 0 {
		engine = "sharded"
	}
	fmt.Fprintf(h, "engine=%s\n", engine)
	if r.Req.EpochWidth != 0 {
		fmt.Fprintf(h, "epoch-width=%d\n", r.Req.EpochWidth)
	}
	writePoints(h, r.Figure.Exp.Points())
	return hex.EncodeToString(h.Sum(nil))
}

// writePoints renders the expanded grid canonically: points in grid
// order, parameters sorted by name, scalar values rendered with an
// explicit type tag so 1 (int) and "1" (string) cannot collide.
func writePoints(w io.Writer, pts []exp.Point) {
	names := make([]string, 0, 8)
	for _, p := range pts {
		fmt.Fprintf(w, "p%d:", p.Index)
		names = names[:0]
		for n := range p.Params {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(w, "%s=%s;", n, canonScalar(p.Params[n]))
		}
		io.WriteString(w, "\n")
	}
}

// canonScalar renders one axis value deterministically. The integer kinds
// share a rendering (exp.Point's accessors treat int and int64
// interchangeably, so the hash must too).
func canonScalar(v any) string {
	switch x := v.(type) {
	case int:
		return "i" + strconv.FormatInt(int64(x), 10)
	case int64:
		return "i" + strconv.FormatInt(x, 10)
	case float64:
		return "f" + strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return "s" + strconv.Quote(x)
	case bool:
		return "b" + strconv.FormatBool(x)
	}
	// Axis values are documented to be one of the five kinds above; an
	// unknown kind is a harness bug and must not silently alias.
	return fmt.Sprintf("?%T:%v", v, v)
}
