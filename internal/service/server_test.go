package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/chip"
	"repro/internal/exp"
	"repro/internal/machine"
)

// unitRegistry builds a registry of n synthetic one-point figures
// ("unit0".."unitN-1") sharing one Run closure — distinct fingerprints
// (distinct figure names) backed by identical, test-controlled behavior.
// Distinct figures are what admission tests need: identical requests
// would coalesce in the singleflight group and never reach the queue.
func unitRegistry(n int, run func(chip.Config, exp.Point, *exp.Scratch) (exp.Result, error)) Registry {
	return func(o bench.Options) []bench.Figure {
		figs := make([]bench.Figure, n)
		for i := range figs {
			name := fmt.Sprintf("unit%d", i)
			figs[i] = bench.Figure{
				Name: name,
				Exp: exp.Experiment{
					Name: name,
					Grid: exp.Grid{exp.Ints("k", 1)},
					Run:  run,
				},
			}
		}
		return figs
	}
}

// postSweep drives one request through the handler. A nil ctx means the
// client stays connected for the duration.
func postSweep(h http.Handler, ctx context.Context, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
	if ctx != nil {
		req = req.WithContext(ctx)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeByteIdentityAndCacheHit is the headline contract: the daemon's
// response body for a sweep is byte-identical to the canonical JSON
// trajectory cmd/figures -json writes for the same sweep (both are
// exp.Outcome.JSON of the same resolved experiment), and a repeated
// request is a cache hit serving the very same bytes without re-executing.
func TestServeByteIdentityAndCacheHit(t *testing.T) {
	s := New(Config{Jobs: 2})
	h := s.Handler()

	// The reference trajectory, computed the way cmd/figures does.
	prof, err := machine.Get(machine.DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	o := bench.Small().WithProfile(prof)
	var fig *bench.Figure
	for _, f := range bench.Figures(o) {
		if f.Name == "fig5" {
			fig = &f
			break
		}
	}
	if fig == nil {
		t.Fatal("fig5 missing from registry")
	}
	out, err := exp.Runner{Jobs: 2}.Run(fig.Exp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := out.JSON()
	if err != nil {
		t.Fatal(err)
	}

	body := `{"figure":"fig5","scale":"small"}`
	first := postSweep(h, nil, body)
	if first.Code != http.StatusOK {
		t.Fatalf("first request: %d %s", first.Code, first.Body.String())
	}
	if got := first.Header().Get("X-T2simd-Cache"); got != "miss" {
		t.Errorf("first request cache state %q, want miss", got)
	}
	if !bytes.Equal(first.Body.Bytes(), want) {
		t.Errorf("daemon response differs from cmd/figures trajectory (%d vs %d bytes)",
			first.Body.Len(), len(want))
	}

	second := postSweep(h, nil, body)
	if second.Code != http.StatusOK {
		t.Fatalf("second request: %d %s", second.Code, second.Body.String())
	}
	if got := second.Header().Get("X-T2simd-Cache"); got != "hit" {
		t.Errorf("second request cache state %q, want hit", got)
	}
	if !bytes.Equal(second.Body.Bytes(), first.Body.Bytes()) {
		t.Error("cache hit served different bytes than the original execution")
	}
	if got := s.m.executions.Load(); got != 1 {
		t.Errorf("executions = %d, want 1 (second request must not re-run)", got)
	}
	if first.Header().Get("X-T2simd-Fingerprint") != second.Header().Get("X-T2simd-Fingerprint") {
		t.Error("identical requests reported different fingerprints")
	}
}

// TestSingleflightCoalesces: concurrent identical requests must share one
// execution — the rest ride on the leader's result and every response is
// byte-identical. Run under -race this also proves the coalescing path is
// data-race free.
func TestSingleflightCoalesces(t *testing.T) {
	release := make(chan struct{})
	var runs atomic.Int64
	s := New(Config{
		MaxConcurrent: 2,
		Registry: unitRegistry(1, func(_ chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
			runs.Add(1)
			select {
			case <-release:
			case <-sc.Context().Done():
				return exp.Result{}, sc.Context().Err()
			}
			return exp.Result{Series: "s", X: float64(p.Int("k")), Y: 1}, nil
		}),
	})
	h := s.Handler()

	const clients = 8
	var wg sync.WaitGroup
	codes := make([]int, clients)
	bodies := make([][]byte, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rr := postSweep(h, nil, `{"figure":"unit0"}`)
			codes[i] = rr.Code
			bodies[i] = rr.Body.Bytes()
		}(i)
	}
	// Hold the leader until every client has arrived, so the duplicates
	// demonstrably overlap the execution.
	waitFor(t, "all clients to arrive", func() bool { return s.m.requests.Load() == clients })
	waitFor(t, "leader to start executing", func() bool { return runs.Load() >= 1 })
	close(release)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("client %d received different bytes", i)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("run closure executed %d times, want 1", got)
	}
	if got := s.m.executions.Load(); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}
}

// TestAdmissionShedsQueueFull: with one executor busy and the one queue
// slot taken, the next distinct request must be refused instantly with
// 429 + Retry-After — never silently queued without bound.
func TestAdmissionShedsQueueFull(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{
		MaxConcurrent: 1,
		QueueDepth:    1,
		QueueWait:     time.Minute,
		Registry: unitRegistry(3, func(_ chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
			select {
			case <-release:
			case <-sc.Context().Done():
				return exp.Result{}, sc.Context().Err()
			}
			return exp.Result{Series: "s", X: 1, Y: 1}, nil
		}),
	})
	h := s.Handler()

	results := make(chan *httptest.ResponseRecorder, 2)
	go func() { results <- postSweep(h, nil, `{"figure":"unit0"}`) }()
	waitFor(t, "unit0 to hold the executor", func() bool { return s.inflight.Load() == 1 })
	go func() { results <- postSweep(h, nil, `{"figure":"unit1"}`) }()
	waitFor(t, "unit1 to queue", func() bool { return s.waiting.Load() == 1 })

	shed := postSweep(h, nil, `{"figure":"unit2"}`)
	if shed.Code != http.StatusTooManyRequests {
		t.Fatalf("third request: %d %s, want 429", shed.Code, shed.Body.String())
	}
	if shed.Header().Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	var e map[string]string
	if err := json.Unmarshal(shed.Body.Bytes(), &e); err != nil || e["class"] != "shed" {
		t.Errorf("429 body %s, want class shed", shed.Body.String())
	}
	if got := s.m.shedQueueFull.Load(); got != 1 {
		t.Errorf("shedQueueFull = %d, want 1", got)
	}

	close(release)
	for i := 0; i < 2; i++ {
		rr := <-results
		if rr.Code != http.StatusOK {
			t.Errorf("admitted request finished %d %s, want 200", rr.Code, rr.Body.String())
		}
	}
}

// TestAdmissionShedsQueueWait: a request that ages past the queue-wait
// budget without reaching an executor is shed with 503 + Retry-After.
func TestAdmissionShedsQueueWait(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{
		MaxConcurrent: 1,
		QueueDepth:    4,
		QueueWait:     30 * time.Millisecond,
		Registry: unitRegistry(2, func(_ chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
			select {
			case <-release:
			case <-sc.Context().Done():
				return exp.Result{}, sc.Context().Err()
			}
			return exp.Result{Series: "s", X: 1, Y: 1}, nil
		}),
	})
	h := s.Handler()

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- postSweep(h, nil, `{"figure":"unit0"}`) }()
	waitFor(t, "unit0 to hold the executor", func() bool { return s.inflight.Load() == 1 })

	aged := postSweep(h, nil, `{"figure":"unit1"}`)
	if aged.Code != http.StatusServiceUnavailable {
		t.Fatalf("aged request: %d %s, want 503", aged.Code, aged.Body.String())
	}
	if aged.Header().Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After")
	}
	if got := s.m.shedQueueWait.Load(); got != 1 {
		t.Errorf("shedQueueWait = %d, want 1", got)
	}

	close(release)
	if rr := <-done; rr.Code != http.StatusOK {
		t.Errorf("running request finished %d, want 200", rr.Code)
	}
}

// TestRequestDeadlineMapsTo504: a sweep that cannot finish inside the
// request's own deadline is cancelled cooperatively and reported as 504,
// and nothing is cached.
func TestRequestDeadlineMapsTo504(t *testing.T) {
	s := New(Config{
		Registry: unitRegistry(1, func(_ chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
			<-sc.Context().Done()
			return exp.Result{}, sc.Context().Err()
		}),
	})
	rr := postSweep(s.Handler(), nil, `{"figure":"unit0","timeout_ms":30}`)
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d %s, want 504", rr.Code, rr.Body.String())
	}
	var e map[string]string
	if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e["class"] != "deadline" {
		t.Errorf("body %s, want class deadline", rr.Body.String())
	}
	if got := s.cache.Stats().Entries; got != 0 {
		t.Errorf("cache holds %d entries after a failed sweep, want 0 (never cache partials)", got)
	}
	if got := s.m.cancelled.Load(); got != 1 {
		t.Errorf("cancelled = %d, want 1", got)
	}
}

// TestClientDisconnectGets499AndExecutionSurvives: a client that goes
// away mid-execution gets the 499 class, but the leader's execution is
// detached — it completes, fills the cache, and the next request is a hit
// without any re-execution.
func TestClientDisconnectGets499AndExecutionSurvives(t *testing.T) {
	release := make(chan struct{})
	var runs atomic.Int64
	s := New(Config{
		Registry: unitRegistry(1, func(_ chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
			runs.Add(1)
			select {
			case <-release:
			case <-sc.Context().Done():
				return exp.Result{}, sc.Context().Err()
			}
			return exp.Result{Series: "s", X: 1, Y: 1}, nil
		}),
	})
	h := s.Handler()

	cctx, cancelClient := context.WithCancel(context.Background())
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- postSweep(h, cctx, `{"figure":"unit0"}`) }()
	waitFor(t, "execution to start", func() bool { return runs.Load() == 1 })
	cancelClient()

	rr := <-done
	if rr.Code != statusClientClosedRequest {
		t.Fatalf("disconnected client got %d %s, want 499", rr.Code, rr.Body.String())
	}

	close(release)
	waitFor(t, "detached execution to fill the cache", func() bool {
		return s.cache.Stats().Entries == 1
	})
	after := postSweep(h, nil, `{"figure":"unit0"}`)
	if after.Code != http.StatusOK || after.Header().Get("X-T2simd-Cache") != "hit" {
		t.Errorf("post-disconnect request: %d cache=%q, want 200 hit",
			after.Code, after.Header().Get("X-T2simd-Cache"))
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("run closure executed %d times, want 1 (execution must survive the disconnect, not restart)", got)
	}
}

// TestDrainShedsAndFlipsReadiness: after Drain, readiness reports 503,
// new work is refused with the draining class, and liveness stays 200.
func TestDrainShedsAndFlipsReadiness(t *testing.T) {
	s := New(Config{
		Registry: unitRegistry(2, func(_ chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
			return exp.Result{Series: "s", X: 1, Y: 1}, nil
		}),
	})
	h := s.Handler()

	if rr := postSweep(h, nil, `{"figure":"unit0"}`); rr.Code != http.StatusOK {
		t.Fatalf("pre-drain request: %d", rr.Code)
	}
	if !s.Drain(time.Second) {
		t.Fatal("Drain with no in-flight work reported unclean")
	}

	get := func(path string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
		return rr
	}
	if rr := get("/healthz"); rr.Code != http.StatusOK {
		t.Errorf("healthz while draining: %d, want 200 (liveness is not readiness)", rr.Code)
	}
	if rr := get("/readyz"); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", rr.Code)
	}

	shed := postSweep(h, nil, `{"figure":"unit1"}`)
	if shed.Code != http.StatusServiceUnavailable {
		t.Fatalf("new work while draining: %d, want 503", shed.Code)
	}
	var e map[string]string
	if err := json.Unmarshal(shed.Body.Bytes(), &e); err != nil || e["class"] != "draining" {
		t.Errorf("drain shed body %s, want class draining", shed.Body.String())
	}
	if shed.Header().Get("Retry-After") == "" {
		t.Error("drain shed missing Retry-After")
	}
}

// TestDrainDeadlineCancelsInflight: an in-flight sweep that outlives the
// drain deadline is cancelled cooperatively (through the engines' context
// path), the client gets the draining class, and Drain reports unclean —
// but returns, bounded, instead of hanging on the wedged sweep.
func TestDrainDeadlineCancelsInflight(t *testing.T) {
	s := New(Config{
		Registry: unitRegistry(1, func(_ chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
			<-sc.Context().Done() // wedged until cancelled
			return exp.Result{}, sc.Context().Err()
		}),
	})
	h := s.Handler()

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- postSweep(h, nil, `{"figure":"unit0"}`) }()
	waitFor(t, "sweep to wedge in-flight", func() bool { return s.inflight.Load() == 1 })

	if s.Drain(50 * time.Millisecond) {
		t.Error("Drain reported clean despite cancelling a wedged sweep")
	}
	rr := <-done
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled sweep's client got %d %s, want 503", rr.Code, rr.Body.String())
	}
	var e map[string]string
	if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e["class"] != "draining" {
		t.Errorf("cancelled sweep body %s, want class draining", rr.Body.String())
	}
	if got := s.inflight.Load(); got != 0 {
		t.Errorf("inflight = %d after drain returned, want 0", got)
	}
	if got := s.m.drainCancels.Load(); got != 1 {
		t.Errorf("drainCancels = %d, want 1", got)
	}
	if got := s.cache.Stats().Entries; got != 0 {
		t.Errorf("cache holds %d entries after a cancelled sweep, want 0", got)
	}
}

// TestValidationErrors: every malformed or unsatisfiable request is a 400
// (405 for the wrong method) with the validation class — checked against
// the real figure registry, where resolution is cheap (no simulation).
func TestValidationErrors(t *testing.T) {
	s := New(Config{})
	h := s.Handler()

	cases := []struct {
		name string
		body string
		code int
	}{
		{"bad json", `{"figure":`, http.StatusBadRequest},
		{"unknown field", `{"figure":"fig2","bogus":1}`, http.StatusBadRequest},
		{"no figure", `{}`, http.StatusBadRequest},
		{"unknown figure", `{"figure":"fig99"}`, http.StatusBadRequest},
		{"unknown scale", `{"figure":"fig2","scale":"medium"}`, http.StatusBadRequest},
		{"unknown machine", `{"figure":"fig2","machine":"cray1"}`, http.StatusBadRequest},
		{"oversubscribed shards", `{"figure":"fig2","shards":999}`, http.StatusBadRequest},
		{"epoch width without shards", `{"figure":"fig2","epoch_width":4096}`, http.StatusBadRequest},
		{"too narrow epoch width", `{"figure":"fig2","shards":2,"epoch_width":1}`, http.StatusBadRequest},
		{"relaxed width without opt-in", `{"figure":"fig2","shards":2,"epoch_width":1000000000}`, http.StatusBadRequest},
		{"negative timeout", `{"figure":"fig2","timeout_ms":-5}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rr := postSweep(h, nil, c.body)
			if rr.Code != c.code {
				t.Fatalf("%s: status %d %s, want %d", c.body, rr.Code, rr.Body.String(), c.code)
			}
			var e map[string]string
			if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e["class"] != "validation" {
				t.Errorf("%s: body %s, want class validation", c.body, rr.Body.String())
			}
		})
	}

	t.Run("wrong method", func(t *testing.T) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/sweep", nil))
		if rr.Code != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/sweep: %d, want 405", rr.Code)
		}
	})
	if got := s.m.executions.Load(); got != 0 {
		t.Errorf("validation failures executed %d sweeps, want 0", got)
	}
}

// TestMetricsEndpoint: the metrics surface renders the documented names.
func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{
		Registry: unitRegistry(1, func(_ chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
			return exp.Result{Series: "s", X: 1, Y: 1}, nil
		}),
	})
	h := s.Handler()
	postSweep(h, nil, `{"figure":"unit0"}`)
	postSweep(h, nil, `{"figure":"unit0"}`)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rr.Code)
	}
	out := rr.Body.String()
	for _, want := range []string{
		"t2simd_requests_total 2",
		"t2simd_executions_total 1",
		"t2simd_cache_hits_total 1",
		"t2simd_cache_hit_rate 0.5000",
		"t2simd_queue_depth 0",
		"t2simd_inflight 0",
		"t2simd_draining 0",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}
