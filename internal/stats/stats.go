// Package stats holds the small numerical and reporting toolkit used by
// the figure harnesses: (x, y) series, summary statistics, shape metrics
// (periodicity, sawtooth), CSV and markdown emission, and a plain-text
// plot for terminal inspection of regenerated figures.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one labelled curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Summary describes the distribution of a sample.
type Summary struct {
	N                 int
	Min, Max          float64
	Mean, Std, Median float64
}

// Summarize computes summary statistics of ys. An empty sample returns the
// zero Summary.
func Summarize(ys []float64) Summary {
	if len(ys) == 0 {
		return Summary{}
	}
	s := Summary{N: len(ys), Min: ys[0], Max: ys[0]}
	var sum float64
	for _, y := range ys {
		if y < s.Min {
			s.Min = y
		}
		if y > s.Max {
			s.Max = y
		}
		sum += y
	}
	s.Mean = sum / float64(len(ys))
	var v float64
	for _, y := range ys {
		d := y - s.Mean
		v += d * d
	}
	s.Std = math.Sqrt(v / float64(len(ys)))
	sorted := append([]float64(nil), ys...)
	sort.Float64s(sorted)
	s.Median = sorted[len(sorted)/2]
	return s
}

// Periodicity measures how strongly ys repeats with the given period (in
// sample indices): 1 - mean|y[i]-y[i+p]| / mean|y[i]-mean|. Values near 1
// mean strong periodicity; near or below 0, none. It is the shape metric
// used to verify the "striking periodicity of 64" in Fig. 2.
func Periodicity(ys []float64, period int) float64 {
	if period <= 0 || len(ys) <= period {
		return 0
	}
	sm := Summarize(ys)
	if sm.Std == 0 {
		return 1
	}
	var dev float64
	n := 0
	for i := 0; i+period < len(ys); i++ {
		dev += math.Abs(ys[i] - ys[i+period])
		n++
	}
	dev /= float64(n)
	var spread float64
	for _, y := range ys {
		spread += math.Abs(y - sm.Mean)
	}
	spread /= float64(len(ys))
	if spread == 0 {
		return 1
	}
	return 1 - dev/spread
}

// RelVariation returns (max-min)/mean of a sample, the "jitter" metric for
// sawtooth detection in Figs. 6 and 7. Empty or zero-mean samples return 0.
func RelVariation(ys []float64) float64 {
	s := Summarize(ys)
	if s.Mean == 0 {
		return 0
	}
	return (s.Max - s.Min) / s.Mean
}

// WriteCSV emits the series as one CSV table. All series must share X; the
// header is "x,name1,name2,...". Series of different lengths are emitted up
// to the shortest.
func WriteCSV(w io.Writer, xlabel string, series []Series) error {
	if len(series) == 0 {
		return nil
	}
	n := series[0].Len()
	for _, s := range series[1:] {
		if s.Len() < n {
			n = s.Len()
		}
	}
	header := []string{xlabel}
	for _, s := range series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		row := []string{fmt.Sprintf("%g", series[0].X[i])}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.4f", s.Y[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Plot renders the series as a plain-text scatter plot of the given size.
// It is deliberately crude — just enough to eyeball the regenerated figure
// shapes in a terminal.
func Plot(w io.Writer, title string, series []Series, width, height int) {
	if width < 16 {
		width = 16
	}
	if height < 8 {
		height = 8
	}
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range series {
		for i := range s.X {
			if first {
				xmin, xmax, ymin, ymax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if first {
		fmt.Fprintf(w, "%s: (no data)\n", title)
		return
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := "ox+*#@%&"
	for si, s := range series {
		m := marks[si%len(marks)]
		for i := range s.X {
			c := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			r := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			grid[r][c] = m
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "y: [%.3g, %.3g]\n", ymin, ymax)
	for _, row := range grid {
		fmt.Fprintf(w, "|%s|\n", row)
	}
	fmt.Fprintf(w, "x: [%.4g, %.4g]   ", xmin, xmax)
	for si, s := range series {
		fmt.Fprintf(w, "%c=%s ", marks[si%len(marks)], s.Name)
	}
	fmt.Fprintln(w)
}

// Markdown emits the series as a markdown table (used by EXPERIMENTS.md
// generation).
func Markdown(w io.Writer, xlabel string, series []Series) {
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(w, "| %s |", xlabel)
	for _, s := range series {
		fmt.Fprintf(w, " %s |", s.Name)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "|---|")
	for range series {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	n := series[0].Len()
	for _, s := range series[1:] {
		if s.Len() < n {
			n = s.Len()
		}
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "| %g |", series[0].X[i])
		for _, s := range series {
			fmt.Fprintf(w, " %.2f |", s.Y[i])
		}
		fmt.Fprintln(w)
	}
}
