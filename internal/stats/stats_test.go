package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Errorf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("std %f", s.Std)
	}
	if s.Median != 3 {
		t.Errorf("median %f", s.Median)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary %+v", z)
	}
}

func TestSummarizeBoundsProperty(t *testing.T) {
	f := func(ys []float64) bool {
		for _, y := range ys {
			if math.IsNaN(y) || math.IsInf(y, 0) || math.Abs(y) > 1e100 {
				return true // out of the domain the toolkit is used for
			}
		}
		if len(ys) == 0 {
			return true
		}
		s := Summarize(ys)
		return s.Min <= s.Mean && s.Mean <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeriodicityDetectsPeriod(t *testing.T) {
	var periodic, aperiodic []float64
	for i := 0; i < 128; i++ {
		periodic = append(periodic, float64(i%8))
		aperiodic = append(aperiodic, float64(i%7)+float64(i%11))
	}
	if p := Periodicity(periodic, 8); p < 0.99 {
		t.Errorf("period-8 signal scored %f", p)
	}
	if p := Periodicity(periodic, 5); p > 0.5 {
		t.Errorf("wrong period scored %f", p)
	}
	if p := Periodicity(aperiodic, 8); p > 0.8 {
		t.Errorf("aperiodic signal scored %f at period 8", p)
	}
	if Periodicity(periodic, 0) != 0 {
		t.Error("period 0 must score 0")
	}
}

func TestRelVariation(t *testing.T) {
	if v := RelVariation([]float64{10, 10, 10}); v != 0 {
		t.Errorf("flat variation %f", v)
	}
	if v := RelVariation([]float64{5, 15}); v != 1 {
		t.Errorf("variation %f, want 1", v)
	}
}

func TestSeriesAdd(t *testing.T) {
	var s Series
	s.Add(1, 2)
	s.Add(3, 4)
	if s.Len() != 2 || s.X[1] != 3 || s.Y[1] != 4 {
		t.Errorf("series %+v", s)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, "n", []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Name: "b", X: []float64{1, 2}, Y: []float64{30, 40}},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv %q", buf.String())
	}
	if lines[0] != "n,a,b" {
		t.Errorf("header %q", lines[0])
	}
	if lines[1] != "1,10.0000,30.0000" {
		t.Errorf("row %q", lines[1])
	}
}

func TestPlotRuns(t *testing.T) {
	var buf bytes.Buffer
	Plot(&buf, "demo", []Series{{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}}}, 20, 8)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "o") {
		t.Errorf("plot output %q", out)
	}
	buf.Reset()
	Plot(&buf, "empty", nil, 20, 8)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty plot not flagged")
	}
}

func TestMarkdown(t *testing.T) {
	var buf bytes.Buffer
	Markdown(&buf, "n", []Series{{Name: "a", X: []float64{5}, Y: []float64{1.234}}})
	if !strings.Contains(buf.String(), "| 5 | 1.23 |") {
		t.Errorf("markdown %q", buf.String())
	}
}
