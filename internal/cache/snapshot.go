package cache

import "fmt"

// BankImage is a checkpoint of a contiguous bank range's tag store and
// counters. It is the sharded engine's speculation checkpoint: each shard
// owns a contiguous bank span, and rolling back a failed speculative burst
// must restore exactly that span — tag contents, LRU stamps, per-bank
// clocks, and the per-bank counters — without touching the banks other
// shards own and without allocating on the checkpoint hot path
// (SnapshotBanksInto reuses the image's capacity).
//
// The install-version counters (vers) are deliberately excluded, exactly as
// they are from the full-cache Image: versions are monotonic freshness
// guards, not timing state. After a rollback a version that ran ahead can
// only make a cached miss-probe look stale, forcing a re-probe against the
// restored tags — which returns the identical outcome the checkpointed
// probe would have. Restoring versions backwards, by contrast, could make a
// genuinely stale probe look fresh.
type BankImage struct {
	lo, hi       int // bank range [lo, hi)
	tags, used   []uint64
	valid, dirty []uint64
	ptags        []uint64
	clocks       []uint64
	stats        []Stats
}

func cpWords(dst *[]uint64, src []uint64) {
	if cap(*dst) < len(src) {
		*dst = make([]uint64, len(src))
	}
	*dst = (*dst)[:len(src)]
	copy(*dst, src)
}

// SnapshotBanksInto captures banks [lo, hi) into img, reusing img's
// capacity. The counters are captured alongside the tag store because a
// speculative rollback must rewind both together.
func (c *Banked) SnapshotBanksInto(lo, hi int, img *BankImage) {
	if lo < 0 || hi > c.cfg.Banks || lo >= hi {
		panic(fmt.Sprintf("cache: bank snapshot range [%d,%d) outside %d banks", lo, hi, c.cfg.Banks))
	}
	img.lo, img.hi = lo, hi
	setLo, setHi := lo*c.setsPerBank, hi*c.setsPerBank
	cpWords(&img.tags, c.tags[setLo*c.cfg.Ways:setHi*c.cfg.Ways])
	cpWords(&img.used, c.used[setLo*c.cfg.Ways:setHi*c.cfg.Ways])
	cpWords(&img.valid, c.valid[setLo:setHi])
	cpWords(&img.dirty, c.dirty[setLo:setHi])
	cpWords(&img.ptags, c.ptags[setLo*c.ptagStride:setHi*c.ptagStride])
	cpWords(&img.clocks, c.clocks[lo:hi])
	if cap(img.stats) < hi-lo {
		img.stats = make([]Stats, hi-lo)
	}
	img.stats = img.stats[:hi-lo]
	copy(img.stats, c.bankStats[lo:hi])
}

// RestoreBanks overwrites the image's bank range — tag store, clocks, and
// counters — with the checkpointed contents, leaving every other bank (and
// all install versions) untouched. The cache geometry must match the one
// the image was taken from.
func (c *Banked) RestoreBanks(img *BankImage) {
	lo, hi := img.lo, img.hi
	setLo, setHi := lo*c.setsPerBank, hi*c.setsPerBank
	if hi > c.cfg.Banks || len(img.valid) != setHi-setLo || len(img.tags) != (setHi-setLo)*c.cfg.Ways {
		panic(fmt.Sprintf("cache: restoring bank image [%d,%d) with %d sets into mismatched cache", lo, hi, len(img.valid)))
	}
	copy(c.tags[setLo*c.cfg.Ways:setHi*c.cfg.Ways], img.tags)
	copy(c.used[setLo*c.cfg.Ways:setHi*c.cfg.Ways], img.used)
	copy(c.valid[setLo:setHi], img.valid)
	copy(c.dirty[setLo:setHi], img.dirty)
	copy(c.ptags[setLo*c.ptagStride:setHi*c.ptagStride], img.ptags)
	copy(c.clocks[lo:hi], img.clocks)
	copy(c.bankStats[lo:hi], img.stats)
}
