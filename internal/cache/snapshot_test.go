package cache

import (
	"reflect"
	"testing"

	"repro/internal/phys"
)

// drive pushes a deterministic access mix through the cache — enough
// misses, hits, and dirty evictions to churn tags, LRU stamps, clocks, and
// counters in every bank.
func drive(c *Banked, salt uint64) {
	for i := uint64(0); i < 4096; i++ {
		a := phys.Addr(((i*2654435761 + salt) % (1 << 20)) &^ 63)
		c.Access(a, i%3 == 0)
	}
}

func TestBankSnapshotRestoreRoundTrip(t *testing.T) {
	ctl := New(small(), phys.T2())
	sub := New(small(), phys.T2())
	drive(ctl, 1)
	drive(sub, 1)

	const lo, hi = 2, 5
	var img BankImage
	sub.SnapshotBanksInto(lo, hi, &img)

	// Diverge the subject hard, then roll the range back.
	drive(sub, 99)
	sub.RestoreBanks(&img)

	// Within the restored range every field except vers must match the
	// control; vers is monotonic by design and deliberately not rewound.
	spb := sub.setsPerBank
	w := sub.cfg.Ways
	if !reflect.DeepEqual(sub.tags[lo*spb*w:hi*spb*w], ctl.tags[lo*spb*w:hi*spb*w]) {
		t.Error("tags not restored")
	}
	if !reflect.DeepEqual(sub.used[lo*spb*w:hi*spb*w], ctl.used[lo*spb*w:hi*spb*w]) {
		t.Error("used stamps not restored")
	}
	if !reflect.DeepEqual(sub.valid[lo*spb:hi*spb], ctl.valid[lo*spb:hi*spb]) {
		t.Error("valid masks not restored")
	}
	if !reflect.DeepEqual(sub.dirty[lo*spb:hi*spb], ctl.dirty[lo*spb:hi*spb]) {
		t.Error("dirty masks not restored")
	}
	if !reflect.DeepEqual(sub.ptags[lo*spb*sub.ptagStride:hi*spb*sub.ptagStride], ctl.ptags[lo*spb*ctl.ptagStride:hi*spb*ctl.ptagStride]) {
		t.Error("partial tags not restored")
	}
	if !reflect.DeepEqual(sub.clocks[lo:hi], ctl.clocks[lo:hi]) {
		t.Error("clocks not restored")
	}
	if !reflect.DeepEqual(sub.bankStats[lo:hi], ctl.bankStats[lo:hi]) {
		t.Error("bank stats not restored")
	}

	// A second snapshot into the same image must not reallocate.
	tagsCap, statsCap := cap(img.tags), cap(img.stats)
	sub.SnapshotBanksInto(lo, hi, &img)
	if cap(img.tags) != tagsCap || cap(img.stats) != statsCap {
		t.Error("SnapshotBanksInto reallocated on reuse")
	}
}

// TestBankRestoreLeavesOtherBanksAlone pins the partial-restore contract:
// banks outside the image range keep their post-divergence state.
func TestBankRestoreLeavesOtherBanksAlone(t *testing.T) {
	c := New(small(), phys.T2())
	drive(c, 1)
	var img BankImage
	c.SnapshotBanksInto(0, 1, &img)
	drive(c, 7)
	after := New(small(), phys.T2())
	drive(after, 1)
	drive(after, 7)
	c.RestoreBanks(&img)
	spb := c.setsPerBank
	if !reflect.DeepEqual(c.tags[spb*c.cfg.Ways:], after.tags[spb*c.cfg.Ways:]) {
		t.Error("restore of bank 0 disturbed other banks' tags")
	}
	if !reflect.DeepEqual(c.clocks[1:], after.clocks[1:]) {
		t.Error("restore of bank 0 disturbed other banks' clocks")
	}
	if !reflect.DeepEqual(c.vers, after.vers) {
		t.Error("restore touched install versions; they must stay monotonic")
	}
}
