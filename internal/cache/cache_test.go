package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/phys"
)

func small() Config {
	return Config{SizeBytes: 64 * 1024, Ways: 4, LineSize: 64, Banks: 8}
}

func TestMissThenHit(t *testing.T) {
	c := New(small(), phys.T2())
	if r := c.Access(0x1000, false); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Error("second access missed")
	}
	if r := c.Access(0x1038, false); !r.Hit {
		t.Error("same-line access missed")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestWriteAllocateAndWriteback(t *testing.T) {
	cfg := small()
	c := New(cfg, phys.T2())
	// Fill one set with dirty lines, then overflow it: the LRU victim must
	// come back as a dirty writeback with its reconstructed address.
	setsPerBank := c.SetsPerBank()
	stride := phys.Addr(setsPerBank) * 512 // same bank, same set
	base := phys.Addr(0x40)                // bank 1
	var addrs []phys.Addr
	for i := 0; i <= cfg.Ways; i++ {
		addrs = append(addrs, base+phys.Addr(i)*stride)
	}
	for i := 0; i < cfg.Ways; i++ {
		if r := c.Access(addrs[i], true); r.Hit || r.VictimDirty {
			t.Fatalf("fill %d: unexpected %+v", i, r)
		}
	}
	r := c.Access(addrs[cfg.Ways], true)
	if r.Hit {
		t.Fatal("overflow access hit")
	}
	if !r.VictimDirty {
		t.Fatal("LRU dirty victim not written back")
	}
	if r.Victim != addrs[0] {
		t.Fatalf("victim %#x, want %#x (LRU)", r.Victim, addrs[0])
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks %d", c.Stats().Writebacks)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	cfg := small()
	c := New(cfg, phys.T2())
	setsPerBank := c.SetsPerBank()
	stride := phys.Addr(setsPerBank) * 512
	for i := 0; i <= cfg.Ways; i++ {
		if r := c.Access(phys.Addr(i)*stride, false); r.VictimDirty {
			t.Fatal("clean eviction flagged dirty")
		}
	}
}

func TestLRUTouchOrder(t *testing.T) {
	cfg := small()
	c := New(cfg, phys.T2())
	stride := phys.Addr(c.SetsPerBank()) * 512
	a0 := phys.Addr(0)
	// Fill ways, re-touch a0 so it is MRU, then overflow: victim must not
	// be a0.
	for i := 0; i < cfg.Ways; i++ {
		c.Access(phys.Addr(i)*stride, true)
	}
	c.Access(a0, false)
	r := c.Access(phys.Addr(cfg.Ways)*stride, false)
	if r.VictimDirty && r.Victim == a0 {
		t.Error("LRU evicted the most recently used line")
	}
	if !c.Contains(a0) {
		t.Error("re-touched line evicted")
	}
}

func TestThrashingPowerOfTwoStride(t *testing.T) {
	// The LBM observation: with a stride that maps all streams to the same
	// sets, more streams than ways thrash. Streaming 8 arrays of stride
	// cacheSize apart through a 4-way cache must give ~0% hit rate on
	// revisit.
	cfg := small()
	c := New(cfg, phys.T2())
	for rep := 0; rep < 2; rep++ {
		for s := 0; s < 8; s++ {
			c.Access(phys.Addr(s)*phys.Addr(cfg.SizeBytes), false)
		}
	}
	if hr := c.Stats().HitRate(); hr > 0.01 {
		t.Errorf("thrash hit rate %.2f, want ~0", hr)
	}
}

func TestCapacityProperty(t *testing.T) {
	// A working set that fits fully is hit on every revisit.
	cfg := small()
	f := func(seed uint16) bool {
		c := New(cfg, phys.T2())
		base := phys.Addr(seed) * 4096
		lines := cfg.SizeBytes / cfg.LineSize / 2 // half capacity
		for i := int64(0); i < lines; i++ {
			c.Access(base+phys.Addr(i*64), false)
		}
		for i := int64(0); i < lines; i++ {
			if !c.Contains(base + phys.Addr(i*64)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestVictimReconstruction(t *testing.T) {
	// Every dirty victim address must map to the same set it was evicted
	// from — otherwise writeback traffic would hit wrong controllers.
	cfg := small()
	f := func(raw []uint32) bool {
		c := New(cfg, phys.T2())
		m := phys.T2()
		for _, r := range raw {
			addr := phys.Addr(r) &^ 63
			res := c.Access(addr, true)
			if res.VictimDirty {
				if m.Bank(res.Victim) != m.Bank(addr) {
					// Victim must come from the same bank as the access
					// that evicted it (same set).
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDerivedT2Geometry(t *testing.T) {
	c := New(Derive(4<<20, 16, phys.T2()), phys.T2())
	if c.SetsPerBank() != 512 {
		t.Errorf("T2 L2 sets per bank = %d, want 512", c.SetsPerBank())
	}
}

func TestDerivedGeometryFollowsMapping(t *testing.T) {
	cases := []struct {
		m       phys.Mapping
		perBank int
	}{
		{phys.NewInterleave("t2-1mc", 64, 1, 2), 2048},
		{phys.NewInterleave("mc8", 64, 8, 2), 256},
		{phys.NewInterleave("t2-wide4k", 4096, 4, 2), 512},
	}
	for _, c := range cases {
		b := New(Derive(4<<20, 16, c.m), c.m)
		if b.Config().Banks != c.m.Banks() {
			t.Errorf("%s: derived %d banks, mapping has %d", c.m.Name(), b.Config().Banks, c.m.Banks())
		}
		if b.SetsPerBank() != c.perBank {
			t.Errorf("%s: %d sets per bank, want %d", c.m.Name(), b.SetsPerBank(), c.perBank)
		}
	}
}

// TestWideInterleaveIndexingBijective pins the coarse-interleave tag
// store: distinct lines within one granule (which the default indexing
// would fold together) must stay distinct, and a full sweep over several
// periods must be re-visitable with a 100% hit rate when it fits.
func TestWideInterleaveIndexingBijective(t *testing.T) {
	m := phys.NewInterleave("t2-wide1k", 1024, 4, 2)
	c := New(Derive(64*1024, 4, m), m)
	// 64 kB cache, 1024 lines; touch 512 distinct lines spanning granules.
	const lines = 512
	for i := 0; i < lines; i++ {
		if r := c.Access(phys.Addr(i)*64, false); r.Hit {
			t.Fatalf("cold access %d hit", i)
		}
	}
	for i := 0; i < lines; i++ {
		if !c.Contains(phys.Addr(i) * 64) {
			t.Fatalf("line %d lost — wide indexing is not bijective", i)
		}
	}
	if hr := c.Stats().HitRate(); hr != 0 {
		t.Errorf("hit rate %.2f during cold sweep, want 0", hr)
	}
}

// TestWideInterleaveVictimReconstruction pins reconstruct for the
// excised-field indexing: a dirty victim's rebuilt address must map to the
// bank and set it was evicted from.
func TestWideInterleaveVictimReconstruction(t *testing.T) {
	m := phys.NewInterleave("t2-wide1k", 1024, 4, 2)
	cfg := Derive(64*1024, 4, m)
	c := New(cfg, m)
	probe := func(a phys.Addr) (bank, set int) {
		p := c.ProbeLine(a)
		return p.Bank, int(p.set)
	}
	// Overflow one set with dirty lines; every victim must reconstruct to
	// the evicting set.
	base := phys.Addr(0x400) // bank 1 granule
	b0, s0 := probe(base)
	stride := phys.Addr(c.SetsPerBank()) * phys.Addr(m.Period())
	for i := 0; i <= cfg.Ways+2; i++ {
		a := base + phys.Addr(i)*stride
		res := c.Access(a, true)
		if res.VictimDirty {
			vb, vs := probe(res.Victim)
			if vb != b0 || vs != s0 {
				t.Fatalf("victim %#x reconstructs to bank/set %d/%d, want %d/%d", res.Victim, vb, vs, b0, s0)
			}
		}
	}
	if c.Stats().Writebacks == 0 {
		t.Fatal("overflow produced no writebacks — test exercised nothing")
	}
}

func TestBankStatsAndReset(t *testing.T) {
	c := New(small(), phys.T2())
	c.Access(0x40, false) // bank 1
	bs := c.BankStats()
	if bs[1].Misses != 1 {
		t.Errorf("bank 1 misses %d", bs[1].Misses)
	}
	c.ResetStats()
	if c.Stats().Misses != 0 {
		t.Error("ResetStats did not clear counters")
	}
	if !c.Contains(0x40) {
		t.Error("ResetStats dropped contents")
	}
	c.Reset()
	if c.Contains(0x40) {
		t.Error("Reset kept contents")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched bank count did not panic")
		}
	}()
	New(Config{SizeBytes: 1 << 20, Ways: 4, LineSize: 64, Banks: 4}, phys.T2())
}

// countingMapping wraps the T2 bit layout behind a pure interface (it does
// not implement phys.FieldMapper), counting every Bank call so tests can
// assert how often the cache consults the mapping.
type countingMapping struct {
	bankCalls *int64
}

func (m countingMapping) Controller(a phys.Addr) int { return int(a>>7) & 3 }
func (m countingMapping) Bank(a phys.Addr) int       { *m.bankCalls++; return int(a>>6) & 7 }
func (m countingMapping) Controllers() int           { return 4 }
func (m countingMapping) Banks() int                 { return 8 }
func (m countingMapping) Period() int64              { return 512 }
func (m countingMapping) Name() string               { return "counting" }

// TestOneBankComputationPerAccess pins the single-probe contract: an
// Access (and a ProbeLine+Commit pair) consults the mapping's Bank exactly
// once, never twice. Clean read misses only, so the reconstruct path (which
// legitimately probes candidate banks for hashed mappings) stays out of
// the count.
func TestOneBankComputationPerAccess(t *testing.T) {
	var calls int64
	c := New(small(), countingMapping{bankCalls: &calls})
	const n = 200
	for i := 0; i < n; i++ {
		c.Access(phys.Addr(i)*64, false)
	}
	if calls != n {
		t.Errorf("%d accesses made %d Bank computations, want exactly one each", n, calls)
	}

	calls = 0
	p := c.ProbeLine(0x12340)
	if calls != 1 {
		t.Fatalf("ProbeLine made %d Bank computations, want 1", calls)
	}
	c.Commit(p, false)
	if calls != 1 {
		t.Errorf("ProbeLine+Commit made %d Bank computations, want 1 total", calls)
	}
}

// TestProbeCommitMatchesAccess drives two identical caches with the same
// random access stream, one through Access and one through the split
// ProbeLine/Commit path, and requires identical results and state.
func TestProbeCommitMatchesAccess(t *testing.T) {
	f := func(raw []uint16, writes []bool) bool {
		a := New(small(), phys.T2())
		b := New(small(), phys.T2())
		n := len(raw)
		if len(writes) < n {
			n = len(writes)
		}
		for i := 0; i < n; i++ {
			addr := phys.Addr(raw[i]) * 64
			ra := a.Access(addr, writes[i])
			p := b.ProbeLine(addr)
			if p.Hit != b.Contains(addr) {
				return false
			}
			rb := b.Commit(p, writes[i])
			if ra != rb {
				return false
			}
		}
		return a.Stats() == b.Stats()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAccessPathDoesNotAllocate is the allocation regression for the L2
// hot path: steady-state probes, hits, misses and dirty evictions must all
// be allocation-free.
func TestAccessPathDoesNotAllocate(t *testing.T) {
	c := New(small(), phys.T2())
	// Warm past the compulsory region so the measured loop sees hits,
	// misses and dirty writebacks.
	for i := 0; i < 4096; i++ {
		c.Access(phys.Addr(i)*64, i%3 == 0)
	}
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		addr := phys.Addr(i%6000) * 64
		p := c.ProbeLine(addr)
		c.Commit(p, i%2 == 0)
		i++
	})
	if avg != 0 {
		t.Errorf("access path allocates %.2f allocs/op, want 0", avg)
	}
}
