// Package cache models the T2's shared, banked, write-back L2 cache with
// real tag arrays. Real tags (rather than an analytic hit-rate model) are
// required because two of the paper's observations are capacity/conflict
// effects: the Jacobi solver needs "static,1" scheduling because the 4 MB
// L2 cannot hold one row band per thread when chunks are large
// (Sect. 2.3), and the lattice-Boltzmann kernel collapses when the padded
// domain edge is a multiple of 64 because power-of-two strides thrash the
// sets (Sect. 2.4).
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/phys"
)

// Config describes a banked set-associative cache.
type Config struct {
	SizeBytes int64 // total capacity
	Ways      int   // associativity
	LineSize  int64 // line size in bytes
	Banks     int   // number of banks; must match the mapping's bank count
}

// T2L2 returns the UltraSPARC T2 L2 configuration: 4 MB, 16-way, 64-byte
// lines, 8 banks.
func T2L2() Config {
	return Config{SizeBytes: 4 << 20, Ways: 16, LineSize: phys.LineSize, Banks: 8}
}

// Stats aggregates cache activity counters.
type Stats struct {
	Hits       int64
	Misses     int64
	Writebacks int64 // dirty evictions
}

// HitRate returns hits / (hits+misses), or 0 if there were no accesses.
func (s Stats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Result reports the outcome of a single line access.
type Result struct {
	Hit         bool
	Victim      phys.Addr // line address of the evicted victim, if any
	VictimDirty bool      // victim must be written back
}

type way struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU stamp
}

// Banked is a banked, set-associative, write-allocate, write-back cache
// with LRU replacement. Bank selection is delegated to the machine's
// address mapping so that the cache and the controllers stay consistent.
type Banked struct {
	cfg         Config
	mapping     phys.Mapping
	setsPerBank int
	setShift    uint
	sets        [][]way // [bank*setsPerBank + set][way]
	clock       uint64
	stats       Stats
	bankStats   []Stats
}

// New builds a cache from cfg using mapping for bank selection. It panics
// on geometrically impossible configurations, since every experiment
// depends on the geometry being exactly as configured.
func New(cfg Config, mapping phys.Mapping) *Banked {
	if cfg.Banks != mapping.Banks() {
		panic(fmt.Sprintf("cache: %d banks configured but mapping %q has %d", cfg.Banks, mapping.Name(), mapping.Banks()))
	}
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache: line size %d not a power of two", cfg.LineSize))
	}
	lines := cfg.SizeBytes / cfg.LineSize
	if lines <= 0 || cfg.Ways <= 0 || int64(cfg.Ways) > lines {
		panic(fmt.Sprintf("cache: impossible geometry %+v", cfg))
	}
	setsTotal := lines / int64(cfg.Ways)
	if setsTotal%int64(cfg.Banks) != 0 {
		panic(fmt.Sprintf("cache: %d sets do not divide across %d banks", setsTotal, cfg.Banks))
	}
	perBank := setsTotal / int64(cfg.Banks)
	if perBank&(perBank-1) != 0 {
		panic(fmt.Sprintf("cache: %d sets per bank not a power of two", perBank))
	}
	// The bank is selected by the mapping (bits 8:6 on the T2); the set
	// within a bank is indexed by the address bits immediately above the
	// bank-selection field, i.e. starting at bit 9 on the T2.
	bankBits := bits.Len(uint(cfg.Banks - 1))
	setShift := uint(bits.TrailingZeros64(uint64(cfg.LineSize))) + uint(bankBits)
	c := &Banked{
		cfg:         cfg,
		mapping:     mapping,
		setsPerBank: int(perBank),
		setShift:    setShift,
		sets:        make([][]way, setsTotal),
		bankStats:   make([]Stats, cfg.Banks),
	}
	for i := range c.sets {
		c.sets[i] = make([]way, cfg.Ways)
	}
	return c
}

// Config returns the cache geometry.
func (c *Banked) Config() Config { return c.cfg }

// SetsPerBank returns the number of sets in each bank.
func (c *Banked) SetsPerBank() int { return c.setsPerBank }

func (c *Banked) locate(line phys.Addr) (setIdx int, tag uint64) {
	bank := c.mapping.Bank(line)
	set := (uint64(line) >> c.setShift) & uint64(c.setsPerBank-1)
	tag = uint64(line) >> (c.setShift + uint(bits.Len(uint(c.setsPerBank-1))))
	return bank*c.setsPerBank + int(set), tag
}

// Access performs a write-allocate lookup of the line containing addr.
// On a miss the line is installed (evicting the LRU way) and the caller is
// told whether a dirty victim must be written back to memory. write marks
// the installed/updated line dirty.
func (c *Banked) Access(addr phys.Addr, write bool) Result {
	line := phys.LineOf(addr)
	bank := c.mapping.Bank(line)
	setIdx, tag := c.locate(line)
	set := c.sets[setIdx]
	c.clock++

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].used = c.clock
			if write {
				set[i].dirty = true
			}
			c.stats.Hits++
			c.bankStats[bank].Hits++
			return Result{Hit: true}
		}
	}

	// Miss: pick LRU victim.
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	res := Result{}
	if set[victim].valid && set[victim].dirty {
		res.VictimDirty = true
		res.Victim = c.reconstruct(setIdx, set[victim].tag)
		c.stats.Writebacks++
		c.bankStats[bank].Writebacks++
	}
	set[victim] = way{tag: tag, valid: true, dirty: write, used: c.clock}
	c.stats.Misses++
	c.bankStats[bank].Misses++
	return res
}

// Contains reports whether the line holding addr is currently cached,
// without perturbing LRU state. Intended for tests and analyzers.
func (c *Banked) Contains(addr phys.Addr) bool {
	setIdx, tag := c.locate(phys.LineOf(addr))
	for _, w := range c.sets[setIdx] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// reconstruct rebuilds a victim's line address from its set index and tag.
// It inverts locate: the bank and in-bank set index recover the low fields,
// the tag supplies the high bits.
func (c *Banked) reconstruct(setIdx int, tag uint64) phys.Addr {
	bank := setIdx / c.setsPerBank
	set := uint64(setIdx % c.setsPerBank)
	setBits := uint(bits.Len(uint(c.setsPerBank - 1)))
	addr := tag<<(c.setShift+setBits) | set<<c.setShift
	// Re-insert the bank-selection bits. For the T2 mapping these are the
	// bits immediately above the line offset; for hashed mappings the bank
	// field is not address-recoverable, so we search the bank's aliases.
	lineBits := uint(bits.TrailingZeros64(uint64(c.cfg.LineSize)))
	bankBits := c.setShift - lineBits
	for b := uint64(0); b < 1<<bankBits; b++ {
		cand := phys.Addr(addr | b<<lineBits)
		if c.mapping.Bank(cand) == bank {
			return cand
		}
	}
	// Unreachable for well-formed mappings; return the bankless address so
	// traffic accounting still sees a plausible line.
	return phys.Addr(addr)
}

// Stats returns aggregate counters.
func (c *Banked) Stats() Stats { return c.stats }

// BankStats returns per-bank counters.
func (c *Banked) BankStats() []Stats {
	out := make([]Stats, len(c.bankStats))
	copy(out, c.bankStats)
	return out
}

// ResetStats clears the counters but keeps cache contents — used after
// warm-up phases so reported statistics cover only the timed region.
func (c *Banked) ResetStats() {
	c.stats = Stats{}
	for i := range c.bankStats {
		c.bankStats[i] = Stats{}
	}
}

// Reset invalidates the cache and clears counters.
func (c *Banked) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = way{}
		}
	}
	c.clock = 0
	c.stats = Stats{}
	for i := range c.bankStats {
		c.bankStats[i] = Stats{}
	}
}
