// Package cache models the T2's shared, banked, write-back L2 cache with
// real tag arrays. Real tags (rather than an analytic hit-rate model) are
// required because two of the paper's observations are capacity/conflict
// effects: the Jacobi solver needs "static,1" scheduling because the 4 MB
// L2 cannot hold one row band per thread when chunks are large
// (Sect. 2.3), and the lattice-Boltzmann kernel collapses when the padded
// domain edge is a multiple of 64 because power-of-two strides thrash the
// sets (Sect. 2.4).
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/phys"
)

// Config describes a banked set-associative cache.
type Config struct {
	SizeBytes int64 // total capacity
	Ways      int   // associativity
	LineSize  int64 // line size in bytes
	Banks     int   // number of banks; must match the mapping's bank count
}

// Derive returns the cache geometry for a machine with the given mapping:
// the bank count is the mapping's, so the cache and the controllers agree
// by construction. The machine-profile registry (internal/machine) builds
// every profile's L2 through this instead of a per-chip constant.
func Derive(sizeBytes int64, ways int, mapping phys.Mapping) Config {
	return Config{SizeBytes: sizeBytes, Ways: ways, LineSize: phys.LineSize, Banks: mapping.Banks()}
}

// Stats aggregates cache activity counters.
type Stats struct {
	Hits       int64
	Misses     int64
	Writebacks int64 // dirty evictions
}

// HitRate returns hits / (hits+misses), or 0 if there were no accesses.
func (s Stats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Result reports the outcome of a single line access.
type Result struct {
	Hit         bool
	Victim      phys.Addr // line address of the evicted victim, if any
	VictimDirty bool      // victim must be written back
}

// Banked is a banked, set-associative, write-allocate, write-back cache
// with LRU replacement. Bank selection is delegated to the machine's
// address mapping so that the cache and the controllers stay consistent;
// the mapping is devirtualized at construction time (phys.Resolve), so the
// common bit-field mappings cost no interface call per access.
//
// The tag store is a flat structure-of-arrays layout: a probe scans the
// set's Ways contiguous tags (two cache lines for the 16-way T2 L2)
// instead of striding over per-way records, and per-way valid/dirty flags
// are bitmasks in one word per set. Building a cache is three large
// allocations, not one tiny slice per set.
type Banked struct {
	cfg         Config
	mapping     phys.Mapping
	mapped      phys.Resolved
	setsPerBank int
	setShift    uint
	tagShift    uint
	bankInsert  bool // bank bits sit directly above the line offset
	// Wide-granule indexing: when a field mapping's bank bits sit above
	// the line offset (a coarse interleave, granule > one line), the set
	// and tag are taken from the line index with the bank field excised,
	// so (bank, set, tag) stays bijective with the line address. gBits is
	// the width of the line-within-granule field; wideShift is the bit
	// position just above the bank field.
	wide      bool
	gBits     uint
	wideShift uint
	lineBits  uint
	setBits   uint
	bankShift uint
	tags      []uint64 // [set*Ways + way]
	used      []uint64 // [set*Ways + way] LRU stamps
	valid     []uint64 // per-set way bitmask
	dirty     []uint64 // per-set way bitmask
	// ptags packs one byte of each way's tag per set (ptagStride words per
	// set), so a probe can reject a set in two SWAR comparisons instead of
	// scanning Ways full tags — the common case for streaming kernels,
	// whose demand accesses virtually always miss. A byte match is only a
	// candidate: the full tag and valid bit still decide.
	ptags      []uint64
	ptagStride int
	// vers counts installs (miss commits) per set. A probe of a missing
	// line stays valid exactly as long as its set's install count is
	// unchanged — the guard that lets the chip's NACK-retry loop skip
	// re-probing on every tick.
	vers []uint32
	// clocks are per-bank LRU stamp counters. LRU only ever compares stamps
	// within one set, and a set's commits are a subsequence of its bank's,
	// so per-bank clocks preserve exactly the victim choices a single global
	// clock would make — while giving the sharded engine's bank-partitioned
	// concurrency a clock it can advance without cross-bank traffic. All
	// counters are per-bank for the same reason; Stats sums them.
	clocks    []uint64
	bankStats []Stats
}

// New builds a cache from cfg using mapping for bank selection. It panics
// on geometrically impossible configurations, since every experiment
// depends on the geometry being exactly as configured.
func New(cfg Config, mapping phys.Mapping) *Banked {
	if cfg.Banks != mapping.Banks() {
		panic(fmt.Sprintf("cache: %d banks configured but mapping %q has %d", cfg.Banks, mapping.Name(), mapping.Banks()))
	}
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache: line size %d not a power of two", cfg.LineSize))
	}
	lines := cfg.SizeBytes / cfg.LineSize
	if lines <= 0 || cfg.Ways <= 0 || int64(cfg.Ways) > lines {
		panic(fmt.Sprintf("cache: impossible geometry %+v", cfg))
	}
	if cfg.Ways > 64 {
		panic(fmt.Sprintf("cache: associativity %d exceeds the 64-way limit of the bitmask tag store", cfg.Ways))
	}
	setsTotal := lines / int64(cfg.Ways)
	if setsTotal%int64(cfg.Banks) != 0 {
		panic(fmt.Sprintf("cache: %d sets do not divide across %d banks", setsTotal, cfg.Banks))
	}
	perBank := setsTotal / int64(cfg.Banks)
	if perBank&(perBank-1) != 0 {
		panic(fmt.Sprintf("cache: %d sets per bank not a power of two", perBank))
	}
	// The bank is selected by the mapping (bits 8:6 on the T2); the set
	// within a bank is indexed by the address bits immediately above the
	// bank-selection field, i.e. starting at bit 9 on the T2.
	bankBits := bits.Len(uint(cfg.Banks - 1))
	setShift := uint(bits.TrailingZeros64(uint64(cfg.LineSize))) + uint(bankBits)
	c := &Banked{
		cfg:         cfg,
		mapping:     mapping,
		mapped:      phys.Resolve(mapping),
		setsPerBank: int(perBank),
		setShift:    setShift,
		tagShift:    setShift + uint(bits.Len(uint(perBank-1))),
		tags:        make([]uint64, setsTotal*int64(cfg.Ways)),
		used:        make([]uint64, setsTotal*int64(cfg.Ways)),
		valid:       make([]uint64, setsTotal),
		dirty:       make([]uint64, setsTotal),
		ptagStride:  (cfg.Ways + 7) / 8,
		clocks:      make([]uint64, cfg.Banks),
		bankStats:   make([]Stats, cfg.Banks),
	}
	c.ptags = make([]uint64, setsTotal*int64(c.ptagStride))
	c.vers = make([]uint32, setsTotal)
	c.lineBits = uint(bits.TrailingZeros64(uint64(cfg.LineSize)))
	c.setBits = uint(bits.Len(uint(perBank - 1)))
	if fs, fm, ok := c.mapped.BankField(); ok {
		c.bankShift = uint(fs)
		switch {
		case fs == uint64(c.lineBits) && fm == uint64(cfg.Banks-1):
			c.bankInsert = true
		case fs > uint64(c.lineBits):
			// Coarse interleave: the bank field sits above the line offset.
			// The default scheme would fold all lines of a granule onto one
			// (set, tag), so switch to the excised-field indexing. Requires
			// the declared field to cover the whole global bank index.
			if fm != uint64(cfg.Banks-1) {
				panic(fmt.Sprintf("cache: mapping %q declares a partial bank field (mask %#x for %d banks)", mapping.Name(), fm, cfg.Banks))
			}
			c.wide = true
			c.gBits = uint(fs) - c.lineBits
			c.wideShift = uint(fs) + uint(bankBits)
		}
	}
	return c
}

// Config returns the cache geometry.
func (c *Banked) Config() Config { return c.cfg }

// SetsPerBank returns the number of sets in each bank.
func (c *Banked) SetsPerBank() int { return c.setsPerBank }

// locate computes the bank, global set index and tag of a line with exactly
// one bank computation — the mapping is consulted once per access, through
// the devirtualized handle. Line-granule machines (the T2 and every hashed
// mapping) take the two-shift fast path; coarse interleaves excise the
// bank field from the line index first so distinct lines of one granule
// keep distinct (set, tag) pairs.
func (c *Banked) locate(line phys.Addr) (bank, setIdx int, tag uint64) {
	bank = c.mapped.Bank(line)
	if !c.wide {
		set := (uint64(line) >> c.setShift) & uint64(c.setsPerBank-1)
		return bank, bank*c.setsPerBank + int(set), uint64(line) >> c.tagShift
	}
	idx := uint64(line)>>c.wideShift<<c.gBits | uint64(line)>>c.lineBits&(1<<c.gBits-1)
	set := idx & uint64(c.setsPerBank-1)
	return bank, bank*c.setsPerBank + int(set), idx >> c.setBits
}

// Probe is the outcome of a non-mutating tag lookup: which bank serves the
// line, whether it hit, and where the line lives (or would be installed).
// It lets the chip fold the controller-queue NACK admission check and the
// state-mutating access into a single tag-array scan: ProbeLine once,
// decide, then Commit. A Probe is only valid until the next mutating access
// to the cache.
type Probe struct {
	Hit  bool
	Bank int
	set  int32
	way  int32 // index of the hit way; -1 on a miss
	tag  uint64
}

// SWAR byte-search constants (one bit per byte lane).
const (
	swarLo = 0x0101010101010101
	swarHi = 0x8080808080808080
)

// ProbeLine looks up the line containing addr without changing any cache
// state (no LRU update, no fill, no counters). The packed partial tags
// reject most missing lines in ptagStride word comparisons; only byte-lane
// matches fall through to full tag-and-valid verification.
func (c *Banked) ProbeLine(addr phys.Addr) Probe {
	line := phys.LineOf(addr)
	bank, setIdx, tag := c.locate(line)
	base := setIdx * c.cfg.Ways
	needle := (tag & 0xff) * swarLo
	pbase := setIdx * c.ptagStride
	for w := 0; w < c.ptagStride; w++ {
		x := c.ptags[pbase+w] ^ needle
		m := (x - swarLo) &^ x & swarHi
		for m != 0 {
			i := w*8 + bits.TrailingZeros64(m)/8
			m &= m - 1
			if i >= c.cfg.Ways {
				break
			}
			if c.tags[base+i] == tag && c.valid[setIdx]&(1<<uint(i)) != 0 {
				return Probe{Hit: true, Bank: bank, set: int32(setIdx), way: int32(i), tag: tag}
			}
		}
	}
	return Probe{Bank: bank, set: int32(setIdx), way: -1, tag: tag}
}

// Commit applies the access described by a Probe: on a hit it touches LRU
// and dirtiness; on a miss it installs the line over the LRU victim and
// reports a dirty victim for writeback. The probe must come from the
// immediately preceding ProbeLine with no intervening mutating access.
func (c *Banked) Commit(p Probe, write bool) Result {
	setIdx := int(p.set)
	base := setIdx * c.cfg.Ways
	c.clocks[p.Bank]++
	stamp := c.clocks[p.Bank]
	if p.way >= 0 {
		c.used[base+int(p.way)] = stamp
		if write {
			c.dirty[setIdx] |= 1 << uint(p.way)
		}
		c.bankStats[p.Bank].Hits++
		return Result{Hit: true}
	}

	// Miss: pick the victim with the semantics of the historical scan —
	// the first invalid way at index >= 1 if any (the scan broke there
	// before ever comparing stamps), else way 0 if invalid (its zero stamp
	// beats every valid way's), else the LRU way. The two invalid cases
	// reduce to bit tricks on the valid mask; only a genuinely full set
	// pays the stamp scan.
	vm := c.valid[setIdx]
	used := c.used[base : base+c.cfg.Ways]
	victim := 0
	if inv := ^vm &^ 1 & (1<<uint(c.cfg.Ways) - 1); inv != 0 {
		victim = bits.TrailingZeros64(inv)
	} else if vm&1 != 0 {
		for i := 1; i < c.cfg.Ways; i++ {
			if used[i] < used[victim] {
				victim = i
			}
		}
	}
	res := Result{}
	vbit := uint64(1) << uint(victim)
	if vm&vbit != 0 && c.dirty[setIdx]&vbit != 0 {
		res.VictimDirty = true
		res.Victim = c.reconstruct(setIdx, c.tags[base+victim])
		c.bankStats[p.Bank].Writebacks++
	}
	c.tags[base+victim] = p.tag
	c.vers[setIdx]++
	pw := setIdx*c.ptagStride + victim/8
	sh := uint(victim%8) * 8
	c.ptags[pw] = c.ptags[pw]&^(0xff<<sh) | (p.tag&0xff)<<sh
	c.valid[setIdx] |= vbit
	if write {
		c.dirty[setIdx] |= vbit
	} else {
		c.dirty[setIdx] &^= vbit
	}
	used[victim] = stamp
	c.bankStats[p.Bank].Misses++
	return res
}

// InstallVersion returns the install counter of the probed line's set. A
// miss probe remains exact — same absent line, same bank/set/tag — for as
// long as InstallVersion is unchanged, because only an install could make
// the line appear (evictions of other ways cannot).
func (c *Banked) InstallVersion(p Probe) uint32 { return c.vers[p.set] }

// Access performs a write-allocate lookup of the line containing addr.
// On a miss the line is installed (evicting the LRU way) and the caller is
// told whether a dirty victim must be written back to memory. write marks
// the installed/updated line dirty.
func (c *Banked) Access(addr phys.Addr, write bool) Result {
	return c.Commit(c.ProbeLine(addr), write)
}

// PrefillSequential installs n consecutive lines starting at base, marking
// them dirty if write is set. It is exactly equivalent to calling
// Access(base+i*LineSize, write) for i in [0, n) — provided none of those
// lines is already cached, which makes every lookup a guaranteed miss and
// the hit scan provably dead, so it is skipped. Intended for warm-up
// pre-fill of a freshly built cache, the one caller that satisfies the
// precondition by construction.
func (c *Banked) PrefillSequential(base phys.Addr, n int64, write bool) {
	for i := int64(0); i < n; i++ {
		line := phys.LineOf(base + phys.Addr(i)*phys.LineSize)
		bank, setIdx, tag := c.locate(line)
		c.Commit(Probe{Bank: bank, set: int32(setIdx), way: -1, tag: tag}, write)
	}
}

// Contains reports whether the line holding addr is currently cached,
// without perturbing LRU state. Intended for tests and analyzers.
func (c *Banked) Contains(addr phys.Addr) bool {
	return c.ProbeLine(addr).Hit
}

// reconstruct rebuilds a victim's line address from its set index and tag.
// It inverts locate: the bank and in-bank set index recover the low fields,
// the tag supplies the high bits.
func (c *Banked) reconstruct(setIdx int, tag uint64) phys.Addr {
	bank := setIdx / c.setsPerBank
	set := uint64(setIdx % c.setsPerBank)
	if c.wide {
		// Invert the excised-field indexing: split the set|tag index back
		// into the line-within-granule and above-bank fields, then re-insert
		// the bank field between them.
		idx := tag<<c.setBits | set
		within := idx & (1<<c.gBits - 1)
		above := idx >> c.gBits
		return phys.Addr(above<<c.wideShift | uint64(bank)<<c.bankShift | within<<c.lineBits)
	}
	addr := tag<<(c.setShift+c.setBits) | set<<c.setShift
	// Re-insert the bank-selection bits. For field mappings whose bank bits
	// sit directly above the line offset (the T2), the bank index is the
	// field value itself; for hashed mappings the bank field is not
	// address-recoverable, so we search the bank's aliases.
	if c.bankInsert {
		return phys.Addr(addr | uint64(bank)<<c.lineBits)
	}
	bankBits := c.setShift - c.lineBits
	for b := uint64(0); b < 1<<bankBits; b++ {
		cand := phys.Addr(addr | b<<c.lineBits)
		if c.mapped.Bank(cand) == bank {
			return cand
		}
	}
	// Unreachable for well-formed mappings; return the bankless address so
	// traffic accounting still sees a plausible line.
	return phys.Addr(addr)
}

// Stats returns aggregate counters: the per-bank counters summed in bank
// order, so the aggregate is deterministic however the banks were driven.
func (c *Banked) Stats() Stats {
	var s Stats
	for i := range c.bankStats {
		s.Hits += c.bankStats[i].Hits
		s.Misses += c.bankStats[i].Misses
		s.Writebacks += c.bankStats[i].Writebacks
	}
	return s
}

// BankStatsInto copies the per-bank counters into dst (which must have one
// entry per bank) without allocating — the snapshot path of the chip's
// steady-state fast-forward.
func (c *Banked) BankStatsInto(dst []Stats) {
	copy(dst, c.bankStats)
}

// Image is a snapshot of the tag store (not the counters), used to restore
// a warmed-up cache without replaying the warm-up access sequence.
type Image struct {
	tags, used   []uint64
	valid, dirty []uint64
	ptags        []uint64
	clocks       []uint64
}

// Snapshot captures the current tag-store contents.
func (c *Banked) Snapshot() *Image {
	img := &Image{}
	c.SnapshotInto(img)
	return img
}

// SnapshotInto captures the tag store into img, reusing its buffers when
// they fit — the allocation-free path for repeated checkpoints.
func (c *Banked) SnapshotInto(img *Image) {
	cp := func(dst *[]uint64, src []uint64) {
		if cap(*dst) < len(src) {
			*dst = make([]uint64, len(src))
		}
		*dst = (*dst)[:len(src)]
		copy(*dst, src)
	}
	cp(&img.tags, c.tags)
	cp(&img.used, c.used)
	cp(&img.valid, c.valid)
	cp(&img.dirty, c.dirty)
	cp(&img.ptags, c.ptags)
	cp(&img.clocks, c.clocks)
}

// Restore overwrites the tag store with a snapshot taken from a cache of
// identical geometry and clears the counters, exactly reproducing the
// state Snapshot saw after a ResetStats. It panics on geometry mismatch.
func (c *Banked) Restore(img *Image) {
	if len(img.tags) != len(c.tags) || len(img.valid) != len(c.valid) {
		panic(fmt.Sprintf("cache: restoring %d-line image into %d-line cache", len(img.tags), len(c.tags)))
	}
	copy(c.tags, img.tags)
	copy(c.used, img.used)
	copy(c.valid, img.valid)
	copy(c.dirty, img.dirty)
	copy(c.ptags, img.ptags)
	copy(c.clocks, img.clocks)
	c.ResetStats()
}

// BankStats returns per-bank counters.
func (c *Banked) BankStats() []Stats {
	out := make([]Stats, len(c.bankStats))
	copy(out, c.bankStats)
	return out
}

// SetStats overwrites the per-bank counters (and with them the aggregate,
// which is their sum) — the counterpart of BankStatsInto used when a
// tag-store checkpoint is rolled back and the counters must be re-imposed
// alongside it.
func (c *Banked) SetStats(banks []Stats) {
	copy(c.bankStats, banks)
}

// ResetStats clears the counters but keeps cache contents — used after
// warm-up phases so reported statistics cover only the timed region.
func (c *Banked) ResetStats() {
	for i := range c.bankStats {
		c.bankStats[i] = Stats{}
	}
}

// Reset invalidates the cache and clears counters.
func (c *Banked) Reset() {
	clear(c.tags)
	clear(c.used)
	clear(c.valid)
	clear(c.dirty)
	clear(c.ptags)
	clear(c.vers)
	clear(c.clocks)
	for i := range c.bankStats {
		c.bankStats[i] = Stats{}
	}
}
