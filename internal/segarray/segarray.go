// Package segarray implements the paper's seg_array data structure
// (Sect. 2.2, Fig. 3): an array divided into segments, with four placement
// parameters that control where each segment lands relative to the memory
// controller interleave:
//
//	alignment — the whole allocation is aligned to a power-of-two boundary
//	            (posix_memalign semantics);
//	padding   — each segment is aligned to its own boundary (SegAlign);
//	shift     — segment s is displaced s*Shift bytes past its alignment
//	            boundary (modulo SegAlign), so successive segments are
//	            "shifted versus each other" and address different memory
//	            controllers, as required by the Jacobi experiment;
//	offset    — the whole data block is displaced by a final byte offset.
//
// The package provides both the placement computation (a Layout of
// simulated physical addresses, consumed by the machine model) and a real,
// generic, host-side container with segment iterators, used to reproduce
// the iterator-overhead comparison of Fig. 5 on the host.
package segarray

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/phys"
)

// Params are the placement parameters of Fig. 3.
type Params struct {
	ElemSize int64 // bytes per element (8 for double precision)
	Align    int64 // base alignment; 0 means plain malloc placement
	SegAlign int64 // per-segment alignment; 0 means segments are packed
	Shift    int64 // cumulative per-segment shift in bytes
	Offset   int64 // whole-block offset in bytes
}

// Segment is one placed segment.
type Segment struct {
	Start phys.Addr // address of the segment's first element
	Len   int64     // elements
}

// End returns the first byte past the segment's data.
func (s Segment) End(elemSize int64) phys.Addr {
	return s.Start + phys.Addr(s.Len*elemSize)
}

// Layout is the result of placing a segmented array in an address space.
type Layout struct {
	Params Params
	Base   phys.Addr // allocation base (before Offset is applied)
	Segs   []Segment
	Total  int64 // total elements across segments
	Extent int64 // bytes from Base to the end of the last segment
}

// Plan computes segment placements for the given segment lengths inside
// space. It performs the allocation (advancing the space's break) and
// returns the layout. Segment lengths must be non-negative.
func Plan(space *alloc.Space, p Params, segLens []int64) Layout {
	if p.ElemSize <= 0 {
		panic(fmt.Sprintf("segarray: element size %d", p.ElemSize))
	}
	rel := make([]int64, len(segLens))
	cursor := int64(0)
	var total int64
	for s, n := range segLens {
		if n < 0 {
			panic(fmt.Sprintf("segarray: negative segment length %d", n))
		}
		start := cursor
		if p.SegAlign > 0 {
			start = int64(phys.AlignUp(phys.Addr(start), p.SegAlign))
			start += (int64(s) * p.Shift) % p.SegAlign
		} else {
			start += int64(s) * p.Shift
		}
		rel[s] = start
		cursor = start + n*p.ElemSize
		total += n
	}
	extent := cursor

	var base phys.Addr
	if p.Align > 0 {
		base = space.Memalign(p.Align, extent+p.Offset)
	} else {
		base = space.Malloc(extent + p.Offset)
	}
	l := Layout{Params: p, Base: base, Total: total, Extent: extent + p.Offset}
	l.Segs = make([]Segment, len(segLens))
	for s, n := range segLens {
		l.Segs[s] = Segment{Start: base + phys.Addr(p.Offset+rel[s]), Len: n}
	}
	return l
}

// EqualSegments splits n elements into segs segments using the paper's
// manual schedule: the first n%segs segments get floor(n/segs)+1 elements,
// the rest floor(n/segs).
func EqualSegments(n int64, segs int) []int64 {
	if segs <= 0 {
		panic(fmt.Sprintf("segarray: %d segments", segs))
	}
	q := n / int64(segs)
	r := n % int64(segs)
	out := make([]int64, segs)
	for i := range out {
		out[i] = q
		if int64(i) < r {
			out[i]++
		}
	}
	return out
}

// SegAddr returns the address of element i of segment s.
func (l *Layout) SegAddr(s int, i int64) phys.Addr {
	return l.Segs[s].Start + phys.Addr(i*l.Params.ElemSize)
}

// GlobalAddr returns the address of the i-th element in global order
// (segments concatenated). It is O(#segments); kernels on hot paths should
// iterate per segment instead.
func (l *Layout) GlobalAddr(i int64) phys.Addr {
	for s := range l.Segs {
		if i < l.Segs[s].Len {
			return l.SegAddr(s, i)
		}
		i -= l.Segs[s].Len
	}
	panic(fmt.Sprintf("segarray: global index %d out of range", i))
}

// Overlaps reports whether any two segments overlap — a placement bug.
func (l *Layout) Overlaps() bool {
	for a := range l.Segs {
		for b := a + 1; b < len(l.Segs); b++ {
			sa, sb := l.Segs[a], l.Segs[b]
			if sa.Start < sb.End(l.Params.ElemSize) && sb.Start < sa.End(l.Params.ElemSize) {
				if sa.Len > 0 && sb.Len > 0 {
					return true
				}
			}
		}
	}
	return false
}
