package segarray

import (
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/phys"
)

func TestPlanJacobiPlacement(t *testing.T) {
	// The Sect. 2.3 recipe: rows aligned to 512 bytes, shift 128: row i
	// must start at phase (128*i) mod 512.
	sp := alloc.NewSpace()
	rows := make([]int64, 8)
	for i := range rows {
		rows[i] = 1000
	}
	l := Plan(sp, Params{ElemSize: 8, Align: phys.PageSize, SegAlign: 512, Shift: 128}, rows)
	for i, s := range l.Segs {
		want := phys.Addr(128*i) % 512
		if s.Start%512 != want {
			t.Errorf("row %d phase %d, want %d", i, s.Start%512, want)
		}
	}
	if l.Overlaps() {
		t.Error("rows overlap")
	}
}

func TestPlanOffsetsWholeBlock(t *testing.T) {
	sp := alloc.NewSpace()
	l := Plan(sp, Params{ElemSize: 8, Align: phys.PageSize, Offset: 384}, []int64{100})
	if l.Segs[0].Start%phys.PageSize != 384 {
		t.Errorf("offset segment phase %d, want 384", l.Segs[0].Start%phys.PageSize)
	}
}

func TestPlanPackedWhenUnconfigured(t *testing.T) {
	sp := alloc.NewSpace()
	l := Plan(sp, Params{ElemSize: 8}, []int64{10, 20, 30})
	for i := 1; i < 3; i++ {
		if l.Segs[i].Start != l.Segs[i-1].End(8) {
			t.Errorf("segment %d not packed: %#x after %#x", i, l.Segs[i].Start, l.Segs[i-1].End(8))
		}
	}
}

func TestPlanInvariantsProperty(t *testing.T) {
	f := func(lens8 []uint8, alignE, segAlignE, shiftE uint8) bool {
		if len(lens8) == 0 || len(lens8) > 32 {
			return true
		}
		lens := make([]int64, len(lens8))
		var total int64
		for i, l := range lens8 {
			lens[i] = int64(l)
			total += int64(l)
		}
		p := Params{
			ElemSize: 8,
			Align:    int64(64) << (alignE % 6),
			SegAlign: int64(64) << (segAlignE % 6),
			Shift:    int64(shiftE%8) * 16,
		}
		sp := alloc.NewSpace()
		l := Plan(sp, p, lens)
		if l.Total != total || len(l.Segs) != len(lens) {
			return false
		}
		if l.Overlaps() {
			return false
		}
		// Segments stay in allocation order.
		for i := 1; i < len(l.Segs); i++ {
			if l.Segs[i].Start < l.Segs[i-1].End(8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEqualSegments(t *testing.T) {
	segs := EqualSegments(10, 4)
	want := []int64{3, 3, 2, 2}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("EqualSegments(10,4) = %v", segs)
		}
	}
	var sum int64
	for _, s := range EqualSegments(1<<20+7, 64) {
		sum += s
	}
	if sum != 1<<20+7 {
		t.Errorf("EqualSegments sums to %d", sum)
	}
}

func TestGlobalAddr(t *testing.T) {
	sp := alloc.NewSpace()
	l := Plan(sp, Params{ElemSize: 8, SegAlign: 512}, []int64{5, 5})
	if l.GlobalAddr(4) != l.SegAddr(0, 4) {
		t.Error("global index 4 not in segment 0")
	}
	if l.GlobalAddr(5) != l.SegAddr(1, 0) {
		t.Error("global index 5 not at segment 1 start")
	}
}

func TestArrayHostStorage(t *testing.T) {
	sp := alloc.NewSpace()
	l := Plan(sp, Params{ElemSize: 8, SegAlign: 512, Shift: 128}, []int64{4, 6, 2})
	a := NewArray[float64](l)
	if a.Len() != 12 || a.NumSegments() != 3 {
		t.Fatalf("array shape %d/%d", a.Len(), a.NumSegments())
	}
	a.Fill(1.5)
	*a.At(1, 3) = 42
	if *a.Global(4 + 3) != 42 {
		t.Error("Global and At disagree")
	}
	if a.Segment(1)[3] != 42 {
		t.Error("Segment slice does not alias storage")
	}
}

func TestIteratorVisitsAllInOrder(t *testing.T) {
	sp := alloc.NewSpace()
	l := Plan(sp, Params{ElemSize: 8}, []int64{3, 0, 2, 0, 1})
	a := NewArray[int](l)
	n := 0
	for s := 0; s < a.NumSegments(); s++ {
		for i := range a.Segment(s) {
			a.Segment(s)[i] = n
			n++
		}
	}
	var got []int
	for it := a.Begin(); it.Valid(); it.Next() {
		got = append(got, *it.Value())
	}
	if len(got) != 6 {
		t.Fatalf("iterator visited %d elements, want 6", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("iteration order %v", got)
		}
	}
}

func TestIteratorProperty(t *testing.T) {
	f := func(lens8 []uint8) bool {
		if len(lens8) > 16 {
			return true
		}
		lens := make([]int64, len(lens8))
		var total int64
		for i, l := range lens8 {
			lens[i] = int64(l % 32)
			total += lens[i]
		}
		sp := alloc.NewSpace()
		a := NewArray[int](Plan(sp, Params{ElemSize: 8}, lens))
		count := int64(0)
		for it := a.Begin(); it.Valid(); it.Next() {
			count++
		}
		return count == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
