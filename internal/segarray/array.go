package segarray

import "fmt"

// Array is a host-side segmented container mirroring a Layout: real Go
// storage whose segments expose plain slices for native-speed inner loops
// (the paper's "separate function is called to handle a single segment"),
// plus a general bidirectional-style iterator whose per-step branch is the
// overhead the paper measures in Fig. 5.
type Array[T any] struct {
	layout Layout
	segs   [][]T
	total  int64
}

// NewArray builds host storage for an existing layout. Segment placement
// (padding bytes) is reproduced only logically; the host slices are
// per-segment allocations, which is all the host-side experiments need.
func NewArray[T any](l Layout) *Array[T] {
	a := &Array[T]{layout: l, total: l.Total}
	a.segs = make([][]T, len(l.Segs))
	for i, s := range l.Segs {
		a.segs[i] = make([]T, s.Len)
	}
	return a
}

// Layout returns the placement this array mirrors.
func (a *Array[T]) Layout() *Layout { return &a.layout }

// NumSegments returns the segment count.
func (a *Array[T]) NumSegments() int { return len(a.segs) }

// Segment returns the s-th segment as a plain slice — the fast path.
func (a *Array[T]) Segment(s int) []T { return a.segs[s] }

// Len returns the total element count.
func (a *Array[T]) Len() int64 { return a.total }

// At returns a pointer to element i of segment s.
func (a *Array[T]) At(s int, i int64) *T { return &a.segs[s][i] }

// Global returns a pointer to the i-th element in global order. O(#segs).
func (a *Array[T]) Global(i int64) *T {
	for s := range a.segs {
		if i < int64(len(a.segs[s])) {
			return &a.segs[s][i]
		}
		i -= int64(len(a.segs[s]))
	}
	panic(fmt.Sprintf("segarray: global index %d out of range", i))
}

// Fill sets every element to v.
func (a *Array[T]) Fill(v T) {
	for s := range a.segs {
		seg := a.segs[s]
		for i := range seg {
			seg[i] = v
		}
	}
}

// Iter is the general segmented iterator. Each advance carries the
// segment-boundary branch that the paper's operator++ discussion warns
// about; compare BenchmarkSegIterHost* for the measured cost on a host.
type Iter[T any] struct {
	a   *Array[T]
	seg int
	idx int
}

// Begin returns an iterator at the first element.
func (a *Array[T]) Begin() Iter[T] {
	it := Iter[T]{a: a}
	it.skipEmpty()
	return it
}

func (it *Iter[T]) skipEmpty() {
	for it.seg < len(it.a.segs) && it.idx >= len(it.a.segs[it.seg]) {
		it.seg++
		it.idx = 0
	}
}

// Valid reports whether the iterator points at an element.
func (it *Iter[T]) Valid() bool { return it.seg < len(it.a.segs) }

// Value returns a pointer to the current element.
func (it *Iter[T]) Value() *T { return &it.a.segs[it.seg][it.idx] }

// Next advances to the next element, crossing segment boundaries.
func (it *Iter[T]) Next() {
	it.idx++
	if it.idx >= len(it.a.segs[it.seg]) {
		it.seg++
		it.idx = 0
		it.skipEmpty()
	}
}
