package exp

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/chip"
)

// TestScratchPoolReuse: sweeps running on a shared pool produce
// byte-identical outcomes to fresh-arena sweeps, the pool actually
// recycles arenas across sweeps, and a checked-in arena carries no
// context from the sweep that used it.
func TestScratchPoolReuse(t *testing.T) {
	e := synthetic(nil)
	fresh, err := Runner{Jobs: 2}.Run(e)
	if err != nil {
		t.Fatalf("fresh sweep failed: %v", err)
	}
	want, err := fresh.JSON()
	if err != nil {
		t.Fatal(err)
	}

	pool := NewScratchPool(4)
	r := Runner{Jobs: 2, Pool: pool}
	for sweep := 0; sweep < 3; sweep++ {
		out, err := r.Run(e)
		if err != nil {
			t.Fatalf("pooled sweep %d failed: %v", sweep, err)
		}
		got, err := out.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pooled sweep %d differs from fresh sweep", sweep)
		}
	}
	if idle := pool.Idle(); idle == 0 || idle > 4 {
		t.Fatalf("pool holds %d idle arenas after 3 sweeps, want 1..4", idle)
	}
	sc := pool.Get()
	if sc.Ctx != nil {
		t.Fatal("checked-in arena still carries a sweep context")
	}
	if sc.Context() == nil {
		t.Fatal("Scratch.Context returned nil")
	}
}

// TestScratchPoolArenaStateSurvives: values cached in an arena during one
// sweep are visible to the worker that checks the same arena out for the
// next sweep — that is the whole point of pooling (machines survive across
// requests).
func TestScratchPoolArenaStateSurvives(t *testing.T) {
	pool := NewScratchPool(1)
	type key struct{}
	builds := 0
	e := Experiment{
		Name: "cached",
		Grid: Grid{Ints("x", 0, 1, 2)},
		Run: func(_ chip.Config, p Point, sc *Scratch) (Result, error) {
			sc.Get(key{}, func() any { builds++; return builds })
			return Result{Series: "s", X: float64(p.Int("x")), Y: 1}, nil
		},
	}
	r := Runner{Jobs: 1, Pool: pool}
	for sweep := 0; sweep < 3; sweep++ {
		if _, err := r.Run(e); err != nil {
			t.Fatalf("sweep %d failed: %v", sweep, err)
		}
	}
	if builds != 1 {
		t.Fatalf("cached value built %d times over 3 pooled sweeps, want 1", builds)
	}
}

// TestScratchPoolConcurrentSweeps: concurrent sweeps sharing one pool
// never share an arena (exclusivity is the pool's contract); run under
// -race this is the data-race oracle, and every sweep must still produce
// the byte-identical outcome.
func TestScratchPoolConcurrentSweeps(t *testing.T) {
	e := synthetic(nil)
	want, err := MustRunJSON(e)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewScratchPool(8)
	var wg sync.WaitGroup
	errs := make([]error, 6)
	outs := make([][]byte, 6)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := Runner{Jobs: 2, Pool: pool}.Run(e)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = out.JSON()
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("concurrent sweep %d failed: %v", i, errs[i])
		}
		if !bytes.Equal(outs[i], want) {
			t.Fatalf("concurrent pooled sweep %d differs from reference", i)
		}
	}
	if idle := pool.Idle(); idle > 8 {
		t.Fatalf("pool retains %d idle arenas, bound is 8", idle)
	}
}

// MustRunJSON is a test helper: the canonical JSON of a default-runner
// sweep.
func MustRunJSON(e Experiment) ([]byte, error) {
	out, err := Run(e)
	if err != nil {
		return nil, err
	}
	return out.JSON()
}
