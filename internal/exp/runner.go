package exp

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Runner executes experiments on a pool of Jobs worker goroutines.
// Jobs <= 0 means GOMAXPROCS. Results are always collected in grid order,
// so the worker count never changes the outcome, only the wall time.
type Runner struct {
	Jobs int
}

// pointError records a failed point; Run reports the lowest-indexed one so
// error messages are deterministic too.
type pointError struct {
	index int
	err   error
}

// Run evaluates every kept point of the experiment and returns the
// outcome in deterministic grid order. A panic inside the Run closure is
// captured as an error rather than tearing down the pool. If any points
// fail, the error describes the first one in grid order and the outcome
// is discarded.
func (r Runner) Run(e Experiment) (Outcome, error) {
	if e.Run == nil {
		return Outcome{}, fmt.Errorf("exp: experiment %q has no Run closure", e.Name)
	}
	pts := e.Points()
	jobs := r.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(pts) {
		jobs = len(pts)
	}

	results := make([]Result, len(pts))
	var (
		mu   sync.Mutex
		errs []pointError
	)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := &Scratch{} // per-worker: cached machines/programs are never shared
			for i := range work {
				res, err := runPoint(e, pts[i], sc)
				if err != nil {
					mu.Lock()
					errs = append(errs, pointError{i, err})
					mu.Unlock()
					continue
				}
				results[i] = res
			}
		}()
	}
	for i := range pts {
		work <- i
	}
	close(work)
	wg.Wait()

	if len(errs) > 0 {
		sort.Slice(errs, func(a, b int) bool { return errs[a].index < errs[b].index })
		first := errs[0]
		return Outcome{}, fmt.Errorf("exp: %s: point %d (%s): %w (%d of %d points failed)",
			e.Name, first.index, describe(pts[first.index]), first.err, len(errs), len(pts))
	}

	out := Outcome{Experiment: e.Name, Doc: e.Doc, Machine: e.Machine, Points: make([]PointResult, len(pts))}
	for i, p := range pts {
		out.Points[i] = PointResult{Index: i, Params: p.Params, Result: results[i]}
	}
	return out, nil
}

// runPoint evaluates one point, converting a panic in the closure into an
// error so a bad point cannot kill the whole sweep's worker.
func runPoint(e Experiment, p Point, sc *Scratch) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return e.Run(e.Cfg, p, sc)
}

// describe renders a point's parameters sorted by name, for error text.
func describe(p Point) string {
	names := make([]string, 0, len(p.Params))
	for n := range p.Params {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%v", n, p.Params[n])
	}
	return strings.Join(parts, " ")
}

// ShardBudget resolves the intra-run worker count for the chip's sharded
// engine so sweep-level and run-level parallelism share one core budget
// instead of oversubscribing: with jobs sweep workers each run gets
// max(1, GOMAXPROCS/jobs) goroutines, and an explicit positive request
// caps that further. requested == 0 keeps the sequential engine (returns
// 0); requested < 0 is "auto" (the full per-run budget). The returned
// worker count only ever changes wall-clock time — the sharded engine's
// results are invariant under it — so deriving it from the host's core
// count never leaks into a trajectory.
func ShardBudget(requested, jobs int) int {
	if requested == 0 {
		return 0
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	budget := runtime.GOMAXPROCS(0) / jobs
	if budget < 1 {
		budget = 1
	}
	if requested > 0 && requested < budget {
		budget = requested
	}
	return budget
}

// Run executes the experiment with the default runner (GOMAXPROCS
// workers).
func Run(e Experiment) (Outcome, error) {
	return Runner{}.Run(e)
}

// MustRun executes with the default runner and panics on error. The figure
// harness closures never return errors, so failures here are harness bugs.
func MustRun(e Experiment) Outcome {
	o, err := Run(e)
	if err != nil {
		panic(err)
	}
	return o
}
