package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/chip"
	"repro/internal/faults"
)

// Runner executes experiments on a pool of Jobs worker goroutines.
// Jobs <= 0 means GOMAXPROCS. Results are always collected in grid order,
// so the worker count never changes the outcome, only the wall time.
//
// Retries re-evaluates a failed point up to that many extra times before
// recording it as failed; points are deterministic in their parameters, so
// this only ever recovers environmental faults (an injected fault plan, a
// watchdog trip on a loaded host), never masks a harness bug — a point
// that fails deterministically fails all its attempts identically. Backoff
// is the pause before the first retry, doubling each further attempt.
// Pool, when set, supplies the workers' Scratch arenas from a shared
// bounded free list instead of building one per worker per sweep, so a
// long-running caller (the t2simd service) reuses cached machines across
// sweeps. Nil keeps the one-shot behavior.
type Runner struct {
	Jobs    int
	Retries int
	Backoff time.Duration
	Pool    *ScratchPool
}

// PointError is one point's terminal failure: which experiment and point,
// the parameters that select it, how many attempts were spent, and — when
// the closure panicked rather than returning an error — the recovered
// panic value with the goroutine stack captured at recovery. The worker
// that caught it keeps serving the remaining points.
type PointError struct {
	Experiment string
	Index      int
	Params     map[string]any
	Attempts   int
	Err        error
	PanicValue any
	Stack      []byte
}

func (e *PointError) Error() string {
	return fmt.Sprintf("exp: %s: point %d (%s): %v", e.Experiment, e.Index, describeParams(e.Params), e.Err)
}

func (e *PointError) Unwrap() error { return e.Err }

// Run evaluates every kept point of the experiment and returns the
// outcome in deterministic grid order. A panic inside the Run closure is
// captured as a PointError rather than tearing down the pool. If any
// points fail their attempt budget, the returned error wraps the
// lowest-indexed PointError (so error messages are deterministic) and the
// outcome holds only the points that succeeded.
func (r Runner) Run(e Experiment) (Outcome, error) {
	return r.RunContext(context.Background(), e)
}

// RunContext is Run under a context: the context is exposed to every
// point's closure via Scratch.Context, unstarted points are abandoned the
// moment it is cancelled, and the partial outcome — the points that
// completed before the abort, at their original indices — is returned
// with an error wrapping the cancellation cause. A background context
// adds nothing to the fault-free path.
func (r Runner) RunContext(ctx context.Context, e Experiment) (Outcome, error) {
	if e.Run == nil {
		return Outcome{}, fmt.Errorf("exp: experiment %q has no Run closure", e.Name)
	}
	pts := e.Points()
	jobs := r.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(pts) {
		jobs = len(pts)
	}

	results := make([]Result, len(pts))
	done := make([]bool, len(pts))
	var (
		mu      sync.Mutex
		errs    []*PointError
		retries int64
	)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker arena: cached machines/programs are never shared
			// between concurrent workers. With a pool the arena is checked
			// out for this sweep only and returned (context cleared) after.
			sc := &Scratch{}
			if r.Pool != nil {
				sc = r.Pool.Get()
				defer r.Pool.Put(sc)
			}
			sc.Ctx = ctx
			for i := range work {
				if ctx.Err() != nil {
					continue // drain without evaluating
				}
				res, used, perr := r.runPoint(ctx, e, pts[i], sc)
				mu.Lock()
				retries += int64(used)
				if perr != nil {
					errs = append(errs, perr)
				} else {
					results[i], done[i] = res, true
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := range pts {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()

	out := Outcome{Experiment: e.Name, Doc: e.Doc, Machine: e.Machine, Retries: retries}
	for i, p := range pts {
		if done[i] {
			out.Points = append(out.Points, PointResult{Index: i, Params: p.Params, Result: results[i]})
		}
	}
	out.PointErrors = int64(len(errs))
	for _, pe := range errs {
		var we *chip.WatchdogError
		if errors.As(pe.Err, &we) {
			out.WatchdogTrips++
		}
	}
	if err := ctx.Err(); err != nil {
		out.Cancelled = true
		out.noteCancelLatency(errs)
		return out, fmt.Errorf("exp: %s: cancelled after %d of %d points: %w",
			e.Name, len(out.Points), len(pts), cause(ctx))
	}
	if len(errs) > 0 {
		out.noteCancelLatency(errs)
		sort.Slice(errs, func(a, b int) bool { return errs[a].Index < errs[b].Index })
		return out, fmt.Errorf("%w (%d of %d points failed)", errs[0], len(errs), len(pts))
	}
	return out, nil
}

// runPoint evaluates one point through the runner's attempt budget,
// backing off (doubling) between attempts. It returns the result, the
// number of retries spent (attempts beyond the first, counted even when
// the point eventually succeeds), and the terminal PointError if the
// budget is exhausted. Cancellation is never retried: once the context is
// done, waiting and re-running can only waste the abort.
func (r Runner) runPoint(ctx context.Context, e Experiment, p Point, sc *Scratch) (Result, int, *PointError) {
	backoff := r.Backoff
	var pe *PointError
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if backoff > 0 {
				select {
				case <-time.After(backoff):
				case <-ctx.Done():
					return Result{}, attempt - 1, pe
				}
				backoff *= 2
			}
			if ctx.Err() != nil {
				return Result{}, attempt - 1, pe
			}
		}
		res, err, pv, stack := attemptPoint(e, p, sc, attempt)
		if err == nil {
			return res, attempt, nil
		}
		pe = &PointError{Experiment: e.Name, Index: p.Index, Params: p.Params,
			Attempts: attempt + 1, Err: err, PanicValue: pv, Stack: stack}
		var ce *chip.CancelError
		if errors.As(err, &ce) || ctx.Err() != nil || attempt >= r.Retries {
			return Result{}, attempt, pe
		}
	}
}

// attemptPoint evaluates one point once, converting a panic in the closure
// into an error so a bad point cannot kill the whole sweep's worker. The
// faults hook runs first so an armed plan can panic or fail the attempt at
// the exact same recovery boundary a real fault would hit.
func attemptPoint(e Experiment, p Point, sc *Scratch, attempt int) (res Result, err error, panicVal any, stack []byte) {
	defer func() {
		if r := recover(); r != nil {
			panicVal = r
			stack = debug.Stack()
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if err := faults.PointFault(p.Index, attempt); err != nil {
		return Result{}, err, nil, nil
	}
	res, err = e.Run(e.Cfg, p, sc)
	return res, err, nil, nil
}

// cause unwraps the context's cancellation cause, falling back to its
// plain error.
func cause(ctx context.Context) error {
	if c := context.Cause(ctx); c != nil {
		return c
	}
	return ctx.Err()
}

// noteCancelLatency records the largest observed cancel→halt latency among
// the failed points' CancelErrors — the sweep-level answer to "how fast do
// runs actually stop when told to".
func (o *Outcome) noteCancelLatency(errs []*PointError) {
	for _, pe := range errs {
		var ce *chip.CancelError
		if errors.As(pe.Err, &ce) {
			if ms := float64(ce.Latency) / float64(time.Millisecond); ms > o.CancelLatencyMS {
				o.CancelLatencyMS = ms
			}
		}
	}
}

// describeParams renders a point's parameters sorted by name, for error
// text.
func describeParams(params map[string]any) string {
	names := make([]string, 0, len(params))
	for n := range params {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%v", n, params[n])
	}
	return strings.Join(parts, " ")
}

// ShardBudget resolves the intra-run worker count for the chip's sharded
// engine so sweep-level and run-level parallelism share one core budget
// instead of oversubscribing: with jobs sweep workers each run gets
// max(1, GOMAXPROCS/jobs) goroutines, and an explicit positive request
// caps that further. requested == 0 keeps the sequential engine (returns
// 0); requested < 0 is "auto" (the full per-run budget). The returned
// worker count only ever changes wall-clock time — the sharded engine's
// results are invariant under it — so deriving it from the host's core
// count never leaks into a trajectory.
func ShardBudget(requested, jobs int) int {
	if requested == 0 {
		return 0
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	budget := runtime.GOMAXPROCS(0) / jobs
	if budget < 1 {
		budget = 1
	}
	if requested > 0 && requested < budget {
		budget = requested
	}
	return budget
}

// Run executes the experiment with the default runner (GOMAXPROCS
// workers).
func Run(e Experiment) (Outcome, error) {
	return Runner{}.Run(e)
}

// MustRun executes with the default runner and panics on error. The figure
// harness closures never return errors, so failures here are harness bugs.
func MustRun(e Experiment) Outcome {
	o, err := Run(e)
	if err != nil {
		panic(err)
	}
	return o
}
