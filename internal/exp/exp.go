// Package exp is the declarative parallel experiment engine behind every
// figure harness and CLI sweep: an Experiment names a parameter grid and a
// Run closure mapping one grid point to one measured Result; the Runner
// fans the points out across a worker pool and collects the results in
// deterministic grid order, so jobs=1 and jobs=N produce byte-identical
// output. Outcomes convert to stats.Series for the existing CSV/plot
// pipeline and marshal to canonical JSON for machine-readable trajectories
// (BENCH_*.json).
package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/chip"
	"repro/internal/stats"
)

// Axis is one named dimension of a parameter grid. Values may be int,
// int64, float64, string or bool; the typed accessors on Point convert
// between the integer kinds.
type Axis struct {
	Name   string
	Values []any
}

// Ints builds an int-valued axis.
func Ints(name string, vs ...int) Axis {
	a := Axis{Name: name}
	for _, v := range vs {
		a.Values = append(a.Values, v)
	}
	return a
}

// Int64s builds an int64-valued axis.
func Int64s(name string, vs ...int64) Axis {
	a := Axis{Name: name}
	for _, v := range vs {
		a.Values = append(a.Values, v)
	}
	return a
}

// Strs builds a string-valued axis.
func Strs(name string, vs ...string) Axis {
	a := Axis{Name: name}
	for _, v := range vs {
		a.Values = append(a.Values, v)
	}
	return a
}

// Span64 builds an int64 axis covering start, start+step, ... up to but
// not including stop.
func Span64(name string, start, stop, step int64) Axis {
	if step <= 0 {
		panic(fmt.Sprintf("exp: non-positive step %d for axis %q", step, name))
	}
	a := Axis{Name: name}
	for v := start; v < stop; v += step {
		a.Values = append(a.Values, v)
	}
	return a
}

// Grid is an ordered set of axes; its cross product is the sweep, expanded
// row-major with the first axis outermost.
type Grid []Axis

// Size returns the number of points in the full cross product.
func (g Grid) Size() int {
	n := 1
	for _, a := range g {
		n *= len(a.Values)
	}
	return n
}

// Point is one cell of an expanded grid. Index is the point's dense
// position among the kept points, which is also its position in
// Outcome.Points.
type Point struct {
	Index  int
	Params map[string]any
}

// get panics with a clear message when an axis name is missing — that is a
// harness bug, not a data condition.
func (p Point) get(name string) any {
	v, ok := p.Params[name]
	if !ok {
		panic(fmt.Sprintf("exp: point has no axis %q", name))
	}
	return v
}

// Int returns the named parameter as an int (accepting int or int64).
func (p Point) Int(name string) int {
	switch v := p.get(name).(type) {
	case int:
		return v
	case int64:
		return int(v)
	}
	panic(fmt.Sprintf("exp: axis %q is %T, not an integer", name, p.get(name)))
}

// Int64 returns the named parameter as an int64 (accepting int or int64).
func (p Point) Int64(name string) int64 {
	switch v := p.get(name).(type) {
	case int:
		return int64(v)
	case int64:
		return v
	}
	panic(fmt.Sprintf("exp: axis %q is %T, not an integer", name, p.get(name)))
}

// Float returns the named parameter as a float64 (accepting the integer
// kinds too).
func (p Point) Float(name string) float64 {
	switch v := p.get(name).(type) {
	case float64:
		return v
	case int:
		return float64(v)
	case int64:
		return float64(v)
	}
	panic(fmt.Sprintf("exp: axis %q is %T, not numeric", name, p.get(name)))
}

// Str returns the named parameter as a string.
func (p Point) Str(name string) string {
	if v, ok := p.get(name).(string); ok {
		return v
	}
	panic(fmt.Sprintf("exp: axis %q is %T, not a string", name, p.get(name)))
}

// Expand returns every point of the cross product in deterministic
// row-major order (first axis outermost), keeping only points accepted by
// keep (nil keeps all). Indices are dense over the kept points.
func (g Grid) Expand(keep func(Point) bool) []Point {
	if len(g) == 0 {
		return nil
	}
	pts := make([]Point, 0, g.Size())
	idx := make([]int, len(g))
	for {
		params := make(map[string]any, len(g))
		for ai, a := range g {
			params[a.Name] = a.Values[idx[ai]]
		}
		p := Point{Index: len(pts), Params: params}
		if keep == nil || keep(p) {
			pts = append(pts, p)
		}
		// Odometer increment, last axis fastest.
		ai := len(g) - 1
		for ; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(g[ai].Values) {
				break
			}
			idx[ai] = 0
		}
		if ai < 0 {
			return pts
		}
	}
}

// Result is the measurement at one grid point: a curve label, an (x, y)
// coordinate on that curve, and optional named extra metrics.
type Result struct {
	Series  string             `json:"series"`
	X       float64            `json:"x"`
	Y       float64            `json:"y"`
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// Telemetry: aggregate simulation counters for the point, deliberately
	// excluded from JSON so BENCH_*.json trajectories stay byte-stable.
	// The benchmark harness divides their sweep totals by wallclock to
	// report hardware-portable throughput (simulated cycles per second,
	// simulated accesses per second). FFItems/FFCycles record how much of
	// the point was covered by the chip's steady-state fast-forward — a
	// how-it-was-computed stamp that must never change what was computed,
	// which is why it too stays out of the trajectories.
	Cycles          int64 `json:"-"`
	Accesses        int64 `json:"-"`
	FFItems         int64 `json:"-"`
	FFCycles        int64 `json:"-"`
	FFJumps         int64 `json:"-"`
	FFSkippedEpochs int64 `json:"-"`
	// Sharded-engine telemetry (the matching chip.Result fields): how the
	// run was partitioned, the epoch width it actually used, how many
	// synchronization rounds and micro-epochs it executed, and how busy the
	// shards were. Deterministic descriptions of the computation, excluded
	// from JSON like the rest of the telemetry.
	Shards          int64 `json:"-"`
	EpochWidth      int64 `json:"-"`
	Epochs          int64 `json:"-"` // synchronization rounds (merges, or batched rounds)
	BatchedEpochs   int64 `json:"-"` // micro-epochs executed (== Epochs without batching)
	BarrierStalls   int64 `json:"-"`
	BusyShardRounds int64 `json:"-"` // (shard, round) pairs that executed at least one event
	SpecEpochs      int64 `json:"-"` // micro-epochs executed inside committed speculative bursts
	SpecCommits     int64 `json:"-"` // speculative bursts that validated and committed
	SpecRollbacks   int64 `json:"-"` // speculative bursts rolled back and re-executed
}

// Scratch is a per-worker reuse arena. Every point a worker evaluates
// receives the same Scratch, so expensive point-invariant state — a
// chip.Machine with its tag arrays and event wheel, a recycled
// trace.Program — is built once per worker instead of once per point.
// Workers never share a Scratch, so cached values need no locking; and
// because cached state must never leak one point's results into another,
// anything stored here must be reset-on-reuse by construction (a
// chip.Machine) or rebuilt field-by-field per point (kernels.ProgramInto).
// The jobs=1-vs-N determinism tests hold that bargain in place.
type Scratch struct {
	vals map[any]any

	// Ctx is the sweep's context, set by the runner so point closures can
	// thread cancellation into chip.Machine.RunCtx/RunShardedCtx. Closures
	// should read it through Context, which never returns nil.
	Ctx context.Context
}

// Context returns the sweep's context, or context.Background for a
// Scratch built outside a runner (tests, bespoke harness loops).
func (s *Scratch) Context() context.Context {
	if s.Ctx == nil {
		return context.Background()
	}
	return s.Ctx
}

// Get returns the value cached under key, building and caching it on first
// use. Keys follow the context.Context convention: define an unexported
// key type per cached thing so packages cannot collide.
func (s *Scratch) Get(key any, build func() any) any {
	if s.vals == nil {
		s.vals = map[any]any{}
	}
	if v, ok := s.vals[key]; ok {
		return v
	}
	v := build()
	s.vals[key] = v
	return v
}

// Experiment is a declarative sweep: a parameter grid, an optional keep
// predicate pruning the cross product, and a Run closure evaluating one
// point on the given machine configuration. Run must be safe to call from
// multiple goroutines (per-run state lives in the worker's Scratch or the
// call frame) and must be deterministic in the point alone.
type Experiment struct {
	Name string
	Doc  string
	// Machine names the machine profile the sweep runs on; it is stamped
	// into the outcome's JSON so BENCH trajectories record which machine
	// produced them. Empty means the default (t2) machine and is omitted
	// from the JSON, keeping historical trajectories byte-stable.
	Machine string
	Cfg     chip.Config
	Grid    Grid
	Keep    func(Point) bool
	Run     func(chip.Config, Point, *Scratch) (Result, error)
}

// Points expands the experiment's grid through its keep predicate.
func (e Experiment) Points() []Point {
	return e.Grid.Expand(e.Keep)
}

// PointResult pairs a point's parameters with its measured result.
type PointResult struct {
	Index  int            `json:"index"`
	Params map[string]any `json:"params"`
	Result Result         `json:"result"`
}

// Outcome is a completed sweep in deterministic point order.
type Outcome struct {
	Experiment string        `json:"experiment"`
	Doc        string        `json:"doc,omitempty"`
	Machine    string        `json:"machine,omitempty"`
	Points     []PointResult `json:"points"`

	// Robustness telemetry, excluded from JSON like the per-point counters:
	// on a fault-free run every field is zero, so BENCH_*.json trajectories
	// stay byte-stable. Retries counts attempts beyond each point's first
	// (including retries that recovered); PointErrors counts points that
	// exhausted their attempt budget; WatchdogTrips counts point failures
	// carrying a chip.WatchdogError; CancelLatencyMS is the largest
	// observed cancel→halt latency among aborted points; Cancelled marks a
	// sweep cut short by its context, in which case Points holds only the
	// points that completed (at their original indices).
	Retries         int64   `json:"-"`
	PointErrors     int64   `json:"-"`
	WatchdogTrips   int64   `json:"-"`
	CancelLatencyMS float64 `json:"-"`
	Cancelled       bool    `json:"-"`
}

// Series groups the outcome's points into labelled curves, ordered by
// first appearance in grid order — exactly the series layout the bespoke
// harness loops used to build.
func (o Outcome) Series() []stats.Series {
	var out []stats.Series
	pos := map[string]int{}
	for _, pr := range o.Points {
		i, ok := pos[pr.Result.Series]
		if !ok {
			i = len(out)
			pos[pr.Result.Series] = i
			out = append(out, stats.Series{Name: pr.Result.Series})
		}
		out[i].Add(pr.Result.X, pr.Result.Y)
	}
	return out
}

// Totals sums the non-serialized telemetry over every point: simulated
// cycles and simulated line accesses. Zero for outcomes whose experiments
// do not populate telemetry.
func (o Outcome) Totals() (cycles, accesses int64) {
	for _, pr := range o.Points {
		cycles += pr.Result.Cycles
		accesses += pr.Result.Accesses
	}
	return cycles, accesses
}

// FastForwardTotals sums the fast-forward telemetry over every point: how
// many work items and simulated cycles were covered analytically instead
// of event by event.
func (o Outcome) FastForwardTotals() (items, cycles int64) {
	for _, pr := range o.Points {
		items += pr.Result.FFItems
		cycles += pr.Result.FFCycles
	}
	return items, cycles
}

// FastForwardJumpTotals sums the jump telemetry over every point: how many
// analytic jumps committed and how many engine event steps they covered.
func (o Outcome) FastForwardJumpTotals() (jumps, skipped int64) {
	for _, pr := range o.Points {
		jumps += pr.Result.FFJumps
		skipped += pr.Result.FFSkippedEpochs
	}
	return jumps, skipped
}

// ShardTotals aggregates the sharded-engine telemetry over a sweep.
// Shards and Width are the maximum domain count and epoch width seen (0
// when every point ran sequentially) — ground truth from the engine, not a
// mirror of its derivation; the counters are sums over all points.
type ShardTotals struct {
	Shards        int64 // max controller domains over the points
	Width         int64 // max epoch width over the points
	Epochs        int64 // synchronization rounds executed
	BatchedEpochs int64 // micro-epochs executed
	Stalls        int64 // (shard, micro-epoch) pairs with no local work
	BusyRounds    int64 // (shard, round) pairs that executed at least one event
	SpecEpochs    int64 // micro-epochs executed inside committed speculative bursts
	SpecCommits   int64 // speculative bursts committed
	SpecRollbacks int64 // speculative bursts rolled back
}

// BusyShardPct is the sweep-level busy-shard percentage: of all
// (shard, synchronization round) pairs, how many saw the shard execute at
// least one event. 0 when nothing ran sharded.
func (t ShardTotals) BusyShardPct() float64 {
	if t.Shards == 0 || t.Epochs == 0 {
		return 0
	}
	return 100 * float64(t.BusyRounds) / float64(t.Shards*t.Epochs)
}

// ShardTotals sums the sharded-engine telemetry over every point.
func (o Outcome) ShardTotals() ShardTotals {
	var t ShardTotals
	for _, pr := range o.Points {
		if pr.Result.Shards > t.Shards {
			t.Shards = pr.Result.Shards
		}
		if pr.Result.EpochWidth > t.Width {
			t.Width = pr.Result.EpochWidth
		}
		t.Epochs += pr.Result.Epochs
		t.BatchedEpochs += pr.Result.BatchedEpochs
		t.Stalls += pr.Result.BarrierStalls
		t.BusyRounds += pr.Result.BusyShardRounds
		t.SpecEpochs += pr.Result.SpecEpochs
		t.SpecCommits += pr.Result.SpecCommits
		t.SpecRollbacks += pr.Result.SpecRollbacks
	}
	return t
}

// JSON marshals the outcome canonically (indented, map keys sorted by
// encoding/json), so equal outcomes produce byte-identical files
// regardless of worker count.
func (o Outcome) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteJSON writes the canonical JSON trajectory to path, with "-"
// meaning stdout — the one output convention every CLI shares.
func (o Outcome) WriteJSON(path string) error {
	b, err := o.JSON()
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
