package exp

import "sync"

// ScratchPool is a bounded free list of worker arenas shared across
// sweeps. A Runner normally builds one fresh Scratch per worker per
// sweep, which is right for one-shot CLIs but wasteful for a long-running
// service that executes many sweeps over the same machine configurations:
// every sweep would rebuild its chip.Machines (megabytes of tag arrays)
// from scratch. A pool lets consecutive sweeps reuse the arenas instead —
// a worker checks a Scratch out for the duration of one sweep and returns
// it afterwards, so the cached machines and recycled programs inside
// survive across requests.
//
// Correctness rests on the same bargain Scratch itself documents: a
// checked-out Scratch is owned by exactly one worker goroutine (the pool
// guarantees exclusivity), and everything cached inside is
// reset-on-reuse by construction, so a pooled sweep produces
// byte-identical results to a fresh one (pinned by TestScratchPoolReuse).
//
// Max bounds how many idle arenas the pool retains; returns beyond the
// bound are dropped for the garbage collector, so a burst of wide sweeps
// cannot permanently pin its high-water memory mark. Max <= 0 retains
// nothing (every Put drops), which degrades to the fresh-per-sweep
// behavior.
type ScratchPool struct {
	mu   sync.Mutex
	free []*Scratch
	max  int
}

// NewScratchPool returns a pool retaining at most max idle arenas.
func NewScratchPool(max int) *ScratchPool {
	return &ScratchPool{max: max}
}

// Get checks an arena out of the pool, building a fresh one when the pool
// is empty. The caller owns it exclusively until Put.
func (p *ScratchPool) Get() *Scratch {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		sc := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return sc
	}
	return &Scratch{}
}

// Put returns an arena to the pool, dropping it if the pool is full. The
// sweep's context is cleared so a retained arena never pins a finished
// request's context alive.
func (p *ScratchPool) Put(sc *Scratch) {
	if sc == nil {
		return
	}
	sc.Ctx = nil
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) < p.max {
		p.free = append(p.free, sc)
	}
}

// Idle reports how many arenas are currently checked in.
func (p *ScratchPool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
