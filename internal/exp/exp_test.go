package exp

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/chip"
)

// TestGridExpansion verifies row-major expansion order, the keep
// predicate, and dense reindexing of kept points.
func TestGridExpansion(t *testing.T) {
	g := Grid{
		Strs("kind", "a", "b"),
		Ints("n", 1, 2, 3),
	}
	if got := g.Size(); got != 6 {
		t.Fatalf("Size = %d, want 6", got)
	}
	pts := g.Expand(nil)
	if len(pts) != 6 {
		t.Fatalf("Expand kept %d points, want 6", len(pts))
	}
	want := []string{"a/1", "a/2", "a/3", "b/1", "b/2", "b/3"}
	for i, p := range pts {
		got := fmt.Sprintf("%s/%d", p.Str("kind"), p.Int("n"))
		if got != want[i] {
			t.Errorf("point %d = %s, want %s", i, got, want[i])
		}
		if p.Index != i {
			t.Errorf("point %d has Index %d", i, p.Index)
		}
	}

	kept := g.Expand(func(p Point) bool { return p.Str("kind") == "b" || p.Int("n") == 2 })
	var got []string
	for i, p := range kept {
		if p.Index != i {
			t.Errorf("kept point %d has Index %d, want dense", i, p.Index)
		}
		got = append(got, fmt.Sprintf("%s/%d", p.Str("kind"), p.Int("n")))
	}
	if want := "a/2 b/1 b/2 b/3"; strings.Join(got, " ") != want {
		t.Errorf("kept points %v, want %s", got, want)
	}
}

// TestSpan64 verifies the exclusive-stop span constructor.
func TestSpan64(t *testing.T) {
	a := Span64("off", 0, 7, 2)
	if len(a.Values) != 4 {
		t.Fatalf("span has %d values, want 4 (0 2 4 6)", len(a.Values))
	}
	if a.Values[3].(int64) != 6 {
		t.Errorf("last span value = %v, want 6", a.Values[3])
	}
}

// TestPointAccessors verifies the integer conversions and the panic on a
// missing axis name.
func TestPointAccessors(t *testing.T) {
	p := Point{Params: map[string]any{"i": 7, "i64": int64(9), "s": "x"}}
	if p.Int64("i") != 7 || p.Int("i64") != 9 || p.Float("i") != 7 {
		t.Error("integer conversions broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("missing axis did not panic")
		}
	}()
	p.Int("absent")
}

// synthetic builds an experiment whose result encodes the point, so
// ordering bugs in the collector are visible in the outcome.
func synthetic(fail func(Point) bool) Experiment {
	return Experiment{
		Name: "synthetic",
		Grid: Grid{
			Strs("series", "s0", "s1"),
			Ints("x", 0, 1, 2, 3, 4, 5, 6, 7),
		},
		Run: func(_ chip.Config, p Point, _ *Scratch) (Result, error) {
			if fail != nil && fail(p) {
				return Result{}, errors.New("boom")
			}
			x := p.Int("x")
			return Result{
				Series:  p.Str("series"),
				X:       float64(x),
				Y:       float64(100*len(p.Str("series")) + x),
				Metrics: map[string]float64{"x2": float64(x * x)},
			}, nil
		},
	}
}

// TestRunnerOrdering verifies that collected results sit in grid order for
// any worker count and that Series() groups them by first appearance.
func TestRunnerOrdering(t *testing.T) {
	for _, jobs := range []int{1, 3, 16} {
		out, err := Runner{Jobs: jobs}.Run(synthetic(nil))
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(out.Points) != 16 {
			t.Fatalf("jobs=%d: %d points, want 16", jobs, len(out.Points))
		}
		for i, pr := range out.Points {
			if pr.Index != i {
				t.Errorf("jobs=%d: point %d has index %d", jobs, i, pr.Index)
			}
			wantX := float64(i % 8)
			if pr.Result.X != wantX {
				t.Errorf("jobs=%d: point %d has x %.0f, want %.0f", jobs, i, pr.Result.X, wantX)
			}
		}
		series := out.Series()
		if len(series) != 2 || series[0].Name != "s0" || series[1].Name != "s1" {
			t.Fatalf("jobs=%d: series %v", jobs, series)
		}
		if series[0].Len() != 8 || series[0].X[7] != 7 {
			t.Errorf("jobs=%d: series s0 malformed: %v", jobs, series[0])
		}
	}
}

// TestRunnerDeterministicJSON verifies the engine-level guarantee the
// figure harnesses rely on: jobs=1 and jobs=N produce byte-identical
// canonical JSON.
func TestRunnerDeterministicJSON(t *testing.T) {
	one, err := Runner{Jobs: 1}.Run(synthetic(nil))
	if err != nil {
		t.Fatal(err)
	}
	many, err := Runner{Jobs: 8}.Run(synthetic(nil))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := one.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bN, err := many.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, bN) {
		t.Fatalf("jobs=1 and jobs=8 JSON differ:\n%s\n----\n%s", b1, bN)
	}
}

// TestRunnerErrorPropagation verifies that a failing point surfaces as a
// deterministic error naming the first failed point in grid order, and
// that the pool survives to evaluate the remaining points.
func TestRunnerErrorPropagation(t *testing.T) {
	e := synthetic(func(p Point) bool { return p.Str("series") == "s1" && p.Int("x")%2 == 1 })
	for _, jobs := range []int{1, 4} {
		_, err := Runner{Jobs: jobs}.Run(e)
		if err == nil {
			t.Fatalf("jobs=%d: no error", jobs)
		}
		msg := err.Error()
		if !strings.Contains(msg, "point 9") || !strings.Contains(msg, "series=s1 x=1") {
			t.Errorf("jobs=%d: error does not name first failing point: %v", jobs, err)
		}
		if !strings.Contains(msg, "4 of 16 points failed") {
			t.Errorf("jobs=%d: error does not count failures: %v", jobs, err)
		}
	}
}

// TestRunnerPanicCapture verifies a panicking closure is reported as that
// point's error instead of crashing the process.
func TestRunnerPanicCapture(t *testing.T) {
	e := synthetic(nil)
	inner := e.Run
	e.Run = func(cfg chip.Config, p Point, sc *Scratch) (Result, error) {
		if p.Int("x") == 3 {
			panic("kernel exploded")
		}
		return inner(cfg, p, sc)
	}
	_, err := Runner{Jobs: 4}.Run(e)
	if err == nil || !strings.Contains(err.Error(), "panic: kernel exploded") {
		t.Fatalf("panic not captured: %v", err)
	}
}

// TestRunnerNoRunClosure verifies the nil-closure guard.
func TestRunnerNoRunClosure(t *testing.T) {
	if _, err := Run(Experiment{Name: "empty"}); err == nil {
		t.Fatal("nil Run closure accepted")
	}
}

// TestMachineStampInJSON pins the profile-stamping contract: a named
// machine appears as a "machine" field in the trajectory, and the default
// (empty) machine is omitted entirely, keeping historical BENCH_*.json
// files byte-stable.
func TestMachineStampInJSON(t *testing.T) {
	e := synthetic(nil)
	plain, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plain.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"machine"`) {
		t.Error("default machine leaked a machine field into the JSON")
	}

	e.Machine = "mc8"
	stamped, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	b, err = stamped.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"machine": "mc8"`) {
		t.Error("named machine not stamped into the JSON trajectory")
	}
}
