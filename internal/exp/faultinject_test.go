//go:build faultinject

package exp

import (
	"errors"
	"testing"

	"repro/internal/faults"
)

// TestInjectedPointFaultsAreRecovered arms a seed-derived plan that panics
// some points and error-fails others on their first attempts, runs the
// sweep with a retry budget covering the plan, and asserts full recovery:
// every injected fault was hit (the counters are the oracle), every point
// still completed, and the outcome is identical to a fault-free sweep.
func TestInjectedPointFaultsAreRecovered(t *testing.T) {
	e := synthetic(nil)
	want, err := Runner{Jobs: 2}.Run(e)
	if err != nil {
		t.Fatalf("fault-free baseline failed: %v", err)
	}

	plan := &faults.Plan{Seed: 0xA11CE, PointAttempts: 2}
	picked := plan.PickPoints(16, 4)
	plan.PanicPoints = picked[:2]
	plan.FailPoints = picked[2:]
	faults.Arm(plan)
	defer faults.Disarm()

	got, err := Runner{Jobs: 2, Retries: 2}.Run(e)
	if err != nil {
		t.Fatalf("sweep did not recover from the injected plan: %v", err)
	}
	st := faults.Stats()
	if st.PointPanics != 4 || st.PointFails != 4 {
		t.Fatalf("injected %d panics / %d fails, want 4 / 4 (2 points × 2 attempts each)",
			st.PointPanics, st.PointFails)
	}
	if got.Retries != 8 {
		t.Errorf("Retries = %d, want 8 (4 faulted points × 2 burned attempts)", got.Retries)
	}
	if got.PointErrors != 0 {
		t.Errorf("recovered sweep still reports %d point errors", got.PointErrors)
	}
	b1, _ := want.JSON()
	b2, _ := got.JSON()
	if string(b1) != string(b2) {
		t.Fatalf("recovered sweep diverged from fault-free sweep:\n%s\n----\n%s", b1, b2)
	}
}

// TestInjectedPointFaultSurfacesWithoutRetries: the same plan with no
// retry budget must surface as a PointError wrapping ErrInjected — the
// fault is recovered into a structured report, never swallowed.
func TestInjectedPointFaultSurfacesWithoutRetries(t *testing.T) {
	plan := &faults.Plan{Seed: 7, FailPoints: []int{3}, PointAttempts: 1}
	faults.Arm(plan)
	defer faults.Disarm()

	out, err := Runner{Jobs: 1}.Run(synthetic(nil))
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatalf("injected failure returned %v, want *PointError", err)
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("PointError does not wrap faults.ErrInjected: %v", err)
	}
	if pe.Index != 3 {
		t.Errorf("PointError.Index = %d, want 3", pe.Index)
	}
	if len(out.Points) != 15 {
		t.Errorf("partial outcome has %d points, want 15", len(out.Points))
	}
}
