package exp

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chip"
)

// flaky fails a point's first n attempts, then succeeds — the transient
// fault a retry budget exists to absorb.
type flaky struct {
	mu       sync.Mutex
	failures map[int]int // point index → failures still to serve
}

func (f *flaky) fail(idx int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failures[idx] > 0 {
		f.failures[idx]--
		return true
	}
	return false
}

// TestRunnerRetryRecoversTransientFault: a point that fails twice and then
// succeeds is recovered by Retries=2, the sweep completes with every
// point, and the outcome's telemetry counts the retries spent.
func TestRunnerRetryRecoversTransientFault(t *testing.T) {
	f := &flaky{failures: map[int]int{5: 2, 11: 1}}
	e := synthetic(nil)
	inner := e.Run
	e.Run = func(cfg chip.Config, p Point, sc *Scratch) (Result, error) {
		if f.fail(p.Index) {
			return Result{}, errors.New("transient")
		}
		return inner(cfg, p, sc)
	}
	out, err := Runner{Jobs: 4, Retries: 2}.Run(e)
	if err != nil {
		t.Fatalf("retryable sweep failed: %v", err)
	}
	if len(out.Points) != 16 {
		t.Fatalf("recovered sweep has %d points, want 16", len(out.Points))
	}
	if out.Retries != 3 {
		t.Errorf("Retries = %d, want 3 (2 for point 5 + 1 for point 11)", out.Retries)
	}
	if out.PointErrors != 0 || out.Cancelled {
		t.Errorf("recovered sweep reports failures: %+v", out)
	}
}

// TestRunnerRetryExhaustion: a point that fails more times than the budget
// surfaces a PointError carrying the attempt count, and the outcome keeps
// the points that did succeed.
func TestRunnerRetryExhaustion(t *testing.T) {
	f := &flaky{failures: map[int]int{9: 100}}
	e := synthetic(nil)
	inner := e.Run
	e.Run = func(cfg chip.Config, p Point, sc *Scratch) (Result, error) {
		if f.fail(p.Index) {
			return Result{}, errors.New("persistent")
		}
		return inner(cfg, p, sc)
	}
	out, err := Runner{Jobs: 2, Retries: 1, Backoff: time.Microsecond}.Run(e)
	if err == nil {
		t.Fatal("exhausted retries did not surface an error")
	}
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want to unwrap to *PointError: %v", err, err)
	}
	if pe.Index != 9 || pe.Attempts != 2 {
		t.Errorf("PointError = index %d attempts %d, want index 9 attempts 2", pe.Index, pe.Attempts)
	}
	if !strings.Contains(err.Error(), "1 of 16 points failed") {
		t.Errorf("aggregate error lost its failure count: %v", err)
	}
	if len(out.Points) != 15 || out.PointErrors != 1 {
		t.Errorf("partial outcome: %d points, %d point errors; want 15 and 1", len(out.Points), out.PointErrors)
	}
}

// TestRunnerPanicPointError: a panicking closure yields a structured
// PointError with the recovered value, a captured stack, and the point's
// parameters — not just a flattened message.
func TestRunnerPanicPointError(t *testing.T) {
	e := synthetic(nil)
	inner := e.Run
	e.Run = func(cfg chip.Config, p Point, sc *Scratch) (Result, error) {
		if p.Int("x") == 3 && p.Str("series") == "s0" {
			panic("kernel exploded")
		}
		return inner(cfg, p, sc)
	}
	_, err := Runner{Jobs: 4}.Run(e)
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatalf("panic did not surface as *PointError: %v", err)
	}
	if pe.PanicValue != "kernel exploded" {
		t.Errorf("PanicValue = %v, want the recovered panic value", pe.PanicValue)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "runner_test") {
		t.Errorf("captured stack does not reach the panicking frame:\n%s", pe.Stack)
	}
	if pe.Index != 3 || pe.Params["series"] != "s0" {
		t.Errorf("PointError lost its point identity: index %d params %v", pe.Index, pe.Params)
	}
}

// TestRunContextCancelPartialOutcome cancels a sweep after its first point
// completes and asserts the contract: an error wrapping the cause, a
// Cancelled outcome holding only completed points at their original
// indices, and no evaluation of abandoned points after the abort.
func TestRunContextCancelPartialOutcome(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	reason := errors.New("operator abort")
	var ran sync.Map
	e := synthetic(nil)
	inner := e.Run
	e.Run = func(cfg chip.Config, p Point, sc *Scratch) (Result, error) {
		ran.Store(p.Index, true)
		if p.Index == 0 {
			res, err := inner(cfg, p, sc)
			cancel(reason) // first point completes, then pulls the plug
			return res, err
		}
		<-sc.Context().Done() // later points observe the abort mid-run
		return Result{}, &chip.CancelError{Cause: context.Cause(sc.Context()), Latency: time.Millisecond}
	}
	out, err := Runner{Jobs: 1}.RunContext(ctx, e)
	if err == nil || !errors.Is(err, reason) {
		t.Fatalf("cancelled sweep returned %v, want error wrapping the cancel cause", err)
	}
	if !out.Cancelled {
		t.Error("outcome not marked Cancelled")
	}
	if len(out.Points) != 1 || out.Points[0].Index != 0 {
		t.Fatalf("partial outcome points = %+v, want exactly point 0", out.Points)
	}
	count := 0
	ran.Range(func(_, _ any) bool { count++; return true })
	if count > 2 {
		t.Errorf("%d points evaluated after cancellation; abandoned points must be skipped", count)
	}
	if out.CancelLatencyMS <= 0 && count == 2 {
		t.Errorf("aborted point's cancel latency not recorded: %+v", out)
	}
}

// TestRunContextPreCancelled: an already-dead context evaluates nothing.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	evaluated := false
	e := synthetic(nil)
	inner := e.Run
	e.Run = func(cfg chip.Config, p Point, sc *Scratch) (Result, error) {
		evaluated = true
		return inner(cfg, p, sc)
	}
	out, err := Runner{Jobs: 2}.RunContext(ctx, e)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled sweep returned %v", err)
	}
	if evaluated {
		t.Error("pre-cancelled sweep still evaluated a point")
	}
	if len(out.Points) != 0 || !out.Cancelled {
		t.Errorf("pre-cancelled outcome: %+v", out)
	}
}

// TestScratchContextDefault: a Scratch built outside a runner still serves
// a usable (background) context.
func TestScratchContextDefault(t *testing.T) {
	var sc Scratch
	if sc.Context() == nil || sc.Context().Err() != nil {
		t.Fatal("zero Scratch does not default to a live background context")
	}
}

// TestShardBudgetEdgeCases pins the budget arithmetic at its boundaries:
// sequential stays sequential, "auto" fills the per-run budget, explicit
// requests only ever shrink it, and degenerate jobs counts (zero,
// negative, more jobs than cores) all collapse to a sane floor of one
// worker instead of oversubscribing or dividing by zero.
func TestShardBudgetEdgeCases(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		name            string
		requested, jobs int
		want            int
	}{
		{"sequential", 0, 4, 0},
		{"sequential ignores degenerate jobs", 0, -3, 0},
		{"auto with zero jobs (defaults to GOMAXPROCS)", -1, 0, 1},
		{"auto with negative jobs", -1, -8, 1},
		{"auto with one job gets everything", -1, 1, maxprocs},
		{"jobs beyond cores floor at one worker", -1, maxprocs * 4, 1},
		{"explicit request caps the budget", 1, 1, 1},
		{"oversubscribed request is clamped", maxprocs * 16, 1, maxprocs},
		{"request larger than per-job share is clamped", maxprocs * 16, maxprocs * 2, 1},
	}
	for _, c := range cases {
		if got := ShardBudget(c.requested, c.jobs); got != c.want {
			t.Errorf("%s: ShardBudget(%d, %d) = %d, want %d", c.name, c.requested, c.jobs, got, c.want)
		}
	}
}
