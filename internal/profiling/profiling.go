// Package profiling is the shared -cpuprofile/-memprofile plumbing of the
// CLIs: start CPU profiling immediately, write the heap profile at stop,
// and make stopping idempotent so error paths that os.Exit can flush the
// profiles first without double-finalizing on the happy path's defer.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (if non-empty) and arranges a
// heap profile at memPath (if non-empty). The returned stop function is
// idempotent; call it both deferred and before any explicit os.Exit so a
// failing run still leaves parseable profiles behind.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
			}
		}
	}, nil
}
