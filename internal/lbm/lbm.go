// Package lbm implements the D3Q19 lattice-Boltzmann method of Sect. 2.4:
// a BGK collision with fused push streaming on a cubic domain with two
// toggle grids, in both data layouts the paper compares — the
// propagation-optimized "IJKv" structure-of-arrays layout and the
// interleaved "IvJK" layout whose odd row stride spreads the 19
// distribution-function streams across the memory controllers
// automatically. The package contains a real host solver (validated for
// mass conservation and Poiseuille channel flow) and a trace compiler for
// the simulated T2 that regenerates Fig. 7.
package lbm

import "fmt"

// Q is the number of discrete velocities of the D3Q19 model.
const Q = 19

// Velocity set: index 0 is the rest population, 1-6 the axis directions,
// 7-18 the face diagonals.
var (
	Cx = [Q]int{0, 1, -1, 0, 0, 0, 0, 1, -1, 1, -1, 1, -1, 1, -1, 0, 0, 0, 0}
	Cy = [Q]int{0, 0, 0, 1, -1, 0, 0, 1, -1, -1, 1, 0, 0, 0, 0, 1, -1, 1, -1}
	Cz = [Q]int{0, 0, 0, 0, 0, 1, -1, 0, 0, 0, 0, 1, -1, -1, 1, 1, -1, -1, 1}
)

// W holds the lattice weights: 1/3 for rest, 1/18 axis, 1/36 diagonal.
var W = [Q]float64{
	1.0 / 3,
	1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18,
	1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36,
	1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36,
}

// Opp maps each velocity to its opposite, used by bounce-back walls.
var Opp [Q]int

func init() {
	for i := 0; i < Q; i++ {
		for j := 0; j < Q; j++ {
			if Cx[i] == -Cx[j] && Cy[i] == -Cy[j] && Cz[i] == -Cz[j] {
				Opp[i] = j
				break
			}
		}
	}
}

// Layout selects the memory order of the distribution-function array.
type Layout int

// The two layouts of Fig. 7.
const (
	// IJKv is the structure-of-arrays layout f(x,y,z,v): x fastest, v
	// slowest, so each distribution function is a separate contiguous
	// cube and the 19 streams sit (N+2)^3 doubles apart.
	IJKv Layout = iota
	// IvJK is the interleaved layout f(x,v,y,z): the 19 distribution
	// functions of one row follow each other, so concurrent streams sit
	// one padded row (an odd multiple of the interleave period for most
	// N) apart.
	IvJK
)

// Name returns the paper's name for the layout.
func (l Layout) Name() string {
	switch l {
	case IJKv:
		return "IJKv"
	case IvJK:
		return "IvJK"
	}
	return fmt.Sprintf("layout(%d)", int(l))
}

// Index returns the linear element index of distribution v at padded
// coordinates (x, y, z) for padded edge length p.
func (l Layout) Index(p, v, x, y, z int) int {
	switch l {
	case IJKv:
		return x + p*(y+p*(z+p*v))
	case IvJK:
		return x + p*(v+Q*(y+p*z))
	}
	panic(fmt.Sprintf("lbm: unknown layout %d", int(l)))
}

// VStride returns the element distance between consecutive distribution
// functions at a fixed site — the stream stride whose controller spread
// decides the aliasing behaviour (see core.PhaseSpread).
func (l Layout) VStride(p int) int {
	switch l {
	case IJKv:
		return p * p * p
	case IvJK:
		return p
	}
	panic(fmt.Sprintf("lbm: unknown layout %d", int(l)))
}

// RowStride returns the element distance between the same (v, x) position
// of two consecutive x-rows (y and y+1) — the per-row advance every one of
// the layout's streams shares, and the pitch of the row-granular fluid-cell
// mask. It is the byte stride (times the word size) by which a whole outer
// iteration of the trace generator translates.
func (l Layout) RowStride(p int) int {
	switch l {
	case IJKv:
		return p
	case IvJK:
		return Q * p
	}
	panic(fmt.Sprintf("lbm: unknown layout %d", int(l)))
}

// Size returns the element count of one toggle grid.
func (l Layout) Size(p int) int { return Q * p * p * p }

// Field is a host D3Q19 field on an N^3 interior with one ghost layer,
// two toggle grids, and a solid-cell mask (bounce-back walls).
type Field struct {
	N      int
	P      int // padded edge: N+2
	Layout Layout
	Omega  float64 // BGK relaxation rate
	// Force is a constant body-force acceleration along x (Guo-style
	// simplified forcing), used for channel-flow validation.
	Force float64
	// PeriodicX and PeriodicZ wrap streaming across the x and z faces,
	// turning the y-walled box into an infinite channel.
	PeriodicX, PeriodicZ bool

	grids [2][]float64
	solid []bool // p^3 mask, indexed x + p*(y + p*z)
	t     int    // current toggle
}

// NewField allocates a field of interior size n with all cells fluid.
func NewField(n int, layout Layout, omega float64) *Field {
	if n < 1 {
		panic(fmt.Sprintf("lbm: interior size %d", n))
	}
	if omega <= 0 || omega >= 2 {
		panic(fmt.Sprintf("lbm: BGK omega %g outside (0,2)", omega))
	}
	p := n + 2
	f := &Field{N: n, P: p, Layout: layout, Omega: omega}
	f.grids[0] = make([]float64, layout.Size(p))
	f.grids[1] = make([]float64, layout.Size(p))
	f.solid = make([]bool, p*p*p)
	return f
}

// SolidIndex returns the mask index of padded coordinates (x, y, z).
func (f *Field) SolidIndex(x, y, z int) int { return x + f.P*(y+f.P*z) }

// SetSolid marks a padded-coordinate cell as a bounce-back wall.
func (f *Field) SetSolid(x, y, z int) { f.solid[f.SolidIndex(x, y, z)] = true }

// WallsY marks the y = 1 and y = N planes as solid walls (a channel along
// x and z), the Poiseuille configuration.
func (f *Field) WallsY() {
	for z := 1; z <= f.N; z++ {
		for x := 1; x <= f.N; x++ {
			f.SetSolid(x, 1, z)
			f.SetSolid(x, f.N, z)
		}
	}
}

// Equilibrium returns the D3Q19 equilibrium distribution for direction v.
func Equilibrium(v int, rho, ux, uy, uz float64) float64 {
	cu := float64(Cx[v])*ux + float64(Cy[v])*uy + float64(Cz[v])*uz
	u2 := ux*ux + uy*uy + uz*uz
	return W[v] * rho * (1 + 3*cu + 4.5*cu*cu - 1.5*u2)
}

// Init sets every fluid cell of the current grid to the equilibrium of
// (rho, ux, uy, uz).
func (f *Field) Init(rho, ux, uy, uz float64) {
	g := f.grids[f.t]
	for z := 1; z <= f.N; z++ {
		for y := 1; y <= f.N; y++ {
			for x := 1; x <= f.N; x++ {
				for v := 0; v < Q; v++ {
					g[f.Layout.Index(f.P, v, x, y, z)] = Equilibrium(v, rho, ux, uy, uz)
				}
			}
		}
	}
}

// Moments returns density and momentum of the cell at padded (x, y, z) in
// the current grid.
func (f *Field) Moments(x, y, z int) (rho, jx, jy, jz float64) {
	g := f.grids[f.t]
	for v := 0; v < Q; v++ {
		fv := g[f.Layout.Index(f.P, v, x, y, z)]
		rho += fv
		jx += fv * float64(Cx[v])
		jy += fv * float64(Cy[v])
		jz += fv * float64(Cz[v])
	}
	return rho, jx, jy, jz
}

// Step performs one fused collide-and-push sweep into the other toggle
// grid, with half-way bounce-back at solid cells.
func (f *Field) Step() {
	src := f.grids[f.t]
	dst := f.grids[1-f.t]
	p := f.P
	var fl [Q]float64
	for z := 1; z <= f.N; z++ {
		for y := 1; y <= f.N; y++ {
			for x := 1; x <= f.N; x++ {
				if f.solid[f.SolidIndex(x, y, z)] {
					continue
				}
				var rho, ux, uy, uz float64
				for v := 0; v < Q; v++ {
					fv := src[f.Layout.Index(p, v, x, y, z)]
					fl[v] = fv
					rho += fv
					ux += fv * float64(Cx[v])
					uy += fv * float64(Cy[v])
					uz += fv * float64(Cz[v])
				}
				inv := 1 / rho
				ux *= inv
				uy *= inv
				uz *= inv
				for v := 0; v < Q; v++ {
					eq := Equilibrium(v, rho, ux, uy, uz)
					post := fl[v] + f.Omega*(eq-fl[v])
					// Simplified constant body force along x.
					post += 3 * W[v] * float64(Cx[v]) * f.Force * rho
					nx, ny, nz := x+Cx[v], y+Cy[v], z+Cz[v]
					if f.PeriodicX {
						if nx < 1 {
							nx = f.N
						} else if nx > f.N {
							nx = 1
						}
					}
					if f.PeriodicZ {
						if nz < 1 {
							nz = f.N
						} else if nz > f.N {
							nz = 1
						}
					}
					if f.solid[f.SolidIndex(nx, ny, nz)] {
						// Bounce back into the opposite direction locally.
						dst[f.Layout.Index(p, Opp[v], x, y, z)] = post
					} else {
						dst[f.Layout.Index(p, v, nx, ny, nz)] = post
					}
				}
			}
		}
	}
	f.t = 1 - f.t
}

// Run advances the field by steps sweeps.
func (f *Field) Run(steps int) {
	for i := 0; i < steps; i++ {
		f.Step()
	}
}

// Mass returns the total density over fluid cells.
func (f *Field) Mass() float64 {
	var m float64
	for z := 1; z <= f.N; z++ {
		for y := 1; y <= f.N; y++ {
			for x := 1; x <= f.N; x++ {
				if f.solid[f.SolidIndex(x, y, z)] {
					continue
				}
				rho, _, _, _ := f.Moments(x, y, z)
				m += rho
			}
		}
	}
	return m
}

// VelocityProfileX returns the mean x-velocity as a function of y across
// the channel — the Poiseuille parabola when WallsY and Force are set.
func (f *Field) VelocityProfileX() []float64 {
	prof := make([]float64, f.N)
	for y := 1; y <= f.N; y++ {
		var sum float64
		n := 0
		for z := 1; z <= f.N; z++ {
			for x := 1; x <= f.N; x++ {
				if f.solid[f.SolidIndex(x, y, z)] {
					continue
				}
				rho, jx, _, _ := f.Moments(x, y, z)
				sum += jx / rho
				n++
			}
		}
		if n > 0 {
			prof[y-1] = sum / float64(n)
		}
	}
	return prof
}
