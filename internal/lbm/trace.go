package lbm

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/trace"
)

// Instruction demand of one lattice-site update. The paper gives the code
// balance of its kernel as ~2.5 bytes/flop at 456 bytes of traffic per
// site, i.e. ~182 floating-point operations; the 1/rho division occupies
// the non-pipelined FP divider for ~34 extra cycles on a SPARC core, and
// the 19-stream address arithmetic plus the fluid-cell test cost ~40
// integer operations.
const (
	flopsPerSite  = 182
	divCycles     = 34
	intOpsPerSite = 40
	memOpsPerSite = 2 * Q // 19 loads + 19 stores
	// repBytesPerSite is the traffic the benchmark itself accounts per
	// site update: 19 reads + 19 writes of 8 bytes (RFO excluded, as in
	// STREAM's counting convention).
	repBytesPerSite = 16 * Q
)

var perSite = cpu.Demand{MemOps: memOpsPerSite, Flops: flopsPerSite + divCycles, IntOps: intOpsPerSite}

// TraceSpec describes one simulated LBM run of Fig. 7.
type TraceSpec struct {
	N      int64 // interior cube edge
	Layout Layout
	// OldBase and NewBase are the simulated base addresses of the two
	// toggle grids; MaskBase is the fluid-cell flag array (one byte per
	// padded cell).
	OldBase, NewBase phys.Addr
	MaskBase         phys.Addr
	// Fused coalesces the outer z and y loops into one parallel loop of
	// N*N iterations, the "fused I-J" variant that removes the sawtooth
	// modulo pattern in Fig. 7.
	Fused  bool
	Sched  omp.Schedule
	Sweeps int
}

// GridBytes returns the byte size of one toggle grid for interior edge n.
func GridBytes(n int64, l Layout) int64 {
	p := n + 2
	return int64(l.Size(int(p))) * phys.WordSize
}

// MaskBytes returns the byte size of the fluid-cell mask.
func MaskBytes(n int64) int64 {
	p := n + 2
	return p * p * p
}

// Program compiles the run into a per-thread work-item program. Units are
// lattice-site updates (Result.MUPs is MLUPs/s).
func (s *TraceSpec) Program(threads int) *trace.Program {
	if s.N < 1 {
		panic(fmt.Sprintf("lbm: domain edge %d", s.N))
	}
	sweeps := s.Sweeps
	if sweeps < 1 {
		sweeps = 1
	}
	outer := s.N // parallel loop over z
	if s.Fused {
		outer = s.N * s.N // coalesced (z, y)
	}
	asns := make([]omp.Assigner, sweeps)
	for i := range asns {
		asns[i] = s.Sched.Assigner(outer, threads)
	}
	fused := ""
	if s.Fused {
		fused = "/fused"
	}
	p := &trace.Program{
		Label:       fmt.Sprintf("lbm/%s%s/N=%d/%s/t=%d", s.Layout.Name(), fused, s.N, s.Sched.String(), threads),
		SharedSched: !s.Sched.PerThread(),
	}
	for t := 0; t < threads; t++ {
		p.Gens = append(p.Gens, &gen{spec: s, asns: asns, thread: t})
	}
	return p
}

type gen struct {
	spec   *TraceSpec
	asns   []omp.Assigner
	thread int
	sweep  int

	cur    omp.Chunk
	outer  int64 // current outer-loop index within cur
	hasRow bool
	y, z   int64 // current row coordinates (1-based padded interior)
	x      int64 // next x within the row

	trRead  [Q]trace.LineTracker
	trWrite [Q]trace.LineTracker
	trMask  trace.LineTracker
}

// rowFromOuter decodes the outer-loop index into (z, y) and decides
// whether a row remains.
func (g *gen) advanceRow() bool {
	n := g.spec.N
	for {
		if g.hasRow {
			g.outer++
			if !g.spec.Fused {
				// Inner y loop first.
				if g.y < n {
					g.y++
					g.outer-- // outer index unchanged: still the same z
					break
				}
				if g.outer < g.cur.Hi {
					g.z = g.outer + 1
					g.y = 1
					break
				}
			} else if g.outer < g.cur.Hi {
				zi, yi := omp.Split2(g.outer, n)
				g.z, g.y = zi+1, yi+1
				break
			}
			g.hasRow = false
		}
		c, ok := g.asns[g.sweep].Next(g.thread)
		if !ok {
			g.sweep++
			if g.sweep >= len(g.asns) {
				return false
			}
			continue
		}
		g.cur = c
		g.outer = c.Lo
		if g.spec.Fused {
			zi, yi := omp.Split2(g.outer, n)
			g.z, g.y = zi+1, yi+1
		} else {
			g.z, g.y = g.outer+1, 1
		}
		g.hasRow = true
		break
	}
	g.x = 1
	for v := 0; v < Q; v++ {
		g.trRead[v].Reset()
		g.trWrite[v].Reset()
	}
	g.trMask.Reset()
	return true
}

func (g *gen) addr(base phys.Addr, v int, x, y, z int64) phys.Addr {
	p := int(g.spec.N + 2)
	idx := g.spec.Layout.Index(p, v, int(x), int(y), int(z))
	return base + phys.Addr(int64(idx)*phys.WordSize)
}

func (g *gen) Next(it *trace.Item) bool {
	n := g.spec.N
	if !g.hasRow || g.x > n {
		if !g.advanceRow() {
			return false
		}
	}
	old, new_ := g.spec.OldBase, g.spec.NewBase
	if g.sweep%2 == 1 {
		old, new_ = new_, old
	}

	lo := g.x
	hi := lo + phys.LineSize/phys.WordSize
	if hi > n+1 {
		hi = n + 1
	}
	sites := hi - lo

	// Fluid-cell mask: one byte per padded cell, x-fastest.
	p := n + 2
	maskIdx := lo + p*(g.y+p*g.z)
	if g.trMask.Touch(g.spec.MaskBase + phys.Addr(maskIdx)) {
		it.Acc = append(it.Acc, trace.Access{Addr: g.spec.MaskBase + phys.Addr(maskIdx)})
	}

	for v := 0; v < Q; v++ {
		// Reads from the local cell block [lo, hi).
		a := phys.LineOf(g.addr(old, v, lo, g.y, g.z))
		b := phys.LineOf(g.addr(old, v, hi-1, g.y, g.z))
		for l := a; l <= b; l += phys.LineSize {
			if g.trRead[v].Touch(l) {
				it.Acc = append(it.Acc, trace.Access{Addr: l})
			}
		}
		// Pushes to the displaced neighbour block.
		wy, wz := g.y+int64(Cy[v]), g.z+int64(Cz[v])
		wa := phys.LineOf(g.addr(new_, v, lo+int64(Cx[v]), wy, wz))
		wb := phys.LineOf(g.addr(new_, v, hi-1+int64(Cx[v]), wy, wz))
		for l := wa; l <= wb; l += phys.LineSize {
			if g.trWrite[v].Touch(l) {
				it.Acc = append(it.Acc, trace.Access{Addr: l, Write: true})
			}
		}
	}

	it.Demand = perSite.Scale(sites)
	it.Units = sites
	it.RepBytes = repBytesPerSite * sites
	g.x = hi
	return true
}

// The LBM generator deliberately does NOT implement trace.Forwardable:
// rows of adjacent distribution functions abut in memory, so the boundary
// lines of one row-step's streams are re-touched by neighbouring
// row-steps, and whether those accesses hit depends on the LRU state the
// intervening items left behind. Analytically skipping items would not
// install their lines, silently flipping such hits to misses. Reuse-free
// streaming kernels (the Stream and SegStream families) are the ones that
// qualify for steady-state fast-forward.
