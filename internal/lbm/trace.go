package lbm

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/trace"
)

// Instruction demand of one lattice-site update. The paper gives the code
// balance of its kernel as ~2.5 bytes/flop at 456 bytes of traffic per
// site, i.e. ~182 floating-point operations; the 1/rho division occupies
// the non-pipelined FP divider for ~34 extra cycles on a SPARC core, and
// the 19-stream address arithmetic plus the fluid-cell test cost ~40
// integer operations.
const (
	flopsPerSite  = 182
	divCycles     = 34
	intOpsPerSite = 40
	memOpsPerSite = 2 * Q // 19 loads + 19 stores
	// repBytesPerSite is the traffic the benchmark itself accounts per
	// site update: 19 reads + 19 writes of 8 bytes (RFO excluded, as in
	// STREAM's counting convention).
	repBytesPerSite = 16 * Q
)

var perSite = cpu.Demand{MemOps: memOpsPerSite, Flops: flopsPerSite + divCycles, IntOps: intOpsPerSite}

// TraceSpec describes one simulated LBM run of Fig. 7.
type TraceSpec struct {
	N      int64 // interior cube edge
	Layout Layout
	// OldBase and NewBase are the simulated base addresses of the two
	// toggle grids; MaskBase is the fluid-cell flag array (one word per
	// padded cell, pitched like a grid row — see MaskBytes).
	OldBase, NewBase phys.Addr
	MaskBase         phys.Addr
	// Fused coalesces the outer z and y loops into one parallel loop of
	// N*N iterations, the "fused I-J" variant that removes the sawtooth
	// modulo pattern in Fig. 7.
	Fused  bool
	Sched  omp.Schedule
	Sweeps int
}

// GridBytes returns the byte size of one toggle grid for interior edge n.
func GridBytes(n int64, l Layout) int64 {
	p := n + 2
	return int64(l.Size(int(p))) * phys.WordSize
}

// MaskBytes returns the byte size of the fluid-cell mask for the given
// layout: one word per padded cell, with the row at (y, z) starting
// RowStride(p) elements after the row at (y-1, z) — the same per-row
// element advance as every distribution-function stream. Sharing the grid's
// row pitch makes one whole x-row of the kernel (mask included) a
// constant-stride translate of the previous one, the property the
// iteration-granular fast-forward depends on.
func MaskBytes(n int64, l Layout) int64 {
	p := n + 2
	return int64(l.RowStride(int(p))) * p * p * phys.WordSize
}

// Program compiles the run into a per-thread work-item program. Units are
// lattice-site updates (Result.MUPs is MLUPs/s).
func (s *TraceSpec) Program(threads int) *trace.Program {
	if s.N < 1 {
		panic(fmt.Sprintf("lbm: domain edge %d", s.N))
	}
	sweeps := s.Sweeps
	if sweeps < 1 {
		sweeps = 1
	}
	outer := s.N // parallel loop over z
	if s.Fused {
		outer = s.N * s.N // coalesced (z, y)
	}
	asns := make([]omp.Assigner, sweeps)
	for i := range asns {
		asns[i] = s.Sched.Assigner(outer, threads)
	}
	fused := ""
	if s.Fused {
		fused = "/fused"
	}
	p := &trace.Program{
		Label:       fmt.Sprintf("lbm/%s%s/N=%d/%s/t=%d", s.Layout.Name(), fused, s.N, s.Sched.String(), threads),
		SharedSched: !s.Sched.PerThread(),
	}
	for t := 0; t < threads; t++ {
		p.Gens = append(p.Gens, &gen{spec: s, asns: asns, thread: t})
	}
	return p
}

type gen struct {
	spec   *TraceSpec
	asns   []omp.Assigner
	thread int
	sweep  int

	cur    omp.Chunk
	outer  int64 // current outer-loop index within cur
	hasRow bool
	y, z   int64 // current row coordinates (1-based padded interior)
	x      int64 // next x within the row

	trRead  [Q]trace.LineTracker
	trWrite [Q]trace.LineTracker
	trMask  trace.LineTracker
}

// rowFromOuter decodes the outer-loop index into (z, y) and decides
// whether a row remains.
func (g *gen) advanceRow() bool {
	n := g.spec.N
	for {
		if g.hasRow {
			g.outer++
			if !g.spec.Fused {
				// Inner y loop first.
				if g.y < n {
					g.y++
					g.outer-- // outer index unchanged: still the same z
					break
				}
				if g.outer < g.cur.Hi {
					g.z = g.outer + 1
					g.y = 1
					break
				}
			} else if g.outer < g.cur.Hi {
				zi, yi := omp.Split2(g.outer, n)
				g.z, g.y = zi+1, yi+1
				break
			}
			g.hasRow = false
		}
		c, ok := g.asns[g.sweep].Next(g.thread)
		if !ok {
			g.sweep++
			if g.sweep >= len(g.asns) {
				return false
			}
			continue
		}
		g.cur = c
		g.outer = c.Lo
		if g.spec.Fused {
			zi, yi := omp.Split2(g.outer, n)
			g.z, g.y = zi+1, yi+1
		} else {
			g.z, g.y = g.outer+1, 1
		}
		g.hasRow = true
		break
	}
	g.x = 1
	for v := 0; v < Q; v++ {
		g.trRead[v].Reset()
		g.trWrite[v].Reset()
	}
	g.trMask.Reset()
	return true
}

func (g *gen) addr(base phys.Addr, v int, x, y, z int64) phys.Addr {
	p := int(g.spec.N + 2)
	idx := g.spec.Layout.Index(p, v, int(x), int(y), int(z))
	return base + phys.Addr(int64(idx)*phys.WordSize)
}

// maskAddr returns the address of the fluid-cell flag word for padded
// coordinates (x, y, z): row-pitched by the layout's RowStride, so the
// whole kernel row translates by one constant byte stride (see MaskBytes).
func (g *gen) maskAddr(x, y, z int64) phys.Addr {
	p := g.spec.N + 2
	rs := int64(g.spec.Layout.RowStride(int(p)))
	return g.spec.MaskBase + phys.Addr((x+rs*(y+p*z))*phys.WordSize)
}

func (g *gen) Next(it *trace.Item) bool {
	n := g.spec.N
	if !g.hasRow || g.x > n {
		if !g.advanceRow() {
			return false
		}
	}
	old, new_ := g.spec.OldBase, g.spec.NewBase
	if g.sweep%2 == 1 {
		old, new_ = new_, old
	}

	lo := g.x
	hi := lo + phys.LineSize/phys.WordSize
	if hi > n+1 {
		hi = n + 1
	}
	sites := hi - lo

	// Fluid-cell mask: one word per padded cell, x-fastest, row-pitched
	// like the grids.
	ma := phys.LineOf(g.maskAddr(lo, g.y, g.z))
	mb := phys.LineOf(g.maskAddr(hi-1, g.y, g.z))
	for l := ma; l <= mb; l += phys.LineSize {
		if g.trMask.Touch(l) {
			it.Acc = append(it.Acc, trace.Access{Addr: l})
		}
	}

	for v := 0; v < Q; v++ {
		// Reads from the local cell block [lo, hi).
		a := phys.LineOf(g.addr(old, v, lo, g.y, g.z))
		b := phys.LineOf(g.addr(old, v, hi-1, g.y, g.z))
		for l := a; l <= b; l += phys.LineSize {
			if g.trRead[v].Touch(l) {
				it.Acc = append(it.Acc, trace.Access{Addr: l})
			}
		}
		// Pushes to the displaced neighbour block.
		wy, wz := g.y+int64(Cy[v]), g.z+int64(Cz[v])
		wa := phys.LineOf(g.addr(new_, v, lo+int64(Cx[v]), wy, wz))
		wb := phys.LineOf(g.addr(new_, v, hi-1+int64(Cx[v]), wy, wz))
		for l := wa; l <= wb; l += phys.LineSize {
			if g.trWrite[v].Touch(l) {
				it.Acc = append(it.Acc, trace.Access{Addr: l, Write: true})
			}
		}
	}

	it.Demand = perSite.Scale(sites)
	it.Units = sites
	it.RepBytes = repBytesPerSite * sites
	g.x = hi
	return true
}

// The LBM generator does NOT implement trace.Forwardable — rows of
// adjacent distribution functions abut in memory, so the boundary lines of
// one row-step's streams are re-touched by neighbouring row-steps, and
// whether those accesses hit depends on the LRU state the intervening
// items left behind; per-item extrapolation would silently flip such hits
// to misses. It does implement trace.IterForwardable: one whole x-row is
// the previous row's exact byte-translate (every one of the 19 read
// streams, 19 write streams and the row-pitched mask advances by
// WordSize*RowStride bytes per row), and the machine replays skipped rows
// against the real tag store, so intra-row reuse is reproduced, never
// extrapolated (DESIGN.md Sect. 11).

// elemsPerItem is the x-extent of one work item: one destination line.
const elemsPerItem = phys.LineSize / phys.WordSize

// rowStride returns the constant byte advance between consecutive x-rows
// of the sweep — shared by every stream of the kernel, mask included.
func (g *gen) rowStride() int64 {
	p := g.spec.N + 2
	return int64(g.spec.Layout.RowStride(int(p))) * phys.WordSize
}

// srcBase returns the base of the grid the current sweep reads.
func (g *gen) srcBase() phys.Addr {
	if g.sweep%2 == 1 {
		return g.spec.NewBase
	}
	return g.spec.OldBase
}

// AtIterBoundary reports whether the generator sits between two x-rows.
func (g *gen) AtIterBoundary() bool {
	return !g.hasRow || g.x > g.spec.N
}

// IterStride returns the per-row byte advance of every access address.
func (g *gen) IterStride() int64 { return g.rowStride() }

// IterItems returns the number of work items in one x-row.
func (g *gen) IterItems() int64 {
	return (g.spec.N + elemsPerItem - 1) / elemsPerItem
}

// ItersRemaining returns how many further whole rows continue the uniform
// pattern: rows up to, but never across, the current z-plane's edge (the
// y-to-z wrap changes the address delta) or — in the fused variant, where
// the chunk is row-granular — the current chunk's edge.
func (g *gen) ItersRemaining() int64 {
	if !g.hasRow {
		return 0
	}
	rem := g.spec.N - g.y
	if g.spec.Fused {
		if c := g.cur.Hi - 1 - g.outer; c < rem {
			rem = c
		}
	}
	if rem < 0 {
		rem = 0
	}
	return rem
}

// SkipIters advances the generator n whole rows in place: the row
// coordinate and (in the fused variant) the coalesced outer index move
// forward, and every line tracker is translated by the same byte stride
// the skipped accesses would have applied.
func (g *gen) SkipIters(n int64) {
	if n == 0 {
		return
	}
	delta := phys.Addr(n * g.rowStride())
	g.y += n
	if g.spec.Fused {
		g.outer += n
	}
	for v := 0; v < Q; v++ {
		g.trRead[v].Shift(delta)
		g.trWrite[v].Shift(delta)
	}
	g.trMask.Shift(delta)
}

// IterRef returns the source-grid anchor of the current row — an address
// that advances by exactly IterStride per row.
func (g *gen) IterRef() phys.Addr {
	return g.addr(g.srcBase(), 0, 1, g.y, g.z)
}

// IterPhase folds the generator's pattern-relevant state into f relative
// to ref: the discrete mode (row-held flag, sweep parity, intra-row x),
// the source, destination and mask row anchors as offsets from ref modulo
// window, and all 39 line trackers likewise.
func (g *gen) IterPhase(f *trace.Fingerprint, window int64, ref phys.Addr) {
	if !g.hasRow {
		f.Fold(0)
		return
	}
	f.Fold(1)
	f.Fold(uint64(g.sweep & 1))
	f.Fold(uint64(g.x))
	src := g.srcBase()
	dst := g.spec.OldBase + g.spec.NewBase - src
	f.FoldAddr(g.addr(src, 0, 1, g.y, g.z)-ref, window)
	f.FoldAddr(g.addr(dst, 0, 1, g.y, g.z)-ref, window)
	f.FoldAddr(g.maskAddr(1, g.y, g.z)-ref, window)
	for v := 0; v < Q; v++ {
		g.trRead[v].PhaseRel(f, window, ref)
		g.trWrite[v].PhaseRel(f, window, ref)
	}
	g.trMask.PhaseRel(f, window, ref)
}

var _ trace.IterForwardable = (*gen)(nil)
