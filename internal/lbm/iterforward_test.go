package lbm

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/trace"
)

// drainGen collects a generator's remaining items (deep copies).
func drainGen(g trace.Generator) []trace.Item {
	var out []trace.Item
	var it trace.Item
	for {
		it.Reset()
		if !g.Next(&it) {
			return out
		}
		out = append(out, trace.Item{
			Acc:      append([]trace.Access(nil), it.Acc...),
			Demand:   it.Demand,
			Units:    it.Units,
			RepBytes: it.RepBytes,
		})
	}
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// iterSkipEquivalence mirrors the Jacobi IterForwardable contract check
// for the LBM generator: drive the reference by Next alone; drive the
// subject j items in, then to the next iteration boundary, then
// SkipIters(m) for a line-aligned m up to ItersRemaining, then Next to the
// end. The subject's tail must be byte-for-byte the reference's stream at
// the skipped position, and the reference stream itself must satisfy the
// uniform-region promise across line-aligned iteration shifts.
func iterSkipEquivalence(t *testing.T, ref, sub trace.Generator, j, frac int) bool {
	t.Helper()
	want := drainGen(ref)
	fw, ok := sub.(trace.IterForwardable)
	if !ok {
		t.Fatal("generator does not implement trace.IterForwardable")
	}
	var it trace.Item
	taken := int64(0)
	for i := 0; i < j; i++ {
		it.Reset()
		if !sub.Next(&it) {
			return true // script shorter than j: nothing to check
		}
		taken++
	}
	for !fw.AtIterBoundary() {
		it.Reset()
		if !sub.Next(&it) {
			return true
		}
		taken++
	}
	u := fw.ItersRemaining()
	st := fw.IterStride()
	ii := fw.IterItems()
	if u < 0 || ii <= 0 {
		t.Fatalf("ItersRemaining=%d IterItems=%d", u, ii)
	}
	if u == 0 || st == 0 {
		return true // no uniform region here: nothing to skip
	}
	abs := st
	if abs < 0 {
		abs = -abs
	}
	align := phys.LineSize / gcd64(abs, phys.LineSize)
	if u >= align+1 {
		for q := taken; q < taken+ii && q+align*ii < int64(len(want)); q++ {
			a, b := want[q], want[q+align*ii]
			if len(a.Acc) != len(b.Acc) || a.Demand != b.Demand || a.Units != b.Units {
				t.Errorf("iteration image mismatch at item %d (+%d iters): structure differs", q, align)
				return false
			}
			for x := range a.Acc {
				if b.Acc[x].Addr != a.Acc[x].Addr+phys.Addr(align*st) || b.Acc[x].Write != a.Acc[x].Write {
					t.Errorf("iteration image mismatch at item %d acc %d: %+v -> %+v, stride %d", q, x, a.Acc[x], b.Acc[x], align*st)
					return false
				}
			}
		}
	}
	m := u * int64(frac%100+1) / 100
	m -= m % align
	if m <= 0 {
		return true
	}
	fw.SkipIters(m)
	got := drainGen(sub)
	tail := want[taken+m*ii:]
	if len(got) != len(tail) {
		t.Errorf("j=%d m=%d: %d items after SkipIters, want %d", j, m, len(got), len(tail))
		return false
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], tail[i]) {
			t.Errorf("j=%d m=%d: item %d after SkipIters differs:\n got  %+v\n want %+v", j, m, i, got[i], tail[i])
			return false
		}
	}
	return true
}

// TestIterSkipEquivalence fuzzes SkipIters/ItersRemaining on the LBM
// generator across layouts, loop structures, team sizes, positions and
// skip widths.
func TestIterSkipEquivalence(t *testing.T) {
	f := func(nB, thB, jB, fracB uint8) bool {
		n := int64(8 + nB%9)
		threads := int(thB%4) + 1
		layout := IJKv
		if nB%2 == 0 {
			layout = IvJK
		}
		mk := func() trace.Generator {
			spec := TraceSpec{
				N: n, Layout: layout,
				OldBase: 0x1000000, NewBase: 0x8000000, MaskBase: 0xf000000,
				Fused: thB%2 == 0, Sched: omp.StaticBlock{}, Sweeps: 1 + int(thB%2),
			}
			return spec.Program(threads).Gens[int(jB)%threads]
		}
		return iterSkipEquivalence(t, mk(), mk(), int(jB%80), int(fracB))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
