package lbm

import (
	"math"
	"testing"

	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/trace"
)

func TestVelocitySetStructure(t *testing.T) {
	// D3Q19: weights sum to 1, velocities sum to zero, opposites match.
	var ws float64
	var sx, sy, sz int
	for v := 0; v < Q; v++ {
		ws += W[v]
		sx += Cx[v]
		sy += Cy[v]
		sz += Cz[v]
		o := Opp[v]
		if Cx[o] != -Cx[v] || Cy[o] != -Cy[v] || Cz[o] != -Cz[v] {
			t.Fatalf("Opp[%d]=%d is not the opposite", v, o)
		}
	}
	if math.Abs(ws-1) > 1e-15 {
		t.Errorf("weights sum to %g", ws)
	}
	if sx != 0 || sy != 0 || sz != 0 {
		t.Errorf("velocity set not symmetric: (%d,%d,%d)", sx, sy, sz)
	}
}

func TestEquilibriumMoments(t *testing.T) {
	rho, ux, uy, uz := 1.1, 0.02, -0.01, 0.03
	var m0, mx, my, mz float64
	for v := 0; v < Q; v++ {
		f := Equilibrium(v, rho, ux, uy, uz)
		m0 += f
		mx += f * float64(Cx[v])
		my += f * float64(Cy[v])
		mz += f * float64(Cz[v])
	}
	if math.Abs(m0-rho) > 1e-14 {
		t.Errorf("equilibrium density %g, want %g", m0, rho)
	}
	if math.Abs(mx-rho*ux) > 1e-14 || math.Abs(my-rho*uy) > 1e-14 || math.Abs(mz-rho*uz) > 1e-14 {
		t.Errorf("equilibrium momentum (%g,%g,%g)", mx, my, mz)
	}
}

func TestUniformStateIsStationary(t *testing.T) {
	for _, layout := range []Layout{IJKv, IvJK} {
		f := NewField(6, layout, 1.2)
		// Periodic-free box: fully open (no walls), uniform fluid at rest
		// surrounded by ghost cells initialized implicitly to zero would
		// leak; instead close the box with walls on all faces.
		for z := 1; z <= f.N; z++ {
			for y := 1; y <= f.N; y++ {
				for x := 1; x <= f.N; x++ {
					if x == 1 || x == f.N || y == 1 || y == f.N || z == 1 || z == f.N {
						f.SetSolid(x, y, z)
					}
				}
			}
		}
		f.Init(1, 0, 0, 0)
		m0 := f.Mass()
		f.Run(20)
		rho, jx, jy, jz := f.Moments(3, 3, 3)
		if math.Abs(rho-1) > 1e-12 {
			t.Errorf("%s: uniform state drifted to rho=%g", layout.Name(), rho)
		}
		if math.Abs(jx)+math.Abs(jy)+math.Abs(jz) > 1e-12 {
			t.Errorf("%s: spurious momentum (%g,%g,%g)", layout.Name(), jx, jy, jz)
		}
		if math.Abs(f.Mass()-m0) > 1e-9 {
			t.Errorf("%s: mass drifted by %g", layout.Name(), f.Mass()-m0)
		}
	}
}

func TestLayoutsProduceIdenticalPhysics(t *testing.T) {
	mk := func(l Layout) *Field {
		f := NewField(8, l, 1.4)
		f.WallsY()
		f.Force = 1e-5
		f.Init(1, 0, 0, 0)
		// Close remaining faces to make the domain finite.
		for z := 1; z <= f.N; z++ {
			for y := 1; y <= f.N; y++ {
				for x := 1; x <= f.N; x++ {
					if x == 1 || x == f.N || z == 1 || z == f.N {
						f.SetSolid(x, y, z)
					}
				}
			}
		}
		f.Run(30)
		return f
	}
	a, b := mk(IJKv), mk(IvJK)
	for y := 1; y <= a.N; y++ {
		ra, ja, _, _ := a.Moments(4, y, 4)
		rb, jb, _, _ := b.Moments(4, y, 4)
		if math.Abs(ra-rb) > 1e-13 || math.Abs(ja-jb) > 1e-13 {
			t.Fatalf("layouts diverge at y=%d: (%g,%g) vs (%g,%g)", y, ra, ja, rb, jb)
		}
	}
}

func TestPoiseuilleProfile(t *testing.T) {
	// Body-forced channel flow between y-walls, periodic along x and z:
	// the x-velocity profile must be concave, symmetric, and fastest at
	// the center.
	f := NewField(14, IvJK, 1.0)
	f.WallsY()
	f.PeriodicX = true
	f.PeriodicZ = true
	f.Force = 1e-6
	f.Init(1, 0, 0, 0)
	f.Run(400)
	prof := f.VelocityProfileX()
	// prof[0] and prof[N-1] are walls (zero samples skipped).
	mid := f.N / 2
	if prof[mid] <= 0 {
		t.Fatalf("no flow developed: %v", prof)
	}
	for y := 2; y <= mid; y++ {
		if prof[y-1] < prof[y-2] {
			t.Fatalf("profile not monotone toward center: %v", prof)
		}
	}
	// Symmetry.
	for y := 1; y < f.N/2; y++ {
		a, b := prof[y], prof[f.N-1-y]
		if b == 0 {
			continue
		}
		if math.Abs(a-b) > 0.05*math.Abs(prof[mid]) {
			t.Fatalf("profile asymmetric at %d: %g vs %g", y, a, b)
		}
	}
}

func TestMassConservationUnderFlow(t *testing.T) {
	f := NewField(10, IJKv, 1.6)
	f.WallsY()
	// Close all faces so mass cannot leave.
	for z := 1; z <= f.N; z++ {
		for y := 1; y <= f.N; y++ {
			for x := 1; x <= f.N; x++ {
				if x == 1 || x == f.N || z == 1 || z == f.N {
					f.SetSolid(x, y, z)
				}
			}
		}
	}
	f.Init(1, 0, 0, 0)
	m0 := f.Mass()
	f.Force = 1e-6
	f.Run(100)
	if rel := math.Abs(f.Mass()-m0) / m0; rel > 1e-6 {
		t.Errorf("mass drift %g under forcing", rel)
	}
}

func TestMassConservationPeriodicChannel(t *testing.T) {
	f := NewField(10, IvJK, 1.4)
	f.WallsY()
	f.PeriodicX = true
	f.PeriodicZ = true
	f.Init(1, 0, 0, 0)
	m0 := f.Mass()
	f.Force = 1e-6
	f.Run(200)
	if rel := math.Abs(f.Mass()-m0) / m0; rel > 1e-9 {
		t.Errorf("mass drift %g in periodic channel", rel)
	}
}

// ---- layout index and trace ---------------------------------------------------

func TestLayoutIndexBijective(t *testing.T) {
	p := 6
	for _, l := range []Layout{IJKv, IvJK} {
		seen := make(map[int]bool)
		for v := 0; v < Q; v++ {
			for z := 0; z < p; z++ {
				for y := 0; y < p; y++ {
					for x := 0; x < p; x++ {
						idx := l.Index(p, v, x, y, z)
						if idx < 0 || idx >= l.Size(p) {
							t.Fatalf("%s: index %d out of range", l.Name(), idx)
						}
						if seen[idx] {
							t.Fatalf("%s: index collision at %d", l.Name(), idx)
						}
						seen[idx] = true
					}
				}
			}
		}
	}
}

func TestVStride(t *testing.T) {
	if IvJK.VStride(66) != 66 {
		t.Errorf("IvJK stride %d", IvJK.VStride(66))
	}
	if IJKv.VStride(66) != 66*66*66 {
		t.Errorf("IJKv stride %d", IJKv.VStride(66))
	}
}

func TestTraceUnitsAndCoverage(t *testing.T) {
	n := int64(10)
	for _, fused := range []bool{false, true} {
		spec := TraceSpec{
			N: n, Layout: IvJK,
			OldBase: 0x1000000, NewBase: 0x8000000, MaskBase: 0xf000000,
			Fused: fused, Sched: omp.StaticBlock{}, Sweeps: 2,
		}
		p := spec.Program(4)
		var units int64
		var it trace.Item
		for _, g := range p.Gens {
			for {
				it.Reset()
				if !g.Next(&it) {
					break
				}
				units += it.Units
			}
		}
		if want := 2 * n * n * n; units != want {
			t.Errorf("fused=%v: %d site updates, want %d", fused, units, want)
		}
	}
}

func TestTraceReadsAndWritesAllStreams(t *testing.T) {
	n := int64(8)
	spec := TraceSpec{
		N: n, Layout: IJKv,
		OldBase: 0x1000000, NewBase: 0x8000000, MaskBase: 0xf000000,
		Sched: omp.StaticBlock{}, Sweeps: 1,
	}
	p := spec.Program(1)
	var it trace.Item
	reads := map[phys.Addr]bool{}
	writes := map[phys.Addr]bool{}
	for {
		it.Reset()
		if !p.Gens[0].Next(&it) {
			break
		}
		for _, a := range it.Acc {
			if a.Write {
				writes[a.Addr] = true
			} else {
				reads[a.Addr] = true
			}
		}
	}
	// Every distribution function of every interior cell must be read:
	// check a sample of v-planes by verifying a line of each v-stream
	// appears.
	pdim := int(n + 2)
	for v := 0; v < Q; v++ {
		idx := IJKv.Index(pdim, v, 1, 1, 1)
		line := phys.LineOf(0x1000000 + phys.Addr(idx*8))
		if !reads[line] {
			t.Fatalf("v=%d stream never read", v)
		}
		widx := IJKv.Index(pdim, v, 1+Cx[v], 1+Cy[v], 1+Cz[v])
		wline := phys.LineOf(0x8000000 + phys.Addr(widx*8))
		if !writes[wline] {
			t.Fatalf("v=%d push stream never written", v)
		}
	}
}
