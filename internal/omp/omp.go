// Package omp reproduces the OpenMP loop-scheduling semantics the paper's
// kernels rely on: schedule(static) block partitioning, schedule(static,1)
// round-robin (decisive for the Jacobi solver in Sect. 2.3), dynamic and
// guided self-scheduling, and outer-loop coalescing ("fused I-J" in
// Sect. 2.4, which removes the sawtooth modulo effect in Fig. 7).
//
// Assigners hand out iteration chunks. For the self-scheduling policies the
// order of Next calls matters; the chip's event engine calls Next in
// simulation-time order, which is exactly the semantics of a work queue.
package omp

import "fmt"

// Chunk is a half-open iteration range [Lo, Hi).
type Chunk struct{ Lo, Hi int64 }

// Len returns the number of iterations in the chunk.
func (c Chunk) Len() int64 { return c.Hi - c.Lo }

// Assigner hands out chunks of a single parallel loop instance to threads.
// Next returns the next chunk for the given thread and ok=false when the
// thread has no further work.
type Assigner interface {
	Next(thread int) (Chunk, bool)
}

// Schedule creates Assigners for loop instances of a given trip count and
// team size.
type Schedule interface {
	Assigner(n int64, threads int) Assigner
	String() string
	// PerThread reports whether the schedule's assignment to a thread is a
	// pure function of that thread's own grab sequence — true for the
	// static policies, whose assigners only touch per-thread state, false
	// for the self-scheduling policies (dynamic, guided), whose shared grab
	// counter makes the assignment depend on the cross-thread order of
	// Next calls. Kernels propagate this to trace.Program.SharedSched; the
	// chip's sharded engine runs only per-thread programs, because shards
	// consume their strands' generators in an order that differs from
	// global simulation-time order.
	PerThread() bool
}

// ---- schedule(static) -------------------------------------------------

// StaticBlock is schedule(static) with no chunk size: the iteration space
// is split into one contiguous block per thread, the first n%T threads
// receiving one extra iteration (the floor/ceil split the paper describes
// for its manual segmented scheduling).
type StaticBlock struct{}

// Assigner implements Schedule.
func (StaticBlock) Assigner(n int64, threads int) Assigner {
	return &staticBlock{n: n, threads: threads, done: make([]bool, threads)}
}

// String returns "static".
func (StaticBlock) String() string { return "static" }

// PerThread reports true: each thread's block depends on the thread alone.
func (StaticBlock) PerThread() bool { return true }

type staticBlock struct {
	n       int64
	threads int
	done    []bool
}

func (a *staticBlock) Next(t int) (Chunk, bool) {
	if t < 0 || t >= a.threads || a.done[t] {
		return Chunk{}, false
	}
	a.done[t] = true
	q := a.n / int64(a.threads)
	r := a.n % int64(a.threads)
	var lo int64
	if int64(t) < r {
		lo = int64(t) * (q + 1)
	} else {
		lo = r*(q+1) + (int64(t)-r)*q
	}
	hi := lo + q
	if int64(t) < r {
		hi++
	}
	if lo >= hi {
		return Chunk{}, false
	}
	return Chunk{lo, hi}, true
}

// ---- schedule(static, chunk) -------------------------------------------

// StaticChunk is schedule(static, Size): chunks of Size iterations are
// dealt round-robin to the team. StaticChunk{Size: 1} is the "static,1"
// schedule that the Jacobi experiment requires.
type StaticChunk struct{ Size int64 }

// Assigner implements Schedule.
func (s StaticChunk) Assigner(n int64, threads int) Assigner {
	size := s.Size
	if size <= 0 {
		size = 1
	}
	return &staticChunk{n: n, threads: threads, size: size, k: make([]int64, threads)}
}

// String returns "static,<size>".
func (s StaticChunk) String() string { return fmt.Sprintf("static,%d", s.Size) }

// PerThread reports true: the round-robin deal is per-thread arithmetic.
func (StaticChunk) PerThread() bool { return true }

type staticChunk struct {
	n, size int64
	threads int
	k       []int64 // per-thread round counter
}

func (a *staticChunk) Next(t int) (Chunk, bool) {
	if t < 0 || t >= a.threads {
		return Chunk{}, false
	}
	lo := (int64(t) + a.k[t]*int64(a.threads)) * a.size
	if lo >= a.n {
		return Chunk{}, false
	}
	a.k[t]++
	hi := lo + a.size
	if hi > a.n {
		hi = a.n
	}
	return Chunk{lo, hi}, true
}

// ---- schedule(dynamic, chunk) -------------------------------------------

// Dynamic is schedule(dynamic, Size): threads grab the next chunk from a
// shared counter when they become idle.
type Dynamic struct{ Size int64 }

// Assigner implements Schedule.
func (d Dynamic) Assigner(n int64, threads int) Assigner {
	size := d.Size
	if size <= 0 {
		size = 1
	}
	return &dynamic{n: n, size: size}
}

// String returns "dynamic,<size>".
func (d Dynamic) String() string { return fmt.Sprintf("dynamic,%d", d.Size) }

// PerThread reports false: grabs come from a shared counter, so the
// assignment depends on the cross-thread order of Next calls.
func (Dynamic) PerThread() bool { return false }

type dynamic struct {
	n, size, next int64
}

func (a *dynamic) Next(int) (Chunk, bool) {
	if a.next >= a.n {
		return Chunk{}, false
	}
	lo := a.next
	hi := lo + a.size
	if hi > a.n {
		hi = a.n
	}
	a.next = hi
	return Chunk{lo, hi}, true
}

// ---- schedule(guided, min) ----------------------------------------------

// Guided is schedule(guided, Min): each grab takes ceil(remaining/threads)
// iterations, never fewer than Min.
type Guided struct{ Min int64 }

// Assigner implements Schedule.
func (g Guided) Assigner(n int64, threads int) Assigner {
	min := g.Min
	if min <= 0 {
		min = 1
	}
	return &guided{n: n, min: min, threads: int64(threads)}
}

// String returns "guided,<min>".
func (g Guided) String() string { return fmt.Sprintf("guided,%d", g.Min) }

// PerThread reports false: like Dynamic, guided grabs are order-sensitive.
func (Guided) PerThread() bool { return false }

type guided struct {
	n, next, min, threads int64
}

func (a *guided) Next(int) (Chunk, bool) {
	if a.next >= a.n {
		return Chunk{}, false
	}
	remaining := a.n - a.next
	size := (remaining + a.threads - 1) / a.threads
	if size < a.min {
		size = a.min
	}
	lo := a.next
	hi := lo + size
	if hi > a.n {
		hi = a.n
	}
	a.next = hi
	return Chunk{lo, hi}, true
}

// ---- loop coalescing ------------------------------------------------------

// Split2 maps a coalesced index in [0, n1*n2) back to the (i1, i2) pair of
// a fused two-deep loop nest, i1 being the outer index. It is the inverse
// of the "coalesce several outer loop levels" transformation of Sect. 2.4.
func Split2(idx, n2 int64) (i1, i2 int64) { return idx / n2, idx % n2 }

var (
	_ Schedule = StaticBlock{}
	_ Schedule = StaticChunk{}
	_ Schedule = Dynamic{}
	_ Schedule = Guided{}
)
