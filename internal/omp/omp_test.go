package omp

import (
	"testing"
	"testing/quick"
)

// coverage runs an assigner to exhaustion and returns how many times each
// iteration was handed out.
func coverage(a Assigner, n int64, threads int) []int {
	counts := make([]int, n)
	for t := 0; t < threads; t++ {
		for {
			c, ok := a.Next(t)
			if !ok {
				break
			}
			for i := c.Lo; i < c.Hi; i++ {
				counts[i]++
			}
		}
	}
	return counts
}

func exactlyOnce(t *testing.T, s Schedule, n int64, threads int) {
	t.Helper()
	counts := coverage(s.Assigner(n, threads), n, threads)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("%s: iteration %d assigned %d times (n=%d, t=%d)", s.String(), i, c, n, threads)
		}
	}
}

func TestSchedulesCoverExactlyOnce(t *testing.T) {
	scheds := []Schedule{StaticBlock{}, StaticChunk{Size: 1}, StaticChunk{Size: 7},
		Dynamic{Size: 3}, Guided{Min: 2}}
	for _, s := range scheds {
		exactlyOnce(t, s, 100, 8)
		exactlyOnce(t, s, 7, 8) // fewer iterations than threads
		exactlyOnce(t, s, 64, 64)
		exactlyOnce(t, s, 1, 1)
	}
}

func TestCoverageProperty(t *testing.T) {
	f := func(n16 uint16, t8 uint8, chunk8 uint8) bool {
		n := int64(n16%1000) + 1
		threads := int(t8%64) + 1
		chunk := int64(chunk8%16) + 1
		for _, s := range []Schedule{StaticBlock{}, StaticChunk{Size: chunk}, Dynamic{Size: chunk}, Guided{Min: chunk}} {
			counts := coverage(s.Assigner(n, threads), n, threads)
			for _, c := range counts {
				if c != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStaticBlockSplit(t *testing.T) {
	// The paper's manual split: sizes floor(N/t)+1 and floor(N/t).
	a := StaticBlock{}.Assigner(10, 4)
	want := []Chunk{{0, 3}, {3, 6}, {6, 8}, {8, 10}}
	for tid, w := range want {
		c, ok := a.Next(tid)
		if !ok || c != w {
			t.Errorf("thread %d chunk %+v, want %+v", tid, c, w)
		}
		if _, ok := a.Next(tid); ok {
			t.Errorf("thread %d got a second chunk from static block", tid)
		}
	}
}

func TestStaticChunkRoundRobin(t *testing.T) {
	a := StaticChunk{Size: 1}.Assigner(10, 4)
	// Thread 1 must get iterations 1, 5, 9.
	var got []int64
	for {
		c, ok := a.Next(1)
		if !ok {
			break
		}
		got = append(got, c.Lo)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 5 || got[2] != 9 {
		t.Errorf("static,1 thread 1 chunks %v", got)
	}
}

func TestDynamicIsSharedQueue(t *testing.T) {
	a := Dynamic{Size: 2}.Assigner(6, 4)
	c1, _ := a.Next(3)
	c2, _ := a.Next(0)
	c3, _ := a.Next(3)
	if c1 != (Chunk{0, 2}) || c2 != (Chunk{2, 4}) || c3 != (Chunk{4, 6}) {
		t.Errorf("dynamic grabs %+v %+v %+v", c1, c2, c3)
	}
}

func TestGuidedShrinks(t *testing.T) {
	a := Guided{Min: 1}.Assigner(100, 4)
	c1, _ := a.Next(0)
	c2, _ := a.Next(0)
	if c1.Len() <= c2.Len() {
		t.Errorf("guided chunks do not shrink: %d then %d", c1.Len(), c2.Len())
	}
}

func TestSplit2(t *testing.T) {
	i1, i2 := Split2(17, 5)
	if i1 != 3 || i2 != 2 {
		t.Errorf("Split2(17, 5) = (%d, %d)", i1, i2)
	}
}

func TestScheduleStrings(t *testing.T) {
	if (StaticChunk{Size: 1}).String() != "static,1" {
		t.Error("static,1 label")
	}
	if (StaticBlock{}).String() != "static" {
		t.Error("static label")
	}
}
