// Package cpu models the execution resources of the UltraSPARC T2 cores
// that matter for memory-bound and arithmetic-bound kernels:
//
//   - each core supports eight strands in two groups of four; only one
//     strand per group issues in any cycle, so each group contributes at
//     most one instruction per cycle (modeled as a shared issue cursor);
//   - each core has a single floating-point pipeline shared by all eight
//     strands (one MULT or ADD per cycle, no FMA);
//   - each core has two memory pipelines (two load/store issues per cycle).
//
// A strand that waits for a memory reference is parked and costs nothing;
// the chip package models that by simply not scheduling the strand until
// its data returns. The constraint of a single outstanding cache miss per
// strand lives in the chip's strand state machine, not here.
package cpu

import (
	"fmt"

	"repro/internal/sim"
)

// Demand is the per-work-item instruction demand of a strand, in
// element-level operation counts.
type Demand struct {
	MemOps int64 // load/store instructions
	Flops  int64 // floating-point operations
	IntOps int64 // integer/branch/address operations
}

// Add returns d + o componentwise.
func (d Demand) Add(o Demand) Demand {
	return Demand{d.MemOps + o.MemOps, d.Flops + o.Flops, d.IntOps + o.IntOps}
}

// Scale returns d with every component multiplied by k.
func (d Demand) Scale(k int64) Demand {
	return Demand{d.MemOps * k, d.Flops * k, d.IntOps * k}
}

// Total returns the total instruction count.
func (d Demand) Total() int64 { return d.MemOps + d.Flops + d.IntOps }

// Config describes the core array.
type Config struct {
	Cores         int
	GroupsPerCore int
	LSUPipes      int64 // load/store issues per cycle per core
}

// T2Defaults returns the T2 core array: 8 cores, 2 thread groups each, 2
// memory pipes per core.
func T2Defaults() Config { return Config{Cores: 8, GroupsPerCore: 2, LSUPipes: 2} }

// Cores tracks the shared pipeline cursors of every core.
type Cores struct {
	cfg   Config
	issue []sim.Cursor // per (core, group): 1 instruction/cycle
	fpu   []sim.Cursor // per core: 1 flop/cycle
	lsu   []sim.Cursor // per core: LSUPipes mem ops/cycle
}

// New builds the core array.
func New(cfg Config) *Cores {
	if cfg.Cores <= 0 || cfg.GroupsPerCore <= 0 || cfg.LSUPipes <= 0 {
		panic(fmt.Sprintf("cpu: invalid config %+v", cfg))
	}
	return &Cores{
		cfg:   cfg,
		issue: make([]sim.Cursor, cfg.Cores*cfg.GroupsPerCore),
		fpu:   make([]sim.Cursor, cfg.Cores),
		lsu:   make([]sim.Cursor, cfg.Cores),
	}
}

// Config returns the core-array configuration.
func (c *Cores) Config() Config { return c.cfg }

// Compute charges a work item's instruction demand to the shared pipes of
// (core, group) for a strand whose data became available at time now, and
// returns the cycle at which the strand can issue its next memory request.
// The completion time is the latest of the three pipeline completions: the
// strand cannot run ahead of its group's issue slot, its core's FPU, or its
// core's memory pipes.
func (c *Cores) Compute(now sim.Time, core, group int, d Demand) sim.Time {
	done := now
	if t := d.Total(); t > 0 {
		_, id := c.issue[core*c.cfg.GroupsPerCore+group].Acquire(now, t)
		if id > done {
			done = id
		}
	}
	if d.Flops > 0 {
		_, fd := c.fpu[core].Acquire(now, d.Flops)
		if fd > done {
			done = fd
		}
	}
	if d.MemOps > 0 {
		dur := (d.MemOps + c.cfg.LSUPipes - 1) / c.cfg.LSUPipes
		_, ld := c.lsu[core].Acquire(now, dur)
		if ld > done {
			done = ld
		}
	}
	return done
}

// FPUBusy returns the busy cycles of core's floating-point pipe.
func (c *Cores) FPUBusy(core int) int64 { return c.fpu[core].Busy() }

// TotalFPUBusy sums FPU busy cycles over all cores.
func (c *Cores) TotalFPUBusy() int64 {
	var t int64
	for i := range c.fpu {
		t += c.fpu[i].Busy()
	}
	return t
}

// TotalIssueBusy sums group-issue busy cycles over all groups.
func (c *Cores) TotalIssueBusy() int64 {
	var t int64
	for i := range c.issue {
		t += c.issue[i].Busy()
	}
	return t
}

// ForEachCursor visits every pipeline cursor in a fixed order (group issue
// slots, FPUs, memory pipes) — the enumeration the chip's fast-forward
// uses to snapshot, fingerprint and shift pipeline state.
func (c *Cores) ForEachCursor(f func(cur *sim.Cursor)) {
	for i := range c.issue {
		f(&c.issue[i])
	}
	for i := range c.fpu {
		f(&c.fpu[i])
	}
	for i := range c.lsu {
		f(&c.lsu[i])
	}
}

// CoreCursors visits one core's pipeline cursors in a fixed order (its
// issue groups, its FPU, its memory pipes). It exists for per-core
// checkpointing: the sharded engine assigns whole cores to shards, and a
// speculating shard snapshots and restores exactly the cores it owns.
func (c *Cores) CoreCursors(core int, f func(cur *sim.Cursor)) {
	for g := 0; g < c.cfg.GroupsPerCore; g++ {
		f(&c.issue[core*c.cfg.GroupsPerCore+g])
	}
	f(&c.fpu[core])
	f(&c.lsu[core])
}

// Reset clears all pipeline cursors.
func (c *Cores) Reset() {
	for i := range c.issue {
		c.issue[i].Reset()
	}
	for i := range c.fpu {
		c.fpu[i].Reset()
	}
	for i := range c.lsu {
		c.lsu[i].Reset()
	}
}
