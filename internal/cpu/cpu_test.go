package cpu

import "testing"

func TestComputeChargesIssue(t *testing.T) {
	c := New(Config{Cores: 1, GroupsPerCore: 1, LSUPipes: 2})
	d := Demand{MemOps: 4, Flops: 2, IntOps: 2}
	done := c.Compute(0, 0, 0, d)
	// Issue: 8 instructions at 1/cycle dominates FPU (2) and LSU (2).
	if done != 8 {
		t.Errorf("compute done at %d, want 8 (issue-bound)", done)
	}
}

func TestFPUSharedWithinCore(t *testing.T) {
	c := New(Config{Cores: 1, GroupsPerCore: 2, LSUPipes: 2})
	d := Demand{Flops: 100}
	// Two strands in different groups share one FPU: the second completes
	// after 200 cycles, not 100.
	first := c.Compute(0, 0, 0, d)
	second := c.Compute(0, 0, 1, d)
	if first != 100 || second != 200 {
		t.Errorf("FPU sharing: first %d, second %d; want 100, 200", first, second)
	}
	if c.FPUBusy(0) != 200 {
		t.Errorf("FPU busy %d", c.FPUBusy(0))
	}
}

func TestGroupsIssueIndependently(t *testing.T) {
	c := New(Config{Cores: 1, GroupsPerCore: 2, LSUPipes: 2})
	d := Demand{IntOps: 50}
	a := c.Compute(0, 0, 0, d)
	b := c.Compute(0, 0, 1, d)
	if a != 50 || b != 50 {
		t.Errorf("independent groups serialized: %d, %d", a, b)
	}
	// Same group serializes.
	e := c.Compute(0, 0, 0, d)
	if e != 100 {
		t.Errorf("same-group issue %d, want 100", e)
	}
}

func TestLSURate(t *testing.T) {
	c := New(Config{Cores: 1, GroupsPerCore: 4, LSUPipes: 2})
	// 10 mem ops at 2/cycle = 5 cycles, but issue (10 instr at 1/cy)
	// dominates within one group; use separate groups to observe LSU.
	c.Compute(0, 0, 0, Demand{MemOps: 100})
	done := c.Compute(0, 0, 1, Demand{MemOps: 100})
	// Group 1's issue takes 100; core LSU has 50 cycles backlog from
	// group 0, so LSU gives 50+50 = 100: equal; then a third:
	done = c.Compute(0, 0, 2, Demand{MemOps: 100})
	if done != 150 {
		t.Errorf("third strand LSU-bound completion %d, want 150", done)
	}
}

func TestZeroDemand(t *testing.T) {
	c := New(Config{Cores: 2, GroupsPerCore: 2, LSUPipes: 2})
	if done := c.Compute(42, 1, 1, Demand{}); done != 42 {
		t.Errorf("zero demand completed at %d", done)
	}
}

func TestDemandHelpers(t *testing.T) {
	d := Demand{1, 2, 3}.Add(Demand{10, 20, 30}).Scale(2)
	if d != (Demand{22, 44, 66}) {
		t.Errorf("demand arithmetic gave %+v", d)
	}
	if d.Total() != 132 {
		t.Errorf("total %d", d.Total())
	}
}

func TestTotals(t *testing.T) {
	c := New(Config{Cores: 2, GroupsPerCore: 2, LSUPipes: 2})
	c.Compute(0, 0, 0, Demand{Flops: 10, IntOps: 5})
	c.Compute(0, 1, 1, Demand{Flops: 7})
	if c.TotalFPUBusy() != 17 {
		t.Errorf("total FPU busy %d", c.TotalFPUBusy())
	}
	if c.TotalIssueBusy() != 22 {
		t.Errorf("total issue busy %d", c.TotalIssueBusy())
	}
	c.Reset()
	if c.TotalFPUBusy() != 0 {
		t.Error("reset did not clear FPU cursors")
	}
}
