package mem

import (
	"testing"

	"repro/internal/phys"
)

func cfg() Config {
	return Config{ReadService: 10, WriteService: 20, WriteCouple: 4, Latency: 100, QueueDepth: 4}
}

func TestReadTiming(t *testing.T) {
	s := New(cfg(), phys.T2())
	if done := s.Read(0, 0); done != 110 {
		t.Errorf("first read done at %d, want service+latency=110", done)
	}
	// Second read to the same controller queues behind the first.
	if done := s.Read(0, 0x200); done != 120 {
		t.Errorf("queued read done at %d, want 120", done)
	}
	// A different controller is independent.
	if done := s.Read(0, 0x80); done != 110 {
		t.Errorf("other-controller read done at %d, want 110", done)
	}
}

func TestWriteIsPostedAndCouples(t *testing.T) {
	s := New(cfg(), phys.T2())
	s.Write(0, 0) // occupies southbound, couples 4 cycles northbound
	if done := s.Read(0, 0); done != 114 {
		t.Errorf("read after write done at %d, want couple(4)+service(10)+latency(100)=114", done)
	}
	st := s.Stats()
	if st[0].Writes != 1 || st[0].Reads != 1 {
		t.Errorf("stats %+v", st[0])
	}
}

func TestLoadOnlyAvoidsCoupling(t *testing.T) {
	// The Sect. 2.1 conjecture: load-dominated kernels avoid bidirectional
	// overhead. n reads with writes interleaved must take longer than n
	// reads alone.
	a := New(cfg(), phys.T2())
	b := New(cfg(), phys.T2())
	var lastA, lastB int64
	for i := 0; i < 10; i++ {
		lastA = a.Read(0, 0)
		b.Write(0, 0)
		lastB = b.Read(0, 0)
	}
	if lastB <= lastA {
		t.Errorf("mixed read/write stream (%d) not slower than load-only (%d)", lastB, lastA)
	}
}

func TestQueueFull(t *testing.T) {
	s := New(cfg(), phys.T2())
	for i := 0; i < 4; i++ {
		s.Read(0, 0)
	}
	if !s.Full(0, 0) {
		t.Error("queue not full after QueueDepth reads at one instant")
	}
	if s.Full(0, 0x80) {
		t.Error("other controller reported full")
	}
	// After the backlog drains, the queue accepts again.
	if s.Full(39, 0) {
		t.Error("queue still full after drain")
	}
	if s.Full(1<<40, 0) {
		t.Error("idle queue full")
	}
}

func TestUtilizationAndBusy(t *testing.T) {
	s := New(cfg(), phys.T2())
	s.Read(0, 0)
	s.Read(0, 0)
	u := s.Utilization(100)
	if u[0] != 0.2 {
		t.Errorf("controller 0 utilization %f, want 0.2", u[0])
	}
	if s.BusyCycles() != 20 {
		t.Errorf("busy cycles %d", s.BusyCycles())
	}
	if s.MaxFreeAt() != 20 {
		t.Errorf("max free at %d", s.MaxFreeAt())
	}
}

func TestControllerSelectionByMapping(t *testing.T) {
	s := New(cfg(), phys.T2())
	// 0x000 -> ctl 0, 0x080 -> ctl 1, 0x100 -> ctl 2, 0x180 -> ctl 3.
	for i, a := range []phys.Addr{0x000, 0x080, 0x100, 0x180} {
		s.Read(0, a)
		if got := s.Stats()[i].Reads; got != 1 {
			t.Errorf("controller %d reads %d after targeted access", i, got)
		}
	}
}

func TestResetClearsState(t *testing.T) {
	s := New(cfg(), phys.T2())
	s.Read(0, 0)
	s.Reset()
	if s.BusyCycles() != 0 || s.MaxFreeAt() != 0 {
		t.Error("reset did not clear controller state")
	}
}
