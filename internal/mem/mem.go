// Package mem models dual-channel FB-DIMM memory controllers — four on
// the T2, but the controller count is taken from the address mapping, so
// machine profiles with one, two or eight controllers reuse the same
// model. FB-DIMM links are unidirectional: reads return on the
// northbound lanes, writes are pushed on the southbound lanes, so each
// controller is modeled as two FCFS channel cursors. Writes additionally
// steal WriteCouple cycles of northbound occupancy (command/turnaround
// overhead on the shared AMB path) — the model of the paper's Sect. 2.1
// conjecture that "at least part of the problem is caused by overhead for
// bidirectional transfers": kernels that mix reads and writebacks pay it,
// load-only kernels do not.
package mem

import (
	"fmt"

	"repro/internal/phys"
	"repro/internal/sim"
)

// Config holds controller timing parameters, all in core cycles per
// 64-byte line.
type Config struct {
	ReadService  int64 // northbound occupancy per line read
	WriteService int64 // southbound occupancy per line write
	WriteCouple  int64 // northbound occupancy stolen by each write
	Latency      int64 // pipeline latency added to reads after service
	// QueueDepth is the northbound request-queue capacity. When the queue
	// is full the crossbar NACKs the requester, which must retry. Finite
	// queues are what make address-aliasing convoys persistent: strands
	// rejected together retry together instead of acquiring staggered
	// fair-queue slots, so congruent streams keep hitting one controller
	// "at a time" exactly as Sect. 2.1 describes. 0 disables the limit.
	QueueDepth int64
}

// Defaults returns the FB-DIMM channel timings calibrated so that the
// simulated chip lands in the paper's measured ranges (see DESIGN.md
// Sect. 6). The timings are per-channel properties, independent of how
// many controllers an address interleave spreads them over, so every
// machine profile shares them.
func Defaults() Config {
	return Config{ReadService: 15, WriteService: 15, WriteCouple: 4, Latency: 160, QueueDepth: 8}
}

// CtlStats are per-controller traffic counters.
type CtlStats struct {
	Reads      int64
	Writes     int64
	BusyCycles int64 // northbound + southbound occupancy
}

// Lines returns the total number of line transfers.
func (s CtlStats) Lines() int64 { return s.Reads + s.Writes }

type controller struct {
	north sim.Cursor // read-return channel
	south sim.Cursor // write channel
	stats CtlStats
}

// System is the set of memory controllers behind the L2. The address
// mapping is devirtualized at construction time (phys.Resolve), so the
// per-request controller selection in Full/Read/Write is an inlined bit
// extraction for the common field mappings.
type System struct {
	cfg        Config
	mapped     phys.Resolved
	ctls       []controller
	fullThresh int64 // QueueDepth * ReadService, 0 when unlimited
}

// New builds a controller system with one controller per mapping target.
func New(cfg Config, mapping phys.Mapping) *System {
	if cfg.ReadService <= 0 || cfg.WriteService <= 0 || cfg.Latency < 0 || cfg.WriteCouple < 0 {
		panic(fmt.Sprintf("mem: invalid config %+v", cfg))
	}
	s := &System{cfg: cfg, mapped: phys.Resolve(mapping), ctls: make([]controller, mapping.Controllers())}
	if cfg.QueueDepth > 0 {
		s.fullThresh = cfg.QueueDepth * cfg.ReadService
	}
	return s
}

// Config returns the timing parameters.
func (s *System) Config() Config { return s.cfg }

// Full reports whether the northbound queue of the controller serving addr
// has no room for another request at time now. Callers must retry later.
func (s *System) Full(now sim.Time, addr phys.Addr) bool {
	return s.FullCtl(now, s.mapped.Controller(addr))
}

// Controller returns the controller index serving addr through the
// devirtualized mapping — the handle a NACK-retry loop caches so its ticks
// skip the address decode.
func (s *System) Controller(addr phys.Addr) int { return s.mapped.Controller(addr) }

// FullCtl is Full for a pre-resolved controller index.
func (s *System) FullCtl(now sim.Time, ctl int) bool {
	if s.fullThresh == 0 {
		return false
	}
	return s.ctls[ctl].north.FreeAt()-now >= s.fullThresh
}

// Read issues a demand or RFO line read arriving at the controller at time
// now and returns the time at which the data is back at the L2.
func (s *System) Read(now sim.Time, addr phys.Addr) sim.Time {
	c := &s.ctls[s.mapped.Controller(addr)]
	_, done := c.north.Acquire(now, s.cfg.ReadService)
	c.stats.Reads++
	c.stats.BusyCycles += s.cfg.ReadService
	return done + s.cfg.Latency
}

// Write issues a posted line write (a dirty writeback). Nothing waits for
// it; it consumes southbound bandwidth and couples WriteCouple cycles onto
// the northbound channel. The southbound completion time is returned for
// tests.
func (s *System) Write(now sim.Time, addr phys.Addr) sim.Time {
	c := &s.ctls[s.mapped.Controller(addr)]
	_, done := c.south.Acquire(now, s.cfg.WriteService)
	if s.cfg.WriteCouple > 0 {
		c.north.Acquire(now, s.cfg.WriteCouple)
	}
	c.stats.Writes++
	c.stats.BusyCycles += s.cfg.WriteService + s.cfg.WriteCouple
	return done
}

// Stats returns a copy of the per-controller counters.
func (s *System) Stats() []CtlStats {
	out := make([]CtlStats, len(s.ctls))
	s.StatsInto(out)
	return out
}

// StatsInto copies the per-controller counters into dst (one entry per
// controller) without allocating.
func (s *System) StatsInto(dst []CtlStats) {
	for i := range s.ctls {
		dst[i] = s.ctls[i].stats
	}
}

// AddStats credits k periods' worth of per-controller counter deltas — the
// accounting half of a fast-forwarded steady-state interval. Channel
// cursor occupancy is forwarded separately through ForEachCursor.
func (s *System) AddStats(k int64, d []CtlStats) {
	for i := range d {
		s.ctls[i].stats.Reads += k * d[i].Reads
		s.ctls[i].stats.Writes += k * d[i].Writes
		s.ctls[i].stats.BusyCycles += k * d[i].BusyCycles
	}
}

// ForEachCursor visits every channel cursor in a fixed order (northbound
// then southbound, per controller) — the enumeration the chip's
// fast-forward uses to snapshot, fingerprint and shift channel state.
func (s *System) ForEachCursor(f func(c *sim.Cursor)) {
	for i := range s.ctls {
		f(&s.ctls[i].north)
		f(&s.ctls[i].south)
	}
}

// CtlCursors returns controller i's channel cursors. It exists for
// per-controller checkpointing: the sharded engine partitions controllers
// across shards, and a speculating shard must snapshot and restore exactly
// the channels it owns. ForEachCursor already hands out the same mutable
// cursors; this is the random-access form.
func (s *System) CtlCursors(i int) (north, south *sim.Cursor) {
	return &s.ctls[i].north, &s.ctls[i].south
}

// CtlStatsAt returns controller i's counters by value — the snapshot half
// of a per-controller checkpoint.
func (s *System) CtlStatsAt(i int) CtlStats { return s.ctls[i].stats }

// SetCtlStatsAt overwrites controller i's counters — the rollback half.
func (s *System) SetCtlStatsAt(i int, st CtlStats) { s.ctls[i].stats = st }

// BusyCycles returns the summed channel occupancy across controllers.
func (s *System) BusyCycles() int64 {
	var t int64
	for i := range s.ctls {
		t += s.ctls[i].stats.BusyCycles
	}
	return t
}

// MaxFreeAt returns the latest time any controller channel is still busy.
func (s *System) MaxFreeAt() sim.Time {
	var t sim.Time
	for i := range s.ctls {
		if f := s.ctls[i].north.FreeAt(); f > t {
			t = f
		}
		if f := s.ctls[i].south.FreeAt(); f > t {
			t = f
		}
	}
	return t
}

// Utilization returns each controller's northbound busy fraction over the
// horizon — the "uniform utilization of all four memory controllers"
// metric. Northbound only: it is the contended resource for the kernels
// studied.
func (s *System) Utilization(horizon sim.Time) []float64 {
	out := make([]float64, len(s.ctls))
	if horizon <= 0 {
		return out
	}
	for i := range s.ctls {
		out[i] = s.ctls[i].north.Utilization(horizon)
	}
	return out
}

// Reset clears all controller state and counters.
func (s *System) Reset() {
	for i := range s.ctls {
		s.ctls[i] = controller{}
	}
}
