//go:build faultinject

package chip

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/faults"
)

// TestInjectedFFDeclineIsInvisible forces every validated fast-forward
// jump through the rollback checkpoint path — snapshot, replay, restore,
// stats rewind — and asserts the declined run is byte-identical to both
// the committed-jump run and full event-by-event simulation. This is the
// "fingerprint mismatch → rollback + declined jump" recovery proof: a
// decline may only cost time, never a result byte.
func TestInjectedFFDeclineIsInvisible(t *testing.T) {
	const n, off, threads = 1 << 15, 8, 16
	committed := New(t2cfg()).Run(triadProgAt(n, off, threads))
	if committed.FFJumps == 0 {
		t.Fatal("baseline run committed no jumps; the decline test would be vacuous")
	}

	faults.Arm(&faults.Plan{Seed: 1, DeclineJumps: true})
	defer faults.Disarm()
	declined := New(t2cfg()).Run(triadProgAt(n, off, threads))
	if st := faults.Stats(); st.FFDeclines == 0 {
		t.Fatal("no declines injected; the rollback path never ran")
	}
	if declined.FFJumps != 0 {
		t.Fatalf("run committed %d jumps with every candidate vetoed", declined.FFJumps)
	}

	cfgOff := t2cfg()
	cfgOff.DisableFastForward = true
	full := New(cfgOff).Run(triadProgAt(n, off, threads))

	if !reflect.DeepEqual(stripFF(declined), stripFF(full)) {
		t.Errorf("declined jumps changed the result vs full simulation:\n declined: %+v\n full:     %+v", declined, full)
	}
	if !reflect.DeepEqual(stripFF(declined), stripFF(committed)) {
		t.Errorf("declined jumps changed the result vs committed jumps:\n declined:  %+v\n committed: %+v", declined, committed)
	}
}

// TestInjectedShardStallTripsWatchdog delays one shard deterministically
// (plan-driven, once) so the barrier watchdog trips with diagnostics, then
// proves the very next run on the same machine — the stall plan spent —
// succeeds and matches a fresh machine. This is the "wedged shard →
// watchdog trip" recovery proof in its injectable form.
func TestInjectedShardStallTripsWatchdog(t *testing.T) {
	faults.Arm(&faults.Plan{Seed: 2, StallShard: 1, StallEpoch: 5, StallFor: 400 * time.Millisecond, StallOnce: true})
	defer faults.Disarm()

	cfg := t2cfg()
	m := New(cfg)
	_, err := m.RunShardedCtx(context.Background(), marchingProg(8, 4000), ShardOptions{Workers: 2, Watchdog: 30 * time.Millisecond})
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("stalled shard returned %v, want *WatchdogError", err)
	}
	if st := faults.Stats(); st.ShardStalls != 1 {
		t.Fatalf("ShardStalls = %d, want exactly 1 (StallOnce)", st.ShardStalls)
	}
	if len(we.Shards) != 4 {
		t.Fatalf("diagnostics cover %d shards, want 4", len(we.Shards))
	}

	got, err := m.RunShardedCtx(context.Background(), marchingProg(8, 40), ShardOptions{Workers: 2, Watchdog: 30 * time.Second})
	if err != nil {
		t.Fatalf("retry after the one-shot stall failed: %v", err)
	}
	want := New(cfg).RunSharded(marchingProg(8, 40), 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("retry after watchdog trip diverged from a fresh machine:\n got:  %+v\n want: %+v", got, want)
	}
}

// TestInjectedSpecRollbackStorm fails every speculative burst validation
// (SpecConflictEvery: 1), so each burst rolls every shard back to its
// checkpoint and re-executes conservatively until the throttle collapses
// speculation to sticky-off: depth 8 → 4 → 2, then four min-depth strikes
// — at most six rollbacks, zero commits. The recovery proof is that the
// storm is invisible in the results: byte-identical to the conservative
// run at every worker count, under -race.
func TestInjectedSpecRollbackStorm(t *testing.T) {
	cfg := t2cfg()
	cfg.RunAhead = 0 // mail-free workload + no parking: a burst attempt at every boundary
	m := New(cfg)
	ref, err := m.RunShardedCtx(context.Background(), computeProg(16, 400), ShardOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	faults.Arm(&faults.Plan{Seed: 4, SpecConflictEvery: 1})
	defer faults.Disarm()
	for _, workers := range []int{1, 2, 4} {
		storm, err := m.RunShardedCtx(context.Background(), computeProg(16, 400),
			ShardOptions{Workers: workers, Speculate: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if storm.SpecCommits != 0 {
			t.Fatalf("workers=%d: %d bursts committed with every validation vetoed", workers, storm.SpecCommits)
		}
		if storm.SpecRollbacks == 0 || storm.SpecRollbacks > 6 {
			t.Fatalf("workers=%d: SpecRollbacks = %d, want 1..6 (throttle must collapse: 8→4→2, then %d strikes)",
				workers, storm.SpecRollbacks, specMaxStrikes)
		}
		if g, w := specNorm(storm), specNorm(ref); !reflect.DeepEqual(g, w) {
			t.Fatalf("workers=%d: rollback storm changed the result:\n got  %+v\n want %+v", workers, g, w)
		}
	}
	if st := faults.Stats(); st.SpecConflicts == 0 {
		t.Fatal("no conflicts injected; the rollback path never ran")
	}
}

// TestInjectedSpecMixedConflicts fails every third burst (ordinals 0, 3,
// 6, ...), interleaving commits and rollbacks so the throttle oscillates
// — the path where a committed burst's state survives a later rollback's
// restore. Results must stay byte-identical to the conservative run.
func TestInjectedSpecMixedConflicts(t *testing.T) {
	cfg := t2cfg()
	cfg.RunAhead = 0
	m := New(cfg)
	ref, err := m.RunShardedCtx(context.Background(), computeProg(16, 400), ShardOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	faults.Arm(&faults.Plan{Seed: 5, SpecConflictEvery: 3})
	defer faults.Disarm()
	mixed, err := m.RunShardedCtx(context.Background(), computeProg(16, 400),
		ShardOptions{Workers: 2, Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	if mixed.SpecCommits == 0 || mixed.SpecRollbacks == 0 {
		t.Fatalf("want interleaved commits and rollbacks, got commits=%d rollbacks=%d",
			mixed.SpecCommits, mixed.SpecRollbacks)
	}
	if g, w := specNorm(mixed), specNorm(ref); !reflect.DeepEqual(g, w) {
		t.Fatalf("mixed conflicts changed the result:\n got  %+v\n want %+v", g, w)
	}
	if st := faults.Stats(); st.SpecConflicts == 0 {
		t.Fatal("no conflicts injected")
	}
}

// TestInjectedStepCancel halts the sequential engine at a seed-derived
// event step — the deterministic stand-in for "context cancelled at a
// randomized engine step" — and asserts the clean-abort contract: a
// CancelError, partial telemetry, and a reusable machine.
func TestInjectedStepCancel(t *testing.T) {
	plan := &faults.Plan{Seed: 3}
	plan.CancelStep = plan.CancelStepIn(2_000, 20_000)
	faults.Arm(plan)
	defer faults.Disarm()

	cfg := t2cfg()
	cfg.DisableFastForward = true
	m := New(cfg)
	res, err := m.RunCtx(context.Background(), marchingProg(16, 100_000))
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("budgeted run returned %v, want *CancelError", err)
	}
	if res.Cycles <= 0 {
		t.Fatalf("partial result has no clock horizon: %+v", res)
	}
	if st := faults.Stats(); st.StepCancels != 1 {
		t.Fatalf("StepCancels = %d, want 1", st.StepCancels)
	}

	faults.Disarm()
	got := m.Run(marchingProg(8, 40))
	want := New(cfg).Run(marchingProg(8, 40))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("machine state leaked across an injected cancel:\n got:  %+v\n want: %+v", got, want)
	}
}
