package chip

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// specNorm zeroes the loop-telemetry fields that may legitimately differ
// between speculative and non-speculative executions of the same program:
// epoch/round accounting and the Spec* counters. Every remaining byte —
// cycles, stalls, traffic, counters, per-controller stats — must match.
func specNorm(r Result) Result {
	r.Epochs, r.BatchedEpochs, r.BarrierStalls = 0, 0, 0
	r.BusyShardRounds, r.BusyShardPct = 0, 0
	r.SpecEpochs, r.SpecCommits, r.SpecRollbacks = 0, 0, 0
	return r
}

// computeProg builds a program of compute-only strands: no memory
// accesses, so no cross-shard mail ever — the workload on which every
// speculative burst must validate and commit.
func computeProg(threads, items int) *trace.Program {
	gens := make([]trace.Generator, threads)
	for i := range gens {
		s := &scripted{}
		for j := 0; j < items; j++ {
			s.items = append(s.items, trace.Item{Units: 1, Demand: demandOf(50)})
		}
		gens[i] = s
	}
	return prog(gens...)
}

// TestSpeculativeEquivalence is the speculation contract: simulation
// output is byte-identical with speculation on or off, at every worker
// count, on every topology — commits, rollbacks and throttle collapse
// included. Only loop telemetry may differ.
func TestSpeculativeEquivalence(t *testing.T) {
	for name, cfg := range shardedConfigs() {
		t.Run(name, func(t *testing.T) {
			m := New(cfg)
			run := func(workers int, spec bool) Result {
				if d := cfg.Mapping.Controllers(); workers > d {
					workers = d
				}
				r, err := m.RunShardedCtx(context.Background(), marchingProg(16, 120),
					ShardOptions{Workers: workers, Speculate: spec})
				if err != nil {
					t.Fatalf("workers=%d speculate=%v: %v", workers, spec, err)
				}
				if r.Shards == 0 {
					t.Fatalf("workers=%d speculate=%v unexpectedly fell back", workers, spec)
				}
				return r
			}
			want := specNorm(run(1, false))
			var specRef *Result
			for _, workers := range []int{1, 2, 4} {
				got := run(workers, true)
				if g := specNorm(got); !reflect.DeepEqual(g, want) {
					t.Fatalf("workers=%d speculative run diverged from conservative:\n got  %+v\n want %+v",
						workers, g, want)
				}
				// Full Result — Spec* and loop telemetry included — must be
				// worker-invariant among speculative runs.
				if specRef == nil {
					specRef = &got
				} else if !reflect.DeepEqual(got, *specRef) {
					t.Fatalf("speculative telemetry not worker-invariant at workers=%d:\n got  %+v\n want %+v",
						workers, got, *specRef)
				}
			}
			// A fresh machine must agree with the cached one.
			fresh, err := New(cfg).RunShardedCtx(context.Background(), marchingProg(16, 120),
				ShardOptions{Workers: 1, Speculate: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fresh, *specRef) {
				t.Fatalf("fresh speculative machine diverged from cached:\n got  %+v\n want %+v", fresh, *specRef)
			}
			// And dropping the option on the cached machine must restore the
			// plain batched loop, telemetry included.
			again := run(2, false)
			if again.SpecEpochs != 0 || again.SpecCommits != 0 || again.SpecRollbacks != 0 {
				t.Errorf("non-speculative run reports speculation telemetry: %+v", again)
			}
		})
	}
}

// TestSpeculativeCommits pins the profitable path: on a workload with no
// cross-shard mail every burst validates, the throttle grows the depth,
// and nearly the whole run executes inside committed bursts — while the
// results stay byte-identical to the conservative loop.
func TestSpeculativeCommits(t *testing.T) {
	cfg := t2cfg()
	cfg.RunAhead = 0 // no parking: isolates the mail-horizon condition
	m := New(cfg)
	ref, err := m.RunShardedCtx(context.Background(), computeProg(16, 400), ShardOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := m.RunShardedCtx(context.Background(), computeProg(16, 400),
		ShardOptions{Workers: 2, Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Shards == 0 || ref.Shards == 0 {
		t.Fatal("expected sharded runs")
	}
	if spec.SpecCommits == 0 {
		t.Fatal("no bursts committed on a mail-free workload")
	}
	if spec.SpecRollbacks != 0 {
		t.Fatalf("SpecRollbacks = %d on a mail-free workload, want 0", spec.SpecRollbacks)
	}
	if spec.SpecEpochs*2 < spec.BatchedEpochs {
		t.Errorf("only %d of %d micro-epochs ran inside bursts; the throttle never opened up",
			spec.SpecEpochs, spec.BatchedEpochs)
	}
	if g, w := specNorm(spec), specNorm(ref); !reflect.DeepEqual(g, w) {
		t.Fatalf("speculative run diverged:\n got  %+v\n want %+v", g, w)
	}
}

// TestSpeculateRequiresBatching pins the configuration gate.
func TestSpeculateRequiresBatching(t *testing.T) {
	m := New(t2cfg())
	_, err := m.RunShardedCtx(context.Background(), marchingProg(8, 40),
		ShardOptions{Workers: 2, Speculate: true, NoBatch: true})
	if !errors.Is(err, ErrSpeculateNoBatch) {
		t.Fatalf("err = %v, want ErrSpeculateNoBatch", err)
	}
}

// TestSpeculativeRelaxedWidth checks that speculation composes with the
// relaxed wide-epoch mode: same relaxed results as the non-speculative
// relaxed run, worker-invariant.
func TestSpeculativeRelaxedWidth(t *testing.T) {
	m := New(t2cfg())
	w := m.EpochWidth()
	run := func(workers int, spec bool) Result {
		r, err := m.RunShardedCtx(context.Background(), marchingProg(8, 60),
			ShardOptions{Workers: workers, EpochWidth: 2 * w, Speculate: spec})
		if err != nil {
			t.Fatalf("workers=%d speculate=%v: %v", workers, spec, err)
		}
		return r
	}
	want := specNorm(run(1, false))
	ref := run(1, true)
	if g := specNorm(ref); !reflect.DeepEqual(g, want) {
		t.Fatalf("speculative relaxed run diverged from conservative relaxed run:\n got  %+v\n want %+v", g, want)
	}
	for _, workers := range []int{2, 4} {
		if got := run(workers, true); !reflect.DeepEqual(got, ref) {
			t.Fatalf("speculative relaxed run not worker-invariant at workers=%d", workers)
		}
	}
}

// TestSpecThrottle pins the adaptive depth policy: halve on rollback,
// double after specGrowAfter clean commits, cap at specKMax, and collapse
// to sticky-off after specMaxStrikes min-depth rollbacks.
func TestSpecThrottle(t *testing.T) {
	th := specThrottle{k: specKInit}
	th.rollback()
	if th.k != specKInit/2 {
		t.Fatalf("after one rollback k = %d, want %d", th.k, specKInit/2)
	}
	for th.k > specKMin {
		th.rollback()
	}
	for i := 0; i < specMaxStrikes-1; i++ {
		th.rollback()
		if th.k != specKMin {
			t.Fatalf("strike %d collapsed k to %d before the strike budget", i+1, th.k)
		}
	}
	th.commit() // a commit clears strikes
	if th.strikes != 0 {
		t.Fatalf("commit left strikes = %d", th.strikes)
	}
	for i := 0; i < specMaxStrikes; i++ {
		th.rollback()
	}
	if th.k != 0 {
		t.Fatalf("k = %d after %d min-depth strikes, want sticky 0", th.k, specMaxStrikes)
	}
	th = specThrottle{k: specKMin}
	for grown := specKMin; grown < specKMax; grown *= 2 {
		for i := 0; i < specGrowAfter; i++ {
			if th.k != int64(grown) {
				t.Fatalf("k = %d mid-streak, want %d", th.k, grown)
			}
			th.commit()
		}
	}
	if th.k != specKMax {
		t.Fatalf("k = %d after sustained commits, want %d", th.k, specKMax)
	}
	for i := 0; i < 2*specGrowAfter; i++ {
		th.commit()
	}
	if th.k != specKMax {
		t.Fatalf("k = %d grew past the cap", th.k)
	}
}

// TestCheckpointRestoreProperty is the snapshot property test, run
// differentially against a machine that never speculated: drive two
// identical machines through the same conservative epochs, checkpoint
// every shard of one, speculate it several epochs further (replay logging
// on, deliveries suppressed — the real burst execution), force a restore,
// and require every shard's captured state — wheel image, L2 bank image,
// cursors, strand records, window, counters — to be bit-identical to the
// never-speculated machine's. Then run both to completion through the
// conservative loop and require byte-identical Results, which proves the
// replay log hands back exactly the items the generators produced during
// the discarded burst.
func TestCheckpointRestoreProperty(t *testing.T) {
	cfg := t2cfg()
	mk := func() *parState {
		return New(cfg).preparePar(marchingProg(16, 120), ShardOptions{})
	}
	ps1, ps2 := mk(), mk()

	// One conservative single-worker epoch step, shared by both machines.
	step := func(ps *parState, end *sim.Time) bool {
		a := newSpecAgg()
		for _, sh := range ps.shards {
			sh.deliver()
			sh.runEpoch()
			a.add(sh)
		}
		gm := a.localMin
		wake := ps.anyWake(gm, a.parkMin)
		if a.pending == 0 && !wake {
			return false
		}
		start := *end
		if !wake && a.earliest >= 0 && sim.Time(a.earliest) > start {
			start += (sim.Time(a.earliest) - start) / ps.w * ps.w
		}
		newEnd := start + ps.w
		for _, sh := range ps.shards {
			ps.boundary(sh, gm, *end, newEnd)
		}
		*end = newEnd
		return true
	}
	end1 := ps1.shards[0].epochEnd
	end2 := ps2.shards[0].epochEnd
	for i := 0; i < 50; i++ {
		if !step(ps1, &end1) || !step(ps2, &end2) {
			t.Fatal("run terminated before the checkpoint point; grow the program")
		}
	}

	// Checkpoint machine 1 and speculate it N epochs further, exactly as a
	// burst would: replay logging on, no deliveries, cursor advanced per
	// epoch. Validity of the burst is irrelevant — restore must be exact
	// even for a burst that would have failed validation.
	const burst = 12
	for _, sh := range ps1.shards {
		sh.checkpoint()
		sh.specLog = true
	}
	for k := 0; k < burst; k++ {
		for _, sh := range ps1.shards {
			sh.runEpoch()
		}
		for _, sh := range ps1.shards {
			sh.epochEnd += ps1.w
		}
	}
	for _, sh := range ps1.shards {
		sh.restore()
		sh.specLog = false
	}

	// Re-checkpoint both machines and compare the captured state directly:
	// bit-identical shard images, strand records and counters.
	for i, sh := range ps1.shards {
		sh2 := ps2.shards[i]
		var ck shardCkpt
		sh.ckpt = shardCkpt{} // drop retained capacity so DeepEqual sees content only
		sh.checkpoint()
		ck = sh.ckpt
		sh2.ckpt = shardCkpt{}
		sh2.checkpoint()
		if !reflect.DeepEqual(ck, sh2.ckpt) {
			t.Fatalf("shard %d state differs after forced restore:\n got  %+v\n want %+v", i, ck, sh2.ckpt)
		}
	}

	// Both machines must now run to completion identically — machine 1
	// replaying the burst's logged items from its replay log.
	for step(ps1, &end1) {
	}
	for step(ps2, &end2) {
	}
	r1 := ps1.collect(cfg, marchingProg(16, 120))
	r2 := ps2.collect(cfg, marchingProg(16, 120))
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("post-restore completion diverged:\n got  %+v\n want %+v", r1, r2)
	}
}
