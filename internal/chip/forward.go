// Steady-state fast-forward: the paper's kernels are perfectly periodic in
// their steady state, so once the machine's observable state recurs, the
// remaining iterations replay the observed period verbatim and can be
// applied analytically — advance the clock, shift every FCFS cursor, credit
// every counter with (periods x per-period delta), and Skip the generators
// — instead of simulating them event by event.
//
// Exactness, not approximation, is the contract: the final Result must be
// byte-identical to full simulation. Three mechanisms enforce it.
//
//  1. Eligibility. Every generator must implement trace.Forwardable, which
//     restricts fast-forward to reuse-free streaming kernels — the only
//     workloads whose future hit/miss behaviour does not depend on the tag
//     store entries a skipped interval would have installed. The address
//     mapping must expose a spatial period (hashed interleaves do not and
//     opt out wholesale).
//
//  2. Detection + validation. Once per completed leader work item the chip
//     fingerprints everything that drives future evolution relative to
//     (now, absolute addresses): per-strand progress and blocked state,
//     in-flight item accesses and generator pattern phase modulo the
//     interleave period, the pending event queue relative to now, every
//     FCFS cursor's backlog, and the run-ahead window. A repeated
//     fingerprint yields a candidate period; the candidate must then
//     reproduce the exact counter deltas of its defining period over one
//     further simulated period before any state is touched.
//
//  3. Bounds. The jump multiplier is capped so the skipped span (a) stays
//     inside every generator's uniform region — no chunk edge, partial
//     item or sweep boundary is ever extrapolated over — and (b) never
//     crosses an L2 capacity turnover (a multiple of the cache's line
//     capacity in cumulative misses), where the victim population — and
//     with it the writeback pattern — changes regime.
//
// Everything the fingerprint abstracts away is either provably inert for
// eligible kernels (absolute tag values: streaming accesses miss
// regardless) or revalidated each period (per-bank traffic, victim
// dirtiness). The equivalence tests in chip and bench run every figure
// family and machine profile both ways and require deep equality.
//
// Iteration granularity. Stencil kernels (Jacobi, LBM) are never uniform
// per work item — neighbouring row-steps re-touch each other's lines — but
// whole outer iterations translate by a constant byte stride, so the same
// machinery runs at a second granularity: samples are taken only at the
// leader's iteration boundaries (trace.IterForwardable), addresses are
// folded relative to the leader's iteration reference, and bank/controller
// cursors are enumerated rotation-canonically. The reference-relative fold
// is what makes strides that are NOT multiples of the interleave period
// recur: after P iterations the machine state repeats as a pure
// bank/controller ROTATION (P*stride mod period, when that offset is a
// multiple of the controller span), and the jump applies the validated
// per-period deltas through that rotation — rotated cursor permutation,
// rotated controller credits, and a per-victim controller-rotation check
// in the replay. The replay itself uses real addresses against the real
// tag store, which is exactly why reuse-ful kernels are eligible at this
// granularity: skipped iterations' installs, evictions and hits are
// computed, not extrapolated (DESIGN.md Sect. 11).
package chip

import (
	"repro/internal/cache"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ffSampleBudget bounds how many fingerprint samples a run may take before
// the detector gives up. Steady states that are going to be caught at all
// are caught within a few dozen samples of settling (the contended 64-
// thread microstates never recur at any horizon — see DESIGN.md Sect. 9),
// so a small budget keeps the detector's cost negligible on runs it cannot
// help. A committed jump refunds the budget: post-jump regimes (a new
// plane, a post-turnover victim population) are new steady states worth a
// fresh search.
const ffSampleBudget = 128

// ffIterSampleBudget is the iteration-granular budget. Samples are much
// rarer here — one per leader x-row rather than one per work item — and
// rotation periods can reach the controller count times the natural
// period, so the detector may legitimately need a few hundred boundaries
// to lock.
const ffIterSampleBudget = 512

// Detector granularities: per leader work item (PR 4's reuse-free
// streaming mode) or per leader outer iteration (stencil mode).
const (
	ffModeItem = iota
	ffModeIter
)

// ffCapacityZoneSets widens the protected window around an L2 capacity
// turnover, in per-set insert counts. The turnover is not a point: each
// set wraps at its own phase of the streams' cyclic sweep, so the victim
// population — and with it the writeback rate — shifts over a window of
// several inserts per set. Jumps must neither cross nor land inside that
// window; it is always crossed by real simulation, and the detector then
// re-locks onto the post-turnover steady state.
const ffCapacityZoneSets = 4

// cursorSnap is one FCFS cursor's accounting at a sample (and, in deltas,
// its per-period advance).
type cursorSnap struct {
	free sim.Time
	busy sim.Time
	ops  int64
}

// ffSnap is the full counter snapshot taken with a fingerprint sample.
// Everything needed to (a) compute per-period deltas and (b) apply them k
// times over is here; slices are pooled across samples and runs.
type ffSnap struct {
	idx      int64 // leader items completed at the sample
	now      sim.Time
	steps    uint64
	units    int64
	repBytes int64

	loadStall    int64
	storeStall   int64
	computeStall int64
	retryStall   int64
	retries      int64

	items []int64 // per strand
	l2    cache.Stats
	l2B   []cache.Stats
	mc    []mem.CtlStats
	cur   []cursorSnap
}

// ffDelta is the per-period state advance between two matching samples.
type ffDelta struct {
	dt         sim.Time
	steps      uint64
	units      int64
	repBytes   int64
	itemsTotal int64

	loadStall    int64
	storeStall   int64
	computeStall int64
	retryStall   int64
	retries      int64

	items []int64
	l2    cache.Stats
	l2B   []cache.Stats
	mc    []mem.CtlStats
	cur   []cursorSnap // busy/ops advances; free is implied by dt
}

// ffSighting remembers where a fingerprint was recently seen. Two
// sightings are kept because consecutive repeats can be locked to a
// misaligned spacing forever (e.g. a 4-iteration coincidence whose byte
// shift cuts a controller span) while the doubled spacing is aligned;
// measuring the period against both the last and the one-before sighting
// lets the detector escape such a cascade.
type ffSighting struct {
	old  *ffSnap // sighting before last (nil until the fingerprint repeats)
	last *ffSnap
}

// ffCandidate is a detected-but-unvalidated period. In item mode,
// validation takes two further simulated periods: the first re-proves the
// counter deltas, the second does so again while yielding the per-access
// address strides between two consecutively recorded period traces. In
// iteration mode one further period suffices — the address stride is known
// analytically from the generators' iteration stride, so the single leg
// both re-proves the (rotated) counter deltas and records the trace the
// jump will replay.
type ffCandidate struct {
	fp     uint64
	period int64 // in leader items (item mode) or leader iteration boundaries
	at     int64 // sample index of the next validation checkpoint
	stage  int   // 1: first validation pending, 2: second (stride) pending
	base   *ffSnap
	d      ffDelta

	// Iteration mode only: the per-period translation and its interleave
	// rotation. Each strand completes iters whole iterations per period,
	// every access address advances by stride = iters * istride bytes, and
	// the machine's bank/controller pattern rotates by rotB banks / rotC
	// controllers per period.
	iters   int64
	istride int64
	stride  int64
	rotB    int
	rotC    int
}

// ffAccess is one recorded cache access of a validation period, including
// its outcome. The outcome is what makes the replay a proof: relative
// machine state is pinned by the fingerprint, generator output by the
// per-access strides, and cache behaviour by the outcome sequence — and a
// deterministic simulator evolving from equal state under equal inputs
// with equal cache outcomes replays the validated period exactly, timing
// included.
type ffAccess struct {
	addr   phys.Addr
	write  bool
	hit    bool
	vdirty bool
	// vctl is the victim line's memory controller when vdirty. Iteration-
	// mode jumps credit controller writeback traffic through the period's
	// rotation, so the replay must prove every victim's controller rotates
	// with the pattern — an aggregate count match alone could hide two
	// victims swapping controllers.
	vctl int8
}

// ffRecLimit caps the recorded trace length; a period with more accesses
// than this is too long to replay profitably and is not fast-forwarded.
const ffRecLimit = 1 << 15

// ffIterRecLimit is the iteration-mode cap. Whole-iteration periods of a
// large stencil run reach hundreds of thousands of accesses (a full
// controller rotation of a 192^3 LBM plane is ~8 rows x ~38 lines x 25
// items); replaying them is still far cheaper than event simulation, so
// the cap is correspondingly higher.
const ffIterRecLimit = 1 << 20

// ffState is the per-run fast-forward machinery, embedded in runState so
// its maps, pools and slices persist across a reused machine's runs.
type ffState struct {
	on      bool
	pending bool // leader completed an item: sample at end of this event
	mode    int  // ffModeItem or ffModeIter
	window  int64
	budget  int
	leader  *strand
	gens    []trace.Forwardable
	igens   []trace.IterForwardable // iteration mode only
	bidx    int64                   // leader iteration boundaries seen (iter-mode sample index)

	// Interleave geometry for the rotation-canonical fingerprint (iter
	// mode): window = granule*nbanks = ctlSpan*nctls, verified affine in
	// ffInit.
	nbanks  int
	nctls   int
	granule int64
	ctlSpan int64
	curs    []*sim.Cursor // canonical cursor order, cached per run

	capLines int64 // L2 capacity in lines
	warm     int64 // pre-filled warm lines

	seen    map[uint64]ffSighting
	pool    []*ffSnap
	cand    ffCandidate
	candSet bool
	vd      ffDelta // validation scratch

	// Access-trace recording for the tag-store replay: the cache accesses
	// of the two most recent validation periods and the per-access address
	// stride between them.
	recOn    bool
	rec      []ffAccess
	recPrev  []ffAccess
	strides  []int64
	l2BPre   []cache.Stats // replay verification scratch
	l2BPost  []cache.Stats
	rollback cache.Image // pre-replay checkpoint for declined jumps

	// Rotation-jump scratch (iter mode).
	rotSnap []cursorSnap
	mcAdd   []mem.CtlStats

	// Telemetry surfaced in Result.
	items   int64    // work items covered analytically
	cycles  int64    // cycles covered analytically
	period  sim.Time // last detected period in cycles (0: none)
	jumps   int64    // committed analytic jumps
	skipped int64    // engine steps covered analytically
}

// clearSeen recycles every remembered sighting into the snapshot pool.
func (ff *ffState) clearSeen() {
	for h, s := range ff.seen {
		if s.old != nil {
			ff.pool = append(ff.pool, s.old)
		}
		ff.pool = append(ff.pool, s.last)
		delete(ff.seen, h)
	}
}

// ffReset recycles all detector state at the start of a run.
func (rs *runState) ffReset() {
	ff := &rs.ff
	ff.clearSeen()
	if ff.candSet {
		ff.pool = append(ff.pool, ff.cand.base)
	}
	ff.on, ff.pending, ff.candSet = false, false, false
	ff.recOn = false
	ff.rec, ff.recPrev = ff.rec[:0], ff.recPrev[:0]
	ff.items, ff.cycles, ff.period = 0, 0, 0
	ff.jumps, ff.skipped = 0, 0
	ff.leader = nil
	ff.gens = ff.gens[:0]
	ff.igens = ff.igens[:0]
	ff.curs = ff.curs[:0]
	ff.mode, ff.bidx = ffModeItem, 0
}

// ffInit arms the detector if the run qualifies: fast-forward not disabled,
// a field mapping with a spatial period, and every generator Forwardable
// (item granularity) or, failing that, IterForwardable (iteration
// granularity — which additionally requires per-thread scheduling and an
// affine modular interleave, since rotated jumps permute banks and
// controllers arithmetically).
func (rs *runState) ffInit(prog *trace.Program) {
	if rs.cfg.DisableFastForward {
		return
	}
	w := rs.cfg.Mapping.Period()
	if w <= 0 {
		return // hashed interleave: no spatial phase to fingerprint against
	}
	ff := &rs.ff
	itemOK := true
	for _, g := range prog.Gens {
		fg, ok := g.(trace.Forwardable)
		if !ok {
			itemOK = false
			ff.gens = ff.gens[:0]
			break
		}
		ff.gens = append(ff.gens, fg)
	}
	if itemOK {
		ff.mode = ffModeItem
		ff.budget = ffSampleBudget
	} else {
		if !rs.ffInitIter(prog, w) {
			return
		}
	}
	ff.on = true
	ff.window = w
	ff.leader = rs.strands[0]
	ff.capLines = rs.cfg.L2.SizeBytes / rs.cfg.L2.LineSize
	ff.warm = prog.WarmLines
	if ff.seen == nil {
		ff.seen = make(map[uint64]ffSighting)
	}
}

// ffInitIter checks iteration-granularity eligibility and, on success,
// fills the rotation geometry. The interleave must be affine modular —
// bank(a) = (a/granule) mod banks, ctl(a) = (a/ctlSpan) mod ctls — for a
// rotation to BE a permutation of equals; this is verified by sampling,
// not assumed, so an exotic Mapping silently falls back to full
// simulation. Shared-order schedules are refused: SkipIters on one strand
// would reorder the global grab sequence the remaining strands see.
func (rs *runState) ffInitIter(prog *trace.Program, w int64) bool {
	ff := &rs.ff
	if prog.SharedSched {
		return false
	}
	if w&(w-1) != 0 {
		return false // reference-relative folds need the pow2 wraparound
	}
	for _, g := range prog.Gens {
		ig, ok := g.(trace.IterForwardable)
		if !ok {
			ff.igens = ff.igens[:0]
			return false
		}
		ff.igens = append(ff.igens, ig)
	}
	m := rs.cfg.Mapping
	nb, nc := m.Banks(), m.Controllers()
	if nb <= 0 || nc <= 0 || w%int64(nb) != 0 || w%int64(nc) != 0 {
		ff.igens = ff.igens[:0]
		return false
	}
	granule, ctlSpan := w/int64(nb), w/int64(nc)
	if ctlSpan%granule != 0 {
		ff.igens = ff.igens[:0]
		return false
	}
	for _, base := range []phys.Addr{0, 1 << 40} {
		for off := int64(0); off < w; off += granule {
			a := base + phys.Addr(off)
			if m.Bank(a) != int(uint64(a)/uint64(granule)%uint64(nb)) ||
				m.Controller(a) != int(uint64(a)/uint64(ctlSpan)%uint64(nc)) {
				ff.igens = ff.igens[:0]
				return false
			}
		}
	}
	ff.mode = ffModeIter
	ff.budget = ffIterSampleBudget
	ff.bidx = 0
	ff.nbanks, ff.nctls = nb, nc
	ff.granule, ff.ctlSpan = granule, ctlSpan
	ff.curs = ff.curs[:0]
	rs.ffCursors(func(c *sim.Cursor) { ff.curs = append(ff.curs, c) })
	return true
}

// ffDisarm turns the detector off and recycles its snapshots.
func (rs *runState) ffDisarm() {
	ff := &rs.ff
	ff.clearSeen()
	if ff.candSet {
		ff.pool = append(ff.pool, ff.cand.base)
		ff.candSet = false
	}
	ff.recOn = false
	ff.on = false
}

// ffCursors enumerates every FCFS cursor in the model in a fixed order —
// L2 banks, controller channels, core pipelines — for snapshots,
// fingerprints and jumps alike.
func (rs *runState) ffCursors(f func(c *sim.Cursor)) {
	for i := range rs.banks {
		f(&rs.banks[i])
	}
	rs.mc.ForEachCursor(f)
	rs.cores.ForEachCursor(f)
}

// ffFingerprint hashes the machine state that determines future evolution,
// expressed relative to the current time and to absolute addresses (which
// are folded modulo the interleave period — their spatial phase). Two
// equal fingerprints assert: same blocked/parked strand pattern, same
// in-flight accesses by phase, same generator phases, same pending events
// by relative delay, same cursor backlogs, same run-ahead occupancy.
func (rs *runState) ffFingerprint() (uint64, bool) {
	ff := &rs.ff
	f := trace.NewFingerprint()
	now := rs.eng.Now()
	leadItems := ff.leader.items
	for _, s := range rs.strands {
		var flags uint64
		if s.active {
			flags |= 1
		}
		if s.parked {
			flags |= 2
		}
		f.Fold(flags)
		f.Fold(uint64(s.accIdx))
		f.Fold(uint64(s.items - leadItems))
		for j := s.sbPos; j < len(s.sb); j++ {
			v := s.sb[j] - now
			if v < 0 {
				v = 0
			}
			f.Fold(uint64(v))
		}
		for j := 0; j < s.sbPos; j++ {
			v := s.sb[j] - now
			if v < 0 {
				v = 0
			}
			f.Fold(uint64(v))
		}
		for j := range s.slots {
			v := s.slots[j] - now
			if v < 0 {
				v = 0
			}
			f.Fold(uint64(v))
		}
		if s.active {
			f.Fold(uint64(len(s.item.Acc) - s.accIdx))
			for _, a := range s.item.Acc[s.accIdx:] {
				f.FoldAddr(a.Addr, ff.window)
				if a.Write {
					f.Fold(1)
				} else {
					f.Fold(0)
				}
			}
			f.Fold(uint64(s.item.Demand.MemOps))
			f.Fold(uint64(s.item.Demand.Flops))
			f.Fold(uint64(s.item.Demand.IntOps))
			f.Fold(uint64(s.item.Units))
			f.Fold(uint64(s.item.RepBytes))
		}
		ff.gens[s.id].PatternPhase(&f, ff.window)
	}
	for _, p := range rs.parked {
		f.Fold(uint64(p.id))
	}
	if rs.runAhead > 0 {
		f.Fold(uint64(rs.minItems - leadItems))
	}
	closures := false
	rs.eng.ForEachPending(func(dt sim.Time, kind sim.Kind, arg int32, closure bool) {
		if closure {
			closures = true
			return
		}
		f.Fold(uint64(dt))
		f.Fold(uint64(kind))
		f.Fold(uint64(uint32(arg)))
	})
	rs.ffCursors(func(c *sim.Cursor) {
		v := c.FreeAt() - now
		if v < 0 {
			v = 0
		}
		f.Fold(uint64(v))
	})
	return uint64(f), !closures
}

// ffFingerprintIter is the iteration-boundary fingerprint: the same state
// walk as ffFingerprint, but every address folds relative to the leader's
// iteration reference, generators contribute IterPhase instead of
// PatternPhase, and the bank/controller cursors are enumerated starting at
// the bank and controller the reference itself maps to. Two equal
// fingerprints then assert equality of machine state up to one global
// interleave ROTATION — which is exactly the recurrence left when the
// per-period translation is not a multiple of the interleave period.
func (rs *runState) ffFingerprintIter() (uint64, bool) {
	ff := &rs.ff
	f := trace.NewFingerprint()
	now := rs.eng.Now()
	ref := ff.igens[ff.leader.id].IterRef()
	leadItems := ff.leader.items
	for _, s := range rs.strands {
		var flags uint64
		if s.active {
			flags |= 1
		}
		if s.parked {
			flags |= 2
		}
		f.Fold(flags)
		f.Fold(uint64(s.accIdx))
		f.Fold(uint64(s.items - leadItems))
		for j := s.sbPos; j < len(s.sb); j++ {
			v := s.sb[j] - now
			if v < 0 {
				v = 0
			}
			f.Fold(uint64(v))
		}
		for j := 0; j < s.sbPos; j++ {
			v := s.sb[j] - now
			if v < 0 {
				v = 0
			}
			f.Fold(uint64(v))
		}
		for j := range s.slots {
			v := s.slots[j] - now
			if v < 0 {
				v = 0
			}
			f.Fold(uint64(v))
		}
		if s.active {
			f.Fold(uint64(len(s.item.Acc) - s.accIdx))
			for _, a := range s.item.Acc[s.accIdx:] {
				f.FoldAddr(a.Addr-ref, ff.window)
				if a.Write {
					f.Fold(1)
				} else {
					f.Fold(0)
				}
			}
			f.Fold(uint64(s.item.Demand.MemOps))
			f.Fold(uint64(s.item.Demand.Flops))
			f.Fold(uint64(s.item.Demand.IntOps))
			f.Fold(uint64(s.item.Units))
			f.Fold(uint64(s.item.RepBytes))
		}
		ff.igens[s.id].IterPhase(&f, ff.window, ref)
	}
	for _, p := range rs.parked {
		f.Fold(uint64(p.id))
	}
	if rs.runAhead > 0 {
		f.Fold(uint64(rs.minItems - leadItems))
	}
	closures := false
	rs.eng.ForEachPending(func(dt sim.Time, kind sim.Kind, arg int32, closure bool) {
		if closure {
			closures = true
			return
		}
		f.Fold(uint64(dt))
		f.Fold(uint64(kind))
		f.Fold(uint64(uint32(arg)))
	})
	nb, nc := ff.nbanks, ff.nctls
	b0 := int(uint64(ref) / uint64(ff.granule) % uint64(nb))
	c0 := int(uint64(ref) / uint64(ff.ctlSpan) % uint64(nc))
	fold := func(c *sim.Cursor) {
		v := c.FreeAt() - now
		if v < 0 {
			v = 0
		}
		f.Fold(uint64(v))
	}
	for j := 0; j < nb; j++ {
		fold(ff.curs[(b0+j)%nb])
	}
	for j := 0; j < nc; j++ {
		c := (c0 + j) % nc
		fold(ff.curs[nb+2*c])   // northbound channel
		fold(ff.curs[nb+2*c+1]) // southbound channel
	}
	for i := nb + 2*nc; i < len(ff.curs); i++ {
		fold(ff.curs[i]) // core pipelines: untouched by the rotation
	}
	return uint64(f), !closures
}

// ffTakeSnap captures the current counters into a pooled snapshot.
func (rs *runState) ffTakeSnap(idx int64) *ffSnap {
	ff := &rs.ff
	var s *ffSnap
	if n := len(ff.pool); n > 0 {
		s = ff.pool[n-1]
		ff.pool = ff.pool[:n-1]
	} else {
		s = &ffSnap{}
	}
	s.idx = idx
	s.now = rs.eng.Now()
	s.steps = rs.eng.Steps()
	s.units, s.repBytes = rs.units, rs.repBytes
	s.loadStall, s.storeStall = rs.loadStall, rs.storeStall
	s.computeStall, s.retryStall = rs.computeStall, rs.retryStall
	s.retries = rs.retries

	s.items = s.items[:0]
	for _, st := range rs.strands {
		s.items = append(s.items, st.items)
	}
	s.l2 = rs.l2.Stats()
	nb := rs.cfg.Mapping.Banks()
	if cap(s.l2B) < nb {
		s.l2B = make([]cache.Stats, nb)
	}
	s.l2B = s.l2B[:nb]
	rs.l2.BankStatsInto(s.l2B)
	nc := rs.cfg.Mapping.Controllers()
	if cap(s.mc) < nc {
		s.mc = make([]mem.CtlStats, nc)
	}
	s.mc = s.mc[:nc]
	rs.mc.StatsInto(s.mc)
	s.cur = s.cur[:0]
	rs.ffCursors(func(c *sim.Cursor) {
		s.cur = append(s.cur, cursorSnap{free: c.FreeAt(), busy: c.Busy(), ops: c.Ops()})
	})
	return s
}

// ffComputeDelta fills d with the advance from a to b (b later).
func ffComputeDelta(d *ffDelta, a, b *ffSnap) {
	d.dt = b.now - a.now
	d.steps = b.steps - a.steps
	d.units, d.repBytes = b.units-a.units, b.repBytes-a.repBytes
	d.loadStall = b.loadStall - a.loadStall
	d.storeStall = b.storeStall - a.storeStall
	d.computeStall = b.computeStall - a.computeStall
	d.retryStall = b.retryStall - a.retryStall
	d.retries = b.retries - a.retries
	d.items = d.items[:0]
	d.itemsTotal = 0
	for i := range b.items {
		di := b.items[i] - a.items[i]
		d.items = append(d.items, di)
		d.itemsTotal += di
	}
	d.l2 = cache.Stats{
		Hits:       b.l2.Hits - a.l2.Hits,
		Misses:     b.l2.Misses - a.l2.Misses,
		Writebacks: b.l2.Writebacks - a.l2.Writebacks,
	}
	d.l2B = d.l2B[:0]
	for i := range b.l2B {
		d.l2B = append(d.l2B, cache.Stats{
			Hits:       b.l2B[i].Hits - a.l2B[i].Hits,
			Misses:     b.l2B[i].Misses - a.l2B[i].Misses,
			Writebacks: b.l2B[i].Writebacks - a.l2B[i].Writebacks,
		})
	}
	d.mc = d.mc[:0]
	for i := range b.mc {
		d.mc = append(d.mc, mem.CtlStats{
			Reads:      b.mc[i].Reads - a.mc[i].Reads,
			Writes:     b.mc[i].Writes - a.mc[i].Writes,
			BusyCycles: b.mc[i].BusyCycles - a.mc[i].BusyCycles,
		})
	}
	d.cur = d.cur[:0]
	for i := range b.cur {
		d.cur = append(d.cur, cursorSnap{
			busy: b.cur[i].busy - a.cur[i].busy,
			ops:  b.cur[i].ops - a.cur[i].ops,
		})
	}
}

// ffDeltaEqual reports whether two per-period deltas agree exactly — the
// validation criterion before any jump.
func ffDeltaEqual(a, b *ffDelta) bool {
	if a.dt != b.dt || a.steps != b.steps ||
		a.units != b.units || a.repBytes != b.repBytes ||
		a.loadStall != b.loadStall || a.storeStall != b.storeStall ||
		a.computeStall != b.computeStall || a.retryStall != b.retryStall ||
		a.retries != b.retries ||
		a.l2 != b.l2 ||
		len(a.items) != len(b.items) || len(a.l2B) != len(b.l2B) ||
		len(a.mc) != len(b.mc) || len(a.cur) != len(b.cur) {
		return false
	}
	for i := range a.items {
		if a.items[i] != b.items[i] {
			return false
		}
	}
	for i := range a.l2B {
		if a.l2B[i] != b.l2B[i] {
			return false
		}
	}
	for i := range a.mc {
		if a.mc[i] != b.mc[i] {
			return false
		}
	}
	for i := range a.cur {
		if a.cur[i].busy != b.cur[i].busy || a.cur[i].ops != b.cur[i].ops {
			return false
		}
	}
	return true
}

// ffDeltaEqualRot is the iteration-mode validation criterion: the
// validation period's delta a must equal the defining period's delta b
// under one interleave rotation — what landed on bank j in the defining
// period lands on bank (j+rotB) mod nbanks in the next, and likewise for
// controllers. Scalars, per-strand item counts and the global L2 counters
// are rotation-invariant and must match exactly; per-bank L2 stats,
// per-controller stats and the bank/controller cursor advances must match
// under the rotation; core cursors are untouched by it.
func (ff *ffState) ffDeltaEqualRot(a, b *ffDelta, rotB, rotC int) bool {
	if a.dt != b.dt || a.steps != b.steps ||
		a.units != b.units || a.repBytes != b.repBytes ||
		a.loadStall != b.loadStall || a.storeStall != b.storeStall ||
		a.computeStall != b.computeStall || a.retryStall != b.retryStall ||
		a.retries != b.retries ||
		a.l2 != b.l2 ||
		len(a.items) != len(b.items) ||
		len(a.l2B) != ff.nbanks || len(b.l2B) != ff.nbanks ||
		len(a.mc) != ff.nctls || len(b.mc) != ff.nctls ||
		len(a.cur) != len(b.cur) || len(a.cur) < ff.nbanks+2*ff.nctls {
		return false
	}
	for i := range a.items {
		if a.items[i] != b.items[i] {
			return false
		}
	}
	nb, nc := ff.nbanks, ff.nctls
	for i := 0; i < nb; i++ {
		j := (i - rotB%nb + nb) % nb
		if a.l2B[i] != b.l2B[j] {
			return false
		}
		if a.cur[i].busy != b.cur[j].busy || a.cur[i].ops != b.cur[j].ops {
			return false
		}
	}
	for c := 0; c < nc; c++ {
		j := (c - rotC%nc + nc) % nc
		if a.mc[c] != b.mc[j] {
			return false
		}
		for s := 0; s < 2; s++ {
			if a.cur[nb+2*c+s].busy != b.cur[nb+2*j+s].busy ||
				a.cur[nb+2*c+s].ops != b.cur[nb+2*j+s].ops {
				return false
			}
		}
	}
	for i := nb + 2*nc; i < len(a.cur); i++ {
		if a.cur[i].busy != b.cur[i].busy || a.cur[i].ops != b.cur[i].ops {
			return false
		}
	}
	return true
}

// ffSample is the once-per-leader-item detector tick, invoked between
// events (after the current event's handler has fully run). It walks the
// search → candidate → validate → jump ladder described in the package
// comment.
func (rs *runState) ffSample() {
	ff := &rs.ff
	if rs.running != len(rs.strands) {
		rs.ffDisarm() // a strand retired: the tail is never periodic
		return
	}
	if ff.mode == ffModeIter {
		rs.ffSampleIter()
		return
	}
	if ff.budget <= 0 {
		rs.ffDisarm()
		return
	}
	idx := ff.leader.items
	if ff.candSet && idx < ff.cand.at {
		return // waiting for a validation checkpoint: no sample taken
	}
	ff.budget--
	h, ok := rs.ffFingerprint()
	if !ok {
		rs.ffDisarm() // closure events pending: state not typed-representable
		return
	}
	if ff.candSet {
		cur := rs.ffTakeSnap(idx)
		ok := h == ff.cand.fp && len(ff.rec) <= ffRecLimit
		if ok {
			ffComputeDelta(&ff.vd, ff.cand.base, cur)
			ok = ffDeltaEqual(&ff.vd, &ff.cand.d)
		}
		if ok && ff.cand.stage == 1 {
			// First validation leg passed: keep the recorded trace as the
			// reference and record one more period for the strides.
			ff.rec, ff.recPrev = ff.recPrev[:0], ff.rec
			ff.pool = append(ff.pool, ff.cand.base)
			ff.cand.base = cur
			ff.cand.at = idx + ff.cand.period
			ff.cand.stage = 2
			return
		}
		if ok {
			// Second leg passed: derive per-access strides between the two
			// consecutive period traces; congruent traces prove the access
			// stream advances by fixed per-access strides.
			ok = len(ff.rec) == len(ff.recPrev)
			if ok {
				ff.strides = ff.strides[:0]
				for i := range ff.rec {
					a, b := &ff.recPrev[i], &ff.rec[i]
					if a.write != b.write || a.hit != b.hit || a.vdirty != b.vdirty {
						ok = false
						break
					}
					ff.strides = append(ff.strides, int64(b.addr)-int64(a.addr))
				}
			}
			if ok {
				rs.ffJump(&ff.cand.d)
				ff.pool = append(ff.pool, ff.cand.base, cur)
				ff.candSet = false
				ff.recOn = false
				ff.clearSeen()
				return
			}
		}
		// Validation failed: recycle the candidate and treat this sample
		// as a fresh observation.
		ff.pool = append(ff.pool, ff.cand.base)
		ff.candSet = false
		ff.recOn = false
		rs.ffObserve(h, cur)
		return
	}
	rs.ffObserve(h, rs.ffTakeSnap(idx))
}

// ffObserve files a sample whose fingerprint may already be known: a
// repeat establishes a candidate period to validate, a fresh fingerprint
// joins the search map.
func (rs *runState) ffObserve(h uint64, cur *ffSnap) {
	ff := &rs.ff
	sg, seen := ff.seen[h]
	if !seen {
		ff.seen[h] = ffSighting{last: cur}
		return
	}
	prev := sg.last
	period := cur.idx - prev.idx
	if period <= 0 || cur.now <= prev.now {
		ff.pool = append(ff.pool, cur)
		return
	}
	ff.cand.fp = h
	ff.cand.period = period
	ff.cand.at = cur.idx + period
	ff.cand.stage = 1
	ffComputeDelta(&ff.cand.d, prev, cur)
	ff.cand.base = cur
	ff.candSet = true
	ff.rec = ff.rec[:0]
	ff.recOn = true
}

// ffSampleIter is the iteration-granularity detector tick: invoked like
// ffSample once per completed leader item, but it only samples when the
// leader sits at an iteration boundary. Validation is a single further
// simulated period — the rotated counter-delta check — because iteration
// mode needs no stride-extraction leg: the per-period address shift is
// known analytically from the generators' iteration stride.
func (rs *runState) ffSampleIter() {
	ff := &rs.ff
	if !ff.igens[ff.leader.id].AtIterBoundary() {
		return
	}
	ff.bidx++
	idx := ff.bidx
	if ff.budget <= 0 {
		rs.ffDisarm()
		return
	}
	if ff.candSet && idx < ff.cand.at {
		return // waiting for the validation checkpoint: no sample taken
	}
	ff.budget--
	h, ok := rs.ffFingerprintIter()
	if !ok {
		rs.ffDisarm() // closure events pending: state not typed-representable
		return
	}
	if ff.candSet {
		cur := rs.ffTakeSnap(idx)
		ok := h == ff.cand.fp && len(ff.rec) <= ffIterRecLimit
		if ok {
			ffComputeDelta(&ff.vd, ff.cand.base, cur)
			ok = ff.ffDeltaEqualRot(&ff.vd, &ff.cand.d, ff.cand.rotB, ff.cand.rotC)
		}
		if ok {
			// The validated delta ff.vd is the period the recording covers
			// (candidate creation -> now), which is what the jump replays.
			rs.ffJumpIter(&ff.vd)
			ff.pool = append(ff.pool, ff.cand.base, cur)
			ff.candSet = false
			ff.recOn = false
			ff.clearSeen()
			return
		}
		ff.pool = append(ff.pool, ff.cand.base)
		ff.candSet = false
		ff.recOn = false
		rs.ffObserveIter(h, cur)
		return
	}
	rs.ffObserveIter(h, rs.ffTakeSnap(idx))
}

// ffObserveIter files an iteration-boundary sample. A repeated fingerprint
// establishes a rotation candidate if a repeat spacing passes the
// eligibility arithmetic: every generator reports the same nonzero
// iteration stride, every strand completed the same whole number of
// iterations over the period, and the per-period byte shift lands on a
// controller-span boundary of the interleave (so banks and controllers are
// PERMUTED, not cut mid-granule). Both remembered sightings are tried —
// the consecutive spacing first, then the older one — and when neither
// yields an admissible period the sightings march forward, so a cascade of
// misaligned coincidences can never pin the detector to a dead phase.
func (rs *runState) ffObserveIter(h uint64, cur *ffSnap) {
	ff := &rs.ff
	sg, seen := ff.seen[h]
	if !seen {
		ff.seen[h] = ffSighting{last: cur}
		return
	}
	if rs.ffTryIterCandidate(h, sg.last, cur) || rs.ffTryIterCandidate(h, sg.old, cur) {
		return
	}
	if sg.old != nil {
		ff.pool = append(ff.pool, sg.old)
	}
	ff.seen[h] = ffSighting{old: sg.last, last: cur}
}

// ffTryIterCandidate checks one repeat spacing (prev -> cur) against the
// iteration-translation eligibility rules and, if admissible, installs the
// rotation candidate and starts the validation-period access recording.
func (rs *runState) ffTryIterCandidate(h uint64, prev, cur *ffSnap) bool {
	ff := &rs.ff
	if prev == nil {
		return false
	}
	period := cur.idx - prev.idx
	if period <= 0 || cur.now <= prev.now {
		return false
	}
	ffComputeDelta(&ff.vd, prev, cur)
	istride := ff.igens[0].IterStride()
	iters := int64(0)
	if istride == 0 {
		return false
	}
	for i, ig := range ff.igens {
		ii := ig.IterItems()
		if ig.IterStride() != istride || ii <= 0 || ff.vd.items[i] <= 0 || ff.vd.items[i]%ii != 0 {
			return false
		}
		n := ff.vd.items[i] / ii
		if i == 0 {
			iters = n
		} else if n != iters {
			return false
		}
	}
	stride := iters * istride
	delta := stride % ff.window
	if delta < 0 {
		delta += ff.window
	}
	if delta%ff.ctlSpan != 0 {
		return false
	}
	ff.cand.fp = h
	ff.cand.period = period
	ff.cand.at = cur.idx + period
	ff.cand.stage = 1
	ffComputeDelta(&ff.cand.d, prev, cur)
	ff.cand.iters = iters
	ff.cand.istride = istride
	ff.cand.stride = stride
	ff.cand.rotB = int(delta / ff.granule)
	ff.cand.rotC = int(delta / ff.ctlSpan)
	ff.cand.base = cur
	ff.candSet = true
	ff.rec = ff.rec[:0]
	ff.recOn = true
	return true
}

// ffCapacityRoom returns how many further misses may be credited before
// entering the protected zone of the next L2 capacity turnover — 0 when
// the miss stream is already inside a zone. Turnovers sit where the victim
// population changes: sets finish filling (capacity minus warm lines),
// then every full capacity's worth of inserts after that; each is
// protected by a zone of ffCapacityZoneSets inserts per set on both sides.
func (ff *ffState) ffCapacityRoom(misses, zone int64) int64 {
	warm := ff.warm
	if warm > ff.capLines {
		warm = ff.capLines
	}
	b := ff.capLines - warm // first boundary: sets full
	if b == 0 {
		b = ff.capLines // a fully pre-warmed cache has no fill transition
	}
	for b+zone <= misses {
		b += ff.capLines
	}
	if misses >= b-zone {
		return 0
	}
	return b - zone - misses
}

// ffJump applies k validated periods analytically. k is the largest
// multiplier that keeps every generator inside its uniform region and the
// miss stream clear of the next L2 capacity turnover.
func (rs *runState) ffJump(d *ffDelta) {
	ff := &rs.ff
	k := int64(-1)
	for i := range rs.strands {
		di := d.items[i]
		if di <= 0 {
			continue
		}
		ki := ff.gens[i].UniformRemaining() / di
		if k < 0 || ki < k {
			k = ki
		}
	}
	if d.l2.Misses > 0 {
		zone := ffCapacityZoneSets * ff.capLines / int64(rs.cfg.L2.Ways)
		kc := ff.ffCapacityRoom(rs.l2.Stats().Misses, zone) / d.l2.Misses
		if k < 0 || kc < k {
			k = kc
		}
	}
	if k <= 0 {
		return
	}
	// Replay the skipped interval's cache accesses first, against a
	// checkpoint: the replay is the ground truth for what the interval
	// does to the tag store, and if its counters do not reproduce the
	// validated per-period deltas exactly, the steady state was not
	// stationary over the span — restore the checkpoint and decline the
	// jump (the detector will re-lock on the regime the replay exposed).
	if !rs.ffReplayCache(k, d) {
		return
	}
	dt := d.dt * k

	rs.eng.FastForward(dt, uint64(k)*d.steps)
	ci := 0
	rs.ffCursors(func(c *sim.Cursor) {
		c.Shift(dt)
		c.Account(k*d.cur[ci].busy, k*d.cur[ci].ops)
		ci++
	})
	rs.mc.AddStats(k, d.mc)
	rs.units += k * d.units
	rs.repBytes += k * d.repBytes
	rs.loadStall += k * d.loadStall
	rs.storeStall += k * d.storeStall
	rs.computeStall += k * d.computeStall
	rs.retryStall += k * d.retryStall
	rs.retries += k * d.retries

	for i, s := range rs.strands {
		for j := range s.sb {
			s.sb[j] += dt
		}
		for j := range s.slots {
			s.slots[j] += dt
		}
		if di := d.items[i]; di > 0 {
			ff.gens[i].Skip(k * di)
			s.items += k * di
			// The strand's in-flight item was generated k*di items ago in
			// the new timeline: advance its remaining accesses to the
			// addresses the item at the jumped-to position carries, so the
			// post-jump simulation probes the replay-advanced tag store
			// with true addresses.
			if s.active {
				shift := phys.Addr(k * di * ff.gens[i].ItemStride())
				for a := s.accIdx; a < len(s.item.Acc); a++ {
					s.item.Acc[a].Addr += shift
				}
			}
			// A cached NACK probe refers to the pre-shift line; drop it so
			// the next retry tick re-probes.
			s.retrying = false
		}
	}
	rs.ffRebuildWindow()

	ff.items += k * d.itemsTotal
	ff.cycles += dt
	ff.period = d.dt
	ff.jumps++
	ff.skipped += int64(uint64(k) * d.steps)
	// A committed jump lands in verified steady state: refund the sample
	// budget so a long run of repeating regimes keeps forwarding instead of
	// exhausting the detector after the first few jumps.
	ff.budget = ffSampleBudget
}

// ffRebuildWindow recomputes the run-ahead occupancy window and the
// minimum item count after a jump moved every strand's position at once.
func (rs *runState) ffRebuildWindow() {
	if rs.runAhead <= 0 {
		return
	}
	clear(rs.window)
	w := int64(len(rs.window))
	min := int64(-1)
	for _, s := range rs.strands {
		rs.window[s.items%w]++
		if min < 0 || s.items < min {
			min = s.items
		}
	}
	rs.minItems = min
}

// ffJumpIter applies k validated iteration periods analytically. It is the
// rotated counterpart of ffJump: the per-period translation advances the
// interleave pattern by rotB banks and rotC controllers, so bank-cursor and
// controller-cursor state is not merely shifted in time but permuted — the
// cursor that will be in phase j after the jump is the one that was in
// phase j-k*rot before it. Per-cursor busy/ops advances accumulate along
// the rotation orbit, and stationarity of the fingerprint guarantees the
// per-period delta seen from phase u is the validated delta rotated by u.
func (rs *runState) ffJumpIter(d *ffDelta) {
	ff := &rs.ff
	cand := &ff.cand
	// The generators' iteration stride must still be the one the candidate
	// was built from: a generator may legitimately re-derive its stride when
	// its uniform region changed between candidate creation and now, and a
	// jump would then shift machine addresses by a different amount than
	// SkipIters shifts the generators.
	for _, ig := range ff.igens {
		if ig.IterStride() != cand.istride {
			return
		}
	}
	k := int64(-1)
	for _, ig := range ff.igens {
		ki := ig.ItersRemaining() / cand.iters
		if k < 0 || ki < k {
			k = ki
		}
	}
	if d.l2.Misses > 0 {
		zone := ffCapacityZoneSets * ff.capLines / int64(rs.cfg.L2.Ways)
		kc := ff.ffCapacityRoom(rs.l2.Stats().Misses, zone) / d.l2.Misses
		if k < 0 || kc < k {
			k = kc
		}
	}
	if k <= 0 {
		return
	}
	if !rs.ffReplayCacheIter(k, d, cand) {
		return
	}
	dt := d.dt * k

	rs.eng.FastForward(dt, uint64(k)*d.steps)

	nb, nc := ff.nbanks, ff.nctls
	ncur := nb + 2*nc
	if cap(ff.rotSnap) < len(ff.curs) {
		ff.rotSnap = make([]cursorSnap, len(ff.curs))
	}
	ff.rotSnap = ff.rotSnap[:len(ff.curs)]
	for i, c := range ff.curs {
		ff.rotSnap[i] = cursorSnap{free: c.FreeAt(), busy: c.Busy(), ops: c.Ops()}
	}
	// Banks: the cursor at bank j inherits the free time of the bank that
	// rotates into phase j (its in-flight occupancy follows the pattern),
	// while busy/ops are that cursor's own accumulators, advanced by the
	// orbit sum of the per-period deltas it experiences.
	rotB, rotC := int64(cand.rotB), int64(cand.rotC)
	for j := 0; j < nb; j++ {
		src := int(((int64(j)-k*rotB)%int64(nb) + int64(nb)) % int64(nb))
		var ab sim.Time
		var ao int64
		for u := int64(1); u <= k; u++ {
			p := ((int64(j)-u*rotB)%int64(nb) + int64(nb)) % int64(nb)
			ab += d.cur[p].busy
			ao += d.cur[p].ops
		}
		ff.curs[j].SetState(ff.rotSnap[src].free+dt, ff.rotSnap[j].busy+ab, ff.rotSnap[j].ops+ao)
	}
	// Memory-controller cursors (north/south pairs), same orbit over nctls.
	for c := 0; c < nc; c++ {
		for s := 0; s < 2; s++ {
			j := nb + 2*c + s
			src := nb + 2*int(((int64(c)-k*rotC)%int64(nc)+int64(nc))%int64(nc)) + s
			var ab sim.Time
			var ao int64
			for u := int64(1); u <= k; u++ {
				p := nb + 2*int(((int64(c)-u*rotC)%int64(nc)+int64(nc))%int64(nc)) + s
				ab += d.cur[p].busy
				ao += d.cur[p].ops
			}
			ff.curs[j].SetState(ff.rotSnap[src].free+dt, ff.rotSnap[j].busy+ab, ff.rotSnap[j].ops+ao)
		}
	}
	// Core pipeline cursors are tied to strands, not to the interleave: they
	// advance unrotated, exactly as in item mode.
	for i := ncur; i < len(ff.curs); i++ {
		ff.curs[i].Shift(dt)
		ff.curs[i].Account(k*d.cur[i].busy, k*d.cur[i].ops)
	}
	// Controller aggregate stats rotate the same way: controller c's traffic
	// over the k periods is the orbit sum of the validated per-controller
	// deltas.
	if cap(ff.mcAdd) < nc {
		ff.mcAdd = make([]mem.CtlStats, nc)
	}
	ff.mcAdd = ff.mcAdd[:nc]
	for c := 0; c < nc; c++ {
		var a mem.CtlStats
		for u := int64(1); u <= k; u++ {
			p := ((int64(c)-u*rotC)%int64(nc) + int64(nc)) % int64(nc)
			a.Reads += d.mc[p].Reads
			a.Writes += d.mc[p].Writes
			a.BusyCycles += d.mc[p].BusyCycles
		}
		ff.mcAdd[c] = a
	}
	rs.mc.AddStats(1, ff.mcAdd)

	rs.units += k * d.units
	rs.repBytes += k * d.repBytes
	rs.loadStall += k * d.loadStall
	rs.storeStall += k * d.storeStall
	rs.computeStall += k * d.computeStall
	rs.retryStall += k * d.retryStall
	rs.retries += k * d.retries

	shift := phys.Addr(k * cand.stride)
	for i, s := range rs.strands {
		for j := range s.sb {
			s.sb[j] += dt
		}
		for j := range s.slots {
			s.slots[j] += dt
		}
		ff.igens[i].SkipIters(k * cand.iters)
		s.items += k * d.items[i]
		if s.active {
			for a := s.accIdx; a < len(s.item.Acc); a++ {
				s.item.Acc[a].Addr += shift
			}
		}
		s.retrying = false
	}
	rs.ffRebuildWindow()

	ff.items += k * d.itemsTotal
	ff.cycles += dt
	ff.period = d.dt
	ff.jumps++
	ff.skipped += int64(uint64(k) * d.steps)
	ff.budget = ffIterSampleBudget
}

// recAccess appends one executed cache access and its outcome to the
// recording, when the detector is recording a validation period.
func (rs *runState) recAccess(line phys.Addr, write, hit, vdirty bool, victim phys.Addr) {
	limit := ffRecLimit
	if rs.ff.mode == ffModeIter {
		limit = ffIterRecLimit
	}
	if len(rs.ff.rec) <= limit {
		var vc int8
		if vdirty {
			vc = int8(rs.cfg.Mapping.Controller(victim))
		}
		rs.ff.rec = append(rs.ff.rec, ffAccess{addr: line, write: write, hit: hit, vdirty: vdirty, vctl: vc})
	}
}

// ffReplayCache applies the skipped interval's accesses to the tag store —
// installs, LRU updates, evictions and all counters — by replaying the
// recorded period trace k times with each access advanced by its validated
// stride. Timing is extrapolated elsewhere; cache state is real, so the
// victim population (and every capacity-turnover position) stays exact.
//
// The replay doubles as the final validation: every access must reproduce
// the validated period's outcome — hit flag and victim dirtiness — at its
// exact position, because those outcomes (through memory reads, RFO fills
// and writebacks) are what the extrapolated timing assumed. If any access
// deviates — a capacity regime change or conflict shift the two-period
// validation could not see — the tag store is restored from the
// pre-replay checkpoint and the jump is declined. Declines only cost
// time; a committed jump has proven, access by access, that the skipped
// interval replays the validated period.
func (rs *runState) ffReplayCache(k int64, d *ffDelta) bool {
	ff := &rs.ff
	pre := rs.l2.Stats()
	nb := len(d.l2B)
	if cap(ff.l2BPre) < nb {
		ff.l2BPre = make([]cache.Stats, nb)
		ff.l2BPost = make([]cache.Stats, nb)
	}
	ff.l2BPre = ff.l2BPre[:nb]
	ff.l2BPost = ff.l2BPost[:nb]
	rs.l2.BankStatsInto(ff.l2BPre)
	rs.l2.SnapshotInto(&ff.rollback)
	ok := true
replay:
	for it := int64(1); it <= k; it++ {
		for i := range ff.rec {
			a := &ff.rec[i]
			res := rs.l2.Access(a.addr+phys.Addr(it*ff.strides[i]), a.write)
			if res.Hit != a.hit || res.VictimDirty != a.vdirty {
				ok = false
				break replay
			}
		}
	}
	if ok {
		post := rs.l2.Stats()
		if post.Hits != pre.Hits+k*d.l2.Hits ||
			post.Misses != pre.Misses+k*d.l2.Misses ||
			post.Writebacks != pre.Writebacks+k*d.l2.Writebacks {
			ok = false
		}
	}
	// Fault injection (no-op unless built and armed): veto the validated
	// jump so the rollback below runs under test, proving a declined jump
	// is invisible in the results.
	if ok && faults.FFDecline() {
		ok = false
	}
	if !ok {
		// Restore the tag store and re-impose the pre-replay counters; the
		// run continues as if the jump had never been attempted.
		rs.l2.Restore(&ff.rollback)
		rs.l2.SetStats(ff.l2BPre)
		return false
	}
	return true
}

// ffReplayCacheIter is the iteration-mode tag-store replay. All accesses of
// a period share the single analytic stride (iters * istride bytes per
// period), so replayed period it advances every recorded address by
// it*stride. On top of the hit/victim-dirty outcome checks it proves the
// rotation assumption for writeback traffic: a dirty victim's memory
// controller must be the recorded victim's controller rotated by it*rotC,
// because that is how ffJumpIter credits per-controller writes.
func (rs *runState) ffReplayCacheIter(k int64, d *ffDelta, cand *ffCandidate) bool {
	ff := &rs.ff
	pre := rs.l2.Stats()
	nb := len(d.l2B)
	if cap(ff.l2BPre) < nb {
		ff.l2BPre = make([]cache.Stats, nb)
		ff.l2BPost = make([]cache.Stats, nb)
	}
	ff.l2BPre = ff.l2BPre[:nb]
	ff.l2BPost = ff.l2BPost[:nb]
	rs.l2.BankStatsInto(ff.l2BPre)
	rs.l2.SnapshotInto(&ff.rollback)
	nc := int64(ff.nctls)
	ok := true
replay:
	for it := int64(1); it <= k; it++ {
		shift := phys.Addr(it * cand.stride)
		vrot := (it * int64(cand.rotC)) % nc
		for i := range ff.rec {
			a := &ff.rec[i]
			res := rs.l2.Access(a.addr+shift, a.write)
			if res.Hit != a.hit || res.VictimDirty != a.vdirty {
				ok = false
				break replay
			}
			if a.vdirty {
				want := int((int64(a.vctl) + vrot) % nc)
				if rs.cfg.Mapping.Controller(res.Victim) != want {
					ok = false
					break replay
				}
			}
		}
	}
	if ok {
		post := rs.l2.Stats()
		if post.Hits != pre.Hits+k*d.l2.Hits ||
			post.Misses != pre.Misses+k*d.l2.Misses ||
			post.Writebacks != pre.Writebacks+k*d.l2.Writebacks {
			ok = false
		}
	}
	// Fault injection (no-op unless built and armed): exercise the
	// iteration-mode rollback exactly like the item-mode one.
	if ok && faults.FFDecline() {
		ok = false
	}
	if !ok {
		rs.l2.Restore(&ff.rollback)
		rs.l2.SetStats(ff.l2BPre)
		return false
	}
	return true
}
