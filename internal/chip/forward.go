// Steady-state fast-forward: the paper's kernels are perfectly periodic in
// their steady state, so once the machine's observable state recurs, the
// remaining iterations replay the observed period verbatim and can be
// applied analytically — advance the clock, shift every FCFS cursor, credit
// every counter with (periods x per-period delta), and Skip the generators
// — instead of simulating them event by event.
//
// Exactness, not approximation, is the contract: the final Result must be
// byte-identical to full simulation. Three mechanisms enforce it.
//
//  1. Eligibility. Every generator must implement trace.Forwardable, which
//     restricts fast-forward to reuse-free streaming kernels — the only
//     workloads whose future hit/miss behaviour does not depend on the tag
//     store entries a skipped interval would have installed. The address
//     mapping must expose a spatial period (hashed interleaves do not and
//     opt out wholesale).
//
//  2. Detection + validation. Once per completed leader work item the chip
//     fingerprints everything that drives future evolution relative to
//     (now, absolute addresses): per-strand progress and blocked state,
//     in-flight item accesses and generator pattern phase modulo the
//     interleave period, the pending event queue relative to now, every
//     FCFS cursor's backlog, and the run-ahead window. A repeated
//     fingerprint yields a candidate period; the candidate must then
//     reproduce the exact counter deltas of its defining period over one
//     further simulated period before any state is touched.
//
//  3. Bounds. The jump multiplier is capped so the skipped span (a) stays
//     inside every generator's uniform region — no chunk edge, partial
//     item or sweep boundary is ever extrapolated over — and (b) never
//     crosses an L2 capacity turnover (a multiple of the cache's line
//     capacity in cumulative misses), where the victim population — and
//     with it the writeback pattern — changes regime.
//
// Everything the fingerprint abstracts away is either provably inert for
// eligible kernels (absolute tag values: streaming accesses miss
// regardless) or revalidated each period (per-bank traffic, victim
// dirtiness). The equivalence tests in chip and bench run every figure
// family and machine profile both ways and require deep equality.
package chip

import (
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ffSampleBudget bounds how many fingerprint samples a run may take before
// the detector gives up. Steady states that are going to be caught at all
// are caught within a few dozen samples of settling (the contended 64-
// thread microstates never recur at any horizon — see DESIGN.md Sect. 9),
// so a small budget keeps the detector's cost negligible on runs it cannot
// help.
const ffSampleBudget = 128

// ffCapacityZoneSets widens the protected window around an L2 capacity
// turnover, in per-set insert counts. The turnover is not a point: each
// set wraps at its own phase of the streams' cyclic sweep, so the victim
// population — and with it the writeback rate — shifts over a window of
// several inserts per set. Jumps must neither cross nor land inside that
// window; it is always crossed by real simulation, and the detector then
// re-locks onto the post-turnover steady state.
const ffCapacityZoneSets = 4

// cursorSnap is one FCFS cursor's accounting at a sample (and, in deltas,
// its per-period advance).
type cursorSnap struct {
	free sim.Time
	busy sim.Time
	ops  int64
}

// ffSnap is the full counter snapshot taken with a fingerprint sample.
// Everything needed to (a) compute per-period deltas and (b) apply them k
// times over is here; slices are pooled across samples and runs.
type ffSnap struct {
	idx      int64 // leader items completed at the sample
	now      sim.Time
	steps    uint64
	units    int64
	repBytes int64

	loadStall    int64
	storeStall   int64
	computeStall int64
	retryStall   int64
	retries      int64

	items []int64 // per strand
	l2    cache.Stats
	l2B   []cache.Stats
	mc    []mem.CtlStats
	cur   []cursorSnap
}

// ffDelta is the per-period state advance between two matching samples.
type ffDelta struct {
	dt         sim.Time
	steps      uint64
	units      int64
	repBytes   int64
	itemsTotal int64

	loadStall    int64
	storeStall   int64
	computeStall int64
	retryStall   int64
	retries      int64

	items []int64
	l2    cache.Stats
	l2B   []cache.Stats
	mc    []mem.CtlStats
	cur   []cursorSnap // busy/ops advances; free is implied by dt
}

// ffCandidate is a detected-but-unvalidated period. Validation takes two
// further simulated periods: the first re-proves the counter deltas, the
// second does so again while yielding the per-access address strides
// between two consecutively recorded period traces.
type ffCandidate struct {
	fp     uint64
	period int64 // in leader items
	at     int64 // leader item count of the next validation checkpoint
	stage  int   // 1: first validation pending, 2: second (stride) pending
	base   *ffSnap
	d      ffDelta
}

// ffAccess is one recorded cache access of a validation period, including
// its outcome. The outcome is what makes the replay a proof: relative
// machine state is pinned by the fingerprint, generator output by the
// per-access strides, and cache behaviour by the outcome sequence — and a
// deterministic simulator evolving from equal state under equal inputs
// with equal cache outcomes replays the validated period exactly, timing
// included.
type ffAccess struct {
	addr   phys.Addr
	write  bool
	hit    bool
	vdirty bool
}

// ffRecLimit caps the recorded trace length; a period with more accesses
// than this is too long to replay profitably and is not fast-forwarded.
const ffRecLimit = 1 << 15

// ffState is the per-run fast-forward machinery, embedded in runState so
// its maps, pools and slices persist across a reused machine's runs.
type ffState struct {
	on      bool
	pending bool // leader completed an item: sample at end of this event
	window  int64
	budget  int
	leader  *strand
	gens    []trace.Forwardable

	capLines int64 // L2 capacity in lines
	warm     int64 // pre-filled warm lines

	seen    map[uint64]*ffSnap
	pool    []*ffSnap
	cand    ffCandidate
	candSet bool
	vd      ffDelta // validation scratch

	// Access-trace recording for the tag-store replay: the cache accesses
	// of the two most recent validation periods and the per-access address
	// stride between them.
	recOn    bool
	rec      []ffAccess
	recPrev  []ffAccess
	strides  []int64
	l2BPre   []cache.Stats // replay verification scratch
	l2BPost  []cache.Stats
	rollback cache.Image // pre-replay checkpoint for declined jumps

	// Telemetry surfaced in Result.
	items  int64    // work items covered analytically
	cycles int64    // cycles covered analytically
	period sim.Time // last detected period in cycles (0: none)
}

// ffReset recycles all detector state at the start of a run.
func (rs *runState) ffReset() {
	ff := &rs.ff
	for h, s := range ff.seen {
		ff.pool = append(ff.pool, s)
		delete(ff.seen, h)
	}
	if ff.candSet {
		ff.pool = append(ff.pool, ff.cand.base)
	}
	ff.on, ff.pending, ff.candSet = false, false, false
	ff.recOn = false
	ff.rec, ff.recPrev = ff.rec[:0], ff.recPrev[:0]
	ff.items, ff.cycles, ff.period = 0, 0, 0
	ff.leader = nil
	ff.gens = ff.gens[:0]
}

// ffInit arms the detector if the run qualifies: fast-forward not disabled,
// a field mapping with a spatial period, and every generator Forwardable.
func (rs *runState) ffInit(prog *trace.Program) {
	if rs.cfg.DisableFastForward {
		return
	}
	w := rs.cfg.Mapping.Period()
	if w <= 0 {
		return // hashed interleave: no spatial phase to fingerprint against
	}
	ff := &rs.ff
	for _, g := range prog.Gens {
		fg, ok := g.(trace.Forwardable)
		if !ok {
			ff.gens = ff.gens[:0]
			return
		}
		ff.gens = append(ff.gens, fg)
	}
	ff.on = true
	ff.window = w
	ff.budget = ffSampleBudget
	ff.leader = rs.strands[0]
	ff.capLines = rs.cfg.L2.SizeBytes / rs.cfg.L2.LineSize
	ff.warm = prog.WarmLines
	if ff.seen == nil {
		ff.seen = make(map[uint64]*ffSnap)
	}
}

// ffDisarm turns the detector off and recycles its snapshots.
func (rs *runState) ffDisarm() {
	ff := &rs.ff
	for h, s := range ff.seen {
		ff.pool = append(ff.pool, s)
		delete(ff.seen, h)
	}
	if ff.candSet {
		ff.pool = append(ff.pool, ff.cand.base)
		ff.candSet = false
	}
	ff.recOn = false
	ff.on = false
}

// ffCursors enumerates every FCFS cursor in the model in a fixed order —
// L2 banks, controller channels, core pipelines — for snapshots,
// fingerprints and jumps alike.
func (rs *runState) ffCursors(f func(c *sim.Cursor)) {
	for i := range rs.banks {
		f(&rs.banks[i])
	}
	rs.mc.ForEachCursor(f)
	rs.cores.ForEachCursor(f)
}

// ffFingerprint hashes the machine state that determines future evolution,
// expressed relative to the current time and to absolute addresses (which
// are folded modulo the interleave period — their spatial phase). Two
// equal fingerprints assert: same blocked/parked strand pattern, same
// in-flight accesses by phase, same generator phases, same pending events
// by relative delay, same cursor backlogs, same run-ahead occupancy.
func (rs *runState) ffFingerprint() (uint64, bool) {
	ff := &rs.ff
	f := trace.NewFingerprint()
	now := rs.eng.Now()
	leadItems := ff.leader.items
	for _, s := range rs.strands {
		var flags uint64
		if s.active {
			flags |= 1
		}
		if s.parked {
			flags |= 2
		}
		f.Fold(flags)
		f.Fold(uint64(s.accIdx))
		f.Fold(uint64(s.items - leadItems))
		for j := s.sbPos; j < len(s.sb); j++ {
			v := s.sb[j] - now
			if v < 0 {
				v = 0
			}
			f.Fold(uint64(v))
		}
		for j := 0; j < s.sbPos; j++ {
			v := s.sb[j] - now
			if v < 0 {
				v = 0
			}
			f.Fold(uint64(v))
		}
		for j := range s.slots {
			v := s.slots[j] - now
			if v < 0 {
				v = 0
			}
			f.Fold(uint64(v))
		}
		if s.active {
			f.Fold(uint64(len(s.item.Acc) - s.accIdx))
			for _, a := range s.item.Acc[s.accIdx:] {
				f.FoldAddr(a.Addr, ff.window)
				if a.Write {
					f.Fold(1)
				} else {
					f.Fold(0)
				}
			}
			f.Fold(uint64(s.item.Demand.MemOps))
			f.Fold(uint64(s.item.Demand.Flops))
			f.Fold(uint64(s.item.Demand.IntOps))
			f.Fold(uint64(s.item.Units))
			f.Fold(uint64(s.item.RepBytes))
		}
		ff.gens[s.id].PatternPhase(&f, ff.window)
	}
	for _, p := range rs.parked {
		f.Fold(uint64(p.id))
	}
	if rs.runAhead > 0 {
		f.Fold(uint64(rs.minItems - leadItems))
	}
	closures := false
	rs.eng.ForEachPending(func(dt sim.Time, kind sim.Kind, arg int32, closure bool) {
		if closure {
			closures = true
			return
		}
		f.Fold(uint64(dt))
		f.Fold(uint64(kind))
		f.Fold(uint64(uint32(arg)))
	})
	rs.ffCursors(func(c *sim.Cursor) {
		v := c.FreeAt() - now
		if v < 0 {
			v = 0
		}
		f.Fold(uint64(v))
	})
	return uint64(f), !closures
}

// ffTakeSnap captures the current counters into a pooled snapshot.
func (rs *runState) ffTakeSnap(idx int64) *ffSnap {
	ff := &rs.ff
	var s *ffSnap
	if n := len(ff.pool); n > 0 {
		s = ff.pool[n-1]
		ff.pool = ff.pool[:n-1]
	} else {
		s = &ffSnap{}
	}
	s.idx = idx
	s.now = rs.eng.Now()
	s.steps = rs.eng.Steps()
	s.units, s.repBytes = rs.units, rs.repBytes
	s.loadStall, s.storeStall = rs.loadStall, rs.storeStall
	s.computeStall, s.retryStall = rs.computeStall, rs.retryStall
	s.retries = rs.retries

	s.items = s.items[:0]
	for _, st := range rs.strands {
		s.items = append(s.items, st.items)
	}
	s.l2 = rs.l2.Stats()
	nb := rs.cfg.Mapping.Banks()
	if cap(s.l2B) < nb {
		s.l2B = make([]cache.Stats, nb)
	}
	s.l2B = s.l2B[:nb]
	rs.l2.BankStatsInto(s.l2B)
	nc := rs.cfg.Mapping.Controllers()
	if cap(s.mc) < nc {
		s.mc = make([]mem.CtlStats, nc)
	}
	s.mc = s.mc[:nc]
	rs.mc.StatsInto(s.mc)
	s.cur = s.cur[:0]
	rs.ffCursors(func(c *sim.Cursor) {
		s.cur = append(s.cur, cursorSnap{free: c.FreeAt(), busy: c.Busy(), ops: c.Ops()})
	})
	return s
}

// ffComputeDelta fills d with the advance from a to b (b later).
func ffComputeDelta(d *ffDelta, a, b *ffSnap) {
	d.dt = b.now - a.now
	d.steps = b.steps - a.steps
	d.units, d.repBytes = b.units-a.units, b.repBytes-a.repBytes
	d.loadStall = b.loadStall - a.loadStall
	d.storeStall = b.storeStall - a.storeStall
	d.computeStall = b.computeStall - a.computeStall
	d.retryStall = b.retryStall - a.retryStall
	d.retries = b.retries - a.retries
	d.items = d.items[:0]
	d.itemsTotal = 0
	for i := range b.items {
		di := b.items[i] - a.items[i]
		d.items = append(d.items, di)
		d.itemsTotal += di
	}
	d.l2 = cache.Stats{
		Hits:       b.l2.Hits - a.l2.Hits,
		Misses:     b.l2.Misses - a.l2.Misses,
		Writebacks: b.l2.Writebacks - a.l2.Writebacks,
	}
	d.l2B = d.l2B[:0]
	for i := range b.l2B {
		d.l2B = append(d.l2B, cache.Stats{
			Hits:       b.l2B[i].Hits - a.l2B[i].Hits,
			Misses:     b.l2B[i].Misses - a.l2B[i].Misses,
			Writebacks: b.l2B[i].Writebacks - a.l2B[i].Writebacks,
		})
	}
	d.mc = d.mc[:0]
	for i := range b.mc {
		d.mc = append(d.mc, mem.CtlStats{
			Reads:      b.mc[i].Reads - a.mc[i].Reads,
			Writes:     b.mc[i].Writes - a.mc[i].Writes,
			BusyCycles: b.mc[i].BusyCycles - a.mc[i].BusyCycles,
		})
	}
	d.cur = d.cur[:0]
	for i := range b.cur {
		d.cur = append(d.cur, cursorSnap{
			busy: b.cur[i].busy - a.cur[i].busy,
			ops:  b.cur[i].ops - a.cur[i].ops,
		})
	}
}

// ffDeltaEqual reports whether two per-period deltas agree exactly — the
// validation criterion before any jump.
func ffDeltaEqual(a, b *ffDelta) bool {
	if a.dt != b.dt || a.steps != b.steps ||
		a.units != b.units || a.repBytes != b.repBytes ||
		a.loadStall != b.loadStall || a.storeStall != b.storeStall ||
		a.computeStall != b.computeStall || a.retryStall != b.retryStall ||
		a.retries != b.retries ||
		a.l2 != b.l2 ||
		len(a.items) != len(b.items) || len(a.l2B) != len(b.l2B) ||
		len(a.mc) != len(b.mc) || len(a.cur) != len(b.cur) {
		return false
	}
	for i := range a.items {
		if a.items[i] != b.items[i] {
			return false
		}
	}
	for i := range a.l2B {
		if a.l2B[i] != b.l2B[i] {
			return false
		}
	}
	for i := range a.mc {
		if a.mc[i] != b.mc[i] {
			return false
		}
	}
	for i := range a.cur {
		if a.cur[i].busy != b.cur[i].busy || a.cur[i].ops != b.cur[i].ops {
			return false
		}
	}
	return true
}

// ffSample is the once-per-leader-item detector tick, invoked between
// events (after the current event's handler has fully run). It walks the
// search → candidate → validate → jump ladder described in the package
// comment.
func (rs *runState) ffSample() {
	ff := &rs.ff
	if rs.running != len(rs.strands) {
		rs.ffDisarm() // a strand retired: the tail is never periodic
		return
	}
	if ff.budget <= 0 {
		rs.ffDisarm()
		return
	}
	idx := ff.leader.items
	if ff.candSet && idx < ff.cand.at {
		return // waiting for a validation checkpoint: no sample taken
	}
	ff.budget--
	h, ok := rs.ffFingerprint()
	if !ok {
		rs.ffDisarm() // closure events pending: state not typed-representable
		return
	}
	if ff.candSet {
		cur := rs.ffTakeSnap(idx)
		ok := h == ff.cand.fp && len(ff.rec) <= ffRecLimit
		if ok {
			ffComputeDelta(&ff.vd, ff.cand.base, cur)
			ok = ffDeltaEqual(&ff.vd, &ff.cand.d)
		}
		if ok && ff.cand.stage == 1 {
			// First validation leg passed: keep the recorded trace as the
			// reference and record one more period for the strides.
			ff.rec, ff.recPrev = ff.recPrev[:0], ff.rec
			ff.pool = append(ff.pool, ff.cand.base)
			ff.cand.base = cur
			ff.cand.at = idx + ff.cand.period
			ff.cand.stage = 2
			return
		}
		if ok {
			// Second leg passed: derive per-access strides between the two
			// consecutive period traces; congruent traces prove the access
			// stream advances by fixed per-access strides.
			ok = len(ff.rec) == len(ff.recPrev)
			if ok {
				ff.strides = ff.strides[:0]
				for i := range ff.rec {
					a, b := &ff.recPrev[i], &ff.rec[i]
					if a.write != b.write || a.hit != b.hit || a.vdirty != b.vdirty {
						ok = false
						break
					}
					ff.strides = append(ff.strides, int64(b.addr)-int64(a.addr))
				}
			}
			if ok {
				rs.ffJump(&ff.cand.d)
				ff.pool = append(ff.pool, ff.cand.base, cur)
				ff.candSet = false
				ff.recOn = false
				for fp, sn := range ff.seen {
					ff.pool = append(ff.pool, sn)
					delete(ff.seen, fp)
				}
				return
			}
		}
		// Validation failed: recycle the candidate and treat this sample
		// as a fresh observation.
		ff.pool = append(ff.pool, ff.cand.base)
		ff.candSet = false
		ff.recOn = false
		rs.ffObserve(h, cur)
		return
	}
	rs.ffObserve(h, rs.ffTakeSnap(idx))
}

// ffObserve files a sample whose fingerprint may already be known: a
// repeat establishes a candidate period to validate, a fresh fingerprint
// joins the search map.
func (rs *runState) ffObserve(h uint64, cur *ffSnap) {
	ff := &rs.ff
	prev, seen := ff.seen[h]
	if !seen {
		ff.seen[h] = cur
		return
	}
	period := cur.idx - prev.idx
	if period <= 0 || cur.now <= prev.now {
		ff.pool = append(ff.pool, cur)
		return
	}
	ff.cand.fp = h
	ff.cand.period = period
	ff.cand.at = cur.idx + period
	ff.cand.stage = 1
	ffComputeDelta(&ff.cand.d, prev, cur)
	ff.cand.base = cur
	ff.candSet = true
	ff.rec = ff.rec[:0]
	ff.recOn = true
}

// ffCapacityRoom returns how many further misses may be credited before
// entering the protected zone of the next L2 capacity turnover — 0 when
// the miss stream is already inside a zone. Turnovers sit where the victim
// population changes: sets finish filling (capacity minus warm lines),
// then every full capacity's worth of inserts after that; each is
// protected by a zone of ffCapacityZoneSets inserts per set on both sides.
func (ff *ffState) ffCapacityRoom(misses, zone int64) int64 {
	warm := ff.warm
	if warm > ff.capLines {
		warm = ff.capLines
	}
	b := ff.capLines - warm // first boundary: sets full
	if b == 0 {
		b = ff.capLines // a fully pre-warmed cache has no fill transition
	}
	for b+zone <= misses {
		b += ff.capLines
	}
	if misses >= b-zone {
		return 0
	}
	return b - zone - misses
}

// ffJump applies k validated periods analytically. k is the largest
// multiplier that keeps every generator inside its uniform region and the
// miss stream clear of the next L2 capacity turnover.
func (rs *runState) ffJump(d *ffDelta) {
	ff := &rs.ff
	k := int64(-1)
	for i := range rs.strands {
		di := d.items[i]
		if di <= 0 {
			continue
		}
		ki := ff.gens[i].UniformRemaining() / di
		if k < 0 || ki < k {
			k = ki
		}
	}
	if d.l2.Misses > 0 {
		zone := ffCapacityZoneSets * ff.capLines / int64(rs.cfg.L2.Ways)
		kc := ff.ffCapacityRoom(rs.l2.Stats().Misses, zone) / d.l2.Misses
		if k < 0 || kc < k {
			k = kc
		}
	}
	if k <= 0 {
		return
	}
	// Replay the skipped interval's cache accesses first, against a
	// checkpoint: the replay is the ground truth for what the interval
	// does to the tag store, and if its counters do not reproduce the
	// validated per-period deltas exactly, the steady state was not
	// stationary over the span — restore the checkpoint and decline the
	// jump (the detector will re-lock on the regime the replay exposed).
	if !rs.ffReplayCache(k, d) {
		return
	}
	dt := d.dt * k

	rs.eng.FastForward(dt, uint64(k)*d.steps)
	ci := 0
	rs.ffCursors(func(c *sim.Cursor) {
		c.Shift(dt)
		c.Account(k*d.cur[ci].busy, k*d.cur[ci].ops)
		ci++
	})
	rs.mc.AddStats(k, d.mc)
	rs.units += k * d.units
	rs.repBytes += k * d.repBytes
	rs.loadStall += k * d.loadStall
	rs.storeStall += k * d.storeStall
	rs.computeStall += k * d.computeStall
	rs.retryStall += k * d.retryStall
	rs.retries += k * d.retries

	for i, s := range rs.strands {
		for j := range s.sb {
			s.sb[j] += dt
		}
		for j := range s.slots {
			s.slots[j] += dt
		}
		if di := d.items[i]; di > 0 {
			ff.gens[i].Skip(k * di)
			s.items += k * di
			// The strand's in-flight item was generated k*di items ago in
			// the new timeline: advance its remaining accesses to the
			// addresses the item at the jumped-to position carries, so the
			// post-jump simulation probes the replay-advanced tag store
			// with true addresses.
			if s.active {
				shift := phys.Addr(k * di * ff.gens[i].ItemStride())
				for a := s.accIdx; a < len(s.item.Acc); a++ {
					s.item.Acc[a].Addr += shift
				}
			}
			// A cached NACK probe refers to the pre-shift line; drop it so
			// the next retry tick re-probes.
			s.retrying = false
		}
	}
	if rs.runAhead > 0 {
		clear(rs.window)
		w := int64(len(rs.window))
		min := int64(-1)
		for _, s := range rs.strands {
			rs.window[s.items%w]++
			if min < 0 || s.items < min {
				min = s.items
			}
		}
		rs.minItems = min
	}

	ff.items += k * d.itemsTotal
	ff.cycles += dt
	ff.period = d.dt
}

// recAccess appends one executed cache access and its outcome to the
// recording, when the detector is recording a validation period.
func (rs *runState) recAccess(line phys.Addr, write, hit, vdirty bool) {
	if len(rs.ff.rec) <= ffRecLimit {
		rs.ff.rec = append(rs.ff.rec, ffAccess{addr: line, write: write, hit: hit, vdirty: vdirty})
	}
}

// ffReplayCache applies the skipped interval's accesses to the tag store —
// installs, LRU updates, evictions and all counters — by replaying the
// recorded period trace k times with each access advanced by its validated
// stride. Timing is extrapolated elsewhere; cache state is real, so the
// victim population (and every capacity-turnover position) stays exact.
//
// The replay doubles as the final validation: every access must reproduce
// the validated period's outcome — hit flag and victim dirtiness — at its
// exact position, because those outcomes (through memory reads, RFO fills
// and writebacks) are what the extrapolated timing assumed. If any access
// deviates — a capacity regime change or conflict shift the two-period
// validation could not see — the tag store is restored from the
// pre-replay checkpoint and the jump is declined. Declines only cost
// time; a committed jump has proven, access by access, that the skipped
// interval replays the validated period.
func (rs *runState) ffReplayCache(k int64, d *ffDelta) bool {
	ff := &rs.ff
	pre := rs.l2.Stats()
	nb := len(d.l2B)
	if cap(ff.l2BPre) < nb {
		ff.l2BPre = make([]cache.Stats, nb)
		ff.l2BPost = make([]cache.Stats, nb)
	}
	ff.l2BPre = ff.l2BPre[:nb]
	ff.l2BPost = ff.l2BPost[:nb]
	rs.l2.BankStatsInto(ff.l2BPre)
	rs.l2.SnapshotInto(&ff.rollback)
	ok := true
replay:
	for it := int64(1); it <= k; it++ {
		for i := range ff.rec {
			a := &ff.rec[i]
			res := rs.l2.Access(a.addr+phys.Addr(it*ff.strides[i]), a.write)
			if res.Hit != a.hit || res.VictimDirty != a.vdirty {
				ok = false
				break replay
			}
		}
	}
	if ok {
		post := rs.l2.Stats()
		if post.Hits != pre.Hits+k*d.l2.Hits ||
			post.Misses != pre.Misses+k*d.l2.Misses ||
			post.Writebacks != pre.Writebacks+k*d.l2.Writebacks {
			ok = false
		}
	}
	if !ok {
		// Restore the tag store and re-impose the pre-replay counters; the
		// run continues as if the jump had never been attempted.
		rs.l2.Restore(&ff.rollback)
		rs.l2.SetStats(ff.l2BPre)
		return false
	}
	return true
}
