package chip

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/trace"
)

// scripted is a hand-written generator for unit tests.
type scripted struct {
	items []trace.Item
	pos   int
}

func (s *scripted) Next(it *trace.Item) bool {
	if s.pos >= len(s.items) {
		return false
	}
	src := s.items[s.pos]
	s.pos++
	it.Acc = append(it.Acc, src.Acc...)
	it.Demand = src.Demand
	it.Units = src.Units
	it.RepBytes = src.RepBytes
	return true
}

func loads(addrs ...phys.Addr) trace.Item {
	it := trace.Item{Units: 1}
	for _, a := range addrs {
		it.Acc = append(it.Acc, trace.Access{Addr: a})
	}
	return it
}

func stores(addrs ...phys.Addr) trace.Item {
	it := trace.Item{Units: 1}
	for _, a := range addrs {
		it.Acc = append(it.Acc, trace.Access{Addr: a, Write: true})
	}
	return it
}

func prog(gens ...trace.Generator) *trace.Program {
	return &trace.Program{Label: "test", Gens: gens}
}

func TestSingleLoadLatency(t *testing.T) {
	cfg := t2cfg()
	m := New(cfg)
	r := m.Run(prog(&scripted{items: []trace.Item{loads(0x10000)}}))
	// xbar + bank + read service + memory latency + xbar.
	want := cfg.XbarLatency + cfg.L2BankService + cfg.Mem.ReadService + cfg.Mem.Latency + cfg.XbarLatency
	if r.Cycles != want {
		t.Errorf("single load took %d cycles, want %d", r.Cycles, want)
	}
}

func TestL2HitFasterThanMiss(t *testing.T) {
	m := New(t2cfg())
	r := m.Run(prog(&scripted{items: []trace.Item{loads(0x10000), loads(0x10000)}}))
	miss := t2cfg().XbarLatency + t2cfg().L2BankService + t2cfg().Mem.ReadService + t2cfg().Mem.Latency + t2cfg().XbarLatency
	hit := t2cfg().XbarLatency + t2cfg().L2HitLatency + t2cfg().XbarLatency
	if r.Cycles != miss+hit {
		t.Errorf("miss+hit took %d cycles, want %d", r.Cycles, miss+hit)
	}
	if r.L2.Hits != 1 || r.L2.Misses != 1 {
		t.Errorf("L2 stats %+v", r.L2)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *trace.Program {
		var gens []trace.Generator
		for i := 0; i < 16; i++ {
			var items []trace.Item
			for k := 0; k < 50; k++ {
				items = append(items, loads(phys.Addr(0x10000+i*4096+k*64)))
				items = append(items, stores(phys.Addr(0x900000+i*4096+k*64)))
			}
			gens = append(gens, &scripted{items: items})
		}
		return prog(gens...)
	}
	m := New(t2cfg())
	r1 := m.Run(mk())
	r2 := m.Run(mk())
	if r1.Cycles != r2.Cycles || r1.Units != r2.Units {
		t.Errorf("non-deterministic: %d/%d vs %d/%d cycles/units", r1.Cycles, r1.Units, r2.Cycles, r2.Units)
	}
}

func TestPostedStoresDoNotBlock(t *testing.T) {
	// A burst of 4 stores to distinct lines completes in far less than 4
	// memory round trips: the strand only pays bank occupancy.
	cfg := t2cfg()
	m := New(cfg)
	r := m.Run(prog(&scripted{items: []trace.Item{
		stores(0x10000, 0x10040, 0x10080, 0x100c0),
	}}))
	roundTrip := cfg.Mem.ReadService + cfg.Mem.Latency
	if r.Cycles >= 2*roundTrip {
		t.Errorf("4 posted stores took %d cycles — stores are blocking", r.Cycles)
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	// With a store buffer of 1, the second store must wait for the first
	// fill; with 8 it must not.
	var items []trace.Item
	for k := 0; k < 16; k++ {
		items = append(items, stores(phys.Addr(0x10000+k*64)))
	}
	cfg1 := t2cfg()
	cfg1.StoreBuffer = 1
	r1 := New(cfg1).Run(prog(&scripted{items: items}))

	items2 := make([]trace.Item, len(items))
	copy(items2, items)
	cfg8 := t2cfg()
	r8 := New(cfg8).Run(prog(&scripted{items: items2}))
	if r1.Cycles <= r8.Cycles {
		t.Errorf("store buffer 1 (%d cycles) not slower than 8 (%d)", r1.Cycles, r8.Cycles)
	}
	if r1.StoreStall == 0 {
		t.Error("no store stalls recorded with buffer depth 1")
	}
}

func TestMSHRAblationOverlapsLoads(t *testing.T) {
	// One item with 4 independent loads: with 4 MSHRs the latencies
	// overlap; with 1 they serialize.
	mk := func() *trace.Program {
		return prog(&scripted{items: []trace.Item{
			loads(0x10000, 0x20000, 0x30000, 0x40000),
		}})
	}
	cfg1 := t2cfg()
	r1 := New(cfg1).Run(mk())
	cfg4 := t2cfg()
	cfg4.MSHRPerStrand = 4
	r4 := New(cfg4).Run(mk())
	if r4.Cycles >= r1.Cycles {
		t.Errorf("4 MSHRs (%d cycles) not faster than 1 (%d)", r4.Cycles, r1.Cycles)
	}
	if r1.Cycles < 4*t2cfg().Mem.Latency {
		t.Errorf("1 MSHR did not serialize: %d cycles", r1.Cycles)
	}
}

func TestRunAheadWindowCouplesStrands(t *testing.T) {
	// Strand 0 has fast work (hits), strand 1 slow work (misses). With a
	// run-ahead window, strand 0 must not finish long before strand 1
	// starts its last item.
	mkFast := func() trace.Generator {
		var items []trace.Item
		for k := 0; k < 40; k++ {
			items = append(items, trace.Item{Units: 1, Demand: cpu.Demand{IntOps: 1}})
		}
		return &scripted{items: items}
	}
	mkSlow := func() trace.Generator {
		var items []trace.Item
		for k := 0; k < 40; k++ {
			items = append(items, loads(phys.Addr(0x10000+k*64*8)))
		}
		return &scripted{items: items}
	}
	cfg := t2cfg()
	cfg.RunAhead = 2
	r := New(cfg).Run(prog(mkFast(), mkSlow()))

	cfgFree := t2cfg()
	cfgFree.RunAhead = 0
	rFree := New(cfgFree).Run(prog(mkFast(), mkSlow()))

	// Total cycles equal (the slow strand dominates), but the coupled run
	// must schedule the fast strand across the whole horizon, which shows
	// up as nonzero parked time... observable via identical finish but
	// the run-ahead window preventing early retirement is internal; the
	// cheap observable: both runs complete and produce the same units.
	if r.Units != 80 || rFree.Units != 80 {
		t.Errorf("units %d / %d, want 80", r.Units, rFree.Units)
	}
	if r.Cycles < rFree.Cycles {
		t.Errorf("coupled run (%d) finished before free run (%d)", r.Cycles, rFree.Cycles)
	}
}

func TestXORMappingRemovesAliasing(t *testing.T) {
	// The A1 ablation: congruent streams that convoy under the T2 mapping
	// spread out under the hashed mapping.
	mk := func() *trace.Program {
		var gens []trace.Generator
		for th := 0; th < 64; th++ {
			var items []trace.Item
			base := phys.Addr(0x1000000 + th*65536)
			for k := 0; k < 64; k++ {
				// Two reads congruent mod 512 plus a store, like triad.
				items = append(items, trace.Item{
					Units: 8,
					Acc: []trace.Access{
						{Addr: base + phys.Addr(k*64)},
						{Addr: base + 0x200000 + phys.Addr(k*64)},
						{Addr: base + 0x400000 + phys.Addr(k*64), Write: true},
					},
					Demand:   cpu.Demand{MemOps: 24, Flops: 16, IntOps: 8},
					RepBytes: 192,
				})
			}
			gens = append(gens, &scripted{items: items})
		}
		return prog(gens...)
	}
	t2 := New(t2cfg())
	rT2 := t2.Run(mk())

	cfgX := t2cfg()
	cfgX.Mapping = phys.XORMapping{}
	rX := New(cfgX).Run(mk())
	if rX.GBps < 1.5*rT2.GBps {
		t.Errorf("hashed mapping %.2f GB/s not well above T2 mapping %.2f GB/s", rX.GBps, rT2.GBps)
	}
}

func TestPlacementEquidistant(t *testing.T) {
	cfg := t2cfg()
	counts := make(map[int]int)
	for th := 0; th < 16; th++ {
		core, group := cfg.Place(th)
		counts[core]++
		if group != th/8%2 {
			t.Errorf("thread %d group %d", th, group)
		}
	}
	for core, c := range counts {
		if c != 2 {
			t.Errorf("core %d has %d threads, want 2", core, c)
		}
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	m := New(t2cfg())
	r := m.Run(prog(&scripted{items: []trace.Item{
		{Units: 8, RepBytes: 192, Acc: []trace.Access{{Addr: 0x10000}}},
	}}))
	if r.Units != 8 || r.RepBytes != 192 {
		t.Errorf("units/bytes %d/%d", r.Units, r.RepBytes)
	}
	if r.GBps <= 0 || r.MUPs <= 0 || r.Seconds <= 0 {
		t.Errorf("derived metrics %+v", r)
	}
}

func TestTooManyThreadsPanics(t *testing.T) {
	m := New(t2cfg())
	gens := make([]trace.Generator, 65)
	for i := range gens {
		gens[i] = &scripted{}
	}
	defer func() {
		if recover() == nil {
			t.Error("65 threads on 64 strands did not panic")
		}
	}()
	m.Run(prog(gens...))
}

// TestTeamSizeValidationNamesTheTopology pins the team-size check against
// Config.MaxThreads: an oversized team must fail loudly with the machine's
// topology in the message — never be silently wrapped onto occupied
// strands — and the check must follow the configured topology, not the
// default one.
func TestTeamSizeValidationNamesTheTopology(t *testing.T) {
	cfg := t2cfg()
	cfg.Cores = 2
	cfg.StrandsPerCore = 4
	m := New(cfg)
	gens := make([]trace.Generator, 9) // one more than 2x4 strands
	for i := range gens {
		gens[i] = &scripted{}
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("9 threads on 8 strands did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T), want a message", r, r)
		}
		for _, frag := range []string{"9 threads", "8 hardware strands", "2 cores", "4 strands"} {
			if !strings.Contains(msg, frag) {
				t.Errorf("panic message %q does not name %q", msg, frag)
			}
		}
	}()
	m.Run(prog(gens...))
}

// marching generates items streaming loads and a store across memory — a
// synthetic triad that exercises misses, dirty evictions, NACK retries and
// the run-ahead window. Its Next never allocates after the first item.
type marching struct {
	n    int
	pos  int
	addr phys.Addr
}

func (g *marching) Next(it *trace.Item) bool {
	if g.pos >= g.n {
		return false
	}
	g.pos++
	it.Acc = append(it.Acc,
		trace.Access{Addr: g.addr},
		trace.Access{Addr: g.addr + 1<<22},
		trace.Access{Addr: g.addr + 2<<22, Write: true})
	g.addr += phys.LineSize
	it.Demand = cpu.Demand{MemOps: 3, Flops: 2, IntOps: 1}
	it.Units = 8
	it.RepBytes = 24
	return true
}

// TestRunLoopAllocationsDoNotScaleWithWork is the allocation regression
// for the steady-state run loop: quadrupling the simulated work must not
// change the allocation count, because every per-event and per-access cost
// (typed wakeups, single-probe L2 path) is allocation-free. Only fixed
// per-run setup (cache arrays, strands, program plumbing) may allocate.
func TestRunLoopAllocationsDoNotScaleWithWork(t *testing.T) {
	run := func(items int) func() {
		return func() {
			gens := make([]trace.Generator, 16)
			for i := range gens {
				gens[i] = &marching{n: items, addr: phys.Addr(i) << 24}
			}
			p := prog(gens...)
			p.WarmLines = 1024
			New(t2cfg()).Run(p)
		}
	}
	const rounds = 5
	base := testing.AllocsPerRun(rounds, run(250))
	big := testing.AllocsPerRun(rounds, run(1000))
	// 16 strands × 750 extra items × 3 accesses would be tens of thousands
	// of allocations if the event or access path regressed to closures or
	// boxing; allow a small fixed slack for runtime noise.
	if delta := big - base; delta > 64 {
		t.Errorf("4x work grew run allocations by %.0f (from %.0f to %.0f); hot path is no longer allocation-free", delta, base, big)
	}
}

// t2cfg is the calibrated T2 machine the historical chip tests were
// written against. It mirrors the "t2" profile in internal/machine, which
// cannot be imported here without an import cycle; the machine package's
// TestT2ProfileMatchesCalibratedConfig pins the two to each other.
func t2cfg() Config {
	return Config{
		Cores:          8,
		StrandsPerCore: 8,
		GroupsPerCore:  2,
		ClockHz:        1.2e9,
		XbarLatency:    3,
		L2HitLatency:   20,
		L2BankService:  4,
		L2:             cache.Derive(4<<20, 16, phys.T2()),
		Mem:            mem.Defaults(),
		Mapping:        phys.T2(),
		MSHRPerStrand:  1,
		StoreBuffer:    8,
		RetryDelay:     24,
		RunAhead:       2,
	}
}
