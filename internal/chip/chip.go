// Package chip assembles the substrates into a cycle-approximate
// multi-core machine model and runs kernel programs on it. Config is a
// full machine description — topology, latencies, cache and controller
// geometry, address interleave; the named, validated configurations
// (the calibrated UltraSPARC T2 and its controller-scaling variants) live
// in the internal/machine profile registry.
//
// Execution model: every simulated software thread is pinned to one
// hardware strand (distributed equidistantly across the eight cores, as in
// the paper's measurements). A strand repeatedly pulls a work item from its
// trace generator, performs the item's line accesses through crossbar,
// banked L2 and memory controllers, then charges the item's instruction
// demand to the core's shared pipelines, and reschedules itself.
//
//   - Loads stall the strand until the data returns, and a strand has a
//     single outstanding miss (the T2 property that makes many threads per
//     core mandatory).
//   - Stores are posted: the strand deposits them in a store buffer of
//     depth StoreBuffer and proceeds; the L2 performs the read-for-
//     ownership fill asynchronously, consuming controller read bandwidth.
//     A full store buffer stalls the strand until the oldest fill lands.
//   - Dirty evictions become posted writebacks on the controllers'
//     southbound channels.
//
// Aliasing convoys, latency hiding, capacity misses and the bidirectional-
// transfer overhead all emerge from this loop; nothing is special-cased
// per benchmark.
package chip

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config is the full machine description.
type Config struct {
	Cores          int
	StrandsPerCore int
	GroupsPerCore  int
	ClockHz        float64
	XbarLatency    int64 // crossbar traversal, each direction
	L2HitLatency   int64 // load-to-use latency of an L2 hit
	L2BankService  int64 // bank occupancy per access
	L2             cache.Config
	Mem            mem.Config
	Mapping        phys.Mapping
	MSHRPerStrand  int   // outstanding load misses per strand; the T2 has 1
	StoreBuffer    int   // posted stores in flight per strand; the T2 has 8
	RetryDelay     int64 // crossbar NACK-and-retry round trip when an MC queue is full
	// RunAhead bounds how many work items any strand may lead the slowest
	// active strand by. It models the phase coherence of real T2 strands —
	// cycle-by-cycle round-robin issue within a thread group plus finite
	// per-bank miss resources keep concurrent loop iterations tightly
	// aligned, which is precisely why the paper observes that congruent
	// streams make "all threads hit exactly one memory controller at a
	// time" (Sect. 2.1). Setting RunAhead to 0 removes the bound; the
	// aliasing phenomenon then dissolves (see the run-ahead ablation
	// benchmark), which demonstrates that phase coherence is a necessary
	// ingredient of the effect.
	RunAhead int64
	// DisableFastForward forces full event-by-event simulation even when a
	// run qualifies for steady-state fast-forward (see forward.go). It is
	// a validation toggle: results must be identical either way, and the
	// equivalence tests flip it to prove that.
	DisableFastForward bool
}

// MaxThreads returns the hardware strand count.
func (c Config) MaxThreads() int { return c.Cores * c.StrandsPerCore }

// Place returns the (core, group) of software thread t in a team of n,
// distributing threads equidistantly across cores first, then groups —
// the placement used for all measurements in the paper.
func (c Config) Place(t int) (core, group int) {
	core = t % c.Cores
	slot := t / c.Cores
	group = slot % c.GroupsPerCore
	return core, group
}

// Result is the outcome of one program run.
type Result struct {
	Label   string
	Threads int
	Cycles  int64
	Seconds float64

	Units    int64 // work units (elements, lattice sites)
	RepBytes int64 // benchmark-reported bytes

	GBps       float64 // reported bandwidth, as the benchmarks print it
	ActualGBps float64 // true line traffic at the controllers (incl. RFO, writebacks)
	MUPs       float64 // million work units per second

	L2      cache.Stats
	MC      []mem.CtlStats
	MCUtil  []float64 // per-controller busy fraction of the run
	FPUBusy int64     // summed FPU busy cycles

	// Time breakdown, summed over strands (diagnostics).
	LoadStall    int64 // cycles strands spent waiting for loads
	StoreStall   int64 // cycles strands spent blocked on a full store buffer
	ComputeStall int64 // cycles strands spent in/waiting for pipelines
	RetryStall   int64 // cycles strands spent retrying NACKed requests
	Retries      int64 // number of NACK-and-retry round trips

	// Fast-forward telemetry (see forward.go). These describe how the run
	// was computed, not what it computed: a fast-forwarded run reports the
	// same Cycles, counters and traffic as full simulation, plus how much
	// of the work was covered analytically.
	FFItems         int64 // work items covered by steady-state fast-forward
	FFCycles        int64 // cycles covered by steady-state fast-forward
	FFPeriod        int64 // last detected steady-state period in cycles (0: none)
	FFJumps         int64 // committed analytic jumps (item- or iteration-periodic)
	FFSkippedEpochs int64 // engine event steps covered analytically instead of simulated

	// Sharded-engine telemetry (see parallel.go), zero for sequential runs.
	// Like the FF fields these are deterministic descriptions of the run —
	// invariant under the worker count, which never appears here because it
	// is an execution detail that must not change a single result byte.
	Shards          int64   // controller domains the run was partitioned into
	EpochWidth      int64   // epoch width in cycles (conservative bound, or the relaxed override)
	Epochs          int64   // synchronization rounds: serial merges (classic loop) or batched rounds
	BatchedEpochs   int64   // micro-epochs executed (== Epochs under the classic loop)
	BarrierStalls   int64   // (shard, micro-epoch) pairs where a shard had no event to run
	BusyShardRounds int64   // (shard, round) pairs where the shard executed at least one event
	BusyShardPct    float64 // 100 * BusyShardRounds / (Shards * Epochs)

	// Speculation telemetry (see speculate.go), zero unless
	// ShardOptions.Speculate. Deterministic and worker-invariant like the
	// fields above: every burst decision folds machine-wide aggregates.
	// Simulation results are byte-identical with speculation on or off;
	// these counters (and the loop telemetry above) are the only fields
	// that may differ between the two modes.
	SpecEpochs    int64 // micro-epochs executed inside committed bursts
	SpecCommits   int64 // speculative bursts that validated and committed
	SpecRollbacks int64 // speculative bursts rolled back and re-executed
}

// Balance returns min/max controller utilization, the paper's notion of
// "uniform utilization of all four memory controllers". 1 is perfectly
// balanced; values near 0 mean a single controller carried the run.
func (r Result) Balance() float64 {
	if len(r.MCUtil) == 0 {
		return 0
	}
	min, max := r.MCUtil[0], r.MCUtil[0]
	for _, u := range r.MCUtil[1:] {
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	if max == 0 {
		return 0
	}
	return min / max
}

// Machine runs programs on a Config. A Machine carries no observable state
// between runs — every Run produces the result a freshly built machine
// would — but it retains its substrate allocations (tag arrays, cursors,
// event wheel, strand records) and a snapshot of the warmed-up L2, so
// reusing one Machine across the points of a sweep costs a reset instead
// of megabytes of reconstruction. A Machine may be reused freely but not
// concurrently; sweep harnesses keep one per worker (see exp.Scratch).
type Machine struct {
	cfg     Config
	rs      *runState
	pps     *parState // sharded-engine run state (see parallel.go)
	shardOK int8      // memoized Shardable verdict: 0 unknown, 1 yes, -1 no
	// Warm-up L2 image: PrefillSequential over WarmLines is identical for
	// every run of a machine, so it is replayed once and restored by
	// memcpy afterwards.
	warmImg   *cache.Image
	warmLines int64
}

// New validates the configuration and returns a machine.
func New(cfg Config) *Machine {
	if cfg.Cores <= 0 || cfg.StrandsPerCore <= 0 || cfg.GroupsPerCore <= 0 {
		panic(fmt.Sprintf("chip: invalid topology %+v", cfg))
	}
	if cfg.Mapping == nil {
		panic("chip: nil mapping")
	}
	if cfg.MSHRPerStrand <= 0 {
		panic("chip: MSHRPerStrand must be >= 1")
	}
	if cfg.StoreBuffer <= 0 {
		panic("chip: StoreBuffer must be >= 1")
	}
	if cfg.ClockHz <= 0 {
		panic("chip: ClockHz must be positive")
	}
	return &Machine{cfg: cfg}
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

type strand struct {
	id     int
	gen    trace.Generator
	core   int
	group  int
	item   trace.Item
	active bool       // item holds unconsumed work
	accIdx int        // next access within item
	items  int64      // completed items (run-ahead accounting)
	parked bool       // blocked on the run-ahead window
	slots  []sim.Time // MSHR completion times (loads)
	sb     []sim.Time // store-buffer ring: completion times of posted fills
	sbPos  int
	// NACK-retry fast path: while a strand polls a full controller queue,
	// its miss probe stays exact as long as the set's install version is
	// unchanged, so retry ticks skip the tag lookup and address decode.
	// This is purely an equivalent-computation shortcut — the re-probe it
	// elides is proven to return the identical result.
	retrying bool
	rProbe   cache.Probe
	rVer     uint32
	rCtl     int
}

// evStep is the single typed-event kind of the run loop: resume strand arg.
// Every wakeup — load return, store-buffer drain, NACK retry, compute
// completion, unpark — is this event, so scheduling one is allocation-free
// (see the sim package's engine contract).
const evStep sim.Kind = 1

type runState struct {
	cfg      Config
	eng      sim.Engine
	l2       *cache.Banked
	mc       *mem.System
	cores    *cpu.Cores
	banks    []sim.Cursor
	strands  []*strand
	pool     []*strand // grown to the largest team seen, reused across runs
	handler  sim.Handler
	ff       ffState
	units    int64
	repBytes int64
	finish   sim.Time
	running  int

	loadStall    int64
	storeStall   int64
	computeStall int64
	retryStall   int64
	retries      int64

	// Run-ahead window state. Because item counts only increase by one and
	// the window bounds every active strand's count to
	// [minItems, minItems+runAhead], a ring of runAhead+1 frequency buckets
	// (indexed by count mod window size) tracks the team minimum in O(1)
	// per completion instead of an O(threads) rescan.
	runAhead int64
	window   []int32 // window[v % len]: active strands with exactly v items
	active   int     // strands not yet retired
	minItems int64   // min over active strands; -1 once all retired
	parked   []*strand
}

// bumpItems records an item completion and wakes parked strands when the
// team minimum advances.
func (rs *runState) bumpItems(s *strand) {
	old := s.items
	s.items++
	if rs.ff.on && s == rs.ff.leader {
		rs.ff.pending = true // sample once the current event has fully run
	}
	if rs.runAhead <= 0 {
		return
	}
	w := int64(len(rs.window))
	rs.window[old%w]--
	rs.window[s.items%w]++
	if old == rs.minItems && rs.window[old%w] == 0 {
		rs.advanceMin()
	}
}

// retire removes a finished strand from run-ahead accounting.
func (rs *runState) retire(s *strand) {
	if rs.runAhead <= 0 {
		return
	}
	rs.window[s.items%int64(len(rs.window))]--
	rs.active--
	if s.items == rs.minItems {
		rs.advanceMin()
	}
}

// advanceMin slides minItems forward to the next occupied bucket (at most
// runAhead steps away) and wakes parked strands on any change.
func (rs *runState) advanceMin() {
	if rs.active == 0 {
		if rs.minItems != -1 {
			rs.minItems = -1
			rs.wakeParked()
		}
		return
	}
	w := int64(len(rs.window))
	min := rs.minItems
	for rs.window[min%w] == 0 {
		min++
	}
	if min != rs.minItems {
		rs.minItems = min
		rs.wakeParked()
	}
}

func (rs *runState) wakeParked() {
	if len(rs.parked) == 0 {
		return
	}
	ps := rs.parked
	rs.parked = rs.parked[:0]
	now := rs.eng.Now()
	for _, p := range ps {
		p.parked = false
		rs.eng.Schedule(now, evStep, int32(p.id))
	}
}

// overWindow reports whether the strand must park before starting another
// item because it is too far ahead of the slowest active strand.
func (rs *runState) overWindow(s *strand) bool {
	return rs.runAhead > 0 && rs.minItems >= 0 && s.items-rs.minItems >= rs.runAhead
}

// load performs one demand line read beginning at time t and returns the
// time the data is back at the strand. The probe carries the single tag
// lookup (and bank computation) already performed by step's admission
// check; Commit finishes the access without rescanning.
func (rs *runState) load(t sim.Time, line phys.Addr, p cache.Probe) sim.Time {
	arrive := t + rs.cfg.XbarLatency
	bankStart, bankDone := rs.banks[p.Bank].Acquire(arrive, rs.cfg.L2BankService)
	res := rs.l2.Commit(p, false)
	if rs.ff.recOn {
		rs.recAccess(line, false, res.Hit, res.VictimDirty, res.Victim)
	}
	var dataAt sim.Time
	if res.Hit {
		dataAt = bankStart + rs.cfg.L2HitLatency
		if dataAt < bankDone {
			dataAt = bankDone
		}
	} else {
		dataAt = rs.mc.Read(bankDone, line)
		if res.VictimDirty {
			rs.mc.Write(bankDone, res.Victim)
		}
	}
	return dataAt + rs.cfg.XbarLatency
}

// store posts one line store beginning at time t. The strand only waits
// for L2 bank occupancy (and, via the caller, for store-buffer space); on a
// miss the read-for-ownership fill proceeds asynchronously. The returned
// times are (strand-visible completion, fill completion).
func (rs *runState) store(t sim.Time, line phys.Addr, p cache.Probe) (proceed, fill sim.Time) {
	arrive := t + rs.cfg.XbarLatency
	_, bankDone := rs.banks[p.Bank].Acquire(arrive, rs.cfg.L2BankService)
	res := rs.l2.Commit(p, true)
	if rs.ff.recOn {
		rs.recAccess(line, true, res.Hit, res.VictimDirty, res.Victim)
	}
	fill = bankDone
	if !res.Hit {
		fill = rs.mc.Read(bankDone, line)
		if res.VictimDirty {
			rs.mc.Write(bankDone, res.Victim)
		}
	}
	return bankDone, fill
}

// step advances one strand. It is re-entered by the event engine each time
// the strand unblocks. All cursor acquisitions happen at (or within a few
// cycles of) the current event time, which keeps the FCFS cursors exact:
// every blocking wait — a load miss, a full store buffer, a busy MSHR set —
// returns to the engine so that other strands' requests interleave in true
// time order.
func (rs *runState) step(s *strand) {
	t := rs.eng.Now()
	// Retry fast path: if nothing was installed into the probed set since
	// the NACK, the cached probe is exact; only the queue check remains.
	probeValid := false
	if s.retrying {
		s.retrying = false
		if rs.l2.InstallVersion(s.rProbe) == s.rVer {
			if rs.mc.FullCtl(t, s.rCtl) {
				rs.retryStall += rs.cfg.RetryDelay
				rs.retries++
				s.retrying = true
				rs.eng.Schedule(t+rs.cfg.RetryDelay, evStep, int32(s.id))
				return
			}
			probeValid = true // admission passed; reuse the probe below
		}
	}
	for {
		if !s.active {
			if rs.overWindow(s) {
				s.parked = true
				rs.parked = append(rs.parked, s)
				return
			}
			s.item.Reset()
			if !s.gen.Next(&s.item) {
				rs.running--
				rs.retire(s)
				if t > rs.finish {
					rs.finish = t
				}
				return
			}
			s.active = true
			s.accIdx = 0
		}
		for s.accIdx < len(s.item.Acc) {
			a := s.item.Acc[s.accIdx]
			line := phys.LineOf(a.Addr)
			// One tag-array probe serves both the NACK admission check and,
			// via Commit inside load/store, the access itself.
			var probe cache.Probe
			if probeValid {
				probe = s.rProbe
				probeValid = false
			} else {
				probe = rs.l2.ProbeLine(line)
				if !probe.Hit && rs.mc.Full(t, line) {
					rs.retryStall += rs.cfg.RetryDelay
					rs.retries++
					s.retrying = true
					s.rProbe = probe
					s.rVer = rs.l2.InstallVersion(probe)
					s.rCtl = rs.mc.Controller(line)
					rs.eng.Schedule(t+rs.cfg.RetryDelay, evStep, int32(s.id))
					return
				}
			}
			if a.Write {
				// Store-buffer backpressure: block until the oldest posted
				// fill lands if all entries are in flight.
				if oldest := s.sb[s.sbPos]; oldest > t {
					rs.storeStall += oldest - t
					rs.eng.Schedule(oldest, evStep, int32(s.id))
					return
				}
				proceed, fill := rs.store(t, line, probe)
				s.sb[s.sbPos] = fill
				s.sbPos = (s.sbPos + 1) % len(s.sb)
				s.accIdx++
				t = proceed // bounded lookahead: xbar + bank service
				continue
			}
			if len(s.slots) <= 1 {
				// Single outstanding miss: block until the data returns.
				done := rs.load(t, line, probe)
				s.accIdx++
				rs.loadStall += done - t
				rs.eng.Schedule(done, evStep, int32(s.id))
				return
			}
			// MSHR ablation: issue into a free slot, or block until the
			// earliest slot frees.
			best := 0
			for i := 1; i < len(s.slots); i++ {
				if s.slots[i] < s.slots[best] {
					best = i
				}
			}
			if s.slots[best] > t {
				rs.loadStall += s.slots[best] - t
				rs.eng.Schedule(s.slots[best], evStep, int32(s.id))
				return
			}
			s.slots[best] = rs.load(t, line, probe)
			s.accIdx++
		}
		if len(s.slots) > 1 {
			// Drain outstanding loads before the dependent compute.
			var max sim.Time
			for i := range s.slots {
				if s.slots[i] > max {
					max = s.slots[i]
				}
			}
			if max > t {
				rs.loadStall += max - t
				rs.eng.Schedule(max, evStep, int32(s.id))
				return
			}
		}
		tc := rs.cores.Compute(t, s.core, s.group, s.item.Demand)
		rs.computeStall += tc - t
		rs.units += s.item.Units
		rs.repBytes += s.item.RepBytes
		rs.bumpItems(s)
		s.active = false
		if tc > t {
			rs.eng.Schedule(tc, evStep, int32(s.id))
			return
		}
	}
}

// validateTeam checks the program's team size against the machine topology
// up front: Place wraps thread indices modulo the core count, so an
// oversized team would otherwise be silently co-scheduled onto already-
// occupied strands and quietly misreport every per-strand stall and
// placement result.
func (m *Machine) validateTeam(prog *trace.Program) {
	n := len(prog.Gens)
	if n == 0 {
		panic("chip: program with no threads")
	}
	if max := m.cfg.MaxThreads(); n > max {
		panic(fmt.Sprintf("chip: team of %d threads exceeds the machine's %d hardware strands (%d cores x %d strands); shrink the team or pick a larger machine profile",
			n, max, m.cfg.Cores, m.cfg.StrandsPerCore))
	}
}

// warmL2 pre-fills l2 with dirty lines of an address range no kernel uses,
// so the first sweep already evicts and writes back at the steady-state
// rate. The warmed tag store is identical for every run of a machine, so
// it is simulated once and restored from a snapshot on reuse; both engines
// (sequential and sharded) share the snapshot, since their caches have
// identical geometry.
func (m *Machine) warmL2(l2 *cache.Banked, warmLines int64) {
	if warmLines <= 0 {
		return
	}
	if m.warmImg != nil && m.warmLines == warmLines {
		l2.Restore(m.warmImg)
		return
	}
	const warmBase phys.Addr = 1 << 40
	l2.PrefillSequential(warmBase, warmLines, true)
	l2.ResetStats()
	m.warmImg = l2.Snapshot()
	m.warmLines = warmLines
}

// Run executes prog to completion and reports aggregate performance. It is
// RunCtx without a cancellation source; since a background run cannot be
// cancelled, it cannot fail.
func (m *Machine) Run(prog *trace.Program) Result {
	res, err := m.RunCtx(context.Background(), prog)
	if err != nil {
		// Only reachable under fault injection (an armed step budget): the
		// caller asked for the uncancellable API, so a forced halt is a
		// harness bug here.
		panic(fmt.Sprintf("chip: uncancellable Run aborted: %v", err))
	}
	return res
}

// RunCtx executes prog to completion, or until ctx is cancelled. On
// cancellation it returns the partial Result accumulated so far together
// with a *CancelError carrying the cancellation cause and the observed
// cancel→halt latency; the partial Result is accounting-grade telemetry
// only and must never enter a trajectory. A context that can never be
// cancelled costs nothing: the engine's stop flag stays nil and the run
// takes the exact fault-free path.
func (m *Machine) RunCtx(ctx context.Context, prog *trace.Program) (Result, error) {
	m.validateTeam(prog)
	n := len(prog.Gens)
	rs := m.rs
	if rs == nil {
		rs = &runState{
			cfg:      m.cfg,
			l2:       cache.New(m.cfg.L2, m.cfg.Mapping),
			mc:       mem.New(m.cfg.Mem, m.cfg.Mapping),
			cores:    cpu.New(cpu.Config{Cores: m.cfg.Cores, GroupsPerCore: m.cfg.GroupsPerCore, LSUPipes: 2}),
			banks:    make([]sim.Cursor, m.cfg.Mapping.Banks()),
			runAhead: m.cfg.RunAhead,
		}
		if rs.runAhead > 0 {
			rs.window = make([]int32, rs.runAhead+1)
		}
		rs.handler = func(_ sim.Kind, arg int32) {
			rs.step(rs.strands[arg])
			if rs.ff.pending {
				rs.ff.pending = false
				rs.ffSample()
			}
		}
		m.rs = rs
	} else {
		rs.eng.Reset()
		rs.l2.Reset()
		rs.mc.Reset()
		rs.cores.Reset()
		for i := range rs.banks {
			rs.banks[i].Reset()
		}
		clear(rs.window)
		rs.parked = rs.parked[:0]
		rs.units, rs.repBytes, rs.finish = 0, 0, 0
		rs.loadStall, rs.storeStall, rs.computeStall = 0, 0, 0
		rs.retryStall, rs.retries = 0, 0
		rs.active, rs.minItems = 0, 0
	}
	rs.running = n
	if rs.runAhead > 0 {
		rs.window[0] = int32(n) // every strand starts at 0 completed items
		rs.active = n
	}
	m.warmL2(rs.l2, prog.WarmLines)
	for len(rs.pool) < n {
		s := &strand{id: len(rs.pool), sb: make([]sim.Time, m.cfg.StoreBuffer)}
		if m.cfg.MSHRPerStrand > 1 {
			s.slots = make([]sim.Time, m.cfg.MSHRPerStrand)
		}
		rs.pool = append(rs.pool, s)
	}
	rs.strands = rs.pool[:n]
	rs.eng.SetHandler(rs.handler)
	for t := 0; t < n; t++ {
		s := rs.strands[t]
		s.gen = prog.Gens[t]
		s.core, s.group = m.cfg.Place(t)
		s.item.Reset()
		s.active, s.accIdx, s.items, s.parked = false, 0, 0, false
		s.retrying = false
		clear(s.sb)
		s.sbPos = 0
		clear(s.slots)
		rs.eng.Schedule(0, evStep, int32(t))
	}
	rs.ffReset()
	rs.ffInit(prog)
	cw := armCancel(ctx, &rs.eng)
	rs.eng.Run()
	rs.ffDisarm()
	var cancelErr *CancelError
	if rs.eng.Interrupted() {
		cancelErr = cw.abortError(ctx)
		// The abort point is wherever the event loop happened to be; count
		// the clock actually reached so the partial telemetry has a horizon.
		if rs.eng.Now() > rs.finish {
			rs.finish = rs.eng.Now()
		}
	}
	cw.done()
	if cancelErr == nil && rs.running != 0 {
		panic("chip: deadlock — strands left running with no events")
	}

	cycles := rs.finish
	if cycles == 0 {
		cycles = 1
	}
	secs := float64(cycles) / m.cfg.ClockHz
	mcStats := rs.mc.Stats()
	var lines int64
	for _, cs := range mcStats {
		lines += cs.Lines()
	}
	res := Result{
		Label:    prog.Label,
		Threads:  n,
		Cycles:   cycles,
		Seconds:  secs,
		Units:    rs.units,
		RepBytes: rs.repBytes,
		L2:       rs.l2.Stats(),
		MC:       mcStats,
		MCUtil:   rs.mc.Utilization(cycles),
		FPUBusy:  rs.cores.TotalFPUBusy(),

		LoadStall:    rs.loadStall,
		StoreStall:   rs.storeStall,
		ComputeStall: rs.computeStall,
		RetryStall:   rs.retryStall,
		Retries:      rs.retries,

		FFItems:         rs.ff.items,
		FFCycles:        rs.ff.cycles,
		FFPeriod:        rs.ff.period,
		FFJumps:         rs.ff.jumps,
		FFSkippedEpochs: rs.ff.skipped,
	}
	res.GBps = float64(rs.repBytes) / secs / 1e9
	res.ActualGBps = float64(lines*m.cfg.L2.LineSize) / secs / 1e9
	res.MUPs = float64(rs.units) / secs / 1e6
	if cancelErr != nil {
		return res, cancelErr
	}
	return res, nil
}
