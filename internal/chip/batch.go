// Batched epoch synchronization: the default execution mode of the
// controller-domain sharded engine.
//
// The classic loop (parallel.go, ShardOptions.NoBatch) rendezvouses every
// epoch: two full spin barriers plus a serial merge on worker 0, with every
// other worker parked. At W = 3-cycle epochs that is hundreds of millions
// of rendezvous per figure run, and the serial merge — global run-ahead
// minimum, parked wakes, termination scan, epoch skip — is a sequential
// section Amdahl charges against every worker.
//
// The batched loop removes the rendezvous entirely. Each worker, after
// running its own shards' epoch, publishes a five-field aggregate of its
// shards (run-ahead local minimum, parked minimum, earliest pending event,
// pending count, running strands) into a generation-stamped slot, then
// reads every other worker's slot for the same epoch and computes the
// global boundary decision — wake eligibility, termination, the empty-epoch
// skip — redundantly and identically. No worker ever waits for more than
// the slowest worker's epoch; there is no serial section and no barrier.
// Workers apply the boundary (global-minimum refresh, parked wakes,
// generation flip, new epoch cursor) to their own shards only, so all
// shard state keeps single-writer discipline.
//
// Correctness of the redundant decision: every input to the boundary is a
// pure function of shard state at the epoch's end, partitioned by owner and
// folded with associative, commutative operators (min, sum), so every
// worker computes the same values the classic serial merge would have. The
// one asymmetry is wakes: the classic merge wakes parked strands before
// scanning pending events, so a wake both blocks termination and pins the
// earliest event to the epoch boundary (skip = 0). The published aggregates
// are computed before any wake, so the boundary decision reconstructs the
// wake's effect symbolically: anyWake (some parked strand's item count is
// within the run-ahead window of the new global minimum) forces
// "not done" and "no skip" — exactly the two consequences the eager wake
// had. Everything else is unchanged, so the two loops execute the same
// micro-epochs in the same per-shard order and produce byte-identical
// Results (pinned by TestShardedBatchingEquivalence).
//
// Memory safety rests on the publication sequence numbers. Slots are
// double-buffered by epoch parity; a worker could only overwrite a slot
// another worker still needs if it ran two epochs ahead, and it cannot:
// publishing epoch e+1 requires having read every worker's epoch-e slot,
// which requires every worker to have finished epoch e, which requires each
// of them to have read every epoch-(e-1) slot. The acquire/release chain
// through the seq atomics also orders every cross-shard mailbox access:
// a shard's epoch-e mailbox writes happen before its owner's seq.Store(e),
// which happens before the consumer's seq load, which happens before the
// consumer's epoch-(e+1) drain.
//
// Telemetry: with no per-epoch rendezvous, "one epoch" stops being the
// natural unit of synchronization cost. The loop groups micro-epochs into
// rounds of batchRound and reports rounds as Result.Epochs (the number of
// bookkeeping beats, the closest analogue of the classic loop's merges),
// micro-epochs as Result.BatchedEpochs, and per-shard activity per round as
// BusyShardRounds/BusyShardPct — a shard that stepped at least once in a
// round was pulling its weight at the only granularity the batched loop
// synchronizes on.
package chip

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// batchRound is the number of micro-epochs per bookkeeping round in the
// batched loop: busy-shard accounting and the reported Epochs count tick
// once per round. The value only shapes telemetry granularity — simulation
// results are identical for any value — and 64 keeps a round's span (192
// cycles at W=3) well under any interesting workload phase.
const batchRound = 64

// wslot is one worker's published epoch aggregate. Fields are atomics so
// the racing reads between publication and the seq handshake are ordered
// loads rather than data races; the seq release/acquire pair provides the
// actual happens-before edge.
type wslot struct {
	localMin atomic.Int64 // min run-ahead items over active own-shard strands; -1 none
	parkMin  atomic.Int64 // min items over parked own-shard strands; -1 none
	earliest atomic.Int64 // earliest pending event or undelivered message time; -1 none
	pending  atomic.Int64 // wheel events + undelivered mailbox messages
	running  atomic.Int64 // strands not yet retired
}

// wpub is one worker's publication record: a sequence number and two
// parity-buffered slots, padded so adjacent workers' records never share a
// cache line (the seq word is the hottest spin target in the engine).
type wpub struct {
	seq  atomic.Int64 // last epoch whose aggregate is published; -1 initially
	slot [2]wslot
	_    [40]byte // pad to 128 bytes
}

// waitFor spins until this record publishes epoch e or an abort is
// observed, reporting false on abort. Mirrors spinBarrier.wait: a short
// pure-load spin, then abort polls and scheduler yields so GOMAXPROCS=1
// still makes progress.
func (p *wpub) waitFor(e int64, abort *atomic.Int32) bool {
	for i := 0; p.seq.Load() < e; i++ {
		if i > 128 {
			if abort.Load() != abortNone {
				return false
			}
			runtime.Gosched()
		}
	}
	return true
}

// epochAgg accumulates the boundary inputs, first over one worker's own
// shards and then — folded with the other workers' published slots — over
// the whole machine. min-valued fields use -1 as "none".
type epochAgg struct {
	localMin int64
	parkMin  int64
	earliest int64
	pending  int64
	running  int64
}

// add folds one shard's end-of-epoch state into the aggregate. Everything
// read here is owned by the calling worker.
func (a *epochAgg) add(sh *pshard) {
	g := sh.gen
	a.running += int64(sh.running)
	a.pending += int64(sh.eng.Pending() + sh.outCount[g])
	if sh.localMin >= 0 && (a.localMin < 0 || sh.localMin < a.localMin) {
		a.localMin = sh.localMin
	}
	if sh.parkMin >= 0 && (a.parkMin < 0 || sh.parkMin < a.parkMin) {
		a.parkMin = sh.parkMin
	}
	if t, ok := sh.eng.PeekTime(); ok && (a.earliest < 0 || int64(t) < a.earliest) {
		a.earliest = int64(t)
	}
	if sh.outCount[g] > 0 && (a.earliest < 0 || int64(sh.outMin[g]) < a.earliest) {
		a.earliest = int64(sh.outMin[g])
	}
}

// fold merges another worker's published slot into the aggregate.
func (a *epochAgg) fold(s *wslot) {
	if v := s.localMin.Load(); v >= 0 && (a.localMin < 0 || v < a.localMin) {
		a.localMin = v
	}
	if v := s.parkMin.Load(); v >= 0 && (a.parkMin < 0 || v < a.parkMin) {
		a.parkMin = v
	}
	if v := s.earliest.Load(); v >= 0 && (a.earliest < 0 || v < a.earliest) {
		a.earliest = v
	}
	a.pending += s.pending.Load()
	a.running += s.running.Load()
}

// runBatched drives the batched epoch loop with the same worker topology as
// the classic loop: shard i belongs to worker i%workers, worker 0 runs on
// the calling goroutine (so the deadlock panic propagates to the caller),
// and a watchdog abort abandons the wait for wedged workers.
func (ps *parState) runBatched(workers int) {
	if workers <= 1 {
		ps.batchedLoop(0, 1, nil)
		return
	}
	pubs := make([]wpub, workers)
	for w := range pubs {
		pubs[w].seq.Store(-1)
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ps.batchedLoop(w, workers, pubs)
		}(w)
	}
	ps.batchedLoop(0, workers, pubs)
	if ps.abort.Load() == abortWatchdog {
		// Same contract as the classic loop: a wedged worker may block
		// forever, so the caller abandons the run state instead of waiting.
		return
	}
	wg.Wait()
}

// markRound closes one bookkeeping round for this shard: it was busy if
// its wheel stepped at all since the previous round boundary.
func (sh *pshard) markRound() {
	if s := sh.eng.Steps(); s != sh.stepsMark {
		sh.busyRounds++
		sh.stepsMark = s
	}
}

// batchedLoop is one worker's whole run. Each iteration executes one
// micro-epoch on the worker's own shards, exchanges aggregates with the
// other workers, computes the global boundary decision redundantly, and
// applies it to its own shards. Every decision input is identical across
// workers, so control flow never diverges: all workers agree on every
// skip, every wake and the final epoch.
func (ps *parState) batchedLoop(w, workers int, pubs []wpub) {
	end := ps.shards[0].epochEnd // == ps.w at entry; thereafter worker-local
	var micro int64
	for e := int64(0); ; e++ {
		if ps.abort.Load() != abortNone {
			break
		}
		var a epochAgg
		a.localMin, a.parkMin, a.earliest = -1, -1, -1
		for i := w; i < len(ps.shards); i += workers {
			sh := ps.shards[i]
			sh.deliver()
			sh.runEpoch()
			a.add(sh)
		}
		if workers > 1 {
			p := &pubs[w]
			s := &p.slot[e&1]
			s.localMin.Store(a.localMin)
			s.parkMin.Store(a.parkMin)
			s.earliest.Store(a.earliest)
			s.pending.Store(a.pending)
			s.running.Store(a.running)
			p.seq.Store(e)
			aborted := false
			for v := range pubs {
				if v == w {
					continue
				}
				if !pubs[v].waitFor(e, &ps.abort) {
					aborted = true
					break
				}
				a.fold(&pubs[v].slot[e&1])
			}
			if aborted {
				break
			}
		}
		micro++
		if w == 0 {
			ps.progress.Store(micro) // watchdog heartbeat
		}

		// The global boundary decision, identical on every worker. anyWake
		// reconstructs the classic merge's eager wake: a wake blocks
		// termination and pins the earliest event to the epoch boundary.
		gm := a.localMin
		anyWake := ps.runAhead > 0 && gm >= 0 && a.parkMin >= 0 && a.parkMin-gm < ps.runAhead
		if a.pending == 0 && !anyWake {
			if w == 0 {
				if a.running != 0 {
					panic("chip: deadlock — strands left running with no events (sharded engine)")
				}
				ps.done = true
			}
			break
		}
		start := end
		if !anyWake && a.earliest >= 0 && sim.Time(a.earliest) > start {
			start += (sim.Time(a.earliest) - start) / ps.w * ps.w
		}
		newEnd := start + ps.w
		for i := w; i < len(ps.shards); i += workers {
			ps.boundary(ps.shards[i], gm, end, newEnd)
		}
		end = newEnd
		if micro%batchRound == 0 {
			for i := w; i < len(ps.shards); i += workers {
				ps.shards[i].markRound()
			}
		}
	}
	for i := w; i < len(ps.shards); i += workers {
		ps.shards[i].markRound() // close the partial final round
	}
	if w == 0 {
		ps.micro = micro
		ps.epochs = (micro + batchRound - 1) / batchRound
	}
}

// boundary applies one epoch boundary to a shard the calling worker owns:
// refresh the shard's copy of the global run-ahead minimum, wake eligible
// parked strands at the just-finished epoch's end (the same time the
// classic merge uses), retire the delivered mailbox generation and advance
// the epoch cursor.
func (ps *parState) boundary(sh *pshard, gm int64, end, newEnd sim.Time) {
	if ps.runAhead > 0 {
		sh.gmin = gm
		if len(sh.parked) > 0 {
			kept := sh.parked[:0]
			pm := int64(-1)
			for _, id := range sh.parked {
				s := ps.strands[id]
				if sh.overWindow(s) {
					kept = append(kept, id)
					if pm < 0 || s.items < pm {
						pm = s.items
					}
					continue
				}
				s.parked = false
				sh.eng.Schedule(end, evPStep, id)
			}
			sh.parked = kept
			sh.parkMin = pm
		}
	}
	sh.outCount[sh.gen^1] = 0
	sh.gen ^= 1
	sh.epochEnd = newEnd
}
