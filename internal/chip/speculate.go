// Optimistic speculative epochs for the sharded engine.
//
// The batched loop (batch.go) still pays one aggregate exchange — publish,
// spin, fold — per W-cycle micro-epoch, and the conservative bound keeps W
// at min(xbar, bank-service), a handful of cycles. Workloads phase-locked
// to that grid (the fig4 offset-0/128 convoys) spend most of their epochs
// exchanging aggregates about an almost-idle machine: every strand is
// waiting out a memory round trip that will not complete for dozens of
// epochs, yet every epoch still exchanges, because *some* shard might
// send mail landing just one epoch out.
//
// This file adds the classic optimistic-PDES answer, shaped to preserve
// the engine's byte-identity contract exactly: shards speculate K epochs
// past a committed boundary without exchanging anything, then validate the
// whole burst at a single rendezvous and either commit it or roll every
// shard back to its checkpoint and re-execute conservatively.
//
// # The burst protocol
//
// Speculation is a property of the *loop*, not of individual shards: every
// worker computes the same boundary decisions from the same folded
// aggregates (batch.go's redundant-decision argument), so every worker
// also agrees — without communicating — on when a burst starts, how long
// it runs, and whether it commits. A burst begins right after a committed
// epoch boundary whose epoch sent no inter-shard mail (so the mailbox
// generation to be drained next is provably empty) and proceeds under
// three frozen assumptions, each checked at the burst-end rendezvous:
//
//  1. No inter-shard mail is sent during the burst except in its final
//     epoch. Mail produced in epoch i is normally delivered at epoch i+1;
//     a burst defers all delivery to the boundary after the burst, which
//     is exactly where the conservative loop would deliver the *final*
//     epoch's mail. Mail from any earlier burst epoch would be delivered
//     late — and even a message for a far-future time would receive its
//     destination-wheel sequence number after events the destination
//     scheduled later in the burst, flipping same-cycle tie-breaks. Both
//     hazards vanish when only the final epoch mails, so that is the
//     validated condition: the per-epoch aggregate carries a cumulative
//     sent-mail counter, and the machine-wide count through the
//     second-to-last burst epoch must be zero.
//  2. The run-ahead global minimum is frozen. Conservative boundaries
//     refresh every shard's gmin copy; burst boundaries do not, so the
//     burst is valid if the true folded minimum never moved off the
//     frozen value — or, the relaxed arm, if nothing was parked at any
//     boundary of the burst and nothing parked during it (the folded
//     parked-minimum is -1 throughout): gmin is consulted only by the
//     park predicate, a strand parks against a *smaller* (frozen) minimum
//     at least as eagerly as against the live one, so an execution in
//     which even the eager predicate parked no one is also the execution
//     the live predicate produces.
//  3. No parked strand becomes wake-eligible at an internal boundary.
//     With gmin frozen this cannot happen (parking requires
//     items-gmin >= runAhead, so parkMin-gmin >= runAhead for every
//     parked strand), but the validator checks it anyway — it is one
//     compare per boundary, and it turns the argument into an assertion.
//
// Everything else a conservative boundary does is a no-op under these
// assumptions. There is no mail to drain and no generation worth flipping:
// production stays in one generation, accumulating only final-epoch mail,
// which the commit boundary's single flip hands to the next deliver at
// exactly the conservative point. The empty-epoch skip needs no
// validation either: boundaries live on the fixed W grid anchored at the
// epoch cursor, so the slice in which an event executes — and therefore
// every epoch-end clamp — is the same whether the idle epochs before it
// were skipped or executed; executing them runs no events and differs
// only in loop telemetry. The burst's final boundary is then computed
// from the folded final-epoch aggregates and applied as a completely
// normal boundary: gmin refresh, wakes, termination, skip, flip.
//
// A burst that fails validation rolls back: every shard restores the
// checkpoint its owner took at burst entry — wheel image, owned L2 banks,
// bank/controller/core cursors, message arena, strand records, run-ahead
// window, counters — truncates its production mailboxes (provably empty
// at entry), and the loop re-executes the span conservatively, epoch by
// epoch. Commit or rollback, the surviving execution is the conservative
// execution; that is the byte-identity argument, and it holds at every
// worker count because no decision input depends on the shard-to-worker
// assignment. Speculation changes wall-clock time and loop telemetry
// (epoch counts, barrier stalls, the Spec* counters) — never simulation
// results.
//
// Generators are the one piece of strand state with no snapshot shape, so
// they are never rolled back at all: every item a generator produces
// during a burst is logged (a deep copy) on its strand, and re-execution
// replays the log before asking the generator for anything new. The items
// a strand consumes are a pure function of the strand alone — timing
// decides *when* it pulls, never *what* it pulls — so the log replays
// exactly, and a generator advances monotonically no matter how many
// bursts collapse. (Programs whose generators share scheduler state never
// reach the sharded engine — trace.Program.SharedSched routes them to the
// sequential fallback.)
//
// # Publication: the slot ring
//
// Burst epochs publish their aggregates without waiting — that is the
// point — so the parity-2 slots of batch.go are not enough: a worker may
// run a full burst ahead of a peer still validating the previous one.
// Speculative runs therefore publish into a per-worker ring of
// 2*specKMax+2 slots indexed by a monotonic virtual-epoch counter that
// never rewinds: rolled-back epochs are abandoned in the ring and
// re-executed epochs take fresh indices, which keeps every seq store
// monotonic, so the acquire/release chain that orders cross-shard mailbox
// access in batch.go carries over unchanged. A worker can be at most one
// un-rendezvoused burst plus one epoch past a peer still reading the
// previous burst's slots, so the divergence is under 2*specKMax slots.
//
// # The throttle
//
// The burst depth K adapts: it halves after a rollback, doubles (up to
// specKMax) after specGrowAfter consecutive commits, and a rollback at
// the minimum depth counts a strike — specMaxStrikes strikes with no
// intervening commit turn speculation off for the rest of the run (K=0),
// so a workload that mails every epoch degrades to the plain batched loop
// plus one checkpoint per strike. Like every other decision, the throttle
// state is recomputed identically by every worker from the shared
// validation verdicts; no worker publishes it.
package chip

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Speculation depth bounds and throttle policy (see the file comment).
const (
	specKMin       = 2  // shallowest useful burst: K=1 has no internal boundary to skip
	specKInit      = 8  // starting depth
	specKMax       = 64 // deepest burst; also sizes the slot ring
	specGrowAfter  = 4  // consecutive commits that double K
	specMaxStrikes = 4  // min-depth rollbacks that switch speculation off
)

// specRing is the publication ring depth; see the file comment for the
// 2*specKMax divergence bound.
const specRing = 2*specKMax + 2

// sslot is one worker's published aggregate for one virtual epoch: the
// five boundary fields of batch.go's wslot plus the cumulative count of
// inter-shard messages sent into the current production generation — the
// field the burst validator and the burst entry condition read.
type sslot struct {
	localMin atomic.Int64
	parkMin  atomic.Int64
	earliest atomic.Int64
	pending  atomic.Int64
	running  atomic.Int64
	mailed   atomic.Int64
}

// spub is one worker's publication record for the speculative loop: the
// last virtual epoch published and the slot ring, with the spin target
// padded off the ring's cache lines.
type spub struct {
	seq  atomic.Int64
	_    [56]byte
	ring [specRing]sslot
}

// waitFor spins until this record publishes virtual epoch v or an abort
// is observed, reporting false on abort. Mirrors wpub.waitFor.
func (p *spub) waitFor(v int64, abort *atomic.Int32) bool {
	for i := 0; p.seq.Load() < v; i++ {
		if i > 128 {
			if abort.Load() != abortNone {
				return false
			}
			runtime.Gosched()
		}
	}
	return true
}

// publish stores the aggregate into the ring slot for virtual epoch v and
// releases it through the seq store.
func (p *spub) publish(v int64, a *specAgg) {
	s := &p.ring[v%specRing]
	s.localMin.Store(a.localMin)
	s.parkMin.Store(a.parkMin)
	s.earliest.Store(a.earliest)
	s.pending.Store(a.pending)
	s.running.Store(a.running)
	s.mailed.Store(a.mailed)
	p.seq.Store(v)
}

// specAgg is epochAgg plus the cumulative sent-mail counter.
type specAgg struct {
	localMin int64
	parkMin  int64
	earliest int64
	pending  int64
	running  int64
	mailed   int64
}

func newSpecAgg() specAgg { return specAgg{localMin: -1, parkMin: -1, earliest: -1} }

// add folds one owned shard's end-of-epoch state into the aggregate;
// identical to epochAgg.add plus the production-generation mail count.
func (a *specAgg) add(sh *pshard) {
	g := sh.gen
	a.running += int64(sh.running)
	a.pending += int64(sh.eng.Pending() + sh.outCount[g])
	a.mailed += int64(sh.outCount[g])
	if sh.localMin >= 0 && (a.localMin < 0 || sh.localMin < a.localMin) {
		a.localMin = sh.localMin
	}
	if sh.parkMin >= 0 && (a.parkMin < 0 || sh.parkMin < a.parkMin) {
		a.parkMin = sh.parkMin
	}
	if t, ok := sh.eng.PeekTime(); ok && (a.earliest < 0 || int64(t) < a.earliest) {
		a.earliest = int64(t)
	}
	if sh.outCount[g] > 0 && (a.earliest < 0 || int64(sh.outMin[g]) < a.earliest) {
		a.earliest = int64(sh.outMin[g])
	}
}

// fold merges a published slot into the aggregate.
func (a *specAgg) fold(s *sslot) {
	if v := s.localMin.Load(); v >= 0 && (a.localMin < 0 || v < a.localMin) {
		a.localMin = v
	}
	if v := s.parkMin.Load(); v >= 0 && (a.parkMin < 0 || v < a.parkMin) {
		a.parkMin = v
	}
	if v := s.earliest.Load(); v >= 0 && (a.earliest < 0 || v < a.earliest) {
		a.earliest = v
	}
	a.pending += s.pending.Load()
	a.running += s.running.Load()
	a.mailed += s.mailed.Load()
}

// anyWake is the boundary's wake-eligibility predicate, shared with
// batch.go's inline form.
func (ps *parState) anyWake(gm, parkMin int64) bool {
	return ps.runAhead > 0 && gm >= 0 && parkMin >= 0 && parkMin-gm < ps.runAhead
}

// specThrottle is the adaptive depth controller, recomputed identically
// by every worker from the shared commit/rollback verdicts.
type specThrottle struct {
	k       int64 // current burst depth; 0 = speculation off for the run
	clean   int64 // consecutive commits since the last rollback
	strikes int64 // min-depth rollbacks since the last commit
}

func (t *specThrottle) commit() {
	t.strikes = 0
	t.clean++
	if t.clean >= specGrowAfter && t.k < specKMax {
		t.k *= 2
		if t.k > specKMax {
			t.k = specKMax
		}
		t.clean = 0
	}
}

func (t *specThrottle) rollback() {
	t.clean = 0
	if t.k > specKMin {
		t.k /= 2
		return
	}
	t.strikes++
	if t.strikes >= specMaxStrikes {
		t.k = 0 // sticky: pure conservative for the rest of the run
	}
}

// ---- generator replay log --------------------------------------------------

// copyItem deep-copies a work item, reusing dst's access capacity.
func copyItem(dst, src *trace.Item) {
	acc := append(dst.Acc[:0], src.Acc...)
	*dst = *src
	dst.Acc = acc
}

// logItem appends a deep copy of it to the strand's replay log, reusing
// retained entry capacity.
func (s *pstrand) logItem(it *trace.Item) {
	n := len(s.replay)
	if n < cap(s.replay) {
		s.replay = s.replay[:n+1]
	} else {
		s.replay = append(s.replay, trace.Item{})
	}
	copyItem(&s.replay[n], it)
}

// nextItem is the strand's item pull, routed through the replay log so
// generators never need rewinding: during a burst every fresh pull is
// logged, rollback rewinds only the consumption cursor (pstrand.replayPos),
// and re-execution replays the logged items before asking the generator
// for anything new. Exhaustion is latched the same way — a generator that
// reported done during a rolled-back burst is never asked again.
func (sh *pshard) nextItem(s *pstrand) bool {
	if s.replayPos < len(s.replay) {
		copyItem(&s.item, &s.replay[s.replayPos])
		s.replayPos++
		if !sh.specLog && s.replayPos == len(s.replay) {
			s.replay = s.replay[:0]
			s.replayPos = 0
		}
		return true
	}
	if s.replayEnd {
		return false
	}
	if !s.gen.Next(&s.item) {
		s.replayEnd = true
		return false
	}
	if sh.specLog {
		s.logItem(&s.item)
		s.replayPos = len(s.replay)
	}
	return true
}

// compactReplay drops a fully consumed replay log after a commit, keeping
// the entry capacity for the next burst.
func (s *pstrand) compactReplay() {
	if s.replayPos == len(s.replay) {
		s.replay = s.replay[:0]
		s.replayPos = 0
	}
}

// ---- checkpoint ------------------------------------------------------------

// strandCkpt is one home strand's rollback record. The generator is
// absent by design — the replay log survives rollback, so only the
// consumption cursor is restored.
type strandCkpt struct {
	item      trace.Item
	sb        []sim.Time
	t         sim.Time
	items     int64
	accIdx    int
	sbPos     int
	replayPos int
	active    bool
	parked    bool
}

// shardCkpt is one shard's complete timing-relevant state at a burst
// entry boundary. Every field is captured into retained capacity, so a
// shard that speculates repeatedly checkpoints without allocating after
// its slices reach steady size. Install versions are deliberately absent
// (see cache.BankImage); mailbox contents are absent because the
// production generation is provably empty at every burst entry and the
// drained generation is truncated by its consumers.
type shardCkpt struct {
	eng      sim.EngineImage
	banks    cache.BankImage
	bankCur  []sim.Cursor
	north    sim.Cursor
	south    sim.Cursor
	ctlStats mem.CtlStats
	coreCur  []sim.Cursor
	arena    []shardMsg
	probes   []reqProbe
	free     []int32
	strands  []strandCkpt
	window   []int32
	parked   []int32

	active, running         int
	localMin, parkMin, gmin int64
	epochEnd                sim.Time
	finish                  sim.Time

	units, repBytes                     int64
	loadStall, storeStall, computeStall int64
	retryStall, retries                 int64
	idleEpochs, epochsRun, busyRounds   int64
	stepsMark                           uint64
}

// checkpoint captures everything this shard's burst could mutate: the
// wheel, the owned L2 banks and bank cursors, the owned controller's
// channels and counters, the owned cores' pipeline cursors, the message
// arena with its probe cache and free list, every home strand's record,
// the run-ahead window, and the shard counters. Called only by the
// shard's owning worker, between epochs, so every read is single-writer
// state at rest.
func (sh *pshard) checkpoint() {
	ps := sh.ps
	ck := &sh.ckpt
	d := len(ps.shards)
	sh.eng.SnapshotInto(&ck.eng)
	bpc := ps.cfg.Mapping.Banks() / d
	lo, hi := int(sh.id)*bpc, (int(sh.id)+1)*bpc
	ps.l2.SnapshotBanksInto(lo, hi, &ck.banks)
	ck.bankCur = append(ck.bankCur[:0], ps.banks[lo:hi]...)
	north, south := ps.mc.CtlCursors(int(sh.id))
	ck.north, ck.south = *north, *south
	ck.ctlStats = ps.mc.CtlStatsAt(int(sh.id))
	ck.coreCur = ck.coreCur[:0]
	for c := int(sh.id); c < ps.cfg.Cores; c += d {
		ps.cores.CoreCursors(c, func(cur *sim.Cursor) {
			ck.coreCur = append(ck.coreCur, *cur)
		})
	}
	ck.arena = append(ck.arena[:0], sh.arena...)
	ck.probes = append(ck.probes[:0], sh.probes...)
	ck.free = append(ck.free[:0], sh.free...)
	if cap(ck.strands) < len(sh.strands) {
		grown := make([]strandCkpt, len(sh.strands))
		copy(grown, ck.strands[:cap(ck.strands)]) // keep retained item/sb capacity
		ck.strands = grown
	}
	ck.strands = ck.strands[:len(sh.strands)]
	for i, id := range sh.strands {
		st := ps.strands[id]
		sc := &ck.strands[i]
		copyItem(&sc.item, &st.item)
		sc.sb = append(sc.sb[:0], st.sb...)
		sc.t, sc.items, sc.accIdx, sc.sbPos = st.t, st.items, st.accIdx, st.sbPos
		sc.replayPos = st.replayPos
		sc.active, sc.parked = st.active, st.parked
	}
	ck.window = append(ck.window[:0], sh.window...)
	ck.parked = append(ck.parked[:0], sh.parked...)
	ck.active, ck.running = sh.active, sh.running
	ck.localMin, ck.parkMin, ck.gmin = sh.localMin, sh.parkMin, sh.gmin
	ck.epochEnd, ck.finish = sh.epochEnd, sh.finish
	ck.units, ck.repBytes = sh.units, sh.repBytes
	ck.loadStall, ck.storeStall, ck.computeStall = sh.loadStall, sh.storeStall, sh.computeStall
	ck.retryStall, ck.retries = sh.retryStall, sh.retries
	ck.idleEpochs, ck.epochsRun, ck.busyRounds = sh.idleEpochs, sh.epochsRun, sh.busyRounds
	ck.stepsMark = sh.stepsMark
}

// restore rewinds this shard to its burst-entry checkpoint and truncates
// the production mailboxes (empty at entry, so truncation is the exact
// inverse of everything the burst appended). The generation index itself
// is untouched — bursts never flip it — and replay logs are durable
// generator truth, so only the consumption cursors rewind.
func (sh *pshard) restore() {
	ps := sh.ps
	ck := &sh.ckpt
	d := len(ps.shards)
	sh.eng.RestoreImage(&ck.eng)
	ps.l2.RestoreBanks(&ck.banks)
	bpc := ps.cfg.Mapping.Banks() / d
	lo := int(sh.id) * bpc
	copy(ps.banks[lo:lo+len(ck.bankCur)], ck.bankCur)
	north, south := ps.mc.CtlCursors(int(sh.id))
	*north, *south = ck.north, ck.south
	ps.mc.SetCtlStatsAt(int(sh.id), ck.ctlStats)
	i := 0
	for c := int(sh.id); c < ps.cfg.Cores; c += d {
		ps.cores.CoreCursors(c, func(cur *sim.Cursor) {
			*cur = ck.coreCur[i]
			i++
		})
	}
	sh.arena = append(sh.arena[:0], ck.arena...)
	sh.probes = append(sh.probes[:0], ck.probes...)
	sh.free = append(sh.free[:0], ck.free...)
	for j, id := range sh.strands {
		st := ps.strands[id]
		sc := &ck.strands[j]
		copyItem(&st.item, &sc.item)
		copy(st.sb, sc.sb)
		st.t, st.items, st.accIdx, st.sbPos = sc.t, sc.items, sc.accIdx, sc.sbPos
		st.replayPos = sc.replayPos
		st.active, st.parked = sc.active, sc.parked
	}
	sh.window = append(sh.window[:0], ck.window...)
	sh.parked = append(sh.parked[:0], ck.parked...)
	sh.active, sh.running = ck.active, ck.running
	sh.localMin, sh.parkMin, sh.gmin = ck.localMin, ck.parkMin, ck.gmin
	sh.epochEnd, sh.finish = ck.epochEnd, ck.finish
	sh.units, sh.repBytes = ck.units, ck.repBytes
	sh.loadStall, sh.storeStall, sh.computeStall = ck.loadStall, ck.storeStall, ck.computeStall
	sh.retryStall, sh.retries = ck.retryStall, ck.retries
	sh.idleEpochs, sh.epochsRun, sh.busyRounds = ck.idleEpochs, ck.epochsRun, ck.busyRounds
	sh.stepsMark = ck.stepsMark
	g := sh.gen
	for dst := range sh.out[g] {
		sh.out[g][dst] = sh.out[g][dst][:0]
	}
	sh.outCount[g] = 0
}

// ---- the speculative loop --------------------------------------------------

// runSpec drives the speculative epoch loop with the batched loop's worker
// topology: shard i belongs to worker i%workers, worker 0 runs on the
// calling goroutine, a watchdog abort abandons the wait for wedged
// workers. The publication ring is allocated even for one worker: burst
// validation folds the caller's own published slots too.
func (ps *parState) runSpec(workers int) {
	pubs := make([]spub, workers)
	for w := range pubs {
		pubs[w].seq.Store(-1)
	}
	if workers <= 1 {
		ps.specLoop(0, 1, pubs)
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ps.specLoop(w, workers, pubs)
		}(w)
	}
	ps.specLoop(0, workers, pubs)
	if ps.abort.Load() == abortWatchdog {
		return // same contract as runBatched: abandon wedged workers
	}
	wg.Wait()
}

// specLoop is one worker's whole speculative run: the batched loop with a
// burst attempt bolted onto every committed boundary whose epoch mailed
// nothing. All decision inputs are folded machine-wide values, so control
// flow — entry, depth, verdict, throttle — never diverges across workers
// or worker counts.
func (ps *parState) specLoop(w, workers int, pubs []spub) {
	end := ps.shards[0].epochEnd
	var micro int64 // committed micro-epochs (conservative + committed burst)
	var v int64     // virtual epoch counter: next publication index, never rewinds
	th := specThrottle{k: specKInit}
	var commits, rollbacks, specMicro int64
	p := &pubs[w]
	gm := int64(0) // folded run-ahead minimum of the last applied boundary

loop:
	for {
		if ps.abort.Load() != abortNone {
			break
		}
		// One conservative epoch, exactly as batchedLoop runs it.
		a := newSpecAgg()
		for i := w; i < len(ps.shards); i += workers {
			sh := ps.shards[i]
			sh.deliver()
			sh.runEpoch()
			a.add(sh)
		}
		p.publish(v, &a)
		for u := range pubs {
			if u == w {
				continue
			}
			if !pubs[u].waitFor(v, &ps.abort) {
				break loop
			}
			a.fold(&pubs[u].ring[v%specRing])
		}
		v++
		micro++
		if w == 0 {
			ps.progress.Store(v)
		}
		gm = a.localMin
		wake := ps.anyWake(gm, a.parkMin)
		if a.pending == 0 && !wake {
			if w == 0 {
				if a.running != 0 {
					panic("chip: deadlock — strands left running with no events (speculative engine)")
				}
				ps.done = true
			}
			break
		}
		start := end
		if !wake && a.earliest >= 0 && sim.Time(a.earliest) > start {
			start += (sim.Time(a.earliest) - start) / ps.w * ps.w
		}
		newEnd := start + ps.w
		for i := w; i < len(ps.shards); i += workers {
			ps.boundary(ps.shards[i], gm, end, newEnd)
		}
		end = newEnd
		if micro%batchRound == 0 {
			for i := w; i < len(ps.shards); i += workers {
				ps.shards[i].markRound()
			}
		}

		// Burst attempts, chained while the mail horizon stays clear: the
		// just-finished epoch (conservative, or a committed burst's final
		// epoch) must have mailed nothing, so the generation the next
		// deliver would drain is empty machine-wide.
		mailed := a.mailed
		for th.k >= specKMin && mailed == 0 {
			K := th.k
			for i := w; i < len(ps.shards); i += workers {
				sh := ps.shards[i]
				sh.checkpoint()
				sh.specLog = true
			}
			endCk := end
			v0 := v

			// Run K epochs back to back: no deliver (the drain generation
			// is empty), no boundary work beyond advancing the epoch
			// cursor, aggregates published into the ring without waiting.
			for k := int64(0); k < K; k++ {
				if ps.abort.Load() != abortNone {
					break loop
				}
				b := newSpecAgg()
				for i := w; i < len(ps.shards); i += workers {
					sh := ps.shards[i]
					sh.runEpoch()
					b.add(sh)
				}
				p.publish(v, &b)
				v++
				if w == 0 {
					ps.progress.Store(v)
				}
				if k < K-1 {
					for i := w; i < len(ps.shards); i += workers {
						ps.shards[i].epochEnd += ps.w
					}
					end += ps.w
				}
			}

			// Rendezvous: every worker through the burst's last epoch.
			for u := range pubs {
				if u == w {
					continue
				}
				if !pubs[u].waitFor(v-1, &ps.abort) {
					break loop
				}
			}

			// Validate, identically on every worker. mailed is cumulative
			// within the burst (the generation never flips), so one check
			// at the second-to-last epoch covers assumption 1; the strict
			// and park-free arms cover assumptions 2 and 3.
			ok := true
			strict := true
			parkFree := true
			var fin specAgg
			for k := int64(0); k < K; k++ {
				f := newSpecAgg()
				for u := range pubs {
					f.fold(&pubs[u].ring[(v0+k)%specRing])
				}
				if f.parkMin >= 0 {
					parkFree = false
				}
				if k == K-1 {
					fin = f
					break
				}
				if f.mailed != 0 {
					ok = false
					break
				}
				if f.localMin != gm || ps.anyWake(f.localMin, f.parkMin) {
					strict = false
				}
			}
			if ok && ps.runAhead > 0 && !strict && !parkFree {
				ok = false
			}
			if faults.SpecConflict(commits + rollbacks) {
				ok = false // injected conflict: same ordinal, same verdict, every worker
			}

			if !ok {
				rollbacks++
				th.rollback()
				for i := w; i < len(ps.shards); i += workers {
					sh := ps.shards[i]
					sh.restore()
					sh.specLog = false
				}
				end = endCk
				break // re-execute conservatively from the checkpoint
			}

			commits++
			specMicro += K
			th.commit()
			micro += K
			for i := w; i < len(ps.shards); i += workers {
				sh := ps.shards[i]
				sh.specLog = false
				for _, id := range sh.strands {
					ps.strands[id].compactReplay()
				}
			}
			gm = fin.localMin
			wake := ps.anyWake(gm, fin.parkMin)
			if fin.pending == 0 && !wake {
				if w == 0 {
					if fin.running != 0 {
						panic("chip: deadlock — strands left running with no events (speculative engine)")
					}
					ps.done = true
				}
				break loop
			}
			start := end
			if !wake && fin.earliest >= 0 && sim.Time(fin.earliest) > start {
				start += (sim.Time(fin.earliest) - start) / ps.w * ps.w
			}
			newEnd := start + ps.w
			for i := w; i < len(ps.shards); i += workers {
				ps.boundary(ps.shards[i], gm, end, newEnd)
			}
			end = newEnd
			if micro/batchRound != (micro-K)/batchRound {
				for i := w; i < len(ps.shards); i += workers {
					ps.shards[i].markRound()
				}
			}
			mailed = fin.mailed
		}
	}
	for i := w; i < len(ps.shards); i += workers {
		ps.shards[i].markRound() // close the partial final round
	}
	if w == 0 {
		ps.micro = micro
		ps.epochs = (micro + batchRound - 1) / batchRound
		ps.specEpochs = specMicro
		ps.specCommits = commits
		ps.specRollbacks = rollbacks
	}
}
