package chip

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/phys"
	"repro/internal/trace"
)

// marchingProg builds a fresh synthetic-triad program (generators are
// stateful, so every run needs its own): threads strands streaming loads
// and stores across all controller domains, heavy enough to drive misses,
// dirty evictions, NACK retries and the run-ahead window.
func marchingProg(threads, items int) *trace.Program {
	gens := make([]trace.Generator, threads)
	for i := range gens {
		gens[i] = &marching{n: items, addr: phys.Addr(i) << 24}
	}
	p := prog(gens...)
	p.WarmLines = 2048
	return p
}

// shardedConfigs are the topologies the worker-invariance test sweeps:
// the paper's machine, a degenerate single-domain machine, a wide
// 8-controller machine, and the hashed mapping (whose bank->controller
// relation is structural, not a bit field).
func shardedConfigs() map[string]Config {
	t2 := t2cfg()
	mc1 := t2
	mc1.Mapping = phys.NewInterleave("mc1", phys.LineSize, 1, 2)
	mc1.L2.Banks = mc1.Mapping.Banks()
	mc8 := t2
	mc8.Mapping = phys.NewInterleave("mc8", phys.LineSize, 8, 2)
	mc8.L2.Banks = mc8.Mapping.Banks()
	xor := t2
	xor.Mapping = phys.XORMapping{}
	xor.L2.Banks = xor.Mapping.Banks()
	return map[string]Config{"t2": t2, "mc1": mc1, "mc8": mc8, "xor": xor}
}

// TestShardedWorkerInvariance is the engine's core contract: the worker
// count is pure execution parallelism, so every Result byte — cycles,
// stalls, per-controller traffic, L2 counters, telemetry — must be
// identical at 1, 2, 3 and 4 workers, on fresh and on reused machines.
func TestShardedWorkerInvariance(t *testing.T) {
	for name, cfg := range shardedConfigs() {
		t.Run(name, func(t *testing.T) {
			m := New(cfg)
			ref := m.RunSharded(marchingProg(16, 120), 1)
			if ref.Shards != int64(cfg.Mapping.Controllers()) {
				t.Fatalf("Shards = %d, want %d (sharded run unexpectedly fell back)", ref.Shards, cfg.Mapping.Controllers())
			}
			if ref.Units != 16*120*8 {
				t.Fatalf("Units = %d, want %d — the sharded engine lost work", ref.Units, 16*120*8)
			}
			for _, workers := range []int{2, 3, 4, 0} {
				got := m.RunSharded(marchingProg(16, 120), workers)
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("workers=%d diverged from workers=1:\n got  %+v\n want %+v", workers, got, ref)
				}
			}
			// A fresh machine must agree with the reused one.
			fresh := New(cfg).RunSharded(marchingProg(16, 120), 2)
			if !reflect.DeepEqual(fresh, ref) {
				t.Fatalf("fresh machine diverged from reused machine:\n got  %+v\n want %+v", fresh, ref)
			}
		})
	}
}

// TestShardedBatchingEquivalence is the batched loop's core contract: the
// decentralized boundary protocol (batch.go) executes exactly the same
// micro-epochs in the same per-shard order as the classic
// barrier-merge-barrier loop, so every simulation byte — and even the
// micro-epoch and barrier-stall counts — must be identical with batching
// on and off, at every worker count, on every topology. Only the
// round-versus-merge bookkeeping (Epochs, BusyShard*) may differ.
func TestShardedBatchingEquivalence(t *testing.T) {
	for name, cfg := range shardedConfigs() {
		t.Run(name, func(t *testing.T) {
			m := New(cfg)
			run := func(workers int, noBatch bool) Result {
				if d := cfg.Mapping.Controllers(); workers > d {
					workers = d
				}
				r, err := m.RunShardedCtx(context.Background(), marchingProg(16, 120),
					ShardOptions{Workers: workers, NoBatch: noBatch})
				if err != nil {
					t.Fatalf("workers=%d noBatch=%v: %v", workers, noBatch, err)
				}
				if r.Shards == 0 {
					t.Fatalf("workers=%d noBatch=%v unexpectedly fell back", workers, noBatch)
				}
				return r
			}
			ref := run(1, true)
			if ref.Epochs != ref.BatchedEpochs {
				t.Fatalf("classic loop: Epochs %d != BatchedEpochs %d", ref.Epochs, ref.BatchedEpochs)
			}
			norm := func(r Result) Result {
				r.Epochs, r.BusyShardRounds, r.BusyShardPct = 0, 0, 0
				return r
			}
			want := norm(ref)
			for _, workers := range []int{1, 2, 4} {
				for _, noBatch := range []bool{false, true} {
					got := run(workers, noBatch)
					if !noBatch && got.Epochs >= got.BatchedEpochs && got.BatchedEpochs > 1 {
						t.Errorf("workers=%d: batched loop reports %d rounds for %d micro-epochs; rounds should be coarser",
							workers, got.Epochs, got.BatchedEpochs)
					}
					if g := norm(got); !reflect.DeepEqual(g, want) {
						t.Fatalf("workers=%d noBatch=%v diverged from classic workers=1:\n got  %+v\n want %+v",
							workers, noBatch, g, want)
					}
				}
			}
		})
	}
}

// TestShardedEpochWidthValidation pins the relaxed-width contract: widths
// below the conservative bound are rejected up front, the bound itself is
// accepted and behaves exactly like the default, and wider epochs stay
// deterministic and worker-invariant even though their results differ.
func TestShardedEpochWidthValidation(t *testing.T) {
	cfg := t2cfg()
	m := New(cfg)
	w := m.EpochWidth()
	if w < 2 {
		t.Fatalf("EpochWidth() = %d; test needs a bound above 1", w)
	}
	_, err := m.RunShardedCtx(context.Background(), marchingProg(8, 40),
		ShardOptions{Workers: 2, EpochWidth: w - 1})
	if !errors.Is(err, ErrEpochWidthTooNarrow) {
		t.Fatalf("width %d: err = %v, want ErrEpochWidthTooNarrow", w-1, err)
	}
	run := func(width int64, workers int) Result {
		r, err := m.RunShardedCtx(context.Background(), marchingProg(8, 40),
			ShardOptions{Workers: workers, EpochWidth: width})
		if err != nil {
			t.Fatalf("width %d workers %d: %v", width, workers, err)
		}
		return r
	}
	def := run(0, 2)
	atBound := run(w, 2)
	if !reflect.DeepEqual(def, atBound) {
		t.Errorf("explicit width %d diverged from the default:\n got  %+v\n want %+v", w, atBound, def)
	}
	wide := run(2*w, 1)
	if wide.EpochWidth != 2*w {
		t.Errorf("EpochWidth = %d, want %d", wide.EpochWidth, 2*w)
	}
	for _, workers := range []int{2, 4} {
		if got := run(2*w, workers); !reflect.DeepEqual(got, wide) {
			t.Errorf("relaxed width %d not worker-invariant at workers=%d:\n got  %+v\n want %+v", 2*w, workers, got, wide)
		}
	}
	// The width is a per-run option: a cached machine must return to the
	// conservative default when the override is dropped.
	if again := run(0, 2); !reflect.DeepEqual(again, def) {
		t.Errorf("default run after a relaxed run diverged:\n got  %+v\n want %+v", again, def)
	}
}

// TestShardedTelemetry pins the deterministic sharding telemetry: domain
// count, the derived epoch width, and that epochs actually executed.
func TestShardedTelemetry(t *testing.T) {
	cfg := t2cfg()
	r := New(cfg).RunSharded(marchingProg(8, 40), 2)
	if r.Shards != 4 {
		t.Errorf("Shards = %d, want 4", r.Shards)
	}
	want := cfg.XbarLatency
	if cfg.L2BankService < want {
		want = cfg.L2BankService
	}
	if r.EpochWidth != want {
		t.Errorf("EpochWidth = %d, want %d", r.EpochWidth, want)
	}
	if r.Epochs <= 0 {
		t.Errorf("Epochs = %d, want > 0", r.Epochs)
	}
	if r.FFItems != 0 || r.FFCycles != 0 {
		t.Errorf("sharded run reports fast-forward coverage (%d items, %d cycles); fast-forward must be disabled under sharding", r.FFItems, r.FFCycles)
	}
}

// TestShardedFallbacks checks that runs the engine cannot decompose land
// on the sequential engine, byte-identically to calling Run directly.
func TestShardedFallbacks(t *testing.T) {
	t.Run("mshr-ablation", func(t *testing.T) {
		cfg := t2cfg()
		cfg.MSHRPerStrand = 4
		seq := New(cfg).Run(marchingProg(8, 40))
		shr := New(cfg).RunSharded(marchingProg(8, 40), 4)
		if shr.Shards != 0 {
			t.Fatalf("Shards = %d, want 0 (fallback)", shr.Shards)
		}
		if !reflect.DeepEqual(seq, shr) {
			t.Fatalf("fallback diverged from sequential run:\n got  %+v\n want %+v", shr, seq)
		}
	})
	t.Run("shared-scheduler", func(t *testing.T) {
		cfg := t2cfg()
		mk := func() *trace.Program {
			p := marchingProg(8, 40)
			p.SharedSched = true
			return p
		}
		seq := New(cfg).Run(mk())
		shr := New(cfg).RunSharded(mk(), 4)
		if shr.Shards != 0 {
			t.Fatalf("Shards = %d, want 0 (fallback)", shr.Shards)
		}
		seq.Shards = 0 // Run never sets it; keep the comparison honest
		if !reflect.DeepEqual(seq, shr) {
			t.Fatalf("fallback diverged from sequential run:\n got  %+v\n want %+v", shr, seq)
		}
	})
}

// TestShardedRunAheadCoupling ports the sequential engine's window test:
// with the window enabled a fast strand must be throttled to the slow
// strand's pace, sharded or not.
func TestShardedRunAheadCoupling(t *testing.T) {
	cfg := t2cfg()
	cfg.RunAhead = 2
	free := cfg
	free.RunAhead = 0
	mk := func() *trace.Program {
		fast := &marching{n: 200, addr: 0}
		slow := &scripted{}
		for i := 0; i < 20; i++ {
			slow.items = append(slow.items, trace.Item{
				Acc:   []trace.Access{{Addr: phys.Addr(1<<30 + i*phys.LineSize)}},
				Units: 1, Demand: demandOf(400),
			})
		}
		return prog(fast, slow)
	}
	bounded := New(cfg).RunSharded(mk(), 2)
	unbounded := New(free).RunSharded(mk(), 2)
	if bounded.Shards == 0 || unbounded.Shards == 0 {
		t.Fatal("expected sharded runs")
	}
	if bounded.Cycles <= unbounded.Cycles {
		t.Errorf("run-ahead window did not throttle: bounded %d cycles <= unbounded %d", bounded.Cycles, unbounded.Cycles)
	}
}

// demandOf is a compute-only demand of n integer ops.
func demandOf(n int64) (d cpu.Demand) {
	d.IntOps = n
	return
}

// TestShardedFastForwardDisabled is the explicit interaction guard between
// fast-forward and the sharded engine: fast-forward must never engage
// under RunSharded. The program is one the SEQUENTIAL engine provably
// locks and jumps on — so the zero-telemetry assertion is not vacuous —
// and the sharded run of the same program must report no fast-forward
// coverage at all.
func TestShardedFastForwardDisabled(t *testing.T) {
	cfg := t2cfg()
	seq := New(cfg).Run(triadProgAt(1<<15, 8, 16))
	if seq.FFCycles == 0 || seq.FFJumps == 0 {
		t.Fatalf("sequential reference did not engage fast-forward (items=%d jumps=%d); guard test is vacuous", seq.FFItems, seq.FFJumps)
	}
	sh := New(cfg).RunSharded(triadProgAt(1<<15, 8, 16), 0)
	if sh.Shards == 0 {
		t.Fatal("program unexpectedly fell back to the sequential engine")
	}
	if sh.FFItems != 0 || sh.FFCycles != 0 || sh.FFPeriod != 0 || sh.FFJumps != 0 || sh.FFSkippedEpochs != 0 {
		t.Errorf("sharded run reports fast-forward telemetry: items=%d cycles=%d period=%d jumps=%d skipped=%d",
			sh.FFItems, sh.FFCycles, sh.FFPeriod, sh.FFJumps, sh.FFSkippedEpochs)
	}
}
