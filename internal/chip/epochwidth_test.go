package chip_test

import (
	"testing"

	"repro/internal/chip"
	"repro/internal/machine"
	"repro/internal/sim"
)

// TestEpochWidthAcrossProfiles pins the conservative epoch width the
// sharded engine derives for every registered machine profile. All
// profiles share the calibrated T2 timing block (crossbar latency 3,
// L2 bank service 4), so the bound is min(3, 4) = 3 cycles everywhere —
// including the degenerate single-controller and hashed-interleave
// machines, whose mapping changes geometry but not the latency by which
// a cross-shard effect trails its cause. A profile that ever ships
// different timings must update this table consciously: the width is the
// lookahead of the conservative parallel simulation, and shrinking it
// silently would change every sharded run's epoch grid.
func TestEpochWidthAcrossProfiles(t *testing.T) {
	want := map[string]sim.Time{
		"t2":        3,
		"t2-1mc":    3,
		"t2-2mc":    3,
		"mc8":       3,
		"t2-wide1k": 3,
		"t2-wide4k": 3,
		"xor":       3,
		"single":    3,
	}
	profiles := machine.Profiles()
	if len(profiles) != len(want) {
		t.Errorf("registry has %d profiles, table pins %d — update the table", len(profiles), len(want))
	}
	for _, p := range profiles {
		w, ok := want[p.Name]
		if !ok {
			t.Errorf("profile %q missing from the epoch-width table", p.Name)
			continue
		}
		if got := chip.New(p.Config).EpochWidth(); got != w {
			t.Errorf("profile %q: derived epoch width %d, want %d", p.Name, got, w)
		}
	}
}

// TestEpochWidthDerivation exercises the derivation rule itself on
// synthetic timing variants of the t2 configuration: the width is the
// minimum of crossbar latency and L2 bank service (the two paths a
// cross-shard effect can take), clamped to at least one cycle so a
// zero-latency configuration still makes epoch progress.
func TestEpochWidthDerivation(t *testing.T) {
	base, err := machine.Get(machine.DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		xbar int64
		bank int64
		want sim.Time
	}{
		{"xbar-binds", 3, 4, 3},
		{"bank-binds", 10, 4, 4},
		{"equal", 5, 5, 5},
		{"clamped-to-one", 0, 0, 1},
		{"one-cycle-xbar", 1, 4, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := base.Config
			cfg.XbarLatency = c.xbar
			cfg.L2BankService = c.bank
			if got := chip.New(cfg).EpochWidth(); got != c.want {
				t.Errorf("xbar=%d bank=%d: derived width %d, want %d", c.xbar, c.bank, got, c.want)
			}
		})
	}
}
