package chip

import (
	"reflect"
	"testing"

	"repro/internal/alloc"
	"repro/internal/kernels"
	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/trace"
)

// triadProgAt builds a STREAM triad program with the given offset and team
// size, pre-warmed like the figure harnesses.
func triadProgAt(n, off int64, threads int) *trace.Program {
	sp := alloc.NewSpace()
	bases := sp.Common(3, n+off, phys.WordSize)
	k := kernels.StreamTriad(bases[0], bases[1], bases[2], n)
	p := k.Program(omp.StaticBlock{}, threads)
	p.WarmLines = (4 << 20) / phys.LineSize
	return p
}

// stripFF zeroes the how-it-was-computed telemetry, which is the only part
// of a Result allowed to differ between full simulation and fast-forward.
func stripFF(r Result) Result {
	r.FFItems, r.FFCycles, r.FFPeriod = 0, 0, 0
	r.FFJumps, r.FFSkippedEpochs = 0, 0
	return r
}

// TestFastForwardEquivalence is the chip-level half of the fast-forward
// exactness proof: for streaming programs across team sizes and offsets,
// a fast-forwarded run must produce a Result deeply equal to full
// event-by-event simulation — cycles, all stall breakdowns, L2 stats and
// per-controller traffic included. The 16-thread case must actually
// engage fast-forward, so the equality is not vacuous.
func TestFastForwardEquivalence(t *testing.T) {
	activated := false
	for _, tc := range []struct {
		threads int
		off     int64
	}{{16, 8}, {16, 0}, {64, 8}, {64, 0}, {8, 16}} {
		cfgOn := t2cfg()
		cfgOff := t2cfg()
		cfgOff.DisableFastForward = true
		const n = 1 << 15
		on := New(cfgOn).Run(triadProgAt(n, tc.off, tc.threads))
		off := New(cfgOff).Run(triadProgAt(n, tc.off, tc.threads))
		if off.FFItems != 0 || off.FFCycles != 0 {
			t.Fatalf("threads=%d off=%d: disabled run reports fast-forward telemetry %d/%d",
				tc.threads, tc.off, off.FFItems, off.FFCycles)
		}
		if on.FFItems > 0 {
			activated = true
		}
		if !reflect.DeepEqual(stripFF(on), stripFF(off)) {
			t.Errorf("threads=%d off=%d: fast-forward diverged from full simulation:\n ff:   %+v\n full: %+v",
				tc.threads, tc.off, on, off)
		}
	}
	if !activated {
		t.Error("fast-forward never engaged on any tested point; the equivalence is vacuous")
	}
}

// TestMachineReuseIsStateless pins the reuse contract behind exp.Scratch:
// a machine that has already run other programs must produce, for any
// program, exactly the Result a freshly built machine produces — including
// across team-size changes, which exercise the strand pool, and with the
// warm-image restore path in place of the first run's prefill.
func TestMachineReuseIsStateless(t *testing.T) {
	const n = 1 << 13
	mk := func(off int64, threads int) *trace.Program { return triadProgAt(n, off, threads) }

	fresh16 := New(t2cfg()).Run(mk(8, 16))
	reused := New(t2cfg())
	reused.Run(mk(0, 64))
	reused.Run(mk(24, 32))
	again16 := reused.Run(mk(8, 16))
	if !reflect.DeepEqual(fresh16, again16) {
		t.Errorf("reused machine diverged from fresh machine:\n fresh:  %+v\n reused: %+v", fresh16, again16)
	}

	// Back-to-back identical runs on one machine must agree too.
	a := reused.Run(mk(8, 16))
	b := reused.Run(mk(8, 16))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical back-to-back runs differ:\n a: %+v\n b: %+v", a, b)
	}
}
