// Controller-domain sharded execution: one machine run partitioned across
// per-controller shards that advance concurrently in fixed synchronization
// epochs (conservative parallel discrete-event simulation).
//
// The decomposition follows the paper's machine: banks behind one memory
// controller interact tightly (FCFS bank and channel cursors, shared tag
// sets), while cross-domain coupling happens only through the crossbar,
// which imposes a fixed minimum latency on every hop. Each shard therefore
// owns one controller domain — the controller's channel cursors and queue,
// the L2 banks that map to it (tag sets, per-bank LRU clocks and stats,
// bank cursors) — plus a static slice of the core array ("home" cores,
// core%shards) with its pipeline cursors and the strands placed on those
// cores. Every shard runs its own sim.Engine timing wheel.
//
// # Epoch synchronization
//
// All shards advance through the same fixed epochs [S, S+W). W is the
// minimum latency of any cross-shard effect: a strand's access request
// crosses the crossbar (XbarLatency), and a domain's reply to a strand is
// at least one bank service later than the request's arrival, so
// W = min(XbarLatency, L2BankService). Within an epoch a shard touches
// only state it owns; anything aimed at another shard is appended to a
// per-(src, dst) mailbox. At the epoch barrier each destination drains its
// mailboxes in canonical (source shard, send order) order, scheduling the
// messages onto its own wheel — and because every message's effect time
// provably lies at or beyond the next epoch boundary, no shard can ever
// receive a message for a time it has already simulated. Ties on one
// wheel are broken by that wheel's sequence numbers, whose assignment
// order is itself deterministic (local schedules during the epoch, then
// canonical mailbox drains), so the whole computation is a pure function
// of the program and the machine — the worker count that executes the
// shards changes wall-clock time and nothing else. That is the engine's
// byte-identity invariant: shards=1 and shards=N produce identical
// Results, stats maps and BENCH trajectories, pinned by equivalence tests
// across every machine profile and by the -race short tier.
//
// # Relation to the sequential engine
//
// The sharded engine is a second, deliberately relaxed semantics of the
// same machine — not a reimplementation of the sequential event order:
//
//   - The controller-queue admission check (NACK) runs when the request
//     arrives at the domain (issue + XbarLatency) against the queue state
//     at that time, and NACK retries poll at the controller rather than
//     from the strand.
//   - A strand's posted stores go through the same request/reply cycle as
//     loads (the strand still only waits for bank occupancy), so requests
//     reach each bank cursor in arrival-time order — the sequential
//     engine's inline store runs can acquire cursors slightly out of
//     arrival order within one event.
//   - The run-ahead window is global state with zero lookahead, so it is
//     maintained per-shard and merged at every barrier: a shard parks
//     against the global minimum of the previous barrier (a conservative,
//     never-stale-high bound that can only park earlier, keeping the
//     window invariant intact), and parked strands wake exactly at epoch
//     boundaries.
//
// All three deviations are deterministic and shard-count-invariant; they
// make the sharded engine's cycle counts differ slightly from the
// sequential engine's. Sequential execution therefore remains the default
// everywhere (committed BENCH trajectories are produced by it), and the
// sharded engine is selected explicitly per run. Steady-state fast-forward
// (forward.go) fingerprints global state and is disabled under sharding at
// every worker count — the engine targets exactly the workloads whose
// contended microstate never recurs (Jacobi, LBM, 64-thread streams),
// which fast-forward provably cannot help.
//
// # Fallbacks
//
// RunSharded falls back to the sequential engine (Result.Shards == 0) when
// the run cannot be decomposed: programs whose generators share
// order-sensitive scheduler state (OpenMP dynamic/guided), the MSHR
// ablation (a strand with several outstanding misses would need replies
// that take effect at its own issue time — zero lookahead), and mappings
// whose bank->controller relation is not a function (none of the
// registered profiles; checked over the same validation windows
// phys.Resolve uses).
package chip

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Sharded-engine event kinds (the sequential engine uses evStep = 1).
const (
	evPStep sim.Kind = 2 // resume a home strand; arg = strand id
	evPMsg  sim.Kind = 3 // deliver a message; arg = arena index
)

// Message kinds.
const (
	pmReq        uint8 = iota // strand -> domain: one line access
	pmLoadReply               // domain -> strand: load data back at the strand
	pmStoreReply              // domain -> strand: store admitted (bank done, fill time)
)

// shardMsg is one cross- or intra-shard message. when is the effect time
// on the destination wheel; the epoch invariant guarantees it lies at or
// beyond the next epoch boundary at send time.
type shardMsg struct {
	when   sim.Time
	line   phys.Addr
	aux    sim.Time // pmStoreReply: fill completion time
	strand int32
	kind   uint8
	write  bool
}

// pstrand is the sharded engine's strand record. It lives on its home
// shard (the shard owning its core) and is only ever touched by that
// shard's goroutine.
type pstrand struct {
	id     int32
	home   int32
	core   int
	group  int
	gen    trace.Generator
	item   trace.Item
	active bool
	parked bool
	accIdx int
	items  int64
	sb     []sim.Time // store-buffer ring: completion times of posted fills
	sbPos  int
	t      sim.Time // strand-local time: issue point of the in-flight access

	// Generator replay log (speculate.go): items pulled during a
	// speculative burst, deep-copied so a rollback can replay them instead
	// of rewinding the generator. replayPos is the consumption cursor —
	// the only part of the log a rollback touches — and replayEnd latches
	// generator exhaustion across rollbacks.
	replay    []trace.Item
	replayPos int
	replayEnd bool
}

// reqProbe is a NACKed request's cached tag probe, valid while its set's
// install version is unchanged.
type reqProbe struct {
	probe cache.Probe
	ver   uint32
	valid bool
}

// pshard is one controller domain plus its home cores and strands: an
// independently clocked partition of the machine.
type pshard struct {
	id  int32
	ps  *parState
	eng sim.Engine

	// Mailboxes, double-buffered by epoch generation: during an epoch the
	// shard appends to out[gen][dst] while every destination drains the
	// previous generation's boxes, so production and delivery never touch
	// the same slice in the same phase. The merge step flips the
	// generation. outCount and outMin summarize each generation's
	// undelivered mail for the merge's termination and skip-ahead logic.
	out      [2][][]shardMsg
	outCount [2]int
	outMin   [2]sim.Time

	// arena holds the payloads of evPMsg events pending on this wheel; the
	// event's arg indexes it, and free recycles consumed slots so the arena
	// stays bounded by the number of in-flight messages. probes parallels
	// arena with the NACK retry fast path: while a request polls a full
	// controller queue, its miss probe stays exact as long as the set's
	// install version is unchanged, so retry ticks skip the tag lookup —
	// the same equivalent-computation shortcut the sequential engine uses.
	arena  []shardMsg
	probes []reqProbe
	free   []int32

	// Home strands and run-ahead accounting over them (the local half of
	// the global window; merged at barriers).
	strands  []int32
	window   []int32
	active   int
	localMin int64 // min items over active home strands; -1 once none
	parked   []int32
	parkMin  int64 // min items over parked home strands; -1 when none parked
	running  int

	// Per-shard copies of the global epoch cursor state. Every shard holds
	// the same values at all times — the owning worker updates them at each
	// epoch boundary (batched loop) or the serial merge updates them all
	// (classic loop) — so the hot paths (send clamps, window checks, the
	// wheel's run horizon) read shard-owned state and never race.
	gen      int      // mailbox generation being produced this epoch
	epochEnd sim.Time // end (exclusive) of the epoch being executed
	gmin     int64    // run-ahead global minimum of the last boundary; -1 once all retired

	units        int64
	repBytes     int64
	loadStall    int64
	storeStall   int64
	computeStall int64
	retryStall   int64
	retries      int64
	finish       sim.Time
	idleEpochs   int64  // epochs this shard executed no event (barrier stalls)
	epochsRun    int64  // epochs this shard has executed (watchdog/fault bookkeeping)
	busyRounds   int64  // batched rounds in which this shard executed at least one event
	stepsMark    uint64 // eng.Steps() at the last round boundary (busyRounds bookkeeping)

	// Speculation state (speculate.go): the burst-entry checkpoint, reused
	// across bursts, and the replay-logging flag the item pull consults
	// while a burst is in flight. Both are owned by the shard's worker.
	ckpt    shardCkpt
	specLog bool

	// diag is the shard's progress snapshot, published (atomically, once
	// per epoch, only on armed runs) for the watchdog's diagnostics: a
	// tripped run reports each shard's last known epoch, wheel depth,
	// undelivered mail and barrier stalls without touching shard-owned
	// state from another goroutine.
	diag struct {
		epoch   atomic.Int64
		pending atomic.Int64
		mailbox atomic.Int64
		stalls  atomic.Int64
	}
}

// parState is the sharded engine's run state, cached on the Machine like
// the sequential engine's runState so reuse costs a reset.
type parState struct {
	cfg   Config
	l2    *cache.Banked
	mc    *mem.System
	cores *cpu.Cores
	banks []sim.Cursor // all banks; each touched only by its owning shard

	shards  []*pshard
	strands []*pstrand
	pool    []*pstrand

	runAhead int64

	w       sim.Time // epoch width (conservative bound, or the relaxed override)
	epochs  int64    // barrier rounds: serial merges (classic) or batched rounds
	micro   int64    // epochs actually executed (= epochs when batching is off)
	noBatch bool     // run the classic one-merge-per-epoch loop
	spec    bool     // run the speculative loop (speculate.go)
	done    bool

	// Speculation telemetry, written by worker 0 at loop exit. All three
	// are deterministic and worker-invariant: every burst decision is a
	// pure function of folded machine-wide aggregates.
	specEpochs    int64 // micro-epochs executed inside committed bursts
	specCommits   int64 // bursts that validated and committed
	specRollbacks int64 // bursts that failed validation and rolled back

	// Abort protocol (armed runs only — see RunShardedCtx). abort makes a
	// single transition away from abortNone, set by the monitor goroutine;
	// workers poll it at the top of every epoch and the barrier polls it on
	// its spin slow path, so every non-wedged worker exits within one
	// epoch. armed additionally enables the per-shard diag publication;
	// fault-free runs leave it false and pay one predictable atomic load
	// per worker per epoch.
	abort    atomic.Int32
	armed    bool
	progress atomic.Int64 // merged epoch count, stored by the leader each merge
	wderr    atomic.Pointer[WatchdogError]
}

// abort states.
const (
	abortNone int32 = iota
	abortCancel
	abortWatchdog
)

// shardable reports whether the mapping's bank->controller relation is a
// function, i.e. every address of a bank is served by one controller —
// the property that lets one shard own a bank's tag sets and its
// controller's channels together. It is validated over the same windows
// phys.Resolve uses for its field check.
func shardable(m phys.Mapping) bool {
	banks, ctls := m.Banks(), m.Controllers()
	if ctls <= 0 || banks%ctls != 0 {
		return false
	}
	bpc := banks / ctls
	span := m.Period() * 4
	if span < 4*phys.PageSize {
		span = 4 * phys.PageSize
	}
	for _, base := range []phys.Addr{0, 1 << 40} {
		for off := phys.Addr(0); off < phys.Addr(span); off += phys.LineSize {
			a := base + off
			if m.Controller(a) != m.Bank(a)/bpc {
				return false
			}
		}
	}
	return true
}

// epochWidth derives the conservative epoch width: the minimum latency by
// which any cross-shard effect trails the event that sends it. Requests
// trail their issue by XbarLatency; replies trail the request's arrival by
// at least one bank service.
func epochWidth(cfg Config) sim.Time {
	w := cfg.XbarLatency
	if cfg.L2BankService < w {
		w = cfg.L2BankService
	}
	if w < 1 {
		w = 1
	}
	return w
}

// EpochWidth reports the conservative epoch width this machine's sharded
// engine derives from its configuration: the minimum latency by which any
// cross-shard effect trails the event that sends it. ShardOptions.EpochWidth
// values below this bound are rejected; values above it run relaxed.
func (m *Machine) EpochWidth() sim.Time {
	return epochWidth(m.cfg)
}

// Shardable reports whether this machine would run prog on the sharded
// engine rather than falling back to the sequential one. The mapping's
// bank->controller scan is memoized: the configuration is immutable for
// the machine's lifetime, so the verdict is too.
func (m *Machine) Shardable(prog *trace.Program) bool {
	if m.shardOK == 0 {
		if m.cfg.MSHRPerStrand == 1 && shardable(m.cfg.Mapping) {
			m.shardOK = 1
		} else {
			m.shardOK = -1
		}
	}
	return !prog.SharedSched && m.shardOK > 0
}

// RunSharded executes prog on the controller-domain sharded engine with up
// to workers goroutines (workers <= 0 means GOMAXPROCS; the effective
// count is capped by the domain count). The result is byte-identical for
// every workers value — the worker count is pure execution parallelism —
// and carries the sharding telemetry in Result.Shards/EpochWidth/Epochs/
// BarrierStalls. Runs the engine cannot decompose (see Shardable) fall
// back to the sequential engine and report Shards == 0.
func (m *Machine) RunSharded(prog *trace.Program, workers int) Result {
	if d := m.cfg.Mapping.Controllers(); workers > d {
		workers = d // legacy behavior: cap silently; RunShardedCtx validates
	}
	res, err := m.RunShardedCtx(context.Background(), prog, ShardOptions{Workers: workers})
	if err != nil {
		// Only reachable under fault injection: a background context never
		// cancels and no watchdog is armed here.
		panic(fmt.Sprintf("chip: uncancellable RunSharded aborted: %v", err))
	}
	return res
}

// RunShardedCtx is RunSharded with a resilience envelope: the run aborts
// cleanly when ctx is cancelled (returning the partial Result and a
// *CancelError), an explicit worker request above the controller-domain
// count is rejected up front with ErrShardOversubscribed instead of being
// silently capped, and a positive opt.Watchdog arms the epoch-barrier
// watchdog — if no shard completes an epoch for that long, the run fails
// with a *WatchdogError carrying per-shard diagnostics instead of spinning
// at the barrier forever. After a watchdog trip the machine's sharded run
// state is discarded (the wedged goroutine may still hold it), so the
// machine stays reusable; the wedged goroutine itself exits the moment it
// wakes and observes the abort. Runs the engine cannot decompose fall back
// to the sequential engine under the same context.
func (m *Machine) RunShardedCtx(ctx context.Context, prog *trace.Program, opt ShardOptions) (Result, error) {
	if d := m.cfg.Mapping.Controllers(); opt.Workers > d {
		return Result{}, fmt.Errorf("%w: %d workers requested, %d controller domains (machine %dc%dt)",
			ErrShardOversubscribed, opt.Workers, d, m.cfg.Cores, m.cfg.StrandsPerCore)
	}
	if err := ctx.Err(); err != nil {
		// Already cancelled: refuse deterministically instead of racing the
		// monitor goroutine's first scheduling slice against a short run.
		return Result{}, &CancelError{Cause: context.Cause(ctx)}
	}
	if opt.EpochWidth != 0 {
		if w := epochWidth(m.cfg); opt.EpochWidth < w {
			return Result{}, fmt.Errorf("%w: requested width %d, conservative bound %d",
				ErrEpochWidthTooNarrow, opt.EpochWidth, w)
		}
	}
	if opt.Speculate && opt.NoBatch {
		return Result{}, ErrSpeculateNoBatch
	}
	if !m.Shardable(prog) {
		return m.RunCtx(ctx, prog)
	}
	m.validateTeam(prog)
	ps := m.preparePar(prog, opt)
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ps.shards) {
		workers = len(ps.shards)
	}
	ps.armed = ctx.Done() != nil || opt.Watchdog > 0
	var firedAt atomic.Int64
	var quit chan struct{}
	if ps.armed {
		quit = make(chan struct{})
		go ps.monitor(ctx, opt.Watchdog, quit, &firedAt)
	}
	ps.run(workers)
	if quit != nil {
		close(quit) // a no-op for the monitor if it already aborted and exited
	}
	switch ps.abort.Load() {
	case abortWatchdog:
		// The wedged worker may wake later and touch this state; abandon it
		// rather than reuse it. No partial Result: unlike a cancel, nothing
		// waited for the workers, so their state may still be in motion.
		m.pps = nil
		return Result{}, ps.wderr.Load()
	case abortCancel:
		res := ps.collect(m.cfg, prog)
		var lat time.Duration
		if at := firedAt.Load(); at != 0 {
			lat = time.Since(time.Unix(0, at))
		}
		return res, &CancelError{Cause: context.Cause(ctx), Latency: lat}
	}
	return ps.collect(m.cfg, prog), nil
}

// preparePar builds or resets the sharded run state and seeds the strands.
func (m *Machine) preparePar(prog *trace.Program, opt ShardOptions) *parState {
	n := len(prog.Gens)
	ps := m.pps
	if ps == nil {
		d := m.cfg.Mapping.Controllers()
		ps = &parState{
			cfg:      m.cfg,
			l2:       cache.New(m.cfg.L2, m.cfg.Mapping),
			mc:       mem.New(m.cfg.Mem, m.cfg.Mapping),
			cores:    cpu.New(cpu.Config{Cores: m.cfg.Cores, GroupsPerCore: m.cfg.GroupsPerCore, LSUPipes: 2}),
			banks:    make([]sim.Cursor, m.cfg.Mapping.Banks()),
			runAhead: m.cfg.RunAhead,
			w:        epochWidth(m.cfg),
		}
		for i := 0; i < d; i++ {
			sh := &pshard{id: int32(i), ps: ps}
			sh.out[0] = make([][]shardMsg, d)
			sh.out[1] = make([][]shardMsg, d)
			if ps.runAhead > 0 {
				sh.window = make([]int32, ps.runAhead+1)
			}
			sh.eng.SetHandler(sh.handle)
			ps.shards = append(ps.shards, sh)
		}
		m.pps = ps
	} else {
		ps.l2.Reset()
		ps.mc.Reset()
		ps.cores.Reset()
		for i := range ps.banks {
			ps.banks[i].Reset()
		}
		for _, sh := range ps.shards {
			sh.eng.Reset()
			sh.eng.SetHandler(sh.handle)
			for g := range sh.out {
				for d := range sh.out[g] {
					sh.out[g][d] = sh.out[g][d][:0]
				}
				sh.outCount[g] = 0
			}
			sh.arena = sh.arena[:0]
			sh.probes = sh.probes[:0]
			sh.free = sh.free[:0]
			sh.strands = sh.strands[:0]
			clear(sh.window)
			sh.active, sh.localMin = 0, 0
			sh.parked = sh.parked[:0]
			sh.running = 0
			sh.units, sh.repBytes = 0, 0
			sh.loadStall, sh.storeStall, sh.computeStall = 0, 0, 0
			sh.retryStall, sh.retries = 0, 0
			sh.finish, sh.idleEpochs = 0, 0
			sh.specLog = false
		}
	}
	// Per-run epoch parameters: the relaxed width override and the batching
	// mode are run options, so a cached parState re-derives them each run.
	ps.w = epochWidth(m.cfg)
	if opt.EpochWidth != 0 {
		ps.w = opt.EpochWidth
	}
	ps.noBatch = opt.NoBatch
	ps.spec = opt.Speculate
	ps.specEpochs, ps.specCommits, ps.specRollbacks = 0, 0, 0
	for _, sh := range ps.shards {
		sh.gen = 0
		sh.epochEnd = ps.w
		sh.gmin = 0
		sh.parkMin = -1
		sh.busyRounds = 0
		sh.stepsMark = 0
	}
	ps.epochs = 0
	ps.micro = 0
	ps.done = false
	ps.abort.Store(abortNone)
	ps.armed = false
	ps.progress.Store(0)
	ps.wderr.Store(nil)
	for _, sh := range ps.shards {
		sh.epochsRun = 0
		sh.diag.epoch.Store(0)
		sh.diag.pending.Store(0)
		sh.diag.mailbox.Store(0)
		sh.diag.stalls.Store(0)
	}

	m.warmL2(ps.l2, prog.WarmLines)

	for len(ps.pool) < n {
		ps.pool = append(ps.pool, &pstrand{id: int32(len(ps.pool)), sb: make([]sim.Time, m.cfg.StoreBuffer)})
	}
	ps.strands = ps.pool[:n]
	d := int32(len(ps.shards))
	for t := 0; t < n; t++ {
		s := ps.strands[t]
		s.gen = prog.Gens[t]
		s.core, s.group = m.cfg.Place(t)
		s.home = int32(s.core) % d
		s.item.Reset()
		s.active, s.parked, s.accIdx, s.items = false, false, 0, 0
		clear(s.sb)
		s.sbPos = 0
		s.t = 0
		s.replay = s.replay[:0]
		s.replayPos = 0
		s.replayEnd = false
		sh := ps.shards[s.home]
		sh.strands = append(sh.strands, s.id)
		sh.running++
		if ps.runAhead > 0 {
			sh.window[0]++
			sh.active++
		}
		sh.localMin = 0
		sh.eng.Schedule(0, evPStep, s.id)
	}
	if ps.runAhead > 0 {
		for _, sh := range ps.shards {
			if sh.active == 0 {
				sh.localMin = -1
			}
		}
	}
	return ps
}

// collect assembles the Result after the epoch loop has drained.
func (ps *parState) collect(cfg Config, prog *trace.Program) Result {
	var cycles sim.Time
	res := Result{
		Label:         prog.Label,
		Threads:       len(ps.strands),
		Shards:        int64(len(ps.shards)),
		EpochWidth:    ps.w,
		Epochs:        ps.epochs,
		BatchedEpochs: ps.micro,
	}
	var busy int64
	for _, sh := range ps.shards {
		if sh.finish > cycles {
			cycles = sh.finish
		}
		res.Units += sh.units
		res.RepBytes += sh.repBytes
		res.LoadStall += sh.loadStall
		res.StoreStall += sh.storeStall
		res.ComputeStall += sh.computeStall
		res.RetryStall += sh.retryStall
		res.Retries += sh.retries
		res.BarrierStalls += sh.idleEpochs
		if ps.noBatch {
			busy += sh.epochsRun - sh.idleEpochs
		} else {
			busy += sh.busyRounds
		}
	}
	res.BusyShardRounds = busy
	if rounds := ps.epochs * int64(len(ps.shards)); rounds > 0 {
		res.BusyShardPct = 100 * float64(busy) / float64(rounds)
	}
	res.SpecEpochs = ps.specEpochs
	res.SpecCommits = ps.specCommits
	res.SpecRollbacks = ps.specRollbacks
	if cycles == 0 {
		cycles = 1
	}
	secs := float64(cycles) / cfg.ClockHz
	mcStats := ps.mc.Stats()
	var lines int64
	for _, cs := range mcStats {
		lines += cs.Lines()
	}
	res.Cycles = cycles
	res.Seconds = secs
	res.L2 = ps.l2.Stats()
	res.MC = mcStats
	res.MCUtil = ps.mc.Utilization(cycles)
	res.FPUBusy = ps.cores.TotalFPUBusy()
	res.GBps = float64(res.RepBytes) / secs / 1e9
	res.ActualGBps = float64(lines*cfg.L2.LineSize) / secs / 1e9
	res.MUPs = float64(res.Units) / secs / 1e6
	// Explicit fast-forward guard: the sharded engine never arms the
	// detector (parState carries none), and these zeroes keep that
	// invariant visible and testable rather than implicit. An analytic
	// jump would have to reconcile skipped work with the epoch barriers of
	// every other domain, which the deterministic-interleave argument does
	// not cover.
	res.FFItems, res.FFCycles, res.FFPeriod = 0, 0, 0
	res.FFJumps, res.FFSkippedEpochs = 0, 0
	return res
}

// ---- epoch loop ------------------------------------------------------------

// run drives the epoch loop: deliver + run each shard, barrier, merge,
// barrier, repeat. workers == 1 executes the identical schedule on the
// calling goroutine; workers > 1 partitions shards statically
// (shard i -> worker i%workers) and synchronizes with a spin barrier. The
// two paths perform the same per-shard operations on disjoint state in the
// same per-shard order, which is the byte-identity argument.
func (ps *parState) run(workers int) {
	if !ps.noBatch {
		if ps.spec {
			ps.runSpec(workers)
			return
		}
		ps.runBatched(workers)
		return
	}
	if workers <= 1 {
		for !ps.done && ps.abort.Load() == abortNone {
			for _, sh := range ps.shards {
				sh.deliver()
				sh.runEpoch()
			}
			ps.merge()
		}
		return
	}
	bar := &spinBarrier{n: int32(workers)}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ps.workerLoop(w, workers, bar)
		}(w)
	}
	ps.workerLoop(0, workers, bar)
	if ps.abort.Load() == abortWatchdog {
		// A watchdog trip means at least one worker is wedged mid-epoch and
		// may block indefinitely; waiting for it would reintroduce the hang
		// the watchdog exists to break. The workers' shard state is
		// abandoned by the caller (RunShardedCtx drops the parState), and
		// each worker exits at its next abort poll.
		return
	}
	wg.Wait()
}

// workerLoop is one worker's half of the barrier protocol. Worker 0 is the
// leader and performs the serial merge between the two barriers. Any abort
// observed — at the epoch boundary or inside a barrier spin — exits the
// loop; the barrier cannot be re-entered after an abort, which is safe
// because every worker is on its way out too.
func (ps *parState) workerLoop(w, workers int, bar *spinBarrier) {
	var sense uint32
	for {
		if ps.abort.Load() != abortNone {
			return
		}
		for i := w; i < len(ps.shards); i += workers {
			sh := ps.shards[i]
			sh.deliver()
			sh.runEpoch()
		}
		if !bar.wait(&sense, &ps.abort) {
			return
		}
		if w == 0 {
			ps.merge()
		}
		if !bar.wait(&sense, &ps.abort) {
			return
		}
		if ps.done {
			return
		}
	}
}

// runEpoch advances this shard's wheel to the end of the current epoch.
func (sh *pshard) runEpoch() {
	faults.ShardStall(int(sh.id), sh.epochsRun) // no-op unless injecting
	steps := sh.eng.Steps()
	sh.eng.RunUntil(sh.epochEnd - 1)
	if sh.eng.Steps() == steps {
		sh.idleEpochs++
	}
	sh.epochsRun++
	if sh.ps.armed {
		sh.diag.epoch.Store(sh.epochsRun)
		sh.diag.pending.Store(int64(sh.eng.Pending()))
		sh.diag.mailbox.Store(int64(sh.outCount[sh.gen]))
		sh.diag.stalls.Store(sh.idleEpochs)
	}
}

// monitor is an armed run's supervisor goroutine: it aborts the epoch loop
// when ctx is cancelled (recording the observation time for the
// cancel-latency telemetry) and, with wd > 0, trips the watchdog when the
// merged epoch count stops advancing for a full deadline — publishing the
// per-shard diagnostics first, so the abort's observer reads a complete
// WatchdogError.
func (ps *parState) monitor(ctx context.Context, wd time.Duration, quit <-chan struct{}, firedAt *atomic.Int64) {
	var tc <-chan time.Time
	if wd > 0 {
		tick := wd / 4
		if tick > 100*time.Millisecond {
			tick = 100 * time.Millisecond
		}
		if tick < time.Millisecond {
			tick = time.Millisecond
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		tc = t.C
	}
	last := ps.progress.Load()
	lastChange := time.Now()
	for {
		select {
		case <-quit:
			return
		case <-ctx.Done():
			firedAt.Store(time.Now().UnixNano())
			ps.abort.CompareAndSwap(abortNone, abortCancel)
			return
		case <-tc:
			cur := ps.progress.Load()
			if cur != last {
				last, lastChange = cur, time.Now()
				continue
			}
			if time.Since(lastChange) >= wd {
				ps.wderr.Store(ps.watchdogError(wd))
				ps.abort.CompareAndSwap(abortNone, abortWatchdog)
				return
			}
		}
	}
}

// watchdogError assembles the trip report from the shards' published
// progress snapshots.
func (ps *parState) watchdogError(wd time.Duration) *WatchdogError {
	e := &WatchdogError{Deadline: wd, Epochs: ps.progress.Load()}
	for _, sh := range ps.shards {
		e.Shards = append(e.Shards, ShardDiag{
			Shard:         int(sh.id),
			Epoch:         sh.diag.epoch.Load(),
			Pending:       int(sh.diag.pending.Load()),
			Mailbox:       int(sh.diag.mailbox.Load()),
			BarrierStalls: sh.diag.stalls.Load(),
		})
	}
	return e
}

// deliver drains this shard's incoming mailboxes of the previous
// generation in canonical source order, scheduling each message onto the
// local wheel. FIFO order within a mailbox and the fixed source order make
// the resulting sequence numbers — and therefore all same-cycle
// tie-breaks — independent of the worker count.
func (sh *pshard) deliver() {
	g := sh.gen ^ 1
	for src := range sh.ps.shards {
		from := sh.ps.shards[src]
		box := from.out[g][sh.id]
		for i := range box {
			sh.post(box[i])
		}
		from.out[g][sh.id] = box[:0]
	}
}

// merge is the serial barrier step: refresh the global run-ahead minimum
// and wake eligible parked strands, detect termination or deadlock, and
// pick the next epoch (skipping empty ones). It runs on one goroutine with
// every worker parked at the barrier, and everything it computes is a
// deterministic function of shard state in shard order.
func (ps *parState) merge() {
	ps.epochs++
	ps.micro++
	ps.progress.Store(ps.epochs) // watchdog heartbeat; readers are off-loop
	end := ps.shards[0].epochEnd // every shard holds the same cursor
	g := ps.shards[0].gen
	if ps.runAhead > 0 {
		gm := int64(-1)
		for _, sh := range ps.shards {
			if sh.localMin >= 0 && (gm < 0 || sh.localMin < gm) {
				gm = sh.localMin
			}
		}
		for _, sh := range ps.shards {
			sh.gmin = gm
			if len(sh.parked) == 0 {
				continue
			}
			kept := sh.parked[:0]
			pm := int64(-1)
			for _, id := range sh.parked {
				s := ps.strands[id]
				if sh.overWindow(s) {
					kept = append(kept, id)
					if pm < 0 || s.items < pm {
						pm = s.items
					}
					continue
				}
				s.parked = false
				sh.eng.Schedule(end, evPStep, id)
			}
			sh.parked = kept
			sh.parkMin = pm
		}
	}

	pending := 0
	var earliest sim.Time
	has := false
	running := 0
	for _, sh := range ps.shards {
		running += sh.running
		pending += sh.eng.Pending() + sh.outCount[g]
		if t, ok := sh.eng.PeekTime(); ok && (!has || t < earliest) {
			earliest, has = t, true
		}
		if sh.outCount[g] > 0 && (!has || sh.outMin[g] < earliest) {
			earliest, has = sh.outMin[g], true
		}
		// The previous generation was fully delivered during the epoch that
		// just ran; its accounting resets here, in the serial step.
		sh.outCount[g^1] = 0
	}
	if pending == 0 {
		if running != 0 {
			panic("chip: deadlock — strands left running with no events (sharded engine)")
		}
		ps.done = true
		return
	}
	// Advance to the epoch containing the earliest pending event; skipping
	// event-free epochs is a deterministic function of that timestamp.
	start := end
	if earliest > start {
		start += (earliest - start) / ps.w * ps.w
	}
	for _, sh := range ps.shards {
		sh.epochEnd = start + ps.w
		sh.gen = g ^ 1
	}
}

// spinBarrier is a sense-reversing barrier tuned for the short, frequent
// epochs of the sharded engine: arrivals spin briefly on an atomic before
// yielding, so a barrier among runnable workers costs well under a
// microsecond and GOMAXPROCS=1 still makes progress through Gosched.
type spinBarrier struct {
	n     int32
	count atomic.Int32
	sense atomic.Uint32
}

// wait returns false when an abort was observed while spinning: the
// barrier will never complete (some worker has already left the protocol),
// so the caller must exit too. The abort poll lives on the yield slow path
// only — the first 128 spins stay a pure load loop.
func (b *spinBarrier) wait(sense *uint32, abort *atomic.Int32) bool {
	s := *sense ^ 1
	*sense = s
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.sense.Store(s)
		return true
	}
	for i := 0; b.sense.Load() != s; i++ {
		if i > 128 {
			if abort.Load() != abortNone {
				return false
			}
			runtime.Gosched()
		}
	}
	return true
}

// ---- event handlers --------------------------------------------------------

// handle dispatches this shard's typed events.
func (sh *pshard) handle(kind sim.Kind, arg int32) {
	switch kind {
	case evPStep:
		s := sh.ps.strands[arg]
		s.t = sh.eng.Now()
		sh.advance(s)
	case evPMsg:
		m := &sh.arena[arg]
		switch m.kind {
		case pmReq:
			sh.serveReq(arg, m)
		case pmLoadReply:
			s := sh.ps.strands[m.strand]
			sh.free = append(sh.free, arg)
			now := sh.eng.Now()
			sh.loadStall += now - s.t
			s.accIdx++
			s.t = now
			sh.advance(s)
		case pmStoreReply:
			s := sh.ps.strands[m.strand]
			fill := m.aux
			sh.free = append(sh.free, arg)
			now := sh.eng.Now()
			s.sb[s.sbPos] = fill
			s.sbPos = (s.sbPos + 1) % len(s.sb)
			s.accIdx++
			s.t = now
			sh.advance(s)
		}
	default:
		panic(fmt.Sprintf("chip: unknown sharded event kind %d", kind))
	}
}

// overWindow reports whether the strand must park before starting another
// item. The bound is checked against the global minimum of the last
// barrier (held in the shard's own gmin copy), which is never above the
// live minimum, so sharded strands park at or before the point the
// sequential window would park them.
func (sh *pshard) overWindow(s *pstrand) bool {
	return sh.ps.runAhead > 0 && sh.gmin >= 0 && s.items-sh.gmin >= sh.ps.runAhead
}

// advance runs one strand from its current local time until it blocks:
// on the run-ahead window (park), on generator exhaustion (retire), on a
// full store buffer, on an access request's round trip, or on compute
// completion. It is the sharded counterpart of the sequential engine's
// step.
func (sh *pshard) advance(s *pstrand) {
	ps := sh.ps
	t := s.t
	for {
		if !s.active {
			if sh.overWindow(s) {
				s.parked = true
				sh.parked = append(sh.parked, s.id)
				if sh.parkMin < 0 || s.items < sh.parkMin {
					sh.parkMin = s.items
				}
				return
			}
			s.item.Reset()
			if !sh.nextItem(s) {
				sh.running--
				sh.retire(s)
				if t > sh.finish {
					sh.finish = t
				}
				return
			}
			s.active = true
			s.accIdx = 0
		}
		if s.accIdx < len(s.item.Acc) {
			a := s.item.Acc[s.accIdx]
			if a.Write {
				// Store-buffer backpressure: block until the oldest
				// posted fill lands if all entries are in flight.
				if oldest := s.sb[s.sbPos]; oldest > t {
					sh.storeStall += oldest - t
					sh.eng.Schedule(oldest, evPStep, s.id)
					return
				}
			}
			s.t = t
			sh.sendReq(s, phys.LineOf(a.Addr), a.Write, t)
			return
		}
		tc := ps.cores.Compute(t, s.core, s.group, s.item.Demand)
		sh.computeStall += tc - t
		sh.units += s.item.Units
		sh.repBytes += s.item.RepBytes
		sh.bumpItems(s)
		s.active = false
		if tc > t {
			sh.eng.Schedule(tc, evPStep, s.id)
			return
		}
		t = tc
	}
}

// sendReq routes one line access to the shard owning the line's controller
// domain, arriving one crossbar traversal after issue. The max with the
// current epoch end documents (and, for degenerate configurations,
// enforces) the conservative invariant; for every registered profile the
// crossbar latency alone clears the epoch boundary.
func (sh *pshard) sendReq(s *pstrand, line phys.Addr, write bool, t sim.Time) {
	ps := sh.ps
	when := t + ps.cfg.XbarLatency
	if when < sh.epochEnd {
		when = sh.epochEnd
	}
	msg := shardMsg{when: when, line: line, strand: s.id, kind: pmReq, write: write}
	d := int32(ps.mc.Controller(line))
	if d == sh.id {
		sh.post(msg)
		return
	}
	sh.send(d, msg)
}

// send appends a message to the current generation's mailbox for shard d.
func (sh *pshard) send(d int32, msg shardMsg) {
	g := sh.gen
	if sh.outCount[g] == 0 || msg.when < sh.outMin[g] {
		sh.outMin[g] = msg.when
	}
	sh.out[g][d] = append(sh.out[g][d], msg)
	sh.outCount[g]++
}

// post schedules a message onto this shard's own wheel, recycling arena
// slots.
func (sh *pshard) post(msg shardMsg) {
	var idx int32
	if n := len(sh.free); n > 0 {
		idx = sh.free[n-1]
		sh.free = sh.free[:n-1]
		sh.arena[idx] = msg
		sh.probes[idx] = reqProbe{}
	} else {
		idx = int32(len(sh.arena))
		sh.arena = append(sh.arena, msg)
		sh.probes = append(sh.probes, reqProbe{})
	}
	sh.eng.Schedule(msg.when, evPMsg, idx)
}

// serveReq performs one line access against this shard's domain state: the
// admission check against the controller queue, bank occupancy, the tag
// commit, the memory round trip on a miss, and the reply to the strand's
// home shard. A NACK keeps the request at the controller and polls again a
// retry period later — the request's arena slot is simply rescheduled.
func (sh *pshard) serveReq(arg int32, m *shardMsg) {
	ps := sh.ps
	arrive := sh.eng.Now()
	var probe cache.Probe
	if rp := &sh.probes[arg]; rp.valid && ps.l2.InstallVersion(rp.probe) == rp.ver {
		probe = rp.probe // retry tick: the cached miss probe is still exact
	} else {
		probe = ps.l2.ProbeLine(m.line)
	}
	if !probe.Hit && ps.mc.FullCtl(arrive, int(sh.id)) {
		sh.retryStall += ps.cfg.RetryDelay
		sh.retries++
		sh.probes[arg] = reqProbe{probe: probe, ver: ps.l2.InstallVersion(probe), valid: true}
		sh.eng.Schedule(arrive+ps.cfg.RetryDelay, evPMsg, arg)
		return
	}
	sh.probes[arg].valid = false
	bankStart, bankDone := ps.banks[probe.Bank].Acquire(arrive, ps.cfg.L2BankService)
	res := ps.l2.Commit(probe, m.write)
	var reply shardMsg
	if m.write {
		fill := bankDone
		if !res.Hit {
			fill = ps.mc.Read(bankDone, m.line)
			if res.VictimDirty {
				ps.mc.Write(bankDone, res.Victim)
			}
		}
		reply = shardMsg{when: bankDone, aux: fill, strand: m.strand, kind: pmStoreReply}
	} else {
		var dataAt sim.Time
		if res.Hit {
			dataAt = bankStart + ps.cfg.L2HitLatency
			if dataAt < bankDone {
				dataAt = bankDone
			}
		} else {
			dataAt = ps.mc.Read(bankDone, m.line)
			if res.VictimDirty {
				ps.mc.Write(bankDone, res.Victim)
			}
		}
		reply = shardMsg{when: dataAt + ps.cfg.XbarLatency, strand: m.strand, kind: pmLoadReply}
	}
	if reply.when < sh.epochEnd {
		reply.when = sh.epochEnd
	}
	home := ps.strands[m.strand].home
	sh.free = append(sh.free, arg)
	if home == sh.id {
		sh.post(reply)
		return
	}
	sh.send(home, reply)
}

// ---- run-ahead window (per-shard half) -------------------------------------

// bumpItems records an item completion in the local window ring. The ring
// stays in bounds because a strand only starts an item while within
// runAhead of the (conservative) global minimum, which is never above this
// shard's local minimum.
func (sh *pshard) bumpItems(s *pstrand) {
	old := s.items
	s.items++
	if sh.ps.runAhead <= 0 {
		return
	}
	w := int64(len(sh.window))
	sh.window[old%w]--
	sh.window[s.items%w]++
	if old == sh.localMin && sh.window[old%w] == 0 {
		sh.advanceLocalMin()
	}
}

// retire removes a finished strand from the local window accounting.
func (sh *pshard) retire(s *pstrand) {
	if sh.ps.runAhead <= 0 {
		return
	}
	sh.window[s.items%int64(len(sh.window))]--
	sh.active--
	if s.items == sh.localMin {
		sh.advanceLocalMin()
	}
}

// advanceLocalMin slides the local minimum to the next occupied bucket.
// Wakes happen only at barriers, from the merged global minimum.
func (sh *pshard) advanceLocalMin() {
	if sh.active == 0 {
		sh.localMin = -1
		return
	}
	w := int64(len(sh.window))
	min := sh.localMin
	for sh.window[min%w] == 0 {
		min++
	}
	sh.localMin = min
}
