package chip

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/phys"
	"repro/internal/trace"
)

// signalGen closes started on its first Next, so a test can cancel a run
// that is provably mid-flight instead of racing the run's startup.
type signalGen struct {
	marching
	started chan struct{}
	once    sync.Once
}

func (g *signalGen) Next(it *trace.Item) bool {
	g.once.Do(func() { close(g.started) })
	return g.marching.Next(it)
}

// wedgeGen simulates a wedged shard: after a few items its Next blocks for
// dur of wall-clock time, stalling the epoch barrier for every shard.
type wedgeGen struct {
	marching
	after int
	dur   time.Duration
	slept bool
}

func (g *wedgeGen) Next(it *trace.Item) bool {
	if !g.slept && g.pos >= g.after {
		g.slept = true
		time.Sleep(g.dur)
	}
	return g.marching.Next(it)
}

// TestRunCtxMatchesRun pins the zero-cost contract: a background context
// takes the exact fault-free path, so RunCtx and Run agree byte for byte.
func TestRunCtxMatchesRun(t *testing.T) {
	cfg := t2cfg()
	want := New(cfg).Run(marchingProg(8, 40))
	got, err := New(cfg).RunCtx(context.Background(), marchingProg(8, 40))
	if err != nil {
		t.Fatalf("RunCtx(Background) failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RunCtx diverged from Run:\n ctx: %+v\n run: %+v", got, want)
	}
}

// TestRunCtxPreCancelled: an already-cancelled context aborts immediately
// with a CancelError wrapping the cause, and the machine remains reusable —
// the next run must match a fresh machine's byte for byte.
func TestRunCtxPreCancelled(t *testing.T) {
	cfg := t2cfg()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := New(cfg)
	_, err := m.RunCtx(ctx, marchingProg(8, 40))
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("pre-cancelled RunCtx returned %v, want *CancelError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CancelError does not wrap context.Canceled: %v", err)
	}
	got := m.Run(marchingProg(8, 40))
	want := New(cfg).Run(marchingProg(8, 40))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("machine state leaked across a cancelled run:\n got:  %+v\n want: %+v", got, want)
	}
}

// TestRunCtxCancelMidRun cancels a long run the moment its first work item
// is pulled and asserts a clean abort: a CancelError with a measured halt
// latency and partial telemetry with a real clock horizon.
func TestRunCtxCancelMidRun(t *testing.T) {
	cfg := t2cfg()
	cfg.DisableFastForward = true
	const threads, items = 16, 1 << 20 // hours of simulation if not cancelled
	gens := make([]trace.Generator, threads)
	started := make(chan struct{})
	gens[0] = &signalGen{marching: marching{n: items}, started: started}
	for i := 1; i < threads; i++ {
		gens[i] = &marching{n: items, addr: phys.Addr(i) << 24}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { <-started; cancel() }()
	res, err := New(cfg).RunCtx(ctx, prog(gens...))
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("cancelled RunCtx returned %v, want *CancelError", err)
	}
	if ce.Latency <= 0 {
		t.Fatalf("mid-run cancel reported no halt latency: %+v", ce)
	}
	if res.Cycles <= 0 || res.Threads != threads {
		t.Fatalf("partial result has no telemetry horizon: %+v", res)
	}
}

// TestRunShardedCtxCancelMidRun is the sharded half of the clean-abort
// contract: every worker exits, the partial Result carries the sharding
// telemetry, and the machine stays reusable.
func TestRunShardedCtxCancelMidRun(t *testing.T) {
	cfg := t2cfg()
	const threads, items = 16, 1 << 20
	gens := make([]trace.Generator, threads)
	started := make(chan struct{})
	gens[0] = &signalGen{marching: marching{n: items}, started: started}
	for i := 1; i < threads; i++ {
		gens[i] = &marching{n: items, addr: phys.Addr(i) << 24}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { <-started; cancel() }()
	m := New(cfg)
	res, err := m.RunShardedCtx(ctx, prog(gens...), ShardOptions{Workers: 2})
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("cancelled RunShardedCtx returned %v, want *CancelError", err)
	}
	if res.Shards == 0 {
		t.Fatalf("partial sharded result lost its sharding telemetry: %+v", res)
	}
	got := m.RunSharded(marchingProg(8, 40), 2)
	want := New(cfg).RunSharded(marchingProg(8, 40), 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("machine state leaked across a cancelled sharded run:\n got:  %+v\n want: %+v", got, want)
	}
}

// TestRunShardedCtxArmedStaysByteIdentical: arming the resilience envelope
// (cancelable context + watchdog) on a healthy run must not change one
// result byte relative to the bare engine.
func TestRunShardedCtxArmedStaysByteIdentical(t *testing.T) {
	cfg := t2cfg()
	want := New(cfg).RunSharded(marchingProg(16, 120), 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := New(cfg).RunShardedCtx(ctx, marchingProg(16, 120), ShardOptions{Workers: 2, Watchdog: time.Minute})
	if err != nil {
		t.Fatalf("armed healthy run failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("armed run diverged from bare run:\n armed: %+v\n bare:  %+v", got, want)
	}
}

// TestRunShardedCtxOversubscribed pins the named up-front validation: an
// explicit worker request beyond the controller-domain count fails fast
// with ErrShardOversubscribed (the legacy RunSharded keeps capping).
func TestRunShardedCtxOversubscribed(t *testing.T) {
	cfg := t2cfg() // 4 controller domains
	_, err := New(cfg).RunShardedCtx(context.Background(), marchingProg(8, 40), ShardOptions{Workers: 5})
	if !errors.Is(err, ErrShardOversubscribed) {
		t.Fatalf("workers=5 on a 4-domain machine returned %v, want ErrShardOversubscribed", err)
	}
	// The legacy API's documented behavior is a silent cap, not an error.
	r := New(cfg).RunSharded(marchingProg(8, 40), 64)
	if r.Shards != 4 {
		t.Fatalf("legacy RunSharded with workers=64 reported Shards=%d, want 4", r.Shards)
	}
}

// TestWatchdogTripOnWedgedShard wedges one shard's generator mid-epoch and
// asserts the barrier watchdog converts the former infinite spin into a
// WatchdogError with per-shard diagnostics, leaving the machine reusable.
func TestWatchdogTripOnWedgedShard(t *testing.T) {
	cfg := t2cfg()
	const threads, items = 8, 4000
	gens := make([]trace.Generator, threads)
	gens[0] = &wedgeGen{marching: marching{n: items}, after: 50, dur: 500 * time.Millisecond}
	for i := 1; i < threads; i++ {
		gens[i] = &marching{n: items, addr: phys.Addr(i) << 24}
	}
	p := prog(gens...)
	p.WarmLines = 2048
	m := New(cfg)
	_, err := m.RunShardedCtx(context.Background(), p, ShardOptions{Workers: 2, Watchdog: 30 * time.Millisecond})
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("wedged shard returned %v, want *WatchdogError", err)
	}
	if len(we.Shards) != 4 {
		t.Fatalf("watchdog diagnostics cover %d shards, want 4:\n%v", len(we.Shards), we)
	}
	if m.pps != nil {
		t.Fatal("watchdog trip left the (possibly still referenced) sharded run state cached")
	}
	got := m.RunSharded(marchingProg(8, 40), 2)
	want := New(cfg).RunSharded(marchingProg(8, 40), 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("machine unusable after watchdog trip:\n got:  %+v\n want: %+v", got, want)
	}
}
