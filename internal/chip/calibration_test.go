package chip_test

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/chip"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/omp"
	"repro/internal/phys"
)

// calN is large enough that three arrays overflow the 4 MB L2 (no reuse),
// yet small enough for fast tests: 3 x 2 MB = 6 MB.
const calN = 1 << 18

// t2cfg returns the calibrated machine every calibration check targets.
func t2cfg() chip.Config { return machine.MustGet("t2").Config }

func runTriad(t *testing.T, offsetWords int64, threads int) chip.Result {
	t.Helper()
	sp := alloc.NewSpace()
	bases := sp.Common(3, calN+offsetWords, phys.WordSize)
	k := kernels.StreamTriad(bases[0], bases[1], bases[2], calN)
	m := chip.New(t2cfg())
	p := k.Program(omp.StaticBlock{}, threads)
	p.WarmLines = t2cfg().L2.SizeBytes / phys.LineSize
	return m.Run(p)
}

// TestCalibrationReport prints the calibration landscape for manual
// inspection with -v; it never fails.
func TestCalibrationReport(t *testing.T) {
	for _, off := range []int64{0, 8, 13, 16, 24, 32, 48, 64, 96} {
		r := runTriad(t, off, 64)
		tot := float64(r.Cycles) * 64
		t.Logf("triad off=%3d: %6.2f GB/s rep, %6.2f act, util %.2f/%.2f/%.2f/%.2f, load %.2f store %.2f comp %.2f, l2hit %.3f wb %d",
			off, r.GBps, r.ActualGBps, r.MCUtil[0], r.MCUtil[1], r.MCUtil[2], r.MCUtil[3],
			float64(r.LoadStall)/tot, float64(r.StoreStall)/tot, float64(r.ComputeStall)/tot,
			r.L2.HitRate(), r.L2.Writebacks)
	}
}

// TestCalibrationStreamTriadWorst checks E7: at zero offset all three
// arrays are congruent mod 512, every thread hits one controller at a
// time, and reported bandwidth collapses to the paper's ~3.7 GB/s floor.
func TestCalibrationStreamTriadWorst(t *testing.T) {
	r := runTriad(t, 0, 64)
	if r.GBps < 3.0 || r.GBps > 6.0 {
		t.Errorf("worst-case triad bandwidth = %.2f GB/s, want ~4.6 (paper floor ~4.5)", r.GBps)
	}
	// The convoy rotates over the controllers, so the long-run per-
	// controller shares are equal; the signature of "one controller at a
	// time" is that the summed utilization is about one controller's worth.
	var sum float64
	for _, u := range r.MCUtil {
		sum += u
	}
	if sum > 1.5 {
		t.Errorf("worst-case summed controller utilization = %.2f, want ~1 (one controller at a time)", sum)
	}
}

// TestCalibrationStreamTriadBest checks E7: a skewed offset spreads the
// streams over all four controllers and bandwidth reaches the ~13-16 GB/s
// ceiling of Figs. 2 and 4.
func TestCalibrationStreamTriadBest(t *testing.T) {
	r := runTriad(t, 13, 64)
	if r.GBps < 9.5 || r.GBps > 18.0 {
		t.Errorf("best-case triad bandwidth = %.2f GB/s, want ~11-13", r.GBps)
	}
	var sum float64
	for _, u := range r.MCUtil {
		sum += u
	}
	if sum < 2.0 {
		t.Errorf("best-case summed controller utilization = %.2f, want >2 (uniform use of all controllers)", sum)
	}
}

// TestCalibrationHalfOffset checks the paper's Sect. 2.1 explanation: at
// odd multiples of 32 words, bit 8 differs for array B, two controllers are
// addressed, and performance roughly doubles versus the zero-offset case.
func TestCalibrationHalfOffset(t *testing.T) {
	worst := runTriad(t, 0, 64)
	half := runTriad(t, 32, 64)
	ratio := half.GBps / worst.GBps
	if ratio < 1.5 || ratio > 2.8 {
		t.Errorf("offset-32 / offset-0 ratio = %.2f, want ~2 (paper: expected improvement of 100%%)", ratio)
	}
}

// TestCalibrationThreadScaling checks the latency-hiding claim of Sect. 1:
// one thread per core cannot saturate memory, and peak bandwidth does not
// change from 32 to 64 threads.
func TestCalibrationThreadScaling(t *testing.T) {
	r8 := runTriad(t, 13, 8)
	r32 := runTriad(t, 13, 32)
	r64 := runTriad(t, 13, 64)
	if r8.GBps > 0.7*r32.GBps {
		t.Errorf("8-thread bandwidth %.2f vs 32-thread %.2f: expected clear scaling gap", r8.GBps, r32.GBps)
	}
	ratio := r64.GBps / r32.GBps
	if ratio < 0.85 || ratio > 1.35 {
		t.Errorf("64/32 thread ratio = %.2f, want ~1 (saturation)", ratio)
	}
}

// TestCalibrationCopy checks E7's absolute level for STREAM copy: the
// reported number should sit near the paper's ~11-12 GB/s, i.e. ~16-18
// GB/s actual traffic including the read-for-ownership.
func TestCalibrationCopy(t *testing.T) {
	sp := alloc.NewSpace()
	bases := sp.Common(3, calN+13, phys.WordSize)
	k := kernels.StreamCopy(bases[2], bases[0], calN)
	m := chip.New(t2cfg())
	p := k.Program(omp.StaticBlock{}, 64)
	p.WarmLines = t2cfg().L2.SizeBytes / phys.LineSize
	r := m.Run(p)
	if r.GBps < 8.0 || r.GBps > 14.0 {
		t.Errorf("copy reported bandwidth = %.2f GB/s, want ~11", r.GBps)
	}
	if r.ActualGBps < 13.0 || r.ActualGBps > 20.0 {
		t.Errorf("copy actual traffic = %.2f GB/s, want ~16-18 (paper: 'roughly 18GB/s including RFO')", r.ActualGBps)
	}
}

// TestCalibrationLoadOnly checks the conjecture substantiated in Sect. 2.1
// via [4]: kernels dominated by loads avoid the bidirectional-transfer
// overhead and achieve somewhat larger bandwidth than copy/triad.
func TestCalibrationLoadOnly(t *testing.T) {
	sp := alloc.NewSpace()
	bases := sp.OffsetBases(4, calN*phys.WordSize, phys.PageSize, 128)
	k := kernels.LoadSum(bases, calN)
	m := chip.New(t2cfg())
	p := k.Program(omp.StaticBlock{}, 64)
	p.WarmLines = t2cfg().L2.SizeBytes / phys.LineSize
	load := m.Run(p)
	triad := runTriad(t, 13, 64)
	if load.ActualGBps <= triad.ActualGBps {
		t.Errorf("load-only actual %.2f GB/s not above triad actual %.2f GB/s", load.ActualGBps, triad.ActualGBps)
	}
}
