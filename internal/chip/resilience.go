// Resilient-execution support for both engines: context cancellation wired
// into the sim engine's cooperative stop flag, the structured errors a run
// can fail with (cancellation, a wedged shard, an oversubscribed shard
// request), and the per-shard diagnostics the barrier watchdog reports.
//
// Design rule: the fault-free hot path must not change. A run with no
// deadline, no cancelable context and no armed fault plan takes the same
// code path as before this layer existed — armCancel returns nil, the
// engine's stop flag stays nil (two compares per tie group), and the
// sharded engine's watchdog goroutine is never started.
package chip

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
)

// ErrShardOversubscribed is returned (wrapped, with the counts) when an
// explicit worker request exceeds the machine's controller-domain count —
// the unit of decomposition, and therefore the maximum useful parallelism.
var ErrShardOversubscribed = errors.New("chip: shard workers exceed the machine's controller domains")

// ErrEpochWidthTooNarrow is returned (wrapped, with both widths) when an
// explicit ShardOptions.EpochWidth lies below the machine's conservative
// bound: epochs narrower than the minimum cross-shard latency cannot
// preserve the delivery invariant, so the request is a configuration error
// rather than a stricter mode.
var ErrEpochWidthTooNarrow = errors.New("chip: epoch width below the machine's conservative bound")

// ErrSpeculateNoBatch is returned when ShardOptions requests speculation
// together with the classic loop: the burst protocol is built on the
// batched loop's published aggregates (the slot ring generalizes its
// parity slots), so the classic one-merge-per-epoch loop has nothing for
// the validator to read. The combination is a configuration error, not a
// silent fallback.
var ErrSpeculateNoBatch = errors.New("chip: speculation requires the batched epoch loop (incompatible with NoBatch)")

// errStepBudget is the cancellation cause when an injected step budget
// (faults.Plan.CancelStep), rather than the caller's context, halted the
// engine.
var errStepBudget = errors.New("chip: run halted by injected step budget")

// CancelError reports a run aborted by context cancellation (or an
// injected deterministic step budget). The Result returned alongside it
// carries the telemetry accumulated up to the abort point — partial,
// non-deterministic in general, and useful only for accounting; it must
// never be mixed into a trajectory.
type CancelError struct {
	Cause   error         // context.Cause at abort time, or errStepBudget
	Latency time.Duration // observed cancel→halt latency (0 when budget-driven)
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("chip: run cancelled: %v (halt latency %s)", e.Cause, e.Latency)
}

func (e *CancelError) Unwrap() error { return e.Cause }

// ShardDiag is one shard's state snapshot at the moment the watchdog
// tripped, taken from the per-shard progress atomics the shards publish at
// every epoch barrier.
type ShardDiag struct {
	Shard         int
	Epoch         int64 // epochs this shard has completed
	Pending       int   // events on the shard's wheel at its last barrier
	Mailbox       int   // undelivered outgoing messages at its last barrier
	BarrierStalls int64 // epochs the shard arrived with no event to run
}

func (d ShardDiag) String() string {
	return fmt.Sprintf("shard %d: epoch %d, %d pending, %d mailed, %d barrier stalls",
		d.Shard, d.Epoch, d.Pending, d.Mailbox, d.BarrierStalls)
}

// WatchdogError reports a sharded run aborted because no shard completed
// an epoch for a full watchdog deadline — the failure mode that previously
// spun at the epoch barrier forever. Shards carries every shard's last
// published diagnostics so the wedged one is identifiable: it is the one
// whose epoch count stopped.
type WatchdogError struct {
	Deadline time.Duration
	Epochs   int64 // globally merged epochs at the trip
	Shards   []ShardDiag
}

func (e *WatchdogError) Error() string {
	s := fmt.Sprintf("chip: barrier watchdog tripped: no epoch progress for %s (global epoch %d)", e.Deadline, e.Epochs)
	for _, d := range e.Shards {
		s += "\n  " + d.String()
	}
	return s
}

// ShardOptions configures RunShardedCtx.
type ShardOptions struct {
	// Workers is the goroutine count; <= 0 means GOMAXPROCS capped at the
	// domain count. An explicit value above the domain count is an
	// ErrShardOversubscribed error — use RunSharded for the legacy
	// silently-capping behavior.
	Workers int
	// Watchdog aborts the run with a WatchdogError when no shard completes
	// an epoch for this long. 0 disables the watchdog (fault-free runs pay
	// nothing for it).
	Watchdog time.Duration
	// EpochWidth overrides the epoch width. 0 (the default) derives the
	// conservative bound from the machine (Machine.EpochWidth); a smaller
	// value is an ErrEpochWidthTooNarrow error; a larger value runs relaxed
	// wide epochs — cross-shard messages whose nominal arrival falls inside
	// the wider epoch are clamped to its boundary, trading a bounded timing
	// drift for fewer synchronization points. Relaxed results remain
	// deterministic and worker-invariant but differ from conservative ones;
	// they must never be mixed into byte-identity trajectories.
	EpochWidth sim.Time
	// Speculate enables optimistic speculative epochs (speculate.go):
	// shards checkpoint at boundaries whose epoch sent no cross-shard
	// mail, run bursts of epochs with no exchange, validate at a single
	// rendezvous and roll back on conflict. Simulation output is
	// byte-identical with speculation on or off, at any worker count —
	// only wall-clock time and loop telemetry (epoch counts, barrier
	// stalls, the Spec* counters) change — so speculation is an execution
	// budget, not part of any result's identity. Requires the batched
	// loop; combining it with NoBatch is an ErrSpeculateNoBatch error.
	Speculate bool
	// NoBatch selects the classic loop: a full rendezvous (two spin
	// barriers and a serial merge) per epoch instead of the decentralized
	// batched exchange. Simulation output is byte-identical either way —
	// the classic loop is retained as the reference the batched loop is
	// differentially tested against, and as a fallback.
	NoBatch bool
}

// cancelWatch couples a context (and, under fault injection, a
// deterministic step budget) to one engine's cooperative stop flag. It
// exists only for armed runs; armCancel returns nil otherwise and every
// method is nil-safe.
type cancelWatch struct {
	stop    atomic.Bool
	firedAt atomic.Int64 // wall clock (unixnano) when cancellation was observed
	release chan struct{}
	budget  uint64
}

// armCancel wires ctx into eng. It returns nil — and leaves the engine
// untouched — when the context can never be cancelled and no fault budget
// is armed.
func armCancel(ctx context.Context, eng *sim.Engine) *cancelWatch {
	budget := faults.CancelStep()
	if ctx.Done() == nil && budget == 0 {
		return nil
	}
	cw := &cancelWatch{budget: budget}
	if budget != 0 {
		eng.StopAt(budget)
	}
	if ctx.Done() != nil {
		eng.SetStop(&cw.stop)
		if ctx.Err() != nil {
			// Already cancelled: set the flag synchronously so even a run
			// shorter than the watcher goroutine's first scheduling slice
			// observes it.
			cw.firedAt.Store(time.Now().UnixNano())
			cw.stop.Store(true)
			return cw
		}
		cw.release = make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				cw.firedAt.Store(time.Now().UnixNano())
				cw.stop.Store(true)
			case <-cw.release:
			}
		}()
	}
	return cw
}

// done tears the watcher goroutine down; it must be called exactly once
// after the run loop returns.
func (cw *cancelWatch) done() {
	if cw != nil && cw.release != nil {
		close(cw.release)
	}
}

// abortError builds the CancelError for an interrupted run: the context's
// cause and the observed cancel→halt latency, or the step-budget sentinel
// when the injected budget fired first.
func (cw *cancelWatch) abortError(ctx context.Context) *CancelError {
	var lat time.Duration
	if at := cw.firedAt.Load(); at != 0 {
		lat = time.Since(time.Unix(0, at))
	}
	cause := context.Cause(ctx)
	if cause == nil {
		cause = errStepBudget
		faults.NoteStepCancel()
	}
	return &CancelError{Cause: cause, Latency: lat}
}
