package bench

import (
	"fmt"

	"repro/internal/stats"
)

// CheckFig2 verifies the qualitative claims of Fig. 2 on regenerated data:
// (1) bandwidth is periodic in the offset with period 64 words for the
// high thread counts; (2) the zero-offset value sits far below the best;
// (3) offsets at odd multiples of 32 recover part of the loss; (4) the
// copy ceiling is below the triad ceiling ("significantly lower STREAM
// copy performance").
func CheckFig2(r Fig2Result, offsetStep int64) error {
	if len(r.Triad) == 0 {
		return fmt.Errorf("fig2: no triad series")
	}
	hi := r.Triad[len(r.Triad)-1] // highest thread count
	if hi.Len() < 3 {
		return fmt.Errorf("fig2: series %q too short", hi.Name)
	}
	sum := stats.Summarize(hi.Y)
	if per := int(64 / offsetStep); per >= 1 && hi.Len() > 2*per {
		if p := stats.Periodicity(hi.Y, per); p < 0.5 {
			return fmt.Errorf("fig2: periodicity-64 score %.2f < 0.5 for %q", p, hi.Name)
		}
	}
	if hi.Y[0] > 0.55*sum.Max {
		return fmt.Errorf("fig2: zero-offset bandwidth %.2f not far below max %.2f", hi.Y[0], sum.Max)
	}
	// Odd multiple of 32: improvement over offset zero.
	for i, x := range hi.X {
		if int64(x) == 32 {
			ratio := hi.Y[i] / hi.Y[0]
			if ratio < 1.25 || ratio > 3.0 {
				return fmt.Errorf("fig2: offset-32/offset-0 ratio %.2f outside [1.25, 3] (paper ~2x expected)", ratio)
			}
		}
	}
	if r.Copy.Len() > 0 {
		cmax := stats.Summarize(r.Copy.Y).Max
		if cmax >= sum.Max {
			return fmt.Errorf("fig2: copy ceiling %.2f not below triad ceiling %.2f", cmax, sum.Max)
		}
	}
	return nil
}

// CheckFig4 verifies Fig. 4: the plain placement is erratic between hard
// limits, page alignment is the uniform worst case, and the 128-byte
// offset variant is flat at the top.
func CheckFig4(series []stats.Series) error {
	byName := map[string]stats.Summary{}
	byVar := map[string]float64{}
	for _, s := range series {
		byName[s.Name] = stats.Summarize(s.Y)
		byVar[s.Name] = stats.RelVariation(s.Y)
	}
	plain, ok1 := byName["plain"]
	worst, ok2 := byName["align8k"]
	best, ok3 := byName["align8k+128"]
	if !ok1 || !ok2 || !ok3 {
		return fmt.Errorf("fig4: missing series")
	}
	if worst.Mean > 0.6*best.Mean {
		return fmt.Errorf("fig4: page-aligned mean %.2f not far below offset-128 mean %.2f", worst.Mean, best.Mean)
	}
	if best.Min < plain.Min {
		return fmt.Errorf("fig4: offset-128 min %.2f below plain min %.2f — optimum should remove breakdowns", best.Min, plain.Min)
	}
	if byVar["align8k+128"] > 0.25 {
		return fmt.Errorf("fig4: offset-128 variation %.2f not flat", byVar["align8k+128"])
	}
	if byVar["plain"] < 2*byVar["align8k+128"] {
		return fmt.Errorf("fig4: plain variation %.2f not clearly more erratic than optimum %.2f",
			byVar["plain"], byVar["align8k+128"])
	}
	return nil
}

// CheckFig5 verifies Fig. 5: the segmented implementation tracks the plain
// one within a few percent at large N ("the performance overhead incurred
// by segmented iterators is negligible even for tight loops").
func CheckFig5(series []stats.Series) error {
	if len(series) != 2 {
		return fmt.Errorf("fig5: want 2 series, got %d", len(series))
	}
	seg, plain := series[0], series[1]
	n := seg.Len()
	if n == 0 || plain.Len() != n {
		return fmt.Errorf("fig5: mismatched series")
	}
	// Compare at the largest N.
	s, p := seg.Y[n-1], plain.Y[n-1]
	if p <= 0 {
		return fmt.Errorf("fig5: zero plain bandwidth")
	}
	if d := (p - s) / p; d > 0.08 {
		return fmt.Errorf("fig5: segmented overhead %.1f%% at large N exceeds 8%%", d*100)
	}
	return nil
}

// CheckFig6 verifies Fig. 6: optimized placement beats plain by a wide
// margin at 64 threads, performance scales with thread count, and the
// optimized curves are much smoother than the plain one.
func CheckFig6(series []stats.Series) error {
	find := func(name string) (stats.Series, bool) {
		for _, s := range series {
			if s.Name == name {
				return s, true
			}
		}
		return stats.Series{}, false
	}
	plain, ok := find("64T plain")
	if !ok {
		return fmt.Errorf("fig6: missing plain series")
	}
	opt, ok := find("64T")
	if !ok {
		return fmt.Errorf("fig6: missing 64T series")
	}
	pm := stats.Summarize(plain.Y).Mean
	om := stats.Summarize(opt.Y).Mean
	if om < 1.3*pm {
		return fmt.Errorf("fig6: optimized mean %.0f MLUPs not well above plain %.0f", om, pm)
	}
	if t8, ok := find("8T"); ok {
		if m8 := stats.Summarize(t8.Y).Mean; m8 > 0.75*om {
			return fmt.Errorf("fig6: 8T mean %.0f too close to 64T mean %.0f — no scaling", m8, om)
		}
	}
	return nil
}

// CheckFig7 verifies the Fig. 7 claims the simulator reproduces (see
// EXPERIMENTS.md for the one it does not — the across-the-board IJKv
// deficit, which stems from controller-internal DRAM row scheduling
// outside this model):
//
//  1. cache thrashing is ruinous when the padded edge N+2 is a multiple
//     of 64 — both layouts dip hard at such sizes;
//  2. coalescing the outer loop pair removes the modulo sawtooth: at
//     domain sizes where N is just above a multiple of the thread count,
//     the fused variant clearly beats the unfused one;
//  3. 32 threads trail 64 threads for this low-balance kernel.
func CheckFig7(series []stats.Series) error {
	find := func(name string) (stats.Series, bool) {
		for _, s := range series {
			if s.Name == name {
				return s, true
			}
		}
		return stats.Series{}, false
	}
	ijkv, ok1 := find("64T IJKv")
	ivjk, ok2 := find("64T IvJK")
	fused, ok3 := find("64T IvJK fused")
	t32, ok4 := find("32T IvJK fused")
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return fmt.Errorf("fig7: missing series")
	}

	// Thrash dips at N+2 = 0 mod 64.
	med := stats.Summarize(ijkv.Y).Median
	foundThrash := false
	for i, x := range ijkv.X {
		if (int64(x)+2)%64 == 0 {
			foundThrash = true
			if ijkv.Y[i] > 0.6*med {
				return fmt.Errorf("fig7: no thrash dip at N=%d for IJKv (%.1f vs median %.1f)", int64(x), ijkv.Y[i], med)
			}
		}
	}
	if !foundThrash {
		return fmt.Errorf("fig7: sweep contains no thrash size (N+2 multiple of 64)")
	}

	// Modulo sawtooth: where N mod 64 is small but nonzero, fusion wins.
	for i, x := range ivjk.X {
		n := int64(x)
		if n > 64 && n%64 != 0 && n%64 <= 16 {
			if fused.Y[i] < 1.05*ivjk.Y[i] {
				return fmt.Errorf("fig7: fusion does not remove the modulo dip at N=%d (%.1f vs %.1f)",
					n, fused.Y[i], ivjk.Y[i])
			}
		}
	}

	if stats.Summarize(t32.Y).Mean >= stats.Summarize(fused.Y).Mean {
		return fmt.Errorf("fig7: 32T not below 64T")
	}
	return nil
}
