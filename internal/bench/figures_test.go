package bench

import (
	"testing"

	"repro/internal/exp"
)

// countBy tallies expanded points by a derived key.
func countBy(pts []exp.Point, key func(exp.Point) string) map[string]int {
	m := map[string]int{}
	for _, p := range pts {
		m[key(p)]++
	}
	return m
}

// TestFig2CopyPanelAlways64T pins the fixed-thread reference panels:
// Fig. 2's copy sweep and Fig. 6's plain sweep always run at 64 threads,
// even when 64 is not among the configured thread counts — and the triad
// and optimized sweeps never gain a thread count the caller did not ask
// for.
func TestFig2CopyPanelAlways64T(t *testing.T) {
	o := Small()
	o.Fig2Threads = []int{8, 16}
	nOff := int(o.OffsetMax/o.OffsetStep) + 1
	got := countBy(o.Fig2Exp().Points(), func(p exp.Point) string {
		return p.Str("kernel") + "/" + string(rune('0'+p.Int("threads")/8))
	})
	if got["copy/8"] != nOff { // threads 64 -> key '8'
		t.Errorf("copy/64T has %d points, want %d", got["copy/8"], nOff)
	}
	for k, n := range got {
		switch k {
		case "triad/1", "triad/2", "copy/8":
			if n != nOff {
				t.Errorf("%s has %d points, want %d", k, n, nOff)
			}
		default:
			t.Errorf("unexpected point group %s (%d points)", k, n)
		}
	}

	o.JacobiThreads = []int{8, 16}
	got = countBy(o.Fig6Exp().Points(), func(p exp.Point) string {
		return p.Str("placement") + "/" + string(rune('0'+p.Int("threads")/8))
	})
	nN := len(o.JacobiNs)
	if got["plain/8"] != nN {
		t.Errorf("plain/64T has %d points, want %d", got["plain/8"], nN)
	}
	if got["opt/8"] != 0 {
		t.Errorf("opt sweep gained 64T (%d points) without being configured", got["opt/8"])
	}
}
