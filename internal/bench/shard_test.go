package bench

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/machine"
)

// shardTestOptions returns figure options small enough that every
// registered profile can run fig2 + fig4 at three shard-worker counts
// under the race detector in the -short tier, while still driving every
// structural mechanism (offsets spanning the interleave period, 64-thread
// teams, warm L2, NACK convoys).
func shardTestOptions(p machine.Profile) Options {
	o := Small().WithProfile(p)
	o.StreamN = 1 << 11
	o.OffsetMax = 64
	o.OffsetStep = 32
	o.Fig2Threads = []int{16}
	o.StreamSweeps = 1
	o.TriadN = 1 << 11
	o.TriadLen = 8
	o.TriadStep = 4
	return o
}

// TestShardDeterminismAcrossProfiles is the engine-level byte-identity
// gate behind the sharded engine: fig2 and fig4 at shards ∈ {1, 2, 4} on
// every registered machine profile must produce identical Result structs
// and stats maps — compared here through the canonical BENCH JSON, which
// serializes every point's series, coordinates and metric maps. It runs
// in the -short tier and under -race (the CI race job), so the identity
// is pinned against both logic and memory-ordering regressions.
func TestShardDeterminismAcrossProfiles(t *testing.T) {
	shardCounts := []int{2, 4}
	if testing.Short() {
		// The -race -short CI leg runs every profile too; one parallel
		// worker count against the shards=1 reference keeps it affordable,
		// and the full tier restores the {1, 2, 4} matrix.
		shardCounts = []int{2}
	}
	for _, prof := range machine.Profiles() {
		t.Run(prof.Name, func(t *testing.T) {
			for _, fig := range []string{"fig2", "fig4"} {
				base := shardTestOptions(prof)
				base.Shards = 1
				ref := mustJSON(t, base, fig)
				for _, shards := range shardCounts {
					o := shardTestOptions(prof)
					o.Shards = shards
					got := mustJSON(t, o, fig)
					if string(got) != string(ref) {
						t.Errorf("%s: shards=%d trajectory differs from shards=1 (%d vs %d bytes)", fig, shards, len(got), len(ref))
					}
				}
			}
		})
	}
}

// TestShardedBatchingJSONIdentity pins the tentpole invariant at the
// trajectory level: the batched epoch loop (the default) and the classic
// rendezvous-per-epoch loop must produce byte-identical BENCH JSON for
// fig2, fig4 and fig6 at every shard-worker count. The chip-level equivalence
// test covers Result structs on synthetic programs; this one covers the
// real figure sweeps end to end, including the stats maps that feed the
// committed trajectories.
func TestShardedBatchingJSONIdentity(t *testing.T) {
	prof, err := machine.Get(machine.DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	shardCounts := []int{1, 2, 4}
	if testing.Short() {
		shardCounts = []int{2} // the -race -short CI leg; full tier restores {1, 2, 4}
	}
	figOptions := func() Options {
		o := shardTestOptions(prof)
		o.JacobiNs = []int64{128}
		o.JacobiThreads = []int{8}
		return o
	}
	for _, fig := range []string{"fig2", "fig4", "fig6"} {
		for _, shards := range shardCounts {
			o := figOptions()
			o.Shards = shards
			batched := mustJSON(t, o, fig)
			o.NoBatch = true
			classic := mustJSON(t, o, fig)
			if string(batched) != string(classic) {
				t.Errorf("%s shards=%d: batched trajectory differs from classic loop (%d vs %d bytes)",
					fig, shards, len(batched), len(classic))
			}
		}
	}
}

// TestSpeculativeJSONIdentity pins the speculation contract at the
// trajectory level: speculative execution is an execution budget only, so
// fig2, fig4 and fig6 BENCH JSON must be byte-identical with -speculate on
// or off, at every shard-worker count, across structurally distinct
// machine profiles (1, 4 and 8 controller domains, XOR interleave). Runs
// in the -short tier and under -race like the other identity gates.
func TestSpeculativeJSONIdentity(t *testing.T) {
	shardCounts := []int{1, 2, 4}
	if testing.Short() {
		shardCounts = []int{2} // the -race -short CI leg; full tier restores {1, 2, 4}
	}
	profiles := []string{"t2", "t2-1mc", "mc8", "xor"}
	for _, name := range profiles {
		prof, err := machine.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			figs := []string{"fig2", "fig4"}
			if name == "t2" {
				figs = append(figs, "fig6")
			}
			for _, fig := range figs {
				for _, shards := range shardCounts {
					o := shardTestOptions(prof)
					o.JacobiNs = []int64{128}
					o.JacobiThreads = []int{8}
					o.Shards = shards
					conservative := mustJSON(t, o, fig)
					o.Speculate = true
					speculative := mustJSON(t, o, fig)
					if string(speculative) != string(conservative) {
						t.Errorf("%s shards=%d: speculative trajectory differs from conservative (%d vs %d bytes)",
							fig, shards, len(speculative), len(conservative))
					}
				}
			}
		})
	}
}

// mustJSON runs one figure experiment on a two-job pool and returns its
// canonical JSON, asserting that the sharded engine actually engaged.
func mustJSON(t *testing.T, o Options, fig string) []byte {
	t.Helper()
	var e = o.Fig2Exp()
	switch fig {
	case "fig4":
		e = o.Fig4Exp()
	case "fig6":
		e = o.Fig6Exp()
	}
	out, err := exp.Runner{Jobs: 2}.Run(e)
	if err != nil {
		t.Fatalf("%s: %v", fig, err)
	}
	if out.ShardTotals().Shards == 0 {
		t.Fatalf("%s: no point ran on the sharded engine (machine %q)", fig, o.Machine)
	}
	b, err := out.JSON()
	if err != nil {
		t.Fatalf("%s: %v", fig, err)
	}
	return b
}
