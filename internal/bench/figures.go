package bench

import (
	"repro/internal/exp"
	"repro/internal/stats"
)

// Figure couples one declarative figure experiment with its presentation
// metadata and the shape check encoding the paper's qualitative claims for
// that figure. cmd/figures iterates this registry; adding a figure (or a
// whole new scenario) is one more entry here plus its experiment
// definition — no new sweep loop.
type Figure struct {
	Name   string // short id: "fig2" ... "fig7"
	Title  string
	XLabel string
	Exp    exp.Experiment
	Check  func([]stats.Series) error
}

// Figures returns the full figure registry at the given scale.
func Figures(o Options) []Figure {
	return []Figure{
		{
			Name:   "fig2",
			Title:  "Fig. 2 (STREAM vs offset)",
			XLabel: "offset_words",
			Exp:    o.Fig2Exp(),
			Check: func(s []stats.Series) error {
				return CheckFig2(Fig2FromSeries(s), o.OffsetStep)
			},
		},
		{
			Name:   "fig4",
			Title:  "Fig. 4 (vector triad vs N)",
			XLabel: "N",
			Exp:    o.Fig4Exp(),
			Check:  CheckFig4,
		},
		{
			Name:   "fig5",
			Title:  "Fig. 5 (segmented iterator overhead)",
			XLabel: "N",
			Exp:    o.Fig5Exp(64),
			Check:  CheckFig5,
		},
		{
			Name:   "fig6",
			Title:  "Fig. 6 (2D Jacobi vs N)",
			XLabel: "N",
			Exp:    o.Fig6Exp(),
			Check:  CheckFig6,
		},
		{
			Name:   "fig7",
			Title:  "Fig. 7 (LBM vs N)",
			XLabel: "N",
			Exp:    o.Fig7Exp(),
			Check:  CheckFig7,
		},
		{
			Name:   "scaling",
			Title:  "Controller scaling x interleave granularity (beyond the paper)",
			XLabel: "machine_index",
			Exp:    o.ScalingExp(),
			Check:  CheckScaling,
		},
	}
}
