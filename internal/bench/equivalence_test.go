package bench

import (
	"reflect"
	"testing"

	"repro/internal/alloc"
	"repro/internal/chip"
	"repro/internal/exp"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/omp"
	"repro/internal/phys"
)

// stripFFExp zeroes the fast-forward telemetry — the only fields of a
// point result allowed to differ between full simulation and fast-forward.
func stripFFExp(r exp.Result) exp.Result {
	r.FFItems, r.FFCycles = 0, 0
	r.FFJumps, r.FFSkippedEpochs = 0, 0
	return r
}

// TestFigureFastForwardEquivalence proves, for at least one point of every
// registered figure, that evaluating the point with steady-state
// fast-forward enabled produces exactly the result of full event-by-event
// simulation: same headline value, same metrics (bandwidth, traffic,
// balance), same cycle and access telemetry.
func TestFigureFastForwardEquivalence(t *testing.T) {
	o := tiny()
	// Long enough streams for the detector to lock on (detection plus two
	// validation periods) on the low-contention fig2 points.
	o.StreamN = 1 << 15
	anyForwarded := false
	for _, f := range Figures(o) {
		e := f.Exp
		pts := e.Points()
		if len(pts) == 0 {
			t.Fatalf("%s: no points", f.Name)
		}
		// First, second, middle and last point: cheap but covers both ends
		// of each figure's parameter grid plus one interior cell (on fig2
		// that is a non-convoy point where fast-forward engages). Indices
		// are deduplicated and clamped so single-point grids stay valid.
		tested := map[int]bool{}
		for _, i := range []int{0, 1, len(pts) / 2, len(pts) - 1} {
			if i >= len(pts) || tested[i] {
				continue
			}
			tested[i] = true
			p := pts[i]
			cfgOn := e.Cfg
			cfgOff := e.Cfg
			cfgOff.DisableFastForward = true
			on, err := e.Run(cfgOn, p, &exp.Scratch{})
			if err != nil {
				t.Fatalf("%s point %d (ff on): %v", f.Name, i, err)
			}
			off, err := e.Run(cfgOff, p, &exp.Scratch{})
			if err != nil {
				t.Fatalf("%s point %d (ff off): %v", f.Name, i, err)
			}
			if off.FFItems != 0 {
				t.Fatalf("%s point %d: disabled run fast-forwarded %d items", f.Name, i, off.FFItems)
			}
			if on.FFItems > 0 {
				anyForwarded = true
			}
			if !reflect.DeepEqual(stripFFExp(on), stripFFExp(off)) {
				t.Errorf("%s point %d (%v): fast-forward diverged:\n ff:   %+v\n full: %+v",
					f.Name, i, p.Params, on, off)
			}
		}
	}
	if !anyForwarded {
		t.Error("no tested figure point engaged fast-forward; the equivalence is vacuous")
	}
}

// TestFig7FastForwardEquivalence is the dedicated stencil leg: every point
// of the Fig. 7 LBM sweep (all four layout/fusion variants) evaluated both
// with the fast-forward detector armed and with it disabled, at a scale
// small enough for the race-detector CI job. On the LBM access pattern the
// detector observes, probes, and declines to commit (the writeback stream
// is quasi-periodic — see DESIGN.md), so this pins the expensive half of
// the contract: an armed detector that never jumps must still be
// invisible, byte for byte, in every result field.
func TestFig7FastForwardEquivalence(t *testing.T) {
	o := tiny()
	o.LBMNs = []int64{16, 24}
	e := o.Fig7Exp()
	for i, p := range e.Points() {
		cfgOn := e.Cfg
		cfgOff := e.Cfg
		cfgOff.DisableFastForward = true
		on, err := e.Run(cfgOn, p, &exp.Scratch{})
		if err != nil {
			t.Fatalf("fig7 point %d (ff on): %v", i, err)
		}
		off, err := e.Run(cfgOff, p, &exp.Scratch{})
		if err != nil {
			t.Fatalf("fig7 point %d (ff off): %v", i, err)
		}
		if off.FFItems != 0 {
			t.Fatalf("fig7 point %d: disabled run fast-forwarded %d items", i, off.FFItems)
		}
		if !reflect.DeepEqual(stripFFExp(on), stripFFExp(off)) {
			t.Errorf("fig7 point %d (%v): fast-forward diverged:\n ff:   %+v\n full: %+v",
				i, p.Params, on, off)
		}
	}
}

// TestProfileFastForwardEquivalence proves full chip.Result equality —
// cycles, retire counts, stall breakdowns, L2 stats, per-controller
// traffic and utilization — between fast-forwarded and full simulation on
// every machine profile in the registry, using the scaling study's
// 8-stream kernel plus a 16-thread triad (the case where fast-forward
// reliably engages on the t2).
func TestProfileFastForwardEquivalence(t *testing.T) {
	stripFF := func(r chip.Result) chip.Result {
		r.FFItems, r.FFCycles, r.FFPeriod = 0, 0, 0
		r.FFJumps, r.FFSkippedEpochs = 0, 0
		return r
	}
	anyForwarded := false
	for _, prof := range machine.Profiles() {
		for _, tc := range []struct {
			name    string
			threads int
			streams int
		}{{"loadsum64", 64, 8}, {"triad16", 16, 3}} {
			run := func(disable bool) chip.Result {
				cfg := prof.Config
				cfg.DisableFastForward = disable
				const n = 1 << 15
				sp := alloc.NewSpace()
				var k kernels.Stream
				if tc.streams == 8 {
					bases := sp.OffsetBases(8, n*phys.WordSize, phys.PageSize, 0)
					k = kernels.LoadSum(bases, n)
				} else {
					bases := sp.Common(3, n+8, phys.WordSize)
					k = kernels.StreamTriad(bases[0], bases[1], bases[2], n)
				}
				p := k.Program(omp.StaticBlock{}, tc.threads)
				p.WarmLines = cfg.L2.SizeBytes / phys.LineSize
				return chip.New(cfg).Run(p)
			}
			on := run(false)
			off := run(true)
			if on.FFItems > 0 {
				anyForwarded = true
			}
			if !reflect.DeepEqual(stripFF(on), stripFF(off)) {
				t.Errorf("%s/%s: fast-forward diverged:\n ff:   %+v\n full: %+v", prof.Name, tc.name, on, off)
			}
		}
	}
	if !anyForwarded {
		t.Error("fast-forward never engaged on any profile; the equivalence is vacuous")
	}
}
