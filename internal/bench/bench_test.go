package bench

import (
	"os"
	"testing"

	"repro/internal/stats"
)

// TestFig2Shape regenerates Fig. 2 at test scale and validates the paper's
// qualitative claims for it.
func TestFig2Shape(t *testing.T) {
	o := Small()
	r := Fig2(o)
	for _, s := range r.Triad {
		t.Logf("%s: %v", s.Name, s.Y)
	}
	t.Logf("%s: %v", r.Copy.Name, r.Copy.Y)
	if err := CheckFig2(r, o.OffsetStep); err != nil {
		t.Error(err)
	}
}

// TestFig4Shape regenerates Fig. 4 at test scale and validates it.
func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 4 sweep is slow; run without -short for the full shape check")
	}
	o := Small()
	series := Fig4(o)
	for _, s := range series {
		sm := stats.Summarize(s.Y)
		t.Logf("%-12s min %.2f max %.2f mean %.2f", s.Name, sm.Min, sm.Max, sm.Mean)
	}
	if err := CheckFig4(series); err != nil {
		t.Error(err)
	}
}

// TestFig5Shape regenerates Fig. 5 at test scale and validates it.
func TestFig5Shape(t *testing.T) {
	o := Small()
	series := Fig5(o, 64)
	for _, s := range series {
		t.Logf("%s: %v", s.Name, s.Y)
	}
	if err := CheckFig5(series); err != nil {
		t.Error(err)
	}
}

// TestFig6Shape regenerates Fig. 6 at test scale and validates it.
func TestFig6Shape(t *testing.T) {
	o := Small()
	series := Fig6(o)
	for _, s := range series {
		t.Logf("%s: %v", s.Name, s.Y)
	}
	if err := CheckFig6(series); err != nil {
		t.Error(err)
	}
}

// TestFig7Shape regenerates Fig. 7 at test scale and validates it.
func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("LBM shape test is slow; run without -short for the full shape check")
	}
	o := Small()
	series := Fig7(o)
	for _, s := range series {
		t.Logf("%s: %v", s.Name, s.Y)
	}
	if err := CheckFig7(series); err != nil {
		t.Error(err)
	}
	stats.Plot(os.Stderr, "fig7 (test scale)", series, 60, 12)
}
