// Package bench contains the experiment harnesses that regenerate every
// figure of the paper's evaluation (Figs. 2, 4, 5, 6, 7) on the simulated
// T2, plus shape checks that encode the paper's qualitative claims — who
// wins, by what factor, with which periodicity — as testable predicates.
//
// Every figure is a declarative exp.Experiment: a parameter grid plus a
// closure evaluating one grid point on one freshly built machine. The
// exp worker pool fans the points out across GOMAXPROCS goroutines and
// reassembles them in deterministic grid order, so regenerating a figure
// with -jobs N is bit-identical to -jobs 1. See DESIGN.md Sect. 5 for the
// scale reductions and EXPERIMENTS.md for regenerated results.
package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/alloc"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/jacobi"
	"repro/internal/kernels"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/segarray"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options scales the experiments. Paper-scale array lengths are structure-
// preserving reductions of the originals (see DESIGN.md Sect. 5); Small()
// shrinks them further for unit tests.
type Options struct {
	Cfg chip.Config
	// Machine is the profile name stamped into BENCH trajectories. Empty
	// means the default t2 machine (and keeps historical BENCH_*.json
	// byte-identical); WithProfile sets it for every other profile.
	Machine string
	// Shards selects the chip's controller-domain sharded engine for every
	// run of the sweep: 0 (the default) keeps the sequential engine and
	// every historical trajectory byte-identical; a positive value runs
	// each point on the sharded engine with at most that many worker
	// goroutines. Sharded results are invariant under the worker count
	// (the engine's core contract, pinned by the shard determinism tests),
	// so Shards=1 and Shards=N trajectories are byte-identical too; CLIs
	// resolve the actual budget through exp.ShardBudget so sweep jobs and
	// run workers share the cores. Shards is a budget, not a demand: values
	// above the profile's controller-domain count are capped per machine.
	Shards int
	// Watchdog arms the sharded engine's epoch-barrier watchdog for every
	// sharded run of the sweep: a run making no epoch progress for this
	// long fails with a chip.WatchdogError instead of spinning forever. 0
	// (the default) disables it, keeping the fault-free hot path — and
	// every trajectory — untouched.
	Watchdog time.Duration
	// EpochWidth overrides the sharded engine's epoch width
	// (chip.ShardOptions.EpochWidth): 0 derives the conservative bound; a
	// wider value runs relaxed epochs, whose results are deterministic but
	// differ from conservative ones and must never be mixed into
	// byte-identity trajectories (the CLIs gate this behind -relaxed-ok).
	EpochWidth int64
	// NoBatch selects the sharded engine's classic rendezvous-per-epoch
	// loop instead of the default batched one. Simulation output is
	// byte-identical either way; the switch exists for differential tests
	// and measurements.
	NoBatch bool
	// Speculate turns on the sharded engine's optimistic speculative
	// bursts (chip.ShardOptions.Speculate). Pure execution budget:
	// simulation output — and therefore every trajectory — is
	// byte-identical with it on or off; only wall-clock and the spec-*
	// telemetry change. Requires the batched loop and Shards > 0.
	Speculate bool

	// Fig. 2
	StreamN      int64
	OffsetMax    int64
	OffsetStep   int64
	Fig2Threads  []int
	StreamSweeps int

	// Fig. 4
	TriadN    int64 // window base
	TriadLen  int64 // window length in elements
	TriadStep int64

	// Fig. 5
	Fig5Ns []int64

	// Fig. 6
	JacobiNs      []int64
	JacobiThreads []int
	JacobiSweeps  int

	// Fig. 7
	LBMNs     []int64
	LBMSweeps int

	// Controller-scaling study (BENCH_scaling)
	ScalingN int64
}

// Default returns the full-scale reproduction settings. Sizes are
// structure-preserving reductions of the paper's (STREAM N=2^18 instead of
// 2^25, offset step 2 instead of 1): every congruence mod 512 bytes, every
// cache-pressure ratio and every chunk-geometry property is identical, and
// a complete regeneration of all five figures takes minutes instead of
// hours.
func Default() Options {
	return Options{
		Cfg:          machine.MustGet(machine.DefaultName).Config,
		StreamN:      1 << 18,
		OffsetMax:    256,
		OffsetStep:   2,
		Fig2Threads:  []int{8, 16, 32, 64},
		StreamSweeps: 1,

		TriadN:    1 << 19,
		TriadLen:  128,
		TriadStep: 2,

		Fig5Ns: []int64{128, 512, 2048, 8192, 1 << 15, 1 << 17, 1 << 19, 1 << 21},

		JacobiNs:      []int64{200, 400, 600, 800, 1000, 1200, 1216, 1280, 1600, 2000},
		JacobiThreads: []int{8, 16, 32, 64},
		JacobiSweeps:  1,

		LBMNs:     []int64{64, 72, 96, 126, 128, 160, 192},
		LBMSweeps: 1,

		ScalingN: 1 << 17,
	}
}

// WithProfile retargets the experiments at a machine profile: the chip
// configuration comes from the profile, and (for non-default profiles)
// the profile name is stamped into every BENCH trajectory. The default t2
// profile leaves Machine empty so historical trajectories stay
// byte-identical.
func (o Options) WithProfile(p machine.Profile) Options {
	o.Cfg = p.Config
	o.Machine = machine.Tag(p.Name)
	return o
}

// spec derives the analyzer's machine description from the configured
// chip, so planned offsets, row shifts and regime predictions follow the
// selected profile instead of a hardwired T2.
func (o Options) spec() core.MachineSpec {
	return core.MachineSpec{Mapping: o.Cfg.Mapping, LineSize: o.Cfg.L2.LineSize}
}

// Small returns unit-test-scale settings that keep every structural
// property (congruences mod 512 B, cache pressure ratios).
func Small() Options {
	o := Default()
	o.StreamN = 1 << 15
	o.OffsetStep = 8
	o.Fig2Threads = []int{16, 64}
	o.TriadN = 1 << 16
	o.TriadLen = 128
	o.TriadStep = 4
	o.Fig5Ns = []int64{128, 2048, 1 << 15, 1 << 17}
	o.JacobiNs = []int64{128, 192, 256, 320}
	o.JacobiThreads = []int{8, 64}
	o.JacobiSweeps = 1
	o.LBMNs = []int64{48, 62, 64, 72}
	o.ScalingN = 1 << 15
	return o
}

func (o Options) warmLines() int64 { return o.Cfg.L2.SizeBytes / phys.LineSize }

// machineKey caches one reusable chip.Machine per configuration in a
// worker's scratch; chip.Config is comparable, so the configuration itself
// is the key.
type machineKey struct{ cfg chip.Config }

// machineFor returns the worker's reusable machine for cfg, building it on
// the worker's first point. Machines reset completely between runs, so the
// cached machine produces byte-identical results to a fresh one (pinned by
// the chip reuse tests and the jobs=1-vs-N determinism regression).
func machineFor(sc *exp.Scratch, cfg chip.Config) *chip.Machine {
	return sc.Get(machineKey{cfg}, func() any { return chip.New(cfg) }).(*chip.Machine)
}

// runProg runs one program on the worker's cached machine for the point's
// configuration; every experiment closure funnels through it, and the
// options' Shards setting decides which engine executes it. The sweep's
// context (exp.Scratch.Context) rides along so a cancelled or timed-out
// sweep aborts each in-flight run cooperatively; with a background context
// and no watchdog this is exactly the legacy fault-free path.
func (o Options) runProg(cfg chip.Config, sc *exp.Scratch, p *trace.Program, warm int64) (chip.Result, error) {
	p.WarmLines = warm
	m := machineFor(sc, cfg)
	if o.Shards != 0 {
		workers := o.Shards
		if d := cfg.Mapping.Controllers(); workers > d {
			workers = d // Shards is a core budget; each machine caps at its domains
		}
		return m.RunShardedCtx(sc.Context(), p, chip.ShardOptions{
			Workers:    workers,
			Watchdog:   o.Watchdog,
			EpochWidth: o.EpochWidth,
			NoBatch:    o.NoBatch,
			Speculate:  o.Speculate,
		})
	}
	return m.RunCtx(sc.Context(), p)
}

// bwMetrics exposes the secondary metrics every bandwidth trajectory
// carries alongside its headline number.
func bwMetrics(r chip.Result) map[string]float64 {
	return map[string]float64{
		"gbps":        r.GBps,
		"actual_gbps": r.ActualGBps,
		"mups":        r.MUPs,
		"balance":     r.Balance(),
	}
}

// measured attaches the run's aggregate simulation telemetry (cycles, L2
// accesses, fast-forward coverage) to the point result; the telemetry
// never reaches the JSON trajectories, only the benchmark throughput
// metrics.
func measured(res exp.Result, r chip.Result) exp.Result {
	res.Cycles = r.Cycles
	res.Accesses = r.L2.Hits + r.L2.Misses
	res.FFItems = r.FFItems
	res.FFCycles = r.FFCycles
	res.FFJumps = r.FFJumps
	res.FFSkippedEpochs = r.FFSkippedEpochs
	res.Shards = r.Shards
	res.EpochWidth = r.EpochWidth
	res.Epochs = r.Epochs
	res.BatchedEpochs = r.BatchedEpochs
	res.BarrierStalls = r.BarrierStalls
	res.BusyShardRounds = r.BusyShardRounds
	res.SpecEpochs = r.SpecEpochs
	res.SpecCommits = r.SpecCommits
	res.SpecRollbacks = r.SpecRollbacks
	return res
}

// ---- Fig. 2: STREAM vs COMMON-block offset ---------------------------------

// Fig2Result bundles the lower (triad) and upper (copy) panels.
type Fig2Result struct {
	Triad []stats.Series // one per thread count
	Copy  stats.Series   // 64 threads
}

// Fig2Exp declares Fig. 2: STREAM triad bandwidth versus array offset for
// several thread counts, and copy bandwidth at 64 threads.
func (o Options) Fig2Exp() exp.Experiment {
	// The copy panel always runs at 64 threads, whether or not 64 is among
	// the triad thread counts.
	triadT := map[int]bool{}
	for _, t := range o.Fig2Threads {
		triadT[t] = true
	}
	threadAxis := o.Fig2Threads
	if !triadT[64] {
		threadAxis = append(append([]int{}, o.Fig2Threads...), 64)
	}
	return exp.Experiment{
		Name:    "fig2",
		Doc:     "STREAM triad/copy bandwidth vs COMMON-block offset (GB/s)",
		Machine: o.Machine,
		Cfg:     o.Cfg,
		Grid: exp.Grid{
			exp.Strs("kernel", "triad", "copy"),
			exp.Ints("threads", threadAxis...),
			exp.Span64("offset", 0, o.OffsetMax+1, o.OffsetStep),
		},
		Keep: func(p exp.Point) bool {
			if p.Str("kernel") == "copy" {
				return p.Int("threads") == 64
			}
			return triadT[p.Int("threads")]
		},
		Run: func(cfg chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
			kind := kernelTriad
			if p.Str("kernel") == "copy" {
				kind = kernelCopy
			}
			th := p.Int("threads")
			off := p.Int64("offset")
			r, err := o.runProg(cfg, sc, o.streamProg(sc, kind, off, th), o.warmLines())
			if err != nil {
				return exp.Result{}, err
			}
			return measured(exp.Result{
				Series:  fmt.Sprintf("%s/%dT", p.Str("kernel"), th),
				X:       float64(off),
				Y:       r.GBps,
				Metrics: bwMetrics(r),
			}, r), nil
		},
	}
}

// Fig2 regenerates Fig. 2 on the parallel engine.
func Fig2(o Options) Fig2Result {
	return Fig2FromSeries(exp.MustRun(o.Fig2Exp()).Series())
}

// Fig2FromSeries splits the flat series list back into the two panels.
func Fig2FromSeries(series []stats.Series) Fig2Result {
	var res Fig2Result
	for _, s := range series {
		if strings.HasPrefix(s.Name, "copy/") {
			res.Copy = s
		} else {
			res.Triad = append(res.Triad, s)
		}
	}
	return res
}

type streamKind int

const (
	kernelCopy streamKind = iota
	kernelTriad
)

// streamProgKey caches one recyclable program per (kernel, team) shape in
// a worker's scratch; only the stream bases change across offsets, so
// ProgramInto rebuilds the cached program in place.
type streamProgKey struct {
	kind    streamKind
	threads int
}

type progHolder struct{ p *trace.Program }

func (o Options) streamProg(sc *exp.Scratch, kind streamKind, offsetWords int64, threads int) *trace.Program {
	sp := alloc.NewSpace()
	bases := sp.Common(3, o.StreamN+offsetWords, phys.WordSize)
	var k kernels.Stream
	switch kind {
	case kernelCopy:
		k = kernels.StreamCopy(bases[2], bases[0], o.StreamN)
	case kernelTriad:
		k = kernels.StreamTriad(bases[0], bases[1], bases[2], o.StreamN)
	}
	k.Sweeps = o.StreamSweeps
	h := sc.Get(streamProgKey{kind, threads}, func() any { return &progHolder{} }).(*progHolder)
	h.p = k.ProgramInto(h.p, omp.StaticBlock{}, threads)
	return h.p
}

// ---- Fig. 4: vector triad vs N under placement policies --------------------

// segTriadLayouts places the four vector-triad arrays as segmented arrays
// with one page-aligned segment per thread (the paper's framework of
// Sect. 2.2); array i is displaced by i*offset bytes.
func segTriadLayouts(sp *alloc.Space, n int64, threads int, offset int64) [4]*segarray.Layout {
	segLens := segarray.EqualSegments(n, threads)
	var out [4]*segarray.Layout
	for i := range out {
		l := segarray.Plan(sp, segarray.Params{
			ElemSize: phys.WordSize,
			Align:    phys.PageSize,
			SegAlign: phys.PageSize,
			Offset:   int64(i) * offset,
		}, segLens)
		out[i] = &l
	}
	return out
}

// Fig4Exp declares Fig. 4: vector triad bandwidth versus array length for
// plain malloc placement, 8 kB alignment of every thread's segment, and
// the same alignment with per-array byte offsets of 32, 64 and 128 (arrays
// B, C, D shifted by one, two and three times the offset).
func (o Options) Fig4Exp() exp.Experiment {
	const threads = 64
	return exp.Experiment{
		Name:    "fig4",
		Doc:     "vector triad bandwidth vs N under placement policies (GB/s)",
		Machine: o.Machine,
		Cfg:     o.Cfg,
		Grid: exp.Grid{
			exp.Strs("placement", "plain", "seg"),
			exp.Int64s("offset", 0, 32, 64, 128),
			exp.Span64("n", o.TriadN, o.TriadN+o.TriadLen, o.TriadStep),
		},
		// Plain malloc has no per-array offset knob.
		Keep: func(p exp.Point) bool {
			return p.Str("placement") == "seg" || p.Int64("offset") == 0
		},
		Run: func(cfg chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
			n := p.Int64("n")
			off := p.Int64("offset")
			sp := alloc.NewSpace()
			var prog *trace.Program
			series := "plain"
			if p.Str("placement") == "plain" {
				bases := make([]phys.Addr, 4)
				for i := range bases {
					bases[i] = sp.Malloc(n * phys.WordSize)
				}
				// a = b + c*d: a is written, b, c, d are read.
				k := kernels.VTriad(bases[0], bases[1], bases[2], bases[3], n)
				prog = k.Program(omp.StaticBlock{}, threads)
			} else {
				ls := segTriadLayouts(sp, n, threads, off)
				k := kernels.SegVTriad(ls[0], ls[1], ls[2], ls[3])
				prog = k.Program(threads)
				series = "align8k"
				if off != 0 {
					series = fmt.Sprintf("align8k+%d", off)
				}
			}
			r, err := o.runProg(cfg, sc, prog, o.warmLines())
			if err != nil {
				return exp.Result{}, err
			}
			return measured(exp.Result{Series: series, X: float64(n), Y: r.GBps, Metrics: bwMetrics(r)}, r), nil
		},
	}
}

// Fig4 regenerates Fig. 4 on the parallel engine.
func Fig4(o Options) []stats.Series {
	return exp.MustRun(o.Fig4Exp()).Series()
}

// ---- Fig. 5: segmented iterators vs plain loops -----------------------------

// Fig5Exp declares Fig. 5: vector triad bandwidth versus N for the
// segmented implementation with optimal alignment (per-thread segments,
// manual floor/ceil scheduling, per-segment loop setup overhead) against
// the plain OpenMP version. Offsets are kept optimal in both arms —
// Fig. 5 isolates iterator overhead, not aliasing.
func (o Options) Fig5Exp(threads int) exp.Experiment {
	plan := core.PlanArrayOffsets(o.spec(), 4)
	return exp.Experiment{
		Name:    "fig5",
		Doc:     "segmented iterator overhead vs plain loops (GB/s)",
		Machine: o.Machine,
		Cfg:     o.Cfg,
		Grid: exp.Grid{
			exp.Strs("impl", "seg", "plain"),
			exp.Int64s("n", o.Fig5Ns...),
		},
		Run: func(cfg chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
			n := p.Int64("n")
			sp := alloc.NewSpace()
			var prog *trace.Program
			var series string
			if p.Str("impl") == "seg" {
				// Segmented: each array is a seg_array with one segment per
				// thread and planned offsets; the per-segment dispatch costs
				// extra integer work at every segment entry.
				segLens := segarray.EqualSegments(n, threads)
				var ls [4]*segarray.Layout
				for i := range ls {
					l := segarray.Plan(sp, segarray.Params{
						ElemSize: phys.WordSize,
						Align:    phys.PageSize,
						SegAlign: phys.PageSize,
						Offset:   plan.Offsets[i],
					}, segLens)
					ls[i] = &l
				}
				k := kernels.SegVTriad(ls[0], ls[1], ls[2], ls[3])
				k.SegOverhead = 30
				prog = k.Program(threads)
				series = fmt.Sprintf("%dT segmented optimal", threads)
			} else {
				bases := sp.OffsetBases(4, n*phys.WordSize, phys.PageSize, 128)
				k := kernels.VTriad(bases[0], bases[1], bases[2], bases[3], n)
				prog = k.Program(omp.StaticBlock{}, threads)
				series = fmt.Sprintf("%dT non-segmented", threads)
			}
			r, err := o.runProg(cfg, sc, prog, o.warmLines())
			if err != nil {
				return exp.Result{}, err
			}
			return measured(exp.Result{Series: series, X: float64(n), Y: r.GBps, Metrics: bwMetrics(r)}, r), nil
		},
	}
}

// Fig5 regenerates Fig. 5 on the parallel engine.
func Fig5(o Options, threads int) []stats.Series {
	return exp.MustRun(o.Fig5Exp(threads)).Series()
}

// ---- Fig. 6: 2D Jacobi ------------------------------------------------------

// Fig6Exp declares Fig. 6: Jacobi MLUPs/s versus problem size for the
// optimally aligned segmented solver at several thread counts, plus the
// plain (unaligned) 64-thread reference.
func (o Options) Fig6Exp() exp.Experiment {
	rp := core.PlanRows(o.spec())
	// The plain reference always runs at 64 threads, whether or not 64 is
	// among the optimized thread counts.
	optT := map[int]bool{}
	for _, t := range o.JacobiThreads {
		optT[t] = true
	}
	threadAxis := o.JacobiThreads
	if !optT[64] {
		threadAxis = append(append([]int{}, o.JacobiThreads...), 64)
	}
	return exp.Experiment{
		Name:    "fig6",
		Doc:     "2D Jacobi MLUPs/s vs N, planned vs plain placement",
		Machine: o.Machine,
		Cfg:     o.Cfg,
		Grid: exp.Grid{
			exp.Strs("placement", "plain", "opt"),
			exp.Ints("threads", threadAxis...),
			exp.Int64s("n", o.JacobiNs...),
		},
		Keep: func(p exp.Point) bool {
			if p.Str("placement") == "plain" {
				return p.Int("threads") == 64
			}
			return optT[p.Int("threads")]
		},
		Run: func(cfg chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
			n := p.Int64("n")
			th := p.Int("threads")
			sp := alloc.NewSpace()
			spec := jacobi.Spec{
				N:      n,
				Sched:  omp.StaticChunk{Size: 1},
				Sweeps: o.JacobiSweeps,
			}
			var series string
			if p.Str("placement") == "plain" {
				src := sp.Malloc(n * n * phys.WordSize)
				dst := sp.Malloc(n * n * phys.WordSize)
				spec.Src = jacobi.PlainRows(src, n)
				spec.Dst = jacobi.PlainRows(dst, n)
				series = fmt.Sprintf("%dT plain", th)
			} else {
				params := segarray.Params{
					ElemSize: phys.WordSize,
					Align:    phys.PageSize,
					SegAlign: rp.SegAlign,
					Shift:    rp.Shift,
				}
				rows := make([]int64, n)
				for i := range rows {
					rows[i] = n
				}
				srcL := segarray.Plan(sp, params, rows)
				dstL := segarray.Plan(sp, params, rows)
				spec.Src = func(i int64) phys.Addr { return srcL.Segs[i].Start }
				spec.Dst = func(i int64) phys.Addr { return dstL.Segs[i].Start }
				series = fmt.Sprintf("%dT", th)
			}
			r, err := o.runProg(cfg, sc, spec.Program(th), o.warmLines())
			if err != nil {
				return exp.Result{}, err
			}
			return measured(exp.Result{Series: series, X: float64(n), Y: r.MUPs, Metrics: bwMetrics(r)}, r), nil
		},
	}
}

// Fig6 regenerates Fig. 6 on the parallel engine.
func Fig6(o Options) []stats.Series {
	return exp.MustRun(o.Fig6Exp()).Series()
}

// ---- Fig. 7: lattice-Boltzmann ----------------------------------------------

// fig7Variant is one curve of Fig. 7.
type fig7Variant struct {
	name    string
	layout  lbm.Layout
	fused   bool
	threads int
}

// fig7Variants maps the Fig. 7 curve names to their layout, fusion and
// thread-count settings.
var fig7Variants = []fig7Variant{
	{"64T IJKv", lbm.IJKv, false, 64},
	{"64T IvJK", lbm.IvJK, false, 64},
	{"64T IvJK fused", lbm.IvJK, true, 64},
	{"32T IvJK fused", lbm.IvJK, true, 32},
}

// Fig7Exp declares Fig. 7: LBM MLUPs/s versus cubic domain size for the
// IJKv and IvJK layouts at 64 threads, the fused-loop IvJK variant, and
// the fused variant at 32 threads.
func (o Options) Fig7Exp() exp.Experiment {
	names := make([]string, len(fig7Variants))
	for i, v := range fig7Variants {
		names[i] = v.name
	}
	return exp.Experiment{
		Name:    "fig7",
		Doc:     "D3Q19 LBM MLUPs/s vs domain edge for layout/fusion variants",
		Machine: o.Machine,
		Cfg:     o.Cfg,
		Grid: exp.Grid{
			exp.Strs("variant", names...),
			exp.Int64s("n", o.LBMNs...),
		},
		Run: func(cfg chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
			name := p.Str("variant")
			var v *fig7Variant
			for i := range fig7Variants {
				if fig7Variants[i].name == name {
					v = &fig7Variants[i]
				}
			}
			if v == nil {
				return exp.Result{}, fmt.Errorf("unknown fig7 variant %q", name)
			}
			n := p.Int64("n")
			sp := alloc.NewSpace()
			spec := lbm.TraceSpec{
				N: n, Layout: v.layout,
				OldBase:  sp.Malloc(lbm.GridBytes(n, v.layout)),
				NewBase:  sp.Malloc(lbm.GridBytes(n, v.layout)),
				MaskBase: sp.Malloc(lbm.MaskBytes(n, v.layout)),
				Fused:    v.fused, Sched: omp.StaticBlock{}, Sweeps: o.LBMSweeps,
			}
			r, err := o.runProg(cfg, sc, spec.Program(v.threads), o.warmLines())
			if err != nil {
				return exp.Result{}, err
			}
			return measured(exp.Result{Series: name, X: float64(n), Y: r.MUPs, Metrics: bwMetrics(r)}, r), nil
		},
	}
}

// Fig7 regenerates Fig. 7 on the parallel engine.
func Fig7(o Options) []stats.Series {
	return exp.MustRun(o.Fig7Exp()).Series()
}
