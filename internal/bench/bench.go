// Package bench contains the experiment harnesses that regenerate every
// figure of the paper's evaluation (Figs. 2, 4, 5, 6, 7) on the simulated
// T2, plus shape checks that encode the paper's qualitative claims — who
// wins, by what factor, with which periodicity — as testable predicates.
package bench

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/jacobi"
	"repro/internal/kernels"
	"repro/internal/lbm"
	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/segarray"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options scales the experiments. Paper-scale array lengths are structure-
// preserving reductions of the originals (see DESIGN.md Sect. 5); Small()
// shrinks them further for unit tests.
type Options struct {
	Cfg chip.Config

	// Fig. 2
	StreamN      int64
	OffsetMax    int64
	OffsetStep   int64
	Fig2Threads  []int
	StreamSweeps int

	// Fig. 4
	TriadN    int64 // window base
	TriadLen  int64 // window length in elements
	TriadStep int64

	// Fig. 5
	Fig5Ns []int64

	// Fig. 6
	JacobiNs      []int64
	JacobiThreads []int
	JacobiSweeps  int

	// Fig. 7
	LBMNs     []int64
	LBMSweeps int
}

// Default returns the full-scale reproduction settings. Sizes are
// structure-preserving reductions of the paper's (STREAM N=2^18 instead of
// 2^25, offset step 2 instead of 1): every congruence mod 512 bytes, every
// cache-pressure ratio and every chunk-geometry property is identical, and
// a complete regeneration of all five figures takes minutes instead of
// hours.
func Default() Options {
	return Options{
		Cfg:          chip.Default(),
		StreamN:      1 << 18,
		OffsetMax:    256,
		OffsetStep:   2,
		Fig2Threads:  []int{8, 16, 32, 64},
		StreamSweeps: 1,

		TriadN:    1 << 19,
		TriadLen:  128,
		TriadStep: 2,

		Fig5Ns: []int64{128, 512, 2048, 8192, 1 << 15, 1 << 17, 1 << 19, 1 << 21},

		JacobiNs:      []int64{200, 400, 600, 800, 1000, 1200, 1216, 1280, 1600, 2000},
		JacobiThreads: []int{8, 16, 32, 64},
		JacobiSweeps:  1,

		LBMNs:     []int64{64, 72, 96, 126, 128, 160, 192},
		LBMSweeps: 1,
	}
}

// Small returns unit-test-scale settings that keep every structural
// property (congruences mod 512 B, cache pressure ratios).
func Small() Options {
	o := Default()
	o.StreamN = 1 << 15
	o.OffsetStep = 8
	o.Fig2Threads = []int{16, 64}
	o.TriadN = 1 << 16
	o.TriadLen = 128
	o.TriadStep = 4
	o.Fig5Ns = []int64{128, 2048, 1 << 15, 1 << 17}
	o.JacobiNs = []int64{128, 192, 256, 320}
	o.JacobiThreads = []int{8, 64}
	o.JacobiSweeps = 1
	o.LBMNs = []int64{48, 62, 64, 72}
	return o
}

func (o Options) warmLines() int64 { return o.Cfg.L2.SizeBytes / phys.LineSize }

// ---- Fig. 2: STREAM vs COMMON-block offset ---------------------------------

// Fig2Result bundles the lower (triad) and upper (copy) panels.
type Fig2Result struct {
	Triad []stats.Series // one per thread count
	Copy  stats.Series   // 64 threads
}

// Fig2 regenerates Fig. 2: STREAM triad bandwidth versus array offset for
// several thread counts, and copy bandwidth at 64 threads.
func Fig2(o Options) Fig2Result {
	m := chip.New(o.Cfg)
	var res Fig2Result
	for _, th := range o.Fig2Threads {
		s := stats.Series{Name: fmt.Sprintf("triad/%dT", th)}
		for off := int64(0); off <= o.OffsetMax; off += o.OffsetStep {
			r := m.Run(o.streamProg(kernelTriad, off, th))
			s.Add(float64(off), r.GBps)
		}
		res.Triad = append(res.Triad, s)
	}
	res.Copy = stats.Series{Name: "copy/64T"}
	for off := int64(0); off <= o.OffsetMax; off += o.OffsetStep {
		r := m.Run(o.streamProg(kernelCopy, off, 64))
		res.Copy.Add(float64(off), r.GBps)
	}
	return res
}

type streamKind int

const (
	kernelCopy streamKind = iota
	kernelTriad
)

func (o Options) streamProg(kind streamKind, offsetWords int64, threads int) *trace.Program {
	sp := alloc.NewSpace()
	bases := sp.Common(3, o.StreamN+offsetWords, phys.WordSize)
	var k kernels.Stream
	switch kind {
	case kernelCopy:
		k = kernels.StreamCopy(bases[2], bases[0], o.StreamN)
	case kernelTriad:
		k = kernels.StreamTriad(bases[0], bases[1], bases[2], o.StreamN)
	}
	k.Sweeps = o.StreamSweeps
	p := k.Program(omp.StaticBlock{}, threads)
	p.WarmLines = o.warmLines()
	return p
}

// ---- Fig. 4: vector triad vs N under placement policies --------------------

// segTriadLayouts places the four vector-triad arrays as segmented arrays
// with one page-aligned segment per thread (the paper's framework of
// Sect. 2.2); array i is displaced by i*offset bytes.
func segTriadLayouts(sp *alloc.Space, n int64, threads int, offset int64) [4]*segarray.Layout {
	segLens := segarray.EqualSegments(n, threads)
	var out [4]*segarray.Layout
	for i := range out {
		l := segarray.Plan(sp, segarray.Params{
			ElemSize: phys.WordSize,
			Align:    phys.PageSize,
			SegAlign: phys.PageSize,
			Offset:   int64(i) * offset,
		}, segLens)
		out[i] = &l
	}
	return out
}

// Fig4 regenerates Fig. 4: vector triad bandwidth versus array length for
// plain malloc placement, 8 kB alignment of every thread's segment, and
// the same alignment with per-array byte offsets of 32, 64 and 128 (arrays
// B, C, D shifted by one, two and three times the offset).
func Fig4(o Options) []stats.Series {
	m := chip.New(o.Cfg)
	const threads = 64
	offsets := []struct {
		name string
		off  int64
	}{
		{"align8k", 0},
		{"align8k+32", 32},
		{"align8k+64", 64},
		{"align8k+128", 128},
	}
	out := make([]stats.Series, 0, len(offsets)+1)

	plain := stats.Series{Name: "plain"}
	for n := o.TriadN; n < o.TriadN+o.TriadLen; n += o.TriadStep {
		sp := alloc.NewSpace()
		bases := make([]phys.Addr, 4)
		for i := range bases {
			bases[i] = sp.Malloc(n * phys.WordSize)
		}
		// a = b + c*d: a is written, b, c, d are read.
		k := kernels.VTriad(bases[0], bases[1], bases[2], bases[3], n)
		p := k.Program(omp.StaticBlock{}, threads)
		p.WarmLines = o.warmLines()
		plain.Add(float64(n), m.Run(p).GBps)
	}
	out = append(out, plain)

	for _, v := range offsets {
		s := stats.Series{Name: v.name}
		for n := o.TriadN; n < o.TriadN+o.TriadLen; n += o.TriadStep {
			sp := alloc.NewSpace()
			ls := segTriadLayouts(sp, n, threads, v.off)
			k := kernels.SegVTriad(ls[0], ls[1], ls[2], ls[3])
			p := k.Program(threads)
			p.WarmLines = o.warmLines()
			s.Add(float64(n), m.Run(p).GBps)
		}
		out = append(out, s)
	}
	return out
}

// ---- Fig. 5: segmented iterators vs plain loops -----------------------------

// Fig5 regenerates Fig. 5: vector triad bandwidth versus N for the
// segmented implementation with optimal alignment (per-thread segments,
// manual floor/ceil scheduling, per-segment loop setup overhead) against
// the plain OpenMP version.
func Fig5(o Options, threads int) []stats.Series {
	m := chip.New(o.Cfg)
	seg := stats.Series{Name: fmt.Sprintf("%dT segmented optimal", threads)}
	plain := stats.Series{Name: fmt.Sprintf("%dT non-segmented", threads)}
	plan := core.PlanArrayOffsets(core.T2Spec(), 4)
	for _, n := range o.Fig5Ns {
		// Segmented: each array is a seg_array with one segment per thread
		// and planned offsets; the per-segment dispatch costs extra
		// integer work at every segment entry.
		sp := alloc.NewSpace()
		segLens := segarray.EqualSegments(n, threads)
		var ls [4]*segarray.Layout
		for i := range ls {
			l := segarray.Plan(sp, segarray.Params{
				ElemSize: phys.WordSize,
				Align:    phys.PageSize,
				SegAlign: phys.PageSize,
				Offset:   plan.Offsets[i],
			}, segLens)
			ls[i] = &l
		}
		k := kernels.SegVTriad(ls[0], ls[1], ls[2], ls[3])
		k.SegOverhead = 30
		p := k.Program(threads)
		p.WarmLines = o.warmLines()
		r := m.Run(p)
		seg.Add(float64(n), r.GBps)

		// Plain: contiguous arrays, plain parallel loop. Offsets are kept
		// optimal here too — Fig. 5 isolates iterator overhead, not
		// aliasing.
		sp2 := alloc.NewSpace()
		bases2 := sp2.OffsetBases(4, n*phys.WordSize, phys.PageSize, 128)
		k2 := kernels.VTriad(bases2[0], bases2[1], bases2[2], bases2[3], n)
		p2 := k2.Program(omp.StaticBlock{}, threads)
		p2.WarmLines = o.warmLines()
		r2 := m.Run(p2)
		plain.Add(float64(n), r2.GBps)
	}
	return []stats.Series{seg, plain}
}

// ---- Fig. 6: 2D Jacobi ------------------------------------------------------

// Fig6 regenerates Fig. 6: Jacobi MLUPs/s versus problem size for the
// optimally aligned segmented solver at several thread counts, plus the
// plain (unaligned) 64-thread reference.
func Fig6(o Options) []stats.Series {
	m := chip.New(o.Cfg)
	rp := core.PlanRows(core.T2Spec())
	var out []stats.Series

	plain := stats.Series{Name: "64T plain"}
	for _, n := range o.JacobiNs {
		sp := alloc.NewSpace()
		src := sp.Malloc(n * n * phys.WordSize)
		dst := sp.Malloc(n * n * phys.WordSize)
		spec := jacobi.Spec{
			N:      n,
			Src:    jacobi.PlainRows(src, n),
			Dst:    jacobi.PlainRows(dst, n),
			Sched:  omp.StaticChunk{Size: 1},
			Sweeps: o.JacobiSweeps,
		}
		p := spec.Program(64)
		p.WarmLines = o.warmLines()
		r := m.Run(p)
		plain.Add(float64(n), r.MUPs)
	}
	out = append(out, plain)

	for _, th := range o.JacobiThreads {
		s := stats.Series{Name: fmt.Sprintf("%dT", th)}
		for _, n := range o.JacobiNs {
			sp := alloc.NewSpace()
			params := segarray.Params{
				ElemSize: phys.WordSize,
				Align:    phys.PageSize,
				SegAlign: rp.SegAlign,
				Shift:    rp.Shift,
			}
			rows := make([]int64, n)
			for i := range rows {
				rows[i] = n
			}
			srcL := segarray.Plan(sp, params, rows)
			dstL := segarray.Plan(sp, params, rows)
			spec := jacobi.Spec{
				N:      n,
				Src:    func(i int64) phys.Addr { return srcL.Segs[i].Start },
				Dst:    func(i int64) phys.Addr { return dstL.Segs[i].Start },
				Sched:  omp.StaticChunk{Size: 1},
				Sweeps: o.JacobiSweeps,
			}
			p := spec.Program(th)
			p.WarmLines = o.warmLines()
			r := m.Run(p)
			s.Add(float64(n), r.MUPs)
		}
		out = append(out, s)
	}
	return out
}

// ---- Fig. 7: lattice-Boltzmann ----------------------------------------------

// Fig7 regenerates Fig. 7: LBM MLUPs/s versus cubic domain size for the
// IJKv and IvJK layouts at 64 threads, the fused-loop IvJK variant, and
// the fused variant at 32 threads.
func Fig7(o Options) []stats.Series {
	m := chip.New(o.Cfg)
	type variant struct {
		name    string
		layout  lbm.Layout
		fused   bool
		threads int
	}
	variants := []variant{
		{"64T IJKv", lbm.IJKv, false, 64},
		{"64T IvJK", lbm.IvJK, false, 64},
		{"64T IvJK fused", lbm.IvJK, true, 64},
		{"32T IvJK fused", lbm.IvJK, true, 32},
	}
	out := make([]stats.Series, len(variants))
	for vi, v := range variants {
		out[vi].Name = v.name
		for _, n := range o.LBMNs {
			sp := alloc.NewSpace()
			oldB := sp.Malloc(lbm.GridBytes(n, v.layout))
			newB := sp.Malloc(lbm.GridBytes(n, v.layout))
			mask := sp.Malloc(lbm.MaskBytes(n))
			spec := lbm.TraceSpec{
				N: n, Layout: v.layout,
				OldBase: oldB, NewBase: newB, MaskBase: mask,
				Fused: v.fused, Sched: omp.StaticBlock{}, Sweeps: o.LBMSweeps,
			}
			p := spec.Program(v.threads)
			p.WarmLines = o.warmLines()
			r := m.Run(p)
			out[vi].Add(float64(n), r.MUPs)
		}
	}
	return out
}
