package bench

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/omp"
	"repro/internal/phys"
)

// crossvalExp sweeps the three placement regimes (convoy, partial,
// uniform) as one declarative experiment; each point carries the
// analyzer's predicted relative bandwidth alongside the simulator's
// measurement.
func crossvalExp(n int64) exp.Experiment {
	ms := core.SpecFor(phys.T2())
	return exp.Experiment{
		Name: "crossval",
		Doc:  "analyzer-predicted vs simulator-measured bandwidth by offset regime",
		Cfg:  machine.MustGet("t2").Config,
		Grid: exp.Grid{
			exp.Int64s("offset", 0, 32, 16), // convoy, partial, uniform
		},
		Run: func(cfg chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
			off := p.Int64("offset")
			ndim := n + off
			bases := []phys.Addr{0, phys.Addr(ndim * phys.WordSize), phys.Addr(2 * ndim * phys.WordSize)}
			pred := core.PredictRelativeBandwidth(ms, core.StreamSet{Bases: bases, Stride: phys.LineSize})

			sp := alloc.NewSpace()
			real := sp.Common(3, ndim, phys.WordSize)
			k := kernels.StreamTriad(real[0], real[1], real[2], n)
			prog := k.Program(omp.StaticBlock{}, 64)
			prog.WarmLines = cfg.L2.SizeBytes / phys.LineSize
			r := chip.New(cfg).Run(prog)
			return exp.Result{
				Series:  "triad/64T",
				X:       float64(off),
				Y:       r.GBps,
				Metrics: map[string]float64{"predicted": pred},
			}, nil
		},
	}
}

// TestAnalyzerPredictsSimulator cross-validates the paper's central
// methodological claim — that placement quality is predictable from the
// address mapping alone: the analyzer's predicted relative bandwidth must
// rank the simulator's measured bandwidth across the three regimes, and
// the predicted controller utilization shares must match the measured
// ones for the convoy case.
func TestAnalyzerPredictsSimulator(t *testing.T) {
	out, err := exp.Run(crossvalExp(1 << 17))
	if err != nil {
		t.Fatal(err)
	}
	pts := out.Points
	if len(pts) != 3 {
		t.Fatalf("crossval produced %d points, want 3", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		if a.Result.Metrics["predicted"] >= b.Result.Metrics["predicted"] {
			t.Fatalf("analyzer ordering broken: off=%.0f pred %.2f vs off=%.0f pred %.2f",
				a.Result.X, a.Result.Metrics["predicted"], b.Result.X, b.Result.Metrics["predicted"])
		}
		if a.Result.Y >= b.Result.Y {
			t.Errorf("simulator disagrees with analyzer: off=%.0f measured %.2f not below off=%.0f measured %.2f",
				a.Result.X, a.Result.Y, b.Result.X, b.Result.Y)
		}
	}

	// Quantitative check for the convoy: predicted 0.25 relative bandwidth;
	// measured worst/best must land within a factor of 1.6 of that.
	ratio := pts[0].Result.Y / pts[2].Result.Y
	if ratio < 0.25/1.6 || ratio > 0.25*1.6 {
		t.Errorf("convoy measured/best = %.3f, predicted 0.25 (tolerance 1.6x)", ratio)
	}
}

// plannerExp measures the vector triad under naive page alignment and the
// planner's per-array offsets as a two-point experiment.
func plannerExp(n int64) exp.Experiment {
	plan := core.PlanArrayOffsets(core.SpecFor(phys.T2()), 4)
	return exp.Experiment{
		Name: "planner",
		Doc:  "planned vs naive vector-triad placement",
		Cfg:  machine.MustGet("t2").Config,
		Grid: exp.Grid{
			exp.Strs("placement", "naive", "planned"),
		},
		Run: func(cfg chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
			offset := int64(0)
			if p.Str("placement") == "planned" {
				offset = plan.Offsets[1] // arrays shifted by i*128
			}
			sp := alloc.NewSpace()
			bases := sp.OffsetBases(4, n*phys.WordSize, phys.PageSize, offset)
			k := kernels.VTriad(bases[0], bases[1], bases[2], bases[3], n)
			prog := k.Program(omp.StaticBlock{}, 64)
			prog.WarmLines = cfg.L2.SizeBytes / phys.LineSize
			r := chip.New(cfg).Run(prog)
			return exp.Result{Series: p.Str("placement"), X: float64(offset), Y: r.GBps}, nil
		},
	}
}

// TestPlannerBeatsNaivePlacement verifies end-to-end that applying
// core.PlanArrayOffsets to the vector triad yields at least the predicted
// improvement class over page-aligned placement.
func TestPlannerBeatsNaivePlacement(t *testing.T) {
	out, err := exp.Run(plannerExp(1 << 17))
	if err != nil {
		t.Fatal(err)
	}
	naive, planned := out.Points[0].Result.Y, out.Points[1].Result.Y
	if planned < 2.0*naive {
		t.Errorf("planned placement %.2f GB/s not at least 2x naive %.2f GB/s", planned, naive)
	}
}
