package bench

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/omp"
	"repro/internal/phys"
)

// TestAnalyzerPredictsSimulator cross-validates the paper's central
// methodological claim — that placement quality is predictable from the
// address mapping alone: the analyzer's predicted relative bandwidth must
// rank the simulator's measured bandwidth across the three regimes, and
// the predicted controller utilization shares must match the measured
// ones for the convoy case.
func TestAnalyzerPredictsSimulator(t *testing.T) {
	const n = 1 << 17
	ms := core.T2Spec()
	m := chip.New(chip.Default())

	type obs struct {
		offset    int64
		predicted float64
		measured  float64
	}
	var results []obs
	for _, off := range []int64{0, 32, 16} { // convoy, partial, uniform
		ndim := n + off
		bases := []phys.Addr{0, phys.Addr(ndim * phys.WordSize), phys.Addr(2 * ndim * phys.WordSize)}
		pred := core.PredictRelativeBandwidth(ms, core.StreamSet{Bases: bases, Stride: phys.LineSize})

		sp := alloc.NewSpace()
		real := sp.Common(3, ndim, phys.WordSize)
		k := kernels.StreamTriad(real[0], real[1], real[2], n)
		p := k.Program(omp.StaticBlock{}, 64)
		p.WarmLines = chip.Default().L2.SizeBytes / phys.LineSize
		r := m.Run(p)
		results = append(results, obs{off, pred, r.GBps})
	}

	for i := 1; i < len(results); i++ {
		a, b := results[i-1], results[i]
		if a.predicted >= b.predicted {
			t.Fatalf("analyzer ordering broken: off=%d pred %.2f vs off=%d pred %.2f",
				a.offset, a.predicted, b.offset, b.predicted)
		}
		if a.measured >= b.measured {
			t.Errorf("simulator disagrees with analyzer: off=%d measured %.2f not below off=%d measured %.2f",
				a.offset, a.measured, b.offset, b.measured)
		}
	}

	// Quantitative check for the convoy: predicted 0.25 relative bandwidth;
	// measured worst/best must land within a factor of 1.6 of that.
	ratio := results[0].measured / results[2].measured
	if ratio < 0.25/1.6 || ratio > 0.25*1.6 {
		t.Errorf("convoy measured/best = %.3f, predicted 0.25 (tolerance 1.6x)", ratio)
	}
}

// TestPlannerBeatsNaivePlacement verifies end-to-end that applying
// core.PlanArrayOffsets to the vector triad yields at least the predicted
// improvement class over page-aligned placement.
func TestPlannerBeatsNaivePlacement(t *testing.T) {
	const n = 1 << 17
	m := chip.New(chip.Default())
	warm := chip.Default().L2.SizeBytes / phys.LineSize

	run := func(offset int64) float64 {
		sp := alloc.NewSpace()
		bases := sp.OffsetBases(4, n*phys.WordSize, phys.PageSize, offset)
		k := kernels.VTriad(bases[0], bases[1], bases[2], bases[3], n)
		p := k.Program(omp.StaticBlock{}, 64)
		p.WarmLines = warm
		return m.Run(p).GBps
	}
	naive := run(0)
	plan := core.PlanArrayOffsets(core.T2Spec(), 4)
	planned := run(plan.Offsets[1]) // arrays shifted by i*128
	if planned < 2.0*naive {
		t.Errorf("planned placement %.2f GB/s not at least 2x naive %.2f GB/s", planned, naive)
	}
}
