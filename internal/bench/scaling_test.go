package bench

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/machine"
)

// TestScalingShape regenerates the controller-scaling study at test scale
// and validates its qualitative claims: cliff present at t2, growing with
// controller count, surviving coarse granules, absent under xor and with
// a single controller.
func TestScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep spans seven machines; run without -short for the full shape check")
	}
	o := Small()
	series := Scaling(o)
	for _, s := range series {
		t.Logf("%s: %v", s.Name, s.Y)
	}
	if err := CheckScaling(series); err != nil {
		t.Error(err)
	}
}

// TestScalingPredictionsRankMeasurements is the per-profile crossval
// predicate: on every machine in the study, the analyzer's predicted
// relative bandwidth must rank the measured bandwidth of the two
// placements — planned never predicted-better-but-measured-worse.
func TestScalingPredictionsRankMeasurements(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep spans seven machines; run without -short")
	}
	o := Small()
	out := exp.MustRun(o.ScalingExp())
	type arm struct{ pred, meas float64 }
	byMachine := map[string]map[string]arm{}
	for _, pr := range out.Points {
		m := pr.Params["machine"].(string)
		if byMachine[m] == nil {
			byMachine[m] = map[string]arm{}
		}
		byMachine[m][pr.Params["placement"].(string)] = arm{
			pred: pr.Result.Metrics["predicted"],
			meas: pr.Result.Y,
		}
	}
	for m, arms := range byMachine {
		c, p := arms["congruent"], arms["planned"]
		if machine.MustGet(m).Spec().Mapping.Period() > 0 && p.pred < c.pred {
			// Hashed mappings have no period, so the planner has nothing to
			// plan against and its prediction carries no ranking claim there.
			t.Errorf("%s: planner predicts planned (%.2f) below congruent (%.2f)", m, p.pred, c.pred)
		}
		if p.pred > 1.5*c.pred && p.meas < c.meas {
			t.Errorf("%s: predicted a clear win (%.2f vs %.2f) but measured %.2f < %.2f GB/s",
				m, p.pred, c.pred, p.meas, c.meas)
		}
	}
}

// TestScalingStreamsCoverEveryProfile pins the stream-count invariant:
// the kernel must have at least as many streams as any swept profile has
// controllers, or the planned arm understates that profile's ceiling.
func TestScalingStreamsCoverEveryProfile(t *testing.T) {
	for _, name := range scalingMachines() {
		if c := machine.MustGet(name).Spec().Mapping.Controllers(); c > scalingStreams {
			t.Errorf("%s has %d controllers but the scaling kernel only %d streams", name, c, scalingStreams)
		}
	}
}

// TestScalingNKeepsThreadsCongruent pins the chunk-rounding rule: for
// every periodic profile, each thread's chunk must be a whole number of
// interleave periods so the study's congruent arm is actually congruent.
func TestScalingNKeepsThreadsCongruent(t *testing.T) {
	for _, name := range scalingMachines() {
		ms := machine.MustGet(name).Spec()
		n := scalingN(Small().ScalingN, ms, 64)
		if per := ms.Mapping.Period(); per > 0 {
			chunkBytes := n / 64 * 8
			if chunkBytes%per != 0 {
				t.Errorf("%s: chunk of %d bytes not a multiple of the %d-byte period", name, chunkBytes, per)
			}
		}
		if n < Small().ScalingN {
			t.Errorf("%s: scalingN shrank the problem (%d < %d)", name, n, Small().ScalingN)
		}
	}
}
