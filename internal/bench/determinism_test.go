package bench

import (
	"bytes"
	"testing"

	"repro/internal/exp"
)

// tiny shrinks the sweeps far below Small() — determinism does not need
// figure-shaped data, just enough points to keep a pool of workers busy.
func tiny() Options {
	o := Small()
	o.StreamN = 1 << 12
	o.OffsetStep = 32
	o.Fig5Ns = []int64{128, 2048, 1 << 14}
	return o
}

// TestFigureJSONDeterminism is the end-to-end determinism regression for
// the parallel engine: running the same figure experiment with jobs=1 and
// jobs=8 must produce byte-identical JSON trajectories. The simulator's
// event heap breaks timestamp ties by sequence number, so each point is
// deterministic in isolation; this test pins the executor's obligation to
// preserve that guarantee across the fan-out/collect path.
func TestFigureJSONDeterminism(t *testing.T) {
	o := tiny()
	for _, e := range []exp.Experiment{o.Fig2Exp(), o.Fig5Exp(64)} {
		one, err := exp.Runner{Jobs: 1}.Run(e)
		if err != nil {
			t.Fatalf("%s jobs=1: %v", e.Name, err)
		}
		many, err := exp.Runner{Jobs: 8}.Run(e)
		if err != nil {
			t.Fatalf("%s jobs=8: %v", e.Name, err)
		}
		b1, err := one.JSON()
		if err != nil {
			t.Fatal(err)
		}
		bN, err := many.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, bN) {
			t.Errorf("%s: jobs=1 and jobs=8 JSON differ (%d vs %d bytes)", e.Name, len(b1), len(bN))
		}
	}
}
