package bench

import (
	"math"
	"testing"

	"repro/internal/alloc"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/jacobi"
	"repro/internal/kernels"
	"repro/internal/lbm"
	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/segarray"
	"repro/internal/trace"
)

// TestRelaxedEnvelope is the tested contract behind -epoch-width: relaxed
// wide epochs on the sharded engine stay inside a measured fidelity
// envelope against the sequential engine on representative fig4, fig6 and
// fig7 points. The contract, exactly as asserted here and documented in
// DESIGN.md:
//
//   - cycle counts drift at most 5% from the sequential engine at every
//     tested width (2x, 4x and 8x the conservative bound);
//   - L2 hit and miss counters are bit-identical to the sequential engine;
//   - L2 writeback counters are bit-identical wherever the CONSERVATIVE
//     sharded engine is already bit-identical to the sequential one (the
//     triad and Jacobi points). On the LBM point the conservative sharded
//     engine itself deviates from the sequential engine by a handful of
//     in-flight dirty lines at teardown (<0.01%); relaxation must not
//     widen that pre-existing deviation past 0.1%.
//
// The envelope is a point-tested, empirical contract — not a theorem over
// all programs. Points whose contention pattern is phase-locked to the
// epoch grid (e.g. fig4 at offsets 0 and 128, where the conservative
// sharded engine already drifts ~5% from sequential) can exceed the cycle
// bound, which is exactly why relaxed widths refuse to write BENCH JSON
// trajectories without an explicit -relaxed-ok. Everything here is
// deterministic, so the assertions are exact, not flaky-tolerant.
func TestRelaxedEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("envelope points are full-tier scale")
	}
	o := Small()

	cases := []struct {
		name string
		mk   func() *trace.Program
		// wbExact: the conservative sharded engine reproduces the
		// sequential writeback counter exactly, so relaxed widths must too.
		wbExact bool
	}{
		{"fig4-segtriad-n64k-off64", func() *trace.Program {
			const threads = 64
			sp := alloc.NewSpace()
			ls := segTriadLayouts(sp, 1<<16, threads, 64)
			k := kernels.SegVTriad(ls[0], ls[1], ls[2], ls[3])
			return k.Program(threads)
		}, true},
		{"fig6-jacobi-n128-64T", func() *trace.Program {
			rp := core.PlanRows(o.spec())
			sp := alloc.NewSpace()
			spec := jacobi.Spec{N: 128, Sched: omp.StaticChunk{Size: 1}, Sweeps: o.JacobiSweeps}
			params := segarray.Params{ElemSize: phys.WordSize, Align: phys.PageSize,
				SegAlign: rp.SegAlign, Shift: rp.Shift}
			rows := make([]int64, spec.N)
			for i := range rows {
				rows[i] = spec.N
			}
			srcL := segarray.Plan(sp, params, rows)
			dstL := segarray.Plan(sp, params, rows)
			spec.Src = func(i int64) phys.Addr { return srcL.Segs[i].Start }
			spec.Dst = func(i int64) phys.Addr { return dstL.Segs[i].Start }
			return spec.Program(64)
		}, true},
		{"fig7-lbm-n48-IvJK-fused", func() *trace.Program {
			sp := alloc.NewSpace()
			spec := lbm.TraceSpec{
				N: 48, Layout: lbm.IvJK,
				OldBase:  sp.Malloc(lbm.GridBytes(48, lbm.IvJK)),
				NewBase:  sp.Malloc(lbm.GridBytes(48, lbm.IvJK)),
				MaskBase: sp.Malloc(lbm.MaskBytes(48, lbm.IvJK)),
				Fused:    true, Sched: omp.StaticBlock{}, Sweeps: o.LBMSweeps,
			}
			return spec.Program(64)
		}, false},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			run := func(shards int, width int64) chip.Result {
				oo := o
				oo.Shards = shards
				oo.EpochWidth = width
				var sc exp.Scratch
				r, err := oo.runProg(o.Cfg, &sc, c.mk(), o.warmLines())
				if err != nil {
					t.Fatalf("shards=%d width=%d: %v", shards, width, err)
				}
				return r
			}
			seq := run(0, 0)
			cons := run(4, 0) // conservative sharded: the wbExact baseline
			if c.wbExact && cons.L2 != seq.L2 {
				t.Fatalf("conservative sharded L2 stats deviate from sequential: %+v vs %+v "+
					"(point misclassified: set wbExact=false and document the deviation)",
					cons.L2, seq.L2)
			}
			w := cons.EpochWidth
			for _, mult := range []int64{2, 4, 8} {
				r := run(4, mult*w)
				if r.EpochWidth != mult*w {
					t.Fatalf("width %d not applied: result reports %d", mult*w, r.EpochWidth)
				}
				drift := math.Abs(float64(r.Cycles)-float64(seq.Cycles)) / float64(seq.Cycles)
				if drift > 0.05 {
					t.Errorf("width %d: cycle drift %.2f%% vs sequential exceeds the 5%% envelope (%d vs %d)",
						mult*w, 100*drift, r.Cycles, seq.Cycles)
				}
				if r.L2.Hits != seq.L2.Hits || r.L2.Misses != seq.L2.Misses {
					t.Errorf("width %d: L2 hit/miss counters deviate from sequential: %d/%d vs %d/%d",
						mult*w, r.L2.Hits, r.L2.Misses, seq.L2.Hits, seq.L2.Misses)
				}
				if c.wbExact {
					if r.L2.Writebacks != seq.L2.Writebacks {
						t.Errorf("width %d: writebacks deviate from sequential: %d vs %d",
							mult*w, r.L2.Writebacks, seq.L2.Writebacks)
					}
				} else {
					wbDrift := math.Abs(float64(r.L2.Writebacks)-float64(seq.L2.Writebacks)) /
						float64(seq.L2.Writebacks)
					if wbDrift > 0.001 {
						t.Errorf("width %d: writeback deviation %.4f%% vs sequential exceeds 0.1%% (%d vs %d)",
							mult*w, 100*wbDrift, r.L2.Writebacks, seq.L2.Writebacks)
					}
				}
			}
		})
	}
}
