package bench

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/stats"
)

// The controller-scaling study generalizes the paper's central experiment
// beyond the machine it was measured on: the same 8-stream kernel is run
// on every profile in the registry twice — once with all stream bases
// congruent modulo the profile's interleave period (the paper's worst
// case) and once with the analyzer's planned offsets — and the ratio
// between the two is the "congruence cliff". Sweeping the machine axis
// shows where the cliff appears (it grows with the controller count),
// where it moves (coarse granules shift the congruence modulus without
// removing it), and where it dissolves (a hashed interleave, or a single
// controller with nothing to alias against).

// scalingMachines returns the registry slice the scaling study sweeps, in
// x-axis order.
func scalingMachines() []string {
	return []string{"t2", "t2-1mc", "t2-2mc", "mc8", "t2-wide1k", "t2-wide4k", "xor"}
}

// scalingStreams is the stream count of the scaling kernel: at least as
// many streams as any registered profile has controllers (mc8 has exactly
// 8), so the planned placement can exercise every controller on every
// machine. A profile with more controllers than this would leave some
// idle in the planned arm and understate its ceiling — raise this
// alongside any such registry addition.
const scalingStreams = 8

// scalingN rounds the study's array length up so that each thread's
// contiguous chunk is a whole number of interleave periods. That keeps
// the 64 thread phases congruent — the condition under which the paper
// observes the convoy — on every profile, including the coarse-granule
// ones whose periods exceed the default chunk.
func scalingN(base int64, ms core.MachineSpec, threads int64) int64 {
	n := base
	if per := ms.Mapping.Period(); per > 0 {
		m := threads * per / phys.WordSize
		if m > 0 {
			n = (n + m - 1) / m * m
		}
	}
	return n
}

// ScalingExp declares the controller-scaling x interleave-granularity
// study: machine profile x {congruent, planned} placement of an 8-stream
// load kernel at 64 threads. Every point carries the analyzer's predicted
// relative bandwidth, so the trajectory doubles as a per-profile
// cross-validation of the planner.
func (o Options) ScalingExp() exp.Experiment {
	const threads = 64
	names := scalingMachines()
	idx := map[string]float64{}
	for i, n := range names {
		idx[n] = float64(i)
	}
	return exp.Experiment{
		Name: "scaling",
		Doc:  "congruence cliff vs controller count and interleave granularity (GB/s, 8-stream load kernel)",
		Cfg:  o.Cfg, // unused: each point builds its profile's machine
		Grid: exp.Grid{
			exp.Strs("machine", names...),
			exp.Strs("placement", "congruent", "planned"),
		},
		Run: func(base chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
			prof, err := machine.Get(p.Str("machine"))
			if err != nil {
				return exp.Result{}, err
			}
			// The point's machine comes from the profile registry, but the
			// fast-forward validation toggle follows the experiment's
			// configuration so equivalence tests can flip it sweep-wide.
			prof.Config.DisableFastForward = base.DisableFastForward
			ms := prof.Spec()
			n := scalingN(o.ScalingN, ms, threads)
			align := int64(phys.PageSize)
			if per := ms.Mapping.Period(); per > align {
				align = per
			}
			offset := int64(0)
			if p.Str("placement") == "planned" {
				offset = core.PlanArrayOffsets(ms, scalingStreams).Offsets[1]
			}
			sp := alloc.NewSpace()
			bases := sp.OffsetBases(scalingStreams, n*phys.WordSize, align, offset)
			pred := core.PredictRelativeBandwidth(ms, core.StreamSet{Bases: bases, Stride: ms.LineSize})

			k := kernels.LoadSum(bases, n)
			prog := k.Program(omp.StaticBlock{}, threads)
			r, err := o.runProg(prof.Config, sc, prog, prof.Config.L2.SizeBytes/phys.LineSize)
			if err != nil {
				return exp.Result{}, err
			}
			m := bwMetrics(r)
			m["predicted"] = pred
			m["controllers"] = float64(ms.Mapping.Controllers())
			m["period_bytes"] = float64(ms.Mapping.Period())
			m["n"] = float64(n)
			return measured(exp.Result{
				Series:  p.Str("placement"),
				X:       idx[p.Str("machine")],
				Y:       r.GBps,
				Metrics: m,
			}, r), nil
		},
	}
}

// Scaling regenerates the scaling study on the parallel engine.
func Scaling(o Options) []stats.Series {
	return exp.MustRun(o.ScalingExp()).Series()
}

// CheckScaling encodes the study's qualitative claims:
//
//  1. the congruence cliff is present on the paper's machine — planned
//     placement beats congruent placement by well over the paper's 2x;
//  2. it dissolves under a hashed interleave (xor) and on a machine with
//     a single controller (nothing to alias against);
//  3. it appears as controllers are added (2mc shows it, mc8 at least as
//     strongly) and survives coarser interleave granules, which only move
//     the congruence modulus;
//  4. the uniform (planned) ceiling scales with the controller count.
func CheckScaling(series []stats.Series) error {
	var cong, plan stats.Series
	for _, s := range series {
		switch s.Name {
		case "congruent":
			cong = s
		case "planned":
			plan = s
		}
	}
	names := scalingMachines()
	if cong.Len() != len(names) || plan.Len() != len(names) {
		return fmt.Errorf("scaling: series lengths %d/%d, want %d machines", cong.Len(), plan.Len(), len(names))
	}
	cliff := map[string]float64{}
	planned := map[string]float64{}
	for i, name := range names {
		if cong.Y[i] <= 0 {
			return fmt.Errorf("scaling: zero congruent bandwidth on %s", name)
		}
		cliff[name] = plan.Y[i] / cong.Y[i]
		planned[name] = plan.Y[i]
	}
	if cliff["t2"] < 2.0 {
		return fmt.Errorf("scaling: t2 cliff %.2f < 2 — congruence penalty missing on the paper's machine", cliff["t2"])
	}
	if cliff["xor"] > 1.3 {
		return fmt.Errorf("scaling: xor cliff %.2f > 1.3 — hashed interleave should dissolve the cliff", cliff["xor"])
	}
	if cliff["t2-1mc"] > 1.3 {
		return fmt.Errorf("scaling: t2-1mc cliff %.2f > 1.3 — one controller has nothing to alias against", cliff["t2-1mc"])
	}
	if cliff["t2-2mc"] < 1.5 {
		return fmt.Errorf("scaling: t2-2mc cliff %.2f < 1.5 — cliff should appear with the second controller", cliff["t2-2mc"])
	}
	if cliff["mc8"] < cliff["t2-2mc"] {
		return fmt.Errorf("scaling: mc8 cliff %.2f below t2-2mc cliff %.2f — cliff should grow with controllers", cliff["mc8"], cliff["t2-2mc"])
	}
	for _, wide := range []string{"t2-wide1k", "t2-wide4k"} {
		if cliff[wide] < 2.0 {
			return fmt.Errorf("scaling: %s cliff %.2f < 2 — a coarser granule moves the congruence modulus but must not remove the cliff", wide, cliff[wide])
		}
	}
	if planned["t2"] < 2.0*planned["t2-1mc"] {
		return fmt.Errorf("scaling: planned t2 %.2f GB/s not well above 1-controller %.2f — uniform ceiling should scale with controllers", planned["t2"], planned["t2-1mc"])
	}
	if planned["mc8"] < 1.05*planned["t2"] {
		return fmt.Errorf("scaling: planned mc8 %.2f GB/s not above t2 %.2f — extra controllers should raise the ceiling", planned["mc8"], planned["t2"])
	}
	return nil
}
