package trace

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/phys"
)

func TestLineTracker(t *testing.T) {
	var tr LineTracker
	if !tr.Touch(0x100) {
		t.Error("first touch not new")
	}
	if tr.Touch(0x13f) {
		t.Error("same-line touch reported new")
	}
	if !tr.Touch(0x140) {
		t.Error("next-line touch not new")
	}
	if !tr.Touch(0x100) {
		t.Error("returning to a previous line must be new again (only consecutive dedup)")
	}
	tr.Reset()
	if !tr.Touch(0x100) {
		t.Error("touch after reset not new")
	}
}

func TestItemReset(t *testing.T) {
	it := Item{
		Acc:      []Access{{Addr: 1}, {Addr: 2}},
		Demand:   cpu.Demand{MemOps: 3},
		Units:    7,
		RepBytes: 9,
	}
	buf := it.Acc
	it.Reset()
	if len(it.Acc) != 0 || it.Units != 0 || it.RepBytes != 0 || it.Demand != (cpu.Demand{}) {
		t.Errorf("reset left %+v", it)
	}
	it.Acc = append(it.Acc, Access{Addr: 5})
	if &buf[0] != &it.Acc[0] {
		t.Error("reset dropped the access buffer (reallocates every item)")
	}
}

func TestProgramThreads(t *testing.T) {
	p := Program{Gens: make([]Generator, 5)}
	if p.Threads() != 5 {
		t.Errorf("threads %d", p.Threads())
	}
}

func TestAccessLineGranularity(t *testing.T) {
	if phys.LineOf(0x1234) != 0x1200 {
		t.Errorf("line of 0x1234 = %#x", phys.LineOf(0x1234))
	}
}
