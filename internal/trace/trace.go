// Package trace defines the interface between kernels and the machine
// model: a kernel compiles, per simulated thread, into a Generator that
// yields work items. A work item is a short burst of execution — typically
// the production of one destination cache line — consisting of the new
// cache-line accesses it triggers (element-level spatial locality is
// folded away here, playing the role of the L1) and the instruction demand
// it places on the core's shared pipelines.
package trace

import (
	"repro/internal/cpu"
	"repro/internal/phys"
)

// Access is a single line-granular memory reference.
type Access struct {
	Addr  phys.Addr
	Write bool // a store: write-allocate (read-for-ownership) then dirty
}

// Item is one unit of strand progress.
type Item struct {
	Acc      []Access   // line accesses, in program order
	Demand   cpu.Demand // instruction demand of the burst
	Units    int64      // completed work units (elements or lattice sites)
	RepBytes int64      // bytes the benchmark *reports* for this burst
}

// Reset empties the item for reuse without freeing its access buffer.
func (it *Item) Reset() {
	it.Acc = it.Acc[:0]
	it.Demand = cpu.Demand{}
	it.Units = 0
	it.RepBytes = 0
}

// Generator produces the work-item stream of one simulated thread.
// Next fills it and returns false when the thread is out of work. The chip
// calls Next in simulation-time order, so generators backed by dynamic
// schedulers see the same grab order a real work queue would.
type Generator interface {
	Next(it *Item) bool
}

// Program is a complete parallel kernel instance: one generator per thread.
type Program struct {
	Label string
	Gens  []Generator
	// WarmLines, if positive, asks the machine to pre-fill the L2 with
	// that many dirty lines of unrelated data before timing starts, so a
	// single sweep measures steady-state capacity-eviction and writeback
	// behaviour (the state a real benchmark reaches after its warm-up
	// iterations).
	WarmLines int64
}

// Threads returns the team size.
func (p *Program) Threads() int { return len(p.Gens) }

// LineTracker deduplicates consecutive accesses to the same line of one
// stream, emulating the spatial-locality filtering a tiny L1 performs on a
// unit-stride stream. The zero value is ready to use.
type LineTracker struct {
	last  phys.Addr
	valid bool
}

// Touch reports whether addr falls on a new line for this stream and
// records it. The first call always reports true.
func (t *LineTracker) Touch(addr phys.Addr) bool {
	line := phys.LineOf(addr)
	if t.valid && line == t.last {
		return false
	}
	t.last = line
	t.valid = true
	return true
}

// Reset forgets the tracked line.
func (t *LineTracker) Reset() { t.valid = false }
