// Package trace defines the interface between kernels and the machine
// model: a kernel compiles, per simulated thread, into a Generator that
// yields work items. A work item is a short burst of execution — typically
// the production of one destination cache line — consisting of the new
// cache-line accesses it triggers (element-level spatial locality is
// folded away here, playing the role of the L1) and the instruction demand
// it places on the core's shared pipelines.
package trace

import (
	"repro/internal/cpu"
	"repro/internal/phys"
)

// Access is a single line-granular memory reference.
type Access struct {
	Addr  phys.Addr
	Write bool // a store: write-allocate (read-for-ownership) then dirty
}

// Item is one unit of strand progress.
type Item struct {
	Acc      []Access   // line accesses, in program order
	Demand   cpu.Demand // instruction demand of the burst
	Units    int64      // completed work units (elements or lattice sites)
	RepBytes int64      // bytes the benchmark *reports* for this burst
}

// Reset empties the item for reuse without freeing its access buffer.
func (it *Item) Reset() {
	it.Acc = it.Acc[:0]
	it.Demand = cpu.Demand{}
	it.Units = 0
	it.RepBytes = 0
}

// Generator produces the work-item stream of one simulated thread.
// Next fills it and returns false when the thread is out of work. The chip
// calls Next in simulation-time order, so generators backed by dynamic
// schedulers see the same grab order a real work queue would.
type Generator interface {
	Next(it *Item) bool
}

// Fingerprint accumulates a 64-bit FNV-1a hash over the machine state that
// determines future steady-state behaviour. The chip folds engine, cursor
// and strand state into one; generators contribute their pattern phase
// through Forwardable.PatternPhase.
type Fingerprint uint64

// NewFingerprint returns the hash seeded with the FNV offset basis.
func NewFingerprint() Fingerprint { return 14695981039346656037 }

// Fold mixes one word into the hash.
func (f *Fingerprint) Fold(v uint64) { *f = (*f ^ Fingerprint(v)) * 1099511628211 }

// FoldAddr mixes an address reduced modulo window — the spatial phase that
// determines which bank, controller and line boundary the address hits,
// without pinning its absolute position (which never recurs in a
// streaming kernel). window must be positive; interleave periods are
// powers of two, so the reduction is a mask on that path.
func (f *Fingerprint) FoldAddr(a phys.Addr, window int64) {
	if window&(window-1) == 0 {
		f.Fold(uint64(a) & uint64(window-1))
		return
	}
	f.Fold(uint64(a) % uint64(window))
}

// Forwardable is the optional generator capability behind the machine's
// steady-state fast-forward. A generator that implements it promises that
// within the next UniformRemaining() items its output is a fixed pattern:
// per-item demand, unit and access counts recur with a small per-stream
// period, and every access address advances by a constant per-item stride
// — the conditions under which a detected machine-state period extrapolates
// exactly. Skip(n) must leave the generator in precisely the state n
// Next calls would have, for any n <= UniformRemaining(); the per-generator
// property tests in kernels, jacobi and lbm pin that equivalence.
type Forwardable interface {
	Generator
	// UniformRemaining returns how many upcoming items are guaranteed to
	// continue the current uniform pattern — items up to, but never
	// across, the next irregularity (a chunk, row, segment or sweep
	// boundary, or a partial trailing item).
	UniformRemaining() int64
	// Skip advances past n items without producing them.
	Skip(n int64)
	// ItemStride returns the constant per-item byte advance of every
	// access address within the uniform region — the stride by which the
	// machine shifts a strand's in-flight accesses when it skips items
	// under that strand.
	ItemStride() int64
	// PatternPhase folds the generator's pattern-relevant state into f:
	// upcoming access addresses and tracker state modulo window, plus any
	// discrete mode (grid-toggle parity, pending chunk-entry overhead).
	PatternPhase(f *Fingerprint, window int64)
}

// IterForwardable is the iteration-granular counterpart of Forwardable,
// implemented by stencil generators (Jacobi 2D/3D, LBM) whose items are
// never individually uniform — neighbouring row-steps re-touch each
// other's boundary lines — but whose *outer iterations* (one x-row of the
// sweep) translate by a constant byte stride while the thread stays inside
// a uniform region. The machine fingerprints state only at the leader's
// iteration boundaries and, on a validated recurrence, skips whole
// iterations: the reuse inside an iteration is simulated or replayed
// verbatim, never extrapolated, which is what makes reuse-ful kernels
// eligible at this granularity (see DESIGN.md Sect. 11).
//
// The promises, for the current uniform region: every access address the
// next ItersRemaining() iterations emit is the previous iteration's image
// shifted by IterStride() bytes; iterations have identical item structure
// (IterItems() items, same per-item demand and access counts); and
// SkipIters(n) leaves the generator in exactly the state n iterations of
// Next calls would have, provided n*IterStride() is a multiple of the
// line size (so shifted tracker lines stay line-exact — the machine's
// interleave-period alignment guarantee subsumes this).
type IterForwardable interface {
	Generator
	// AtIterBoundary reports whether the generator sits exactly between
	// two iterations: the last item of a row has been produced and the
	// first item of the next has not.
	AtIterBoundary() bool
	// IterStride returns the constant per-iteration byte advance shared by
	// every access address within the current uniform region, or 0 when no
	// uniform region is active.
	IterStride() int64
	// IterItems returns the number of work items in one iteration.
	IterItems() int64
	// ItersRemaining returns how many further whole iterations are
	// guaranteed to continue the uniform pattern — iterations up to, but
	// never across, the next irregularity (a plane wrap, chunk edge or
	// sweep boundary).
	ItersRemaining() int64
	// SkipIters advances the generator n whole iterations in place,
	// keeping the intra-iteration position (mid-item column or boundary
	// state). n must not exceed ItersRemaining().
	SkipIters(n int64)
	// IterRef returns the reference address anchoring the current
	// iteration — an address that advances by exactly IterStride() per
	// iteration. The machine folds all addresses relative to the leader's
	// reference, which is what lets iteration periods whose stride is not
	// a multiple of the interleave period still recur (as a bank/controller
	// rotation — see chip's rotation-canonical fingerprint).
	IterRef() phys.Addr
	// IterPhase folds the generator's pattern-relevant state into f
	// relative to ref: row anchors and tracker lines as offsets from ref
	// modulo window, plus discrete mode (intra-row position, grid-toggle
	// parity).
	IterPhase(f *Fingerprint, window int64, ref phys.Addr)
}

// Program is a complete parallel kernel instance: one generator per thread.
type Program struct {
	Label string
	Gens  []Generator
	// WarmLines, if positive, asks the machine to pre-fill the L2 with
	// that many dirty lines of unrelated data before timing starts, so a
	// single sweep measures steady-state capacity-eviction and writeback
	// behaviour (the state a real benchmark reaches after its warm-up
	// iterations).
	WarmLines int64
	// SharedSched marks programs whose generators pull work from shared,
	// order-sensitive scheduler state (OpenMP dynamic/guided
	// self-scheduling). Such generators must be consumed in global
	// simulation-time order; the chip's sharded engine, which drains each
	// shard's generators independently, falls back to the sequential engine
	// when this is set. Kernels set it from omp.Schedule.PerThread.
	SharedSched bool
}

// Threads returns the team size.
func (p *Program) Threads() int { return len(p.Gens) }

// LineTracker deduplicates consecutive accesses to the same line of one
// stream, emulating the spatial-locality filtering a tiny L1 performs on a
// unit-stride stream. The zero value is ready to use.
type LineTracker struct {
	last  phys.Addr
	valid bool
}

// Touch reports whether addr falls on a new line for this stream and
// records it. The first call always reports true.
func (t *LineTracker) Touch(addr phys.Addr) bool {
	line := phys.LineOf(addr)
	if t.valid && line == t.last {
		return false
	}
	t.last = line
	t.valid = true
	return true
}

// Reset forgets the tracked line.
func (t *LineTracker) Reset() { t.valid = false }

// Set records the line containing addr as the tracked line, exactly as if
// Touch had just accepted it — the state-reconstruction hook Forwardable
// generators use in Skip.
func (t *LineTracker) Set(addr phys.Addr) {
	t.last = phys.LineOf(addr)
	t.valid = true
}

// Phase folds the tracker's state into f: validity plus the tracked line's
// spatial phase modulo window.
func (t *LineTracker) Phase(f *Fingerprint, window int64) {
	if !t.valid {
		f.Fold(0)
		return
	}
	f.Fold(1)
	f.FoldAddr(t.last, window)
}

// PhaseRel folds the tracker's state into f relative to ref: validity plus
// the tracked line's offset from ref modulo window — the reference-relative
// fold of the iteration-boundary fingerprint.
func (t *LineTracker) PhaseRel(f *Fingerprint, window int64, ref phys.Addr) {
	if !t.valid {
		f.Fold(0)
		return
	}
	f.Fold(1)
	f.FoldAddr(t.last-ref, window)
}

// Shift translates the tracked line by delta bytes — the state-
// reconstruction hook IterForwardable generators use in SkipIters. delta
// must be a multiple of the line size, so the result is exactly the line a
// Next-driven generator would be tracking at the shifted position.
func (t *LineTracker) Shift(delta phys.Addr) {
	if t.valid {
		t.last += delta
	}
}
