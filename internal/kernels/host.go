// Package kernels provides the bandwidth benchmark kernels of Sects. 2.1
// and 2.2 — the four McCalpin STREAM operations and the Schönauer vector
// triad — in two forms: real host implementations (used for numerical
// validation and host-side iterator-overhead measurements) and trace
// compilers that turn a kernel plus array placement into a per-thread
// work-item program for the simulated T2.
package kernels

import "sync"

// Copy performs the STREAM copy c = a.
func Copy(c, a []float64) {
	for i := range c {
		c[i] = a[i]
	}
}

// Scale performs the STREAM scale b = s*c.
func Scale(b, c []float64, s float64) {
	for i := range b {
		b[i] = s * c[i]
	}
}

// Add performs the STREAM add c = a + b.
func Add(c, a, b []float64) {
	for i := range c {
		c[i] = a[i] + b[i]
	}
}

// Triad performs the STREAM triad a = b + s*c.
func Triad(a, b, c []float64, s float64) {
	for i := range a {
		a[i] = b[i] + s*c[i]
	}
}

// VectorTriad performs the Schönauer vector triad a = b + c*d, the
// three-read-stream kernel of Sect. 2.2.
func VectorTriad(a, b, c, d []float64) {
	for i := range a {
		a[i] = b[i] + c[i]*d[i]
	}
}

// Parallel runs body(lo, hi) over [0, n) split into contiguous blocks
// across the given number of goroutines, mirroring a static OpenMP
// parallel-for on the host.
func Parallel(n, threads int, body func(lo, hi int)) {
	if threads <= 1 || n <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	q, r := n/threads, n%threads
	lo := 0
	for t := 0; t < threads; t++ {
		hi := lo + q
		if t < r {
			hi++
		}
		if hi > lo {
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				body(lo, hi)
			}(lo, hi)
		}
		lo = hi
	}
	wg.Wait()
}
