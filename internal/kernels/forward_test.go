package kernels

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/segarray"
	"repro/internal/trace"
)

// items drains a generator into a flat item list (deep copies).
func items(g trace.Generator) []trace.Item {
	var out []trace.Item
	var it trace.Item
	for {
		it.Reset()
		if !g.Next(&it) {
			return out
		}
		cp := trace.Item{
			Acc:      append([]trace.Access(nil), it.Acc...),
			Demand:   it.Demand,
			Units:    it.Units,
			RepBytes: it.RepBytes,
		}
		out = append(out, cp)
	}
}

// skipEquivalence runs the Forwardable contract check on one generator
// pair: drive the reference by Next alone; drive the subject by j Next
// calls, one Skip of up to UniformRemaining items, then Next to the end.
// The subject's tail must be byte-for-byte the reference's items j+m
// onward — Skip(m) must leave exactly the state m Next calls would.
func skipEquivalence(t *testing.T, ref, sub trace.Generator, j, skipFrac int) bool {
	t.Helper()
	want := items(ref)
	var it trace.Item
	for i := 0; i < j; i++ {
		it.Reset()
		if !sub.Next(&it) {
			return true // script shorter than j: nothing to check
		}
	}
	fw := sub.(trace.Forwardable)
	u := fw.UniformRemaining()
	if u < 0 {
		t.Fatalf("UniformRemaining negative: %d", u)
	}
	m := int64(0)
	if u > 0 {
		m = u*int64(skipFrac%100+1)/100 + 1
		if m > u {
			m = u
		}
	}
	fw.Skip(m)
	got := items(sub)
	tail := want[int64(j)+m:]
	if len(got) != len(tail) {
		t.Errorf("j=%d m=%d: %d items after skip, want %d", j, m, len(got), len(tail))
		return false
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], tail[i]) {
			t.Errorf("j=%d m=%d: item %d after skip differs:\n got  %+v\n want %+v", j, m, i, got[i], tail[i])
			return false
		}
	}
	return true
}

// TestStreamGenSkipEquivalence fuzzes Skip/UniformRemaining on the plain
// stream generator across offsets, team sizes, positions and skip widths.
func TestStreamGenSkipEquivalence(t *testing.T) {
	f := func(offB, thB, jB, fracB uint8) bool {
		off := int64(offB % 64)
		threads := int(thB%7) + 1
		const n = 4096
		mk := func() trace.Generator {
			sp := alloc.NewSpace()
			bases := sp.Common(3, n+off, phys.WordSize)
			k := StreamTriad(bases[0], bases[1], bases[2], n)
			k.Sweeps = 1 + int(thB%2)
			return k.Program(omp.StaticBlock{}, threads).Gens[int(jB)%threads]
		}
		return skipEquivalence(t, mk(), mk(), int(jB%80), int(fracB))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSegStreamGenSkipEquivalence fuzzes Skip/UniformRemaining on the
// segmented stream generator, including multi-sweep instances and
// per-array offsets.
func TestSegStreamGenSkipEquivalence(t *testing.T) {
	f := func(offB, thB, jB, fracB uint8) bool {
		threads := int(thB%5) + 1
		const n = 2048
		mk := func() trace.Generator {
			sp := alloc.NewSpace()
			segLens := segarray.EqualSegments(n, threads)
			var ls [4]*segarray.Layout
			for i := range ls {
				l := segarray.Plan(sp, segarray.Params{
					ElemSize: phys.WordSize,
					Align:    phys.PageSize,
					SegAlign: phys.PageSize,
					Offset:   int64(i) * int64(offB%128),
				}, segLens)
				ls[i] = &l
			}
			k := SegVTriad(ls[0], ls[1], ls[2], ls[3])
			k.SegOverhead = int64(offB % 2 * 30)
			k.Sweeps = 1 + int(thB%2)
			return k.Program(threads).Gens[int(jB)%threads]
		}
		return skipEquivalence(t, mk(), mk(), int(jB%80), int(fracB))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestProgramIntoRecyclesBuffers pins the scratch-pool contract: rebuilding
// a program into a previous one must reuse the generator records and
// produce exactly the item stream of a freshly built program.
func TestProgramIntoRecyclesBuffers(t *testing.T) {
	build := func(prev *trace.Program, off int64) *trace.Program {
		sp := alloc.NewSpace()
		const n = 1 << 12
		bases := sp.Common(3, n+off, phys.WordSize)
		k := StreamTriad(bases[0], bases[1], bases[2], n)
		return k.ProgramInto(prev, omp.StaticBlock{}, 8)
	}
	scratch := build(nil, 0)
	// Consume part of the program, then rebuild with a different offset.
	var it trace.Item
	for i := 0; i < 100; i++ {
		it.Reset()
		scratch.Gens[3].Next(&it)
	}
	recycled := build(scratch, 24)
	if recycled != scratch {
		t.Fatal("ProgramInto did not recycle the shape-compatible program")
	}
	fresh := build(nil, 24)
	for g := range fresh.Gens {
		got := items(recycled.Gens[g])
		want := items(fresh.Gens[g])
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("recycled generator %d produced a different item stream", g)
		}
	}
	if fresh.Label != recycled.Label {
		t.Errorf("labels differ: %q vs %q", recycled.Label, fresh.Label)
	}
}
