package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/segarray"
	"repro/internal/trace"
)

// ---- host kernels -----------------------------------------------------------

func TestHostKernels(t *testing.T) {
	n := 100
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		b[i] = float64(i)
		c[i] = 2
		d[i] = float64(i) + 1
	}
	Copy(a, b)
	if a[7] != 7 {
		t.Error("copy")
	}
	Scale(a, c, 3)
	if a[7] != 6 {
		t.Error("scale")
	}
	Add(a, b, c)
	if a[7] != 9 {
		t.Error("add")
	}
	Triad(a, b, c, 3)
	if a[7] != 13 {
		t.Error("triad")
	}
	VectorTriad(a, b, c, d)
	if a[7] != 7+2*8 {
		t.Error("vector triad")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	f := func(seed uint8, threads8 uint8) bool {
		n := int(seed)*7 + 100
		threads := int(threads8%8) + 1
		a1 := make([]float64, n)
		a2 := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		for i := range b {
			b[i] = float64(i % 13)
			c[i] = float64(i % 7)
		}
		Triad(a1, b, c, 2.5)
		Parallel(n, threads, func(lo, hi int) {
			Triad(a2[lo:hi], b[lo:hi], c[lo:hi], 2.5)
		})
		for i := range a1 {
			if math.Abs(a1[i]-a2[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// ---- trace generators --------------------------------------------------------

// collect drains a program and returns all accesses per thread.
func collect(p *trace.Program) [][]trace.Access {
	out := make([][]trace.Access, len(p.Gens))
	for t, g := range p.Gens {
		var it trace.Item
		for {
			it.Reset()
			if !g.Next(&it) {
				break
			}
			out[t] = append(out[t], append([]trace.Access(nil), it.Acc...)...)
		}
	}
	return out
}

func TestStreamGenCoversAllLines(t *testing.T) {
	n := int64(1024)
	base := phys.Addr(0x10000)
	k := StreamCopy(base+phys.Addr(n*8), base, n)
	acc := collect(k.Program(omp.StaticBlock{}, 4))
	reads := map[phys.Addr]int{}
	writes := map[phys.Addr]int{}
	for _, th := range acc {
		for _, a := range th {
			if a.Write {
				writes[a.Addr]++
			} else {
				reads[a.Addr]++
			}
		}
	}
	wantLines := int(n * 8 / phys.LineSize)
	if len(reads) != wantLines || len(writes) != wantLines {
		t.Fatalf("lines read %d written %d, want %d", len(reads), len(writes), wantLines)
	}
	for l, c := range reads {
		if c != 1 {
			t.Fatalf("line %#x read %d times", l, c)
		}
	}
}

func TestStreamGenMisalignedBase(t *testing.T) {
	// A base offset that is not line-aligned must still cover every line
	// exactly once, including the extra partial lines at the edges.
	n := int64(512)
	base := phys.Addr(0x10000) + 104
	k := LoadSum([]phys.Addr{base}, n)
	acc := collect(k.Program(omp.StaticBlock{}, 1))
	lines := map[phys.Addr]bool{}
	for _, a := range acc[0] {
		lines[a.Addr] = true
	}
	first := phys.LineOf(base)
	last := phys.LineOf(base + phys.Addr((n-1)*8))
	want := int((last-first)/phys.LineSize) + 1
	if len(lines) != want {
		t.Errorf("covered %d lines, want %d", len(lines), want)
	}
}

func TestStreamGenUnitsAndBytes(t *testing.T) {
	n := int64(4096)
	k := StreamTriad(0x20000, 0x40000, 0x60000, n)
	k.Sweeps = 2
	p := k.Program(omp.StaticBlock{}, 8)
	var units, rep int64
	var it trace.Item
	for _, g := range p.Gens {
		for {
			it.Reset()
			if !g.Next(&it) {
				break
			}
			units += it.Units
			rep += it.RepBytes
		}
	}
	if units != 2*n {
		t.Errorf("units %d, want %d", units, 2*n)
	}
	if rep != 2*n*24 {
		t.Errorf("reported bytes %d, want %d", rep, 2*n*24)
	}
}

func TestSegStreamMatchesLayout(t *testing.T) {
	sp := alloc.NewSpace()
	threads := 4
	segLens := segarray.EqualSegments(1000, threads)
	mk := func(off int64) *segarray.Layout {
		l := segarray.Plan(sp, segarray.Params{
			ElemSize: 8, Align: phys.PageSize, SegAlign: phys.PageSize, Offset: off,
		}, segLens)
		return &l
	}
	a, b, c, d := mk(0), mk(128), mk(256), mk(384)
	k := SegVTriad(a, b, c, d)
	p := k.Program(threads)
	acc := collect(p)
	// Every thread's first read must be the first line of segment t of b.
	for th := range acc {
		if len(acc[th]) == 0 {
			t.Fatalf("thread %d produced no accesses", th)
		}
		want := phys.LineOf(b.Segs[th].Start)
		if acc[th][0].Addr != want {
			t.Errorf("thread %d first access %#x, want %#x", th, acc[th][0].Addr, want)
		}
	}
	// Total write lines = lines of a's segments.
	writes := map[phys.Addr]bool{}
	for _, th := range acc {
		for _, x := range th {
			if x.Write {
				writes[x.Addr] = true
			}
		}
	}
	var want int
	for s := range a.Segs {
		first := phys.LineOf(a.Segs[s].Start)
		last := phys.LineOf(a.SegAddr(s, a.Segs[s].Len-1))
		want += int((last-first)/phys.LineSize) + 1
	}
	if len(writes) != want {
		t.Errorf("write lines %d, want %d", len(writes), want)
	}
}

func TestSegStreamThreadMismatchPanics(t *testing.T) {
	sp := alloc.NewSpace()
	l := segarray.Plan(sp, segarray.Params{ElemSize: 8}, segarray.EqualSegments(100, 4))
	k := SegVTriad(&l, &l, &l, &l)
	defer func() {
		if recover() == nil {
			t.Error("segment/thread mismatch did not panic")
		}
	}()
	k.Program(8)
}

func TestStreamsCount(t *testing.T) {
	k := VTriad(0, 1<<20, 2<<20, 3<<20, 100)
	if k.Streams() != 4 {
		t.Errorf("vtriad streams %d", k.Streams())
	}
	l := LoadSum([]phys.Addr{0, 1 << 20}, 100)
	if l.Streams() != 2 {
		t.Errorf("loadsum streams %d", l.Streams())
	}
}
