package kernels

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/phys"
	"repro/internal/segarray"
	"repro/internal/trace"
)

// SegStream is a streaming kernel over segmented arrays with the paper's
// manual scheduling: the number of segments equals the number of threads
// and thread t processes segment t of every array (Sect. 2.2). Because
// each segment's base address is individually placeable, this is the form
// in which alignment, padding, shift and offset take effect per thread —
// page-aligning all segments locks every thread to the same controller
// phase (the Fig. 4 worst case), per-array offsets spread them (the Fig. 4
// optimum).
type SegStream struct {
	Name     string
	Reads    []*segarray.Layout
	Write    *segarray.Layout // nil for load-only kernels
	PerElem  cpu.Demand
	RepPerEl int64
	// SegOverhead charges extra integer operations at each segment entry —
	// the segmented-iterator dispatch cost measured in Fig. 5.
	SegOverhead int64
	Sweeps      int
}

// SegVTriad builds the segmented vector triad a = b + c*d.
func SegVTriad(a, b, c, d *segarray.Layout) SegStream {
	return SegStream{
		Name:     "segvtriad",
		Reads:    []*segarray.Layout{b, c, d},
		Write:    a,
		PerElem:  cpu.Demand{MemOps: 4, Flops: 2, IntOps: 1},
		RepPerEl: 32,
	}
}

// SegTriad builds the segmented STREAM triad a = b + s*c.
func SegTriad(a, b, c *segarray.Layout) SegStream {
	return SegStream{
		Name:     "segtriad",
		Reads:    []*segarray.Layout{b, c},
		Write:    a,
		PerElem:  cpu.Demand{MemOps: 3, Flops: 2, IntOps: 1},
		RepPerEl: 24,
	}
}

// Program compiles the kernel; the team size must equal the segment count.
func (k *SegStream) Program(threads int) *trace.Program {
	check := func(l *segarray.Layout) {
		if len(l.Segs) != threads {
			panic(fmt.Sprintf("kernels: %d segments for %d threads", len(l.Segs), threads))
		}
	}
	for _, l := range k.Reads {
		check(l)
	}
	if k.Write != nil {
		check(k.Write)
	}
	sweeps := k.Sweeps
	if sweeps < 1 {
		sweeps = 1
	}
	p := &trace.Program{Label: fmt.Sprintf("%s/%s/t=%d", k.Name, "segmented", threads)}
	for t := 0; t < threads; t++ {
		p.Gens = append(p.Gens, &segStreamGen{k: k, thread: t, sweeps: sweeps,
			readTr: make([]trace.LineTracker, len(k.Reads))})
	}
	return p
}

type segStreamGen struct {
	k       *SegStream
	thread  int
	sweeps  int
	sweep   int
	i       int64
	started bool
	fresh   bool
	readTr  []trace.LineTracker
	writeTr trace.LineTracker
}

func (g *segStreamGen) segLen() int64 {
	if g.k.Write != nil {
		return g.k.Write.Segs[g.thread].Len
	}
	return g.k.Reads[0].Segs[g.thread].Len
}

func (g *segStreamGen) Next(it *trace.Item) bool {
	n := g.segLen()
	if !g.started || g.i >= n {
		if g.started {
			g.sweep++
		}
		if g.sweep >= g.sweeps {
			return false
		}
		g.started = true
		g.i = 0
		g.fresh = true
		for r := range g.readTr {
			g.readTr[r].Reset()
		}
		g.writeTr.Reset()
	}
	block := int64(phys.LineSize) / g.k.Reads[0].Params.ElemSize
	e := g.i + block
	if e > n {
		e = n
	}
	elems := e - g.i

	emit := func(l *segarray.Layout, tr *trace.LineTracker, write bool) {
		first := phys.LineOf(l.SegAddr(g.thread, g.i))
		last := phys.LineOf(l.SegAddr(g.thread, e-1))
		for a := first; a <= last; a += phys.LineSize {
			if tr.Touch(a) {
				it.Acc = append(it.Acc, trace.Access{Addr: a, Write: write})
			}
		}
	}
	for r := range g.k.Reads {
		emit(g.k.Reads[r], &g.readTr[r], false)
	}
	if g.k.Write != nil {
		emit(g.k.Write, &g.writeTr, true)
	}

	it.Demand = g.k.PerElem.Scale(elems)
	if g.fresh && g.k.SegOverhead > 0 {
		it.Demand.IntOps += g.k.SegOverhead
		g.fresh = false
	}
	it.Units = elems
	it.RepBytes = g.k.RepPerEl * elems
	g.i = e
	return true
}

// UniformRemaining reports the full items left in the current segment
// sweep; the sweep restart (tracker reset, possible SegOverhead) is the
// excluded irregularity.
func (g *segStreamGen) UniformRemaining() int64 {
	if !g.started || g.i == 0 {
		return 0
	}
	block := int64(phys.LineSize) / g.k.Reads[0].Params.ElemSize
	return (g.segLen() - g.i) / block
}

// Skip implements trace.Forwardable; see streamGen.Skip.
func (g *segStreamGen) Skip(n int64) {
	if n <= 0 {
		return
	}
	block := int64(phys.LineSize) / g.k.Reads[0].Params.ElemSize
	e := g.i + n*block
	for r := range g.readTr {
		g.readTr[r].Set(g.k.Reads[r].SegAddr(g.thread, e-1))
	}
	if g.k.Write != nil {
		g.writeTr.Set(g.k.Write.SegAddr(g.thread, e-1))
	}
	g.i = e
}

// ItemStride implements trace.Forwardable: every segment stream advances
// one line per item.
func (g *segStreamGen) ItemStride() int64 { return phys.LineSize }

// PatternPhase folds each segment stream's next-access and tracker phase.
// Sweep identity is deliberately absent: every sweep replays the same
// addresses, and the sweep edge is fenced off by UniformRemaining.
func (g *segStreamGen) PatternPhase(f *trace.Fingerprint, window int64) {
	if !g.started || g.i >= g.segLen() {
		f.Fold(0)
		return
	}
	f.Fold(1)
	for r := range g.readTr {
		f.FoldAddr(g.k.Reads[r].SegAddr(g.thread, g.i), window)
		g.readTr[r].Phase(f, window)
	}
	if g.k.Write != nil {
		f.FoldAddr(g.k.Write.SegAddr(g.thread, g.i), window)
		g.writeTr.Phase(f, window)
	}
	ur := g.UniformRemaining()
	if ur > 2 {
		ur = 2
	}
	f.Fold(uint64(ur))
}
