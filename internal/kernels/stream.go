package kernels

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/trace"
)

// Stream is a simulated streaming kernel: a set of unit-stride read
// streams, at most one write stream, all traversed with a common index over
// [0, N). It covers the four STREAM kernels, the vector triad, and the
// load-only kernels of [4].
type Stream struct {
	Name      string
	ReadBases []phys.Addr
	WriteBase phys.Addr
	HasWrite  bool
	N         int64
	ElemSize  int64
	PerElem   cpu.Demand // demand per element
	RepPerEl  int64      // benchmark-reported bytes per element
	// SegOverhead, if positive, adds this many integer ops at every chunk
	// entry — the loop-setup cost of a segmented iterator (Fig. 5).
	SegOverhead int64
	// Sweeps is the number of passes over the arrays (STREAM's ntimes);
	// values < 1 mean one pass. More than one pass brings writeback
	// traffic to steady state.
	Sweeps int
}

// StreamCopy builds the STREAM copy kernel c = a.
func StreamCopy(c, a phys.Addr, n int64) Stream {
	return Stream{
		Name: "copy", ReadBases: []phys.Addr{a}, WriteBase: c, HasWrite: true,
		N: n, ElemSize: phys.WordSize,
		PerElem: cpu.Demand{MemOps: 2, IntOps: 1}, RepPerEl: 16,
	}
}

// StreamScale builds the STREAM scale kernel b = s*c.
func StreamScale(b, c phys.Addr, n int64) Stream {
	return Stream{
		Name: "scale", ReadBases: []phys.Addr{c}, WriteBase: b, HasWrite: true,
		N: n, ElemSize: phys.WordSize,
		PerElem: cpu.Demand{MemOps: 2, Flops: 1, IntOps: 1}, RepPerEl: 16,
	}
}

// StreamAdd builds the STREAM add kernel c = a + b.
func StreamAdd(c, a, b phys.Addr, n int64) Stream {
	return Stream{
		Name: "add", ReadBases: []phys.Addr{a, b}, WriteBase: c, HasWrite: true,
		N: n, ElemSize: phys.WordSize,
		PerElem: cpu.Demand{MemOps: 3, Flops: 1, IntOps: 1}, RepPerEl: 24,
	}
}

// StreamTriad builds the STREAM triad kernel a = b + s*c.
func StreamTriad(a, b, c phys.Addr, n int64) Stream {
	return Stream{
		Name: "triad", ReadBases: []phys.Addr{b, c}, WriteBase: a, HasWrite: true,
		N: n, ElemSize: phys.WordSize,
		PerElem: cpu.Demand{MemOps: 3, Flops: 2, IntOps: 1}, RepPerEl: 24,
	}
}

// VTriad builds the Schönauer vector triad a = b + c*d (three read
// streams, Sect. 2.2).
func VTriad(a, b, c, d phys.Addr, n int64) Stream {
	return Stream{
		Name: "vtriad", ReadBases: []phys.Addr{b, c, d}, WriteBase: a, HasWrite: true,
		N: n, ElemSize: phys.WordSize,
		PerElem: cpu.Demand{MemOps: 4, Flops: 2, IntOps: 1}, RepPerEl: 32,
	}
}

// LoadSum builds a load-only reduction over the given streams — the
// "almost exclusively dominated by loads" kernel class of [4] that avoids
// the bidirectional-transfer overhead.
func LoadSum(bases []phys.Addr, n int64) Stream {
	return Stream{
		Name: "loadsum", ReadBases: bases,
		N: n, ElemSize: phys.WordSize,
		PerElem:  cpu.Demand{MemOps: int64(len(bases)), Flops: int64(len(bases)), IntOps: 1},
		RepPerEl: int64(len(bases)) * 8,
	}
}

// Streams returns the number of concurrent streams (reads plus write).
func (k *Stream) Streams() int {
	n := len(k.ReadBases)
	if k.HasWrite {
		n++
	}
	return n
}

// Program compiles the kernel into a per-thread work-item program under the
// given schedule and team size.
func (k *Stream) Program(sched omp.Schedule, threads int) *trace.Program {
	return k.ProgramInto(nil, sched, threads)
}

// ProgramInto compiles the kernel like Program, but recycles the program,
// generator and tracker buffers of prev — a program previously built by
// this method (or Program) for the same thread count and stream shape.
// Sweep harnesses hand the same scratch program to every point of an
// offset sweep, turning per-point program construction into a handful of
// field writes. A nil or shape-incompatible prev falls back to fresh
// allocation. The kernel value is copied, so the caller may mutate k
// afterwards without disturbing the compiled program.
func (k *Stream) ProgramInto(prev *trace.Program, sched omp.Schedule, threads int) *trace.Program {
	if threads <= 0 {
		panic(fmt.Sprintf("kernels: %d threads", threads))
	}
	sweeps := k.Sweeps
	if sweeps < 1 {
		sweeps = 1
	}
	p := prev
	reuse := p != nil && len(p.Gens) == threads
	if reuse {
		for _, g := range p.Gens {
			sg, ok := g.(*streamGen)
			if !ok || len(sg.readTr) != len(k.ReadBases) || len(sg.asns) != sweeps {
				reuse = false
				break
			}
		}
	}
	if !reuse {
		shared := make([]omp.Assigner, sweeps)
		p = &trace.Program{Gens: make([]trace.Generator, 0, threads)}
		for t := 0; t < threads; t++ {
			p.Gens = append(p.Gens, &streamGen{
				asns:   shared,
				readTr: make([]trace.LineTracker, len(k.ReadBases)),
			})
		}
	}
	kc := *k
	// One shared assigner per sweep so that self-scheduling policies keep
	// their work-queue semantics across the team.
	asns := p.Gens[0].(*streamGen).asns
	for s := range asns {
		asns[s] = sched.Assigner(kc.N, threads)
	}
	p.Label = fmt.Sprintf("%s/N=%d/%s/t=%d", kc.Name, kc.N, sched.String(), threads)
	p.WarmLines = 0
	p.SharedSched = !sched.PerThread()
	for t := 0; t < threads; t++ {
		g := p.Gens[t].(*streamGen)
		tr := g.readTr
		for i := range tr {
			tr[i].Reset()
		}
		*g = streamGen{k: &kc, asns: asns, thread: t, readTr: tr}
	}
	return p
}

// streamGen yields work items of up to one destination line (eight
// double-precision elements) per call.
type streamGen struct {
	k       *Stream
	asns    []omp.Assigner // one per sweep
	sweep   int
	thread  int
	cur     omp.Chunk
	has     bool
	i       int64
	fresh   bool // new chunk: reset line trackers, charge SegOverhead
	readTr  []trace.LineTracker
	writeTr trace.LineTracker
}

func (g *streamGen) Next(it *trace.Item) bool {
	for !g.has {
		if g.sweep >= len(g.asns) {
			return false
		}
		c, ok := g.asns[g.sweep].Next(g.thread)
		if !ok {
			g.sweep++
			continue
		}
		g.cur, g.has, g.i, g.fresh = c, true, c.Lo, true
		for r := range g.readTr {
			g.readTr[r].Reset()
		}
		g.writeTr.Reset()
	}
	block := int64(phys.LineSize) / g.k.ElemSize
	e := g.i + block
	if e > g.cur.Hi {
		e = g.cur.Hi
	}
	elems := e - g.i

	emit := func(base phys.Addr, tr *trace.LineTracker, write bool) {
		first := phys.LineOf(base + phys.Addr(g.i*g.k.ElemSize))
		last := phys.LineOf(base + phys.Addr((e-1)*g.k.ElemSize))
		for l := first; l <= last; l += phys.LineSize {
			if tr.Touch(l) {
				it.Acc = append(it.Acc, trace.Access{Addr: l, Write: write})
			}
		}
	}
	for r := range g.k.ReadBases {
		emit(g.k.ReadBases[r], &g.readTr[r], false)
	}
	if g.k.HasWrite {
		emit(g.k.WriteBase, &g.writeTr, true)
	}

	it.Demand = g.k.PerElem.Scale(elems)
	if g.fresh && g.k.SegOverhead > 0 {
		it.Demand.IntOps += g.k.SegOverhead
	}
	g.fresh = false
	it.Units = elems
	it.RepBytes = g.k.RepPerEl * elems

	g.i = e
	if g.i >= g.cur.Hi {
		g.has = false
	}
	return true
}

// UniformRemaining reports the full items left in the current chunk. Every
// mid-chunk item covers exactly one line-width of each stream (one new
// line per stream after tracker dedup), so the uniform region runs to the
// chunk end; the next chunk resets trackers and possibly charges
// SegOverhead, which is the irregularity the bound excludes.
func (g *streamGen) UniformRemaining() int64 {
	if !g.has {
		return 0
	}
	block := int64(phys.LineSize) / g.k.ElemSize
	return (g.cur.Hi - g.i) / block
}

// Skip implements trace.Forwardable: it advances the chunk position and
// rebuilds each stream's tracker to the line of the last skipped element —
// exactly the state n Next calls leave behind (pinned by the skip
// equivalence test).
func (g *streamGen) Skip(n int64) {
	if n <= 0 {
		return
	}
	block := int64(phys.LineSize) / g.k.ElemSize
	e := g.i + n*block
	last := phys.Addr((e - 1) * g.k.ElemSize)
	for r := range g.readTr {
		g.readTr[r].Set(g.k.ReadBases[r] + last)
	}
	if g.k.HasWrite {
		g.writeTr.Set(g.k.WriteBase + last)
	}
	g.i = e
	if g.i >= g.cur.Hi {
		g.has = false
	}
}

// ItemStride implements trace.Forwardable: every stream advances one line
// per item.
func (g *streamGen) ItemStride() int64 { return phys.LineSize }

// PatternPhase folds the spatial phase of every stream's next access and
// tracker, plus the has-work flag and a capped items-to-boundary count so
// states about to hit a chunk edge never alias with mid-chunk states.
func (g *streamGen) PatternPhase(f *trace.Fingerprint, window int64) {
	if !g.has {
		f.Fold(0)
		return
	}
	f.Fold(1)
	next := phys.Addr(g.i * g.k.ElemSize)
	for r := range g.readTr {
		f.FoldAddr(g.k.ReadBases[r]+next, window)
		g.readTr[r].Phase(f, window)
	}
	if g.k.HasWrite {
		f.FoldAddr(g.k.WriteBase+next, window)
		g.writeTr.Phase(f, window)
	}
	ur := g.UniformRemaining()
	if ur > 2 {
		ur = 2
	}
	f.Fold(uint64(ur))
}
