package kernels

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/trace"
)

// Stream is a simulated streaming kernel: a set of unit-stride read
// streams, at most one write stream, all traversed with a common index over
// [0, N). It covers the four STREAM kernels, the vector triad, and the
// load-only kernels of [4].
type Stream struct {
	Name      string
	ReadBases []phys.Addr
	WriteBase phys.Addr
	HasWrite  bool
	N         int64
	ElemSize  int64
	PerElem   cpu.Demand // demand per element
	RepPerEl  int64      // benchmark-reported bytes per element
	// SegOverhead, if positive, adds this many integer ops at every chunk
	// entry — the loop-setup cost of a segmented iterator (Fig. 5).
	SegOverhead int64
	// Sweeps is the number of passes over the arrays (STREAM's ntimes);
	// values < 1 mean one pass. More than one pass brings writeback
	// traffic to steady state.
	Sweeps int
}

// StreamCopy builds the STREAM copy kernel c = a.
func StreamCopy(c, a phys.Addr, n int64) Stream {
	return Stream{
		Name: "copy", ReadBases: []phys.Addr{a}, WriteBase: c, HasWrite: true,
		N: n, ElemSize: phys.WordSize,
		PerElem: cpu.Demand{MemOps: 2, IntOps: 1}, RepPerEl: 16,
	}
}

// StreamScale builds the STREAM scale kernel b = s*c.
func StreamScale(b, c phys.Addr, n int64) Stream {
	return Stream{
		Name: "scale", ReadBases: []phys.Addr{c}, WriteBase: b, HasWrite: true,
		N: n, ElemSize: phys.WordSize,
		PerElem: cpu.Demand{MemOps: 2, Flops: 1, IntOps: 1}, RepPerEl: 16,
	}
}

// StreamAdd builds the STREAM add kernel c = a + b.
func StreamAdd(c, a, b phys.Addr, n int64) Stream {
	return Stream{
		Name: "add", ReadBases: []phys.Addr{a, b}, WriteBase: c, HasWrite: true,
		N: n, ElemSize: phys.WordSize,
		PerElem: cpu.Demand{MemOps: 3, Flops: 1, IntOps: 1}, RepPerEl: 24,
	}
}

// StreamTriad builds the STREAM triad kernel a = b + s*c.
func StreamTriad(a, b, c phys.Addr, n int64) Stream {
	return Stream{
		Name: "triad", ReadBases: []phys.Addr{b, c}, WriteBase: a, HasWrite: true,
		N: n, ElemSize: phys.WordSize,
		PerElem: cpu.Demand{MemOps: 3, Flops: 2, IntOps: 1}, RepPerEl: 24,
	}
}

// VTriad builds the Schönauer vector triad a = b + c*d (three read
// streams, Sect. 2.2).
func VTriad(a, b, c, d phys.Addr, n int64) Stream {
	return Stream{
		Name: "vtriad", ReadBases: []phys.Addr{b, c, d}, WriteBase: a, HasWrite: true,
		N: n, ElemSize: phys.WordSize,
		PerElem: cpu.Demand{MemOps: 4, Flops: 2, IntOps: 1}, RepPerEl: 32,
	}
}

// LoadSum builds a load-only reduction over the given streams — the
// "almost exclusively dominated by loads" kernel class of [4] that avoids
// the bidirectional-transfer overhead.
func LoadSum(bases []phys.Addr, n int64) Stream {
	return Stream{
		Name: "loadsum", ReadBases: bases,
		N: n, ElemSize: phys.WordSize,
		PerElem:  cpu.Demand{MemOps: int64(len(bases)), Flops: int64(len(bases)), IntOps: 1},
		RepPerEl: int64(len(bases)) * 8,
	}
}

// Streams returns the number of concurrent streams (reads plus write).
func (k *Stream) Streams() int {
	n := len(k.ReadBases)
	if k.HasWrite {
		n++
	}
	return n
}

// Program compiles the kernel into a per-thread work-item program under the
// given schedule and team size.
func (k *Stream) Program(sched omp.Schedule, threads int) *trace.Program {
	if threads <= 0 {
		panic(fmt.Sprintf("kernels: %d threads", threads))
	}
	sweeps := k.Sweeps
	if sweeps < 1 {
		sweeps = 1
	}
	// One shared assigner per sweep so that self-scheduling policies keep
	// their work-queue semantics across the team.
	asns := make([]omp.Assigner, sweeps)
	for s := range asns {
		asns[s] = sched.Assigner(k.N, threads)
	}
	p := &trace.Program{Label: fmt.Sprintf("%s/N=%d/%s/t=%d", k.Name, k.N, sched.String(), threads)}
	for t := 0; t < threads; t++ {
		p.Gens = append(p.Gens, &streamGen{k: k, asns: asns, thread: t,
			readTr: make([]trace.LineTracker, len(k.ReadBases))})
	}
	return p
}

// streamGen yields work items of up to one destination line (eight
// double-precision elements) per call.
type streamGen struct {
	k       *Stream
	asns    []omp.Assigner // one per sweep
	sweep   int
	thread  int
	cur     omp.Chunk
	has     bool
	i       int64
	fresh   bool // new chunk: reset line trackers, charge SegOverhead
	readTr  []trace.LineTracker
	writeTr trace.LineTracker
}

func (g *streamGen) Next(it *trace.Item) bool {
	for !g.has {
		if g.sweep >= len(g.asns) {
			return false
		}
		c, ok := g.asns[g.sweep].Next(g.thread)
		if !ok {
			g.sweep++
			continue
		}
		g.cur, g.has, g.i, g.fresh = c, true, c.Lo, true
		for r := range g.readTr {
			g.readTr[r].Reset()
		}
		g.writeTr.Reset()
	}
	block := int64(phys.LineSize) / g.k.ElemSize
	e := g.i + block
	if e > g.cur.Hi {
		e = g.cur.Hi
	}
	elems := e - g.i

	emit := func(base phys.Addr, tr *trace.LineTracker, write bool) {
		first := phys.LineOf(base + phys.Addr(g.i*g.k.ElemSize))
		last := phys.LineOf(base + phys.Addr((e-1)*g.k.ElemSize))
		for l := first; l <= last; l += phys.LineSize {
			if tr.Touch(l) {
				it.Acc = append(it.Acc, trace.Access{Addr: l, Write: write})
			}
		}
	}
	for r := range g.k.ReadBases {
		emit(g.k.ReadBases[r], &g.readTr[r], false)
	}
	if g.k.HasWrite {
		emit(g.k.WriteBase, &g.writeTr, true)
	}

	it.Demand = g.k.PerElem.Scale(elems)
	if g.fresh && g.k.SegOverhead > 0 {
		it.Demand.IntOps += g.k.SegOverhead
	}
	g.fresh = false
	it.Units = elems
	it.RepBytes = g.k.RepPerEl * elems

	g.i = e
	if g.i >= g.cur.Hi {
		g.has = false
	}
	return true
}
