// Package machine is the profile registry: every named machine the
// simulator can model, each a complete, validated chip.Config derived
// from its address interleave. The paper's machine — the UltraSPARC T2
// with four memory controllers on a 512-byte interleave — is the "t2"
// profile; the others vary exactly the parameters the paper holds fixed
// (controller count, interleave granularity, hashed vs. bit-field
// mapping), so controller-scaling and granularity studies are one profile
// name away instead of a code change.
//
// Geometry is derived, never restated: a profile specifies its interleave
// and L2 capacity, and the bank count, controller count and analyzer
// period all follow from the mapping. Adding a machine scenario is one
// entry in the table below.
package machine

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cache"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/phys"
)

// DefaultName is the profile the CLIs use when none is requested.
const DefaultName = "t2"

// Profile is a named, validated machine description.
type Profile struct {
	Name   string
	Doc    string
	Config chip.Config
}

// Spec returns the analyzer's view of the machine: the address mapping
// and line size, from which internal/core derives periods, offsets and
// placements for this profile.
func (p Profile) Spec() core.MachineSpec {
	return core.MachineSpec{Mapping: p.Config.Mapping, LineSize: p.Config.L2.LineSize}
}

// config assembles a full machine description around a mapping: the
// calibrated T2 core array, crossbar and channel timings (DESIGN.md
// Sect. 6) with the cache and controller geometry derived from the
// interleave. The timing side is deliberately shared across profiles so
// that scaling studies vary one thing — the memory system's shape.
func config(m phys.Mapping, l2Bytes int64, l2Ways int) chip.Config {
	return chip.Config{
		Cores:          8,
		StrandsPerCore: 8,
		GroupsPerCore:  2,
		ClockHz:        1.2e9,
		XbarLatency:    3,
		L2HitLatency:   20,
		L2BankService:  4,
		L2:             cache.Derive(l2Bytes, l2Ways, m),
		Mem:            mem.Defaults(),
		Mapping:        m,
		MSHRPerStrand:  1,
		StoreBuffer:    8,
		RetryDelay:     24,
		RunAhead:       2,
	}
}

// t2L2Bytes and t2L2Ways are the UltraSPARC T2 L2 capacity every profile
// shares: 4 MB, 16-way.
const (
	t2L2Bytes = 4 << 20
	t2L2Ways  = 16
)

// profiles builds the registry in presentation order.
func profiles() []Profile {
	mk := func(name, doc string, m phys.Mapping) Profile {
		return Profile{Name: name, Doc: doc, Config: config(m, t2L2Bytes, t2L2Ways)}
	}
	return []Profile{
		mk("t2", "UltraSPARC T2: 4 controllers x 2 banks, 64 B granule, 512 B period (the paper's machine)",
			phys.T2()),
		mk("t2-1mc", "degraded T2 with a single controller: 1 x 2 banks, 128 B period (no interleave to alias against)",
			phys.NewInterleave("t2-1mc", phys.LineSize, 1, 2)),
		mk("t2-2mc", "degraded T2 with two controllers: 2 x 2 banks, 256 B period",
			phys.NewInterleave("t2-2mc", phys.LineSize, 2, 2)),
		mk("mc8", "hypothetical 8-controller chip: 8 x 2 banks, 64 B granule, 1 kB period",
			phys.NewInterleave("mc8", phys.LineSize, 8, 2)),
		mk("t2-wide1k", "T2 controllers on a coarse 1 kB interleave granule: 4 x 2 banks, 8 kB period",
			phys.NewInterleave("t2-wide1k", 1024, 4, 2)),
		mk("t2-wide4k", "T2 controllers on a page-like 4 kB interleave granule: 4 x 2 banks, 32 kB period",
			phys.NewInterleave("t2-wide4k", 4096, 4, 2)),
		mk("xor", "T2 geometry under a hashed (XOR-folded) interleave: the aliasing-ablation machine",
			phys.XORMapping{}),
		mk("single", "one controller, one bank, no interleave: the serialization baseline",
			phys.Single()),
	}
}

// The registry is built and validated once; profiles are immutable value
// descriptions, so handing out copies of the validated slice is safe.
var (
	registryOnce sync.Once
	registry     []Profile
)

func validated() []Profile {
	registryOnce.Do(func() {
		registry = profiles()
		for _, p := range registry {
			chip.New(p.Config)                       // topology validation
			cache.New(p.Config.L2, p.Config.Mapping) // geometry + mapping validation
			mem.New(p.Config.Mem, p.Config.Mapping)
		}
	})
	return registry
}

// Profiles returns every registered profile in presentation order, each
// validated by constructing its machine (an invalid registry entry panics
// on first use rather than deep inside a sweep).
func Profiles() []Profile {
	ps := validated()
	out := make([]Profile, len(ps))
	copy(out, ps)
	return out
}

// Names returns the registered profile names, sorted.
func Names() []string {
	ps := validated()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

// Get returns the named profile, validated.
func Get(name string) (Profile, error) {
	for _, p := range validated() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("machine: unknown profile %q (have %v)", name, Names())
}

// MustGet is Get for callers whose profile name is static.
func MustGet(name string) Profile {
	p, err := Get(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Tag returns the profile name as it is stamped into BENCH trajectories:
// the name itself for every profile except the default, which maps to ""
// so the field is omitted from the JSON and historical t2 trajectories
// stay byte-identical. Every producer of a "machine" stamp must go
// through this so the omission rule lives in exactly one place.
func Tag(name string) string {
	if name == DefaultName {
		return ""
	}
	return name
}
