package machine

import (
	"strings"
	"testing"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/phys"
	"repro/internal/trace"
)

func TestRegistryValidatesAndDefaultExists(t *testing.T) {
	ps := Profiles() // panics if any entry is invalid
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.Doc == "" {
			t.Errorf("profile %q has no doc", p.Name)
		}
		if p.Config.Mapping.Name() != p.Name && p.Name != "single" && p.Name != "xor" {
			// Interleave-backed profiles name their mapping after themselves.
			if iv, ok := p.Config.Mapping.(phys.Interleave); ok && iv.Label != p.Name {
				t.Errorf("profile %q wraps mapping %q", p.Name, iv.Label)
			}
		}
	}
	if !seen[DefaultName] {
		t.Fatalf("default profile %q not registered", DefaultName)
	}
	if _, err := Get("no-such-machine"); err == nil || !strings.Contains(err.Error(), "no-such-machine") {
		t.Errorf("Get(no-such-machine) err = %v, want a naming error", err)
	}
}

// TestT2ProfileMatchesCalibratedConfig pins the byte-identity contract:
// the t2 profile must be exactly the historical chip.Default() — same
// topology, timings, L2 geometry and a mapping that resolves to the same
// bit fields.
func TestT2ProfileMatchesCalibratedConfig(t *testing.T) {
	cfg := MustGet("t2").Config
	if cfg.Cores != 8 || cfg.StrandsPerCore != 8 || cfg.GroupsPerCore != 2 {
		t.Errorf("t2 topology %+v", cfg)
	}
	if cfg.ClockHz != 1.2e9 || cfg.XbarLatency != 3 || cfg.L2HitLatency != 20 || cfg.L2BankService != 4 {
		t.Errorf("t2 timings %+v", cfg)
	}
	if cfg.L2.SizeBytes != 4<<20 || cfg.L2.Ways != 16 || cfg.L2.LineSize != phys.LineSize || cfg.L2.Banks != 8 {
		t.Errorf("t2 L2 geometry %+v", cfg.L2)
	}
	if cfg.Mem.ReadService != 15 || cfg.Mem.WriteService != 15 || cfg.Mem.WriteCouple != 4 ||
		cfg.Mem.Latency != 160 || cfg.Mem.QueueDepth != 8 {
		t.Errorf("t2 controller timings %+v", cfg.Mem)
	}
	if cfg.MSHRPerStrand != 1 || cfg.StoreBuffer != 8 || cfg.RetryDelay != 24 || cfg.RunAhead != 2 {
		t.Errorf("t2 strand parameters %+v", cfg)
	}
	bs, bm, cs, cm, ok := cfg.Mapping.(phys.FieldMapper).Fields()
	if !ok || bs != phys.LineShift || bm != 7 || cs != phys.LineShift+1 || cm != 3 {
		t.Errorf("t2 mapping fields (%d,%d,%d,%d,%v), want the documented bits 8:6/8:7", bs, bm, cs, cm, ok)
	}
}

// marching is a minimal trace generator: loads and a store sweeping
// across memory, enough to drive misses, evictions and writebacks.
type marching struct {
	n    int
	pos  int
	addr phys.Addr
}

func (g *marching) Next(it *trace.Item) bool {
	if g.pos >= g.n {
		return false
	}
	g.pos++
	it.Acc = append(it.Acc,
		trace.Access{Addr: g.addr},
		trace.Access{Addr: g.addr + 1<<22, Write: true})
	g.addr += phys.LineSize
	it.Demand = cpu.Demand{MemOps: 2, Flops: 1}
	it.Units = 8
	it.RepBytes = 16
	return true
}

// TestEveryProfileRunsEndToEnd drives a small program through every
// registered machine: the cache geometry, controller count and wide-
// granule indexing must all hold together outside the t2 case.
func TestEveryProfileRunsEndToEnd(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			gens := make([]trace.Generator, 8)
			for i := range gens {
				gens[i] = &marching{n: 64, addr: phys.Addr(i) << 24}
			}
			prog := &trace.Program{Label: p.Name, Gens: gens, WarmLines: 256}
			r := chip.New(p.Config).Run(prog)
			if r.Cycles <= 0 || r.Units != 8*64*8 {
				t.Fatalf("%s: cycles %d units %d", p.Name, r.Cycles, r.Units)
			}
			if len(r.MCUtil) != p.Config.Mapping.Controllers() {
				t.Errorf("%s: %d controller stats, mapping has %d", p.Name, len(r.MCUtil), p.Config.Mapping.Controllers())
			}
		})
	}
}

// TestPlannerIsProfileGeneric is the analyzer-side crossval predicate for
// the profile layer: for every periodic machine, the planner's per-array
// offsets must reach the best possible controller concurrency
// (min(streams, controllers)), and bases left congruent mod the profile's
// period must collapse to a single controller — i.e. the planned offsets
// "come out right" for machines the planner has never been hardwired to.
func TestPlannerIsProfileGeneric(t *testing.T) {
	const streams = 4
	for _, p := range Profiles() {
		ms := p.Spec()
		if ms.Mapping.Period() <= 0 {
			continue // hashed: no period, nothing to plan against
		}
		plan := core.PlanArrayOffsets(ms, streams)
		want := float64(streams)
		if c := ms.Mapping.Controllers(); c < streams {
			want = float64(c)
		}
		if plan.Concurrency != want {
			t.Errorf("%s: planned concurrency %.2f, want %.0f", p.Name, plan.Concurrency, want)
		}
		// The planner's offsets step by Period/Controllers (line-aligned).
		step := ms.Period() / int64(ms.Mapping.Controllers())
		if step%ms.LineSize != 0 {
			step = step / ms.LineSize * ms.LineSize
			if step == 0 {
				step = ms.LineSize
			}
		}
		for i, off := range plan.Offsets {
			if off != int64(i)*step {
				t.Errorf("%s: offset[%d] = %d, want %d", p.Name, i, off, int64(i)*step)
			}
		}
		// Congruent bases are the convoy on every periodic machine with >1
		// controller.
		bases := make([]phys.Addr, streams)
		for i := range bases {
			bases[i] = phys.Addr(int64(i) * ms.Period())
		}
		cc := core.MeanConcurrency(ms, core.StreamSet{Bases: bases, Stride: ms.LineSize}, 0)
		if cc != 1 {
			t.Errorf("%s: congruent streams concurrency %.2f, want 1", p.Name, cc)
		}
		// Row plans follow the same derivation.
		rp := core.PlanRows(ms)
		if rp.SegAlign != ms.Period() || rp.Shift != ms.Period()/int64(ms.Mapping.Controllers()) {
			t.Errorf("%s: row plan %+v inconsistent with period %d", p.Name, rp, ms.Period())
		}
	}
}
