// Package faults is a deterministic, seed-driven fault-injection harness
// for the execution stack. The simulator's recovery machinery — per-point
// panic isolation and retry in exp, the fast-forward rollback checkpoint in
// chip/forward.go, the epoch-barrier watchdog in chip/parallel.go, and
// cooperative engine cancellation — would otherwise only run when something
// is genuinely broken, which is exactly when it must not be exercised for
// the first time. This package lets tests inject each failure class on
// demand, reproducibly.
//
// The hooks (PointFault, FFDecline, ShardStall, CancelStep) are compiled to
// empty inlineable stubs unless the build tag `faultinject` is set
// (BuildEnabled reports which build this is), so production binaries and
// the default test tier carry zero overhead and zero behavior change. Under
// the tag, a test arms a Plan with Arm; unarmed hooks still do nothing, so
// the whole test suite passes under `-tags faultinject` with only the
// fault-injection tests observing injected failures.
//
// Determinism: every injected fault is a pure function of the Plan — which
// points panic, which epoch stalls, which step cancels — and the Plan's
// fields are derived from a single Seed through a splitmix64 stream
// (Rand/PickPoints), never from wall clock or runtime randomness. A failing
// injected run reproduces from its seed.
package faults

import (
	"errors"
	"sync/atomic"
	"time"
)

// ErrInjected marks an injected transient point failure; the experiment
// runner treats it like any other point error (retryable, reported
// structured).
var ErrInjected = errors.New("faults: injected transient failure")

// Plan is one deterministic injection campaign. The zero value injects
// nothing; tests populate the fields they need (usually via PickPoints and
// friends, so everything traces back to Seed) and install it with Arm.
type Plan struct {
	Seed uint64

	// Point faults (hook: PointFault, called by exp's per-point runner).
	// Listed grid indices fail each attempt below PointAttempts — panicking
	// for PanicPoints, returning ErrInjected for FailPoints — then succeed,
	// which is the shape of a transient fault the runner's bounded retry
	// must absorb. PointAttempts <= 0 means 1 (fail the first attempt only).
	PanicPoints   []int
	FailPoints    []int
	PointAttempts int

	// DeclineJumps forces every validated steady-state fast-forward
	// candidate to be rejected after validation (hook: FFDecline), driving
	// chip/forward.go through its rollback checkpoint path — snapshot,
	// trace replay, restore, stats rewind — on every jump it would have
	// committed. Results must be byte-identical anyway; that is the test.
	DeclineJumps bool

	// Shard stall (hook: ShardStall, called by the sharded engine's epoch
	// loop): delay StallShard by StallFor of wall-clock time once its epoch
	// ordinal reaches StallEpoch, to trip the barrier watchdog. StallOnce
	// limits the injection to a single epoch so a retried run succeeds.
	StallShard int
	StallEpoch int64
	StallFor   time.Duration
	StallOnce  bool

	// Speculation conflicts (hook: SpecConflict, called by the sharded
	// engine's burst validator with the burst ordinal — commits plus
	// rollbacks so far). A matching ordinal forces the burst's validation
	// to fail, rolling every shard back to its checkpoint. Every worker
	// calls the hook with the same ordinal and gets the same verdict, so
	// injected conflicts preserve the engine's determinism. Ordinals >=
	// SpecConflictFrom with (ordinal - SpecConflictFrom) divisible by
	// SpecConflictEvery are injected; SpecConflictEvery == 0 injects
	// nothing, SpecConflictEvery == 1 is a rollback storm: every burst
	// fails until the throttle collapses speculation entirely.
	SpecConflictFrom  int64
	SpecConflictEvery int64

	// CancelStep arms the sequential engine's deterministic step budget
	// (hook: CancelStep → sim.Engine.StopAt): the run halts cooperatively
	// at ~this event step, standing in for a context cancelled mid-run at a
	// reproducible point.
	CancelStep uint64

	// Service tier (hooks: RequestFault, CacheCorrupt, ServiceStall —
	// called by internal/service, the t2simd daemon's engine room).
	// PanicRequests lists 1-based request ordinals whose handler panics
	// mid-request; the server must convert each to a 500 and keep serving.
	// CorruptCachePuts corrupts the stored payload of that many leading
	// result-cache insertions after their checksum is recorded, so the
	// cache's integrity check must reject the entry on the next read —
	// corrupt bytes are never served, they are recomputed. ServiceStallFor
	// stalls every admitted sweep before it executes (cancellably: the
	// stall aborts with the request's context), which is how tests wedge a
	// worker during drain and assert the drain deadline still cancels it.
	PanicRequests    []int
	CorruptCachePuts int
	ServiceStallFor  time.Duration

	stallsDone   atomic.Int64
	corruptsDone atomic.Int64
}

// failAttempts returns the number of leading attempts that fail for a
// listed point.
func (p *Plan) failAttempts() int {
	if p.PointAttempts <= 0 {
		return 1
	}
	return p.PointAttempts
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Rand is a splitmix64 stream: a deterministic pseudo-random uint64 from
// (seed, stream). All seed-derived plan parameters go through it.
func Rand(seed, stream uint64) uint64 {
	z := seed + (stream+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// PickPoints derives k distinct grid indices in [0, total) from the plan's
// seed — the deterministic "which points fail" selector.
func (p *Plan) PickPoints(total, k int) []int {
	if k > total {
		k = total
	}
	picked := make([]int, 0, k)
	for stream := uint64(0); len(picked) < k; stream++ {
		idx := int(Rand(p.Seed, stream) % uint64(total))
		if !contains(picked, idx) {
			picked = append(picked, idx)
		}
	}
	return picked
}

// CancelStepIn derives a step budget in [lo, hi) from the plan's seed —
// the "cancelled at a randomized engine step" selector.
func (p *Plan) CancelStepIn(lo, hi uint64) uint64 {
	if hi <= lo {
		return lo
	}
	return lo + Rand(p.Seed, 0x5CA1AB1E)%(hi-lo)
}

// Counters tallies injections and is the test oracle for "every injected
// fault was observed by the recovery path it targets".
type Counters struct {
	PointPanics      int64 // injected panics delivered
	PointFails       int64 // injected transient errors returned
	FFDeclines       int64 // validated fast-forward jumps forcibly declined
	ShardStalls      int64 // shard epoch delays injected
	SpecConflicts    int64 // speculative-burst validations forced to fail (per worker per burst)
	StepCancels      int64 // engine halts caused by an armed step budget
	RequestPanics    int64 // injected mid-request handler panics
	CacheCorruptions int64 // cache entries corrupted after insertion
	ServiceStalls    int64 // sweep executions stalled before running
}

var counters struct {
	pointPanics      atomic.Int64
	pointFails       atomic.Int64
	ffDeclines       atomic.Int64
	shardStalls      atomic.Int64
	specConflicts    atomic.Int64
	stepCancels      atomic.Int64
	requestPanics    atomic.Int64
	cacheCorruptions atomic.Int64
	serviceStalls    atomic.Int64
}

// Stats returns a snapshot of the injection counters.
func Stats() Counters {
	return Counters{
		PointPanics:      counters.pointPanics.Load(),
		PointFails:       counters.pointFails.Load(),
		FFDeclines:       counters.ffDeclines.Load(),
		ShardStalls:      counters.shardStalls.Load(),
		SpecConflicts:    counters.specConflicts.Load(),
		StepCancels:      counters.stepCancels.Load(),
		RequestPanics:    counters.requestPanics.Load(),
		CacheCorruptions: counters.cacheCorruptions.Load(),
		ServiceStalls:    counters.serviceStalls.Load(),
	}
}

// ResetStats zeroes the injection counters (Arm does this too).
func ResetStats() {
	counters.pointPanics.Store(0)
	counters.pointFails.Store(0)
	counters.ffDeclines.Store(0)
	counters.shardStalls.Store(0)
	counters.specConflicts.Store(0)
	counters.stepCancels.Store(0)
	counters.requestPanics.Store(0)
	counters.cacheCorruptions.Store(0)
	counters.serviceStalls.Store(0)
}
