//go:build !faultinject

package faults

import (
	"context"
	"testing"
)

// TestProductionBuildIsInert pins the production contract: without the
// faultinject tag the hooks are free no-ops and BuildEnabled says so, so
// callers can assert they are not accidentally shipping an injectable
// binary.
func TestProductionBuildIsInert(t *testing.T) {
	if BuildEnabled {
		t.Fatal("BuildEnabled = true without the faultinject tag")
	}
	if err := PointFault(3, 0); err != nil {
		t.Fatalf("PointFault injected %v", err)
	}
	if FFDecline() {
		t.Fatal("FFDecline returned true")
	}
	ShardStall(0, 0)
	RequestFault(1)
	if CacheCorrupt() {
		t.Fatal("CacheCorrupt returned true")
	}
	ServiceStall(context.Background())
	if CancelStep() != 0 {
		t.Fatal("CancelStep returned nonzero")
	}
	NoteStepCancel()
	if st := Stats(); st != (Counters{}) {
		t.Fatalf("stub hooks moved counters: %+v", st)
	}
}
