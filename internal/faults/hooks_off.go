//go:build !faultinject

package faults

import "context"

// BuildEnabled reports whether this binary was built with the faultinject
// tag and can therefore inject faults at all.
const BuildEnabled = false

// The hooks below are the production build's empty stubs: no plan storage,
// no branches, inlined away at every call site.

// PointFault injects nothing in a production build.
func PointFault(index, attempt int) error { return nil }

// FFDecline injects nothing in a production build.
func FFDecline() bool { return false }

// ShardStall injects nothing in a production build.
func ShardStall(shard int, epoch int64) {}

// SpecConflict injects nothing in a production build.
func SpecConflict(burst int64) bool { return false }

// RequestFault injects nothing in a production build.
func RequestFault(ordinal int) {}

// CacheCorrupt injects nothing in a production build.
func CacheCorrupt() bool { return false }

// ServiceStall injects nothing in a production build.
func ServiceStall(ctx context.Context) {}

// CancelStep injects nothing in a production build.
func CancelStep() uint64 { return 0 }

// NoteStepCancel injects nothing in a production build.
func NoteStepCancel() {}
