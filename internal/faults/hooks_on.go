//go:build faultinject

package faults

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// BuildEnabled reports whether this binary was built with the faultinject
// tag and can therefore inject faults at all.
const BuildEnabled = true

// armed is the installed plan; nil (the default) injects nothing even in a
// faultinject build, so the ordinary test suite runs unchanged under the
// tag.
var armed atomic.Pointer[Plan]

// Arm installs the plan (zeroing the counters) so the hooks start
// injecting. Concurrent runs see the plan atomically; tests must not run
// two armed campaigns in parallel.
func Arm(p *Plan) {
	ResetStats()
	armed.Store(p)
}

// Disarm removes the installed plan.
func Disarm() { armed.Store(nil) }

// PointFault is the exp runner's per-attempt hook: for a listed point it
// panics (PanicPoints) or returns ErrInjected (FailPoints) on each leading
// attempt below the plan's PointAttempts, then lets the attempt through.
func PointFault(index, attempt int) error {
	p := armed.Load()
	if p == nil || attempt >= p.failAttempts() {
		return nil
	}
	if contains(p.PanicPoints, index) {
		counters.pointPanics.Add(1)
		panic(fmt.Sprintf("faults: injected panic at point %d attempt %d (seed %#x)", index, attempt, p.Seed))
	}
	if contains(p.FailPoints, index) {
		counters.pointFails.Add(1)
		return fmt.Errorf("%w (point %d attempt %d, seed %#x)", ErrInjected, index, attempt, p.Seed)
	}
	return nil
}

// FFDecline is forward.go's post-validation hook: true forces the
// validated jump candidate to be declined, exercising the rollback path.
func FFDecline() bool {
	p := armed.Load()
	if p == nil || !p.DeclineJumps {
		return false
	}
	counters.ffDeclines.Add(1)
	return true
}

// ShardStall is the sharded epoch loop's hook: it blocks the matching
// shard for the plan's StallFor once its epoch ordinal reaches StallEpoch,
// wedging it long enough to trip the barrier watchdog.
func ShardStall(shard int, epoch int64) {
	p := armed.Load()
	if p == nil || p.StallFor <= 0 || shard != p.StallShard || epoch < p.StallEpoch {
		return
	}
	if p.StallOnce && !p.stallsDone.CompareAndSwap(0, 1) {
		return
	}
	if !p.StallOnce {
		p.stallsDone.Add(1)
	}
	counters.shardStalls.Add(1)
	time.Sleep(p.StallFor)
}

// SpecConflict is the speculative burst validator's hook: true forces the
// burst with this ordinal (commits + rollbacks so far) to fail validation
// and roll back. The verdict is a pure function of (plan, ordinal), so
// every worker — and every worker count — sees the same injected
// conflicts, preserving determinism under a rollback storm.
func SpecConflict(burst int64) bool {
	p := armed.Load()
	if p == nil || p.SpecConflictEvery <= 0 || burst < p.SpecConflictFrom {
		return false
	}
	if (burst-p.SpecConflictFrom)%p.SpecConflictEvery != 0 {
		return false
	}
	counters.specConflicts.Add(1)
	return true
}

// RequestFault is the service handler's per-request hook: it panics
// mid-request for the listed 1-based request ordinals, exercising the
// daemon's handler-level recovery (500 response, server keeps serving).
func RequestFault(ordinal int) {
	p := armed.Load()
	if p == nil || !contains(p.PanicRequests, ordinal) {
		return
	}
	counters.requestPanics.Add(1)
	panic(fmt.Sprintf("faults: injected panic in request %d (seed %#x)", ordinal, p.Seed))
}

// CacheCorrupt is the result cache's post-insert hook: true tells the
// cache to flip a byte of the stored payload (after its checksum was
// recorded), so the integrity check must reject the entry on its next
// read instead of serving corrupt bytes.
func CacheCorrupt() bool {
	p := armed.Load()
	if p == nil || p.CorruptCachePuts <= 0 {
		return false
	}
	if p.corruptsDone.Add(1) > int64(p.CorruptCachePuts) {
		return false
	}
	counters.cacheCorruptions.Add(1)
	return true
}

// ServiceStall is the service executor's pre-run hook: it stalls an
// admitted sweep for the plan's ServiceStallFor before the simulation
// starts, aborting early if the request's context dies — the wedge that
// drain-deadline tests must cut through.
func ServiceStall(ctx context.Context) {
	p := armed.Load()
	if p == nil || p.ServiceStallFor <= 0 {
		return
	}
	counters.serviceStalls.Add(1)
	t := time.NewTimer(p.ServiceStallFor)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// CancelStep returns the armed step budget for the sequential engine
// (0: none).
func CancelStep() uint64 {
	if p := armed.Load(); p != nil {
		return p.CancelStep
	}
	return 0
}

// NoteStepCancel records that an armed step budget actually halted a run.
func NoteStepCancel() { counters.stepCancels.Add(1) }
