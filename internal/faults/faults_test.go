//go:build faultinject

package faults

import (
	"errors"
	"testing"
	"time"
)

// TestPointFaultInjection pins the point-fault contract: listed points
// panic or fail on exactly the leading attempts, everything else passes,
// and the counters record each delivery.
func TestPointFaultInjection(t *testing.T) {
	p := &Plan{Seed: 42, PanicPoints: []int{3}, FailPoints: []int{5}, PointAttempts: 2}
	Arm(p)
	defer Disarm()

	if err := PointFault(0, 0); err != nil {
		t.Fatalf("unlisted point injected %v", err)
	}
	for attempt := 0; attempt < 2; attempt++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("PanicPoints attempt %d did not panic", attempt)
				}
			}()
			PointFault(3, attempt)
		}()
		if err := PointFault(5, attempt); !errors.Is(err, ErrInjected) {
			t.Fatalf("FailPoints attempt %d returned %v, want ErrInjected", attempt, err)
		}
	}
	if err := PointFault(3, 2); err != nil {
		t.Fatalf("attempt past PointAttempts still failed: %v", err)
	}
	st := Stats()
	if st.PointPanics != 2 || st.PointFails != 2 {
		t.Fatalf("counters = %+v, want 2 panics and 2 fails", st)
	}
}

// TestDisarmedHooksAreInert proves an armed-then-disarmed (and a
// never-armed) build injects nothing — the property that lets the whole
// suite run under -tags faultinject.
func TestDisarmedHooksAreInert(t *testing.T) {
	Disarm()
	ResetStats()
	if err := PointFault(0, 0); err != nil {
		t.Fatalf("disarmed PointFault returned %v", err)
	}
	if FFDecline() {
		t.Fatal("disarmed FFDecline returned true")
	}
	ShardStall(0, 0)
	if CancelStep() != 0 {
		t.Fatal("disarmed CancelStep returned nonzero")
	}
	if st := Stats(); st != (Counters{}) {
		t.Fatalf("disarmed hooks moved counters: %+v", st)
	}
}

// TestShardStallOnce pins the single-fire contract used by
// watchdog-then-retry tests.
func TestShardStallOnce(t *testing.T) {
	p := &Plan{StallShard: 1, StallEpoch: 2, StallFor: time.Microsecond, StallOnce: true}
	Arm(p)
	defer Disarm()
	ShardStall(0, 5) // wrong shard
	ShardStall(1, 1) // too early
	ShardStall(1, 2) // fires
	ShardStall(1, 3) // StallOnce: spent
	if st := Stats(); st.ShardStalls != 1 {
		t.Fatalf("ShardStalls = %d, want 1", st.ShardStalls)
	}
}

// TestSeedDerivationIsDeterministic pins PickPoints and CancelStepIn to
// their seeds: same seed, same faults; different seed, (almost surely)
// different faults.
func TestSeedDerivationIsDeterministic(t *testing.T) {
	a := (&Plan{Seed: 7}).PickPoints(100, 5)
	b := (&Plan{Seed: 7}).PickPoints(100, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("PickPoints diverged for one seed: %v vs %v", a, b)
		}
		for j := range a {
			if i != j && a[i] == a[j] {
				t.Fatalf("PickPoints repeated index %d: %v", a[i], a)
			}
		}
	}
	if s1, s2 := (&Plan{Seed: 1}).CancelStepIn(1000, 9000), (&Plan{Seed: 1}).CancelStepIn(1000, 9000); s1 != s2 {
		t.Fatalf("CancelStepIn diverged for one seed: %d vs %d", s1, s2)
	}
	if s := (&Plan{Seed: 1}).CancelStepIn(1000, 9000); s < 1000 || s >= 9000 {
		t.Fatalf("CancelStepIn out of range: %d", s)
	}
}
