#!/usr/bin/env bash
# daemon_smoke.sh — end-to-end smoke of the t2simd service daemon
# (`make daemon-smoke`, wired into CI):
#
#   1. regenerate the reference BENCH_fig2.json with cmd/figures;
#   2. start t2simd on an ephemeral port;
#   3. submit the same small fig2 sweep twice over HTTP and assert the
#      first response is a cache miss, the second a cache hit, and both
#      are byte-identical to each other AND to the cmd/figures output —
#      the daemon's headline contract;
#   4. SIGTERM the daemon and assert it drains cleanly with exit 0.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
dir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null
    rm -rf "$dir"
    return 0
}
trap cleanup EXIT

echo "== reference trajectory via cmd/figures =="
$GO run ./cmd/figures -scale small -fig 2 -jobs 2 -out "$dir/ref" >/dev/null

echo "== build and start t2simd on an ephemeral port =="
$GO build -o "$dir/t2simd" ./cmd/t2simd
"$dir/t2simd" -addr 127.0.0.1:0 -addr-file "$dir/addr" -jobs 2 &
pid=$!

for _ in $(seq 1 100); do
    [ -s "$dir/addr" ] && break
    sleep 0.1
done
[ -s "$dir/addr" ] || { echo "daemon-smoke: t2simd never wrote its address"; exit 1; }
addr=$(cat "$dir/addr")

curl -fsS "http://$addr/healthz" >/dev/null
curl -fsS "http://$addr/readyz" >/dev/null

body='{"figure":"fig2","scale":"small"}'

echo "== first submission (expect cache miss) =="
curl -fsS -D "$dir/h1" -o "$dir/r1.json" -X POST -d "$body" "http://$addr/v1/sweep"
grep -qi "^x-t2simd-cache: miss" "$dir/h1" || { echo "daemon-smoke: first response was not a miss"; cat "$dir/h1"; exit 1; }

echo "== second submission (expect cache hit) =="
curl -fsS -D "$dir/h2" -o "$dir/r2.json" -X POST -d "$body" "http://$addr/v1/sweep"
grep -qi "^x-t2simd-cache: hit" "$dir/h2" || { echo "daemon-smoke: second response was not a hit"; cat "$dir/h2"; exit 1; }

echo "== byte-identity: repeat vs first, first vs cmd/figures =="
cmp "$dir/r1.json" "$dir/r2.json"
cmp "$dir/r1.json" "$dir/ref/BENCH_fig2.json"

echo "== metrics =="
curl -fsS "http://$addr/metrics" | grep -E "t2simd_(requests_total|executions_total|cache_hits_total|cache_hit_rate)"

echo "== SIGTERM drain (expect exit 0) =="
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
[ "$rc" -eq 0 ] || { echo "daemon-smoke: t2simd exited $rc, want 0"; exit 1; }

echo "daemon-smoke: ok"
