package repro_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/bench"
	"repro/internal/chip"
	"repro/internal/exp"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/segarray"
	"repro/internal/stats"
	"repro/internal/trace"
)

// The benchmarks regenerate each figure of the paper at test scale and
// report the figure's headline metric. Run the cmd/figures binary with
// -scale full for the paper-scale sweeps recorded in EXPERIMENTS.md.

func mean(ys []float64) float64 { return stats.Summarize(ys).Mean }

// simTotals accumulates a sweep's simulation telemetry across benchmark
// iterations and reports it in units that survive hardware changes:
// simulated cycles and simulated L2 line accesses retired per wallclock
// second, plus the fraction of simulated cycles the steady-state
// fast-forward covered analytically.
type simTotals struct {
	cycles     int64
	accesses   int64
	ffCycles   int64
	ffJumps    int64
	ffSkipped  int64
	shards     int64
	width      int64
	epochs     int64
	microEp    int64
	stalls     int64
	busyRounds int64
	specEp     int64
	specCommit int64
	specRoll   int64

	// Robustness telemetry (exp.Outcome's resilience counters plus directly
	// observed watchdog trips). Zero on every fault-free sweep, so the
	// figure benchmarks report nothing new; only BenchmarkResilience, which
	// provokes the recovery paths on purpose, populates these.
	retries       int64
	pointErrors   int64
	watchdogTrips int64
	cancelMS      float64
}

// run executes the experiment, folds its telemetry into the totals, and
// returns the sweep's series.
func (st *simTotals) run(e exp.Experiment) []stats.Series {
	out := exp.MustRun(e)
	st.fold(out)
	return out.Series()
}

// fold accumulates one outcome's telemetry, fault-free or not.
func (st *simTotals) fold(out exp.Outcome) {
	c, a := out.Totals()
	_, fc := out.FastForwardTotals()
	fj, fs := out.FastForwardJumpTotals()
	st.cycles += c
	st.accesses += a
	st.ffCycles += fc
	st.ffJumps += fj
	st.ffSkipped += fs
	t := out.ShardTotals()
	if t.Shards > st.shards {
		st.shards = t.Shards
	}
	if t.Width > st.width {
		st.width = t.Width
	}
	st.epochs += t.Epochs
	st.microEp += t.BatchedEpochs
	st.stalls += t.Stalls
	st.busyRounds += t.BusyRounds
	st.specEp += t.SpecEpochs
	st.specCommit += t.SpecCommits
	st.specRoll += t.SpecRollbacks
	st.retries += out.Retries
	st.pointErrors += out.PointErrors
	st.watchdogTrips += out.WatchdogTrips
	if out.CancelLatencyMS > st.cancelMS {
		st.cancelMS = out.CancelLatencyMS
	}
}

func (st *simTotals) report(b *testing.B) {
	secs := b.Elapsed().Seconds()
	if secs <= 0 {
		return
	}
	b.ReportMetric(float64(st.cycles)/secs, "simcycles/s")
	b.ReportMetric(float64(st.accesses)/secs, "accesses/s")
	if st.cycles > 0 {
		b.ReportMetric(float64(st.ffCycles)/float64(st.cycles)*100, "ff-coverage-%")
		// Jump telemetry makes coverage auditable: how many analytic jumps
		// committed and how many engine event steps they covered, per
		// benchmark iteration (deterministic, unlike the /s rates above).
		b.ReportMetric(float64(st.ffJumps)/float64(b.N), "ff-jumps")
		b.ReportMetric(float64(st.ffSkipped)/float64(b.N), "ff-skipped-epochs")
	}
	if st.shards > 0 {
		// Sharded-engine scaling telemetry: the decomposition (domains),
		// the epoch width the engine actually used (reported by the runs,
		// not re-derived here), synchronization rounds per iteration and
		// micro-epochs per wallclock second (the batched loop's throughput),
		// how often shards hit an epoch with no work, and what fraction of
		// (shard, round) pairs did real work — the load-balance headline.
		b.ReportMetric(float64(st.shards), "shards")
		b.ReportMetric(float64(st.width), "epoch-width")
		b.ReportMetric(float64(st.epochs)/float64(b.N), "epochs")
		b.ReportMetric(float64(st.microEp)/secs, "batched-epochs/s")
		b.ReportMetric(float64(st.stalls)/secs, "barrier-stalls/s")
		if st.epochs > 0 {
			b.ReportMetric(100*float64(st.busyRounds)/float64(st.shards*st.epochs), "busy-shard-%")
		}
		if st.specCommit > 0 || st.specRoll > 0 {
			// Speculation telemetry (informational, never gated — like
			// epoch-width): micro-epochs executed inside committed bursts per
			// iteration, the fraction of bursts that validated, and rollbacks
			// per wallclock second. Non-speculative sweeps attempt no bursts
			// and report none of this, keeping their metric sets unchanged.
			b.ReportMetric(float64(st.specEp)/float64(b.N), "spec-epochs")
			b.ReportMetric(100*float64(st.specCommit)/float64(st.specCommit+st.specRoll), "spec-commit-%")
			b.ReportMetric(float64(st.specRoll)/secs, "rollbacks/s")
		}
	}
	if st.retries > 0 || st.pointErrors > 0 || st.watchdogTrips > 0 || st.cancelMS > 0 {
		// Robustness telemetry, per iteration (deterministic counts): how
		// much recovery machinery the sweep actually exercised. Fault-free
		// sweeps report none of this, keeping their metric sets unchanged.
		b.ReportMetric(float64(st.retries)/float64(b.N), "retries")
		b.ReportMetric(float64(st.pointErrors)/float64(b.N), "point-errors")
		b.ReportMetric(float64(st.watchdogTrips)/float64(b.N), "watchdog-trips")
		b.ReportMetric(st.cancelMS, "cancel-latency-ms")
	}
}

// BenchmarkFig2StreamTriadOffsets regenerates the Fig. 2 offset sweep and
// reports the bandwidth floor, ceiling and their ratio.
func BenchmarkFig2StreamTriadOffsets(b *testing.B) {
	o := bench.Small()
	var st simTotals
	for i := 0; i < b.N; i++ {
		r := bench.Fig2FromSeries(st.run(o.Fig2Exp()))
		hi := r.Triad[len(r.Triad)-1]
		s := stats.Summarize(hi.Y)
		b.ReportMetric(s.Min, "floor-GB/s")
		b.ReportMetric(s.Max, "ceiling-GB/s")
		b.ReportMetric(s.Max/s.Min, "ceiling/floor")
	}
	st.report(b)
}

// BenchmarkFig4VectorTriadAlignment regenerates Fig. 4 and reports the
// page-aligned worst case against the planned-offset optimum.
func BenchmarkFig4VectorTriadAlignment(b *testing.B) {
	o := bench.Small()
	var st simTotals
	for i := 0; i < b.N; i++ {
		for _, s := range st.run(o.Fig4Exp()) {
			switch s.Name {
			case "align8k":
				b.ReportMetric(mean(s.Y), "worst-GB/s")
			case "align8k+128":
				b.ReportMetric(mean(s.Y), "best-GB/s")
			}
		}
	}
	st.report(b)
}

// BenchmarkFig5SegmentedOverhead regenerates Fig. 5 and reports the
// relative overhead of segmented iterators at the largest N.
func BenchmarkFig5SegmentedOverhead(b *testing.B) {
	o := bench.Small()
	var st simTotals
	for i := 0; i < b.N; i++ {
		series := st.run(o.Fig5Exp(64))
		seg, plain := series[0], series[1]
		n := seg.Len() - 1
		b.ReportMetric((plain.Y[n]-seg.Y[n])/plain.Y[n]*100, "overhead-%")
	}
	st.report(b)
}

// BenchmarkFig6Jacobi regenerates Fig. 6 and reports the optimized and
// plain 64-thread MLUPs/s.
func BenchmarkFig6Jacobi(b *testing.B) {
	o := bench.Small()
	var st simTotals
	for i := 0; i < b.N; i++ {
		for _, s := range st.run(o.Fig6Exp()) {
			switch s.Name {
			case "64T":
				b.ReportMetric(mean(s.Y), "opt-MLUPs")
			case "64T plain":
				b.ReportMetric(mean(s.Y), "plain-MLUPs")
			}
		}
	}
	st.report(b)
}

// BenchmarkFig4ShardedEngine regenerates the Fig. 4 sweep on the
// controller-domain sharded engine (parallel.go), tracking the sharded
// trajectory — shards, epoch-width and barrier-stalls/s — next to the
// sequential BenchmarkFig4VectorTriadAlignment so the engine's scaling is
// recorded in BENCH_perf.json. The per-run worker budget shares cores
// with the sweep pool (exp.ShardBudget), and the measured results are
// invariant under it.
func BenchmarkFig4ShardedEngine(b *testing.B) {
	o := bench.Small()
	o.Shards = exp.ShardBudget(-1, 0)
	o.Speculate = true // execution budget only: results identical, spec-* telemetry recorded
	var st simTotals
	for i := 0; i < b.N; i++ {
		st.run(o.Fig4Exp())
	}
	st.report(b)
}

// BenchmarkFig6ShardedEngine regenerates the Fig. 6 Jacobi sweep on the
// sharded engine — the engine's target workload: a stencil whose reuse
// keeps it out of steady-state fast-forward, so intra-run parallelism is
// the only lever left.
func BenchmarkFig6ShardedEngine(b *testing.B) {
	o := bench.Small()
	o.Shards = exp.ShardBudget(-1, 0)
	o.Speculate = true
	var st simTotals
	for i := 0; i < b.N; i++ {
		st.run(o.Fig6Exp())
	}
	st.report(b)
}

// BenchmarkFig7LBM regenerates Fig. 7 and reports the fused IvJK level and
// the thrash-size dip.
func BenchmarkFig7LBM(b *testing.B) {
	o := bench.Small()
	var st simTotals
	for i := 0; i < b.N; i++ {
		for _, s := range st.run(o.Fig7Exp()) {
			if s.Name == "64T IvJK fused" {
				sm := stats.Summarize(s.Y)
				b.ReportMetric(sm.Max, "peak-MLUPs")
				b.ReportMetric(sm.Min, "thrash-MLUPs")
			}
		}
	}
	st.report(b)
}

// ---- resilience ---------------------------------------------------------------

// benchWedge wraps one generator of an otherwise healthy program and
// sleeps once mid-stream, wedging that strand's shard long enough for the
// epoch-barrier watchdog to trip.
type benchWedge struct {
	inner trace.Generator
	calls int
	slept bool
	dur   time.Duration
}

func (g *benchWedge) Next(it *trace.Item) bool {
	g.calls++
	if !g.slept && g.calls > 50 {
		g.slept = true
		time.Sleep(g.dur)
	}
	return g.inner.Next(it)
}

// BenchmarkResilience drives all four recovery paths of the resilient
// execution layer on purpose — transient point failures absorbed by the
// retry budget, a panicking point isolated into a structured PointError, a
// sweep cancelled mid-run with partial telemetry, and a wedged shard
// converted into a watchdog trip — and reports the robustness telemetry
// (retries, point-errors, watchdog-trips, cancel-latency-ms) that stays
// zero for every other benchmark in this file.
func BenchmarkResilience(b *testing.B) {
	base := machine.MustGet("t2").Config
	kernelExp := func(name string) exp.Experiment {
		return exp.Experiment{
			Name: name,
			Cfg:  base,
			Grid: exp.Grid{exp.Ints("x", 0, 1, 2, 3, 4, 5, 6, 7)},
			Run: func(cfg chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
				_, k := triadProg(int64(p.Int("x")), 1)
				prog := k.Program(omp.StaticBlock{}, 16)
				prog.WarmLines = cfg.L2.SizeBytes / phys.LineSize
				r, err := chip.New(cfg).RunCtx(sc.Context(), prog)
				if err != nil {
					return exp.Result{}, err
				}
				res := exp.Result{Series: "triad", X: float64(p.Int("x")), Y: r.GBps}
				res.Cycles = r.Cycles
				res.Accesses = r.L2.Hits + r.L2.Misses
				return res, nil
			},
		}
	}
	var st simTotals
	for i := 0; i < b.N; i++ {
		// Transient failures and one persistent panic: the retry budget
		// recovers the former, the latter surfaces as a PointError without
		// killing the pool.
		var mu sync.Mutex
		tried := map[int]bool{}
		e := kernelExp("resilience/retry")
		inner := e.Run
		e.Run = func(cfg chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
			mu.Lock()
			first := !tried[p.Index]
			tried[p.Index] = true
			mu.Unlock()
			if first && p.Index%3 == 0 {
				return exp.Result{}, errors.New("transient benchmark fault")
			}
			if p.Index == 5 {
				panic("injected benchmark panic")
			}
			return inner(cfg, p, sc)
		}
		out, err := exp.Runner{Jobs: 2, Retries: 1}.Run(e)
		var pe *exp.PointError
		if !errors.As(err, &pe) || out.Retries == 0 {
			b.Fatalf("retry/panic sweep: err=%v retries=%d, want a PointError and recovered retries", err, out.Retries)
		}
		st.fold(out)

		// Cancellation mid-sweep: the plug is pulled while the second point
		// is inside the engine, so that run aborts cooperatively with a
		// CancelError whose halt latency flows into the outcome.
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{})
		var once sync.Once
		go func() { <-started; cancel() }()
		e2 := kernelExp("resilience/cancel")
		inner2 := e2.Run
		e2.Run = func(cfg chip.Config, p exp.Point, sc *exp.Scratch) (exp.Result, error) {
			if p.Index == 0 {
				return inner2(cfg, p, sc)
			}
			// Later points run a long, event-by-event simulation (no
			// fast-forward) so the cancellation provably lands mid-run.
			once.Do(func() { close(started) })
			cfg.DisableFastForward = true
			_, k := triadProg(int64(p.Int("x")), 8)
			prog := k.Program(omp.StaticBlock{}, 64)
			prog.WarmLines = cfg.L2.SizeBytes / phys.LineSize
			r, err := chip.New(cfg).RunCtx(sc.Context(), prog)
			if err != nil {
				return exp.Result{}, err
			}
			return exp.Result{Series: "triad", X: float64(p.Int("x")), Y: r.GBps}, nil
		}
		out2, err := exp.Runner{Jobs: 1}.RunContext(ctx, e2)
		cancel()
		if err == nil || !out2.Cancelled {
			b.Fatalf("cancelled sweep: err=%v cancelled=%v, want an aborted partial outcome", err, out2.Cancelled)
		}
		st.fold(out2)

		// Wedged shard: one strand sleeps mid-epoch; the barrier watchdog
		// converts the former infinite spin into a structured WatchdogError.
		_, k := triadProg(0, 1)
		prog := k.Program(omp.StaticBlock{}, 16)
		prog.Gens[0] = &benchWedge{inner: prog.Gens[0], dur: 200 * time.Millisecond}
		_, err = chip.New(base).RunShardedCtx(context.Background(), prog,
			chip.ShardOptions{Workers: 2, Watchdog: 25 * time.Millisecond})
		var we *chip.WatchdogError
		if !errors.As(err, &we) {
			b.Fatalf("wedged sharded run returned %v, want a WatchdogError", err)
		}
		st.watchdogTrips++
	}
	st.report(b)
}

// ---- ablations ---------------------------------------------------------------

func triadProg(offsetWords int64, sweeps int) (*alloc.Space, kernels.Stream) {
	sp := alloc.NewSpace()
	const n = 1 << 17
	bases := sp.Common(3, n+offsetWords, phys.WordSize)
	k := kernels.StreamTriad(bases[0], bases[1], bases[2], n)
	k.Sweeps = sweeps
	return sp, k
}

func runTriad(cfg chip.Config, offsetWords int64) chip.Result {
	_, k := triadProg(offsetWords, 1)
	p := k.Program(omp.StaticBlock{}, 64)
	p.WarmLines = cfg.L2.SizeBytes / phys.LineSize
	return chip.New(cfg).Run(p)
}

// BenchmarkAblationXORMapping (A1): rerunning the worst-case offset with a
// hashed controller interleave removes the aliasing entirely — the design
// question "would a hashed mapping have hidden the paper's effect?".
func BenchmarkAblationXORMapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t2 := runTriad(machine.MustGet("t2").Config, 0)
		cfg := machine.MustGet("t2").Config
		cfg.Mapping = phys.XORMapping{}
		xor := runTriad(cfg, 0)
		b.ReportMetric(t2.GBps, "t2-GB/s")
		b.ReportMetric(xor.GBps, "xor-GB/s")
		b.ReportMetric(xor.GBps/t2.GBps, "xor/t2")
	}
}

// BenchmarkAblationMSHR (A2): with more outstanding misses per strand,
// fewer threads are needed to hide latency — 8 threads with 4 MSHRs
// approach what 32 single-MSHR threads deliver (Sect. 1's motivation for
// running many threads per core).
func BenchmarkAblationMSHR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := machine.MustGet("t2").Config
		_, k := triadProg(13, 1)
		p := k.Program(omp.StaticBlock{}, 8)
		p.WarmLines = base.L2.SizeBytes / phys.LineSize
		one := chip.New(base).Run(p)

		cfg := machine.MustGet("t2").Config
		cfg.MSHRPerStrand = 4
		_, k4 := triadProg(13, 1)
		p4 := k4.Program(omp.StaticBlock{}, 8)
		p4.WarmLines = cfg.L2.SizeBytes / phys.LineSize
		four := chip.New(cfg).Run(p4)

		b.ReportMetric(one.GBps, "8T-1mshr-GB/s")
		b.ReportMetric(four.GBps, "8T-4mshr-GB/s")
	}
}

// BenchmarkAblationTurnaround (A3): the bidirectional-transfer conjecture
// of Sect. 2.1 — removing the write-to-read channel coupling lifts
// read+write kernels but leaves load-only kernels unchanged.
func BenchmarkAblationTurnaround(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := runTriad(machine.MustGet("t2").Config, 16)
		cfg := machine.MustGet("t2").Config
		cfg.Mem.WriteCouple = 0
		without := runTriad(cfg, 16)
		b.ReportMetric(with.GBps, "coupled-GB/s")
		b.ReportMetric(without.GBps, "uncoupled-GB/s")
	}
}

// BenchmarkAblationRunAhead (A4): the aliasing convoy requires strand
// phase coherence; widening the run-ahead window dissolves it and the
// worst-case offset recovers almost full bandwidth.
func BenchmarkAblationRunAhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		coupled := runTriad(machine.MustGet("t2").Config, 0)
		cfg := machine.MustGet("t2").Config
		cfg.RunAhead = 0
		free := runTriad(cfg, 0)
		b.ReportMetric(coupled.GBps, "window2-GB/s")
		b.ReportMetric(free.GBps, "unbounded-GB/s")
	}
}

// ---- host-level Fig. 5: real iterator overhead --------------------------------

func hostArrays(n int64, threads int) (*segarray.Array[float64], *segarray.Array[float64], *segarray.Array[float64], *segarray.Array[float64]) {
	sp := alloc.NewSpace()
	lens := segarray.EqualSegments(n, threads)
	mk := func() *segarray.Array[float64] {
		a := segarray.NewArray[float64](segarray.Plan(sp, segarray.Params{ElemSize: 8, SegAlign: 512}, lens))
		a.Fill(1.5)
		return a
	}
	return mk(), mk(), mk(), mk()
}

// BenchmarkSegIterHostSegments measures the paper's recommended pattern on
// real hardware: per-segment plain-slice loops (native speed).
func BenchmarkSegIterHostSegments(b *testing.B) {
	const n = 1 << 16
	a, x, y, z := hostArrays(n, 64)
	b.SetBytes(n * 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < a.NumSegments(); s++ {
			kernels.VectorTriad(a.Segment(s), x.Segment(s), y.Segment(s), z.Segment(s))
		}
	}
}

// BenchmarkSegIterHostIterator measures the general segmented iterator
// with its per-element segment-boundary branch — the overhead the paper's
// operator++ discussion warns about.
func BenchmarkSegIterHostIterator(b *testing.B) {
	const n = 1 << 16
	a, x, y, z := hostArrays(n, 64)
	b.SetBytes(n * 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ia, ix, iy, iz := a.Begin(), x.Begin(), y.Begin(), z.Begin()
		for ia.Valid() {
			*ia.Value() = *ix.Value() + *iy.Value()**iz.Value()
			ia.Next()
			ix.Next()
			iy.Next()
			iz.Next()
		}
	}
}

// BenchmarkSegIterHostPlain is the contiguous-slice baseline.
func BenchmarkSegIterHostPlain(b *testing.B) {
	const n = 1 << 16
	a := make([]float64, n)
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	for i := range x {
		x[i], y[i], z[i] = 1, 2, 3
	}
	b.SetBytes(n * 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.VectorTriad(a, x, y, z)
	}
}
