// Lbm-channel runs a body-forced D3Q19 channel flow on the host (a real
// CFD computation: Poiseuille flow between two walls), prints the
// developed velocity profile, asks the layout advisor which data layout to
// use, and compares IJKv vs. IvJK vs. fused-loop IvJK on the simulated T2
// (the Fig. 7 experiment at one size).
package main

import (
	"fmt"
	"strings"

	"repro/internal/alloc"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/omp"
	"repro/internal/phys"
)

func main() {
	// ---- host physics -------------------------------------------------
	const n = 18
	f := lbm.NewField(n, lbm.IvJK, 1.2)
	f.WallsY()
	f.PeriodicX = true
	f.PeriodicZ = true
	f.Force = 2e-6
	f.Init(1, 0, 0, 0)
	f.Run(600)
	prof := f.VelocityProfileX()
	fmt.Printf("host D3Q19 channel flow, %d^3 lattice, 600 steps:\n", n)
	max := 0.0
	for _, v := range prof {
		if v > max {
			max = v
		}
	}
	for y, v := range prof {
		bar := 0
		if max > 0 {
			bar = int(v / max * 40)
		}
		fmt.Printf("  y=%2d %-40s %.2e\n", y+1, strings.Repeat("#", bar), v)
	}
	fmt.Printf("  mass: %.6f per cell (exactly conserved)\n\n", f.Mass()/float64((n-2)*n*n))

	// ---- layout advice --------------------------------------------------
	// N = 66 is a size where the layouts genuinely differ: the IJKv
	// stream stride (68^3 doubles) is congruent 0 mod 512 so all 19
	// distribution functions alias onto one controller, while the IvJK
	// stride (68 doubles = 544 bytes) walks through all of them.
	const simN = 66
	ms := machine.MustGet("t2").Spec()
	p := simN + 2
	sIJKv := int64(lbm.IJKv.VStride(p)) * phys.WordSize
	sIvJK := int64(lbm.IvJK.VStride(p)) * phys.WordSize
	fmt.Printf("layout advice at N=%d: IJKv spreads %d controllers, IvJK spreads %d -> use %s\n\n",
		simN, core.PhaseSpread(ms, sIJKv, lbm.Q), core.PhaseSpread(ms, sIvJK, lbm.Q),
		core.AdviseLayout(ms, "IJKv", sIJKv, "IvJK", sIvJK, lbm.Q))

	// ---- simulated performance -----------------------------------------
	m := chip.New(machine.MustGet("t2").Config)
	warm := machine.MustGet("t2").Config.L2.SizeBytes / phys.LineSize
	run := func(layout lbm.Layout, fused bool, threads int) chip.Result {
		sp := alloc.NewSpace()
		spec := lbm.TraceSpec{
			N: simN, Layout: layout,
			OldBase:  sp.Malloc(lbm.GridBytes(simN, layout)),
			NewBase:  sp.Malloc(lbm.GridBytes(simN, layout)),
			MaskBase: sp.Malloc(lbm.MaskBytes(simN, layout)),
			Fused:    fused, Sched: omp.StaticBlock{}, Sweeps: 1,
		}
		pr := spec.Program(threads)
		pr.WarmLines = warm
		return m.Run(pr)
	}
	fmt.Printf("simulated T2, N=%d:\n", simN)
	fmt.Printf("  64T IJKv:        %6.1f MLUPs/s\n", run(lbm.IJKv, false, 64).MUPs)
	fmt.Printf("  64T IvJK:        %6.1f MLUPs/s\n", run(lbm.IvJK, false, 64).MUPs)
	fmt.Printf("  64T IvJK fused:  %6.1f MLUPs/s\n", run(lbm.IvJK, true, 64).MUPs)
	fmt.Printf("  32T IvJK fused:  %6.1f MLUPs/s\n", run(lbm.IvJK, true, 32).MUPs)
}
