// Quickstart: diagnose and fix a memory-controller aliasing problem in
// three steps — analyze the stream set, plan offsets, verify on the
// simulated T2.
package main

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/omp"
	"repro/internal/phys"
)

func main() {
	const n = 1 << 19 // one vector triad array: 4 MB
	ms := machine.MustGet("t2").Spec()
	m := chip.New(machine.MustGet("t2").Config)

	// Step 1: the naive placement — all four arrays page-aligned, as a
	// matrix allocator would produce. The analyzer predicts the convoy.
	sp := alloc.NewSpace()
	naive := sp.OffsetBases(4, n*phys.WordSize, phys.PageSize, 0)
	ss := core.StreamSet{Bases: naive, Stride: phys.LineSize}
	fmt.Printf("naive placement:   regime=%-8s predicted relative bandwidth %.2f\n",
		core.Regime(ms, ss), core.PredictRelativeBandwidth(ms, ss))

	k := kernels.VTriad(naive[0], naive[1], naive[2], naive[3], n)
	p := k.Program(omp.StaticBlock{}, 64)
	p.WarmLines = machine.MustGet("t2").Config.L2.SizeBytes / phys.LineSize
	r := m.Run(p)
	fmt.Printf("                   measured %.2f GB/s\n\n", r.GBps)

	// Step 2: ask the planner for offsets.
	plan := core.PlanArrayOffsets(ms, 4)
	fmt.Printf("planned offsets:   %v bytes (concurrency %.0f/%d)\n",
		plan.Offsets, plan.Concurrency, ms.Mapping.Controllers())

	// Step 3: apply and re-measure.
	sp2 := alloc.NewSpace()
	tuned := make([]phys.Addr, 4)
	for i := range tuned {
		tuned[i] = sp2.Memalign(phys.PageSize, n*phys.WordSize+plan.Offsets[i]) + phys.Addr(plan.Offsets[i])
	}
	ss2 := core.StreamSet{Bases: tuned, Stride: phys.LineSize}
	fmt.Printf("tuned placement:   regime=%-8s predicted relative bandwidth %.2f\n",
		core.Regime(ms, ss2), core.PredictRelativeBandwidth(ms, ss2))

	k2 := kernels.VTriad(tuned[0], tuned[1], tuned[2], tuned[3], n)
	p2 := k2.Program(omp.StaticBlock{}, 64)
	p2.WarmLines = machine.MustGet("t2").Config.L2.SizeBytes / phys.LineSize
	r2 := m.Run(p2)
	fmt.Printf("                   measured %.2f GB/s\n\n", r2.GBps)

	fmt.Printf("speedup from planned offsets: %.1fx\n", r2.GBps/r.GBps)
}
