// Heat2d solves the 2D heat equation with the Jacobi solver on the host —
// using segmented-array rows placed by the planner — validates the result
// against the analytic steady state, and then compares plain vs. optimized
// row placement on the simulated T2 (the Fig. 6 experiment at one size).
package main

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/jacobi"
	"repro/internal/machine"
	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/segarray"
)

func main() {
	// ---- host solve on segmented rows -------------------------------
	const n = 65
	rp := core.PlanRows(machine.MustGet("t2").Spec())
	params := segarray.Params{ElemSize: phys.WordSize, Align: phys.PageSize,
		SegAlign: rp.SegAlign, Shift: rp.Shift}
	rows := make([]int64, n)
	for i := range rows {
		rows[i] = n
	}
	sp := alloc.NewSpace()
	mkGrid := func() *jacobi.Grid {
		arr := segarray.NewArray[float64](segarray.Plan(sp, params, rows))
		host := make([][]float64, n)
		for i := range host {
			host[i] = arr.Segment(i)
		}
		g := jacobi.FromRows(n, host)
		g.SetBoundary(100, 0) // 100 degrees at the top, 0 at the bottom
		return g
	}
	a, b := mkGrid(), mkGrid()
	res := jacobi.Solve(a, b, 8000, 8)
	fmt.Printf("host solve: %dx%d grid, 8000 sweeps, 8 goroutines\n", n, n)
	fmt.Printf("  center temperature: %.3f (analytic: 50.000)\n", res.Rows[n/2][n/2])
	fmt.Printf("  max deviation from analytic steady state: %.2e\n\n", res.MaxLinearError(100, 0))

	// ---- simulated performance comparison ---------------------------
	// N = 1216 is one of the unlucky sizes: the plain row stride
	// (1216*8 bytes) is a multiple of 512, so every contiguous row starts
	// on the same controller. The paper's Fig. 6 "plain" curve dips at
	// exactly such sizes (periodicity 64 in N); sizes like 1200 are lucky
	// and the plain code matches the optimized one there.
	const simN = 1216
	m := chip.New(machine.MustGet("t2").Config)
	warm := machine.MustGet("t2").Config.L2.SizeBytes / phys.LineSize

	spPlain := alloc.NewSpace()
	plain := jacobi.Spec{
		N:      simN,
		Src:    jacobi.PlainRows(spPlain.Malloc(simN*simN*phys.WordSize), simN),
		Dst:    jacobi.PlainRows(spPlain.Malloc(simN*simN*phys.WordSize), simN),
		Sched:  omp.StaticChunk{Size: 1},
		Sweeps: 2,
	}
	pp := plain.Program(64)
	pp.WarmLines = warm
	rPlain := m.Run(pp)

	spOpt := alloc.NewSpace()
	simRows := make([]int64, simN)
	for i := range simRows {
		simRows[i] = simN
	}
	srcL := segarray.Plan(spOpt, params, simRows)
	dstL := segarray.Plan(spOpt, params, simRows)
	optimized := jacobi.Spec{
		N:      simN,
		Src:    func(i int64) phys.Addr { return srcL.Segs[i].Start },
		Dst:    func(i int64) phys.Addr { return dstL.Segs[i].Start },
		Sched:  omp.StaticChunk{Size: 1},
		Sweeps: 2,
	}
	po := optimized.Program(64)
	po.WarmLines = warm
	rOpt := m.Run(po)

	fmt.Printf("simulated T2, N=%d, 64 threads:\n", simN)
	fmt.Printf("  plain rows:      %7.1f MLUPs/s\n", rPlain.MUPs)
	fmt.Printf("  planned rows:    %7.1f MLUPs/s  (align %dB, shift %dB, %s)\n",
		rOpt.MUPs, rp.SegAlign, rp.Shift, rp.Schedule)
	fmt.Printf("  improvement:     %7.1fx\n", rOpt.MUPs/rPlain.MUPs)
}
