// Stream-tuning reproduces the Fig. 2 offset study in miniature: it sweeps
// the STREAM COMMON-block offset, runs the triad on the simulated T2, and
// annotates every row with the analyzer's predicted regime — showing that
// the good and bad offsets are predictable from the address mapping alone.
package main

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/omp"
	"repro/internal/phys"
)

func main() {
	const n = 1 << 18
	m := chip.New(machine.MustGet("t2").Config)
	ms := machine.MustGet("t2").Spec()
	warm := machine.MustGet("t2").Config.L2.SizeBytes / phys.LineSize

	fmt.Println("offset  ctrl-phases  predicted   measured GB/s")
	fmt.Println("------  -----------  ---------  --------------")
	for _, off := range []int64{0, 8, 13, 16, 24, 32, 40, 48, 56, 64, 96, 128} {
		phases, regime := core.ExplainStreamOffset(ms, n, off)
		sp := alloc.NewSpace()
		bases := sp.Common(3, n+off, phys.WordSize)
		k := kernels.StreamTriad(bases[0], bases[1], bases[2], n)
		p := k.Program(omp.StaticBlock{}, 64)
		p.WarmLines = warm
		r := m.Run(p)
		bar := int(r.GBps)
		fmt.Printf("%6d  A=%d B=%d C=%d  %-9s  %6.2f %s\n",
			off, phases[0], phases[1], phases[2], regime, r.GBps,
			bars(bar))
	}
	fmt.Println("\nperiodicity: offsets 0 and 64 words (512 bytes) behave identically —")
	fmt.Println("the controller interleave period of the T2 address mapping.")
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '*'
	}
	return string(out)
}
