// Walkthrough: take the paper's placement recipe to a machine that never
// existed. We pick the hypothetical 8-controller profile from the machine
// registry, let the analyzer derive the planned offsets from its
// interleave (no trial and error, and no T2 constants anywhere), then run
// the congruent and planned placements on a sweep of machine profiles and
// read off the congruence cliff: where it appears, how it grows with the
// controller count, and what dissolves it.
//
// Run with: go run ./examples/mc-scaling
package main

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/omp"
	"repro/internal/phys"
)

const (
	n       = 1 << 17 // elements per stream: chunks stay period-congruent on every profile below
	streams = 8       // at least as many streams as any profile has controllers
	threads = 64
)

// measure runs the 8-stream load kernel on prof with all stream bases
// displaced by i*offset bytes after period alignment.
func measure(prof machine.Profile, offset int64) chip.Result {
	ms := prof.Spec()
	align := int64(phys.PageSize)
	if per := ms.Mapping.Period(); per > align {
		align = per
	}
	sp := alloc.NewSpace()
	bases := sp.OffsetBases(streams, n*phys.WordSize, align, offset)
	k := kernels.LoadSum(bases, n)
	p := k.Program(omp.StaticBlock{}, threads)
	p.WarmLines = prof.Config.L2.SizeBytes / phys.LineSize
	return chip.New(prof.Config).Run(p)
}

func main() {
	// Step 1: pick a machine. The registry describes every profile; mc8 is
	// the 8-controller chip the paper's T2 never was.
	prof := machine.MustGet("mc8")
	ms := prof.Spec()
	fmt.Printf("machine %q: %s\n", prof.Name, prof.Doc)
	fmt.Printf("  controllers=%d  banks=%d  interleave period=%d B\n\n",
		ms.Mapping.Controllers(), ms.Mapping.Banks(), ms.Mapping.Period())

	// Step 2: ask the analyzer for offsets. Everything is derived from the
	// profile's interleave: the step is period/controllers, here 128 B over
	// a 1 kB period.
	plan := core.PlanArrayOffsets(ms, streams)
	fmt.Printf("planned offsets for %d streams: %v bytes\n", streams, plan.Offsets)
	fmt.Printf("predicted controller concurrency: %.0f of %d\n\n",
		plan.Concurrency, ms.Mapping.Controllers())

	// Step 3: sweep the cliff across machine profiles. "congruent" places
	// every stream base congruent mod the period (the paper's worst case);
	// "planned" applies the analyzer's offsets for that profile.
	fmt.Printf("%-10s %5s %9s %12s %12s %8s\n",
		"machine", "MCs", "period", "congruent", "planned", "cliff")
	for _, name := range []string{"t2-1mc", "t2-2mc", "t2", "mc8", "t2-wide1k", "xor"} {
		p := machine.MustGet(name)
		pms := p.Spec()
		worst := measure(p, 0)
		best := measure(p, core.PlanArrayOffsets(pms, streams).Offsets[1])
		fmt.Printf("%-10s %5d %9d %9.2f GB/s %9.2f GB/s %7.1fx\n",
			name, pms.Mapping.Controllers(), pms.Mapping.Period(),
			worst.GBps, best.GBps, best.GBps/worst.GBps)
	}
	fmt.Println()
	fmt.Println("reading the cliff: one controller has nothing to alias against (1.0x);")
	fmt.Println("the cliff appears with the second controller, grows to mc8, survives a")
	fmt.Println("coarser granule (the modulus moves, the effect stays), and dissolves")
	fmt.Println("under the hashed interleave — placement tuning only matters on machines")
	fmt.Println("with a periodic, bit-field interleave.")
}
