// Command figures regenerates the paper's evaluation figures (Figs. 2, 4,
// 5, 6, 7) on the simulated UltraSPARC T2 by running the declarative
// experiments in internal/bench on the internal/exp worker pool. Each
// figure is written as CSV and as a machine-readable JSON trajectory
// (BENCH_<fig>.json), rendered as a plain-text plot, and validated by the
// shape checks that encode the paper's qualitative claims.
//
// Output is deterministic in the sweep alone: -jobs N only changes wall
// time, never a byte of the CSV or JSON.
//
// Usage:
//
//	figures [-fig all|2|4|5|6|7|comma-list] [-scale full|small]
//	        [-jobs N] [-json=false] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/exp"
	"repro/internal/stats"
)

func main() {
	fig := flag.String("fig", "all", "figures to regenerate: all, or a comma list of 2,4,5,6,7")
	scale := flag.String("scale", "full", "experiment scale: full or small")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "worker goroutines for the sweep pool (<=0: GOMAXPROCS)")
	jsonOut := flag.Bool("json", true, "also write BENCH_<fig>.json trajectories")
	out := flag.String("out", "figures-out", "output directory for CSV/JSON files")
	flag.Parse()

	var o bench.Options
	switch *scale {
	case "full":
		o = bench.Default()
	case "small":
		o = bench.Small()
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}

	figures := bench.Figures(o)
	selected := map[string]bool{}
	if *fig != "all" {
		known := map[string]bool{}
		for _, f := range figures {
			known[f.Name] = true
		}
		for _, f := range strings.Split(*fig, ",") {
			name := "fig" + strings.TrimSpace(f)
			if !known[name] {
				fmt.Fprintf(os.Stderr, "figures: no figure matches -fig %q\n", strings.TrimSpace(f))
				os.Exit(2)
			}
			selected[name] = true
		}
	}

	runner := exp.Runner{Jobs: *jobs}
	failed := false
	for _, f := range figures {
		if *fig != "all" && !selected[f.Name] {
			continue
		}
		start := time.Now()
		outcome, err := runner.Run(f.Exp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", f.Name, err)
			os.Exit(1)
		}
		fmt.Printf("== %s — %d points, %d jobs, %s ==\n",
			f.Title, len(outcome.Points), *jobs, time.Since(start).Round(time.Millisecond))
		series := outcome.Series()

		csvPath := filepath.Join(*out, f.Name+".csv")
		writeFile(csvPath, func(w *os.File) error {
			return stats.WriteCSV(w, f.XLabel, series)
		})
		if *jsonOut {
			jsonPath := filepath.Join(*out, "BENCH_"+f.Name+".json")
			if err := outcome.WriteJSON(jsonPath); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %s: %v\n", f.Name, err)
				os.Exit(1)
			}
		}

		stats.Plot(os.Stdout, f.Name, series, 78, 16)
		if err := f.Check(series); err != nil {
			failed = true
			fmt.Printf("SHAPE-CHECK %s: FAIL: %v\n\n", f.Name, err)
		} else {
			fmt.Printf("SHAPE-CHECK %s: ok (written to %s)\n\n", f.Name, csvPath)
		}
	}
	if failed {
		fmt.Println(strings.Repeat("-", 40))
		fmt.Println("one or more shape checks FAILED")
		os.Exit(1)
	}
}

func writeFile(path string, fill func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := fill(f); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
}
