// Command figures regenerates the paper's evaluation figures (Figs. 2, 4,
// 5, 6, 7) on the simulated UltraSPARC T2, writes each as CSV, renders a
// plain-text plot, and runs the shape checks that encode the paper's
// qualitative claims.
//
// Usage:
//
//	figures [-fig all|2|4|5|6|7] [-scale full|small] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/stats"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 2, 4, 5, 6, 7")
	scale := flag.String("scale", "full", "experiment scale: full or small")
	out := flag.String("out", "figures-out", "output directory for CSV files")
	flag.Parse()

	var o bench.Options
	switch *scale {
	case "full":
		o = bench.Default()
	case "small":
		o = bench.Small()
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}

	run := func(name string) bool { return *fig == "all" || *fig == name }
	failed := false

	emit := func(name, xlabel string, series []stats.Series, check error) {
		path := filepath.Join(*out, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		if err := stats.WriteCSV(f, xlabel, series); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		stats.Plot(os.Stdout, name, series, 78, 16)
		if check != nil {
			failed = true
			fmt.Printf("SHAPE-CHECK %s: FAIL: %v\n\n", name, check)
		} else {
			fmt.Printf("SHAPE-CHECK %s: ok (written to %s)\n\n", name, path)
		}
	}

	if run("2") {
		start := time.Now()
		r := bench.Fig2(o)
		fmt.Printf("== Fig. 2 (STREAM vs offset) — %s ==\n", time.Since(start).Round(time.Second))
		series := append(append([]stats.Series{}, r.Triad...), r.Copy)
		emit("fig2", "offset_words", series, bench.CheckFig2(r, o.OffsetStep))
	}
	if run("4") {
		start := time.Now()
		s := bench.Fig4(o)
		fmt.Printf("== Fig. 4 (vector triad vs N) — %s ==\n", time.Since(start).Round(time.Second))
		emit("fig4", "N", s, bench.CheckFig4(s))
	}
	if run("5") {
		start := time.Now()
		s := bench.Fig5(o, 64)
		fmt.Printf("== Fig. 5 (segmented iterator overhead) — %s ==\n", time.Since(start).Round(time.Second))
		emit("fig5", "N", s, bench.CheckFig5(s))
	}
	if run("6") {
		start := time.Now()
		s := bench.Fig6(o)
		fmt.Printf("== Fig. 6 (2D Jacobi vs N) — %s ==\n", time.Since(start).Round(time.Second))
		emit("fig6", "N", s, bench.CheckFig6(s))
	}
	if run("7") {
		start := time.Now()
		s := bench.Fig7(o)
		fmt.Printf("== Fig. 7 (LBM vs N) — %s ==\n", time.Since(start).Round(time.Second))
		emit("fig7", "N", s, bench.CheckFig7(s))
	}

	if failed {
		fmt.Println(strings.Repeat("-", 40))
		fmt.Println("one or more shape checks FAILED")
		os.Exit(1)
	}
}
