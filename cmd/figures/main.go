// Command figures regenerates the paper's evaluation figures (Figs. 2, 4,
// 5, 6, 7) and the controller-scaling study on a simulated machine by
// running the declarative experiments in internal/bench on the
// internal/exp worker pool. Each figure is written as CSV and as a
// machine-readable JSON trajectory (BENCH_<fig>.json), rendered as a
// plain-text plot, and validated by the shape checks that encode the
// paper's qualitative claims.
//
// Output is deterministic in the sweep alone: -jobs N only changes wall
// time, never a byte of the CSV or JSON.
//
// Usage:
//
//	figures [-fig all|2|4|5|6|7|scaling|comma-list] [-scale full|small]
//	        [-machine NAME] [-jobs N] [-shards N] [-timeout DUR]
//	        [-epoch-width N [-relaxed-ok]] [-epoch-batch=false] [-speculate]
//	        [-json=false] [-out DIR] [-cpuprofile FILE] [-memprofile FILE]
//	figures -list
//
// -timeout bounds the whole regeneration by wall-clock time: on expiry
// every in-flight simulation aborts cooperatively, no partial figure files
// are written, and the exit code is 3 (distinct from shape-check failures,
// which exit 1).
//
// -shards runs every point on the chip's controller-domain sharded engine
// (N intra-run workers at most, -1 for auto); the worker count shares the
// core budget with -jobs and never changes a result byte, but the sharded
// engine's epoch semantics differ slightly from the sequential default, so
// committed BENCH trajectories are always regenerated with -shards 0.
//
// -epoch-width overrides the sharded engine's epoch width: values above
// the machine's conservative bound run relaxed wide epochs, which are
// deterministic but trade bounded timing drift for speed and therefore
// must not silently enter JSON trajectories — combining a relaxed width
// with -json requires the explicit -relaxed-ok. -epoch-batch=false selects
// the engine's classic rendezvous-per-epoch loop (byte-identical results,
// only slower), mainly for differential measurements. -speculate turns on
// the batched loop's optimistic speculative bursts (requires -shards and
// is incompatible with -epoch-batch=false): a pure execution budget that
// never changes a result byte, so trajectories need no opt-in.
//
// -machine reruns the sweeps on another profile from the internal/machine
// registry; the profile name is stamped into the JSON trajectories. The
// shape checks encode claims about the default t2 machine and are skipped
// for other profiles (except the scaling study, which sweeps the machine
// axis itself). -list prints the figure and machine-profile registries
// and exits, so scenarios are discoverable without reading source.
// -cpuprofile and -memprofile write pprof profiles covering the sweeps,
// so performance claims about the simulator can be grounded in data.
//
// Exit codes (see doc.go for the repo-wide conventions):
//
//	0  figures regenerated; every selected shape check passed or was skipped
//	1  runtime failure: simulation error, unwritable output, shape-check FAIL
//	2  flag misuse: unknown figure, scale or machine; shard or epoch-width
//	   misconfiguration
//	3  -timeout expired before the regeneration finished
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/chip"
	"repro/internal/exp"
	"repro/internal/machine"
	"repro/internal/profiling"
	"repro/internal/stats"
)

func main() {
	fig := flag.String("fig", "all", "figures to regenerate: all, or a comma list of 2,4,5,6,7,scaling")
	scale := flag.String("scale", "full", "experiment scale: full or small")
	machineName := flag.String("machine", machine.DefaultName,
		"machine profile to simulate: "+strings.Join(machine.Names(), ", "))
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "worker goroutines for the sweep pool (<=0: GOMAXPROCS)")
	shards := flag.Int("shards", 0, "run each point on the controller-domain sharded engine with up to N workers (0: sequential engine, -1: auto — share GOMAXPROCS with -jobs); results are invariant under N")
	epochWidth := flag.Int64("epoch-width", 0, "override the sharded engine's epoch width in cycles (0: conservative bound; wider values run relaxed epochs whose results differ — see -relaxed-ok)")
	relaxedOK := flag.Bool("relaxed-ok", false, "allow -json trajectories from a relaxed -epoch-width run (they are NOT comparable to conservative trajectories)")
	epochBatch := flag.Bool("epoch-batch", true, "use the sharded engine's batched epoch loop (false: classic rendezvous-per-epoch loop; results are byte-identical either way)")
	speculate := flag.Bool("speculate", false, "run the sharded engine with optimistic speculative bursts (requires -shards and the batched loop; results are byte-identical on or off)")
	jsonOut := flag.Bool("json", true, "also write BENCH_<fig>.json trajectories")
	out := flag.String("out", "figures-out", "output directory for CSV/JSON files")
	list := flag.Bool("list", false, "print the figure and machine-profile registries and exit")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole regeneration; on expiry in-flight runs abort cooperatively and the exit code is 3 (0: no deadline)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the sweeps to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the sweeps) to this file")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
	defer stopProfiles()
	// fail flushes the profiles before exiting, so a failed sweep still
	// leaves parseable profile files behind.
	fail := func(code int) {
		stopProfiles()
		os.Exit(code)
	}

	var o bench.Options
	switch *scale {
	case "full":
		o = bench.Default()
	case "small":
		o = bench.Small()
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown scale %q\n", *scale)
		fail(2)
	}
	prof, err := machine.Get(*machineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		fail(2)
	}
	o = o.WithProfile(prof)
	// An explicit -shards beyond the selected machine's controller-domain
	// count cannot buy anything (the domain is the unit of decomposition);
	// reject it up front instead of silently running degraded for hours.
	if d := prof.Config.Mapping.Controllers(); *shards > d {
		fmt.Fprintf(os.Stderr, "figures: %v: -shards %d, machine %s has %d controller domains\n",
			chip.ErrShardOversubscribed, *shards, prof.Name, d)
		fail(2)
	}
	// Run-level and sweep-level parallelism share the core budget: with J
	// sweep jobs each sharded run gets GOMAXPROCS/J workers at most.
	o.Shards = exp.ShardBudget(*shards, *jobs)
	o.EpochWidth = *epochWidth
	o.NoBatch = !*epochBatch
	o.Speculate = *speculate
	// Speculation is a pure execution budget for the sharded batched loop:
	// it never changes a result byte, but it needs both prerequisites.
	if *speculate {
		if *shards == 0 {
			fmt.Fprintln(os.Stderr, "figures: -speculate only applies to the sharded engine; set -shards too")
			fail(2)
		}
		if !*epochBatch {
			fmt.Fprintf(os.Stderr, "figures: %v\n", chip.ErrSpeculateNoBatch)
			fail(2)
		}
	}
	// Relaxed wide epochs trade timing fidelity for speed; their results are
	// deterministic but NOT comparable to conservative trajectories, so
	// writing BENCH_*.json from a relaxed run needs an explicit opt-in.
	if *epochWidth != 0 {
		if *shards == 0 {
			fmt.Fprintln(os.Stderr, "figures: -epoch-width only applies to the sharded engine; set -shards too")
			fail(2)
		}
		m := chip.New(prof.Config)
		if *epochWidth < m.EpochWidth() {
			fmt.Fprintf(os.Stderr, "figures: %v: -epoch-width %d, machine %s derives %d\n",
				chip.ErrEpochWidthTooNarrow, *epochWidth, prof.Name, m.EpochWidth())
			fail(2)
		}
		if *epochWidth > m.EpochWidth() && *jsonOut && !*relaxedOK {
			fmt.Fprintf(os.Stderr, "figures: -epoch-width %d is relaxed (conservative bound %d): refusing to write -json trajectories without -relaxed-ok\n",
				*epochWidth, m.EpochWidth())
			fail(2)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *list {
		printRegistries(o)
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		fail(1)
	}

	figures := bench.Figures(o)
	selected := map[string]bool{}
	if *fig != "all" {
		known := map[string]bool{}
		for _, f := range figures {
			known[f.Name] = true
		}
		for _, f := range strings.Split(*fig, ",") {
			name := strings.TrimSpace(f)
			if !known[name] {
				name = "fig" + name
			}
			if !known[name] {
				fmt.Fprintf(os.Stderr, "figures: no figure matches -fig %q\n", strings.TrimSpace(f))
				fail(2)
			}
			selected[name] = true
		}
	}

	// The t2 shape checks assert claims about the paper's machine; the
	// scaling study carries its own machine axis and is checked everywhere.
	checkable := func(name string) bool {
		return o.Machine == "" || name == "scaling"
	}

	runner := exp.Runner{Jobs: *jobs}
	failed := false
	for _, f := range figures {
		if *fig != "all" && !selected[f.Name] {
			continue
		}
		start := time.Now()
		outcome, err := runner.RunContext(ctx, f.Exp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", f.Name, err)
			if errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(os.Stderr, "figures: timeout (-timeout %s) — %d of the figure's points completed before the abort\n",
					*timeout, len(outcome.Points))
				fail(3)
			}
			fail(1)
		}
		elapsed := time.Since(start)
		fmt.Printf("== %s [machine %s] — %d points, %d jobs, %s ==\n",
			f.Title, prof.Name, len(outcome.Points), *jobs, elapsed.Round(time.Millisecond))
		if t := outcome.ShardTotals(); t.Shards > 0 {
			workers := int64(o.Shards)
			if t.Shards < workers {
				workers = t.Shards // the engine caps workers at the domain count
			}
			fmt.Printf("   sharded engine: %d domains, %d run workers, width %d, %d rounds (%d micro-epochs), %.1f%% busy shards\n",
				t.Shards, workers, t.Width, t.Epochs, t.BatchedEpochs, t.BusyShardPct())
			if t.SpecCommits > 0 || t.SpecRollbacks > 0 {
				fmt.Printf("   speculation: %d bursts committed, %d rolled back (%.1f%% commit), %d micro-epochs speculative\n",
					t.SpecCommits, t.SpecRollbacks,
					100*float64(t.SpecCommits)/float64(t.SpecCommits+t.SpecRollbacks), t.SpecEpochs)
			}
		}
		if outcome.Retries > 0 || outcome.PointErrors > 0 {
			fmt.Printf("   resilience: %d retries, %d point errors, %d watchdog trips\n",
				outcome.Retries, outcome.PointErrors, outcome.WatchdogTrips)
		}
		series := outcome.Series()

		csvPath := filepath.Join(*out, f.Name+".csv")
		if err := writeFile(csvPath, func(w *os.File) error {
			return stats.WriteCSV(w, f.XLabel, series)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			fail(1)
		}
		if *jsonOut {
			jsonPath := filepath.Join(*out, "BENCH_"+f.Name+".json")
			if err := outcome.WriteJSON(jsonPath); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %s: %v\n", f.Name, err)
				fail(1)
			}
		}

		stats.Plot(os.Stdout, f.Name, series, 78, 16)
		if !checkable(f.Name) {
			fmt.Printf("SHAPE-CHECK %s: skipped (checks encode t2 claims; machine is %s; written to %s)\n\n",
				f.Name, prof.Name, csvPath)
		} else if err := f.Check(series); err != nil {
			failed = true
			fmt.Printf("SHAPE-CHECK %s: FAIL: %v\n\n", f.Name, err)
		} else {
			fmt.Printf("SHAPE-CHECK %s: ok (written to %s)\n\n", f.Name, csvPath)
		}
	}
	if failed {
		fmt.Println(strings.Repeat("-", 40))
		fmt.Println("one or more shape checks FAILED")
		fail(1)
	}
}

// printRegistries renders the discoverable scenario space: every figure
// experiment and every machine profile.
func printRegistries(o bench.Options) {
	fmt.Println("figures (-fig):")
	for _, f := range bench.Figures(o) {
		fmt.Printf("  %-8s %s\n", f.Name, f.Title)
		fmt.Printf("  %-8s   %s\n", "", f.Exp.Doc)
	}
	fmt.Println()
	fmt.Println("machine profiles (-machine):")
	for _, p := range machine.Profiles() {
		def := ""
		if p.Name == machine.DefaultName {
			def = " (default)"
		}
		fmt.Printf("  %-10s %s%s\n", p.Name, p.Doc, def)
	}
}

func writeFile(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fill(f)
}
