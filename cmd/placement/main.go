// Command placement is the paper's optimization recipe as a CLI: describe
// a kernel's stream structure and it prints the placement parameters
// (offsets, segment alignment, shift, schedule) plus the predicted
// controller utilization — "no trial and error required" (Sect. 2.3).
// Every subcommand accepts -machine to plan for any profile in the
// internal/machine registry; the analyzer derives periods and offsets
// from the profile's interleave, so the recipe is machine-generic.
//
// Subcommands:
//
//	placement offsets -streams 4
//	placement offsets -streams 8 -machine mc8
//	placement rows -machine t2-wide1k
//	placement explain -n 33554432 -offset 32
//	placement layout -n 128
//	placement sweep -n 33554432 -max 256 -step 2 -jobs 8 -json pred.json
//
// The sweep subcommand runs the analyzer itself as a declarative
// experiment on the internal/exp worker pool: predicted relative bandwidth
// and regime for every COMMON-block offset, no simulation involved — the
// engine is agnostic to what a point evaluates.
//
// Exit codes (see doc.go for the repo-wide conventions):
//
//	0  plan or sweep completed
//	1  runtime failure: analyzer sweep error, unwritable -json output
//	2  usage or flag misuse (unknown subcommand, machine or flag value)
//	3  -timeout expired before the sweep finished
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/phys"
)

// machineFlag registers the shared -machine flag on a subcommand's flag
// set; resolve it after Parse.
func machineFlag(fs *flag.FlagSet) *string {
	return fs.String("machine", machine.DefaultName,
		"machine profile to plan for: "+strings.Join(machine.Names(), ", "))
}

// specFor resolves the profile name into the analyzer's machine
// description, exiting with the registry's error on an unknown name.
func specFor(name string) core.MachineSpec {
	prof, err := machine.Get(name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "placement: %v\n", err)
		os.Exit(2)
	}
	return prof.Spec()
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "offsets":
		fs := flag.NewFlagSet("offsets", flag.ExitOnError)
		streams := fs.Int("streams", 4, "concurrent streams (reads + writes) of the loop kernel")
		mn := machineFlag(fs)
		fs.Parse(os.Args[2:])
		ms := specFor(*mn)
		p := core.PlanArrayOffsets(ms, *streams)
		fmt.Printf("per-array byte offsets (after common alignment):\n")
		for i, o := range p.Offsets {
			fmt.Printf("  array %d: +%d bytes\n", i, o)
		}
		fmt.Printf("predicted controller concurrency: %.2f of %d\n", p.Concurrency, ms.Mapping.Controllers())
	case "rows":
		fs := flag.NewFlagSet("rows", flag.ExitOnError)
		mn := machineFlag(fs)
		fs.Parse(os.Args[2:])
		ms := specFor(*mn)
		rp := core.PlanRows(ms)
		fmt.Printf("row-organized (stencil) placement:\n")
		fmt.Printf("  segment alignment: %d bytes (the controller interleave period)\n", rp.SegAlign)
		fmt.Printf("  per-row shift:     %d bytes (one controller step)\n", rp.Shift)
		fmt.Printf("  schedule:          %s (keeps the team's row band contiguous in the L2)\n", rp.Schedule)
	case "explain":
		fs := flag.NewFlagSet("explain", flag.ExitOnError)
		n := fs.Int64("n", 1<<25, "STREAM array length in DP words")
		off := fs.Int64("offset", 0, "COMMON-block offset in DP words")
		mn := machineFlag(fs)
		fs.Parse(os.Args[2:])
		ms := specFor(*mn)
		phases, regime := core.ExplainStreamOffset(ms, *n, *off)
		fmt.Printf("STREAM COMMON block, N=%d, offset=%d words:\n", *n, *off)
		for i, p := range phases {
			fmt.Printf("  array %c starts on controller %d\n", 'A'+i, p)
		}
		fmt.Printf("regime: %s\n", regime)
		switch regime {
		case "convoy":
			fmt.Println("  -> all threads hit one controller at a time; expect the bandwidth floor")
		case "partial":
			fmt.Println("  -> some controllers shared; expect an intermediate level")
		case "uniform":
			fmt.Println("  -> uniform utilization of all controllers; expect the ceiling")
		}
	case "layout":
		fs := flag.NewFlagSet("layout", flag.ExitOnError)
		n := fs.Int("n", 128, "LBM cubic domain edge")
		mn := machineFlag(fs)
		fs.Parse(os.Args[2:])
		ms := specFor(*mn)
		p := *n + 2
		sIJKv := int64(lbm.IJKv.VStride(p)) * phys.WordSize
		sIvJK := int64(lbm.IvJK.VStride(p)) * phys.WordSize
		fmt.Printf("D3Q19 stream strides at N=%d (padded edge %d):\n", *n, p)
		fmt.Printf("  IJKv: %d bytes -> %d controllers covered\n", sIJKv, core.PhaseSpread(ms, sIJKv, lbm.Q))
		fmt.Printf("  IvJK: %d bytes -> %d controllers covered\n", sIvJK, core.PhaseSpread(ms, sIvJK, lbm.Q))
		fmt.Printf("advised layout: %s\n", core.AdviseLayout(ms, "IJKv", sIJKv, "IvJK", sIvJK, lbm.Q))
	case "sweep":
		fs := flag.NewFlagSet("sweep", flag.ExitOnError)
		n := fs.Int64("n", 1<<25, "STREAM array length in DP words")
		max := fs.Int64("max", 256, "largest COMMON-block offset to analyze (words)")
		step := fs.Int64("step", 2, "offset step (words)")
		jobs := fs.Int("jobs", 0, "worker goroutines (<=0: GOMAXPROCS)")
		jsonOut := fs.String("json", "", "write the JSON trajectory to this file ('-' for stdout)")
		timeout := fs.Duration("timeout", 0, "wall-clock budget for the sweep; on expiry it aborts cooperatively and the exit code is 3 (0: no deadline)")
		mn := machineFlag(fs)
		fs.Parse(os.Args[2:])
		ms := specFor(*mn)
		if *step <= 0 || *max < 0 {
			fmt.Fprintln(os.Stderr, "placement: sweep needs -step > 0 and -max >= 0")
			os.Exit(2)
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}

		e := exp.Experiment{
			Name:    "placement/offset-prediction",
			Doc:     "analyzer-predicted relative STREAM bandwidth vs COMMON-block offset",
			Machine: machine.Tag(*mn),
			Grid:    exp.Grid{exp.Span64("offset", 0, *max+1, *step)},
			Run: func(_ chip.Config, p exp.Point, _ *exp.Scratch) (exp.Result, error) {
				off := p.Int64("offset")
				ndim := *n + off
				bases := []phys.Addr{0, phys.Addr(ndim * phys.WordSize), phys.Addr(2 * ndim * phys.WordSize)}
				pred := core.PredictRelativeBandwidth(ms, core.StreamSet{Bases: bases, Stride: phys.LineSize})
				phases, _ := core.ExplainStreamOffset(ms, *n, off)
				spread := map[int]bool{}
				for _, ph := range phases {
					spread[ph] = true
				}
				return exp.Result{
					Series: "predicted",
					X:      float64(off),
					Y:      pred,
					Metrics: map[string]float64{
						"controllers_covered": float64(len(spread)),
					},
				}, nil
			},
		}
		out, err := exp.Runner{Jobs: *jobs}.RunContext(ctx, e)
		if err != nil {
			fmt.Fprintf(os.Stderr, "placement: %v\n", err)
			if errors.Is(err, context.DeadlineExceeded) {
				os.Exit(3)
			}
			os.Exit(1)
		}
		fmt.Printf("%8s %10s %12s\n", "offset", "predicted", "controllers")
		for _, pr := range out.Points {
			fmt.Printf("%8.0f %10.2f %12.0f\n",
				pr.Result.X, pr.Result.Y, pr.Result.Metrics["controllers_covered"])
		}
		if *jsonOut != "" {
			if err := out.WriteJSON(*jsonOut); err != nil {
				fmt.Fprintf(os.Stderr, "placement: %v\n", err)
				os.Exit(1)
			}
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: placement {offsets|rows|explain|layout|sweep} [flags]")
	os.Exit(2)
}
