// Command placement is the paper's optimization recipe as a CLI: describe
// a kernel's stream structure and it prints the placement parameters
// (offsets, segment alignment, shift, schedule) plus the predicted
// controller utilization — "no trial and error required" (Sect. 2.3).
//
// Subcommands:
//
//	placement offsets -streams 4
//	placement rows
//	placement explain -n 33554432 -offset 32
//	placement layout -n 128
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/lbm"
	"repro/internal/phys"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	ms := core.T2Spec()
	switch os.Args[1] {
	case "offsets":
		fs := flag.NewFlagSet("offsets", flag.ExitOnError)
		streams := fs.Int("streams", 4, "concurrent streams (reads + writes) of the loop kernel")
		fs.Parse(os.Args[2:])
		p := core.PlanArrayOffsets(ms, *streams)
		fmt.Printf("per-array byte offsets (after common alignment):\n")
		for i, o := range p.Offsets {
			fmt.Printf("  array %d: +%d bytes\n", i, o)
		}
		fmt.Printf("predicted controller concurrency: %.2f of %d\n", p.Concurrency, ms.Mapping.Controllers())
	case "rows":
		rp := core.PlanRows(ms)
		fmt.Printf("row-organized (stencil) placement:\n")
		fmt.Printf("  segment alignment: %d bytes (the controller interleave period)\n", rp.SegAlign)
		fmt.Printf("  per-row shift:     %d bytes (one controller step)\n", rp.Shift)
		fmt.Printf("  schedule:          %s (keeps the team's row band contiguous in the L2)\n", rp.Schedule)
	case "explain":
		fs := flag.NewFlagSet("explain", flag.ExitOnError)
		n := fs.Int64("n", 1<<25, "STREAM array length in DP words")
		off := fs.Int64("offset", 0, "COMMON-block offset in DP words")
		fs.Parse(os.Args[2:])
		phases, regime := core.ExplainStreamOffset(ms, *n, *off)
		fmt.Printf("STREAM COMMON block, N=%d, offset=%d words:\n", *n, *off)
		for i, p := range phases {
			fmt.Printf("  array %c starts on controller %d\n", 'A'+i, p)
		}
		fmt.Printf("regime: %s\n", regime)
		switch regime {
		case "convoy":
			fmt.Println("  -> all threads hit one controller at a time; expect the bandwidth floor")
		case "partial":
			fmt.Println("  -> some controllers shared; expect an intermediate level")
		case "uniform":
			fmt.Println("  -> uniform utilization of all controllers; expect the ceiling")
		}
	case "layout":
		fs := flag.NewFlagSet("layout", flag.ExitOnError)
		n := fs.Int("n", 128, "LBM cubic domain edge")
		fs.Parse(os.Args[2:])
		p := *n + 2
		sIJKv := int64(lbm.IJKv.VStride(p)) * phys.WordSize
		sIvJK := int64(lbm.IvJK.VStride(p)) * phys.WordSize
		fmt.Printf("D3Q19 stream strides at N=%d (padded edge %d):\n", *n, p)
		fmt.Printf("  IJKv: %d bytes -> %d controllers covered\n", sIJKv, core.PhaseSpread(ms, sIJKv, lbm.Q))
		fmt.Printf("  IvJK: %d bytes -> %d controllers covered\n", sIvJK, core.PhaseSpread(ms, sIvJK, lbm.Q))
		fmt.Printf("advised layout: %s\n", core.AdviseLayout(ms, "IJKv", sIJKv, "IvJK", sIvJK, lbm.Q))
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: placement {offsets|rows|explain|layout} [flags]")
	os.Exit(2)
}
