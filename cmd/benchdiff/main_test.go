package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func bm(metrics ...map[string]float64) doc {
	d := doc{Benchmarks: map[string]map[string]float64{}}
	for i, m := range metrics {
		d.Benchmarks[[]string{"BenchmarkA", "BenchmarkB", "BenchmarkC"}[i]] = m
	}
	return d
}

// TestLoadExitCodes pins the exit-code contract for trajectory-load
// failures: a missing file is exit 3 (generate it), a corrupt or empty
// one is exit 4 (repair it), and both error messages carry the path so
// the one-line stderr report is actionable on its own.
func TestLoadExitCodes(t *testing.T) {
	dir := t.TempDir()

	missing := filepath.Join(dir, "BENCH_perf.json")
	if _, err := load(missing); err == nil {
		t.Fatal("load of a missing file succeeded")
	} else {
		if got := loadExitCode(err); got != 3 {
			t.Errorf("missing file: exit code %d, want 3", got)
		}
		if !strings.Contains(err.Error(), missing) {
			t.Errorf("missing-file error %q does not name the path", err)
		}
	}

	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte(`{"benchmarks": {`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(corrupt); err == nil {
		t.Fatal("load of corrupt JSON succeeded")
	} else {
		if got := loadExitCode(err); got != 4 {
			t.Errorf("corrupt file: exit code %d, want 4", got)
		}
		if !strings.Contains(err.Error(), corrupt) {
			t.Errorf("corrupt-file error %q does not name the path", err)
		}
	}

	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"benchmarks": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(empty); err == nil {
		t.Fatal("load of an empty trajectory succeeded")
	} else if got := loadExitCode(err); got != 4 {
		t.Errorf("empty trajectory: exit code %d, want 4", got)
	}

	ok := filepath.Join(dir, "ok.json")
	if err := os.WriteFile(ok, []byte(`{"benchmarks": {"BenchmarkA": {"accesses/s": 1}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(ok); err != nil {
		t.Fatalf("load of a valid trajectory failed: %v", err)
	}
}

func TestCompareOK(t *testing.T) {
	base := bm(map[string]float64{"accesses/s": 100, "allocs/op": 10})
	fresh := bm(map[string]float64{"accesses/s": 95, "allocs/op": 10})
	var sb strings.Builder
	if compare(base, fresh, 0.20, 0.02, 5, &sb) {
		t.Fatalf("5%% drop within a 20%% budget failed:\n%s", sb.String())
	}
}

func TestCompareThroughputRegression(t *testing.T) {
	base := bm(map[string]float64{"accesses/s": 100})
	fresh := bm(map[string]float64{"accesses/s": 70})
	var sb strings.Builder
	if !compare(base, fresh, 0.20, 0.02, 5, &sb) {
		t.Fatal("30% drop passed a 20% budget")
	}
	out := sb.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "delta table") {
		t.Errorf("failure output missing regression marker or delta table:\n%s", out)
	}
}

func TestCompareAllocGrowthRegression(t *testing.T) {
	base := bm(map[string]float64{"allocs/op": 10000})
	fresh := bm(map[string]float64{"allocs/op": 11000})
	var sb strings.Builder
	if !compare(base, fresh, 0.20, 0.02, 5, &sb) {
		t.Fatal("10% alloc growth passed the 2% slack")
	}
}

// TestCompareToleratesOneSidedBenchmarks is the regression for the
// added/removed handling: benchmarks (and metrics) present in only one
// trajectory are reported, never gated.
func TestCompareToleratesOneSidedBenchmarks(t *testing.T) {
	base := doc{Benchmarks: map[string]map[string]float64{
		"BenchmarkShared":  {"accesses/s": 100, "old-metric": 1},
		"BenchmarkRetired": {"accesses/s": 50},
	}}
	fresh := doc{Benchmarks: map[string]map[string]float64{
		"BenchmarkShared": {"accesses/s": 100, "new-metric": 2},
		"BenchmarkNew":    {"accesses/s": 10, "allocs/op": 5},
	}}
	var sb strings.Builder
	if compare(base, fresh, 0.20, 0.02, 5, &sb) {
		t.Fatalf("one-sided benchmarks/metrics failed the gate:\n%s", sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"added benchmarks", "+ BenchmarkNew",
		"removed benchmarks", "- BenchmarkRetired",
		`"old-metric" only in baseline`,
		`"new-metric" only in fresh run`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestCompareEpochWidthInformational pins the epoch-width contract: a
// changed width between trajectories (relaxed run, or a derivation
// change) is reported as an informational line but never fails the gate,
// while an unchanged width stays silent.
func TestCompareEpochWidthInformational(t *testing.T) {
	base := bm(map[string]float64{"accesses/s": 100, "epoch-width": 3})
	fresh := bm(map[string]float64{"accesses/s": 100, "epoch-width": 12})
	var sb strings.Builder
	if compare(base, fresh, 0.20, 0.02, 5, &sb) {
		t.Fatalf("epoch-width change failed the gate:\n%s", sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "epoch-width") || !strings.Contains(out, "never gated") {
		t.Errorf("report missing the informational epoch-width line:\n%s", out)
	}

	same := bm(map[string]float64{"accesses/s": 100, "epoch-width": 3})
	sb.Reset()
	if compare(base, same, 0.20, 0.02, 5, &sb) {
		t.Fatalf("identical epoch-width failed the gate:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "epoch-width") {
		t.Errorf("unchanged epoch-width produced a report line:\n%s", sb.String())
	}
}

// TestCompareSpeculationInformational pins the speculation-telemetry
// contract: spec-epochs, spec-commit-% and rollbacks/s describe how a run
// was executed, never what it computed, so arbitrary changes — commit
// rate collapsing, rollbacks appearing — are informational lines, never
// gated regressions.
func TestCompareSpeculationInformational(t *testing.T) {
	base := bm(map[string]float64{
		"accesses/s": 100, "spec-epochs": 50000, "spec-commit-%": 95, "rollbacks/s": 0,
	})
	fresh := bm(map[string]float64{
		"accesses/s": 100, "spec-epochs": 100, "spec-commit-%": 5, "rollbacks/s": 900,
	})
	var sb strings.Builder
	if compare(base, fresh, 0.20, 0.02, 5, &sb) {
		t.Fatalf("speculation telemetry change failed the gate:\n%s", sb.String())
	}
	out := sb.String()
	for _, metric := range []string{"spec-epochs", "spec-commit-%", "rollbacks/s"} {
		if !strings.Contains(out, metric) {
			t.Errorf("report missing informational line for %q:\n%s", metric, out)
		}
	}
	if !strings.Contains(out, "never gated") {
		t.Errorf("speculation lines not marked never-gated:\n%s", out)
	}

	same := bm(map[string]float64{
		"accesses/s": 100, "spec-epochs": 50000, "spec-commit-%": 95, "rollbacks/s": 0,
	})
	sb.Reset()
	if compare(base, same, 0.20, 0.02, 5, &sb) {
		t.Fatalf("identical speculation telemetry failed the gate:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "spec-") {
		t.Errorf("unchanged speculation telemetry produced report lines:\n%s", sb.String())
	}
}

// TestDeltaTableShowsInformationalDimmed is the regression for the delta
// table silently dropping informational metrics: on a gated failure the
// table must carry the informational metrics as dimmed (ANSI faint) rows
// next to the gated columns.
func TestDeltaTableShowsInformationalDimmed(t *testing.T) {
	base := bm(map[string]float64{"accesses/s": 100, "epoch-width": 3, "spec-commit-%": 90})
	fresh := bm(map[string]float64{"accesses/s": 50, "epoch-width": 3, "spec-commit-%": 40})
	var sb strings.Builder
	if !compare(base, fresh, 0.20, 0.02, 5, &sb) {
		t.Fatal("50% throughput drop passed the gate")
	}
	out := sb.String()
	tableAt := strings.Index(out, "delta table")
	if tableAt < 0 {
		t.Fatalf("no delta table in failure output:\n%s", out)
	}
	table := out[tableAt:]
	for _, want := range []string{"epoch-width", "spec-commit-%"} {
		if !strings.Contains(table, want) {
			t.Errorf("delta table dropped informational metric %q:\n%s", want, table)
		}
	}
	if !strings.Contains(table, "\x1b[2m") || !strings.Contains(table, "\x1b[0m") {
		t.Errorf("informational rows in the delta table are not dimmed:\n%q", table)
	}
}

// TestCompareAllocNoiseTolerated pins the alloc-slack behaviour: sub-2%
// wobble passes, multiplicative growth fails.
func TestCompareAllocNoiseTolerated(t *testing.T) {
	base := bm(map[string]float64{"allocs/op": 10000})
	fresh := bm(map[string]float64{"allocs/op": 10120}) // +1.2%: warmup noise
	var sb strings.Builder
	if compare(base, fresh, 0.20, 0.02, 5, &sb) {
		t.Fatalf("1.2%% alloc wobble failed the 2%% slack:\n%s", sb.String())
	}
	blown := bm(map[string]float64{"allocs/op": 20000})
	sb.Reset()
	if !compare(base, blown, 0.20, 0.02, 5, &sb) {
		t.Fatal("2x alloc growth passed the gate")
	}
}

// TestCompareFFCoverage pins the fast-forward coverage gate: the budget is
// absolute percentage points, so a small wobble passes while losing a
// figure's worth of coverage fails, including a collapse to zero.
func TestCompareFFCoverage(t *testing.T) {
	base := bm(map[string]float64{"ff-coverage-%": 52.0})
	fresh := bm(map[string]float64{"ff-coverage-%": 48.5}) // -3.5 pts: wobble
	var sb strings.Builder
	if compare(base, fresh, 0.20, 0.02, 5, &sb) {
		t.Fatalf("3.5-point coverage drop failed a 5-point budget:\n%s", sb.String())
	}
	lost := bm(map[string]float64{"ff-coverage-%": 0})
	sb.Reset()
	if !compare(base, lost, 0.20, 0.02, 5, &sb) {
		t.Fatal("coverage collapse to zero passed the gate")
	}
	out := sb.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "delta table") {
		t.Errorf("failure output missing regression marker or delta table:\n%s", out)
	}
}
