package main

import (
	"strings"
	"testing"
)

func bm(metrics ...map[string]float64) doc {
	d := doc{Benchmarks: map[string]map[string]float64{}}
	for i, m := range metrics {
		d.Benchmarks[[]string{"BenchmarkA", "BenchmarkB", "BenchmarkC"}[i]] = m
	}
	return d
}

func TestCompareOK(t *testing.T) {
	base := bm(map[string]float64{"accesses/s": 100, "allocs/op": 10})
	fresh := bm(map[string]float64{"accesses/s": 95, "allocs/op": 10})
	var sb strings.Builder
	if compare(base, fresh, 0.20, 0.02, 5, &sb) {
		t.Fatalf("5%% drop within a 20%% budget failed:\n%s", sb.String())
	}
}

func TestCompareThroughputRegression(t *testing.T) {
	base := bm(map[string]float64{"accesses/s": 100})
	fresh := bm(map[string]float64{"accesses/s": 70})
	var sb strings.Builder
	if !compare(base, fresh, 0.20, 0.02, 5, &sb) {
		t.Fatal("30% drop passed a 20% budget")
	}
	out := sb.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "delta table") {
		t.Errorf("failure output missing regression marker or delta table:\n%s", out)
	}
}

func TestCompareAllocGrowthRegression(t *testing.T) {
	base := bm(map[string]float64{"allocs/op": 10000})
	fresh := bm(map[string]float64{"allocs/op": 11000})
	var sb strings.Builder
	if !compare(base, fresh, 0.20, 0.02, 5, &sb) {
		t.Fatal("10% alloc growth passed the 2% slack")
	}
}

// TestCompareToleratesOneSidedBenchmarks is the regression for the
// added/removed handling: benchmarks (and metrics) present in only one
// trajectory are reported, never gated.
func TestCompareToleratesOneSidedBenchmarks(t *testing.T) {
	base := doc{Benchmarks: map[string]map[string]float64{
		"BenchmarkShared":  {"accesses/s": 100, "old-metric": 1},
		"BenchmarkRetired": {"accesses/s": 50},
	}}
	fresh := doc{Benchmarks: map[string]map[string]float64{
		"BenchmarkShared": {"accesses/s": 100, "new-metric": 2},
		"BenchmarkNew":    {"accesses/s": 10, "allocs/op": 5},
	}}
	var sb strings.Builder
	if compare(base, fresh, 0.20, 0.02, 5, &sb) {
		t.Fatalf("one-sided benchmarks/metrics failed the gate:\n%s", sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"added benchmarks", "+ BenchmarkNew",
		"removed benchmarks", "- BenchmarkRetired",
		`"old-metric" only in baseline`,
		`"new-metric" only in fresh run`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestCompareAllocNoiseTolerated pins the alloc-slack behaviour: sub-2%
// wobble passes, multiplicative growth fails.
func TestCompareAllocNoiseTolerated(t *testing.T) {
	base := bm(map[string]float64{"allocs/op": 10000})
	fresh := bm(map[string]float64{"allocs/op": 10120}) // +1.2%: warmup noise
	var sb strings.Builder
	if compare(base, fresh, 0.20, 0.02, 5, &sb) {
		t.Fatalf("1.2%% alloc wobble failed the 2%% slack:\n%s", sb.String())
	}
	blown := bm(map[string]float64{"allocs/op": 20000})
	sb.Reset()
	if !compare(base, blown, 0.20, 0.02, 5, &sb) {
		t.Fatal("2x alloc growth passed the gate")
	}
}

// TestCompareFFCoverage pins the fast-forward coverage gate: the budget is
// absolute percentage points, so a small wobble passes while losing a
// figure's worth of coverage fails, including a collapse to zero.
func TestCompareFFCoverage(t *testing.T) {
	base := bm(map[string]float64{"ff-coverage-%": 52.0})
	fresh := bm(map[string]float64{"ff-coverage-%": 48.5}) // -3.5 pts: wobble
	var sb strings.Builder
	if compare(base, fresh, 0.20, 0.02, 5, &sb) {
		t.Fatalf("3.5-point coverage drop failed a 5-point budget:\n%s", sb.String())
	}
	lost := bm(map[string]float64{"ff-coverage-%": 0})
	sb.Reset()
	if !compare(base, lost, 0.20, 0.02, 5, &sb) {
		t.Fatal("coverage collapse to zero passed the gate")
	}
	out := sb.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "delta table") {
		t.Errorf("failure output missing regression marker or delta table:\n%s", out)
	}
}
