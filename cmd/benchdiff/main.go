// Command benchdiff compares two BENCH_perf.json trajectories (as written
// by cmd/benchjson) and fails on performance regressions: a drop of more
// than the allowed fraction in simulated-access throughput (accesses/s),
// a drop of more than the allowed number of points in verified
// fast-forward coverage (ff-coverage-%, an absolute percentage-point
// budget: coverage is already a ratio, so relative gating would be
// hair-trigger near zero and toothless near full coverage),
// or growth in allocs/op beyond a small slack (the committed baseline
// averages three iterations while the gate measures one, so pool and
// runtime warmup wobble the count by a few per mille; the slack absorbs
// that while still catching the closure-per-event class of regression,
// which multiplies the count). It is the gate behind `make bench-diff`,
// wired into CI as a blocking step now that BENCH_perf.json carries a
// committed baseline.
//
// Usage:
//
//	benchdiff [-max-drop 0.20] [-max-alloc-growth 0.02] [-max-ff-drop 5]
//	          -base BENCH_perf.json -fresh BENCH_perf.fresh.json
//
// Benchmarks present in only one trajectory never fail the comparison:
// they are listed in an explicit "added"/"removed" section, so growing or
// retiring a benchmark is a reviewed diff line instead of a manual repair.
// The same applies to metrics present on only one side of a shared
// benchmark (a newly reported unit, a retired one), and to the
// informational metric set — epoch-width (configuration: a change means
// the derivation moved or one side was measured relaxed) and the
// speculation telemetry spec-epochs, spec-commit-% and rollbacks/s (how
// the run was executed, never what it computed): each is reported as an
// explicit informational line when it changes but never gated. On failure
// the tool prints a per-benchmark delta table of every gated metric, with
// the informational metrics appended as dimmed rows so they stay visible
// without reading as regressions.
//
// Exit codes separate the failure classes so CI can react differently to
// each (see doc.go for the repo-wide conventions — 0/1/2 follow them; 3
// and 4 are this tool's input-availability classes, distinct so "generate
// the baseline" and "repair the baseline" are different CI reactions):
//
//	0  clean comparison, no gated regression
//	1  gated regression (throughput, ff-coverage or allocs/op)
//	2  flag misuse
//	3  a trajectory file is missing (run `make bench` to generate it)
//	4  a trajectory file exists but is corrupt or carries no benchmarks
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sort"
)

type doc struct {
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

func load(path string) (doc, error) {
	var d doc
	b, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(b, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	if len(d.Benchmarks) == 0 {
		return d, fmt.Errorf("%s: no benchmarks", path)
	}
	return d, nil
}

// loadExitCode maps a load failure onto the CLI's exit-code contract: a
// missing trajectory file is 3 (nothing was ever generated — the fix is
// `make bench`, not a revert), anything else — unreadable, unparseable,
// or an empty benchmark table — is 4 (the file exists but is corrupt).
func loadExitCode(err error) int {
	if errors.Is(err, fs.ErrNotExist) {
		return 3
	}
	return 4
}

// row is one benchmark's gated-metric comparison, kept for the failure
// table.
type row struct {
	name       string
	accBase    float64
	accFresh   float64
	accRel     float64 // fractional change; meaningful when hasAcc
	hasAcc     bool
	allocBase  float64
	allocFresh float64
	hasAlloc   bool
	ffBase     float64
	ffFresh    float64
	hasFF      bool
	failed     bool
	info       []infoDelta // informational metrics present on both sides
}

// infoDelta is one informational (never-gated) metric shared by both
// trajectories, kept so the failure table can show it dimmed instead of
// silently dropping it.
type infoDelta struct {
	name        string
	base, fresh float64
}

// informationalMetrics are never gated: they describe how a run was
// executed, not how fast or how leanly. The note explains why a change is
// review-worthy. Order is the report order.
var informationalMetrics = []struct{ name, note string }{
	{"epoch-width", "trajectories may not be comparable"},
	{"spec-epochs", "speculation telemetry"},
	{"spec-commit-%", "speculation telemetry"},
	{"rollbacks/s", "speculation telemetry"},
}

// dim wraps a report line in the ANSI faint attribute so informational
// rows in the delta table read as context, not regressions.
func dim(s string) string { return "\x1b[2m" + s + "\x1b[0m" }

// allocSlack is the absolute allocation-count slack added on top of the
// fractional budget, so tiny benchmarks are not gated on single-digit
// runtime noise.
const allocSlack = 16

// compare runs the gate and writes the report to w, returning whether any
// regression crossed the thresholds.
func compare(bd, fd doc, maxDrop, maxAllocGrowth, maxFFDrop float64, w io.Writer) bool {
	names := make([]string, 0, len(bd.Benchmarks))
	for n := range bd.Benchmarks {
		if fd.Benchmarks[n] != nil {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	failed := false
	rows := make([]row, 0, len(names))
	for _, n := range names {
		b, f := bd.Benchmarks[n], fd.Benchmarks[n]
		r := row{name: n}
		if ba, ok := b["accesses/s"]; ok && ba > 0 {
			if fa, ok := f["accesses/s"]; ok {
				r.hasAcc = true
				r.accBase, r.accFresh = ba, fa
				r.accRel = fa/ba - 1
				status := "ok"
				if r.accRel < -maxDrop {
					status = "REGRESSION"
					failed = true
					r.failed = true
				}
				fmt.Fprintf(w, "%-40s accesses/s %12.0f -> %12.0f (%+6.1f%%) %s\n", n, ba, fa, r.accRel*100, status)
			}
		}
		if bff, ok := b["ff-coverage-%"]; ok {
			if fff, ok := f["ff-coverage-%"]; ok {
				r.hasFF = true
				r.ffBase, r.ffFresh = bff, fff
				status := "ok"
				if fff < bff-maxFFDrop {
					status = "REGRESSION"
					failed = true
					r.failed = true
				}
				fmt.Fprintf(w, "%-40s ff-cov-%%   %12.1f -> %12.1f (%+6.1f pts) %s\n", n, bff, fff, fff-bff, status)
			}
		}
		if balloc, ok := b["allocs/op"]; ok {
			if falloc, ok := f["allocs/op"]; ok {
				r.hasAlloc = true
				r.allocBase, r.allocFresh = balloc, falloc
				status := "ok"
				if falloc > balloc*(1+maxAllocGrowth)+allocSlack {
					status = "REGRESSION"
					failed = true
					r.failed = true
				}
				fmt.Fprintf(w, "%-40s allocs/op  %12.0f -> %12.0f %s\n", n, balloc, falloc, status)
			}
		}
		// Informational metrics are configuration and execution telemetry,
		// not performance: epoch-width changes when the conservative
		// derivation changes or a trajectory was measured relaxed
		// (-epoch-width); the spec-* metrics describe how much of the run
		// speculative bursts covered, which never changes a result byte.
		// Either way the right reaction is review, not a red build, so a
		// change is an explicit informational line and never a gated
		// regression.
		for _, im := range informationalMetrics {
			bv, bok := b[im.name]
			fv, fok := f[im.name]
			if !bok || !fok {
				continue
			}
			if fv != bv {
				fmt.Fprintf(w, "%-40s %-11s %10.4g -> %10.4g (informational, never gated: %s)\n",
					n, im.name, bv, fv, im.note)
			}
			r.info = append(r.info, infoDelta{im.name, bv, fv})
		}
		// One-sided metrics within a shared benchmark are informational:
		// they appear when a benchmark starts (or stops) reporting a unit.
		for _, mn := range oneSided(b, f) {
			fmt.Fprintf(w, "%-40s metric %q only in baseline (retired?)\n", n, mn)
		}
		for _, mn := range oneSided(f, b) {
			fmt.Fprintf(w, "%-40s metric %q only in fresh run (added)\n", n, mn)
		}
		rows = append(rows, r)
	}

	// Benchmarks on one side only: an explicit, sorted added/removed
	// report. Neither direction is a failure.
	if added := missingFrom(fd, bd); len(added) > 0 {
		fmt.Fprintf(w, "added benchmarks (no baseline yet; not gated):\n")
		for _, n := range added {
			fmt.Fprintf(w, "  + %s\n", n)
		}
	}
	if removed := missingFrom(bd, fd); len(removed) > 0 {
		fmt.Fprintf(w, "removed benchmarks (in baseline, not in fresh run; not gated):\n")
		for _, n := range removed {
			fmt.Fprintf(w, "  - %s\n", n)
		}
	}

	if failed {
		fmt.Fprintf(w, "\nper-benchmark delta table (FAIL marks the gated regressions):\n")
		fmt.Fprintf(w, "%-40s %14s %14s %8s %12s %12s %8s %8s %s\n",
			"benchmark", "acc/s base", "acc/s fresh", "delta", "allocs base", "allocs fresh", "ff base", "ff fresh", "verdict")
		for _, r := range rows {
			acc := [3]string{"-", "-", "-"}
			if r.hasAcc {
				acc = [3]string{
					fmt.Sprintf("%.0f", r.accBase),
					fmt.Sprintf("%.0f", r.accFresh),
					fmt.Sprintf("%+.1f%%", r.accRel*100),
				}
			}
			al := [2]string{"-", "-"}
			if r.hasAlloc {
				al = [2]string{fmt.Sprintf("%.0f", r.allocBase), fmt.Sprintf("%.0f", r.allocFresh)}
			}
			ffc := [2]string{"-", "-"}
			if r.hasFF {
				ffc = [2]string{fmt.Sprintf("%.1f", r.ffBase), fmt.Sprintf("%.1f", r.ffFresh)}
			}
			verdict := "ok"
			if r.failed {
				verdict = "FAIL"
			}
			fmt.Fprintf(w, "%-40s %14s %14s %8s %12s %12s %8s %8s %s\n",
				r.name, acc[0], acc[1], acc[2], al[0], al[1], ffc[0], ffc[1], verdict)
			// Informational metrics ride along dimmed: visible next to the
			// gated columns, but typographically marked as never-gated
			// context rather than silently dropped from the table.
			for _, d := range r.info {
				fmt.Fprintln(w, dim(fmt.Sprintf("%-40s %-13s %12.4g -> %12.4g (informational)",
					r.name, d.name, d.base, d.fresh)))
			}
		}
	}
	return failed
}

// oneSided returns the sorted metric names present in a but not in b.
func oneSided(a, b map[string]float64) []string {
	var out []string
	for mn := range a {
		if _, ok := b[mn]; !ok {
			out = append(out, mn)
		}
	}
	sort.Strings(out)
	return out
}

// missingFrom returns the sorted benchmark names in have that only do not
// appear in ref.
func missingFrom(have, ref doc) []string {
	var out []string
	for n := range have.Benchmarks {
		if _, ok := ref.Benchmarks[n]; !ok {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

func main() {
	base := flag.String("base", "BENCH_perf.json", "committed baseline trajectory")
	fresh := flag.String("fresh", "BENCH_perf.fresh.json", "freshly measured trajectory")
	maxDrop := flag.Float64("max-drop", 0.20, "maximum tolerated fractional drop in accesses/s")
	maxAllocGrowth := flag.Float64("max-alloc-growth", 0.02, "maximum tolerated fractional growth in allocs/op (plus a small absolute slack)")
	maxFFDrop := flag.Float64("max-ff-drop", 5, "maximum tolerated absolute drop in ff-coverage-% (percentage points)")
	flag.Parse()

	bd, err := load(*base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(loadExitCode(err))
	}
	fd, err := load(*fresh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(loadExitCode(err))
	}

	if compare(bd, fd, *maxDrop, *maxAllocGrowth, *maxFFDrop, os.Stdout) {
		fmt.Println("benchdiff: FAIL — accesses/s or ff-coverage-% dropped beyond the threshold, or allocs/op grew beyond the slack")
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}
