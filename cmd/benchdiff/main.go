// Command benchdiff compares two BENCH_perf.json trajectories (as written
// by cmd/benchjson) and fails on performance regressions: a drop of more
// than the allowed fraction in simulated-access throughput (accesses/s),
// or any growth at all in allocs/op. It is the gate behind `make
// bench-diff`, wired into CI as a non-blocking step so perf drift is
// visible on every change without flaking the build on noisy runners.
//
// Usage:
//
//	benchdiff [-max-drop 0.20] -base BENCH_perf.json -fresh BENCH_perf.fresh.json
//
// Benchmarks present in only one file are reported but never fail the
// comparison, so adding or retiring benchmarks does not break the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type doc struct {
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

func load(path string) (doc, error) {
	var d doc
	b, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(b, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	if len(d.Benchmarks) == 0 {
		return d, fmt.Errorf("%s: no benchmarks", path)
	}
	return d, nil
}

func main() {
	base := flag.String("base", "BENCH_perf.json", "committed baseline trajectory")
	fresh := flag.String("fresh", "BENCH_perf.fresh.json", "freshly measured trajectory")
	maxDrop := flag.Float64("max-drop", 0.20, "maximum tolerated fractional drop in accesses/s")
	flag.Parse()

	bd, err := load(*base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	fd, err := load(*fresh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(bd.Benchmarks))
	for n := range bd.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)

	failed := false
	for _, n := range names {
		b, f := bd.Benchmarks[n], fd.Benchmarks[n]
		if f == nil {
			fmt.Printf("%-40s missing from fresh run (skipped)\n", n)
			continue
		}
		if ba, ok := b["accesses/s"]; ok && ba > 0 {
			if fa, ok := f["accesses/s"]; ok {
				rel := fa/ba - 1
				status := "ok"
				if rel < -*maxDrop {
					status = "REGRESSION"
					failed = true
				}
				fmt.Printf("%-40s accesses/s %12.0f -> %12.0f (%+6.1f%%) %s\n", n, ba, fa, rel*100, status)
			}
		}
		if balloc, ok := b["allocs/op"]; ok {
			if falloc, ok := f["allocs/op"]; ok {
				status := "ok"
				if falloc > balloc {
					status = "REGRESSION"
					failed = true
				}
				fmt.Printf("%-40s allocs/op  %12.0f -> %12.0f %s\n", n, balloc, falloc, status)
			}
		}
	}
	for n := range fd.Benchmarks {
		if _, ok := bd.Benchmarks[n]; !ok {
			fmt.Printf("%-40s new benchmark (no baseline)\n", n)
		}
	}
	if failed {
		fmt.Println("benchdiff: FAIL — accesses/s dropped beyond the threshold or allocs/op grew")
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}
