// Command t2simd is the simulation-as-a-service daemon: a long-running
// HTTP server that executes figure sweeps (the same declarative
// experiments cmd/figures runs) on a bounded pool of reusable simulator
// arenas, with robustness as the headline contract. Determinism is the
// lever: every sweep has a canonical fingerprint, so results are
// perfectly cacheable (checksummed LRU result cache), concurrent
// duplicates coalesce to one execution (singleflight), and a response is
// byte-identical to the BENCH_<fig>.json cmd/figures would write for the
// same sweep.
//
// Overload behavior is explicit rather than emergent: a bounded admission
// queue with depth and age limits sheds with 429/503 + Retry-After when
// saturated, per-request deadlines propagate into the engines'
// cooperative cancellation, per-point failures retry with bounded
// backoff, and a handler panic is one failed request, never a dead
// server. On SIGTERM/SIGINT the daemon drains: readiness flips to 503,
// new work is shed, and in-flight sweeps either finish within the drain
// deadline or are cancelled cooperatively — then the process exits 0.
//
// Usage:
//
//	t2simd [-addr :8714] [-addr-file FILE] [-max-concurrent N]
//	       [-queue-depth N] [-queue-wait DUR] [-cache-bytes N] [-jobs N]
//	       [-retries N] [-backoff DUR] [-max-timeout DUR]
//	       [-retry-after DUR] [-drain-timeout DUR]
//
// Endpoints: POST /v1/sweep (body: service.SweepRequest JSON; response:
// the canonical trajectory), GET /healthz, GET /readyz, GET /metrics.
// The request's "speculate" field (requires "shards") runs the sweep with
// the sharded engine's optimistic speculative bursts — execution budget
// only, like "jobs" and "timeout_ms": it never changes a response byte,
// is excluded from the cache fingerprint, and therefore shares cache
// entries and coalesces with conservative requests for the same sweep.
// HTTP statuses: 200 served, 400 validation, 429 queue full (Retry-After),
// 499 client closed request, 503 saturated or draining (Retry-After),
// 504 deadline exceeded, 500 internal.
//
// Exit codes (see doc.go for the repo-wide conventions):
//
//	0  clean shutdown — drained, whether in-flight work finished or was
//	   cancelled at the drain deadline (graceful degradation is success)
//	1  runtime error (listen failure, serve failure)
//	2  flag misuse
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8714", "listen address (host:port; :0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts driving :0)")
	maxConcurrent := flag.Int("max-concurrent", 0, "sweeps executing simultaneously (0: default 2)")
	queueDepth := flag.Int("queue-depth", 0, "requests allowed to wait for an executor before 429 shedding (0: default 16)")
	queueWait := flag.Duration("queue-wait", 0, "max queue age before 503 shedding (0: default 10s)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result cache payload budget in bytes (0: default 64 MiB)")
	jobs := flag.Int("jobs", 0, "sweep-pool workers per executing sweep (0: GOMAXPROCS/max-concurrent)")
	retries := flag.Int("retries", 0, "per-point retry budget (0: default 2, negative: no retries)")
	backoff := flag.Duration("backoff", 0, "first-retry backoff, doubling (0: default 10ms)")
	maxTimeout := flag.Duration("max-timeout", 0, "ceiling and default for per-request execution deadlines (0: default 5m)")
	retryAfter := flag.Duration("retry-after", 0, "Retry-After hint on shed responses (0: default 1s)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "on SIGTERM, how long in-flight sweeps may run before being cancelled")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "t2simd: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	srv := service.New(service.Config{
		MaxConcurrent: *maxConcurrent,
		QueueDepth:    *queueDepth,
		QueueWait:     *queueWait,
		CacheBytes:    *cacheBytes,
		Jobs:          *jobs,
		Retries:       *retries,
		Backoff:       *backoff,
		MaxTimeout:    *maxTimeout,
		RetryAfter:    *retryAfter,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "t2simd: %v\n", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "t2simd: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "t2simd: listening on %s\n", bound)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "t2simd: %s — draining (deadline %s)\n", sig, *drainTimeout)
		clean := srv.Drain(*drainTimeout)
		if clean {
			fmt.Fprintln(os.Stderr, "t2simd: drain complete, all in-flight work finished")
		} else {
			fmt.Fprintln(os.Stderr, "t2simd: drain deadline reached, in-flight work cancelled")
		}
		// In-flight handlers have returned (or are returning their shed
		// responses); close the listener and connections promptly.
		hs.Close()
		os.Exit(0)
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "t2simd: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
}
