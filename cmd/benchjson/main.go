// Command benchjson converts `go test -bench` output piped to stdin into a
// machine-readable BENCH_perf.json trajectory: benchmark name → metric →
// value, covering ns/op, B/op, allocs/op and every custom b.ReportMetric
// unit (simcycles/s, accesses/s, GB/s, ff-coverage-%, and the sharded
// engine's shards / epoch-width / barrier-stalls/s scaling telemetry).
// Input lines are echoed to stdout so the tool is transparent in a
// pipeline:
//
//	go test -run '^$' -bench 'BenchmarkFig' -benchtime 1x -benchmem . \
//	    | go run ./cmd/benchjson -out BENCH_perf.json
//
// When a benchmark appears several times (-count > 1), its metrics are
// averaged. The JSON is canonical (indented, keys sorted), so identical
// sweeps diff cleanly across commits.
//
// Exit codes (see doc.go for the repo-wide conventions):
//
//	0  conversion written
//	1  runtime failure: unreadable input, no benchmark lines, unwritable
//	   output
//	2  flag misuse
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/profiling"
)

// benchLine matches one result line: name, iteration count, then
// value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// cpuSuffix strips the trailing -<GOMAXPROCS> go test appends to names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

type acc struct {
	sums map[string]float64
	n    map[string]int
}

func main() {
	out := flag.String("out", "BENCH_perf.json", "output JSON path")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the conversion to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	defer stopProfiles()
	// fail flushes the profiles before exiting, so a failed conversion
	// still leaves parseable profile files behind.
	fail := func() {
		stopProfiles()
		os.Exit(1)
	}

	results := map[string]*acc{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := cpuSuffix.ReplaceAllString(m[1], "")
		a := results[name]
		if a == nil {
			a = &acc{sums: map[string]float64{}, n: map[string]int{}}
			results[name] = a
		}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			a.sums[unit] += v
			a.n[unit]++
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		fail()
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		fail()
	}

	doc := map[string]map[string]float64{}
	for name, a := range results {
		metrics := map[string]float64{}
		for unit, sum := range a.sums {
			metrics[unit] = sum / float64(a.n[unit])
		}
		doc[name] = metrics
	}
	b, err := json.MarshalIndent(map[string]any{"benchmarks": doc}, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		fail()
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		fail()
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc), *out)
}
