// Command t2sim runs kernels on the simulated UltraSPARC T2 with explicit
// placement parameters. Without -sweep it runs a single point and prints
// the full performance report — bandwidth, MLUPs, per-controller
// utilization and the strand time breakdown. With -sweep it becomes a
// declarative one-axis experiment on the internal/exp worker pool: the
// named parameter is swept across lo..hi and every point is simulated in
// parallel, with a table and optionally a JSON trajectory as output.
//
// Examples:
//
//	t2sim -kernel triad -n 524288 -threads 64 -offset 0
//	t2sim -kernel triad -n 524288 -threads 64 -offset 13
//	t2sim -kernel vtriad -n 1048576 -threads 64 -arrayoffset 128
//	t2sim -kernel jacobi -n 1200 -threads 64 -opt
//	t2sim -kernel lbm -n 96 -threads 64 -layout IvJK -fused
//	t2sim -kernel triad -n 524288 -threads 64 -offset 0 -machine xor
//	t2sim -kernel vtriad -n 1048576 -threads 64 -machine mc8
//	t2sim -kernel triad -n 524288 -sweep offset=0:256:2 -jobs 8 -json -
//	t2sim -kernel vtriad -n 1048576 -sweep threads=8:64:8
//
// The -machine flag selects a machine profile from the internal/machine
// registry (t2, t2-1mc, t2-2mc, mc8, t2-wide1k, t2-wide4k, xor, single);
// placement planning (jacobi -opt) follows the selected profile's
// interleave automatically.
//
// Exit codes (see doc.go for the repo-wide conventions):
//
//	0  run or sweep completed
//	1  runtime failure: simulation error, unwritable -json output
//	2  flag misuse: unknown kernel, machine, schedule, layout or sweep
//	   axis; shard or epoch-width misconfiguration
//	3  -timeout expired before the run or sweep finished
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/alloc"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/jacobi"
	"repro/internal/kernels"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/segarray"
	"repro/internal/trace"
)

// params carries every knob a single simulation point needs; the sweep
// axis overrides one field per point.
type params struct {
	kernel      string
	n           int64
	threads     int
	offset      int64
	arrayOffset int64
	sweeps      int
	sched       string
	layout      string
	fused       bool
	opt         bool
}

func main() {
	var p params
	flag.StringVar(&p.kernel, "kernel", "triad", "kernel: copy, scale, add, triad, vtriad, loadsum, jacobi, lbm")
	flag.Int64Var(&p.n, "n", 1<<19, "problem size (elements; grid edge for jacobi/lbm)")
	flag.IntVar(&p.threads, "threads", 64, "software threads (1..64)")
	flag.Int64Var(&p.offset, "offset", 0, "STREAM COMMON-block offset in DP words")
	flag.Int64Var(&p.arrayOffset, "arrayoffset", 0, "per-array byte offset (array i shifted by i*offset)")
	flag.IntVar(&p.sweeps, "sweeps", 1, "passes over the data")
	flag.StringVar(&p.sched, "sched", "static", "schedule: static, static1, dynamic, guided")
	machineName := flag.String("machine", machine.DefaultName,
		"machine profile (see internal/machine, or `figures -list`): "+strings.Join(machine.Names(), ", "))
	flag.StringVar(&p.layout, "layout", "IvJK", "LBM layout: IJKv or IvJK")
	flag.BoolVar(&p.fused, "fused", false, "LBM: coalesce the outer loop pair")
	flag.BoolVar(&p.opt, "opt", false, "jacobi: apply the planner's row placement (512B align, 128B shift)")
	msar := flag.Int("mshr", 1, "outstanding load misses per strand (ablation)")
	runAhead := flag.Int64("runahead", 2, "strand run-ahead window in items; 0 = unbounded")
	sweep := flag.String("sweep", "", "sweep one parameter: {offset|arrayoffset|n|threads}=lo:hi:step (hi inclusive)")
	jobs := flag.Int("jobs", 0, "worker goroutines for -sweep (<=0: GOMAXPROCS)")
	shards := flag.Int("shards", 0, "run on the controller-domain sharded engine with up to N workers (0: sequential engine, -1: auto); results are invariant under N")
	epochWidth := flag.Int64("epoch-width", 0, "override the sharded engine's epoch width in cycles (0: conservative bound; wider values run relaxed epochs whose results differ — see -relaxed-ok)")
	relaxedOK := flag.Bool("relaxed-ok", false, "allow -json trajectories from a relaxed -epoch-width run (they are NOT comparable to conservative trajectories)")
	epochBatch := flag.Bool("epoch-batch", true, "use the sharded engine's batched epoch loop (false: classic rendezvous-per-epoch loop; results are byte-identical either way)")
	speculate := flag.Bool("speculate", false, "run the sharded engine with optimistic speculative bursts (requires -shards and the batched loop; results are byte-identical on or off)")
	jsonOut := flag.String("json", "", "with -sweep: write the JSON trajectory to this file ('-' for stdout)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the run or sweep; on expiry the simulation aborts cooperatively and the exit code is 3 (0: no deadline)")
	flag.Parse()

	prof, err := machine.Get(*machineName)
	if err != nil {
		fail("%v", err)
	}
	cfg := prof.Config
	cfg.MSHRPerStrand = *msar
	cfg.RunAhead = *runAhead

	// An explicit -shards beyond the machine's controller-domain count is a
	// misconfiguration, not a bigger budget; reject it before simulating.
	if d := cfg.Mapping.Controllers(); *shards > d {
		fail("%v: -shards %d, machine %q has %d controller domains",
			chip.ErrShardOversubscribed, *shards, prof.Name, d)
	}
	sopt := chip.ShardOptions{EpochWidth: *epochWidth, NoBatch: !*epochBatch, Speculate: *speculate}
	if *speculate {
		if *shards == 0 {
			fail("-speculate only applies to the sharded engine; set -shards too")
		}
		if !*epochBatch {
			fail("%v", chip.ErrSpeculateNoBatch)
		}
	}
	if *epochWidth != 0 {
		if *shards == 0 {
			fail("-epoch-width only applies to the sharded engine; set -shards too")
		}
		derived := chip.New(cfg).EpochWidth()
		if *epochWidth < derived {
			fail("%v: -epoch-width %d, machine %q derives %d",
				chip.ErrEpochWidthTooNarrow, *epochWidth, prof.Name, derived)
		}
		// Relaxed wide epochs are deterministic but not comparable to
		// conservative results; a JSON trajectory from one needs an explicit
		// opt-in.
		if *epochWidth > derived && *jsonOut != "" && !*relaxedOK {
			fail("-epoch-width %d is relaxed (conservative bound %d): refusing to write -json without -relaxed-ok",
				*epochWidth, derived)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *sweep == "" {
		sopt.Workers = exp.ShardBudget(*shards, 1)
		runSingle(ctx, prof, cfg, p, sopt)
		return
	}
	sopt.Workers = exp.ShardBudget(*shards, *jobs)
	runSweep(ctx, prof, cfg, p, *sweep, *jobs, sopt, *jsonOut)
}

// failTimeout reports a run cut short by -timeout; exit code 3 separates
// "ran out of budget" from flag misuse (2) and harness errors.
func failTimeout(err error) {
	fmt.Fprintf(os.Stderr, "t2sim: %v\n", err)
	os.Exit(3)
}

// schedule resolves the schedule name; jacobi -opt forces static1 as the
// planner prescribes.
func (p params) schedule() (omp.Schedule, error) {
	switch p.sched {
	case "static":
		return omp.StaticBlock{}, nil
	case "static1":
		return omp.StaticChunk{Size: 1}, nil
	case "dynamic":
		return omp.Dynamic{Size: 1}, nil
	case "guided":
		return omp.Guided{Min: 1}, nil
	}
	return nil, fmt.Errorf("unknown schedule %q", p.sched)
}

// build constructs the trace program for one parameter point.
func (p params) build(cfg chip.Config) (*trace.Program, error) {
	schedule, err := p.schedule()
	if err != nil {
		return nil, err
	}
	sp := alloc.NewSpace()
	var prog *trace.Program

	switch p.kernel {
	case "copy", "scale", "add", "triad":
		bases := sp.Common(3, p.n+p.offset, phys.WordSize)
		var k kernels.Stream
		switch p.kernel {
		case "copy":
			k = kernels.StreamCopy(bases[2], bases[0], p.n)
		case "scale":
			k = kernels.StreamScale(bases[1], bases[2], p.n)
		case "add":
			k = kernels.StreamAdd(bases[2], bases[0], bases[1], p.n)
		case "triad":
			k = kernels.StreamTriad(bases[0], bases[1], bases[2], p.n)
		}
		k.Sweeps = p.sweeps
		prog = k.Program(schedule, p.threads)
	case "vtriad":
		bases := sp.OffsetBases(4, p.n*phys.WordSize, phys.PageSize, p.arrayOffset)
		k := kernels.VTriad(bases[0], bases[1], bases[2], bases[3], p.n)
		k.Sweeps = p.sweeps
		prog = k.Program(schedule, p.threads)
	case "loadsum":
		bases := sp.OffsetBases(4, p.n*phys.WordSize, phys.PageSize, p.arrayOffset)
		k := kernels.LoadSum(bases, p.n)
		k.Sweeps = p.sweeps
		prog = k.Program(schedule, p.threads)
	case "jacobi":
		spec := jacobi.Spec{N: p.n, Sched: schedule, Sweeps: p.sweeps}
		if p.opt {
			rp := core.PlanRows(core.SpecFor(cfg.Mapping))
			sparams := segarray.Params{ElemSize: phys.WordSize, Align: phys.PageSize,
				SegAlign: rp.SegAlign, Shift: rp.Shift}
			rows := make([]int64, p.n)
			for i := range rows {
				rows[i] = p.n
			}
			srcL := segarray.Plan(sp, sparams, rows)
			dstL := segarray.Plan(sp, sparams, rows)
			spec.Src = func(i int64) phys.Addr { return srcL.Segs[i].Start }
			spec.Dst = func(i int64) phys.Addr { return dstL.Segs[i].Start }
			spec.Sched = omp.StaticChunk{Size: 1}
		} else {
			spec.Src = jacobi.PlainRows(sp.Malloc(p.n*p.n*phys.WordSize), p.n)
			spec.Dst = jacobi.PlainRows(sp.Malloc(p.n*p.n*phys.WordSize), p.n)
		}
		prog = spec.Program(p.threads)
	case "lbm":
		var layout lbm.Layout
		switch p.layout {
		case "IJKv":
			layout = lbm.IJKv
		case "IvJK":
			layout = lbm.IvJK
		default:
			return nil, fmt.Errorf("unknown layout %q", p.layout)
		}
		spec := lbm.TraceSpec{
			N: p.n, Layout: layout,
			OldBase:  sp.Malloc(lbm.GridBytes(p.n, layout)),
			NewBase:  sp.Malloc(lbm.GridBytes(p.n, layout)),
			MaskBase: sp.Malloc(lbm.MaskBytes(p.n, layout)),
			Fused:    p.fused, Sched: schedule, Sweeps: p.sweeps,
		}
		prog = spec.Program(p.threads)
	default:
		return nil, fmt.Errorf("unknown kernel %q", p.kernel)
	}
	prog.WarmLines = cfg.L2.SizeBytes / phys.LineSize
	return prog, nil
}

// runSingle simulates one point and prints the detailed report.
func runSingle(ctx context.Context, prof machine.Profile, cfg chip.Config, p params, sopt chip.ShardOptions) {
	prog, err := p.build(cfg)
	if err != nil {
		fail("%v", err)
	}
	m := chip.New(cfg)
	var r chip.Result
	if sopt.Workers != 0 {
		r, err = m.RunShardedCtx(ctx, prog, sopt)
	} else {
		r, err = m.RunCtx(ctx, prog)
	}
	if err != nil {
		var ce *chip.CancelError
		if errors.As(err, &ce) {
			failTimeout(err)
		}
		failRun("%v", err)
	}

	fmt.Printf("machine:   %s (%s)\n", prof.Name, prof.Doc)
	if r.Shards > 0 {
		fmt.Printf("engine:    sharded — %d controller domains, epoch width %d cycles, %d rounds (%d micro-epochs), %.1f%% busy shards\n",
			r.Shards, r.EpochWidth, r.Epochs, r.BatchedEpochs, r.BusyShardPct)
		if r.SpecCommits > 0 || r.SpecRollbacks > 0 {
			fmt.Printf("engine:    speculation — %d bursts committed, %d rolled back (%.1f%% commit), %d micro-epochs speculative\n",
				r.SpecCommits, r.SpecRollbacks,
				100*float64(r.SpecCommits)/float64(r.SpecCommits+r.SpecRollbacks), r.SpecEpochs)
		}
	} else if sopt.Workers != 0 {
		fmt.Printf("engine:    sequential (sharded engine requested but the run is not decomposable)\n")
	}
	fmt.Printf("program:   %s\n", r.Label)
	fmt.Printf("cycles:    %d (%.3f ms at %.1f GHz)\n", r.Cycles, r.Seconds*1e3, cfg.ClockHz/1e9)
	fmt.Printf("reported:  %8.2f GB/s\n", r.GBps)
	fmt.Printf("actual:    %8.2f GB/s (incl. RFO and writebacks)\n", r.ActualGBps)
	fmt.Printf("updates:   %8.2f MUP/s (%d units)\n", r.MUPs, r.Units)
	fmt.Printf("l2:        %.1f%% hits, %d writebacks\n", r.L2.HitRate()*100, r.L2.Writebacks)
	fmt.Printf("mc util:  ")
	var sum float64
	for _, u := range r.MCUtil {
		fmt.Printf(" %5.2f", u)
		sum += u
	}
	fmt.Printf("  (sum %.2f of %d)\n", sum, len(r.MCUtil))
	tot := float64(r.Cycles) * float64(r.Threads)
	fmt.Printf("breakdown: load %.1f%%  store %.1f%%  compute %.1f%%  retry %.1f%%\n",
		100*float64(r.LoadStall)/tot, 100*float64(r.StoreStall)/tot,
		100*float64(r.ComputeStall)/tot, 100*float64(r.RetryStall)/tot)
}

// parseSweep parses "axis=lo:hi:step" with hi inclusive.
func parseSweep(spec string) (axis string, lo, hi, step int64, err error) {
	name, rng, ok := strings.Cut(spec, "=")
	if !ok {
		return "", 0, 0, 0, fmt.Errorf("sweep spec %q is not axis=lo:hi:step", spec)
	}
	parts := strings.Split(rng, ":")
	if len(parts) != 3 {
		return "", 0, 0, 0, fmt.Errorf("sweep range %q is not lo:hi:step", rng)
	}
	vals := make([]int64, 3)
	for i, s := range parts {
		v, perr := strconv.ParseInt(s, 10, 64)
		if perr != nil {
			return "", 0, 0, 0, fmt.Errorf("sweep range %q: %v", rng, perr)
		}
		vals[i] = v
	}
	if vals[2] <= 0 || vals[1] < vals[0] {
		return "", 0, 0, 0, fmt.Errorf("sweep range %q must have hi >= lo and step > 0", rng)
	}
	return name, vals[0], vals[1], vals[2], nil
}

// runSweep fans the one-axis sweep out over the worker pool and prints a
// table plus the optional JSON trajectory.
func runSweep(ctx context.Context, prof machine.Profile, cfg chip.Config, base params, spec string, jobs int, sopt chip.ShardOptions, jsonOut string) {
	axis, lo, hi, step, err := parseSweep(spec)
	if err != nil {
		fail("%v", err)
	}
	switch axis {
	case "offset", "arrayoffset", "n", "threads":
	default:
		fail("unknown sweep axis %q (want offset, arrayoffset, n or threads)", axis)
	}

	e := exp.Experiment{
		Name:    "t2sim/" + base.kernel,
		Doc:     fmt.Sprintf("%s sweep over %s", base.kernel, axis),
		Machine: machine.Tag(prof.Name),
		Cfg:     cfg,
		Grid:    exp.Grid{exp.Span64(axis, lo, hi+1, step)},
		Run: func(cfg chip.Config, pt exp.Point, sc *exp.Scratch) (exp.Result, error) {
			p := base
			v := pt.Int64(axis)
			switch axis {
			case "offset":
				p.offset = v
			case "arrayoffset":
				p.arrayOffset = v
			case "n":
				p.n = v
			case "threads":
				p.threads = int(v)
			}
			prog, err := p.build(cfg)
			if err != nil {
				return exp.Result{}, err
			}
			var r chip.Result
			if sopt.Workers != 0 {
				r, err = chip.New(cfg).RunShardedCtx(sc.Context(), prog, sopt)
			} else {
				r, err = chip.New(cfg).RunCtx(sc.Context(), prog)
			}
			if err != nil {
				return exp.Result{}, err
			}
			return exp.Result{
				Series: fmt.Sprintf("%s/%dT", p.kernel, p.threads),
				X:      float64(v),
				Y:      r.GBps,
				Metrics: map[string]float64{
					"actual_gbps": r.ActualGBps,
					"mups":        r.MUPs,
					"balance":     r.Balance(),
				},
			}, nil
		},
	}
	// Validate the point builder against the first axis value before
	// fanning out: an unknown kernel/schedule/layout is flag misuse (2),
	// not a per-point runtime failure.
	probe := base
	switch axis {
	case "offset":
		probe.offset = lo
	case "arrayoffset":
		probe.arrayOffset = lo
	case "n":
		probe.n = lo
	case "threads":
		probe.threads = int(lo)
	}
	if _, err := probe.build(cfg); err != nil {
		fail("%v", err)
	}

	out, err := exp.Runner{Jobs: jobs}.RunContext(ctx, e)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			failTimeout(err)
		}
		failRun("%v", err)
	}

	fmt.Printf("%12s %12s %12s %12s %10s\n", axis, "GB/s", "actual-GB/s", "MUP/s", "balance")
	for _, pr := range out.Points {
		fmt.Printf("%12.0f %12.2f %12.2f %12.2f %10.2f\n",
			pr.Result.X, pr.Result.Y, pr.Result.Metrics["actual_gbps"],
			pr.Result.Metrics["mups"], pr.Result.Metrics["balance"])
	}
	if out.Retries > 0 || out.PointErrors > 0 {
		fmt.Printf("resilience: %d retries, %d point errors, %d watchdog trips\n",
			out.Retries, out.PointErrors, out.WatchdogTrips)
	}

	if jsonOut != "" {
		if err := out.WriteJSON(jsonOut); err != nil {
			failRun("%v", err)
		}
	}
}

// fail reports flag misuse (exit 2); failRun a runtime failure (exit 1).
func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "t2sim: "+format+"\n", args...)
	os.Exit(2)
}

func failRun(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "t2sim: "+format+"\n", args...)
	os.Exit(1)
}
