// Command t2sim runs a single kernel on the simulated UltraSPARC T2 with
// explicit placement parameters and prints the performance report —
// bandwidth, MLUPs, per-controller utilization and the strand time
// breakdown.
//
// Examples:
//
//	t2sim -kernel triad -n 524288 -threads 64 -offset 0
//	t2sim -kernel triad -n 524288 -threads 64 -offset 13
//	t2sim -kernel vtriad -n 1048576 -threads 64 -arrayoffset 128
//	t2sim -kernel jacobi -n 1200 -threads 64 -opt
//	t2sim -kernel lbm -n 96 -threads 64 -layout IvJK -fused
//	t2sim -kernel triad -n 524288 -threads 64 -offset 0 -mapping xor
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/alloc"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/jacobi"
	"repro/internal/kernels"
	"repro/internal/lbm"
	"repro/internal/omp"
	"repro/internal/phys"
	"repro/internal/segarray"
	"repro/internal/trace"
)

func main() {
	kernel := flag.String("kernel", "triad", "kernel: copy, scale, add, triad, vtriad, loadsum, jacobi, lbm")
	n := flag.Int64("n", 1<<19, "problem size (elements; grid edge for jacobi/lbm)")
	threads := flag.Int("threads", 64, "software threads (1..64)")
	offset := flag.Int64("offset", 0, "STREAM COMMON-block offset in DP words")
	arrayOffset := flag.Int64("arrayoffset", 0, "per-array byte offset (array i shifted by i*offset)")
	sweeps := flag.Int("sweeps", 1, "passes over the data")
	sched := flag.String("sched", "static", "schedule: static, static1, dynamic, guided")
	mapping := flag.String("mapping", "t2", "address mapping: t2, xor, single")
	layoutName := flag.String("layout", "IvJK", "LBM layout: IJKv or IvJK")
	fused := flag.Bool("fused", false, "LBM: coalesce the outer loop pair")
	opt := flag.Bool("opt", false, "jacobi: apply the planner's row placement (512B align, 128B shift)")
	msar := flag.Int("mshr", 1, "outstanding load misses per strand (ablation)")
	runAhead := flag.Int64("runahead", 2, "strand run-ahead window in items; 0 = unbounded")
	flag.Parse()

	cfg := chip.Default()
	cfg.MSHRPerStrand = *msar
	cfg.RunAhead = *runAhead
	switch *mapping {
	case "t2":
	case "xor":
		cfg.Mapping = phys.XORMapping{}
	case "single":
		cfg.Mapping = phys.SingleMapping{}
	default:
		fail("unknown mapping %q", *mapping)
	}

	var schedule omp.Schedule
	switch *sched {
	case "static":
		schedule = omp.StaticBlock{}
	case "static1":
		schedule = omp.StaticChunk{Size: 1}
	case "dynamic":
		schedule = omp.Dynamic{Size: 1}
	case "guided":
		schedule = omp.Guided{Min: 1}
	default:
		fail("unknown schedule %q", *sched)
	}

	sp := alloc.NewSpace()
	var prog *trace.Program

	switch *kernel {
	case "copy", "scale", "add", "triad":
		bases := sp.Common(3, *n+*offset, phys.WordSize)
		var k kernels.Stream
		switch *kernel {
		case "copy":
			k = kernels.StreamCopy(bases[2], bases[0], *n)
		case "scale":
			k = kernels.StreamScale(bases[1], bases[2], *n)
		case "add":
			k = kernels.StreamAdd(bases[2], bases[0], bases[1], *n)
		case "triad":
			k = kernels.StreamTriad(bases[0], bases[1], bases[2], *n)
		}
		k.Sweeps = *sweeps
		prog = k.Program(schedule, *threads)
	case "vtriad":
		bases := sp.OffsetBases(4, *n*phys.WordSize, phys.PageSize, *arrayOffset)
		k := kernels.VTriad(bases[0], bases[1], bases[2], bases[3], *n)
		k.Sweeps = *sweeps
		prog = k.Program(schedule, *threads)
	case "loadsum":
		bases := sp.OffsetBases(4, *n*phys.WordSize, phys.PageSize, *arrayOffset)
		k := kernels.LoadSum(bases, *n)
		k.Sweeps = *sweeps
		prog = k.Program(schedule, *threads)
	case "jacobi":
		spec := jacobi.Spec{N: *n, Sched: schedule, Sweeps: *sweeps}
		if *opt {
			rp := core.PlanRows(core.T2Spec())
			params := segarray.Params{ElemSize: phys.WordSize, Align: phys.PageSize,
				SegAlign: rp.SegAlign, Shift: rp.Shift}
			rows := make([]int64, *n)
			for i := range rows {
				rows[i] = *n
			}
			srcL := segarray.Plan(sp, params, rows)
			dstL := segarray.Plan(sp, params, rows)
			spec.Src = func(i int64) phys.Addr { return srcL.Segs[i].Start }
			spec.Dst = func(i int64) phys.Addr { return dstL.Segs[i].Start }
			spec.Sched = omp.StaticChunk{Size: 1}
		} else {
			spec.Src = jacobi.PlainRows(sp.Malloc(*n**n*phys.WordSize), *n)
			spec.Dst = jacobi.PlainRows(sp.Malloc(*n**n*phys.WordSize), *n)
		}
		prog = spec.Program(*threads)
	case "lbm":
		var layout lbm.Layout
		switch *layoutName {
		case "IJKv":
			layout = lbm.IJKv
		case "IvJK":
			layout = lbm.IvJK
		default:
			fail("unknown layout %q", *layoutName)
		}
		spec := lbm.TraceSpec{
			N: *n, Layout: layout,
			OldBase:  sp.Malloc(lbm.GridBytes(*n, layout)),
			NewBase:  sp.Malloc(lbm.GridBytes(*n, layout)),
			MaskBase: sp.Malloc(lbm.MaskBytes(*n)),
			Fused:    *fused, Sched: schedule, Sweeps: *sweeps,
		}
		prog = spec.Program(*threads)
	default:
		fail("unknown kernel %q", *kernel)
	}

	prog.WarmLines = cfg.L2.SizeBytes / phys.LineSize
	m := chip.New(cfg)
	r := m.Run(prog)

	fmt.Printf("program:   %s\n", r.Label)
	fmt.Printf("cycles:    %d (%.3f ms at %.1f GHz)\n", r.Cycles, r.Seconds*1e3, cfg.ClockHz/1e9)
	fmt.Printf("reported:  %8.2f GB/s\n", r.GBps)
	fmt.Printf("actual:    %8.2f GB/s (incl. RFO and writebacks)\n", r.ActualGBps)
	fmt.Printf("updates:   %8.2f MUP/s (%d units)\n", r.MUPs, r.Units)
	fmt.Printf("l2:        %.1f%% hits, %d writebacks\n", r.L2.HitRate()*100, r.L2.Writebacks)
	fmt.Printf("mc util:  ")
	var sum float64
	for _, u := range r.MCUtil {
		fmt.Printf(" %5.2f", u)
		sum += u
	}
	fmt.Printf("  (sum %.2f of %d)\n", sum, len(r.MCUtil))
	tot := float64(r.Cycles) * float64(r.Threads)
	fmt.Printf("breakdown: load %.1f%%  store %.1f%%  compute %.1f%%  retry %.1f%%\n",
		100*float64(r.LoadStall)/tot, 100*float64(r.StoreStall)/tot,
		100*float64(r.ComputeStall)/tot, 100*float64(r.RetryStall)/tot)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "t2sim: "+format+"\n", args...)
	os.Exit(2)
}
