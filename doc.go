// Package repro reproduces "Data Access Optimizations for Highly Threaded
// Multi-Core CPUs with Multiple Memory Controllers" (Hager, Zeiser,
// Wellein; arXiv:0712.2302, 2008) as a Go library: a cycle-approximate
// simulator of the Sun UltraSPARC T2 memory subsystem plus the paper's
// data-placement toolkit (segmented arrays, the alignment/offset planner,
// OpenMP-style scheduling) and harnesses that regenerate every figure of
// the paper's evaluation.
//
// The implementation lives under internal/; entry points are the binaries
// in cmd/ (t2sim, figures, placement, benchjson, benchdiff, and the
// t2simd service daemon), the runnable examples under examples/, and the
// benchmarks in bench_test.go. Every figure sweep runs as a declarative
// experiment on the internal/exp worker pool, so regeneration
// parallelizes across GOMAXPROCS with byte-identical output. Machines are
// named profiles in internal/machine (the calibrated t2 default plus
// controller-scaling and interleave-granularity variants); every CLI
// takes -machine and the analyzer plans placements from the selected
// profile's interleave. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
//
// Exit codes follow one repo-wide convention, documented per binary in
// each cmd/*/main.go:
//
//	0  success (for t2simd: clean shutdown, including a drain that had to
//	   cancel in-flight work at the deadline — graceful degradation is
//	   success)
//	1  runtime failure (simulation error, shape-check FAIL, gated
//	   regression, unwritable output)
//	2  usage or flag misuse
//	3  wall-clock budget expired (-timeout) — for benchdiff, a missing
//	   trajectory input instead (4: a corrupt one); it has no timeout
//
// The t2simd daemon maps the same classes onto HTTP statuses instead of
// exit codes, per request: 400 validation (the class exit code 2 covers),
// 429/503 + Retry-After load shedding, 499 client-closed request, 504
// deadline (the class exit code 3 covers), 500 internal.
package repro
