// Package repro reproduces "Data Access Optimizations for Highly Threaded
// Multi-Core CPUs with Multiple Memory Controllers" (Hager, Zeiser,
// Wellein; arXiv:0712.2302, 2008) as a Go library: a cycle-approximate
// simulator of the Sun UltraSPARC T2 memory subsystem plus the paper's
// data-placement toolkit (segmented arrays, the alignment/offset planner,
// OpenMP-style scheduling) and harnesses that regenerate every figure of
// the paper's evaluation.
//
// The implementation lives under internal/; entry points are the binaries
// in cmd/ (t2sim, figures, placement), the runnable examples under
// examples/, and the benchmarks in bench_test.go. Every figure sweep runs
// as a declarative experiment on the internal/exp worker pool, so
// regeneration parallelizes across GOMAXPROCS with byte-identical output.
// Machines are named profiles in internal/machine (the calibrated t2
// default plus controller-scaling and interleave-granularity variants);
// every CLI takes -machine and the analyzer plans placements from the
// selected profile's interleave. See DESIGN.md for the system inventory
// and EXPERIMENTS.md for paper-vs-measured results.
package repro
