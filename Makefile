GO ?= go

# The bench targets pipe go test into benchjson; pipefail makes a failing
# benchmark run fail the target instead of vanishing into the pipe.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: ci fmt vet build test test-race test-faults test-full bench bench-smoke bench-diff shard-smoke daemon-smoke figures clean

# ci is the tier the workflow runs: formatting, static checks, build, and
# the fast test tier (slow shape sweeps are skipped under -short).
ci: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -short ./...

# test-race runs the fast tier under the race detector — the exp worker
# pool and every -jobs N path are the code this is for.
test-race:
	$(GO) test -race -short ./...

# test-faults compiles the deterministic fault-injection hooks in
# (-tags faultinject) and runs the fast tier under the race detector:
# every recovery path — worker panic, forced fast-forward decline,
# stalled shard, step-budget cancel — executes with real goroutine
# interleavings instead of staying dead code behind the build tag.
test-faults:
	$(GO) test -race -short -tags faultinject ./...

# test-full runs every shape check at Small() scale (about a minute of
# simulated sweeps on one core).
test-full:
	$(GO) test ./...

# bench runs the figure benchmarks and records the perf trajectory
# (ns/op, allocs/op, simulated cycles and accesses per second) as
# canonical JSON in BENCH_perf.json. Three iterations per benchmark:
# ns/op is still the per-iteration mean, but shared-runner noise
# averages out instead of landing verbatim in the committed trajectory.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 3x -benchmem . \
		| $(GO) run ./cmd/benchjson -out BENCH_perf.json

# bench-diff measures a fresh perf trajectory and compares it against the
# committed BENCH_perf.json: more than a 20% drop in accesses/s or any
# growth in allocs/op fails, with a per-benchmark delta table on failure.
# CI runs it as a blocking step — the committed baseline plus benchdiff's
# added/removed tolerance make it safe to gate on; the 20% budget absorbs
# shared-runner noise. BenchmarkResilience is deliberately not in the
# pattern: its allocation counts depend on where in the sweep the
# injected cancel lands, so gating it would be flaky — it still records
# its robustness metrics in BENCH_perf.json via `make bench`, where the
# added/removed tolerance keeps the asymmetry harmless.
bench-diff:
	$(GO) test -run '^$$' -bench 'BenchmarkFig|BenchmarkAblation' -benchtime 1x -benchmem . \
		| $(GO) run ./cmd/benchjson -out BENCH_perf.fresh.json
	$(GO) run ./cmd/benchdiff -base BENCH_perf.json -fresh BENCH_perf.fresh.json
	rm -f BENCH_perf.fresh.json

# bench-smoke is the CI tier: one short benchmark iteration through the
# same JSON pipeline, to catch benchmark and tooling build rot.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig5SegmentedOverhead' -benchtime 1x -benchmem . \
		| $(GO) run ./cmd/benchjson -out BENCH_smoke.json
	rm -f BENCH_smoke.json

# shard-smoke runs a small fig4 slice sequentially, again on the sharded
# engine with four run workers, and a third time with -speculate, printing
# all three wall times. The conservative-vs-speculative contrast is
# informational only — shared CI runners make wall-clock gating flaky —
# but each leg itself is the smoke: the batched epoch loop under real
# parallelism, the -shards and -speculate flag plumbing, and the
# rounds/busy-shard/speculation telemetry lines all execute end to end.
# -jobs 1 on every leg so run-level sharding is the only parallelism in
# play and the contrasts mean something.
shard-smoke:
	@echo "== fig4 slice, sequential engine =="
	time $(GO) run ./cmd/figures -scale small -fig 4 -jobs 1 -json=false -out shard-smoke-out
	@echo "== fig4 slice, sharded engine (4 workers, conservative) =="
	time $(GO) run ./cmd/figures -scale small -fig 4 -jobs 1 -shards 4 -json=false -out shard-smoke-out
	@echo "== fig4 slice, sharded engine (4 workers, speculative) =="
	time $(GO) run ./cmd/figures -scale small -fig 4 -jobs 1 -shards 4 -speculate -json=false -out shard-smoke-out
	rm -rf shard-smoke-out

# daemon-smoke boots the t2simd service daemon end to end: submit a small
# fig2 sweep twice over HTTP, assert the repeat is a cache hit and that
# both responses are byte-identical to the BENCH_fig2.json cmd/figures
# writes for the same sweep, then SIGTERM and assert a clean drain
# (exit 0). This is the daemon's headline contract executed for real —
# listener, cache, fingerprint and signal path included.
daemon-smoke:
	./scripts/daemon_smoke.sh

# figures regenerates the paper-scale figures in parallel.
figures:
	$(GO) run ./cmd/figures -scale full -out figures-out

clean:
	rm -rf figures-out
