GO ?= go

.PHONY: ci fmt vet build test test-full bench figures clean

# ci is the tier the workflow runs: formatting, static checks, build, and
# the fast test tier (slow shape sweeps are skipped under -short).
ci: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -short ./...

# test-full runs every shape check at Small() scale (about a minute of
# simulated sweeps on one core).
test-full:
	$(GO) test ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# figures regenerates the paper-scale figures in parallel.
figures:
	$(GO) run ./cmd/figures -scale full -out figures-out

clean:
	rm -rf figures-out
